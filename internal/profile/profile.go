// Package profile is the access-profiling subsystem behind the
// profile-guided data placement policy: it measures, per shared
// variable, how often each core of a translated run actually touches
// the variable's backing store, and turns those measurements into a
// placement of the shared set across the MPB budget (optimize.go).
//
// The flow closes the loop from measured behaviour back into the
// compiler (JArena, arXiv:1902.07590, applies the same structure to
// partitioned NUMA memories; the TLP survey arXiv:1603.09274 frames
// access-frequency profiling as the standard input to such decisions):
//
//  1. Translate the workload with every shared variable off-chip (the
//     uniform reference placement) and run it once with a Collector
//     attached. The interpreter reports every timed data access; the
//     RCCE runtime reports each symmetric allocation, which labels the
//     address ranges with the source variable they back.
//  2. Snapshot the counters into a deterministic, JSON-serializable
//     Report: reads, writes, per-core frequency and the sharer set per
//     variable, plus the simulator's MPB occupancy statistics.
//  3. Optimize the placement for a concrete on-chip budget and feed the
//     resulting map back through Stage 4 as the `profiled` policy.
//
// The Collector is attached per simulation session and the interpreter
// serialises context execution, so no synchronisation is needed; a nil
// profiler costs one pointer check per access (see interp.MemProfiler).
package profile

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Spec names a program's shared allocations in runtime allocation order,
// one list per region: the translator emits one RCCE_shmalloc or
// RCCE_mpbmalloc call per shared variable at the top of RCCE_APP
// (translate.Unit.Allocs records the emission order), and the RCCE
// allocator performs them in program order, so the i-th allocation a
// region observes backs the i-th name of that region's list.
type Spec struct {
	OffChip []string
	OnChip  []string
}

// Count is one read/write counter pair.
type Count struct {
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
}

// trackedRange is one labelled address interval [lo, hi).
type trackedRange struct {
	name   string
	lo, hi uint32
}

// Collector accumulates per-variable access counters during one
// simulation session. It implements both hooks of a profiling run:
// interp.MemProfiler (NoteAccess, the per-access hot path) and
// rcce.AllocObserver (NoteAlloc, which labels the ranges).
//
// A Collector belongs to exactly one session: the interpreter's
// scheduler runs one context at a time, so the counters need no locks,
// and sharing a Collector between concurrent Sims would race.
type Collector struct {
	spec   Spec
	ranges []trackedRange // sorted by lo, non-overlapping
	lo, hi uint32         // bounds for the cheap out-of-range reject
	// totals[i] and perCore[i] count range i; perCore[i] grows to the
	// highest core that touched the range.
	totals  []Count
	perCore [][]Count
}

// NewCollector returns a Collector that labels allocations with spec.
func NewCollector(spec Spec) *Collector {
	return &Collector{spec: spec}
}

// AddRange registers a labelled address range directly (profiling a
// baseline Pthread run, where shared globals have static addresses).
func (c *Collector) AddRange(name string, lo uint32, size int) {
	if size <= 0 {
		return
	}
	c.insert(trackedRange{name: name, lo: lo, hi: lo + uint32(size)})
}

// NoteAlloc records one symmetric RCCE allocation: allocation seq of the
// given region landed at [addr, addr+size). The label comes from the
// Spec; an allocation past the spec'd list (a program allocating outside
// the translator's plan) gets a positional name rather than being lost.
func (c *Collector) NoteAlloc(onChip bool, seq int, addr uint32, size int) {
	names, region := c.spec.OffChip, "shm"
	if onChip {
		names, region = c.spec.OnChip, "mpb"
	}
	name := fmt.Sprintf("%s#%d", region, seq)
	if seq >= 0 && seq < len(names) {
		name = names[seq]
	}
	c.AddRange(name, addr, size)
}

// insert keeps ranges sorted by lo (allocations arrive in address order
// per region, so this is effectively an append).
func (c *Collector) insert(r trackedRange) {
	i := sort.Search(len(c.ranges), func(i int) bool { return c.ranges[i].lo > r.lo })
	c.ranges = append(c.ranges, trackedRange{})
	copy(c.ranges[i+1:], c.ranges[i:])
	c.ranges[i] = r
	c.totals = append(c.totals, Count{})
	copy(c.totals[i+1:], c.totals[i:])
	c.totals[i] = Count{}
	c.perCore = append(c.perCore, nil)
	copy(c.perCore[i+1:], c.perCore[i:])
	c.perCore[i] = nil
	if len(c.ranges) == 1 || r.lo < c.lo {
		c.lo = r.lo
	}
	if r.hi > c.hi {
		c.hi = r.hi
	}
}

// NoteAccess implements interp.MemProfiler: count one timed data access
// by core at addr. Accesses outside every tracked range (private stack,
// heap, literals) are rejected with two compares before any search.
func (c *Collector) NoteAccess(core int, addr uint32, write bool) {
	if addr < c.lo || addr >= c.hi {
		return
	}
	// Find the last range with lo <= addr.
	i := sort.Search(len(c.ranges), func(i int) bool { return c.ranges[i].lo > addr }) - 1
	if i < 0 || addr >= c.ranges[i].hi {
		return
	}
	if write {
		c.totals[i].Writes++
	} else {
		c.totals[i].Reads++
	}
	pc := c.perCore[i]
	for len(pc) <= core {
		pc = append(pc, Count{})
	}
	if write {
		pc[core].Writes++
	} else {
		pc[core].Reads++
	}
	c.perCore[i] = pc
}

// CoreCount is one core's contribution to a variable's traffic.
type CoreCount struct {
	Core int `json:"core"`
	Count
}

// VarStats is the measured profile of one shared variable.
type VarStats struct {
	Name  string `json:"name"`
	Bytes int    `json:"bytes"`
	Count
	// PerCore lists the cores that touched the variable (ascending),
	// with their read/write counts — the per-core frequency vector.
	PerCore []CoreCount `json:"per_core,omitempty"`
	// Sharers is the sharer set: the cores with any access, ascending.
	Sharers []int `json:"sharers,omitempty"`
}

// Accesses is the variable's total traffic.
func (v *VarStats) Accesses() uint64 { return v.Reads + v.Writes }

// Snapshot distills the counters into per-variable statistics, sorted
// by name (ranges backing the same name — impossible for translator
// output, but allowed via AddRange — are merged).
func (c *Collector) Snapshot() []VarStats {
	byName := make(map[string]*VarStats)
	var order []string
	for i, r := range c.ranges {
		v := byName[r.name]
		if v == nil {
			v = &VarStats{Name: r.name}
			byName[r.name] = v
			order = append(order, r.name)
		}
		v.Bytes += int(r.hi - r.lo)
		v.Reads += c.totals[i].Reads
		v.Writes += c.totals[i].Writes
		for core, cnt := range c.perCore[i] {
			if cnt == (Count{}) {
				continue
			}
			found := false
			for j := range v.PerCore {
				if v.PerCore[j].Core == core {
					v.PerCore[j].Reads += cnt.Reads
					v.PerCore[j].Writes += cnt.Writes
					found = true
					break
				}
			}
			if !found {
				v.PerCore = append(v.PerCore, CoreCount{Core: core, Count: cnt})
			}
		}
	}
	sort.Strings(order)
	out := make([]VarStats, 0, len(order))
	for _, name := range order {
		v := byName[name]
		sort.Slice(v.PerCore, func(i, j int) bool { return v.PerCore[i].Core < v.PerCore[j].Core })
		for _, pc := range v.PerCore {
			v.Sharers = append(v.Sharers, pc.Core)
		}
		out = append(out, *v)
	}
	return out
}

// MPBStats surfaces the simulator's on-chip buffer statistics alongside
// the per-variable counters: the budget the optimizer can spend, what
// the profiled run's allocator actually occupied, and the machine's
// MPB/shared-DRAM access counts for the run.
type MPBStats struct {
	CapacityBytes int `json:"capacity_bytes"`
	PerCoreBytes  int `json:"per_core_bytes"`
	// UsedBytes is the profiled run's MPB allocator high-water mark
	// (zero under the off-chip reference placement).
	UsedBytes int `json:"used_bytes"`
	// Accesses/Remote are the machine's MPB access counters (Remote =
	// accesses that crossed the mesh to another tile's section).
	Accesses uint64 `json:"accesses"`
	Remote   uint64 `json:"remote"`
	// SharedAccesses counts off-chip shared-DRAM accesses.
	SharedAccesses uint64 `json:"shared_accesses"`
}

// Report is one workload's access profile: the deterministic,
// serializable output of a profiling run. Two runs of the same workload
// at the same configuration produce byte-identical JSON regardless of
// execution engine modulo the Engine label itself (the counters and
// every other field agree exactly — the property the engine-parity
// tests pin by blanking Engine before comparing).
type Report struct {
	Workload string     `json:"workload"`
	Cores    int        `json:"cores"`
	Scale    float64    `json:"scale"`
	Engine   string     `json:"engine,omitempty"`
	Vars     []VarStats `json:"vars"`
	MPB      MPBStats   `json:"mpb"`
}

// TotalBytes is the shared set's footprint.
func (r *Report) TotalBytes() int {
	n := 0
	for i := range r.Vars {
		n += r.Vars[i].Bytes
	}
	return n
}

// JSON renders the report with a stable layout (indent + trailing
// newline) so profiles diff cleanly and byte-compare across engines.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Table renders the profile as a text table for hsmprof.
func (r *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profile %s cores=%d scale=%g engine=%s\n", r.Workload, r.Cores, r.Scale, r.Engine)
	fmt.Fprintf(&sb, "%-12s %8s %10s %10s %12s  %s\n", "Var", "Bytes", "Reads", "Writes", "Acc/Byte", "Sharers")
	for i := range r.Vars {
		v := &r.Vars[i]
		density := 0.0
		if v.Bytes > 0 {
			density = float64(v.Accesses()) / float64(v.Bytes)
		}
		fmt.Fprintf(&sb, "%-12s %8d %10d %10d %12.2f  %s\n",
			v.Name, v.Bytes, v.Reads, v.Writes, density, intList(v.Sharers))
	}
	fmt.Fprintf(&sb, "MPB: capacity %d B (%d B/core), used %d B, accesses %d (%d remote), shared-DRAM accesses %d\n",
		r.MPB.CapacityBytes, r.MPB.PerCoreBytes, r.MPB.UsedBytes, r.MPB.Accesses, r.MPB.Remote, r.MPB.SharedAccesses)
	return sb.String()
}

func intList(xs []int) string {
	if len(xs) == 0 {
		return "-"
	}
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, ",")
}
