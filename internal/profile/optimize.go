package profile

// The placement optimizer: given a measured access profile and a
// concrete on-chip budget, decide which shared variables' backing
// stores go to the MPB. Every MPB access saves roughly the same latency
// over uncacheable off-chip DRAM, so the objective is to maximise the
// total number of accesses covered by the chosen set subject to the
// byte budget — a 0/1 knapsack with sizes as weights and measured
// access counts as values. Small instances (every real workload in the
// corpus) are solved exactly; larger ones fall back to the classic
// access-density greedy, and when both run the better packing wins.

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Exact-solver limits: beyond either bound the optimizer is greedy-only.
// maxKnapsackItems keeps the per-budget chosen-set bitmask in a uint64;
// maxKnapsackBudget bounds the DP table (one uint64 value plus one
// uint64 mask per byte of budget).
const (
	maxKnapsackItems  = 48
	maxKnapsackBudget = 1 << 20
)

// Choice is the placement decision for one shared variable.
type Choice struct {
	Name     string `json:"name"`
	Bytes    int    `json:"bytes"`
	Accesses uint64 `json:"accesses"`
	OnChip   bool   `json:"onchip"`
}

// Placement is the optimizer's output: a concrete placement map over
// the profiled shared set for one budget. Choices are sorted by name,
// so the JSON form, the digest and the downstream Stage 4 decision are
// all deterministic in the profile.
type Placement struct {
	Budget int `json:"budget"`
	// Method records how the on-chip set was chosen: "all-onchip" (the
	// set fits), "knapsack" (exact) or "greedy" (density order).
	Method string `json:"method"`
	// OnChipBytes/OnChipAccesses summarise the chosen set.
	OnChipBytes    int      `json:"onchip_bytes"`
	OnChipAccesses uint64   `json:"onchip_accesses"`
	Choices        []Choice `json:"choices"`
}

// OnChip returns the placement as the map Stage 4 consumes.
func (p *Placement) OnChip() map[string]bool {
	m := make(map[string]bool, len(p.Choices))
	for _, c := range p.Choices {
		if c.OnChip {
			m[c.Name] = true
		}
	}
	return m
}

// Digest is a stable fingerprint of the placement map alone (names and
// their on/off decisions). Cache keys include it so two profiled
// translations at the same (cores, policy-name, budget) tuple but with
// different measured placements can never collide — and a profiled cell
// can never collide with a static-policy cell, whose digest is empty.
func (p *Placement) Digest() string {
	h := fnv.New64a()
	for _, c := range p.Choices {
		region := "off"
		if c.OnChip {
			region = "on"
		}
		fmt.Fprintf(h, "%s=%s;", c.Name, region)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// String renders the decision for diagnostics.
func (p *Placement) String() string {
	var on, off []string
	for _, c := range p.Choices {
		if c.OnChip {
			on = append(on, c.Name)
		} else {
			off = append(off, c.Name)
		}
	}
	if len(on) == 0 {
		on = append(on, "-")
	}
	if len(off) == 0 {
		off = append(off, "-")
	}
	return fmt.Sprintf("placement[%s] budget=%d onchip=%d B/%d acc: on-chip %s; off-chip %s (digest %s)",
		p.Method, p.Budget, p.OnChipBytes, p.OnChipAccesses,
		strings.Join(on, ","), strings.Join(off, ","), p.Digest())
}

// item is one optimizer candidate in deterministic (name) order.
type item struct {
	name     string
	bytes    int
	accesses uint64
}

// Optimize chooses the on-chip set for the given effective budget in
// bytes (the caller resolves "0 = full MPB" before calling: a zero or
// negative budget here means no on-chip capacity and degenerates to
// all-off-chip). The chosen set never exceeds the budget; at a budget
// that fits the whole shared set it degenerates to all-on-chip, which
// equals the frequency-greedy order's packing.
func Optimize(rep *Report, budget int) *Placement {
	items := make([]item, 0, len(rep.Vars))
	for i := range rep.Vars {
		v := &rep.Vars[i]
		items = append(items, item{name: v.Name, bytes: v.Bytes, accesses: v.Accesses()})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].name < items[j].name })

	pl := &Placement{Budget: budget}
	onchip := map[string]bool{}
	total := 0
	for _, it := range items {
		total += it.bytes
	}
	switch {
	case budget <= 0:
		pl.Method = "all-offchip"
	case total <= budget:
		pl.Method = "all-onchip"
		for _, it := range items {
			onchip[it.name] = true
		}
	default:
		greedySet, greedyVal := greedyPack(items, budget)
		onchip, pl.Method = greedySet, "greedy"
		if len(items) <= maxKnapsackItems && budget <= maxKnapsackBudget {
			if exactSet, exactVal := knapsack(items, budget); exactVal > greedyVal {
				onchip, pl.Method = exactSet, "knapsack"
			} else if exactVal == greedyVal {
				// Equal value: prefer the exact solution only when it
				// spends fewer bytes; otherwise keep greedy (stable).
				if bytesOf(items, exactSet) < bytesOf(items, greedySet) {
					onchip, pl.Method = exactSet, "knapsack"
				}
			}
		}
	}

	for _, it := range items {
		on := onchip[it.name] && it.bytes > 0
		pl.Choices = append(pl.Choices, Choice{Name: it.name, Bytes: it.bytes, Accesses: it.accesses, OnChip: on})
		if on {
			pl.OnChipBytes += it.bytes
			pl.OnChipAccesses += it.accesses
		}
	}
	return pl
}

func bytesOf(items []item, set map[string]bool) int {
	n := 0
	for _, it := range items {
		if set[it.name] {
			n += it.bytes
		}
	}
	return n
}

// greedyPack places variables in access-density order (accesses per
// byte, descending; ties by name) while they fit — the profile-driven
// analogue of Stage 4's frequency-density policy, with measured counts
// in place of static ones.
func greedyPack(items []item, budget int) (map[string]bool, uint64) {
	order := append([]item(nil), items...)
	sort.SliceStable(order, func(i, j int) bool {
		// Cross-multiplied density compare avoids float rounding:
		// a_i/b_i > a_j/b_j  <=>  a_i*b_j > a_j*b_i (sizes positive).
		bi, bj := uint64(order[i].bytes), uint64(order[j].bytes)
		if bi == 0 || bj == 0 {
			return bi != 0 // zero-sized entries sort last
		}
		di := order[i].accesses * bj
		dj := order[j].accesses * bi
		if di != dj {
			return di > dj
		}
		return order[i].name < order[j].name
	})
	set := map[string]bool{}
	remaining := budget
	var value uint64
	for _, it := range order {
		if it.bytes > 0 && it.bytes <= remaining {
			set[it.name] = true
			remaining -= it.bytes
			value += it.accesses
		}
	}
	return set, value
}

// knapsack solves the 0/1 packing exactly: dp[b] is the best access
// count achievable within b bytes, mask[b] the chosen item set (one bit
// per item in name order). Strict improvement keeps the lowest-indexed
// packing on ties, so the result is deterministic.
func knapsack(items []item, budget int) (map[string]bool, uint64) {
	dp := make([]uint64, budget+1)
	mask := make([]uint64, budget+1)
	for i, it := range items {
		if it.bytes <= 0 || it.bytes > budget {
			continue
		}
		bit := uint64(1) << uint(i)
		for b := budget; b >= it.bytes; b-- {
			if v := dp[b-it.bytes] + it.accesses; v > dp[b] {
				dp[b] = v
				mask[b] = mask[b-it.bytes] | bit
			}
		}
	}
	set := map[string]bool{}
	for i := range items {
		if mask[budget]&(uint64(1)<<uint(i)) != 0 {
			set[items[i].name] = true
		}
	}
	return set, dp[budget]
}
