package profile

import (
	"reflect"
	"testing"
)

func TestCollectorCountsAndSharers(t *testing.T) {
	c := NewCollector(Spec{OffChip: []string{"a", "b"}})
	c.NoteAlloc(false, 0, 0x8000_0000, 64)
	c.NoteAlloc(false, 1, 0x8000_0040, 32)

	c.NoteAccess(0, 0x8000_0000, false) // a read by core 0
	c.NoteAccess(0, 0x8000_0000, true)  // a write by core 0
	c.NoteAccess(2, 0x8000_003f, false) // last byte of a, core 2
	c.NoteAccess(1, 0x8000_0040, true)  // b write by core 1
	c.NoteAccess(0, 0x7000_0000, false) // below every range: ignored
	c.NoteAccess(0, 0x8000_0060, false) // past b: ignored

	vars := c.Snapshot()
	if len(vars) != 2 {
		t.Fatalf("got %d vars, want 2", len(vars))
	}
	a, b := vars[0], vars[1]
	if a.Name != "a" || b.Name != "b" {
		t.Fatalf("order %q,%q, want a,b", a.Name, b.Name)
	}
	if a.Reads != 2 || a.Writes != 1 || a.Bytes != 64 {
		t.Fatalf("a = %+v", a)
	}
	if !reflect.DeepEqual(a.Sharers, []int{0, 2}) {
		t.Fatalf("a sharers %v", a.Sharers)
	}
	if b.Reads != 0 || b.Writes != 1 || !reflect.DeepEqual(b.Sharers, []int{1}) {
		t.Fatalf("b = %+v", b)
	}
	if a.PerCore[0].Core != 0 || a.PerCore[0].Reads != 1 || a.PerCore[0].Writes != 1 {
		t.Fatalf("a per-core = %+v", a.PerCore)
	}
}

func TestCollectorUnlabelledAllocGetsPositionalName(t *testing.T) {
	c := NewCollector(Spec{OnChip: []string{"x"}})
	c.NoteAlloc(true, 0, 0xC000_0000, 32)
	c.NoteAlloc(true, 1, 0xC000_0020, 32) // past the spec'd list
	c.NoteAccess(3, 0xC000_0020, true)
	vars := c.Snapshot()
	if len(vars) != 2 || vars[0].Name != "mpb#1" || vars[1].Name != "x" {
		t.Fatalf("vars = %+v", vars)
	}
	if vars[0].Writes != 1 {
		t.Fatalf("positional var = %+v", vars[0])
	}
}

func TestReportJSONDeterministic(t *testing.T) {
	build := func() *Report {
		c := NewCollector(Spec{OffChip: []string{"v", "u"}})
		c.NoteAlloc(false, 0, 0x8000_0000, 16)
		c.NoteAlloc(false, 1, 0x8000_0010, 16)
		c.NoteAccess(1, 0x8000_0010, false)
		c.NoteAccess(0, 0x8000_0004, true)
		return &Report{Workload: "w", Cores: 2, Scale: 1, Vars: c.Snapshot()}
	}
	a, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := build().JSON()
	if string(a) != string(b) {
		t.Fatalf("JSON not deterministic:\n%s\nvs\n%s", a, b)
	}
}
