package profile

import (
	"math/rand"
	"testing"
)

// randomReport builds a deterministic pseudo-random profile.
func randomReport(rng *rand.Rand, nVars int) *Report {
	rep := &Report{Workload: "prop", Cores: 4, Scale: 1}
	for i := 0; i < nVars; i++ {
		rep.Vars = append(rep.Vars, VarStats{
			Name:  string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Bytes: 1 + rng.Intn(4096),
			Count: Count{Reads: uint64(rng.Intn(10000)), Writes: uint64(rng.Intn(10000))},
		})
	}
	return rep
}

func placedBytes(pl *Placement) int {
	n := 0
	for _, c := range pl.Choices {
		if c.OnChip {
			n += c.Bytes
		}
	}
	return n
}

// TestOptimizeNeverExceedsBudget is the safety property: whatever the
// profile looks like, the chosen on-chip set fits the budget.
func TestOptimizeNeverExceedsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		rep := randomReport(rng, 1+rng.Intn(12))
		budget := rng.Intn(16384)
		pl := Optimize(rep, budget)
		if got := placedBytes(pl); got > budget {
			t.Fatalf("trial %d: placement uses %d bytes over budget %d\n%s", trial, got, budget, pl)
		}
		if pl.OnChipBytes != placedBytes(pl) {
			t.Fatalf("trial %d: OnChipBytes %d disagrees with choices %d", trial, pl.OnChipBytes, placedBytes(pl))
		}
	}
}

// TestOptimizeBudgetZeroAllOffChip: no capacity degenerates to the
// off-chip-only placement.
func TestOptimizeBudgetZeroAllOffChip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		rep := randomReport(rng, 1+rng.Intn(12))
		pl := Optimize(rep, 0)
		for _, c := range pl.Choices {
			if c.OnChip {
				t.Fatalf("budget 0 placed %s on-chip", c.Name)
			}
		}
		if pl.Method != "all-offchip" {
			t.Fatalf("budget 0 method %q", pl.Method)
		}
	}
}

// TestOptimizeInfiniteBudgetMatchesGreedy: with room for everything the
// result is all-on-chip, which equals the frequency-greedy order's
// packing at the same budget.
func TestOptimizeInfiniteBudgetMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		rep := randomReport(rng, 1+rng.Intn(12))
		budget := rep.TotalBytes() + 1 + rng.Intn(1000)
		pl := Optimize(rep, budget)
		for _, c := range pl.Choices {
			if !c.OnChip {
				t.Fatalf("infinite budget left %s off-chip", c.Name)
			}
		}
		// The greedy packing at the same budget chooses the same set.
		items := make([]item, 0, len(rep.Vars))
		for i := range rep.Vars {
			items = append(items, item{rep.Vars[i].Name, rep.Vars[i].Bytes, rep.Vars[i].Accesses()})
		}
		set, _ := greedyPack(items, budget)
		for _, c := range pl.Choices {
			if !set[c.Name] {
				t.Fatalf("greedy at infinite budget disagrees on %s", c.Name)
			}
		}
	}
}

// TestKnapsackAtLeastGreedy: the exact solver never covers fewer
// accesses than the density greedy.
func TestKnapsackAtLeastGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		rep := randomReport(rng, 2+rng.Intn(10))
		budget := 1 + rng.Intn(8192)
		items := make([]item, 0, len(rep.Vars))
		for i := range rep.Vars {
			items = append(items, item{rep.Vars[i].Name, rep.Vars[i].Bytes, rep.Vars[i].Accesses()})
		}
		_, gv := greedyPack(items, budget)
		_, kv := knapsack(items, budget)
		if kv < gv {
			t.Fatalf("trial %d: knapsack value %d below greedy %d (budget %d)", trial, kv, gv, budget)
		}
		// And Optimize picks at least the better of the two.
		pl := Optimize(rep, budget)
		if rep.TotalBytes() > budget && pl.OnChipAccesses < kv {
			t.Fatalf("trial %d: Optimize covers %d accesses, exact packing covers %d", trial, pl.OnChipAccesses, kv)
		}
	}
}

// TestOptimizeDeterministic: same report, same budget, same digest —
// and the digest distinguishes different placements.
func TestOptimizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rep := randomReport(rng, 8)
	a := Optimize(rep, 3000)
	b := Optimize(rep, 3000)
	if a.Digest() != b.Digest() {
		t.Fatalf("same inputs, different digests: %s vs %s", a.Digest(), b.Digest())
	}
	all := Optimize(rep, rep.TotalBytes())
	none := Optimize(rep, 0)
	if all.Digest() == none.Digest() {
		t.Fatalf("all-on-chip and all-off-chip share digest %s", all.Digest())
	}
}
