package conformance

import (
	"flag"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/parser"
	"hsmcc/internal/cc/printer"
)

// Explicit seeds everywhere: the suite's generator seed is a flag, so a
// failure line from any environment reproduces with
// `go test ./internal/conformance -run Suite -conformance.seed=<seed>`.
var (
	flagSeed = flag.Int64("conformance.seed", 1, "base seed for the conformance suite's kernel generator")
	flagN    = flag.Int("conformance.n", 220, "number of generated kernels the suite checks")
)

// TestConformanceSuite is the deterministic differential suite: ≥200
// generated Pthread kernels, each run through the interpreter baseline
// and the full translate→RCCE→sccsim pipeline across the default
// (cores × policy × budget) matrix, with zero tolerated divergence.
func TestConformanceSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs hundreds of simulated kernels")
	}
	eng := NewEngine()
	if err := eng.Matrix.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(eng.Matrix.Policies) < 3 {
		t.Fatalf("suite must cover at least 3 placement policies, got %v", eng.Matrix.Policies)
	}
	n := *flagN
	if n < 200 {
		t.Fatalf("suite must check at least 200 kernels, -conformance.n=%d", n)
	}
	rep := eng.Run(*flagSeed, n, runtime.NumCPU(), t.Errorf)
	t.Logf("checked %d kernels x %d RCCE cells each (base seed %d, policies %v, budgets %v)",
		rep.Kernels, eng.Matrix.Cells(), rep.BaseSeed, eng.Matrix.Policies, eng.Matrix.Budgets)
	if len(rep.Failures) != 0 {
		t.Fatalf("%d of %d kernels diverged", len(rep.Failures), rep.Kernels)
	}
}

// TestConformanceRegressionSeeds replays the persisted seed corpus:
// pinned generated kernels plus any crashers hsmconf minimized into
// testdata/conformance, each at its recorded (cores, policy, budget)
// cell.
func TestConformanceRegressionSeeds(t *testing.T) {
	eng := NewEngine()
	divs, err := eng.Replay("../../testdata/conformance")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range divs {
		t.Errorf("regression seed diverged: %s", d)
	}
	cases, err := LoadSeeds("../../testdata/conformance")
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < 3 {
		t.Fatalf("seed corpus has %d entries, want the 3 pinned kernels at least", len(cases))
	}
	t.Logf("replayed %d corpus kernels", len(cases))
}

// TestSpecForSeedDeterministic pins the reproducibility contract: the
// same seed yields byte-identical kernels, and neighbouring seeds yield
// different ones.
func TestSpecForSeedDeterministic(t *testing.T) {
	a := SpecForSeed(*flagSeed, DefaultGenOptions())
	b := SpecForSeed(*flagSeed, DefaultGenOptions())
	if a.Source(4) != b.Source(4) {
		t.Fatal("same seed generated different kernels")
	}
	c := SpecForSeed(*flagSeed+1, DefaultGenOptions())
	if a.Source(4) == c.Source(4) {
		t.Fatal("adjacent seeds generated identical kernels (rng not seeded?)")
	}
}

// TestGeneratedProgramsRoundTrip is the printer round-trip property over
// generated programs: the emitted IR prints to source that re-parses to
// a structurally equal tree, and printing is a text fixpoint.
func TestGeneratedProgramsRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		spec := SpecForSeed(*flagSeed+seed, DefaultGenOptions())
		for _, threads := range []int{1, 2, 5} {
			file := spec.File(threads)
			src := printer.Print(file)
			reparsed, err := parser.Parse("roundtrip.c", src)
			if err != nil {
				t.Fatalf("seed %d threads %d: generated program does not re-parse: %v\n%s",
					spec.Seed, threads, err, src)
			}
			if !ast.Equal(file, reparsed) {
				t.Fatalf("seed %d threads %d: reparsed tree differs structurally\n%s",
					spec.Seed, threads, src)
			}
			if again := printer.Print(reparsed); again != src {
				t.Fatalf("seed %d threads %d: print is not a fixpoint\n--- first\n%s\n--- second\n%s",
					spec.Seed, threads, src, again)
			}
		}
	}
}

// fatSpec is a deliberately feature-dense kernel: three arrays of mixed
// kinds, a serial (LU-style) round, a mutex-guarded counter, a guarded
// cross-slice read and a per-thread print. Used to prove the oracle
// catches an injected translator bug anywhere in that structure and the
// shrinker strips it all back off.
func fatSpec() *Spec {
	return &Spec{
		Seed:      424242,
		PerThread: 3,
		Arrays:    []ElemKind{KInt, KDouble, KInt},
		Mutex:     true,
		Rounds: []Round{
			{
				Serial: 2,
				Loop: []Stmt{
					{Arr: 0, RHS: &Expr{Op: OpAdd, K: KInt,
						X: &Expr{Op: OpI, K: KInt},
						Y: &Expr{Op: OpAdd, K: KInt, X: &Expr{Op: OpRR, K: KInt}, Y: &Expr{Op: OpIntLit, K: KInt, Val: 1}}}},
					{Arr: 1, RHS: &Expr{Op: OpMul, K: KDouble,
						X: &Expr{Op: OpMe, K: KInt},
						Y: &Expr{Op: OpFloatLit, K: KDouble, FVal: 0.5}}},
				},
				Crit:  &Expr{Op: OpMe, K: KInt},
				Print: true,
			},
			{
				Loop: []Stmt{
					{Arr: 2, AddTo: true,
						RHS:   &Expr{Op: OpRead, K: KInt, Arr: 0, Idx: &Expr{Op: OpModN, K: KInt, X: &Expr{Op: OpI, K: KInt}}},
						Guard: &Expr{Op: OpI, K: KInt}},
				},
			},
		},
	}
}

// TestInjectedTranslateBugCaughtAndShrunk is the acceptance check for
// the whole engine: corrupt the translator output the way a broken
// Algorithm 4 would (every core gets thread ID 0 instead of its core
// ID), verify the differential oracle catches it, and verify the
// shrinker reduces the feature-dense failing kernel to a reproducer of
// at most 25 lines that still fails — while the uncorrupted pipeline
// passes both the original and the minimized kernel.
func TestInjectedTranslateBugCaughtAndShrunk(t *testing.T) {
	spec := fatSpec()

	clean := NewEngine()
	if div := clean.Check(spec); div != nil {
		t.Fatalf("clean pipeline must pass the fat kernel, got %s\n%s", div, div.Source)
	}

	buggy := NewEngine()
	buggy.Mutate = func(src string) string {
		// ThreadsToProcesses emits `step<r>((void *)(myID));` — dropping
		// the core ID simulates a broken UseCoreID in Algorithm 4.
		return strings.ReplaceAll(src, "(void *)(myID)", "(void *)(0)")
	}
	div := buggy.Check(spec)
	if div == nil {
		t.Fatal("injected translate bug was not caught by the differential oracle")
	}
	t.Logf("caught: %s", div)

	min := buggy.Shrink(spec, div)
	minSrc := min.Source(div.Cores)
	lines := strings.Count(minSrc, "\n")
	t.Logf("minimized to %d lines:\n%s", lines, minSrc)
	if lines > 25 {
		t.Fatalf("minimized reproducer is %d lines, want <= 25:\n%s", lines, minSrc)
	}
	if buggy.CheckCell(min, div.Cores, div.Policy, div.Budget, div.Oversub) == nil {
		t.Fatal("minimized kernel no longer reproduces the injected bug")
	}
	if d := clean.CheckCell(min, div.Cores, div.Policy, div.Budget, div.Oversub); d != nil {
		t.Fatalf("minimized kernel fails even without the injected bug: %s", d)
	}
}

// TestInjectedBarrierBugCaught checks a second fault class: deleting the
// RCCE barrier that a join loop became must also be observable. Unlike
// the thread-ID fault this one corrupts synchronisation, not data
// distribution — with no barrier, main's reduction on fast cores can
// read slices slower cores have not produced yet.
func TestInjectedBarrierBugCaught(t *testing.T) {
	buggy := NewEngine()
	buggy.Matrix = Matrix{Cores: []int{4}, Policies: []string{"offchip", "size", "freq"}, Budgets: []int{0}}
	buggy.Mutate = func(src string) string {
		return strings.ReplaceAll(src, "RCCE_barrier(&RCCE_COMM_WORLD);", ";")
	}
	caught := 0
	for seed := int64(0); seed < 12; seed++ {
		spec := SpecForSeed(*flagSeed+1000+seed, DefaultGenOptions())
		if buggy.Check(spec) != nil {
			caught++
		}
	}
	if caught == 0 {
		t.Fatal("removing every barrier was never observable across 12 kernels")
	}
	t.Logf("barrier removal caught on %d of 12 kernels", caught)
}

// TestShrinkIsDeterministic: shrinking the same failure twice yields the
// same reproducer (the shrinker enumerates candidates in a fixed order).
func TestShrinkIsDeterministic(t *testing.T) {
	spec := fatSpec()
	buggy := NewEngine()
	buggy.Mutate = func(src string) string {
		return strings.ReplaceAll(src, "(void *)(myID)", "(void *)(0)")
	}
	div := buggy.Check(spec)
	if div == nil {
		t.Fatal("expected a divergence")
	}
	a := buggy.Shrink(spec, div).Source(div.Cores)
	b := buggy.Shrink(spec, div).Source(div.Cores)
	if a != b {
		t.Fatalf("shrink is nondeterministic:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestGenerateRespectsBounds sanity-checks the generator against its
// options so suite cost stays predictable.
func TestGenerateRespectsBounds(t *testing.T) {
	opts := DefaultGenOptions()
	for seed := int64(0); seed < 200; seed++ {
		s := Generate(rand.New(rand.NewSource(seed)), opts)
		if len(s.Arrays) < 1 || len(s.Arrays) > opts.MaxArrays {
			t.Fatalf("seed %d: %d arrays", seed, len(s.Arrays))
		}
		if len(s.Rounds) < 1 || len(s.Rounds) > opts.MaxRounds {
			t.Fatalf("seed %d: %d rounds", seed, len(s.Rounds))
		}
		if s.PerThread < 1 || s.PerThread > opts.MaxPerThread {
			t.Fatalf("seed %d: per-thread %d", seed, s.PerThread)
		}
		for _, r := range s.Rounds {
			if len(r.Loop) > opts.MaxStmts {
				t.Fatalf("seed %d: %d stmts in round", seed, len(r.Loop))
			}
			if r.Serial > opts.MaxSerial {
				t.Fatalf("seed %d: serial %d", seed, r.Serial)
			}
		}
	}
}
