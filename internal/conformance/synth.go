package conformance

import (
	"strings"
	"sync"

	"hsmcc/internal/synth"
)

// Synthetic-workload conformance: the same differential oracle the spec
// generator runs under, driven by internal/synth's continuous parameter
// vectors instead of the discrete kernel grammar. A synth seed maps to
// a vector (synth.ParamsForSeed), the vector emits one kernel per UE
// count, and the kernel is checked across the engine's full matrix.
// Failures shrink in parameter space — synth.Reductions moves the
// vector toward the trivial corner while the failing cell keeps
// reproducing — which is delta debugging over the memory-behaviour
// plane rather than over AST structure.

// CheckSynth runs the vector's kernel across the whole matrix and
// returns the first divergence (marked as synthetic, carrying the
// vector's canonical key) or nil.
func (e *Engine) CheckSynth(p synth.Params) *Divergence {
	return e.markSynth(p, e.checkMatrix(p.Seed, p.Source))
}

// CheckSynthCell checks the vector at one matrix cell.
func (e *Engine) CheckSynthCell(p synth.Params, cores int, policy string, budget, oversub int) *Divergence {
	ues := cores * max(oversub, 1)
	return e.markSynth(p, e.CheckSource(p.Seed, p.Source(ues), cores, policy, budget, oversub))
}

func (e *Engine) markSynth(p synth.Params, div *Divergence) *Divergence {
	if div != nil {
		div.Synth = true
		div.SynthKey = p.Key()
	}
	return div
}

// ShrinkSynth reduces a failing vector to a minimal reproducer at the
// originally-failing cell: greedy first-improvement over
// synth.Reductions, the parameter-space analogue of the spec shrinker.
func (e *Engine) ShrinkSynth(p synth.Params, div *Divergence) synth.Params {
	return synth.Shrink(p, func(c synth.Params) bool {
		return e.CheckSynthCell(c, div.Cores, div.Policy, div.Budget, div.Oversub) != nil
	})
}

// SynthFailure is one failed synthetic kernel with its shrunken
// reproducer.
type SynthFailure struct {
	Seed      int64        `json:"seed"`
	Params    synth.Params `json:"params"`
	Div       *Divergence  `json:"divergence"`
	Minimized synth.Params `json:"minimized"`
	MinSource string       `json:"min_source,omitempty"`
}

// SynthReport summarises a synthetic conformance run.
type SynthReport struct {
	BaseSeed int64
	Kernels  int
	Failures []*SynthFailure
}

// RunSynth checks n seed-derived vectors (seeds base..base+n-1) across
// a worker pool, shrinking any failures. The worker-pool shape mirrors
// Run; kernel i of a sweep reproduces directly via
// `hsmconf -synth -seed base+i -n 1`.
func (e *Engine) RunSynth(base int64, n, parallel int, logf func(format string, args ...any)) *SynthReport {
	if parallel < 1 {
		parallel = 1
	}
	rep := &SynthReport{BaseSeed: base, Kernels: n}
	var mu sync.Mutex
	jobs := make(chan int64)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range jobs {
				p := synth.ParamsForSeed(seed)
				div := e.CheckSynth(p)
				if div == nil {
					continue
				}
				min := e.ShrinkSynth(p, div)
				ues := div.Cores * max(div.Oversub, 1)
				f := &SynthFailure{Seed: seed, Params: p, Div: div,
					Minimized: min, MinSource: min.Source(ues)}
				mu.Lock()
				rep.Failures = append(rep.Failures, f)
				mu.Unlock()
				if logf != nil {
					logf("conformance: FAIL %s\nminimized vector %s (%d lines):\n%s",
						div, min.Key(), strings.Count(f.MinSource, "\n"), f.MinSource)
				}
			}
		}()
	}
	for i := int64(0); i < int64(n); i++ {
		jobs <- base + i
	}
	close(jobs)
	wg.Wait()
	return rep
}
