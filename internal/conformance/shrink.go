package conformance

import (
	"encoding/json"
)

// maxShrinkEvals bounds how many candidate kernels one shrink may
// execute; each evaluation re-runs both backends at the failing cell.
const maxShrinkEvals = 400

// Shrink reduces a failing spec to a minimal reproducer: it repeatedly
// tries structural reductions (drop rounds, statements, arrays; shrink
// loops to slot writes; replace expressions by their subtrees) and keeps
// any candidate that still fails at the originally-failing matrix cell.
// Greedy first-improvement to a fixpoint — the classic delta-debugging
// loop specialised to the Spec shape, which is why shrinking happens on
// the spec rather than on C text: every candidate is well-typed and
// race-free by construction.
func (e *Engine) Shrink(spec *Spec, div *Divergence) *Spec {
	evals := 0
	fails := func(s *Spec) bool {
		if evals >= maxShrinkEvals {
			return false
		}
		evals++
		return e.CheckCell(s, div.Cores, div.Policy, div.Budget, div.Oversub) != nil
	}
	cur := cloneSpec(spec)
	for {
		improved := false
		for _, cand := range reductions(cur) {
			if cand.size() >= cur.size() {
				continue
			}
			if fails(cand) {
				cur = cand
				improved = true
				break
			}
		}
		if !improved || evals >= maxShrinkEvals {
			return cur
		}
	}
}

// cloneSpec deep-copies via JSON: Spec is fully exported and acyclic.
func cloneSpec(s *Spec) *Spec {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err) // Spec is always marshallable
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		panic(err)
	}
	return &out
}

// size is the node count the shrinker minimises.
func (s *Spec) size() int {
	n := len(s.Arrays) + s.PerThread + 2*len(s.Ptrs)
	if s.Mutex {
		n += 2
	}
	for _, r := range s.Rounds {
		n += 2
		if r.Serial > 1 {
			n += 2
		}
		if r.Print {
			n++
		}
		if !r.Slot {
			n++ // the loop scaffolding itself
		}
		if r.Solo != nil {
			n += 2 + exprSize(r.Solo.RHS)
		}
		n += exprSize(r.Crit)
		for _, st := range r.Loop {
			n += 1 + exprSize(st.RHS) + exprSize(st.Guard)
			if st.AddTo {
				n++
			}
			if st.Ptr > 0 {
				n++
			}
		}
	}
	return n
}

func exprSize(e *Expr) int {
	if e == nil {
		return 0
	}
	return 1 + exprSize(e.X) + exprSize(e.Y) + exprSize(e.Idx)
}

// reductions enumerates one-step-smaller candidate specs. Order matters
// for the greedy loop: the cheap per-round feature drops (print, crit,
// serial wrapper) come first so that when a fault is observable through
// several program features at once, shrinking strips the expensive
// scaffolding (mutex, serial loop) before structural drops can commit
// the spec to a local minimum that needs it.
func reductions(s *Spec) []*Spec {
	var out []*Spec
	add := func(f func(*Spec)) {
		c := cloneSpec(s)
		f(c)
		out = append(out, c)
	}

	// Feature drops first.
	for i := range s.Rounds {
		i := i
		r := &s.Rounds[i]
		if r.Print {
			add(func(c *Spec) { c.Rounds[i].Print = false })
		}
		if r.Solo != nil {
			add(func(c *Spec) { c.Rounds[i].Solo = nil })
		}
		if r.Crit != nil {
			add(func(c *Spec) {
				c.Rounds[i].Crit = nil
				if !c.anyCrit() {
					c.Mutex = false
				}
			})
		}
		if r.Serial > 1 {
			add(func(c *Spec) {
				c.Rounds[i].Serial = 0
				c.Rounds[i].mapExprs(func(e *Expr) {
					if e.Op == OpRR {
						*e = Expr{Op: OpIntLit, K: KInt}
					}
				})
			})
		}
	}
	// Drop whole rounds (keep at least one).
	if len(s.Rounds) > 1 {
		for i := range s.Rounds {
			i := i
			add(func(c *Spec) { c.Rounds = append(c.Rounds[:i], c.Rounds[i+1:]...) })
		}
	}
	// Drop shared pointers: aliased reads become direct cross-slice
	// reads of the pointee (index re-wrapped mod N), aliased writes
	// become direct writes. Also try demoting each pointer-routed write
	// to a direct one without dropping the pointer.
	for j := range s.Ptrs {
		j := j
		add(func(c *Spec) { c.dropPtr(j) })
	}
	for i := range s.Rounds {
		i := i
		for j := range s.Rounds[i].Loop {
			j := j
			if s.Rounds[i].Loop[j].Ptr > 0 {
				add(func(c *Spec) { c.Rounds[i].Loop[j].Ptr = 0 })
			}
		}
	}
	// Drop arrays: statements targeting the array go with it, reads of
	// it become zero literals, and later arrays shift down one id.
	if len(s.Arrays) > 1 {
		for a := range s.Arrays {
			a := a
			add(func(c *Spec) { c.dropArray(a) })
		}
	}
	// Shrink the slice width.
	if s.PerThread > 1 {
		add(func(c *Spec) { c.PerThread = 1; c.stripOpI() })
	}
	// Per-round structural reductions.
	for i := range s.Rounds {
		i := i
		r := &s.Rounds[i]
		if len(r.Loop) > 1 {
			for j := range r.Loop {
				j := j
				add(func(c *Spec) {
					c.Rounds[i].Loop = append(c.Rounds[i].Loop[:j], c.Rounds[i].Loop[j+1:]...)
				})
			}
		}
		// Loop -> direct slot write (valid once PerThread == 1; OpI then
		// means exactly "me").
		if !r.Slot && s.PerThread == 1 {
			add(func(c *Spec) { c.Rounds[i].Slot = true })
		}
		for j := range r.Loop {
			j := j
			st := &r.Loop[j]
			if st.Guard != nil {
				add(func(c *Spec) { c.Rounds[i].Loop[j].Guard = nil })
			}
			if st.AddTo {
				add(func(c *Spec) { c.Rounds[i].Loop[j].AddTo = false })
			}
			for _, sub := range subExprs(st.RHS) {
				sub := sub
				add(func(c *Spec) { c.Rounds[i].Loop[j].RHS = sub })
			}
		}
		if r.Solo != nil {
			for _, sub := range subExprs(r.Solo.RHS) {
				sub := sub
				add(func(c *Spec) { c.Rounds[i].Solo.RHS = sub })
			}
		}
		for _, sub := range subExprs(r.Crit) {
			sub := sub
			add(func(c *Spec) { c.Rounds[i].Crit = sub })
		}
	}
	return out
}

// subExprs returns strictly smaller replacement candidates for e: its
// direct children plus the unit literal.
func subExprs(e *Expr) []*Expr {
	if e == nil {
		return nil
	}
	var out []*Expr
	for _, c := range []*Expr{e.X, e.Y, e.Idx} {
		if c != nil {
			out = append(out, cloneExpr(c))
		}
	}
	if exprSize(e) > 1 {
		out = append(out, &Expr{Op: OpIntLit, K: KInt, Val: 1})
	}
	return out
}

func cloneExpr(e *Expr) *Expr {
	if e == nil {
		return nil
	}
	c := *e
	c.X = cloneExpr(e.X)
	c.Y = cloneExpr(e.Y)
	c.Idx = cloneExpr(e.Idx)
	return &c
}

// dropPtr removes pointer j: writes through it become direct writes,
// aliased reads become direct mod-N cross-slice reads of the pointee,
// and later pointers shift down one id.
func (s *Spec) dropPtr(j int) {
	s.Ptrs = append(s.Ptrs[:j], s.Ptrs[j+1:]...)
	for i := range s.Rounds {
		r := &s.Rounds[i]
		for k := range r.Loop {
			if r.Loop[k].Ptr == j+1 {
				r.Loop[k].Ptr = 0
			} else if r.Loop[k].Ptr > j+1 {
				r.Loop[k].Ptr--
			}
		}
		r.mapExprs(func(e *Expr) {
			if e.Op != OpRead || e.Via == 0 {
				return
			}
			if e.Via == j+1 {
				e.Via = 0
				e.Idx = &Expr{Op: OpModN, K: KInt, X: e.Idx}
			} else if e.Via > j+1 {
				e.Via--
			}
		})
	}
}

// dropArray removes array a, retargets the program away from it.
func (s *Spec) dropArray(a int) {
	// Pointers into the array go first (their uses become direct forms).
	for j := 0; j < len(s.Ptrs); {
		if s.Ptrs[j].Arr == a {
			s.dropPtr(j)
		} else {
			j++
		}
	}
	for j := range s.Ptrs {
		if s.Ptrs[j].Arr > a {
			s.Ptrs[j].Arr--
		}
	}
	s.Arrays = append(s.Arrays[:a], s.Arrays[a+1:]...)
	for i := range s.Rounds {
		r := &s.Rounds[i]
		var kept []Stmt
		for _, st := range r.Loop {
			if st.Arr == a {
				continue
			}
			if st.Arr > a {
				st.Arr--
			}
			kept = append(kept, st)
		}
		r.Loop = kept
		if r.Solo != nil {
			if r.Solo.Arr == a {
				r.Solo = nil
			} else if r.Solo.Arr > a {
				r.Solo.Arr--
			}
		}
		r.mapExprs(func(e *Expr) {
			if e.Op != OpRead {
				return
			}
			if e.Arr == a {
				k := e.K
				*e = Expr{Op: OpIntLit, K: KInt}
				if k == KDouble {
					*e = Expr{Op: OpFloatLit, K: KDouble}
				}
			} else if e.Arr > a {
				e.Arr--
			}
		})
		// The per-thread print probes array 0; keep it only while one
		// array remains (it always does — Arrays is never emptied).
	}
}

// stripOpI is a no-op placeholder kept for symmetry: OpI stays valid at
// any PerThread (the loop still exists until a round turns on Slot).
func (s *Spec) stripOpI() {}

func (s *Spec) anyCrit() bool {
	for _, r := range s.Rounds {
		if r.Crit != nil {
			return true
		}
	}
	return false
}

// mapExprs applies f to every expression node of the round, bottom-up.
func (r *Round) mapExprs(f func(*Expr)) {
	var walk func(*Expr)
	walk = func(e *Expr) {
		if e == nil {
			return
		}
		walk(e.X)
		walk(e.Y)
		walk(e.Idx)
		f(e)
	}
	for i := range r.Loop {
		walk(r.Loop[i].RHS)
		walk(r.Loop[i].Guard)
	}
	if r.Solo != nil {
		walk(r.Solo.RHS)
	}
	walk(r.Crit)
}
