package conformance

import (
	"strings"
	"testing"
)

// TestGeneratorEmitsSharedPointers pins the pointer-typed shared-global
// extension: across a seed range, some kernels must declare pointers
// into the shared arrays and use them — aliased reads with the
// windowed index, and zero-offset aliased writes — and every such use
// must obey the race-freedom rules the generator promises.
func TestGeneratorEmitsSharedPointers(t *testing.T) {
	kernels, reads, writes := 0, 0, 0
	for seed := int64(0); seed < 120; seed++ {
		spec := SpecForSeed(seed, DefaultGenOptions())
		if len(spec.Ptrs) == 0 {
			continue
		}
		kernels++
		for _, pt := range spec.Ptrs {
			if pt.Arr < 0 || pt.Arr >= len(spec.Arrays) {
				t.Fatalf("seed %d: pointer targets array %d of %d", seed, pt.Arr, len(spec.Arrays))
			}
			if pt.Off < 0 || pt.Off >= spec.PerThread {
				t.Fatalf("seed %d: pointer offset %d outside [0, PerThread=%d)", seed, pt.Off, spec.PerThread)
			}
		}
		src := spec.Source(4)
		if !strings.Contains(src, "*P0") {
			t.Fatalf("seed %d: spec has pointers but source lacks the declaration:\n%s", seed, src)
		}
		for ri := range spec.Rounds {
			rd := &spec.Rounds[ri]
			written := map[int]bool{}
			for _, st := range rd.Loop {
				written[st.Arr] = true
			}
			if rd.Solo != nil {
				written[rd.Solo.Arr] = true
			}
			for _, st := range rd.Loop {
				if st.Ptr > 0 {
					writes++
					pt := spec.Ptrs[st.Ptr-1]
					if pt.Off != 0 || pt.Arr != st.Arr {
						t.Fatalf("seed %d: pointer write via P%d (arr %d off %d) targeting array %d",
							seed, st.Ptr-1, pt.Arr, pt.Off, st.Arr)
					}
				}
			}
			rd.mapExprs(func(e *Expr) {
				if e.Op == OpRead && e.Via > 0 {
					reads++
					pt := spec.Ptrs[e.Via-1]
					if written[pt.Arr] {
						t.Fatalf("seed %d: aliased read of array %d which this round writes", seed, pt.Arr)
					}
				}
			})
		}
	}
	if kernels == 0 || reads == 0 || writes == 0 {
		t.Fatalf("pointer coverage too thin across 120 seeds: kernels=%d aliased reads=%d aliased writes=%d",
			kernels, reads, writes)
	}
	t.Logf("%d kernels with shared pointers, %d aliased reads, %d aliased writes", kernels, reads, writes)
}

// TestSharedPointerKernelMatrix runs pointer-carrying kernels through
// the full differential matrix (including an oversubscribed cell) — the
// end-to-end guarantee that the translator's shared-pointer path agrees
// with the Pthread baseline under every placement.
func TestSharedPointerKernelMatrix(t *testing.T) {
	e := NewEngine()
	checked := 0
	for seed := int64(0); seed < 400 && checked < 6; seed++ {
		spec := SpecForSeed(seed, DefaultGenOptions())
		if len(spec.Ptrs) == 0 || !specUsesPtrs(spec) {
			continue
		}
		checked++
		if div := e.Check(spec); div != nil {
			t.Errorf("seed %d: %s", seed, div)
		}
	}
	if checked == 0 {
		t.Fatal("no pointer-using kernels found to check")
	}
}

// specUsesPtrs reports whether any round actually reads or writes
// through a shared pointer.
func specUsesPtrs(s *Spec) bool {
	used := false
	for ri := range s.Rounds {
		for _, st := range s.Rounds[ri].Loop {
			if st.Ptr > 0 {
				used = true
			}
		}
		s.Rounds[ri].mapExprs(func(e *Expr) {
			if e.Op == OpRead && e.Via > 0 {
				used = true
			}
		})
	}
	return used
}
