package conformance

import (
	"flag"
	"runtime"
	"strings"
	"testing"

	"hsmcc/internal/synth"
)

var flagSynthN = flag.Int("conformance.synthn", 120, "number of synthetic kernels the synth suite checks")

// TestSynthConformanceSuite is the synthetic analogue of the main
// differential suite: seed-derived parameter vectors, each emitted as a
// race-free Pthread kernel and checked through the interpreter baseline
// vs the translate→RCCE→sccsim pipeline across the full default matrix,
// with zero tolerated divergence.
func TestSynthConformanceSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs dozens of simulated kernels over the full matrix")
	}
	eng := NewEngine()
	rep := eng.RunSynth(1, *flagSynthN, runtime.NumCPU(), t.Errorf)
	t.Logf("checked %d synthetic kernels x %d RCCE cells each", rep.Kernels, eng.Matrix.Cells())
	if len(rep.Failures) != 0 {
		t.Fatalf("%d of %d synthetic kernels diverged", len(rep.Failures), rep.Kernels)
	}
}

// TestSynthDivergenceReproLine pins the repro contract: a synthetic
// divergence identifies itself and prints an hsmconf -synth line.
func TestSynthDivergenceReproLine(t *testing.T) {
	buggy := NewEngine()
	buggy.Matrix = SmokeMatrix()
	buggy.Mutate = func(src string) string {
		return strings.ReplaceAll(src, "(void *)(myID)", "(void *)(0)")
	}
	p := synthFatParams()
	div := buggy.CheckSynth(p)
	if div == nil {
		t.Fatal("injected thread-ID bug not caught on a synthetic kernel")
	}
	if !div.Synth || div.SynthKey != p.Key() {
		t.Fatalf("divergence not marked synthetic: %+v", div)
	}
	if line := div.String(); !strings.Contains(line, "hsmconf -synth -seed") {
		t.Fatalf("repro line lacks -synth mode: %s", line)
	}
}

// synthFatParams is a deliberately feature-dense vector: every op
// bucket populated, multi-round, multi-group sharing — the analogue of
// the spec tests' fatSpec.
func synthFatParams() synth.Params {
	return synth.Params{
		Seed:         42,
		Ops:          64,
		MemFrac:      0.8,
		LoadFrac:     0.5,
		SharedFrac:   0.5,
		Sharing:      2,
		SharedAddrs:  24,
		PrivateAddrs: 12,
		Rounds:       3,
		Double:       true,
	}
}

// TestInjectedBugCaughtOnSynthAndShrunk is the synth-mode acceptance
// check: the differential oracle catches an injected translator fault
// on a synthetic kernel, and parameter-vector shrinking reduces the
// dense vector to a minimal reproducer that still fails under the
// fault and passes without it.
func TestInjectedBugCaughtOnSynthAndShrunk(t *testing.T) {
	p := synthFatParams()

	clean := NewEngine()
	if div := clean.CheckSynth(p); div != nil {
		t.Fatalf("clean pipeline must pass the fat synthetic kernel, got %s\n%s", div, div.Source)
	}

	buggy := NewEngine()
	buggy.Mutate = func(src string) string {
		return strings.ReplaceAll(src, "(void *)(myID)", "(void *)(0)")
	}
	div := buggy.CheckSynth(p)
	if div == nil {
		t.Fatal("injected translate bug was not caught on the synthetic kernel")
	}
	t.Logf("caught: %s", div)

	min := buggy.ShrinkSynth(p, div)
	if min.Complexity() >= p.Complexity() {
		t.Fatalf("shrink did not reduce the vector: %+v", min)
	}
	min2 := buggy.ShrinkSynth(p, div)
	if min != min2 {
		t.Fatalf("synth shrink is nondeterministic: %+v vs %+v", min, min2)
	}
	if buggy.CheckSynthCell(min, div.Cores, div.Policy, div.Budget, div.Oversub) == nil {
		t.Fatal("minimized vector no longer reproduces the injected bug")
	}
	if d := clean.CheckSynthCell(min, div.Cores, div.Policy, div.Budget, div.Oversub); d != nil {
		t.Fatalf("minimized vector fails even without the injected bug: %s", d)
	}
	t.Logf("minimized %s -> %s", p.Key(), min.Key())
}

// TestSynthOversubscribedCells checks the §7.2 many-to-one mapping on
// synthetic kernels specifically: the emitted thread count is
// cores×factor, and both backends agree at factor 2.
func TestSynthOversubscribedCells(t *testing.T) {
	eng := NewEngine()
	eng.Matrix = Matrix{Cores: []int{2}, Policies: []string{"offchip", "size"}, Budgets: []int{0}, Oversub: []int{2}}
	for seed := int64(100); seed < 106; seed++ {
		if div := eng.CheckSynth(synth.ParamsForSeed(seed)); div != nil {
			t.Fatalf("seed %d oversubscribed: %s\n%s", seed, div, div.Source)
		}
	}
}
