// Package conformance is the differential conformance engine: a seeded
// generator of random-but-well-typed Pthread kernels plus an oracle that
// runs every kernel through the single-core Pthread interpreter baseline
// AND through the full translate→RCCE→sccsim pipeline across a
// (cores × placement policy × MPB budget) matrix, failing on any output
// divergence. The paper's core claim — translation preserves program
// semantics under every placement of shared data between the MPB and
// off-chip shared memory — becomes a checked invariant over thousands of
// programs instead of ten hand-written benchmarks.
//
// Kernels are generated as a Spec: a small, fully-exported, shrinkable
// description of a Pthread program (shared arrays, barrier-separated
// launch/join rounds, mutex-guarded updates, per-thread prints) that
// Emit renders to an IR tree and C source. Working at the spec level
// keeps every generated program well-typed and data-race-free by
// construction — cross-slice reads are only generated from arrays that
// no thread writes in the same round — which is exactly the class of
// "well-defined Pthread programs" the thesis's translator accepts.
package conformance

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/printer"
	"hsmcc/internal/cc/token"
	"hsmcc/internal/cc/types"
)

// ElemKind is the element type of a generated shared array or expression.
type ElemKind int

// Element kinds.
const (
	KInt ElemKind = iota
	KDouble
)

func (k ElemKind) ctype() *types.Type {
	if k == KDouble {
		return types.DoubleType
	}
	return types.IntType
}

// Op enumerates the expression forms the generator emits.
type Op string

// Expression operators. Arithmetic is closed over {+, -, *, %} — no
// division, so generated programs cannot fault — and OpModN is the
// emit-time "mod array length" used to keep cross-slice reads in bounds.
const (
	OpIntLit   Op = "int"
	OpFloatLit Op = "float"
	OpMe       Op = "me" // thread ID / core ID
	OpI        Op = "i"  // per-element loop induction variable
	OpRR       Op = "rr" // serial-round variable (LU's kk)
	OpRead     Op = "read"
	OpAdd      Op = "add"
	OpSub      Op = "sub"
	OpMul      Op = "mul"
	OpMod      Op = "mod"  // int only; Y is a positive literal
	OpModN     Op = "modn" // X % N where N = threads*PerThread, resolved at emit
)

// Expr is a tiny expression tree over the kernel context. K is the
// node's result kind; Emit inserts (int)/(double) casts wherever a
// child's kind differs.
type Expr struct {
	Op   Op       `json:"op"`
	K    ElemKind `json:"k"`
	Val  int64    `json:"val,omitempty"`
	FVal float64  `json:"fval,omitempty"`
	Arr  int      `json:"arr,omitempty"`
	// Via, when > 0, routes an OpRead through shared pointer Via-1
	// (Ptrs[Via-1].Arr == Arr): the emitted form is
	// `P<j>[(<Idx>) % (N - Off)]`, an aliased read into the pointee
	// array that stays in bounds for every thread count. Restricted to
	// arrays stable in the current round, exactly like cross-slice
	// reads, so the alias is race-free by construction.
	Via int   `json:"via,omitempty"`
	Idx *Expr `json:"idx,omitempty"`
	X   *Expr `json:"x,omitempty"`
	Y   *Expr `json:"y,omitempty"`
}

// Stmt is one statement of a round's per-element loop: an assignment (or
// read-modify-write) of the target array's element at the loop index,
// optionally guarded by a deterministic parity test.
type Stmt struct {
	Arr   int   `json:"arr"`
	AddTo bool  `json:"add_to,omitempty"`
	RHS   *Expr `json:"rhs"`
	// Ptr, when > 0, writes through shared pointer Ptr-1 instead of the
	// array name: `P<j>[i] = ...`. Only zero-offset pointers to the
	// statement's own target array qualify, so the aliased store hits
	// exactly the element the direct store would — same race profile,
	// different lvalue path through the translator.
	Ptr int `json:"ptr,omitempty"`
	// Guard, when non-nil, wraps the assignment in
	// `if ((<guard>) % 2 == 0)`.
	Guard *Expr `json:"guard,omitempty"`
}

// Ptr is one pointer-typed shared global: `T *P<j>;` initialised in
// main (before any launch, hence race-free) as `P<j> = A<Arr> + Off;`.
// Off stays below PerThread so the alias window is valid at every
// thread count the matrix sweeps.
type Ptr struct {
	Arr int `json:"arr"`
	Off int `json:"off,omitempty"`
}

// Solo is a thread-specific task: exactly one thread (Thread mod the
// emitted thread count) executes an extra write into its own slice of a
// designated array — `if (myID == k)` launches, per the ROADMAP open
// item, so translated programs are exercised with asymmetric thread
// bodies and not just SPMD loops. The target array is never a loop
// target of the same round and is marked written, so no other thread
// reads or writes it concurrently: race-free by construction.
type Solo struct {
	Thread int   `json:"thread"`
	Arr    int   `json:"arr"`
	Idx    int   `json:"idx"` // offset within the thread's slice, mod PerThread
	RHS    *Expr `json:"rhs"`
}

// Round is one pthread_create/pthread_join cycle — after translation,
// one RCCE barrier phase.
type Round struct {
	// Serial > 1 wraps the round in a main-driven serial loop
	// `for (r = 0; r < Serial; r++) { rr<k> = r; launch; join; }`,
	// the LU/KMeans iteration pattern (rr<k> is a shared scalar).
	Serial int `json:"serial,omitempty"`
	// Loop is the thread function's per-element statement list over the
	// thread's slice [me*P, me*P+P).
	Loop []Stmt `json:"loop"`
	// Slot, settable when PerThread == 1, emits Loop statements as
	// direct own-slot writes (A[me] = ...) without the for loop — the
	// compact form the shrinker reduces to.
	Slot bool `json:"slot,omitempty"`
	// Solo, when non-nil, appends a thread-specific task guarded by
	// `if (me == k)` — the asymmetric-body shape of thesis launches where
	// only a designated thread performs a step.
	Solo *Solo `json:"solo,omitempty"`
	// Crit, when non-nil, appends a mutex-guarded update of the shared
	// counter: lock; gsum = gsum + <Crit>; unlock. Int-kind and
	// commutative, so the result is schedule-independent.
	Crit *Expr `json:"crit,omitempty"`
	// Print appends a per-thread printf probing me and the thread's own
	// first slot of array 0.
	Print bool `json:"print,omitempty"`
}

// Spec is a complete generated kernel, parameterised over the thread
// count at emission time so one spec sweeps every cores value of the
// matrix.
type Spec struct {
	Seed      int64      `json:"seed"`
	PerThread int        `json:"per_thread"` // P: elements per thread per array
	Arrays    []ElemKind `json:"arrays"`
	// Ptrs are pointer-typed shared globals aliasing into the arrays
	// (thesis Example 4.2's `ptr`); reads and writes through them
	// exercise the translator's shared-pointer backing path.
	Ptrs   []Ptr   `json:"ptrs,omitempty"`
	Mutex  bool    `json:"mutex"` // gsum counter + pthread mutex
	Rounds []Round `json:"rounds"`
}

// GenOptions bounds the generator. The defaults keep kernels small
// enough that a full matrix check takes milliseconds while still
// covering every translator pass.
type GenOptions struct {
	MaxArrays    int
	MaxRounds    int
	MaxStmts     int
	MaxSerial    int
	MaxPerThread int
	MaxExprDepth int
	PMutex       float64
	PPrint       float64
	PSerial      float64
	PGuard       float64
	// PSolo is the probability a round gains a thread-specific
	// (`if (me == k)`) task targeting an otherwise-untouched array.
	PSolo float64
	// MaxPtrs bounds the pointer-typed shared globals; PPtr is the
	// probability the kernel has any, and PPtrWrite the probability a
	// loop statement writes through a qualifying (zero-offset) pointer
	// instead of the array name.
	MaxPtrs   int
	PPtr      float64
	PPtrWrite float64
}

// DefaultGenOptions returns the engine's standard generator bounds.
func DefaultGenOptions() GenOptions {
	return GenOptions{
		MaxArrays:    3,
		MaxRounds:    3,
		MaxStmts:     3,
		MaxSerial:    3,
		MaxPerThread: 4,
		MaxExprDepth: 3,
		PMutex:       0.4,
		PPrint:       0.3,
		PSerial:      0.35,
		PGuard:       0.3,
		PSolo:        0.35,
		MaxPtrs:      2,
		PPtr:         0.5,
		PPtrWrite:    0.35,
	}
}

// Generate builds a random kernel spec from rng. The same (seed-derived)
// rng always yields the same spec, which is what makes every reported
// failure reproducible from its seed.
func Generate(rng *rand.Rand, opts GenOptions) *Spec {
	s := &Spec{
		PerThread: 1 + rng.Intn(opts.MaxPerThread),
	}
	narr := 1 + rng.Intn(opts.MaxArrays)
	for a := 0; a < narr; a++ {
		k := KInt
		if rng.Intn(2) == 1 {
			k = KDouble
		}
		s.Arrays = append(s.Arrays, k)
	}
	if opts.MaxPtrs > 0 && rng.Float64() < opts.PPtr {
		nptr := 1 + rng.Intn(opts.MaxPtrs)
		for j := 0; j < nptr; j++ {
			pt := Ptr{Arr: rng.Intn(narr)}
			if rng.Intn(2) == 1 {
				pt.Off = rng.Intn(s.PerThread)
			}
			s.Ptrs = append(s.Ptrs, pt)
		}
	}
	nrounds := 1 + rng.Intn(opts.MaxRounds)
	written := make([]bool, narr) // arrays written in any earlier round
	for r := 0; r < nrounds; r++ {
		var rd Round
		if rng.Float64() < opts.PSerial {
			rd.Serial = 2 + rng.Intn(opts.MaxSerial-1)
		}
		nst := 1 + rng.Intn(opts.MaxStmts)
		// Pick this round's write targets first so cross-slice reads can
		// be restricted to arrays no thread writes in this round.
		targets := make([]int, nst)
		inRound := make([]bool, narr)
		for j := range targets {
			targets[j] = rng.Intn(narr)
			inRound[targets[j]] = true
		}
		// Thread-specific task: pick an array no loop statement writes,
		// claim it for this round (blocking cross-slice reads of it),
		// and give one thread an extra own-slice write.
		if rng.Float64() < opts.PSolo {
			var cands []int
			for a := 0; a < narr; a++ {
				if !inRound[a] {
					cands = append(cands, a)
				}
			}
			if len(cands) > 0 {
				arr := cands[rng.Intn(len(cands))]
				inRound[arr] = true
				gs := &exprGen{rng: rng, opts: opts, spec: s, serial: rd.Serial > 1, written: written, inRound: inRound}
				rd.Solo = &Solo{
					Thread: rng.Intn(8),
					Arr:    arr,
					Idx:    rng.Intn(opts.MaxPerThread),
					RHS:    gs.gen(s.Arrays[arr], opts.MaxExprDepth),
				}
			}
		}
		g := &exprGen{
			rng:     rng,
			opts:    opts,
			spec:    s,
			inLoop:  true,
			serial:  rd.Serial > 1,
			written: written,
			inRound: inRound,
		}
		for _, tgt := range targets {
			st := Stmt{
				Arr:   tgt,
				AddTo: rng.Intn(3) == 0,
				RHS:   g.gen(s.Arrays[tgt], opts.MaxExprDepth),
			}
			// Route the store through a zero-offset alias of the target
			// when one exists: same element, pointer lvalue path.
			if rng.Float64() < opts.PPtrWrite {
				if j, ok := s.zeroOffsetPtr(tgt, rng); ok {
					st.Ptr = j + 1
				}
			}
			if rng.Float64() < opts.PGuard {
				st.Guard = g.gen(KInt, 2)
			}
			rd.Loop = append(rd.Loop, st)
		}
		if rng.Float64() < opts.PMutex {
			s.Mutex = true
			gc := &exprGen{rng: rng, opts: opts, spec: s, serial: rd.Serial > 1, written: written, inRound: inRound}
			rd.Crit = gc.gen(KInt, 2)
		}
		if rng.Float64() < opts.PPrint {
			rd.Print = true
		}
		for a, w := range inRound {
			if w {
				written[a] = true
			}
		}
		s.Rounds = append(s.Rounds, rd)
	}
	return s
}

// exprGen carries the context that decides which atoms an expression may
// reference: OpI only inside the per-element loop, OpRR only in serial
// rounds, cross-slice OpRead only from arrays stable in this round.
type exprGen struct {
	rng     *rand.Rand
	opts    GenOptions
	spec    *Spec
	inLoop  bool
	serial  bool
	written []bool // written in an earlier round (stable content)
	inRound []bool // written by some thread in the current round
}

func (g *exprGen) gen(k ElemKind, depth int) *Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return g.leaf(k)
	}
	switch g.rng.Intn(4) {
	case 0:
		return &Expr{Op: OpAdd, K: k, X: g.gen(k, depth-1), Y: g.gen(k, depth-1)}
	case 1:
		return &Expr{Op: OpSub, K: k, X: g.gen(k, depth-1), Y: g.gen(k, depth-1)}
	case 2:
		return &Expr{Op: OpMul, K: k, X: g.gen(k, depth-1), Y: g.leaf(k)}
	default:
		if k == KInt {
			return &Expr{Op: OpMod, K: KInt, X: g.gen(KInt, depth-1),
				Y: &Expr{Op: OpIntLit, K: KInt, Val: int64(2 + g.rng.Intn(8))}}
		}
		return &Expr{Op: OpAdd, K: k, X: g.gen(k, depth-1), Y: g.leaf(k)}
	}
}

// zeroOffsetPtr finds a zero-offset pointer aliasing arr (rng breaks
// ties among several).
func (s *Spec) zeroOffsetPtr(arr int, rng *rand.Rand) (int, bool) {
	var cands []int
	for j, pt := range s.Ptrs {
		if pt.Arr == arr && pt.Off == 0 {
			cands = append(cands, j)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	return cands[rng.Intn(len(cands))], true
}

// leaf picks an atom: a literal, me, i, rr, an array read, or an
// aliased read through a shared pointer. Mixed-kind atoms are fine —
// Emit inserts the casts.
func (g *exprGen) leaf(k ElemKind) *Expr {
	for tries := 0; tries < 4; tries++ {
		switch g.rng.Intn(7) {
		case 0:
			if k == KDouble {
				fvals := []float64{0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}
				return &Expr{Op: OpFloatLit, K: KDouble, FVal: fvals[g.rng.Intn(len(fvals))]}
			}
			return &Expr{Op: OpIntLit, K: KInt, Val: int64(g.rng.Intn(10))}
		case 1:
			return &Expr{Op: OpMe, K: KInt}
		case 2:
			if g.inLoop {
				return &Expr{Op: OpI, K: KInt}
			}
		case 3:
			if g.serial {
				return &Expr{Op: OpRR, K: KInt}
			}
		case 4:
			// Own-element read: current value of any array at the loop
			// index (only meaningful inside the loop).
			if g.inLoop {
				a := g.rng.Intn(len(g.spec.Arrays))
				return &Expr{Op: OpRead, K: g.spec.Arrays[a], Arr: a, Idx: &Expr{Op: OpI, K: KInt}}
			}
		case 5:
			// Cross-slice read from an array stable in this round: the
			// index is an arbitrary non-negative expression mod N.
			if a, ok := g.stableArray(); ok {
				return &Expr{Op: OpRead, K: g.spec.Arrays[a], Arr: a,
					Idx: &Expr{Op: OpModN, K: KInt, X: g.nonNegative(2)}}
			}
		case 6:
			// Aliased read through a shared pointer whose pointee array
			// is stable this round; the emitter wraps the index in
			// `% (N - Off)` so the alias window stays in bounds.
			if j, ok := g.stablePtr(); ok {
				pt := g.spec.Ptrs[j]
				return &Expr{Op: OpRead, K: g.spec.Arrays[pt.Arr], Arr: pt.Arr,
					Via: j + 1, Idx: g.nonNegative(2)}
			}
		}
	}
	if k == KDouble {
		return &Expr{Op: OpFloatLit, K: KDouble, FVal: 1.0}
	}
	return &Expr{Op: OpIntLit, K: KInt, Val: 1}
}

// stablePtr picks a pointer whose pointee array no thread writes in the
// current round — the same stability rule cross-slice reads obey.
func (g *exprGen) stablePtr() (int, bool) {
	var cands []int
	for j, pt := range g.spec.Ptrs {
		if !g.inRound[pt.Arr] {
			cands = append(cands, j)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	return cands[g.rng.Intn(len(cands))], true
}

// stableArray picks an array no thread writes in the current round (its
// contents are barrier-separated from this round's writes, so any-index
// reads are race-free). Never-written arrays qualify too: shared
// allocations are zeroed in both backends.
func (g *exprGen) stableArray() (int, bool) {
	var cands []int
	for a := range g.spec.Arrays {
		if !g.inRound[a] {
			cands = append(cands, a)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	return cands[g.rng.Intn(len(cands))], true
}

// nonNegative builds an int expression whose value is provably ≥ 0
// (atoms are non-negative, ops are {+, *, % positive}): safe as an array
// index after % N.
func (g *exprGen) nonNegative(depth int) *Expr {
	if depth <= 0 || g.rng.Intn(2) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return &Expr{Op: OpIntLit, K: KInt, Val: int64(g.rng.Intn(10))}
		case 1:
			return &Expr{Op: OpMe, K: KInt}
		default:
			if g.inLoop {
				return &Expr{Op: OpI, K: KInt}
			}
			return &Expr{Op: OpMe, K: KInt}
		}
	}
	if g.rng.Intn(2) == 0 {
		return &Expr{Op: OpAdd, K: KInt, X: g.nonNegative(depth - 1), Y: g.nonNegative(depth - 1)}
	}
	return &Expr{Op: OpMul, K: KInt, X: g.nonNegative(depth - 1),
		Y: &Expr{Op: OpIntLit, K: KInt, Val: int64(1 + g.rng.Intn(5))}}
}

// ---------------------------------------------------------------------------
// Emission: Spec -> *ast.File -> C source
// ---------------------------------------------------------------------------

// Source renders the kernel as Pthread C source for a thread count.
func (s *Spec) Source(threads int) string {
	return printer.Print(s.File(threads))
}

// File builds the kernel's IR for a thread count. The emitted program
// follows the corpus idiom the translator is specified over: global
// shared arrays, thread functions taking their ID through the void*
// argument, canonical launch/join loops in main, and a reduction that
// prints one checksum line per array.
func (s *Spec) File(threads int) *ast.File {
	em := &emitter{spec: s, threads: threads, n: threads * s.PerThread}
	f := &ast.File{Name: fmt.Sprintf("gen_seed%d.c", s.Seed)}
	f.Decls = append(f.Decls,
		&ast.Include{Text: "#include <stdio.h>"},
		&ast.Include{Text: "#include <pthread.h>"},
	)
	for a, k := range s.Arrays {
		f.Decls = append(f.Decls, &ast.VarDecl{
			Name: arrName(a),
			Type: types.ArrayOf(k.ctype(), em.n),
		})
	}
	for j, pt := range s.Ptrs {
		f.Decls = append(f.Decls, &ast.VarDecl{
			Name: ptrName(j),
			Type: types.PointerTo(s.Arrays[pt.Arr].ctype()),
		})
	}
	if s.Mutex {
		f.Decls = append(f.Decls,
			&ast.VarDecl{Name: "gsum", Type: types.IntType},
			&ast.VarDecl{Name: "mu", Type: types.OpaqueOf("pthread_mutex_t")},
		)
	}
	for r, rd := range s.Rounds {
		if rd.Serial > 1 {
			f.Decls = append(f.Decls, &ast.VarDecl{Name: rrName(r), Type: types.IntType})
		}
	}
	for r := range s.Rounds {
		f.Decls = append(f.Decls, em.threadFunc(r))
	}
	f.Decls = append(f.Decls, em.mainFunc())
	return f
}

func arrName(a int) string  { return fmt.Sprintf("A%d", a) }
func ptrName(j int) string  { return fmt.Sprintf("P%d", j) }
func rrName(r int) string   { return fmt.Sprintf("rr%d", r) }
func stepName(r int) string { return fmt.Sprintf("step%d", r) }

type emitter struct {
	spec    *Spec
	threads int
	n       int // total elements per array
}

// threadFunc emits `void *step<r>(void *tid) { ... }`.
func (em *emitter) threadFunc(r int) *ast.FuncDecl {
	rd := em.spec.Rounds[r]
	ctx := exprCtx{em: em, round: r}
	var body []ast.Stmt
	body = append(body, declStmt("me", types.IntType,
		&ast.CastExpr{To: types.IntType, X: ident("tid")}))
	slot := rd.Slot && em.spec.PerThread == 1
	if slot {
		ctx.slotForm = true
		for _, st := range rd.Loop {
			body = append(body, em.assignStmt(st, ctx))
		}
	} else if len(rd.Loop) > 0 {
		body = append(body, declStmt("lo", types.IntType, mulFold(ident("me"), em.spec.PerThread)))
		body = append(body, declStmt("i", types.IntType, nil))
		var inner []ast.Stmt
		for _, st := range rd.Loop {
			inner = append(inner, em.assignStmt(st, ctx))
		}
		body = append(body, &ast.ForStmt{
			Init: exprStmt(assign(ident("i"), ident("lo"))),
			Cond: bin(token.Lt, ident("i"), bin(token.Plus, ident("lo"), intLit(int64(em.spec.PerThread)))),
			Post: &ast.PostfixExpr{Op: token.PlusPlus, X: ident("i")},
			Body: nested(inner),
		})
	}
	if rd.Solo != nil {
		k := rd.Solo.Thread % em.threads
		if k < 0 {
			k = 0
		}
		slot := k*em.spec.PerThread + rd.Solo.Idx%em.spec.PerThread
		target := &ast.IndexExpr{X: ident(arrName(rd.Solo.Arr)), Index: intLit(int64(slot))}
		task := exprStmt(assign(target, em.expr(rd.Solo.RHS, em.spec.Arrays[rd.Solo.Arr], ctx)))
		body = append(body, &ast.IfStmt{
			Cond: bin(token.EqEq, ident("me"), intLit(int64(k))),
			Then: &ast.BlockStmt{List: []ast.Stmt{task}},
		})
	}
	if rd.Crit != nil {
		body = append(body,
			callStmt("pthread_mutex_lock", addr("mu")),
			exprStmt(assign(ident("gsum"), bin(token.Plus, ident("gsum"), em.expr(rd.Crit, KInt, ctx)))),
			callStmt("pthread_mutex_unlock", addr("mu")),
		)
	}
	if rd.Print {
		probe := &ast.IndexExpr{X: ident(arrName(0)), Index: mulFold(ident("me"), em.spec.PerThread)}
		verb, arg := "%d", em.cast(probe, em.spec.Arrays[0], KInt)
		body = append(body, callStmt("printf",
			strLit(fmt.Sprintf("p%d %%d %s\n", r, verb)), ident("me"), arg))
	}
	body = append(body, callStmt("pthread_exit", ident("NULL")))
	return &ast.FuncDecl{
		Name:   stepName(r),
		Result: types.PointerTo(types.VoidType),
		Params: []*ast.Param{{Name: "tid", Type: types.PointerTo(types.VoidType)}},
		Body:   &ast.BlockStmt{List: body},
	}
}

// assignStmt emits one loop/slot statement, with the optional parity
// guard. A Ptr-routed statement indexes the aliasing pointer instead of
// the array name (same element: the pointer has offset zero).
func (em *emitter) assignStmt(st Stmt, ctx exprCtx) ast.Stmt {
	base := arrName(st.Arr)
	if st.Ptr > 0 {
		base = ptrName(st.Ptr - 1)
	}
	target := &ast.IndexExpr{X: ident(base), Index: ctx.indexExpr(em)}
	rhs := em.expr(st.RHS, em.spec.Arrays[st.Arr], ctx)
	if st.AddTo {
		rhs = bin(token.Plus, &ast.IndexExpr{X: ident(base), Index: ctx.indexExpr(em)}, rhs)
	}
	var out ast.Stmt = exprStmt(assign(target, rhs))
	if st.Guard != nil {
		cond := bin(token.EqEq,
			bin(token.Percent, &ast.ParenExpr{X: em.expr(st.Guard, KInt, ctx)}, intLit(2)),
			intLit(0))
		out = &ast.IfStmt{Cond: cond, Then: out}
	}
	return out
}

// mainFunc emits the launch/join rounds and the checksum reduction.
func (em *emitter) mainFunc() *ast.FuncDecl {
	s := em.spec
	var body []ast.Stmt
	body = append(body,
		&ast.DeclStmt{Decl: &ast.VarDecl{Name: "th",
			Type: types.ArrayOf(types.OpaqueOf("pthread_t"), em.threads)}},
		declStmt("t", types.IntType, nil),
	)
	hasSerial := false
	for _, rd := range s.Rounds {
		if rd.Serial > 1 {
			hasSerial = true
		}
	}
	if hasSerial {
		body = append(body, declStmt("r", types.IntType, nil))
	}
	if s.Mutex {
		body = append(body, callStmt("pthread_mutex_init", addr("mu"), ident("NULL")))
	}
	// Bind the shared pointers before any launch: every thread reads a
	// pointer main wrote while still single-threaded.
	for j, pt := range s.Ptrs {
		var rhs ast.Expr = ident(arrName(pt.Arr))
		if pt.Off > 0 {
			rhs = bin(token.Plus, rhs, intLit(int64(pt.Off)))
		}
		body = append(body, exprStmt(assign(ident(ptrName(j)), rhs)))
	}
	for r, rd := range s.Rounds {
		launch := []ast.Stmt{
			&ast.ForStmt{
				Init: exprStmt(assign(ident("t"), intLit(0))),
				Cond: bin(token.Lt, ident("t"), intLit(int64(em.threads))),
				Post: &ast.PostfixExpr{Op: token.PlusPlus, X: ident("t")},
				Body: callStmt("pthread_create",
					&ast.UnaryExpr{Op: token.Amp, X: &ast.IndexExpr{X: ident("th"), Index: ident("t")}},
					ident("NULL"), ident(stepName(r)),
					&ast.CastExpr{To: types.PointerTo(types.VoidType), X: ident("t")}),
			},
			&ast.ForStmt{
				Init: exprStmt(assign(ident("t"), intLit(0))),
				Cond: bin(token.Lt, ident("t"), intLit(int64(em.threads))),
				Post: &ast.PostfixExpr{Op: token.PlusPlus, X: ident("t")},
				Body: callStmt("pthread_join",
					&ast.IndexExpr{X: ident("th"), Index: ident("t")}, ident("NULL")),
			},
		}
		if rd.Serial > 1 {
			serialBody := append([]ast.Stmt{exprStmt(assign(ident(rrName(r)), ident("r")))}, launch...)
			body = append(body, &ast.ForStmt{
				Init: exprStmt(assign(ident("r"), intLit(0))),
				Cond: bin(token.Lt, ident("r"), intLit(int64(rd.Serial))),
				Post: &ast.PostfixExpr{Op: token.PlusPlus, X: ident("r")},
				Body: &ast.BlockStmt{List: serialBody},
			})
		} else {
			body = append(body, launch...)
		}
	}
	body = append(body, em.reduction()...)
	if s.Mutex {
		body = append(body, callStmt("printf", strLit("g %d\n"), ident("gsum")))
	}
	body = append(body, &ast.ReturnStmt{Result: intLit(0)})
	return &ast.FuncDecl{
		Name:   "main",
		Result: types.IntType,
		Body:   &ast.BlockStmt{List: body},
	}
}

// reduction emits per-array checksums. Arrays of ≤ 4 elements are summed
// inline in the printf (the compact form the shrinker's minimal repro
// relies on); larger arrays get one accumulation loop over all arrays.
func (em *emitter) reduction() []ast.Stmt {
	s := em.spec
	if em.n <= 4 {
		var out []ast.Stmt
		for a, k := range s.Arrays {
			var sum ast.Expr
			for e := 0; e < em.n; e++ {
				term := &ast.IndexExpr{X: ident(arrName(a)), Index: intLit(int64(e))}
				if sum == nil {
					sum = term
				} else {
					sum = bin(token.Plus, sum, term)
				}
			}
			out = append(out, em.checkPrintf(a, k, sum))
		}
		return out
	}
	var out []ast.Stmt
	out = append(out, declStmt("k", types.IntType, nil))
	for a, k := range s.Arrays {
		if k == KDouble {
			out = append(out, declStmt(ckName(a), types.DoubleType, nil),
				exprStmt(assign(ident(ckName(a)), floatLit(0.0))))
		} else {
			out = append(out, declStmt(ckName(a), types.IntType, nil),
				exprStmt(assign(ident(ckName(a)), intLit(0))))
		}
	}
	var accum []ast.Stmt
	for a := range s.Arrays {
		accum = append(accum, exprStmt(assign(ident(ckName(a)),
			bin(token.Plus, ident(ckName(a)),
				&ast.IndexExpr{X: ident(arrName(a)), Index: ident("k")}))))
	}
	out = append(out, &ast.ForStmt{
		Init: exprStmt(assign(ident("k"), intLit(0))),
		Cond: bin(token.Lt, ident("k"), intLit(int64(em.n))),
		Post: &ast.PostfixExpr{Op: token.PlusPlus, X: ident("k")},
		Body: nested(accum),
	})
	for a, k := range s.Arrays {
		out = append(out, em.checkPrintf(a, k, ident(ckName(a))))
	}
	return out
}

func (em *emitter) checkPrintf(a int, k ElemKind, val ast.Expr) ast.Stmt {
	if k == KDouble {
		return callStmt("printf", strLit(fmt.Sprintf("c%d %%.6f\n", a)), val)
	}
	return callStmt("printf", strLit(fmt.Sprintf("c%d %%d\n", a)), val)
}

func ckName(a int) string { return fmt.Sprintf("c%d", a) }

// exprCtx tells expression emission how to resolve the context atoms.
type exprCtx struct {
	em       *emitter
	round    int
	slotForm bool // OpI resolves to me (only valid when PerThread == 1)
}

// indexExpr is the element index a statement targets: the loop variable,
// or the thread's own slot in slot form.
func (c exprCtx) indexExpr(em *emitter) ast.Expr {
	if c.slotForm {
		return ident("me")
	}
	return ident("i")
}

// expr renders e, coercing the result to want with an explicit cast when
// kinds differ (the corpus idiom: `(double)i * 0.5`).
func (em *emitter) expr(e *Expr, want ElemKind, ctx exprCtx) ast.Expr {
	return em.cast(em.exprRaw(e, ctx), e.K, want)
}

func (em *emitter) cast(x ast.Expr, have, want ElemKind) ast.Expr {
	if have == want {
		return x
	}
	return &ast.CastExpr{To: want.ctype(), X: &ast.ParenExpr{X: x}}
}

func (em *emitter) exprRaw(e *Expr, ctx exprCtx) ast.Expr {
	switch e.Op {
	case OpIntLit:
		return intLit(e.Val)
	case OpFloatLit:
		return floatLit(e.FVal)
	case OpMe:
		return ident("me")
	case OpI:
		if ctx.slotForm {
			return ident("me")
		}
		return ident("i")
	case OpRR:
		return ident(rrName(ctx.round))
	case OpRead:
		if e.Via > 0 {
			pt := em.spec.Ptrs[e.Via-1]
			window := em.n - pt.Off
			idx := &ast.ParenExpr{X: bin(token.Percent,
				&ast.ParenExpr{X: em.expr(e.Idx, KInt, ctx)}, intLit(int64(window)))}
			return &ast.IndexExpr{X: ident(ptrName(e.Via - 1)), Index: idx}
		}
		return &ast.IndexExpr{X: ident(arrName(e.Arr)), Index: em.expr(e.Idx, KInt, ctx)}
	case OpAdd, OpSub, OpMul:
		ops := map[Op]token.Kind{OpAdd: token.Plus, OpSub: token.Minus, OpMul: token.Star}
		return &ast.ParenExpr{X: bin(ops[e.Op],
			em.expr(e.X, e.K, ctx), em.expr(e.Y, e.K, ctx))}
	case OpMod:
		return &ast.ParenExpr{X: bin(token.Percent,
			em.expr(e.X, KInt, ctx), em.expr(e.Y, KInt, ctx))}
	case OpModN:
		return &ast.ParenExpr{X: bin(token.Percent,
			em.expr(e.X, KInt, ctx), intLit(int64(em.n)))}
	default:
		return intLit(0)
	}
}

// ---------------------------------------------------------------------------
// Small AST builders
// ---------------------------------------------------------------------------

func ident(name string) *ast.Ident { return &ast.Ident{Name: name} }

func intLit(v int64) *ast.IntLit {
	return &ast.IntLit{Value: v, Text: strconv.FormatInt(v, 10)}
}

func floatLit(v float64) *ast.FloatLit {
	t := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(t, ".eE") {
		t += ".0"
	}
	return &ast.FloatLit{Value: v, Text: t}
}

func strLit(s string) *ast.StringLit { return &ast.StringLit{Value: s} }

func bin(op token.Kind, x, y ast.Expr) *ast.BinaryExpr {
	return &ast.BinaryExpr{Op: op, X: x, Y: y}
}

func assign(lhs, rhs ast.Expr) *ast.AssignExpr {
	return &ast.AssignExpr{Op: token.Assign, LHS: lhs, RHS: rhs}
}

func exprStmt(e ast.Expr) ast.Stmt { return &ast.ExprStmt{X: e} }

func callStmt(name string, args ...ast.Expr) ast.Stmt {
	return exprStmt(&ast.CallExpr{Fun: ident(name), Args: args})
}

func addr(name string) ast.Expr {
	return &ast.UnaryExpr{Op: token.Amp, X: ident(name)}
}

func declStmt(name string, t *types.Type, init ast.Expr) ast.Stmt {
	return &ast.DeclStmt{Decl: &ast.VarDecl{Name: name, Type: t, Init: init}}
}

// mulFold emits name*k with the ×1 case folded to just the identifier —
// the fold that keeps minimal reproducers readable.
func mulFold(x ast.Expr, k int) ast.Expr {
	if k == 1 {
		return x
	}
	return bin(token.Star, x, intLit(int64(k)))
}

// nested wraps a statement list for use as a loop body: a single
// statement stays bare (printed without braces), several become a block.
func nested(list []ast.Stmt) ast.Stmt {
	if len(list) == 1 {
		return list[0]
	}
	return &ast.BlockStmt{List: list}
}
