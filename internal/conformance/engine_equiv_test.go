package conformance

import (
	"testing"

	"hsmcc/internal/bench"
	"hsmcc/internal/interp"
	"hsmcc/internal/partition"
	"hsmcc/internal/synth"
)

// TestEngineEquivalenceKernels extends the compiled-engine golden
// invariant to generated conformance kernels: for a sample of seeds
// (including thread-specific solo tasks, serial rounds and mutexes),
// the compiled engine and the tree-walk reference must produce
// byte-identical output and identical cycle statistics on both the
// Pthread baseline and the translated RCCE pipeline.
func TestEngineEquivalenceKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("runs dozens of simulated kernels")
	}
	const kernels = 24
	const cores = 4
	runBoth := func(e interp.Engine, w bench.Workload, cfg bench.Config) (*bench.RunResult, *bench.RunResult, error) {
		old := interp.DefaultEngine
		interp.DefaultEngine = e
		defer func() { interp.DefaultEngine = old }()
		base, err := bench.RunBaseline(w, cfg)
		if err != nil {
			return nil, nil, err
		}
		conv, err := bench.RunRCCE(w, cfg, partition.PolicySizeAscending)
		if err != nil {
			return nil, nil, err
		}
		return base, conv, nil
	}
	for seed := int64(5000); seed < 5000+kernels; seed++ {
		spec := SpecForSeed(seed, DefaultGenOptions())
		src := spec.Source(cores)
		w := kernelWorkload(seed, src)
		cfg := bench.DefaultConfig()
		cfg.Threads = cores
		cBase, cConv, err := runBoth(interp.EngineCompiled, w, cfg)
		if err != nil {
			t.Fatalf("seed %d compiled: %v\n%s", seed, err, src)
		}
		rBase, rConv, err := runBoth(interp.EngineTreeWalk, w, cfg)
		if err != nil {
			t.Fatalf("seed %d tree-walk: %v\n%s", seed, err, src)
		}
		for _, pair := range []struct {
			what string
			c, r *bench.RunResult
		}{{"baseline", cBase, rBase}, {"rcce", cConv, rConv}} {
			if pair.c.Output != pair.r.Output {
				t.Errorf("seed %d %s: output diverged\n--- compiled\n%s\n--- tree-walk\n%s",
					seed, pair.what, pair.c.Output, pair.r.Output)
			}
			if pair.c.Makespan != pair.r.Makespan || pair.c.Stats != pair.r.Stats {
				t.Errorf("seed %d %s: cycle statistics diverged (makespan %d vs %d)",
					seed, pair.what, pair.c.Makespan, pair.r.Makespan)
			}
		}
	}
}

// TestEngineEquivalenceSynthKernels applies the same compiled-vs-
// tree-walk golden invariant to seed-derived synthetic vectors, so the
// coroutine lowering is pinned on the memory-behaviour plane (tunable
// mix, sharing degree, footprint) and not only on the kernel grammar.
func TestEngineEquivalenceSynthKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a sample of simulated synthetic kernels")
	}
	const kernels = 8
	const cores = 4
	runBoth := func(e interp.Engine, w bench.Workload, cfg bench.Config) (*bench.RunResult, *bench.RunResult, error) {
		old := interp.DefaultEngine
		interp.DefaultEngine = e
		defer func() { interp.DefaultEngine = old }()
		base, err := bench.RunBaseline(w, cfg)
		if err != nil {
			return nil, nil, err
		}
		conv, err := bench.RunRCCE(w, cfg, partition.PolicySizeAscending)
		if err != nil {
			return nil, nil, err
		}
		return base, conv, nil
	}
	for seed := int64(6000); seed < 6000+kernels; seed++ {
		p := synth.ParamsForSeed(seed)
		w := bench.SynthWorkload(p)
		cfg := bench.DefaultConfig()
		cfg.Threads = cores
		cfg.Scale = 1.0
		cBase, cConv, err := runBoth(interp.EngineCompiled, w, cfg)
		if err != nil {
			t.Fatalf("%s compiled: %v", p.Key(), err)
		}
		rBase, rConv, err := runBoth(interp.EngineTreeWalk, w, cfg)
		if err != nil {
			t.Fatalf("%s tree-walk: %v", p.Key(), err)
		}
		for _, pair := range []struct {
			what string
			c, r *bench.RunResult
		}{{"baseline", cBase, rBase}, {"rcce", cConv, rConv}} {
			if pair.c.Output != pair.r.Output {
				t.Errorf("%s %s: output diverged\n--- compiled\n%s\n--- tree-walk\n%s",
					p.Key(), pair.what, pair.c.Output, pair.r.Output)
			}
			if pair.c.Makespan != pair.r.Makespan || pair.c.Stats != pair.r.Stats {
				t.Errorf("%s %s: cycle statistics diverged (makespan %d vs %d)",
					p.Key(), pair.what, pair.c.Makespan, pair.r.Makespan)
			}
		}
	}
}

// TestGeneratorEmitsSoloTasks pins the thread-specific-launch extension:
// across a seed range, some kernels must contain solo (`if (me == k)`)
// tasks, and their emitted source must carry the guard.
func TestGeneratorEmitsSoloTasks(t *testing.T) {
	found := 0
	for seed := int64(0); seed < 80; seed++ {
		spec := SpecForSeed(seed, DefaultGenOptions())
		for _, rd := range spec.Rounds {
			if rd.Solo == nil {
				continue
			}
			found++
			// The solo target must not be a loop target of its round
			// (race-freedom by construction).
			for _, st := range rd.Loop {
				if st.Arr == rd.Solo.Arr {
					t.Fatalf("seed %d: solo targets array %d which the round's loop also writes", seed, rd.Solo.Arr)
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("no generated kernel contained a thread-specific solo task across 80 seeds")
	}
	t.Logf("%d solo tasks across 80 seeds", found)
}
