package conformance

import (
	"testing"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/parser"
	"hsmcc/internal/cc/printer"
	"hsmcc/internal/synth"
)

// FuzzTranslateDiff drives the whole translate→RCCE→sccsim pipeline
// from a single int64 seed: the seed deterministically generates a
// Pthread kernel, which is checked differentially against the
// interpreter baseline on the smoke matrix. Any counterexample the
// fuzzer finds is reproducible from the seed alone (the failure message
// carries the hsmconf repro line), and `go test` runs the seed corpus
// below as a regression set on every CI run.
//
// Soak with: go test ./internal/conformance -fuzz FuzzTranslateDiff
func FuzzTranslateDiff(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 7, 42, 1337, 99991} {
		f.Add(seed)
	}
	eng := NewEngine()
	eng.Matrix = SmokeMatrix()
	f.Fuzz(func(t *testing.T, seed int64) {
		spec := SpecForSeed(seed, DefaultGenOptions())

		// The generated program must survive the frontend round trip...
		file := spec.File(eng.Matrix.Cores[0])
		src := printer.Print(file)
		reparsed, err := parser.Parse("fuzz.c", src)
		if err != nil {
			t.Fatalf("seed %d: generated kernel does not parse: %v\n%s", seed, err, src)
		}
		if !ast.Equal(file, reparsed) {
			t.Fatalf("seed %d: parse(print(ir)) is not structurally equal\n%s", seed, src)
		}

		// ...and both backends must agree on what it computes.
		if div := eng.Check(spec); div != nil {
			t.Fatalf("differential divergence: %s\n--- kernel\n%s\n--- baseline output\n%s\n--- rcce output\n%s",
				div, div.Source, div.BaseOut, div.RCCEOut)
		}
	})
}

// FuzzSynthDiff is the synthetic-generator twin of FuzzTranslateDiff:
// the seed derives a parameter vector, the vector emits a race-free
// kernel, and both backends must agree on it across the smoke matrix.
// Failures reproduce via `hsmconf -synth -seed <seed> -n 1`.
//
// Soak with: go test ./internal/conformance -fuzz FuzzSynthDiff
func FuzzSynthDiff(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 7, 42, 1337, 99991} {
		f.Add(seed)
	}
	eng := NewEngine()
	eng.Matrix = SmokeMatrix()
	f.Fuzz(func(t *testing.T, seed int64) {
		p := synth.ParamsForSeed(seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: derived vector out of contract: %v", seed, err)
		}

		// Frontend round trip at the smoke matrix's UE count...
		file := p.File(eng.Matrix.Cores[0])
		src := printer.Print(file)
		reparsed, err := parser.Parse("fuzz_synth.c", src)
		if err != nil {
			t.Fatalf("seed %d: synthetic kernel does not parse: %v\n%s", seed, err, src)
		}
		if !ast.Equal(file, reparsed) {
			t.Fatalf("seed %d: parse(print(ir)) is not structurally equal\n%s", seed, src)
		}

		// ...and differential agreement.
		if div := eng.CheckSynth(p); div != nil {
			t.Fatalf("synthetic divergence: %s\n--- kernel\n%s\n--- baseline output\n%s\n--- rcce output\n%s",
				div, div.Source, div.BaseOut, div.RCCEOut)
		}
	})
}
