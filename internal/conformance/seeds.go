package conformance

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SeedMeta is the sidecar metadata of one persisted kernel in a seed
// corpus directory (testdata/conformance): the cell it must be checked
// at and the seed it came from. hsmconf writes this shape for minimized
// failures, so promoting a crasher to a regression seed is a file copy.
type SeedMeta struct {
	Seed   int64  `json:"seed"`
	Cores  int    `json:"cores"`
	Policy string `json:"policy"`
	Budget int    `json:"budget"`
	// Oversub is the §7.2 many-to-one factor of the replay cell
	// (0 or 1: one UE per core).
	Oversub int    `json:"oversub,omitempty"`
	Note    string `json:"note,omitempty"`
}

// SeedCase is one loaded corpus entry: C source plus the cell to replay.
type SeedCase struct {
	Name   string
	Source string
	Meta   SeedMeta
}

// LoadSeeds reads every <name>.json/<name>.c pair under dir, sorted by
// name. The .c file is the source of truth — replay does not regenerate
// from the seed, so corpus entries stay meaningful across generator
// changes.
func LoadSeeds(dir string) ([]SeedCase, error) {
	metas, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(metas)
	var cases []SeedCase
	for _, mp := range metas {
		raw, err := os.ReadFile(mp)
		if err != nil {
			return nil, err
		}
		var meta SeedMeta
		if err := json.Unmarshal(raw, &meta); err != nil {
			return nil, fmt.Errorf("%s: %w", mp, err)
		}
		if meta.Cores <= 0 || meta.Policy == "" {
			return nil, fmt.Errorf("%s: missing cores/policy replay cell", mp)
		}
		stem := strings.TrimSuffix(mp, ".json")
		src, err := os.ReadFile(stem + ".c")
		if err != nil {
			return nil, err
		}
		cases = append(cases, SeedCase{
			Name:   filepath.Base(stem),
			Source: string(src),
			Meta:   meta,
		})
	}
	return cases, nil
}

// Replay checks every corpus entry at its recorded cell and returns the
// divergences (empty when the whole corpus passes).
func (e *Engine) Replay(dir string) ([]*Divergence, error) {
	cases, err := LoadSeeds(dir)
	if err != nil {
		return nil, err
	}
	var divs []*Divergence
	for _, c := range cases {
		if d := e.CheckSource(c.Meta.Seed, c.Source, c.Meta.Cores, c.Meta.Policy, c.Meta.Budget, c.Meta.Oversub); d != nil {
			divs = append(divs, d)
		}
	}
	return divs, nil
}
