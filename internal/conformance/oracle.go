package conformance

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"hsmcc/internal/bench"
	"hsmcc/internal/rcce"
)

// Matrix is the (cores × oversubscription × placement policy × MPB
// budget) sweep every kernel is checked across. It mirrors the grid
// axes of internal/bench: policy names parse with bench.ParsePolicy and
// budget 0 means the machine's full MPB.
type Matrix struct {
	Cores    []int
	Policies []string
	Budgets  []int
	// Oversub lists §7.2 many-to-one factors: factor f > 1 runs
	// f×cores UEs assigned round-robin onto the cores (the runtime's
	// AllowOversubscribe mode, time-multiplexed with context-switch
	// costs); factor 1 is the one-UE-per-core default. Empty means [1].
	Oversub []int
}

// DefaultMatrix covers both launch shapes (2 and 4 UEs), all four
// Stage 4 policies — the three static heuristics plus the
// profile-guided `profiled` placement, whose profiling pass and
// optimizer thereby face every generated kernel shape — an
// unconstrained and a pressure-inducing MPB budget, and both the 1:1
// and the §7.2 two-UEs-per-core mapping: the smallest sweep that
// exercises every placement and scheduling decision the paper's claim
// quantifies over.
func DefaultMatrix() Matrix {
	return Matrix{
		Cores:    []int{2, 4},
		Policies: []string{"offchip", "size", "freq", "profiled"},
		Budgets:  []int{0, 512},
		Oversub:  []int{1, 2},
	}
}

// SmokeMatrix is the minimal sweep used by the fuzz target, where
// per-input cost dominates throughput.
func SmokeMatrix() Matrix {
	return Matrix{
		Cores:    []int{2},
		Policies: []string{"offchip", "size"},
		Budgets:  []int{0},
	}
}

// factors returns the oversubscription axis ([1] when unset).
func (m Matrix) factors() []int {
	if len(m.Oversub) == 0 {
		return []int{1}
	}
	return m.Oversub
}

// Cells returns the matrix's RCCE cell count (per kernel, excluding the
// one baseline run per (cores, factor) value).
func (m Matrix) Cells() int {
	return len(m.Cores) * len(m.factors()) * len(m.Policies) * len(m.Budgets)
}

// ParseMatrix builds a validated matrix from the comma-separated flag
// syntax shared by hsmconf and the docs ("2,4", "offchip,size,freq",
// "0,512", "1,2").
func ParseMatrix(cores, policies, budgets, oversub string) (Matrix, error) {
	var m Matrix
	for _, s := range strings.Split(cores, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return m, fmt.Errorf("bad cores value %q: %w", s, err)
		}
		m.Cores = append(m.Cores, v)
	}
	for _, s := range strings.Split(policies, ",") {
		m.Policies = append(m.Policies, strings.TrimSpace(s))
	}
	for _, s := range strings.Split(budgets, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return m, fmt.Errorf("bad budgets value %q: %w", s, err)
		}
		m.Budgets = append(m.Budgets, v)
	}
	if oversub != "" {
		for _, s := range strings.Split(oversub, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return m, fmt.Errorf("bad oversub value %q: %w", s, err)
			}
			m.Oversub = append(m.Oversub, v)
		}
	}
	return m, m.Validate()
}

// Validate rejects malformed matrices before simulation time is spent.
func (m Matrix) Validate() error {
	if len(m.Cores) == 0 || len(m.Policies) == 0 || len(m.Budgets) == 0 {
		return fmt.Errorf("conformance: matrix needs at least one cores value, policy and budget")
	}
	for _, c := range m.Cores {
		if c < 1 || c > 48 {
			return fmt.Errorf("conformance: cores %d out of range [1,48]", c)
		}
	}
	for _, p := range m.Policies {
		if _, err := bench.ParsePolicy(p); err != nil {
			return err
		}
	}
	for _, b := range m.Budgets {
		if b < 0 {
			return fmt.Errorf("conformance: negative MPB budget %d", b)
		}
	}
	for _, f := range m.Oversub {
		if f < 1 || f > 8 {
			return fmt.Errorf("conformance: oversubscription factor %d out of range [1,8]", f)
		}
	}
	return nil
}

// Divergence is one failed differential check: the cell, both outputs,
// and everything needed to reproduce it from the log line alone.
type Divergence struct {
	Seed   int64  `json:"seed"`
	Cores  int    `json:"cores"`
	Policy string `json:"policy"`
	Budget int    `json:"budget"`
	// Oversub is the §7.2 many-to-one factor of the failing cell
	// (0 or 1: one UE per core).
	Oversub int `json:"oversub,omitempty"`
	// Synth marks a synthetic-generator kernel (hsmconf -synth); Seed
	// then reproduces via synth.ParamsForSeed and SynthKey carries the
	// exact parameter vector (which for shrunken vectors is no longer
	// seed-derived).
	Synth    bool   `json:"synth,omitempty"`
	SynthKey string `json:"synth_key,omitempty"`
	BaseOut  string `json:"base_out,omitempty"`
	RCCEOut string `json:"rcce_out,omitempty"`
	// Err is set when a pipeline stage failed outright (parse, sema,
	// translate, execution) rather than producing divergent output.
	Err string `json:"err,omitempty"`
	// Source is the Pthread kernel; Translated the (possibly mutated)
	// RCCE program it became.
	Source     string `json:"source,omitempty"`
	Translated string `json:"translated,omitempty"`
}

// String is the one-line failure report. It leads with the explicit
// seed and cell so any reported failure is reproducible from the log:
//
//	hsmconf -seed <seed> -n 1 -cores <cores> -policies <policy> -budgets <budget> -oversub <factor>
func (d *Divergence) String() string {
	what := "output divergence"
	if d.Err != "" {
		what = "error: " + d.Err
	}
	f := d.Oversub
	if f < 1 {
		f = 1
	}
	mode := ""
	if d.Synth {
		mode = "-synth "
	}
	return fmt.Sprintf("seed=%d cores=%d oversub=%d policy=%s budget=%d: %s (repro: hsmconf %s-seed %d -n 1 -cores %d -oversub %d -policies %s -budgets %d)",
		d.Seed, d.Cores, f, d.Policy, d.Budget, what, mode, d.Seed, d.Cores, f, d.Policy, d.Budget)
}

// Engine runs kernels through both backends across a matrix.
type Engine struct {
	Matrix Matrix
	Gen    GenOptions
	// Mutate, when non-nil, corrupts the translated RCCE source before
	// it is re-parsed and executed — the fault-injection seam used to
	// prove the oracle catches translator bugs.
	Mutate func(src string) string

	// cfgOnce/baseCfg cache the harness config template with its
	// machine fingerprint precomputed, so the thousands of cell configs
	// a soak derives from it never build a machine just for cache keys.
	cfgOnce sync.Once
	baseCfg bench.Config
}

// NewEngine returns an engine over the default matrix and generator.
func NewEngine() *Engine {
	return &Engine{Matrix: DefaultMatrix(), Gen: DefaultGenOptions()}
}

// config assembles the bench harness configuration for one cell. The
// cache — typically one per kernel — lets every matrix cell share the
// kernel's compiled baseline Program and each distinct translated
// source's compiled image (compile once, run the whole matrix).
func (e *Engine) config(cores, budget int, cache *bench.Cache) bench.Config {
	e.cfgOnce.Do(func() { e.baseCfg = bench.DefaultConfig().PrecomputeMachineEnv() })
	cfg := e.baseCfg
	cfg.Threads = cores
	cfg.MPBCapacity = budget
	cfg.Cache = cache
	if e.Mutate != nil {
		mut := e.Mutate
		cfg.TransformRCCE = func(src string) (string, error) { return mut(src), nil }
	}
	return cfg
}

// workload wraps fixed kernel source as a bench workload. The source is
// already emitted for the right thread count, so the harness parameters
// are ignored.
func kernelWorkload(seed int64, src string) bench.Workload {
	return bench.Workload{
		Key:    fmt.Sprintf("gen%d", seed),
		Name:   fmt.Sprintf("generated kernel %d", seed),
		Class:  "conformance",
		Source: func(threads int, scale float64) string { return src },
	}
}

// oversubOptions maps factor×cores UEs round-robin onto cores cores in
// the runtime's §7.2 many-to-one mode.
func oversubOptions(cores, factor int) func(int) rcce.Options {
	return func(n int) rcce.Options {
		o := rcce.DefaultOptions(n)
		ues := make([]int, cores*factor)
		for i := range ues {
			ues[i] = i % cores
		}
		o.Cores = ues
		o.AllowOversubscribe = true
		return o
	}
}

// cellConfig assembles the harness configuration for one cell: the UE
// count is cores×oversub, and an oversubscribed cell installs the
// many-to-one runtime mapping.
func (e *Engine) cellConfig(cores, budget, oversub int, cache *bench.Cache) bench.Config {
	ues := cores * max(oversub, 1)
	cfg := e.config(ues, budget, cache)
	if oversub > 1 {
		cfg.RCCE = oversubOptions(cores, oversub)
	}
	return cfg
}

// CheckCell runs spec through both backends at one matrix cell and
// returns the divergence, or nil when the backends agree.
func (e *Engine) CheckCell(spec *Spec, cores int, policy string, budget, oversub int) *Divergence {
	ues := cores * max(oversub, 1)
	return e.CheckSource(spec.Seed, spec.Source(ues), cores, policy, budget, oversub)
}

// CheckSource differentially checks fixed kernel source at one cell —
// the entry point for replaying persisted corpus kernels, where the .c
// file rather than the generator is the source of truth. The source
// must already be emitted for cores×oversub threads.
func (e *Engine) CheckSource(seed int64, src string, cores int, policy string, budget, oversub int) *Divergence {
	div := &Divergence{Seed: seed, Cores: cores, Policy: policy, Budget: budget, Oversub: oversub, Source: src}
	pol, err := bench.ParsePolicy(policy)
	if err != nil {
		div.Err = err.Error()
		return div
	}
	cfg := e.cellConfig(cores, budget, oversub, bench.NewCache())
	both, err := bench.RunBothBackends(kernelWorkload(seed, src), cfg, pol)
	if err != nil {
		div.Err = err.Error()
		return div
	}
	if both.Match {
		return nil
	}
	div.BaseOut = both.Baseline.Output
	div.RCCEOut = both.RCCE.Output
	div.Translated = both.RCCE.TranslatedSource
	return div
}

// Check runs spec across the whole matrix, compiling the kernel once
// per cores value and sharing one baseline run, and returns the first
// divergence (cores-ascending, policy-major) or nil. Sharing matters
// twice over: the matrix's RCCE cells all diff against the same
// reference execution, and the per-kernel compile cache means the
// baseline source and each distinct translated source compile exactly
// once for the whole matrix instead of once per cell.
func (e *Engine) Check(spec *Spec) *Divergence {
	return e.checkMatrix(spec.Seed, spec.Source)
}

// checkMatrix is the matrix loop shared by the spec oracle (Check) and
// the synthetic-vector oracle (CheckSynth): srcFor emits the kernel for
// a UE count, and the sweep walks every (cores, oversub, policy,
// budget) cell.
func (e *Engine) checkMatrix(seed int64, srcFor func(ues int) string) *Divergence {
	cache := bench.NewCache()
	for _, cores := range e.Matrix.Cores {
		for _, factor := range e.Matrix.factors() {
			ues := cores * factor
			src := srcFor(ues)
			w := kernelWorkload(seed, src)
			base, err := bench.RunBaseline(w, e.cellConfig(cores, 0, factor, cache))
			if err != nil {
				return &Divergence{Seed: seed, Cores: cores, Oversub: factor,
					Policy: e.Matrix.Policies[0], Budget: e.Matrix.Budgets[0],
					Source: src, Err: "baseline: " + err.Error()}
			}
			for _, policy := range e.Matrix.Policies {
				pol, err := bench.ParsePolicy(policy)
				if err != nil {
					return &Divergence{Seed: seed, Cores: cores, Oversub: factor,
						Policy: policy, Source: src, Err: err.Error()}
				}
				for _, budget := range e.Matrix.Budgets {
					div := &Divergence{Seed: seed, Cores: cores, Oversub: factor,
						Policy: policy, Budget: budget, Source: src}
					conv, err := bench.RunRCCE(w, e.cellConfig(cores, budget, factor, cache), pol)
					if err != nil {
						div.Err = err.Error()
						return div
					}
					if !bench.SameResults(base.Output, conv.Output) {
						div.BaseOut = base.Output
						div.RCCEOut = conv.Output
						div.Translated = conv.TranslatedSource
						return div
					}
				}
			}
		}
	}
	return nil
}

// SpecForSeed deterministically derives kernel i of a run: the kernel's
// own seed is base+i, so a failure in kernel 137 of a 10k-kernel soak
// reproduces directly via -seed base+137 -n 1.
func SpecForSeed(seed int64, opts GenOptions) *Spec {
	s := Generate(rand.New(rand.NewSource(seed)), opts)
	s.Seed = seed
	return s
}

// Failure is one failed kernel with its shrunken reproducer.
type Failure struct {
	Seed      int64       `json:"seed"`
	Div       *Divergence `json:"divergence"`
	Spec      *Spec       `json:"spec"`
	Minimized *Spec       `json:"minimized,omitempty"`
	MinSource string      `json:"min_source,omitempty"`
}

// Report summarises an engine run.
type Report struct {
	BaseSeed int64
	Kernels  int
	Failures []*Failure
}

// Run generates and checks n kernels with seeds base..base+n-1 across a
// worker pool, shrinking any failures to minimal reproducers. logf, when
// non-nil, receives one line per failure as it happens.
func (e *Engine) Run(base int64, n, parallel int, logf func(format string, args ...any)) *Report {
	if parallel < 1 {
		parallel = 1
	}
	rep := &Report{BaseSeed: base, Kernels: n}
	var mu sync.Mutex
	jobs := make(chan int64)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range jobs {
				spec := SpecForSeed(seed, e.Gen)
				div := e.Check(spec)
				if div == nil {
					continue
				}
				min := e.Shrink(spec, div)
				f := &Failure{Seed: seed, Div: div, Spec: spec, Minimized: min,
					MinSource: min.Source(div.Cores)}
				mu.Lock()
				rep.Failures = append(rep.Failures, f)
				mu.Unlock()
				if logf != nil {
					logf("conformance: FAIL %s\nminimized (%d lines):\n%s",
						div, strings.Count(f.MinSource, "\n"), f.MinSource)
				}
			}
		}()
	}
	for i := int64(0); i < int64(n); i++ {
		jobs <- base + i
	}
	close(jobs)
	wg.Wait()
	return rep
}
