package partition

import (
	"strings"
	"testing"
	"testing/quick"

	"hsmcc/internal/analysis/scope"
	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/types"
)

// mkvar builds a synthetic shared variable of the given size with the
// given access counts.
func mkvar(name string, size, reads, writes int) *scope.VarInfo {
	return &scope.VarInfo{
		Sym:     &ast.Symbol{Name: name, Global: true, Type: types.ArrayOf(types.CharType, size)},
		Name:    name,
		Type:    types.ArrayOf(types.CharType, size),
		Count:   size,
		MemSize: size,
		Reads:   reads,
		Writes:  writes,
	}
}

func placements(r *Result) map[string]Placement {
	out := make(map[string]Placement)
	for _, a := range r.Assignments {
		out[a.Var.Name] = a.Placement
	}
	return out
}

// TestAllFitsOnChip: Algorithm 3's best case (lines 4-12).
func TestAllFitsOnChip(t *testing.T) {
	vars := []*scope.VarInfo{mkvar("a", 100, 1, 1), mkvar("b", 200, 1, 1)}
	r := Partition(vars, 1024, PolicySizeAscending)
	for name, p := range placements(r) {
		if p != OnChip {
			t.Errorf("%s = %v, want on-chip (everything fits)", name, p)
		}
	}
	if r.OnChipBytes != 300 || r.OffChipBytes != 0 {
		t.Errorf("bytes = %d/%d, want 300/0", r.OnChipBytes, r.OffChipBytes)
	}
}

// TestSizeAscendingGreedy: when capacity is short, small variables win
// slots (Algorithm 3 line 14: sort ascending).
func TestSizeAscendingGreedy(t *testing.T) {
	vars := []*scope.VarInfo{
		mkvar("huge", 900, 100, 100),
		mkvar("tiny", 50, 1, 1),
		mkvar("mid", 300, 10, 10),
	}
	r := Partition(vars, 400, PolicySizeAscending)
	got := placements(r)
	if got["tiny"] != OnChip || got["mid"] != OnChip {
		t.Errorf("tiny/mid = %v/%v, want both on-chip", got["tiny"], got["mid"])
	}
	if got["huge"] != OffChip {
		t.Errorf("huge = %v, want off-chip", got["huge"])
	}
	if r.OnChipBytes != 350 {
		t.Errorf("on-chip bytes = %d, want 350", r.OnChipBytes)
	}
}

// TestFrequencyDensityPolicy: the ablation policy prefers hot-per-byte
// data even when it is larger.
func TestFrequencyDensityPolicy(t *testing.T) {
	vars := []*scope.VarInfo{
		mkvar("coldsmall", 100, 1, 0),   // density 0.01
		mkvar("hotbig", 300, 3000, 300), // density 11
	}
	r := Partition(vars, 350, PolicyFrequencyDensity)
	got := placements(r)
	if got["hotbig"] != OnChip {
		t.Errorf("hotbig = %v, want on-chip under frequency policy", got["hotbig"])
	}
	if got["coldsmall"] != OffChip {
		// Only 50 bytes remain after hotbig: coldsmall (100 B) spills.
		t.Errorf("coldsmall = %v, want off-chip (does not fit the remainder)", got["coldsmall"])
	}
	// Size-ascending would have placed coldsmall first and then hotbig
	// would not fit: the two policies genuinely differ here.
	r2 := Partition(vars, 350, PolicySizeAscending)
	if placements(r2)["hotbig"] != OffChip {
		t.Error("size-ascending should sacrifice hotbig")
	}
}

// TestOffChipOnly: the Fig 6.1 configuration.
func TestOffChipOnly(t *testing.T) {
	vars := []*scope.VarInfo{mkvar("a", 10, 1, 1), mkvar("b", 20, 1, 1)}
	r := Partition(vars, 1<<20, PolicyOffChipOnly)
	for name, p := range placements(r) {
		if p != OffChip {
			t.Errorf("%s = %v, want off-chip", name, p)
		}
	}
	if r.OnChipBytes != 0 {
		t.Errorf("on-chip bytes = %d, want 0", r.OnChipBytes)
	}
}

// TestOffsetsContiguous: offsets within each region are contiguous and
// non-overlapping.
func TestOffsetsContiguous(t *testing.T) {
	vars := []*scope.VarInfo{
		mkvar("a", 64, 1, 1), mkvar("b", 32, 1, 1), mkvar("c", 128, 1, 1),
	}
	r := Partition(vars, 1024, PolicySizeAscending)
	seen := 0
	for _, a := range r.Assignments {
		if a.Offset != seen {
			t.Errorf("%s offset = %d, want %d", a.Var.Name, a.Offset, seen)
		}
		seen += a.Var.MemSize
	}
}

// TestPlacementLookup covers the ByVar index and the default.
func TestPlacementLookup(t *testing.T) {
	a := mkvar("a", 10, 1, 1)
	other := mkvar("other", 10, 1, 1)
	r := Partition([]*scope.VarInfo{a}, 100, PolicySizeAscending)
	if r.Placement(a) != OnChip {
		t.Error("a should be on-chip")
	}
	if r.Placement(other) != OffChip {
		t.Error("unknown variables default to off-chip")
	}
}

func TestPlacementString(t *testing.T) {
	if OnChip.String() != "on-chip" || OffChip.String() != "off-chip" {
		t.Error("placement strings wrong")
	}
}

func TestDump(t *testing.T) {
	r := Partition([]*scope.VarInfo{mkvar("x", 8, 1, 1)}, 64, PolicySizeAscending)
	if !strings.Contains(r.Dump(), "x") || !strings.Contains(r.Dump(), "on-chip") {
		t.Errorf("Dump = %q", r.Dump())
	}
}

// TestCapacityInvariant: property test — on-chip usage never exceeds
// capacity, every variable is placed exactly once, and byte totals add up.
func TestCapacityInvariant(t *testing.T) {
	f := func(sizes []uint16, capacity uint16, policyPick uint8) bool {
		if len(sizes) > 24 {
			sizes = sizes[:24]
		}
		var vars []*scope.VarInfo
		total := 0
		for i, s := range sizes {
			size := int(s%2048) + 1
			vars = append(vars, mkvar(name(i), size, i, i/2))
			total += size
		}
		policy := []Policy{PolicySizeAscending, PolicyFrequencyDensity, PolicyOffChipOnly}[policyPick%3]
		r := Partition(vars, int(capacity), policy)
		if len(r.Assignments) != len(vars) {
			return false
		}
		if r.OnChipBytes > int(capacity) && total > int(capacity) {
			return false
		}
		return r.OnChipBytes+r.OffChipBytes == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func name(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}
