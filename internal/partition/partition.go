// Package partition implements Stage 4 of the paper's framework: data
// partitioning between on-chip and off-chip shared memory (thesis §4.4,
// Algorithm 3).
//
// Given the shared-variable set from Stages 1-3 and the capacity of the
// on-chip shared SRAM (the SCC's Message Passing Buffer), the partitioner
// decides per variable whether its explicit shared allocation goes to the
// MPB or to off-chip shared DRAM:
//
//   - If the total shared footprint fits on-chip, everything goes on-chip.
//   - Otherwise variables are sorted by mem_size ascending and placed
//     on-chip greedily while they fit; the rest go off-chip.
//
// An alternative frequency-density policy (reads+writes per byte) is
// provided for the ablation study called out in DESIGN.md.
package partition

import (
	"fmt"
	"sort"
	"strings"

	"hsmcc/internal/analysis/scope"
)

// Placement says where a shared variable's backing store lives.
type Placement int

// Placements.
const (
	OffChip Placement = iota // shared off-chip DRAM (uncacheable)
	OnChip                   // on-chip MPB SRAM
)

// String renders the placement.
func (p Placement) String() string {
	if p == OnChip {
		return "on-chip"
	}
	return "off-chip"
}

// Policy selects the partitioning heuristic.
type Policy int

// Policies.
const (
	// PolicySizeAscending is the paper's Algorithm 3: sort by mem_size
	// ascending, place greedily on-chip.
	PolicySizeAscending Policy = iota
	// PolicyFrequencyDensity places by (reads+writes)/byte descending —
	// the ablation alternative.
	PolicyFrequencyDensity
	// PolicyOffChipOnly forces everything off-chip (the Fig 6.1
	// configuration, before MPB optimisation).
	PolicyOffChipOnly
	// PolicyProfiled places by an explicit per-variable map produced by
	// the access-profiling subsystem (internal/profile): the placement
	// is decided from measured counters, not static estimates, and is
	// applied through PartitionExplicit.
	PolicyProfiled
)

// String names the policy the way the CLI flags spell it.
func (p Policy) String() string {
	switch p {
	case PolicySizeAscending:
		return "size"
	case PolicyFrequencyDensity:
		return "freq"
	case PolicyOffChipOnly:
		return "offchip"
	case PolicyProfiled:
		return "profiled"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Assignment is the placement decision for one shared variable.
type Assignment struct {
	Var       *scope.VarInfo
	Placement Placement
	// Offset is the byte offset within the chosen region, assigned
	// contiguously per region in decision order.
	Offset int
}

// Result is the partitioning outcome.
type Result struct {
	Assignments []Assignment
	// OnChipBytes and OffChipBytes are the totals placed in each region.
	OnChipBytes  int
	OffChipBytes int
	// Capacity echoes the MPB capacity used.
	Capacity int
	// ByVar indexes assignments.
	ByVar map[*scope.VarInfo]*Assignment
}

// Placement returns the placement for v (OffChip if v was not shared).
func (r *Result) Placement(v *scope.VarInfo) Placement {
	if a, ok := r.ByVar[v]; ok {
		return a.Placement
	}
	return OffChip
}

// Partition runs Algorithm 3 (or the selected policy) over the shared
// variables with the given on-chip capacity in bytes.
func Partition(shared []*scope.VarInfo, capacity int, policy Policy) *Result {
	r := &Result{Capacity: capacity, ByVar: make(map[*scope.VarInfo]*Assignment)}

	place := func(v *scope.VarInfo, p Placement) {
		a := Assignment{Var: v, Placement: p}
		if p == OnChip {
			a.Offset = r.OnChipBytes
			r.OnChipBytes += v.MemSize
		} else {
			a.Offset = r.OffChipBytes
			r.OffChipBytes += v.MemSize
		}
		r.Assignments = append(r.Assignments, a)
		r.ByVar[v] = &r.Assignments[len(r.Assignments)-1]
	}

	if policy == PolicyOffChipOnly {
		for _, v := range shared {
			place(v, OffChip)
		}
		return r
	}

	total := 0
	for _, v := range shared {
		total += v.MemSize
	}
	if total <= capacity {
		// Best case: everything fits on-chip (Algorithm 3 lines 4-12).
		for _, v := range shared {
			place(v, OnChip)
		}
		return r
	}

	ordered := append([]*scope.VarInfo(nil), shared...)
	switch policy {
	case PolicySizeAscending:
		// Algorithm 3 line 14: sort by size ascending.
		ordered = scope.SortedByMemSize(ordered)
	case PolicyFrequencyDensity:
		sort.SliceStable(ordered, func(i, j int) bool {
			di := density(ordered[i])
			dj := density(ordered[j])
			if di != dj {
				return di > dj
			}
			return ordered[i].Name < orderedName(ordered[j])
		})
	}

	remaining := capacity
	for _, v := range ordered {
		if v.MemSize <= remaining {
			place(v, OnChip)
			remaining -= v.MemSize
		} else {
			place(v, OffChip)
		}
	}
	return r
}

// PartitionExplicit applies an explicit placement map (variable name ->
// on-chip) over the shared set — Stage 4 for the profile-guided
// `profiled` policy. Variables are placed in declaration order; a
// variable the map sends on-chip still falls back to off-chip if it no
// longer fits the capacity (the optimizer never chooses such a set, but
// a stale or hand-written map must degrade instead of overflowing the
// MPB), and unmapped variables go off-chip.
func PartitionExplicit(shared []*scope.VarInfo, capacity int, onchip map[string]bool) *Result {
	r := &Result{Capacity: capacity, ByVar: make(map[*scope.VarInfo]*Assignment)}
	remaining := capacity
	for _, v := range shared {
		p := OffChip
		if onchip[v.Name] && v.MemSize <= remaining {
			p = OnChip
			remaining -= v.MemSize
		}
		a := Assignment{Var: v, Placement: p}
		if p == OnChip {
			a.Offset = r.OnChipBytes
			r.OnChipBytes += v.MemSize
		} else {
			a.Offset = r.OffChipBytes
			r.OffChipBytes += v.MemSize
		}
		r.Assignments = append(r.Assignments, a)
		r.ByVar[v] = &r.Assignments[len(r.Assignments)-1]
	}
	return r
}

func density(v *scope.VarInfo) float64 {
	if v.MemSize == 0 {
		return 0
	}
	return float64(v.Reads+v.Writes) / float64(v.MemSize)
}

func orderedName(v *scope.VarInfo) string { return v.Name }

// Dump renders the partitioning decision for diagnostics and tests.
func (r *Result) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "on-chip capacity: %d bytes, used %d; off-chip used %d\n",
		r.Capacity, r.OnChipBytes, r.OffChipBytes)
	for _, a := range r.Assignments {
		fmt.Fprintf(&sb, "%-12s %6d B -> %s (offset %d)\n",
			a.Var.Name, a.Var.MemSize, a.Placement, a.Offset)
	}
	return sb.String()
}
