// Package sema resolves identifiers to symbols and assigns result types to
// expressions. It implements the symbol-table layer that CETUS provides the
// paper's analysis passes: after Analyze, every ast.Ident carries a
// *ast.Symbol, every ast.VarDecl/Param its canonical symbol, and every
// expression node a static type.
//
// Sema is deliberately permissive (C compilers of the SCC era accepted the
// benchmark idioms it must accept, e.g. int/pointer casts), but it rejects
// the errors that would make later stages meaningless: use of undeclared
// identifiers, calls to undefined non-builtin functions, and redeclaration
// in the same scope.
package sema

import (
	"fmt"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/token"
	"hsmcc/internal/cc/types"
)

// Error is a semantic error with source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Builtins are functions the runtime provides; calls to them resolve
// without a definition in the translation unit. The set covers libc
// essentials, Pthread, and RCCE — the three APIs the paper's programs use.
var Builtins = map[string]*types.Type{
	// libc
	"printf":    types.FuncOf(types.IntType, []*types.Type{types.PointerTo(types.CharType)}, true),
	"fprintf":   types.FuncOf(types.IntType, []*types.Type{types.PointerTo(types.VoidType), types.PointerTo(types.CharType)}, true),
	"malloc":    types.FuncOf(types.PointerTo(types.VoidType), []*types.Type{types.UIntType}, false),
	"calloc":    types.FuncOf(types.PointerTo(types.VoidType), []*types.Type{types.UIntType, types.UIntType}, false),
	"free":      types.FuncOf(types.VoidType, []*types.Type{types.PointerTo(types.VoidType)}, false),
	"memcpy":    types.FuncOf(types.PointerTo(types.VoidType), []*types.Type{types.PointerTo(types.VoidType), types.PointerTo(types.VoidType), types.UIntType}, false),
	"memset":    types.FuncOf(types.PointerTo(types.VoidType), []*types.Type{types.PointerTo(types.VoidType), types.IntType, types.UIntType}, false),
	"exit":      types.FuncOf(types.VoidType, []*types.Type{types.IntType}, false),
	"abort":     types.FuncOf(types.VoidType, nil, false),
	"atoi":      types.FuncOf(types.IntType, []*types.Type{types.PointerTo(types.CharType)}, false),
	"sqrt":      types.FuncOf(types.DoubleType, []*types.Type{types.DoubleType}, false),
	"fabs":      types.FuncOf(types.DoubleType, []*types.Type{types.DoubleType}, false),
	"wallclock": types.FuncOf(types.DoubleType, nil, false),

	// Pthread API (subset the paper's Algorithms 4-8 handle)
	"pthread_create":        types.FuncOf(types.IntType, []*types.Type{types.PointerTo(types.OpaqueOf("pthread_t")), types.PointerTo(types.VoidType), types.PointerTo(types.VoidType), types.PointerTo(types.VoidType)}, false),
	"pthread_join":          types.FuncOf(types.IntType, []*types.Type{types.OpaqueOf("pthread_t"), types.PointerTo(types.PointerTo(types.VoidType))}, false),
	"pthread_exit":          types.FuncOf(types.VoidType, []*types.Type{types.PointerTo(types.VoidType)}, false),
	"pthread_self":          types.FuncOf(types.OpaqueOf("pthread_t"), nil, false),
	"pthread_mutex_init":    types.FuncOf(types.IntType, []*types.Type{types.PointerTo(types.OpaqueOf("pthread_mutex_t")), types.PointerTo(types.VoidType)}, false),
	"pthread_mutex_lock":    types.FuncOf(types.IntType, []*types.Type{types.PointerTo(types.OpaqueOf("pthread_mutex_t"))}, false),
	"pthread_mutex_unlock":  types.FuncOf(types.IntType, []*types.Type{types.PointerTo(types.OpaqueOf("pthread_mutex_t"))}, false),
	"pthread_mutex_destroy": types.FuncOf(types.IntType, []*types.Type{types.PointerTo(types.OpaqueOf("pthread_mutex_t"))}, false),

	// RCCE API (subset used by translated programs; thesis Example 4.2)
	"RCCE_init":          types.FuncOf(types.IntType, []*types.Type{types.PointerTo(types.PointerTo(types.IntType)), types.PointerTo(types.PointerTo(types.PointerTo(types.CharType)))}, false),
	"RCCE_finalize":      types.FuncOf(types.IntType, nil, false),
	"RCCE_ue":            types.FuncOf(types.IntType, nil, false),
	"RCCE_num_ues":       types.FuncOf(types.IntType, nil, false),
	"RCCE_shmalloc":      types.FuncOf(types.PointerTo(types.VoidType), []*types.Type{types.UIntType}, false),
	"RCCE_shfree":        types.FuncOf(types.VoidType, []*types.Type{types.PointerTo(types.VoidType)}, false),
	"RCCE_mpbmalloc":     types.FuncOf(types.PointerTo(types.VoidType), []*types.Type{types.UIntType}, false),
	"RCCE_barrier":       types.FuncOf(types.IntType, []*types.Type{types.PointerTo(types.OpaqueOf("RCCE_COMM"))}, false),
	"RCCE_acquire_lock":  types.FuncOf(types.IntType, []*types.Type{types.IntType}, false),
	"RCCE_release_lock":  types.FuncOf(types.IntType, []*types.Type{types.IntType}, false),
	"RCCE_put":           types.FuncOf(types.IntType, []*types.Type{types.PointerTo(types.CharType), types.PointerTo(types.CharType), types.IntType, types.IntType}, false),
	"RCCE_get":           types.FuncOf(types.IntType, []*types.Type{types.PointerTo(types.CharType), types.PointerTo(types.CharType), types.IntType, types.IntType}, false),
	"RCCE_wtime":         types.FuncOf(types.DoubleType, nil, false),
	"RCCE_power_domain":  types.FuncOf(types.IntType, nil, false),
	"RCCE_get_frequency": types.FuncOf(types.IntType, nil, false),
	"RCCE_set_frequency": types.FuncOf(types.IntType, []*types.Type{types.IntType}, false),
	"RCCE_chip_power":    types.FuncOf(types.DoubleType, nil, false),
	"RCCE_send":          types.FuncOf(types.IntType, []*types.Type{types.PointerTo(types.CharType), types.IntType, types.IntType}, false),
	"RCCE_recv":          types.FuncOf(types.IntType, []*types.Type{types.PointerTo(types.CharType), types.IntType, types.IntType}, false),
}

// Info is the result of Analyze: symbol tables for the translation unit.
type Info struct {
	File *ast.File
	// Globals maps name to symbol for file-scope variables.
	Globals map[string]*ast.Symbol
	// Funcs maps name to symbol for defined functions.
	Funcs map[string]*ast.Symbol
	// AllSymbols lists every variable/param symbol in declaration order
	// (globals first, then per function in source order).
	AllSymbols []*ast.Symbol
}

// scope is a lexical scope chain node.
type scope struct {
	parent *scope
	names  map[string]*ast.Symbol
}

func (s *scope) lookup(name string) *ast.Symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.names[name]; ok {
			return sym
		}
	}
	return nil
}

func (s *scope) declare(sym *ast.Symbol) error {
	if _, exists := s.names[sym.Name]; exists {
		return fmt.Errorf("redeclaration of %q", sym.Name)
	}
	s.names[sym.Name] = sym
	return nil
}

type checker struct {
	info    *Info
	curFunc *ast.FuncDecl
	err     error
}

// Analyze resolves names and types in f, returning symbol tables.
func Analyze(f *ast.File) (*Info, error) {
	info := &Info{
		File:    f,
		Globals: make(map[string]*ast.Symbol),
		Funcs:   make(map[string]*ast.Symbol),
	}
	c := &checker{info: info}
	global := &scope{names: make(map[string]*ast.Symbol)}

	// Pass 1: declare all globals and functions (C requires declaration
	// before use; we allow forward references to functions, which the
	// benchmarks rely on for thread functions defined before main).
	for _, d := range f.Decls {
		switch n := d.(type) {
		case *ast.VarDecl:
			sym := &ast.Symbol{Name: n.Name, Kind: ast.SymVar, Type: n.Type, Global: true, Decl: n}
			n.Sym = sym
			if err := global.declare(sym); err != nil {
				return nil, &Error{Pos: n.Pos(), Msg: err.Error()}
			}
			info.Globals[n.Name] = sym
			info.AllSymbols = append(info.AllSymbols, sym)
		case *ast.FuncDecl:
			if existing, ok := info.Funcs[n.Name]; ok {
				// Allow a prototype followed by the definition.
				if fd, isFn := existing.Decl.(*ast.FuncDecl); isFn && fd.Body == nil && n.Body != nil {
					existing.Decl = n
					continue
				}
				if n.Body == nil {
					continue
				}
				return nil, &Error{Pos: n.Pos(), Msg: fmt.Sprintf("redefinition of function %q", n.Name)}
			}
			sym := &ast.Symbol{Name: n.Name, Kind: ast.SymFunc, Type: n.Type(), Global: true, Decl: n}
			info.Funcs[n.Name] = sym
			if err := global.declare(sym); err != nil {
				return nil, &Error{Pos: n.Pos(), Msg: err.Error()}
			}
		}
	}

	// Pass 2: check bodies.
	for _, d := range f.Decls {
		n, ok := d.(*ast.FuncDecl)
		if !ok || n.Body == nil {
			continue
		}
		c.curFunc = n
		fnScope := &scope{parent: global, names: make(map[string]*ast.Symbol)}
		for _, prm := range n.Params {
			if prm.Name == "" {
				continue
			}
			sym := &ast.Symbol{Name: prm.Name, Kind: ast.SymParam, Type: prm.Type, Func: n.Name, Decl: prm}
			prm.Sym = sym
			if err := fnScope.declare(sym); err != nil {
				return nil, &Error{Pos: prm.Pos(), Msg: err.Error()}
			}
			info.AllSymbols = append(info.AllSymbols, sym)
		}
		if err := c.checkBlock(n.Body, fnScope); err != nil {
			return nil, err
		}
	}
	return info, nil
}

func (c *checker) checkBlock(b *ast.BlockStmt, parent *scope) error {
	sc := &scope{parent: parent, names: make(map[string]*ast.Symbol)}
	for _, s := range b.List {
		if err := c.checkStmt(s, sc); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) declareLocal(d *ast.VarDecl, sc *scope) error {
	sym := &ast.Symbol{Name: d.Name, Kind: ast.SymVar, Type: d.Type, Func: c.curFunc.Name, Decl: d}
	d.Sym = sym
	if err := sc.declare(sym); err != nil {
		return &Error{Pos: d.Pos(), Msg: err.Error()}
	}
	c.info.AllSymbols = append(c.info.AllSymbols, sym)
	if d.Init != nil {
		if _, err := c.checkExpr(d.Init, sc); err != nil {
			return err
		}
	}
	for _, e := range d.InitLst {
		if _, err := c.checkExpr(e, sc); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s ast.Stmt, sc *scope) error {
	switch n := s.(type) {
	case *ast.BlockStmt:
		return c.checkBlock(n, sc)
	case *ast.DeclStmt:
		return c.declareLocal(n.Decl, sc)
	case *ast.ExprStmt:
		_, err := c.checkExpr(n.X, sc)
		return err
	case *ast.IfStmt:
		if _, err := c.checkExpr(n.Cond, sc); err != nil {
			return err
		}
		if err := c.checkStmt(n.Then, sc); err != nil {
			return err
		}
		if n.Else != nil {
			return c.checkStmt(n.Else, sc)
		}
		return nil
	case *ast.ForStmt:
		inner := &scope{parent: sc, names: make(map[string]*ast.Symbol)}
		if n.Init != nil {
			if err := c.checkStmt(n.Init, inner); err != nil {
				return err
			}
		}
		if n.Cond != nil {
			if _, err := c.checkExpr(n.Cond, inner); err != nil {
				return err
			}
		}
		if n.Post != nil {
			if _, err := c.checkExpr(n.Post, inner); err != nil {
				return err
			}
		}
		return c.checkStmt(n.Body, inner)
	case *ast.WhileStmt:
		if _, err := c.checkExpr(n.Cond, sc); err != nil {
			return err
		}
		return c.checkStmt(n.Body, sc)
	case *ast.DoWhileStmt:
		if err := c.checkStmt(n.Body, sc); err != nil {
			return err
		}
		_, err := c.checkExpr(n.Cond, sc)
		return err
	case *ast.SwitchStmt:
		if _, err := c.checkExpr(n.Tag, sc); err != nil {
			return err
		}
		for _, cl := range n.Cases {
			if cl.Value != nil {
				if _, err := c.checkExpr(cl.Value, sc); err != nil {
					return err
				}
			}
			inner := &scope{parent: sc, names: make(map[string]*ast.Symbol)}
			for _, bs := range cl.Body {
				if err := c.checkStmt(bs, inner); err != nil {
					return err
				}
			}
		}
		return nil
	case *ast.ReturnStmt:
		if n.Result != nil {
			_, err := c.checkExpr(n.Result, sc)
			return err
		}
		return nil
	case *ast.BreakStmt, *ast.ContinueStmt, *ast.EmptyStmt:
		return nil
	}
	return &Error{Pos: s.Pos(), Msg: fmt.Sprintf("unhandled statement %T", s)}
}

func (c *checker) checkExpr(e ast.Expr, sc *scope) (*types.Type, error) {
	switch n := e.(type) {
	case *ast.Ident:
		if sym := sc.lookup(n.Name); sym != nil {
			n.Sym = sym
			n.Typ = sym.Type
			return sym.Type, nil
		}
		if bt, ok := Builtins[n.Name]; ok {
			n.Typ = bt
			return bt, nil
		}
		if n.Name == "NULL" {
			n.Typ = types.PointerTo(types.VoidType)
			return n.Typ, nil
		}
		if n.Name == "RCCE_COMM_WORLD" {
			n.Typ = types.OpaqueOf("RCCE_COMM")
			return n.Typ, nil
		}
		return nil, &Error{Pos: n.Pos(), Msg: fmt.Sprintf("undeclared identifier %q", n.Name)}
	case *ast.IntLit:
		return n.Typ, nil
	case *ast.FloatLit:
		return n.Typ, nil
	case *ast.StringLit:
		return n.Typ, nil
	case *ast.CharLit:
		return n.Typ, nil
	case *ast.ParenExpr:
		return c.checkExpr(n.X, sc)
	case *ast.BinaryExpr:
		xt, err := c.checkExpr(n.X, sc)
		if err != nil {
			return nil, err
		}
		yt, err := c.checkExpr(n.Y, sc)
		if err != nil {
			return nil, err
		}
		n.Typ = binaryResult(n.Op, xt, yt)
		return n.Typ, nil
	case *ast.AssignExpr:
		lt, err := c.checkExpr(n.LHS, sc)
		if err != nil {
			return nil, err
		}
		if _, err := c.checkExpr(n.RHS, sc); err != nil {
			return nil, err
		}
		n.Typ = lt
		return lt, nil
	case *ast.UnaryExpr:
		xt, err := c.checkExpr(n.X, sc)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case token.Star:
			if xt != nil && xt.IsPointerLike() {
				n.Typ = xt.Decay().Elem
			} else {
				n.Typ = types.IntType
			}
		case token.Amp:
			n.Typ = types.PointerTo(xt)
		case token.Bang:
			n.Typ = types.IntType
		default:
			n.Typ = xt
		}
		return n.Typ, nil
	case *ast.PostfixExpr:
		xt, err := c.checkExpr(n.X, sc)
		if err != nil {
			return nil, err
		}
		n.Typ = xt
		return xt, nil
	case *ast.IndexExpr:
		xt, err := c.checkExpr(n.X, sc)
		if err != nil {
			return nil, err
		}
		if _, err := c.checkExpr(n.Index, sc); err != nil {
			return nil, err
		}
		if xt != nil && xt.IsPointerLike() {
			n.Typ = xt.Decay().Elem
		} else {
			return nil, &Error{Pos: n.Pos(), Msg: fmt.Sprintf("indexing non-pointer type %s", xt)}
		}
		return n.Typ, nil
	case *ast.CallExpr:
		name := n.FuncName()
		var ft *types.Type
		if name != "" {
			if sym, ok := c.info.Funcs[name]; ok {
				if id, isID := n.Fun.(*ast.Ident); isID {
					id.Sym = sym
					id.Typ = sym.Type
				}
				ft = sym.Type
			} else if bt, ok := Builtins[name]; ok {
				ft = bt
			} else if sym := sc.lookup(name); sym != nil && sym.Type.Kind == types.Pointer {
				// Call through a function pointer variable: permitted,
				// typed as returning void* (thread functions).
				ft = types.FuncOf(types.PointerTo(types.VoidType), nil, true)
				if id, isID := n.Fun.(*ast.Ident); isID {
					id.Sym = sym
					id.Typ = sym.Type
				}
			} else {
				return nil, &Error{Pos: n.Pos(), Msg: fmt.Sprintf("call to undefined function %q", name)}
			}
		} else {
			t, err := c.checkExpr(n.Fun, sc)
			if err != nil {
				return nil, err
			}
			ft = t
		}
		for _, a := range n.Args {
			if _, err := c.checkExpr(a, sc); err != nil {
				return nil, err
			}
		}
		if ft != nil && ft.Kind == types.Func {
			n.Typ = ft.Elem
		} else {
			n.Typ = types.IntType
		}
		return n.Typ, nil
	case *ast.CastExpr:
		if _, err := c.checkExpr(n.X, sc); err != nil {
			return nil, err
		}
		return n.To, nil
	case *ast.SizeofExpr:
		if n.X != nil {
			if _, err := c.checkExpr(n.X, sc); err != nil {
				return nil, err
			}
		}
		return n.Typ, nil
	case *ast.CondExpr:
		if _, err := c.checkExpr(n.Cond, sc); err != nil {
			return nil, err
		}
		tt, err := c.checkExpr(n.Then, sc)
		if err != nil {
			return nil, err
		}
		et, err := c.checkExpr(n.Else, sc)
		if err != nil {
			return nil, err
		}
		if tt != nil && et != nil && tt.IsArithmetic() && et.IsArithmetic() {
			n.Typ = types.Common(tt, et)
		} else {
			n.Typ = tt
		}
		return n.Typ, nil
	case *ast.CommaExpr:
		if _, err := c.checkExpr(n.X, sc); err != nil {
			return nil, err
		}
		yt, err := c.checkExpr(n.Y, sc)
		if err != nil {
			return nil, err
		}
		n.Typ = yt
		return yt, nil
	case *ast.MemberExpr:
		xt, err := c.checkExpr(n.X, sc)
		if err != nil {
			return nil, err
		}
		st := xt
		if n.Arrow {
			if xt == nil || xt.Kind != types.Pointer {
				return nil, &Error{Pos: n.Pos(), Msg: "-> applied to non-pointer"}
			}
			st = xt.Elem
		}
		if st == nil || st.Kind != types.Struct {
			return nil, &Error{Pos: n.Pos(), Msg: "member access on non-struct"}
		}
		f, ok := st.Field(n.Name)
		if !ok {
			return nil, &Error{Pos: n.Pos(), Msg: fmt.Sprintf("no field %q in %s", n.Name, st)}
		}
		n.Typ = f.Type
		return f.Type, nil
	}
	return nil, &Error{Pos: e.Pos(), Msg: fmt.Sprintf("unhandled expression %T", e)}
}

// binaryResult computes the result type of a binary operation with C's
// usual conversions plus pointer arithmetic.
func binaryResult(op token.Kind, x, y *types.Type) *types.Type {
	switch op {
	case token.EqEq, token.NotEq, token.Lt, token.Gt, token.Le, token.Ge,
		token.AndAnd, token.OrOr:
		return types.IntType
	}
	if x == nil {
		return y
	}
	if y == nil {
		return x
	}
	if x.IsPointerLike() && y.IsInteger() {
		return x.Decay()
	}
	if y.IsPointerLike() && x.IsInteger() {
		return y.Decay()
	}
	if x.IsPointerLike() && y.IsPointerLike() && op == token.Minus {
		return types.IntType
	}
	if x.IsArithmetic() && y.IsArithmetic() {
		return types.Common(x, y)
	}
	return x
}
