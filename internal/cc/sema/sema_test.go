package sema

import (
	"strings"
	"testing"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/parser"
	"hsmcc/internal/cc/types"
)

func analyze(t *testing.T, src string) *Info {
	t.Helper()
	f, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return info
}

func analyzeErr(t *testing.T, src string) error {
	t.Helper()
	f, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Analyze(f)
	return err
}

func TestSymbolResolution(t *testing.T) {
	info := analyze(t, `
int g;
int f(int p) {
    int l = p + g;
    return l;
}
int main() { return f(1); }`)
	if info.Globals["g"] == nil {
		t.Fatal("global g not recorded")
	}
	if info.Funcs["f"] == nil || info.Funcs["main"] == nil {
		t.Fatal("functions not recorded")
	}
	// Every Ident in f must be linked to a symbol.
	fn := info.File.FindFunc("f")
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Sym == nil {
			t.Errorf("unresolved ident %s", id.Name)
		}
		return true
	})
}

func TestShadowing(t *testing.T) {
	info := analyze(t, `
int x;
int main() {
    int x = 1;
    {
        int x = 2;
        x = 3;
    }
    return x;
}`)
	// Three distinct x symbols: global, outer local, inner local.
	count := 0
	for _, s := range info.AllSymbols {
		if s.Name == "x" {
			count++
		}
	}
	if count != 3 {
		t.Errorf("found %d x symbols, want 3", count)
	}
	// The return statement's x is the outer local, not the inner one.
	main := info.File.FindFunc("main")
	ret := main.Body.List[len(main.Body.List)-1].(*ast.ReturnStmt)
	id := ret.Result.(*ast.Ident)
	if id.Sym == nil || id.Sym.Global {
		t.Error("return x must resolve to the local")
	}
}

func TestUndeclaredRejected(t *testing.T) {
	if err := analyzeErr(t, "int main() { return nope; }"); err == nil {
		t.Error("undeclared identifier accepted")
	}
	if err := analyzeErr(t, "int main() { nope(); return 0; }"); err == nil {
		t.Error("call to unknown non-builtin accepted")
	}
}

func TestRedeclarationRejected(t *testing.T) {
	if err := analyzeErr(t, "int main() { int a; int a; return 0; }"); err == nil {
		t.Error("same-scope redeclaration accepted")
	}
}

func TestBuiltinsResolvable(t *testing.T) {
	analyze(t, `
int main() {
    printf("%d\n", 1);
    void *p = malloc(16);
    free(p);
    double d = sqrt(fabs(0.0 - 4.0));
    pthread_t t;
    pthread_create(&t, NULL, NULL, NULL);
    RCCE_init(NULL, NULL);
    RCCE_barrier(&RCCE_COMM_WORLD);
    return (int)d;
}`)
}

func TestExprTypes(t *testing.T) {
	info := analyze(t, `
double d;
int i;
int *p;
int arr[4];
int main() {
    d = d + i;
    p = &i;
    i = arr[2];
    return 0;
}`)
	main := info.File.FindFunc("main")
	// d + i must be double (usual conversions).
	s0 := main.Body.List[0].(*ast.ExprStmt).X.(*ast.AssignExpr)
	if rt := s0.RHS.ResultType(); rt == nil || rt.Kind != types.Double {
		t.Errorf("d + i type = %v, want double", rt)
	}
	// &i must be int*.
	s1 := main.Body.List[1].(*ast.ExprStmt).X.(*ast.AssignExpr)
	if rt := s1.RHS.ResultType(); rt == nil || rt.Kind != types.Pointer || rt.Elem.Kind != types.Int {
		t.Errorf("&i type = %v, want int*", rt)
	}
	// arr[2] must be int.
	s2 := main.Body.List[2].(*ast.ExprStmt).X.(*ast.AssignExpr)
	if rt := s2.RHS.ResultType(); rt == nil || rt.Kind != types.Int {
		t.Errorf("arr[2] type = %v, want int", rt)
	}
}

func TestParamsAreSymbols(t *testing.T) {
	info := analyze(t, "int f(int a, double b) { return a + (int)b; }\nint main() { return f(1, 2.0); }")
	fn := info.File.FindFunc("f")
	for _, p := range fn.Params {
		if p.Sym == nil || p.Sym.Kind != ast.SymParam {
			t.Errorf("param %s not a SymParam", p.Name)
		}
		if p.Sym.Func != "f" {
			t.Errorf("param %s owner = %q, want f", p.Name, p.Sym.Func)
		}
	}
}

func TestErrorHasPosition(t *testing.T) {
	err := analyzeErr(t, "int main() {\n    return bad;\n}")
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line info: %v", err)
	}
}

func TestStructFieldAccessChecked(t *testing.T) {
	analyze(t, `
struct point { int x; int y; };
struct point g;
int main() { g.x = 1; return g.y; }`)
}
