// Package token defines the lexical tokens of the C subset accepted by the
// hsmcc frontend, together with source positions.
//
// The subset covers everything the paper's benchmarks and translation
// framework need: the full C expression grammar, declarations with pointer
// and array derivations, control flow (if/else, for, while, do-while,
// switch), typedef-style names (pthread_t and friends), preprocessor
// include lines (recorded, not expanded), and string/char/number literals.
package token

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds. Keyword kinds follow the punctuation block.
const (
	EOF Kind = iota
	Ident
	IntLit
	FloatLit
	CharLit
	StringLit
	Include // a whole "#include <...>" or "#include \"...\"" line

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Semi     // ;
	Comma    // ,
	Dot      // .
	Arrow    // ->
	Ellipsis // ...

	Assign     // =
	AddAssign  // +=
	SubAssign  // -=
	MulAssign  // *=
	DivAssign  // /=
	ModAssign  // %=
	AndAssign  // &=
	OrAssign   // |=
	XorAssign  // ^=
	ShlAssign  // <<=
	ShrAssign  // >>=
	PlusPlus   // ++
	MinusMinus // --

	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %
	Amp     // &
	Pipe    // |
	Caret   // ^
	Tilde   // ~
	Bang    // !
	Shl     // <<
	Shr     // >>
	Lt      // <
	Gt      // >
	Le      // <=
	Ge      // >=
	EqEq    // ==
	NotEq   // !=
	AndAnd  // &&
	OrOr    // ||
	Quest   // ?
	Colon   // :

	// Keywords.
	KwInt
	KwLong
	KwShort
	KwChar
	KwFloat
	KwDouble
	KwVoid
	KwUnsigned
	KwSigned
	KwStruct
	KwUnion
	KwEnum
	KwTypedef
	KwConst
	KwVolatile
	KwStatic
	KwExtern
	KwRegister
	KwIf
	KwElse
	KwFor
	KwWhile
	KwDo
	KwSwitch
	KwCase
	KwDefault
	KwBreak
	KwContinue
	KwReturn
	KwGoto
	KwSizeof
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", IntLit: "integer literal",
	FloatLit: "float literal", CharLit: "char literal",
	StringLit: "string literal", Include: "#include",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Semi: ";", Comma: ",", Dot: ".",
	Arrow: "->", Ellipsis: "...",
	Assign: "=", AddAssign: "+=", SubAssign: "-=", MulAssign: "*=",
	DivAssign: "/=", ModAssign: "%=", AndAssign: "&=", OrAssign: "|=",
	XorAssign: "^=", ShlAssign: "<<=", ShrAssign: ">>=",
	PlusPlus: "++", MinusMinus: "--",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Bang: "!",
	Shl: "<<", Shr: ">>", Lt: "<", Gt: ">", Le: "<=", Ge: ">=",
	EqEq: "==", NotEq: "!=", AndAnd: "&&", OrOr: "||",
	Quest: "?", Colon: ":",
	KwInt: "int", KwLong: "long", KwShort: "short", KwChar: "char",
	KwFloat: "float", KwDouble: "double", KwVoid: "void",
	KwUnsigned: "unsigned", KwSigned: "signed", KwStruct: "struct",
	KwUnion: "union", KwEnum: "enum", KwTypedef: "typedef",
	KwConst: "const", KwVolatile: "volatile", KwStatic: "static",
	KwExtern: "extern", KwRegister: "register",
	KwIf: "if", KwElse: "else", KwFor: "for", KwWhile: "while",
	KwDo: "do", KwSwitch: "switch", KwCase: "case", KwDefault: "default",
	KwBreak: "break", KwContinue: "continue", KwReturn: "return",
	KwGoto: "goto", KwSizeof: "sizeof",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their kinds.
var Keywords = map[string]Kind{
	"int": KwInt, "long": KwLong, "short": KwShort, "char": KwChar,
	"float": KwFloat, "double": KwDouble, "void": KwVoid,
	"unsigned": KwUnsigned, "signed": KwSigned, "struct": KwStruct,
	"union": KwUnion, "enum": KwEnum, "typedef": KwTypedef,
	"const": KwConst, "volatile": KwVolatile, "static": KwStatic,
	"extern": KwExtern, "register": KwRegister,
	"if": KwIf, "else": KwElse, "for": KwFor, "while": KwWhile,
	"do": KwDo, "switch": KwSwitch, "case": KwCase, "default": KwDefault,
	"break": KwBreak, "continue": KwContinue, "return": KwReturn,
	"goto": KwGoto, "sizeof": KwSizeof,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is one lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, IntLit, FloatLit, CharLit, StringLit, Include:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// IsAssignOp reports whether the kind is an assignment operator
// (= += -= *= /= %= &= |= ^= <<= >>=).
func (k Kind) IsAssignOp() bool {
	switch k {
	case Assign, AddAssign, SubAssign, MulAssign, DivAssign, ModAssign,
		AndAssign, OrAssign, XorAssign, ShlAssign, ShrAssign:
		return true
	}
	return false
}

// IsTypeKeyword reports whether the kind can begin a type specifier.
func (k Kind) IsTypeKeyword() bool {
	switch k {
	case KwInt, KwLong, KwShort, KwChar, KwFloat, KwDouble, KwVoid,
		KwUnsigned, KwSigned, KwStruct, KwUnion, KwEnum, KwConst,
		KwVolatile:
		return true
	}
	return false
}
