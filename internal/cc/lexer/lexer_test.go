package lexer

import (
	"strings"
	"testing"

	"hsmcc/internal/cc/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	var out []token.Kind
	for _, tk := range toks {
		if tk.Kind == token.EOF {
			break
		}
		out = append(out, tk.Kind)
	}
	return out
}

func equalKinds(a, b []token.Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPunctuationAndOperators(t *testing.T) {
	got := kinds(t, "a += b << 2 >= c && d->e ... ;")
	want := []token.Kind{
		token.Ident, token.AddAssign, token.Ident, token.Shl, token.IntLit,
		token.Ge, token.Ident, token.AndAnd, token.Ident, token.Arrow,
		token.Ident, token.Ellipsis, token.Semi,
	}
	if !equalKinds(got, want) {
		t.Errorf("kinds = %v, want %v", got, want)
	}
}

func TestMaximalMunch(t *testing.T) {
	// ++, --, <<=, >>= must win over their prefixes.
	got := kinds(t, "a++ - --b; x <<= 1; y >>= 2;")
	want := []token.Kind{
		token.Ident, token.PlusPlus, token.Minus, token.MinusMinus, token.Ident, token.Semi,
		token.Ident, token.ShlAssign, token.IntLit, token.Semi,
		token.Ident, token.ShrAssign, token.IntLit, token.Semi,
	}
	if !equalKinds(got, want) {
		t.Errorf("kinds = %v, want %v", got, want)
	}
}

func TestKeywordsVsIdents(t *testing.T) {
	toks, err := Tokenize("int intx for fork while whiled")
	if err != nil {
		t.Fatal(err)
	}
	want := []token.Kind{token.KwInt, token.Ident, token.KwFor, token.Ident, token.KwWhile, token.Ident}
	for i, w := range want {
		if toks[i].Kind != w {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, w)
		}
	}
}

func TestNumericLiterals(t *testing.T) {
	toks, err := Tokenize("0 42 0x1F 3.5 1e3 2.5e-2 0.5")
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []token.Kind{token.IntLit, token.IntLit, token.IntLit,
		token.FloatLit, token.FloatLit, token.FloatLit, token.FloatLit}
	for i, w := range wantKinds {
		if toks[i].Kind != w {
			t.Errorf("token %d (%s) = %v, want %v", i, toks[i].Text, toks[i].Kind, w)
		}
	}
}

func TestCharAndStringEscapes(t *testing.T) {
	toks, err := Tokenize(`'a' '\n' '\\' "hi\tthere\n" "q\"q"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.CharLit || toks[1].Kind != token.CharLit {
		t.Error("char literals not recognised")
	}
	if toks[3].Kind != token.StringLit || !strings.Contains(toks[3].Text, "\t") {
		t.Errorf("string escape not decoded: %q", toks[3].Text)
	}
	if toks[4].Text != `q"q` {
		t.Errorf("escaped quote = %q", toks[4].Text)
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, `
a // line comment ; b
/* block
   comment */ c`)
	want := []token.Kind{token.Ident, token.Ident}
	if !equalKinds(got, want) {
		t.Errorf("kinds = %v, want %v", got, want)
	}
}

func TestIncludeToken(t *testing.T) {
	toks, err := Tokenize("#include <stdio.h>\nint x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.Include {
		t.Fatalf("first token = %v, want Include", toks[0].Kind)
	}
	if !strings.Contains(toks[0].Text, "stdio.h") {
		t.Errorf("include text = %q", toks[0].Text)
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("positions: a at %v, b at %v", toks[0].Pos, toks[1].Pos)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"\"unterminated",
		"'x",
		"/* unterminated",
		"@",
	}
	for _, src := range cases {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		}
	}
}

func TestTokenStringer(t *testing.T) {
	if token.Plus.String() == "" || token.KwDouble.String() == "" {
		t.Error("Kind.String must be populated for all kinds")
	}
	if !token.AddAssign.IsAssignOp() || token.Plus.IsAssignOp() {
		t.Error("IsAssignOp misclassifies")
	}
	if !token.KwInt.IsTypeKeyword() || token.KwIf.IsTypeKeyword() {
		t.Error("IsTypeKeyword misclassifies")
	}
}
