package lexer

import (
	"fmt"
	"strings"

	"hsmcc/internal/cc/token"
)

// Object-like macro support (#define NAME replacement...), the expansion
// of thesis §7.1 ("Pthread code wrapped within macros is inaccessible to
// the parser"). Function-like macros remain out of scope — the thesis
// leaves them to future work for good reason: mapping macro abstractions
// like CreateThread onto the pass pipeline would specialise the parser
// beyond the Pthread specification.
//
// Expansion happens during Tokenize: a #define records its replacement
// token list; subsequent identifier tokens matching a macro name are
// spliced with the replacement, recursively, with self-reference guarded
// the way C preprocessors do (an expanding macro's own name is not
// re-expanded).

// macroTable maps a macro name to its replacement tokens.
type macroTable map[string][]token.Token

// TokenizeWithMacros scans src handling #define directives and expanding
// object-like macros. Tokenize delegates here, so all parsing picks up
// macro support.
func TokenizeWithMacros(src string) ([]token.Token, error) {
	lx := New(src)
	macros := make(macroTable)
	var out []token.Token
	for {
		t, err := lx.nextAllowDefine()
		if err != nil {
			return nil, err
		}
		if t.Kind == token.EOF {
			return out, nil
		}
		if t.Kind == kindDefine {
			name, repl, err := parseDefine(t)
			if err != nil {
				return nil, err
			}
			macros[name] = repl
			continue
		}
		expanded, err := expand(t, macros, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, expanded...)
	}
}

// kindDefine is an internal pseudo-kind for a captured "#define ..." line;
// it never escapes the lexer package.
const kindDefine token.Kind = -1

// nextAllowDefine is Next, but captures #define lines instead of
// rejecting them.
func (lx *Lexer) nextAllowDefine() (token.Token, error) {
	if err := lx.skipSpace(); err != nil {
		return token.Token{}, err
	}
	pos := lx.pos()
	if lx.off < len(lx.src) && lx.peek() == '#' {
		start := lx.off
		for lx.off < len(lx.src) && lx.peek() != '\n' {
			lx.advance()
		}
		line := strings.TrimSpace(lx.src[start:lx.off])
		rest := strings.TrimSpace(strings.TrimPrefix(line, "#"))
		switch {
		case strings.HasPrefix(rest, "include"):
			return token.Token{Kind: token.Include, Text: line, Pos: pos}, nil
		case strings.HasPrefix(rest, "define"):
			return token.Token{Kind: kindDefine, Text: line, Pos: pos}, nil
		default:
			return token.Token{}, lx.errorf(pos,
				"unsupported preprocessor directive %q (only #include and #define are accepted)", line)
		}
	}
	return lx.Next()
}

// parseDefine splits "#define NAME replacement" and lexes the replacement.
func parseDefine(t token.Token) (string, []token.Token, error) {
	body := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(strings.TrimPrefix(t.Text, "#")), "define"))
	if body == "" {
		return "", nil, &Error{Pos: t.Pos, Msg: "empty #define"}
	}
	fields := strings.SplitN(body, " ", 2)
	name := strings.TrimSpace(fields[0])
	if name == "" || !isAlpha(name[0]) {
		return "", nil, &Error{Pos: t.Pos, Msg: fmt.Sprintf("bad macro name %q", name)}
	}
	if strings.Contains(name, "(") {
		return "", nil, &Error{Pos: t.Pos,
			Msg: fmt.Sprintf("function-like macro %q not supported (thesis §7.1 scope)", name)}
	}
	var repl []token.Token
	if len(fields) == 2 {
		toks, err := Tokenize(fields[1])
		if err != nil {
			return "", nil, fmt.Errorf("in #define %s: %w", name, err)
		}
		repl = toks
	}
	return name, repl, nil
}

// expand splices t if it names a macro, recursively; expanding is the set
// of names already being expanded (self-reference guard).
func expand(t token.Token, macros macroTable, expanding map[string]bool) ([]token.Token, error) {
	if t.Kind != token.Ident {
		return []token.Token{t}, nil
	}
	repl, ok := macros[t.Text]
	if !ok || expanding[t.Text] {
		return []token.Token{t}, nil
	}
	if len(expanding) > 64 {
		return nil, fmt.Errorf("%s: macro expansion too deep at %q", t.Pos, t.Text)
	}
	inner := make(map[string]bool, len(expanding)+1)
	for k := range expanding {
		inner[k] = true
	}
	inner[t.Text] = true
	var out []token.Token
	for _, rt := range repl {
		rt.Pos = t.Pos // expansions report the use site
		ex, err := expand(rt, macros, inner)
		if err != nil {
			return nil, err
		}
		out = append(out, ex...)
	}
	return out, nil
}
