package lexer

import (
	"strings"
	"testing"

	"hsmcc/internal/cc/token"
)

func expandKindsText(t *testing.T, src string) []string {
	t.Helper()
	toks, err := TokenizeWithMacros(src)
	if err != nil {
		t.Fatalf("TokenizeWithMacros: %v", err)
	}
	var out []string
	for _, tk := range toks {
		out = append(out, tk.String())
	}
	return out
}

func TestDefineConstant(t *testing.T) {
	toks, err := TokenizeWithMacros("#define N 32\nint a = N;")
	if err != nil {
		t.Fatal(err)
	}
	// int a = 32 ;
	if toks[3].Kind != token.IntLit || toks[3].Text != "32" {
		t.Errorf("N did not expand to 32: %v", toks)
	}
}

func TestDefineExpression(t *testing.T) {
	toks, err := TokenizeWithMacros("#define SIZE (4 * 1024)\nint a = SIZE;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.Kind.String()+":"+tk.Text)
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "4") || !strings.Contains(joined, "1024") {
		t.Errorf("expression macro not expanded: %v", joined)
	}
}

func TestDefineChained(t *testing.T) {
	toks, err := TokenizeWithMacros("#define A B\n#define B 7\nint x = A;")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tk := range toks {
		if tk.Kind == token.IntLit && tk.Text == "7" {
			found = true
		}
	}
	if !found {
		t.Errorf("chained macro did not reach 7: %v", toks)
	}
}

func TestDefineSelfReferenceGuard(t *testing.T) {
	// #define X X must not loop forever.
	toks, err := TokenizeWithMacros("#define X X\nint X;")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[1].Text != "X" {
		t.Errorf("self-referential macro mishandled: %v", toks)
	}
}

func TestDefineMutualRecursionGuard(t *testing.T) {
	if _, err := TokenizeWithMacros("#define A B\n#define B A\nint x = A;"); err != nil {
		t.Fatalf("mutual recursion should terminate via the guard: %v", err)
	}
}

func TestFunctionLikeRejected(t *testing.T) {
	_, err := TokenizeWithMacros("#define MAX(a,b) ((a)>(b)?(a):(b))\nint x;")
	if err == nil || !strings.Contains(err.Error(), "function-like") {
		t.Errorf("err = %v, want function-like rejection", err)
	}
}

func TestOtherDirectivesStillRejected(t *testing.T) {
	if _, err := TokenizeWithMacros("#ifdef FOO\nint x;\n#endif"); err == nil {
		t.Error("#ifdef should be rejected")
	}
}

func TestMacroNotExpandedInStrings(t *testing.T) {
	toks, err := TokenizeWithMacros("#define N 32\nchar *s = \"N\";")
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range toks {
		if tk.Kind == token.StringLit && tk.Text != "N" {
			t.Errorf("macro expanded inside a string: %q", tk.Text)
		}
	}
}

func TestEmptyAndBadDefines(t *testing.T) {
	if _, err := TokenizeWithMacros("#define\nint x;"); err == nil {
		t.Error("empty #define accepted")
	}
	if _, err := TokenizeWithMacros("#define 9lives 1\nint x;"); err == nil {
		t.Error("bad macro name accepted")
	}
}

// TestThesis71Scenario: the exact motivating case — a Pthread program
// parameterised through macros now parses and analyses.
func TestThesis71Scenario(t *testing.T) {
	src := `
#define NTHREADS 4
#define WORKSIZE (NTHREADS * 100)
int data[WORKSIZE];
int main() {
    int i;
    for (i = 0; i < NTHREADS; i++) data[i] = i;
    return data[0];
}`
	texts := expandKindsText(t, src)
	joined := strings.Join(texts, " ")
	if strings.Contains(joined, "NTHREADS") || strings.Contains(joined, "WORKSIZE") {
		t.Errorf("macros survived expansion:\n%s", joined)
	}
}
