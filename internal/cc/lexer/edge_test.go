package lexer

import (
	"strings"
	"testing"

	"hsmcc/internal/cc/token"
)

// Table-driven edge cases hardening the lexer against the odd shapes a
// program generator (or a soak run's minimized reproducer) can feed it.
func TestLexerEdgeCases(t *testing.T) {
	kinds := func(toks []token.Token) []token.Kind {
		var ks []token.Kind
		for _, tk := range toks {
			ks = append(ks, tk.Kind)
		}
		return ks
	}
	tests := []struct {
		name string
		src  string
		want []token.Kind // nil = only check it lexes
		text []string     // optional expected texts
	}{
		{name: "line comment at EOF without newline", src: "x // trailing",
			want: []token.Kind{token.Ident}},
		{name: "block comment at EOF", src: "x /* done */",
			want: []token.Kind{token.Ident}},
		{name: "empty block comment", src: "/**/x",
			want: []token.Kind{token.Ident}},
		{name: "comment only", src: "// nothing else", want: []token.Kind{}},
		{name: "block comment containing stars", src: "/* ** * **/ y",
			want: []token.Kind{token.Ident}},
		{name: "line comment containing block open", src: "a // /* not open\nb",
			want: []token.Kind{token.Ident, token.Ident}},
		{name: "char literal", src: "'a'", want: []token.Kind{token.CharLit}, text: []string{"a"}},
		{name: "escaped newline char", src: `'\n'`, want: []token.Kind{token.CharLit}, text: []string{"\n"}},
		{name: "escaped tab char", src: `'\t'`, want: []token.Kind{token.CharLit}, text: []string{"\t"}},
		{name: "escaped nul char", src: `'\0'`, want: []token.Kind{token.CharLit}, text: []string{"\x00"}},
		{name: "escaped backslash char", src: `'\\'`, want: []token.Kind{token.CharLit}, text: []string{`\`}},
		{name: "escaped quote char", src: `'\''`, want: []token.Kind{token.CharLit}, text: []string{"'"}},
		{name: "string with every escape", src: `"a\n\t\r\0\\\"b"`,
			want: []token.Kind{token.StringLit}, text: []string{"a\n\t\r\x00\\\"b"}},
		{name: "adjacent operators no space", src: "a+++b", // maximal munch: a ++ + b
			want: []token.Kind{token.Ident, token.PlusPlus, token.Plus, token.Ident}},
		{name: "float forms", src: "1.5 .5 2. 1e3 1.5e-2 1E+4",
			want: []token.Kind{token.FloatLit, token.FloatLit, token.FloatLit, token.FloatLit, token.FloatLit, token.FloatLit}},
		{name: "int suffixes", src: "1L 2u 3UL",
			want: []token.Kind{token.IntLit, token.IntLit, token.IntLit}},
		{name: "hex literal", src: "0x1F", want: []token.Kind{token.IntLit}, text: []string{"0x1F"}},
		{name: "ellipsis vs dots", src: "...", want: []token.Kind{token.Ellipsis}},
		{name: "shift assigns", src: "a <<= b >>= c",
			want: []token.Kind{token.Ident, token.ShlAssign, token.Ident, token.ShrAssign, token.Ident}},
		{name: "deeply nested parens", src: strings.Repeat("(", 64) + "x" + strings.Repeat(")", 64)},
		{name: "include with angle path", src: "#include <stdio.h>\nint",
			want: []token.Kind{token.Include, token.KwInt}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			toks, err := Tokenize(tc.src)
			if err != nil {
				t.Fatalf("Tokenize(%q): %v", tc.src, err)
			}
			if tc.want != nil {
				got := kinds(toks)
				if len(got) != len(tc.want) {
					t.Fatalf("got %v want %v", got, tc.want)
				}
				for i := range got {
					if got[i] != tc.want[i] {
						t.Fatalf("token %d: got %v want %v (all: %v)", i, got[i], tc.want[i], got)
					}
				}
			}
			for i, want := range tc.text {
				if toks[i].Text != want {
					t.Fatalf("token %d text: got %q want %q", i, toks[i].Text, want)
				}
			}
		})
	}
}

// TestLexerErrors pins the rejection paths: the generator must never be
// able to emit these, and the lexer must flag rather than mis-lex them.
func TestLexerErrors(t *testing.T) {
	for _, src := range []string{
		"/* unterminated",
		"\"unterminated",
		"\"newline\nin string\"",
		"'",
		"'ab'",
		`'\q'`,
		`"\q"`,
		"123abc",
		"#define X 1", // only #include is a lexer-level directive
		"@",
	} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) succeeded, want error", src)
		}
	}
}
