// Package lexer turns C source text into a token stream for the hsmcc
// parser. It handles //- and /* */-comments, #include lines (captured as
// single tokens so the printer can re-emit them), and all literal forms the
// benchmark programs use. Object-like #define macros are expanded by
// TokenizeWithMacros (implementing the thesis's §7.1 future-work item);
// function-like macros and conditional compilation remain out of scope.
package lexer

import (
	"fmt"
	"strings"

	"hsmcc/internal/cc/token"
)

// Error is a lexical error carrying a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans a source buffer. Create one with New and call Next until EOF.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	err  *Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans all of src and returns the tokens (excluding EOF).
func Tokenize(src string) ([]token.Token, error) {
	lx := New(src)
	var toks []token.Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == token.EOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

func (lx *Lexer) pos() token.Pos { return token.Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) errorf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }
func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

// skipSpace consumes whitespace and comments. It returns an error for an
// unterminated block comment.
func (lx *Lexer) skipSpace() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case isSpace(c):
			lx.advance()
		case c == '/' && lx.peekAt(1) == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekAt(1) == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return lx.errorf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token, or a token with Kind EOF at end of input.
func (lx *Lexer) Next() (token.Token, error) {
	if err := lx.skipSpace(); err != nil {
		return token.Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return token.Token{Kind: token.EOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case c == '#':
		return lx.scanDirective(pos)
	case isAlpha(c):
		return lx.scanIdent(pos), nil
	case isDigit(c) || (c == '.' && isDigit(lx.peekAt(1))):
		return lx.scanNumber(pos)
	case c == '"':
		return lx.scanString(pos)
	case c == '\'':
		return lx.scanChar(pos)
	default:
		return lx.scanOperator(pos)
	}
}

// scanDirective captures "#include ..." as a single token and rejects any
// other preprocessor directive.
func (lx *Lexer) scanDirective(pos token.Pos) (token.Token, error) {
	start := lx.off
	for lx.off < len(lx.src) && lx.peek() != '\n' {
		lx.advance()
	}
	line := strings.TrimSpace(lx.src[start:lx.off])
	rest := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	if strings.HasPrefix(rest, "include") {
		return token.Token{Kind: token.Include, Text: line, Pos: pos}, nil
	}
	return token.Token{}, lx.errorf(pos, "unsupported preprocessor directive %q (only #include is accepted)", line)
}

func (lx *Lexer) scanIdent(pos token.Pos) token.Token {
	start := lx.off
	for lx.off < len(lx.src) && isAlnum(lx.peek()) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if kw, ok := token.Keywords[text]; ok {
		return token.Token{Kind: kw, Text: text, Pos: pos}
	}
	return token.Token{Kind: token.Ident, Text: text, Pos: pos}
}

func (lx *Lexer) scanNumber(pos token.Pos) (token.Token, error) {
	start := lx.off
	isFloat := false
	if lx.peek() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && isHexDigit(lx.peek()) {
			lx.advance()
		}
	} else {
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		if lx.peek() == '.' {
			isFloat = true
			lx.advance()
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		if lx.peek() == 'e' || lx.peek() == 'E' {
			next := lx.peekAt(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(lx.peekAt(2))) {
				isFloat = true
				lx.advance()
				if lx.peek() == '+' || lx.peek() == '-' {
					lx.advance()
				}
				for lx.off < len(lx.src) && isDigit(lx.peek()) {
					lx.advance()
				}
			}
		}
	}
	// Integer / float suffixes: L, U, UL, f, F.
	for lx.off < len(lx.src) {
		switch lx.peek() {
		case 'l', 'L', 'u', 'U':
			lx.advance()
			continue
		case 'f', 'F':
			isFloat = true
			lx.advance()
			continue
		}
		break
	}
	text := lx.src[start:lx.off]
	if isAlpha(lx.peek()) {
		return token.Token{}, lx.errorf(pos, "malformed number %q", text+string(lx.peek()))
	}
	kind := token.IntLit
	if isFloat {
		kind = token.FloatLit
	}
	return token.Token{Kind: kind, Text: text, Pos: pos}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (lx *Lexer) scanString(pos token.Pos) (token.Token, error) {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) || lx.peek() == '\n' {
			return token.Token{}, lx.errorf(pos, "unterminated string literal")
		}
		c := lx.advance()
		if c == '"' {
			return token.Token{Kind: token.StringLit, Text: sb.String(), Pos: pos}, nil
		}
		if c == '\\' {
			if lx.off >= len(lx.src) {
				return token.Token{}, lx.errorf(pos, "unterminated string literal")
			}
			e, err := lx.escape(pos)
			if err != nil {
				return token.Token{}, err
			}
			sb.WriteByte(e)
			continue
		}
		sb.WriteByte(c)
	}
}

func (lx *Lexer) scanChar(pos token.Pos) (token.Token, error) {
	lx.advance() // opening quote
	if lx.off >= len(lx.src) {
		return token.Token{}, lx.errorf(pos, "unterminated char literal")
	}
	var val byte
	c := lx.advance()
	if c == '\\' {
		e, err := lx.escape(pos)
		if err != nil {
			return token.Token{}, err
		}
		val = e
	} else {
		val = c
	}
	if lx.off >= len(lx.src) || lx.advance() != '\'' {
		return token.Token{}, lx.errorf(pos, "unterminated char literal")
	}
	return token.Token{Kind: token.CharLit, Text: string(val), Pos: pos}, nil
}

func (lx *Lexer) escape(pos token.Pos) (byte, error) {
	c := lx.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	default:
		return 0, lx.errorf(pos, "unsupported escape sequence \\%c", c)
	}
}

// scanOperator scans punctuation, longest match first.
func (lx *Lexer) scanOperator(pos token.Pos) (token.Token, error) {
	three := ""
	if lx.off+3 <= len(lx.src) {
		three = lx.src[lx.off : lx.off+3]
	}
	switch three {
	case "...":
		lx.advance()
		lx.advance()
		lx.advance()
		return token.Token{Kind: token.Ellipsis, Text: three, Pos: pos}, nil
	case "<<=":
		lx.advance()
		lx.advance()
		lx.advance()
		return token.Token{Kind: token.ShlAssign, Text: three, Pos: pos}, nil
	case ">>=":
		lx.advance()
		lx.advance()
		lx.advance()
		return token.Token{Kind: token.ShrAssign, Text: three, Pos: pos}, nil
	}
	two := ""
	if lx.off+2 <= len(lx.src) {
		two = lx.src[lx.off : lx.off+2]
	}
	twoKinds := map[string]token.Kind{
		"->": token.Arrow, "++": token.PlusPlus, "--": token.MinusMinus,
		"+=": token.AddAssign, "-=": token.SubAssign, "*=": token.MulAssign,
		"/=": token.DivAssign, "%=": token.ModAssign, "&=": token.AndAssign,
		"|=": token.OrAssign, "^=": token.XorAssign, "<<": token.Shl,
		">>": token.Shr, "<=": token.Le, ">=": token.Ge, "==": token.EqEq,
		"!=": token.NotEq, "&&": token.AndAnd, "||": token.OrOr,
	}
	if k, ok := twoKinds[two]; ok {
		lx.advance()
		lx.advance()
		return token.Token{Kind: k, Text: two, Pos: pos}, nil
	}
	oneKinds := map[byte]token.Kind{
		'(': token.LParen, ')': token.RParen, '{': token.LBrace,
		'}': token.RBrace, '[': token.LBracket, ']': token.RBracket,
		';': token.Semi, ',': token.Comma, '.': token.Dot,
		'=': token.Assign, '+': token.Plus, '-': token.Minus,
		'*': token.Star, '/': token.Slash, '%': token.Percent,
		'&': token.Amp, '|': token.Pipe, '^': token.Caret,
		'~': token.Tilde, '!': token.Bang, '<': token.Lt, '>': token.Gt,
		'?': token.Quest, ':': token.Colon,
	}
	c := lx.peek()
	if k, ok := oneKinds[c]; ok {
		lx.advance()
		return token.Token{Kind: k, Text: string(c), Pos: pos}, nil
	}
	return token.Token{}, lx.errorf(pos, "unexpected character %q", string(c))
}
