// Package types models the C type system of the hsmcc frontend with the
// ILP32 layout of the SCC's P54C Pentium cores: int/long/pointer are 4
// bytes, double is 8, natural alignment throughout. Sizes feed the paper's
// Stage 4 partitioner ("mem size is a combination of the Size and Type
// properties", Algorithm 3) and the interpreter's address computation.
package types

import (
	"fmt"
	"strings"
)

// Kind discriminates the type representations.
type Kind int

// Type kinds.
const (
	Void Kind = iota
	Char
	Short
	Int
	Long
	UInt // unsigned int / unsigned long (same width on ILP32)
	Float
	Double
	Pointer
	Array
	Func
	Struct
	// Opaque covers runtime handle types the translator knows by name
	// (pthread_t, pthread_mutex_t, pthread_attr_t, RCCE_COMM). They occupy
	// a word of storage and are removed or rewritten during translation.
	Opaque
)

// Type is an immutable C type. Compare with Equal, not ==, except for
// cached basic types which are canonical.
type Type struct {
	Kind Kind
	// Elem is the pointee for Pointer, the element for Array, the result
	// for Func.
	Elem *Type
	// Len is the element count for Array; -1 for an incomplete array.
	Len int
	// Params are parameter types for Func.
	Params []*Type
	// Variadic marks a Func with a trailing "...".
	Variadic bool
	// Name records the source spelling for Opaque and Struct types.
	Name string
	// Fields are the members of a Struct in declaration order.
	Fields []Field

	// structSize and structAlign cache the layout computed by StructOf.
	structSize  int
	structAlign int
}

// Field is one struct member.
type Field struct {
	Name   string
	Type   *Type
	Offset int
}

// Canonical basic types. These are shared; never mutate them.
var (
	VoidType   = &Type{Kind: Void}
	CharType   = &Type{Kind: Char}
	ShortType  = &Type{Kind: Short}
	IntType    = &Type{Kind: Int}
	LongType   = &Type{Kind: Long}
	UIntType   = &Type{Kind: UInt}
	FloatType  = &Type{Kind: Float}
	DoubleType = &Type{Kind: Double}
)

// PointerTo returns a pointer type to elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: Pointer, Elem: elem} }

// ArrayOf returns an array type of n elems (n == -1 for incomplete).
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: Array, Elem: elem, Len: n} }

// FuncOf returns a function type.
func FuncOf(result *Type, params []*Type, variadic bool) *Type {
	return &Type{Kind: Func, Elem: result, Params: params, Variadic: variadic}
}

// OpaqueOf returns an opaque named handle type (one word of storage).
func OpaqueOf(name string) *Type { return &Type{Kind: Opaque, Name: name} }

// StructOf builds a struct type, laying out fields with natural alignment.
func StructOf(name string, fields []Field) *Type {
	t := &Type{Kind: Struct, Name: name}
	off := 0
	maxAlign := 1
	for _, f := range fields {
		a := f.Type.Align()
		if a > maxAlign {
			maxAlign = a
		}
		off = roundUp(off, a)
		f.Offset = off
		off += f.Type.Size()
		t.Fields = append(t.Fields, f)
	}
	t.structSize = roundUp(off, maxAlign)
	t.structAlign = maxAlign
	return t
}

func roundUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// Size returns the storage size in bytes under the ILP32 model.
// Incomplete arrays report the size of one element slot times zero.
func (t *Type) Size() int {
	switch t.Kind {
	case Void:
		return 0
	case Char:
		return 1
	case Short:
		return 2
	case Int, UInt, Long, Float, Pointer, Opaque:
		return 4
	case Double:
		return 8
	case Array:
		if t.Len < 0 {
			return 0
		}
		return t.Len * t.Elem.Size()
	case Struct:
		return t.structSize
	case Func:
		return 0
	}
	return 0
}

// Align returns the natural alignment in bytes.
func (t *Type) Align() int {
	switch t.Kind {
	case Char:
		return 1
	case Short:
		return 2
	case Double:
		return 8
	case Array:
		return t.Elem.Align()
	case Struct:
		if t.structAlign == 0 {
			return 1
		}
		return t.structAlign
	case Void, Func:
		return 1
	default:
		return 4
	}
}

// IsInteger reports whether t is an integral type (including char/opaque
// handles which are word-sized integers at runtime).
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case Char, Short, Int, Long, UInt, Opaque:
		return true
	}
	return false
}

// IsFloat reports whether t is float or double.
func (t *Type) IsFloat() bool { return t.Kind == Float || t.Kind == Double }

// IsArithmetic reports whether t is integer or floating.
func (t *Type) IsArithmetic() bool { return t.IsInteger() || t.IsFloat() }

// IsPointerLike reports whether t is a pointer or array (decays to pointer).
func (t *Type) IsPointerLike() bool { return t.Kind == Pointer || t.Kind == Array }

// Decay returns the pointer type an array decays to, or t unchanged.
func (t *Type) Decay() *Type {
	if t.Kind == Array {
		return PointerTo(t.Elem)
	}
	return t
}

// Field returns the struct field named name and true, or false.
func (t *Type) Field(name string) (Field, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Equal reports structural type equality.
func Equal(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Pointer:
		return Equal(a.Elem, b.Elem)
	case Array:
		return a.Len == b.Len && Equal(a.Elem, b.Elem)
	case Func:
		if !Equal(a.Elem, b.Elem) || len(a.Params) != len(b.Params) || a.Variadic != b.Variadic {
			return false
		}
		for i := range a.Params {
			if !Equal(a.Params[i], b.Params[i]) {
				return false
			}
		}
		return true
	case Opaque, Struct:
		return a.Name == b.Name
	default:
		return true
	}
}

// String renders the type in C-ish syntax, e.g. "int*", "double[64]".
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Void:
		return "void"
	case Char:
		return "char"
	case Short:
		return "short"
	case Int:
		return "int"
	case Long:
		return "long"
	case UInt:
		return "unsigned int"
	case Float:
		return "float"
	case Double:
		return "double"
	case Pointer:
		return t.Elem.String() + "*"
	case Array:
		// C syntax writes the outermost dimension first: int[2][3] is an
		// array of 2 arrays of 3 ints.
		dims := ""
		base := t
		for base.Kind == Array {
			if base.Len < 0 {
				dims += "[]"
			} else {
				dims += fmt.Sprintf("[%d]", base.Len)
			}
			base = base.Elem
		}
		return base.String() + dims
	case Func:
		var ps []string
		for _, p := range t.Params {
			ps = append(ps, p.String())
		}
		if t.Variadic {
			ps = append(ps, "...")
		}
		return fmt.Sprintf("%s(%s)", t.Elem, strings.Join(ps, ", "))
	case Struct:
		return "struct " + t.Name
	case Opaque:
		return t.Name
	}
	return "<?>"
}

// Common arithmetic conversion: the usual C promotion between two
// arithmetic operands.
func Common(a, b *Type) *Type {
	if a.Kind == Double || b.Kind == Double {
		return DoubleType
	}
	if a.Kind == Float || b.Kind == Float {
		return FloatType
	}
	if a.Kind == UInt || b.Kind == UInt {
		return UIntType
	}
	if a.Kind == Long || b.Kind == Long {
		return LongType
	}
	return IntType
}
