package types

import (
	"testing"
	"testing/quick"
)

// TestILP32Sizes pins the target ABI: the SCC's P54C cores are 32-bit.
func TestILP32Sizes(t *testing.T) {
	cases := []struct {
		t    *Type
		size int
	}{
		{CharType, 1},
		{ShortType, 2},
		{IntType, 4},
		{LongType, 4},
		{UIntType, 4},
		{FloatType, 4},
		{DoubleType, 8},
		{PointerTo(DoubleType), 4},
		{ArrayOf(IntType, 10), 40},
		{ArrayOf(DoubleType, 3), 24},
		{OpaqueOf("pthread_t"), 4},
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.size {
			t.Errorf("Size(%s) = %d, want %d", c.t, got, c.size)
		}
	}
}

func TestAlignment(t *testing.T) {
	if DoubleType.Align() != 8 || IntType.Align() != 4 || CharType.Align() != 1 {
		t.Errorf("alignments: double %d int %d char %d",
			DoubleType.Align(), IntType.Align(), CharType.Align())
	}
	if ArrayOf(DoubleType, 4).Align() != 8 {
		t.Error("array alignment must follow the element")
	}
}

func TestStructLayout(t *testing.T) {
	s := StructOf("point", []Field{
		{Name: "c", Type: CharType},
		{Name: "d", Type: DoubleType},
		{Name: "i", Type: IntType},
	})
	// char at 0, 7 bytes padding, double at 8, int at 16, pad to 24.
	fd, ok := s.Field("d")
	if !ok || fd.Offset != 8 {
		t.Errorf("d offset = %d, want 8", fd.Offset)
	}
	fi, _ := s.Field("i")
	if fi.Offset != 16 {
		t.Errorf("i offset = %d, want 16", fi.Offset)
	}
	if s.Size() != 24 {
		t.Errorf("struct size = %d, want 24", s.Size())
	}
	if _, ok := s.Field("nope"); ok {
		t.Error("missing field reported present")
	}
}

func TestPredicates(t *testing.T) {
	if !IntType.IsInteger() || DoubleType.IsInteger() {
		t.Error("IsInteger misclassifies")
	}
	if !FloatType.IsFloat() || IntType.IsFloat() {
		t.Error("IsFloat misclassifies")
	}
	if !IntType.IsArithmetic() || !DoubleType.IsArithmetic() || PointerTo(IntType).IsArithmetic() {
		t.Error("IsArithmetic misclassifies")
	}
	if !PointerTo(IntType).IsPointerLike() || !ArrayOf(IntType, 2).IsPointerLike() || IntType.IsPointerLike() {
		t.Error("IsPointerLike misclassifies")
	}
}

func TestDecay(t *testing.T) {
	arr := ArrayOf(IntType, 5)
	d := arr.Decay()
	if d.Kind != Pointer || d.Elem != IntType {
		t.Errorf("array decays to %s", d)
	}
	p := PointerTo(IntType)
	if p.Decay() != p {
		t.Error("pointer decay must be identity")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(PointerTo(IntType), PointerTo(IntType)) {
		t.Error("equal pointers differ")
	}
	if Equal(PointerTo(IntType), PointerTo(DoubleType)) {
		t.Error("different pointees equal")
	}
	if !Equal(ArrayOf(IntType, 3), ArrayOf(IntType, 3)) || Equal(ArrayOf(IntType, 3), ArrayOf(IntType, 4)) {
		t.Error("array equality wrong")
	}
	if !Equal(nil, nil) || Equal(nil, IntType) {
		t.Error("nil handling wrong")
	}
}

func TestCommonType(t *testing.T) {
	cases := []struct{ a, b, want *Type }{
		{IntType, IntType, IntType},
		{IntType, DoubleType, DoubleType},
		{FloatType, IntType, FloatType},
		{CharType, IntType, IntType},
		{FloatType, DoubleType, DoubleType},
	}
	for _, c := range cases {
		if got := Common(c.a, c.b); got.Kind != c.want.Kind {
			t.Errorf("Common(%s,%s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		t    *Type
		want string
	}{
		{IntType, "int"},
		{PointerTo(IntType), "int*"},
		{PointerTo(PointerTo(CharType)), "char**"},
		{OpaqueOf("pthread_t"), "pthread_t"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

// TestSizeAlignInvariants: for every constructible type, size is a
// positive multiple of alignment (property test).
func TestSizeAlignInvariants(t *testing.T) {
	basics := []*Type{CharType, ShortType, IntType, LongType, UIntType, FloatType, DoubleType}
	f := func(base uint8, arrayLen uint8, wrapPtr bool) bool {
		ty := basics[int(base)%len(basics)]
		if n := int(arrayLen%16) + 1; !wrapPtr {
			ty = ArrayOf(ty, n)
		} else {
			ty = PointerTo(ty)
		}
		size, align := ty.Size(), ty.Align()
		return size > 0 && align > 0 && size%align == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEqualReflexiveSymmetric: property test over random type shapes.
func TestEqualReflexiveSymmetric(t *testing.T) {
	basics := []*Type{CharType, IntType, DoubleType}
	build := func(seed uint16) *Type {
		ty := basics[int(seed)%len(basics)]
		for s := seed / 4; s > 0; s /= 4 {
			switch s % 3 {
			case 0:
				ty = PointerTo(ty)
			case 1:
				ty = ArrayOf(ty, int(s%5)+1)
			case 2:
				ty = FuncOf(ty, []*Type{IntType}, false)
			}
		}
		return ty
	}
	f := func(a, b uint16) bool {
		ta, tb := build(a), build(b)
		if !Equal(ta, ta) || !Equal(tb, tb) {
			return false
		}
		return Equal(ta, tb) == Equal(tb, ta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
