package parser_test

import (
	"strings"
	"testing"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/parser"
	"hsmcc/internal/cc/printer"
)

// Table-driven parser edge cases: the statement and expression shapes a
// program generator can legitimately produce, each checked to parse AND
// to survive the print→reparse round trip (so the conformance engine's
// re-parse path can never be the component that chokes on them).
func TestParserEdgeCases(t *testing.T) {
	tests := []struct {
		name string
		body string // wrapped in int main() { ... }
	}{
		{"for with empty init", "int i; for (; i < 3; i++) { i = i; }"},
		{"for with empty cond", "int i; for (i = 0; ; i++) { break; }"},
		{"for with empty post", "int i; for (i = 0; i < 3; ) { i++; }"},
		{"for with all empty", "for (;;) { break; }"},
		{"for single stmt body", "int i; for (i = 0; i < 3; i++) i = i + 1;"},
		{"for empty stmt body", "int i; for (i = 0; i < 3; i++) ;"},
		{"for with decl init", "for (int i = 0; i < 3; i++) { break; }"},
		{"nested parens expr", "int x; x = ((((1)) + ((2))));"},
		{"deeply nested parens", "int x; x = " + strings.Repeat("(", 40) + "7" + strings.Repeat(")", 40) + ";"},
		{"parens around lvalue", "int x; (x) = 1;"},
		{"dangling else binds inner", "int a; if (a) if (a) a = 1; else a = 2;"},
		{"empty block", "{ }"},
		{"nested empty blocks", "{ { { ; } } }"},
		{"lone semicolons", ";;;"},
		{"while single stmt", "int i; while (i < 3) i++;"},
		{"do while", "int i; do i++; while (i < 3);"},
		{"switch with default only", "int a; switch (a) { default: a = 1; }"},
		{"switch fallthrough cases", "int a; switch (a) { case 1: case 2: a = 3; break; default: break; }"},
		{"char literal stmt", "char c; c = 'x'; c = '\\n'; c = '\\\\'; c = '\\'';"},
		{"char compare", "char c; if (c == '\\t') c = ' ';"},
		{"comma expr", "int a; int b; a = (1, 2); b = a;"},
		{"conditional expr", "int a; a = a ? 1 : 2;"},
		{"conditional nested", "int a; a = a ? a ? 1 : 2 : 3;"},
		{"unary chains", "int a; a = - -a; a = !!a; a = ~~a;"}, // `- -a` must not print as `--a`
		{"prefix and postfix mix", "int a; int b; b = ++a + a++;"},
		{"sizeof forms", "int a; a = sizeof(int); a = sizeof(double); a = sizeof a;"},
		{"casts", "int a; double d; a = (int)d; d = (double)a; d = (double)(a + 1);"},
		{"compound assigns", "int a; a += 1; a -= 2; a *= 3; a /= 4; a %= 5;"},
		{"bit ops", "int a; a = a << 2 | a >> 1 & 3 ^ 5;"},
		{"multi declarator line", "int a, b, c; a = b + c;"},
		{"decl with init list", "int xs[3]; xs[0] = 1;"},
		{"string with escapes", `printf("a\tb\n\"q\"\n");`},
		{"hex and suffix literals", "int a; a = 0x1F; a = 7;"},
		{"negative literal fold", "int a; a = -1; a = - 1;"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			src := "int main()\n{\n" + tc.body + "\n}\n"
			first, err := parser.Parse("edge.c", src)
			if err != nil {
				t.Fatalf("parse: %v\n%s", err, src)
			}
			printed := printer.Print(first)
			second, err := parser.Parse("edge2.c", printed)
			if err != nil {
				t.Fatalf("printed source does not re-parse: %v\n%s", err, printed)
			}
			if !ast.Equal(first, second) {
				t.Fatalf("round trip is not structurally equal\n--- input\n%s--- printed\n%s", src, printed)
			}
		})
	}
}

// TestParserEdgeCasesTopLevel covers declaration-level shapes plus
// trailing-comment termination at file scope.
func TestParserEdgeCasesTopLevel(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"comment at EOF no newline", "int x;\n// trailing comment"},
		{"block comment at EOF", "int x;\n/* trailing */"},
		{"only comments after include", "#include <stdio.h>\n/* nothing else */\n"},
		{"prototype then definition", "void f(int a);\nvoid f(int a)\n{\n}\n"},
		{"pointer params", "void f(int *p, double **q)\n{\n}\n"},
		{"array of pointers", "int *ps[4];\n"},
		{"static and extern", "static int s;\nextern int e;\n"},
		{"typedef use", "typedef int myint;\nmyint v;\n"},
		{"global with init", "int a = 3;\ndouble d = 1.5;\n"},
		{"global init list", "int xs[3] = {1, 2, 3};\n"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			first, err := parser.Parse("top.c", tc.src)
			if err != nil {
				t.Fatalf("parse: %v\n%s", err, tc.src)
			}
			printed := printer.Print(first)
			if _, err := parser.Parse("top2.c", printed); err != nil {
				t.Fatalf("printed source does not re-parse: %v\n%s", err, printed)
			}
		})
	}
}

// TestParserRejects pins error paths for malformed input a mutated or
// truncated kernel could contain.
func TestParserRejects(t *testing.T) {
	for _, src := range []string{
		"int main() {",            // unterminated block
		"int main() { return 1 }", // missing semicolon
		"int main() { (1 + ; }",   // broken expr
		"int main() { if }",       // missing condition
		"int main() { for (;;) }", // missing body
		"int main() { a b; }",     // two idents
		"int main() { case 1:; }", // case outside switch
		"int 1x;",                 // bad declarator
	} {
		if _, err := parser.Parse("bad.c", src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}
