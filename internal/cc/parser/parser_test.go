package parser_test

import (
	"os"
	"strings"
	"testing"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/parser"
	"hsmcc/internal/cc/printer"
	"hsmcc/internal/cc/sema"
	"hsmcc/internal/cc/types"
)

func mustParse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestParseExample41(t *testing.T) {
	src, err := os.ReadFile("../../../testdata/example41.c")
	if err != nil {
		t.Fatal(err)
	}
	f := mustParse(t, string(src))
	if got := len(f.Globals()); got != 3 {
		t.Errorf("globals = %d, want 3", got)
	}
	fns := f.Funcs()
	if len(fns) != 2 || fns[0].Name != "tf" || fns[1].Name != "main" {
		t.Errorf("funcs = %v, want [tf main]", fns)
	}
	if _, err := sema.Analyze(f); err != nil {
		t.Fatalf("sema: %v", err)
	}
}

func TestGlobalDecls(t *testing.T) {
	f := mustParse(t, `
int a;
int b = 5;
double d = 2.5;
int arr[4] = {1, 2, 3, 4};
int *p;
int **pp;
double m[2][3];
`)
	gs := f.Globals()
	if len(gs) != 7 {
		t.Fatalf("got %d globals, want 7", len(gs))
	}
	cases := []struct {
		name string
		typ  string
		size int
	}{
		{"a", "int", 4}, {"b", "int", 4}, {"d", "double", 8},
		{"arr", "int[4]", 16}, {"p", "int*", 4}, {"pp", "int**", 4},
		{"m", "double[2][3]", 48},
	}
	for i, c := range cases {
		if gs[i].Name != c.name {
			t.Errorf("decl %d name = %q, want %q", i, gs[i].Name, c.name)
		}
		if got := gs[i].Type.String(); got != c.typ {
			t.Errorf("%s type = %q, want %q", c.name, got, c.typ)
		}
		if got := gs[i].Type.Size(); got != c.size {
			t.Errorf("%s size = %d, want %d", c.name, got, c.size)
		}
	}
}

func TestMultiDeclaratorSplit(t *testing.T) {
	f := mustParse(t, "int a, *b, c[2];\n")
	gs := f.Globals()
	if len(gs) != 3 {
		t.Fatalf("got %d globals, want 3", len(gs))
	}
	if gs[1].Type.Kind != types.Pointer {
		t.Errorf("b should be pointer, got %s", gs[1].Type)
	}
	if gs[2].Type.Kind != types.Array || gs[2].Type.Len != 2 {
		t.Errorf("c should be int[2], got %s", gs[2].Type)
	}
}

func TestExpressionPrecedence(t *testing.T) {
	cases := []struct{ in, out string }{
		{"a + b * c", "a + b * c"},
		{"(a + b) * c", "(a + b) * c"},
		{"a = b = c", "a = b = c"},
		{"a < b && c > d || e", "a < b && c > d || e"},
		{"-a * b", "-a * b"},
		{"*p++", "*p++"},
		{"a[i] += 2", "a[i] += 2"},
		{"x ? y : z", "x ? y : z"},
		{"a % b == 0", "a % b == 0"},
		{"f(a, b + 1, c)", "f(a, b + 1, c)"},
		{"a << 2 | b >> 1", "a << 2 | b >> 1"},
		{"~a ^ b & c", "~a ^ b & c"},
		{"sizeof(int)", "sizeof(int)"},
		{"(double)n / d", "(double)n / d"},
	}
	for _, c := range cases {
		src := "void f(int a, int b, int c, int d, int e, int i, int n, int x, int y, int z) { int *p; double dd; " + c.in + "; }"
		f := mustParse(t, src)
		fn := f.Funcs()[0]
		last := fn.Body.List[len(fn.Body.List)-1]
		es, ok := last.(*ast.ExprStmt)
		if !ok {
			t.Fatalf("%q: last stmt is %T", c.in, last)
		}
		if got := printer.ExprString(es.X); got != c.out {
			t.Errorf("%q printed as %q, want %q", c.in, got, c.out)
		}
	}
}

func TestControlFlowStatements(t *testing.T) {
	src := `
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0) s += i;
        else s -= i;
    }
    while (s > 100) { s /= 2; }
    do { s++; } while (s < 0);
    switch (s) {
    case 0:
        s = 1;
        break;
    case 1:
    case 2:
        s = 2;
        break;
    default:
        s = 3;
    }
    return s;
}
`
	f := mustParse(t, src)
	if _, err := sema.Analyze(f); err != nil {
		t.Fatalf("sema: %v", err)
	}
	out := printer.Print(f)
	for _, want := range []string{"for (int i = 0; i < n; i++)", "while (s > 100)", "do", "switch (s) {", "case 2:", "default:"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q:\n%s", want, out)
		}
	}
}

func TestRoundTripStability(t *testing.T) {
	// print(parse(print(parse(src)))) must equal print(parse(src)).
	src, err := os.ReadFile("../../../testdata/example41.c")
	if err != nil {
		t.Fatal(err)
	}
	f1 := mustParse(t, string(src))
	p1 := printer.Print(f1)
	f2 := mustParse(t, p1)
	p2 := printer.Print(f2)
	if p1 != p2 {
		t.Errorf("round trip unstable:\n--- first ---\n%s\n--- second ---\n%s", p1, p2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int a = ;",
		"int f( {}",
		"#ifdef X\nint a;\n#endif", // conditional compilation is out of scope
		"int a; }",
		"void f() { if (x) }",
		"void f() { a b; }",
	}
	for _, src := range cases {
		if _, err := parser.Parse("bad.c", src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"void f() { x = 1; }", "undeclared"},
		{"void f() { g(); }", "undefined function"},
		{"int a; int a;", "redeclaration"},
		{"void f() { int x; int x; }", "redeclaration"},
	}
	for _, c := range cases {
		f := mustParse(t, c.src)
		_, err := sema.Analyze(f)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestTypedefAndOpaque(t *testing.T) {
	f := mustParse(t, `
typedef int myint;
myint x = 3;
pthread_t tid;
pthread_mutex_t lock;
`)
	gs := f.Globals()
	if gs[0].Type.Kind != types.Int {
		t.Errorf("myint should resolve to int, got %s", gs[0].Type)
	}
	if gs[1].Type.Kind != types.Opaque || gs[1].Type.Name != "pthread_t" {
		t.Errorf("tid type = %s, want pthread_t", gs[1].Type)
	}
}

func TestStructParsing(t *testing.T) {
	f := mustParse(t, `
struct point { int x; int y; double w; };
struct point origin;
void f() {
    struct point p;
    p.x = 1;
    p.y = 2;
    p.w = 3.5;
}
`)
	if _, err := sema.Analyze(f); err != nil {
		t.Fatalf("sema: %v", err)
	}
	g := f.Globals()[0]
	if g.Type.Kind != types.Struct {
		t.Fatalf("origin type = %s", g.Type)
	}
	if g.Type.Size() != 16 { // x@0, y@4, w@8 (8-aligned), total 16
		t.Errorf("struct size = %d, want 16", g.Type.Size())
	}
}

func TestCommentsAndLiterals(t *testing.T) {
	f := mustParse(t, `
// line comment
/* block
   comment */
int a = 0x1F;
double b = 1.5e3;
double c = 2.5f;
char d = '\n';
char *s = "hi\tthere";
long big = 100000L;
`)
	gs := f.Globals()
	if lit, ok := gs[0].Init.(*ast.IntLit); !ok || lit.Value != 31 {
		t.Errorf("hex literal = %v", gs[0].Init)
	}
	if lit, ok := gs[1].Init.(*ast.FloatLit); !ok || lit.Value != 1500 {
		t.Errorf("exp literal = %v", gs[1].Init)
	}
}
