// Package parser implements a recursive-descent parser for the C subset of
// the hsmcc frontend, producing the ast.File IR that the paper's five-stage
// framework analyses and transforms.
//
// The grammar covers: #include lines; global and local declarations with
// pointer/array derivations and brace initialisers; typedefs (with a
// pre-seeded table of Pthread and RCCE handle types, mirroring how the
// paper's CETUS setup knows pthread_t et al.); function definitions and
// prototypes; if/else, for, while, do-while, switch, break, continue,
// return; and the full C expression grammar with correct precedence and
// associativity.
package parser

import (
	"fmt"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/lexer"
	"hsmcc/internal/cc/token"
	"hsmcc/internal/cc/types"
)

// Error is a parse error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// BuiltinTypedefs are handle types known to the frontend without headers;
// they behave as word-sized opaque integers. This mirrors the paper's
// environment, where pthread.h/RCCE.h supply these names.
var BuiltinTypedefs = []string{
	"pthread_t", "pthread_attr_t", "pthread_mutex_t", "pthread_mutexattr_t",
	"pthread_cond_t", "pthread_condattr_t", "size_t", "uint32_t", "int32_t",
	"RCCE_COMM", "RCCE_FLAG", "t_vcharp",
}

type parser struct {
	toks     []token.Token
	pos      int
	typedefs map[string]*types.Type
	structs  map[string]*types.Type

	// pendingFunc holds the FuncDecl produced by parseDeclarator when it
	// encounters a parameter list, so parseDeclOrFunc can attach a body or
	// record a prototype. Only one can be pending at a time.
	pendingFunc *ast.FuncDecl
}

// Parse parses src (with name used in diagnostics) into an ast.File.
func Parse(name, src string) (*ast.File, error) {
	toks, err := lexer.TokenizeWithMacros(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:     toks,
		typedefs: make(map[string]*types.Type),
		structs:  make(map[string]*types.Type),
	}
	for _, td := range BuiltinTypedefs {
		p.typedefs[td] = types.OpaqueOf(td)
	}
	file := &ast.File{Name: name}
	for !p.at(token.EOF) {
		d, err := p.parseTopLevel()
		if err != nil {
			return nil, err
		}
		file.Decls = append(file.Decls, d...)
	}
	return file, nil
}

// --- token helpers ---------------------------------------------------------

func (p *parser) cur() token.Token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	last := token.Pos{}
	if len(p.toks) > 0 {
		last = p.toks[len(p.toks)-1].Pos
	}
	return token.Token{Kind: token.EOF, Pos: last}
}

func (p *parser) peek(n int) token.Token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return token.Token{Kind: token.EOF}
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) next() token.Token {
	t := p.cur()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return token.Token{}, p.errorf("expected %s, found %s", k, p.cur())
}

func (p *parser) errorf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// isTypeStart reports whether the current token can begin a type specifier
// (keyword or typedef name).
func (p *parser) isTypeStart() bool {
	t := p.cur()
	if t.Kind.IsTypeKeyword() || t.Kind == token.KwStatic || t.Kind == token.KwExtern ||
		t.Kind == token.KwRegister || t.Kind == token.KwTypedef {
		return true
	}
	if t.Kind == token.Ident {
		_, ok := p.typedefs[t.Text]
		return ok
	}
	return false
}

// --- top level --------------------------------------------------------------

func (p *parser) parseTopLevel() ([]ast.Node, error) {
	t := p.cur()
	switch {
	case t.Kind == token.Include:
		p.next()
		return []ast.Node{&ast.Include{Text: t.Text, PosInfo: t.Pos}}, nil
	case t.Kind == token.KwTypedef:
		td, err := p.parseTypedef()
		if err != nil {
			return nil, err
		}
		return []ast.Node{td}, nil
	case t.Kind == token.KwStruct && p.peek(1).Kind == token.Ident && p.peek(2).Kind == token.LBrace:
		sd, err := p.parseStructDef()
		if err != nil {
			return nil, err
		}
		return []ast.Node{sd}, nil
	case p.isTypeStart():
		return p.parseDeclOrFunc()
	default:
		return nil, p.errorf("unexpected token %s at top level", t)
	}
}

// parseStructDef parses `struct Name { fields };` registering the type.
func (p *parser) parseStructDef() (ast.Node, error) {
	pos := p.cur().Pos
	p.next() // struct
	nameTok, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	var fields []types.Field
	for !p.at(token.RBrace) {
		base, err := p.parseTypeSpecifier()
		if err != nil {
			return nil, err
		}
		for {
			ft, fname, _, err := p.parseDeclarator(base)
			if err != nil {
				return nil, err
			}
			fields = append(fields, types.Field{Name: fname, Type: ft})
			if !p.accept(token.Comma) {
				break
			}
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
	}
	p.next() // }
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	st := types.StructOf(nameTok.Text, fields)
	p.structs[nameTok.Text] = st
	return &ast.StructDecl{Type: st, PosInfo: pos}, nil
}

func (p *parser) parseTypedef() (*ast.TypedefDecl, error) {
	pos := p.cur().Pos
	p.next() // typedef
	base, err := p.parseTypeSpecifier()
	if err != nil {
		return nil, err
	}
	ty, name, _, err := p.parseDeclarator(base)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	p.typedefs[name] = ty
	return &ast.TypedefDecl{Name: name, Type: ty, PosInfo: pos}, nil
}

// parseDeclOrFunc parses a global declaration line or function definition.
func (p *parser) parseDeclOrFunc() ([]ast.Node, error) {
	storage := ast.StorageNone
	for {
		switch p.cur().Kind {
		case token.KwStatic:
			storage = ast.StorageStatic
			p.next()
			continue
		case token.KwExtern:
			storage = ast.StorageExtern
			p.next()
			continue
		case token.KwRegister:
			p.next()
			continue
		}
		break
	}
	base, err := p.parseTypeSpecifier()
	if err != nil {
		return nil, err
	}
	// A lone "struct S;" style declaration.
	if p.accept(token.Semi) {
		return nil, nil
	}
	var out []ast.Node
	first := true
	for {
		ty, name, pos, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		if first && ty.Kind == types.Func && p.at(token.LBrace) {
			// Function definition.
			fd := p.pendingFunc
			p.pendingFunc = nil
			if fd == nil {
				return nil, p.errorf("internal: missing pending function for %s", name)
			}
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			fd.Body = body
			fd.PosInfo = pos
			return []ast.Node{fd}, nil
		}
		if ty.Kind == types.Func {
			// Prototype.
			fd := p.pendingFunc
			p.pendingFunc = nil
			if fd != nil {
				fd.PosInfo = pos
				out = append(out, fd)
			}
		} else {
			vd := &ast.VarDecl{Name: name, Type: ty, Storage: storage, PosInfo: pos}
			if p.accept(token.Assign) {
				if err := p.parseInitializer(vd); err != nil {
					return nil, err
				}
			}
			out = append(out, vd)
		}
		first = false
		if p.accept(token.Comma) {
			continue
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return out, nil
	}
}

// parseInitializer parses "= expr" or "= {list}" contents into vd.
func (p *parser) parseInitializer(vd *ast.VarDecl) error {
	if p.at(token.LBrace) {
		p.next()
		for !p.at(token.RBrace) {
			e, err := p.parseAssignExpr()
			if err != nil {
				return err
			}
			vd.InitLst = append(vd.InitLst, e)
			if !p.accept(token.Comma) {
				break
			}
		}
		_, err := p.expect(token.RBrace)
		return err
	}
	e, err := p.parseAssignExpr()
	if err != nil {
		return err
	}
	vd.Init = e
	return nil
}

// parseTypeSpecifier parses the base type: int, unsigned long, double,
// void, struct S, typedef-name, with const/volatile ignored.
func (p *parser) parseTypeSpecifier() (*types.Type, error) {
	unsigned := false
	var base *types.Type
	for {
		t := p.cur()
		switch t.Kind {
		case token.KwConst, token.KwVolatile, token.KwSigned:
			p.next()
			continue
		case token.KwUnsigned:
			unsigned = true
			p.next()
			continue
		case token.KwVoid:
			p.next()
			base = types.VoidType
		case token.KwChar:
			p.next()
			base = types.CharType
		case token.KwShort:
			p.next()
			base = types.ShortType
			p.accept(token.KwInt)
		case token.KwInt:
			p.next()
			base = types.IntType
		case token.KwLong:
			p.next()
			p.accept(token.KwLong) // "long long" treated as long (ILP32 model)
			p.accept(token.KwInt)
			if p.cur().Kind == token.KwDouble {
				p.next()
				base = types.DoubleType
			} else {
				base = types.LongType
			}
		case token.KwFloat:
			p.next()
			base = types.FloatType
		case token.KwDouble:
			p.next()
			base = types.DoubleType
		case token.KwStruct:
			p.next()
			nameTok, err := p.expect(token.Ident)
			if err != nil {
				return nil, err
			}
			st, ok := p.structs[nameTok.Text]
			if !ok {
				return nil, p.errorf("unknown struct %q", nameTok.Text)
			}
			base = st
		case token.Ident:
			if td, ok := p.typedefs[t.Text]; ok {
				p.next()
				base = td
			}
		}
		break
	}
	if base == nil {
		if unsigned {
			return types.UIntType, nil
		}
		return nil, p.errorf("expected type specifier, found %s", p.cur())
	}
	if unsigned && (base.Kind == types.Int || base.Kind == types.Long ||
		base.Kind == types.Char || base.Kind == types.Short) {
		return types.UIntType, nil
	}
	return base, nil
}

// parseDeclarator parses pointer stars, the name, and array/function
// suffixes, returning the full type and name.
func (p *parser) parseDeclarator(base *types.Type) (*types.Type, string, token.Pos, error) {
	ty := base
	for p.accept(token.Star) {
		ty = types.PointerTo(ty)
		// const after * (e.g. int *const p)
		p.accept(token.KwConst)
	}
	nameTok, err := p.expect(token.Ident)
	if err != nil {
		return nil, "", token.Pos{}, err
	}
	name := nameTok.Text
	pos := nameTok.Pos
	// Array suffixes, innermost-last: a[2][3] is array(2) of array(3).
	var dims []int
	for p.accept(token.LBracket) {
		if p.accept(token.RBracket) {
			dims = append(dims, -1)
			continue
		}
		e, err := p.parseCondExpr()
		if err != nil {
			return nil, "", pos, err
		}
		n, ok := constIntValue(e)
		if !ok {
			return nil, "", pos, p.errorf("array dimension of %q must be an integer constant", name)
		}
		if _, err := p.expect(token.RBracket); err != nil {
			return nil, "", pos, err
		}
		dims = append(dims, int(n))
	}
	for i := len(dims) - 1; i >= 0; i-- {
		ty = types.ArrayOf(ty, dims[i])
	}
	// Function suffix.
	if p.accept(token.LParen) {
		fd := &ast.FuncDecl{Name: name, Result: ty, PosInfo: pos}
		var ptys []*types.Type
		variadic := false
		if !p.at(token.RParen) {
			if p.at(token.KwVoid) && p.peek(1).Kind == token.RParen {
				p.next()
			} else {
				for {
					if p.accept(token.Ellipsis) {
						variadic = true
						break
					}
					pbase, err := p.parseTypeSpecifier()
					if err != nil {
						return nil, "", pos, err
					}
					pty := pbase
					for p.accept(token.Star) {
						pty = types.PointerTo(pty)
					}
					pname := ""
					ppos := p.cur().Pos
					if p.at(token.Ident) {
						pname = p.next().Text
					}
					for p.accept(token.LBracket) {
						// Parameter arrays decay to pointers.
						if !p.accept(token.RBracket) {
							e, err := p.parseCondExpr()
							if err != nil {
								return nil, "", pos, err
							}
							_ = e
							if _, err := p.expect(token.RBracket); err != nil {
								return nil, "", pos, err
							}
						}
						pty = types.PointerTo(pty)
					}
					fd.Params = append(fd.Params, &ast.Param{Name: pname, Type: pty, PosInfo: ppos})
					ptys = append(ptys, pty)
					if !p.accept(token.Comma) {
						break
					}
				}
			}
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, "", pos, err
		}
		p.pendingFunc = fd
		return types.FuncOf(ty, ptys, variadic), name, pos, nil
	}
	return ty, name, pos, nil
}

// constIntValue folds trivially constant expressions used as array bounds:
// integer literals and +-* / of them.
func constIntValue(e ast.Expr) (int64, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.IntLit:
		return x.Value, true
	case *ast.CharLit:
		return int64(x.Value), true
	case *ast.UnaryExpr:
		if v, ok := constIntValue(x.X); ok && x.Op == token.Minus {
			return -v, true
		}
	case *ast.BinaryExpr:
		a, okA := constIntValue(x.X)
		b, okB := constIntValue(x.Y)
		if okA && okB {
			switch x.Op {
			case token.Plus:
				return a + b, true
			case token.Minus:
				return a - b, true
			case token.Star:
				return a * b, true
			case token.Slash:
				if b != 0 {
					return a / b, true
				}
			case token.Shl:
				return a << uint(b), true
			}
		}
	}
	return 0, false
}
