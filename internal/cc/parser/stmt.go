package parser

import (
	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/token"
)

// parseBlock parses "{ stmt* }".
func (p *parser) parseBlock() (*ast.BlockStmt, error) {
	lb, err := p.expect(token.LBrace)
	if err != nil {
		return nil, err
	}
	blk := &ast.BlockStmt{PosInfo: lb.Pos}
	for !p.at(token.RBrace) {
		if p.at(token.EOF) {
			return nil, p.errorf("unexpected EOF inside block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			blk.List = append(blk.List, s)
		}
	}
	p.next() // }
	return blk, nil
}

// parseStmt parses one statement.
func (p *parser) parseStmt() (ast.Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case token.LBrace:
		return p.parseBlock()
	case token.Semi:
		p.next()
		return &ast.EmptyStmt{PosInfo: t.Pos}, nil
	case token.KwIf:
		return p.parseIf()
	case token.KwFor:
		return p.parseFor()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwDo:
		return p.parseDoWhile()
	case token.KwSwitch:
		return p.parseSwitch()
	case token.KwReturn:
		p.next()
		rs := &ast.ReturnStmt{PosInfo: t.Pos}
		if !p.at(token.Semi) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.Result = e
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return rs, nil
	case token.KwBreak:
		p.next()
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return &ast.BreakStmt{PosInfo: t.Pos}, nil
	case token.KwContinue:
		p.next()
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return &ast.ContinueStmt{PosInfo: t.Pos}, nil
	}
	if p.isTypeStart() {
		return p.parseLocalDecl()
	}
	// Expression statement.
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	return &ast.ExprStmt{X: e, PosInfo: t.Pos}, nil
}

// parseLocalDecl parses one local declaration line. Multiple declarators
// become a block of DeclStmts flattened by the caller via blockOrSingle.
func (p *parser) parseLocalDecl() (ast.Stmt, error) {
	pos := p.cur().Pos
	nodes, err := p.parseDeclOrFunc()
	if err != nil {
		return nil, err
	}
	var stmts []ast.Stmt
	for _, n := range nodes {
		vd, ok := n.(*ast.VarDecl)
		if !ok {
			return nil, p.errorf("function declarations are not allowed inside blocks")
		}
		stmts = append(stmts, &ast.DeclStmt{Decl: vd, PosInfo: vd.PosInfo})
	}
	switch len(stmts) {
	case 0:
		return &ast.EmptyStmt{PosInfo: pos}, nil
	case 1:
		return stmts[0], nil
	default:
		// Keep a flat structure: return a block the printer flattens.
		return &ast.BlockStmt{List: stmts, PosInfo: pos}, nil
	}
}

func (p *parser) parseIf() (ast.Stmt, error) {
	pos := p.next().Pos // if
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	is := &ast.IfStmt{Cond: cond, Then: then, PosInfo: pos}
	if p.accept(token.KwElse) {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		is.Else = els
	}
	return is, nil
}

func (p *parser) parseFor() (ast.Stmt, error) {
	pos := p.next().Pos // for
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	fs := &ast.ForStmt{PosInfo: pos}
	if !p.at(token.Semi) {
		if p.isTypeStart() {
			d, err := p.parseLocalDecl()
			if err != nil {
				return nil, err
			}
			fs.Init = d
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fs.Init = &ast.ExprStmt{X: e, PosInfo: e.Pos()}
			if _, err := p.expect(token.Semi); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.at(token.Semi) {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Cond = c
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	if !p.at(token.RParen) {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

func (p *parser) parseWhile() (ast.Stmt, error) {
	pos := p.next().Pos // while
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &ast.WhileStmt{Cond: cond, Body: body, PosInfo: pos}, nil
}

func (p *parser) parseDoWhile() (ast.Stmt, error) {
	pos := p.next().Pos // do
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.KwWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	return &ast.DoWhileStmt{Body: body, Cond: cond, PosInfo: pos}, nil
}

func (p *parser) parseSwitch() (ast.Stmt, error) {
	pos := p.next().Pos // switch
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	sw := &ast.SwitchStmt{Tag: tag, PosInfo: pos}
	for !p.at(token.RBrace) {
		var cc *ast.CaseClause
		cpos := p.cur().Pos
		if p.accept(token.KwCase) {
			v, err := p.parseCondExpr()
			if err != nil {
				return nil, err
			}
			cc = &ast.CaseClause{Value: v, PosInfo: cpos}
		} else if p.accept(token.KwDefault) {
			cc = &ast.CaseClause{PosInfo: cpos}
		} else {
			return nil, p.errorf("expected case or default in switch, found %s", p.cur())
		}
		if _, err := p.expect(token.Colon); err != nil {
			return nil, err
		}
		for !p.at(token.KwCase) && !p.at(token.KwDefault) && !p.at(token.RBrace) {
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			cc.Body = append(cc.Body, s)
		}
		sw.Cases = append(sw.Cases, cc)
	}
	p.next() // }
	return sw, nil
}
