package parser

import (
	"strconv"
	"strings"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/token"
	"hsmcc/internal/cc/types"
)

// Expression grammar, standard C precedence:
//
//	expr        := assign (',' assign)*
//	assign      := cond | unary assignOp assign
//	cond        := logOr ('?' expr ':' assign)?
//	logOr       := logAnd ('||' logAnd)*
//	logAnd      := bitOr ('&&' bitOr)*
//	bitOr       := bitXor ('|' bitXor)*
//	bitXor      := bitAnd ('^' bitAnd)*
//	bitAnd      := equality ('&' equality)*
//	equality    := relational (('=='|'!=') relational)*
//	relational  := shift (('<'|'>'|'<='|'>=') shift)*
//	shift       := additive (('<<'|'>>') additive)*
//	additive    := multiplicative (('+'|'-') multiplicative)*
//	multiplicative := cast (('*'|'/'|'%') cast)*
//	cast        := '(' type ')' cast | unary
//	unary       := ('-'|'+'|'!'|'~'|'*'|'&'|'++'|'--') cast | 'sizeof' ... | postfix
//	postfix     := primary ( '[' expr ']' | '(' args ')' | '.' id | '->' id | '++' | '--' )*
//	primary     := ident | literal | '(' expr ')'

// parseExpr parses a full expression including the comma operator.
func (p *parser) parseExpr() (ast.Expr, error) {
	e, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	for p.at(token.Comma) {
		pos := p.next().Pos
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		e = &ast.CommaExpr{X: e, Y: rhs, PosInfo: pos}
	}
	return e, nil
}

// parseAssignExpr parses an assignment-or-conditional expression.
func (p *parser) parseAssignExpr() (ast.Expr, error) {
	lhs, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind.IsAssignOp() {
		op := p.next()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &ast.AssignExpr{Op: op.Kind, LHS: lhs, RHS: rhs, PosInfo: op.Pos}, nil
	}
	return lhs, nil
}

func (p *parser) parseCondExpr() (ast.Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.at(token.Quest) {
		pos := p.next().Pos
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Colon); err != nil {
			return nil, err
		}
		els, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &ast.CondExpr{Cond: cond, Then: then, Else: els, PosInfo: pos}, nil
	}
	return cond, nil
}

// binary operator precedence levels, lowest first.
var binLevels = [][]token.Kind{
	{token.OrOr},
	{token.AndAnd},
	{token.Pipe},
	{token.Caret},
	{token.Amp},
	{token.EqEq, token.NotEq},
	{token.Lt, token.Gt, token.Le, token.Ge},
	{token.Shl, token.Shr},
	{token.Plus, token.Minus},
	{token.Star, token.Slash, token.Percent},
}

func (p *parser) parseBinary(level int) (ast.Expr, error) {
	if level >= len(binLevels) {
		return p.parseCast()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		matched := false
		for _, cand := range binLevels[level] {
			if k == cand {
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &ast.BinaryExpr{Op: op.Kind, X: lhs, Y: rhs, PosInfo: op.Pos}
	}
}

// parseCast handles "(type) expr" casts, disambiguating from parenthesised
// expressions by checking whether the token after '(' starts a type.
func (p *parser) parseCast() (ast.Expr, error) {
	if p.at(token.LParen) && p.startsTypeAt(1) {
		pos := p.next().Pos // (
		ty, err := p.parseAbstractType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		x, err := p.parseCast()
		if err != nil {
			return nil, err
		}
		return &ast.CastExpr{To: ty, X: x, PosInfo: pos}, nil
	}
	return p.parseUnary()
}

// startsTypeAt reports whether the token at lookahead offset n begins a type.
func (p *parser) startsTypeAt(n int) bool {
	t := p.peek(n)
	if t.Kind.IsTypeKeyword() {
		return true
	}
	if t.Kind == token.Ident {
		if _, ok := p.typedefs[t.Text]; ok {
			// "(pthread_t)x" is a cast; "(foo)" where foo is a typedef name
			// used as a value cannot occur in our subset.
			return true
		}
	}
	return false
}

// parseAbstractType parses a type name inside a cast or sizeof: base
// specifier plus pointer stars (abstract arrays are not needed by the
// subset).
func (p *parser) parseAbstractType() (*types.Type, error) {
	base, err := p.parseTypeSpecifier()
	if err != nil {
		return nil, err
	}
	for p.accept(token.Star) {
		base = types.PointerTo(base)
	}
	return base, nil
}

func (p *parser) parseUnary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case token.Minus, token.Plus, token.Bang, token.Tilde, token.Star, token.Amp:
		p.next()
		x, err := p.parseCast()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: t.Kind, X: x, PosInfo: t.Pos}, nil
	case token.PlusPlus, token.MinusMinus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: t.Kind, X: x, PosInfo: t.Pos}, nil
	case token.KwSizeof:
		p.next()
		if p.at(token.LParen) && p.startsTypeAt(1) {
			p.next() // (
			ty, err := p.parseAbstractType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
			return &ast.SizeofExpr{OfType: ty, PosInfo: t.Pos, Typ: types.UIntType}, nil
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.SizeofExpr{X: x, PosInfo: t.Pos, Typ: types.UIntType}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (ast.Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch t.Kind {
		case token.LBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBracket); err != nil {
				return nil, err
			}
			e = &ast.IndexExpr{X: e, Index: idx, PosInfo: t.Pos}
		case token.LParen:
			p.next()
			call := &ast.CallExpr{Fun: e, PosInfo: t.Pos}
			for !p.at(token.RParen) {
				a, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(token.Comma) {
					break
				}
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
			e = call
		case token.Dot, token.Arrow:
			p.next()
			nameTok, err := p.expect(token.Ident)
			if err != nil {
				return nil, err
			}
			e = &ast.MemberExpr{X: e, Name: nameTok.Text, Arrow: t.Kind == token.Arrow, PosInfo: t.Pos}
		case token.PlusPlus, token.MinusMinus:
			p.next()
			e = &ast.PostfixExpr{Op: t.Kind, X: e, PosInfo: t.Pos}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case token.Ident:
		p.next()
		return &ast.Ident{Name: t.Text, PosInfo: t.Pos}, nil
	case token.IntLit:
		p.next()
		text := strings.TrimRight(t.Text, "uUlL")
		var v int64
		var err error
		if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
			v, err = strconv.ParseInt(text[2:], 16, 64)
		} else {
			v, err = strconv.ParseInt(text, 10, 64)
		}
		if err != nil {
			// Fall back to unsigned parse for e.g. 0xFFFFFFFF.
			u, uerr := strconv.ParseUint(strings.TrimPrefix(strings.TrimPrefix(text, "0x"), "0X"), 16, 64)
			if uerr != nil {
				return nil, p.errorf("bad integer literal %q", t.Text)
			}
			v = int64(u)
		}
		return &ast.IntLit{Value: v, Text: t.Text, PosInfo: t.Pos, Typ: types.IntType}, nil
	case token.FloatLit:
		p.next()
		text := strings.TrimRight(t.Text, "fF")
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, p.errorf("bad float literal %q", t.Text)
		}
		ty := types.DoubleType
		if strings.HasSuffix(t.Text, "f") || strings.HasSuffix(t.Text, "F") {
			ty = types.FloatType
		}
		return &ast.FloatLit{Value: v, Text: t.Text, PosInfo: t.Pos, Typ: ty}, nil
	case token.StringLit:
		p.next()
		// Adjacent string literal concatenation.
		val := t.Text
		for p.at(token.StringLit) {
			val += p.next().Text
		}
		return &ast.StringLit{Value: val, PosInfo: t.Pos,
			Typ: types.PointerTo(types.CharType)}, nil
	case token.CharLit:
		p.next()
		return &ast.CharLit{Value: t.Text[0], PosInfo: t.Pos, Typ: types.CharType}, nil
	case token.LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return &ast.ParenExpr{X: e, PosInfo: t.Pos}, nil
	}
	return nil, p.errorf("expected expression, found %s", t)
}
