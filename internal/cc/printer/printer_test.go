package printer

import (
	"strings"
	"testing"

	"hsmcc/internal/cc/parser"
)

// reprint parses src and prints it back.
func reprint(t *testing.T, src string) string {
	t.Helper()
	f, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Print(f)
}

// TestRoundTripFixedPoint: print(parse(print(parse(src)))) must equal
// print(parse(src)) — printing is a fixed point, so emitted programs can
// be consumed again (the harness re-parses translator output).
func TestRoundTripFixedPoint(t *testing.T) {
	srcs := []string{
		`
#include <stdio.h>
int g = 3;
double weights[4] = {1.0, 2.0, 3.5, 0.25};
int add(int a, int b) { return a + b; }
int main() {
    int i;
    for (i = 0; i < 10; i++) {
        if (i % 2 == 0 && i != 4) continue;
        else g += add(i, g);
    }
    while (g > 100) g /= 2;
    do { g--; } while (g > 50);
    switch (g) {
    case 1: g = 0; break;
    default: g = -1;
    }
    printf("%d %.2f\n", g, weights[2]);
    return 0;
}`,
		`
struct pair { int a; int b; };
struct pair p;
int main() {
    p.a = 1;
    struct pair *q = &p;
    q->b = q->a + 2;
    int xs[3];
    int *r = xs;
    *(r + 1) = sizeof(struct pair);
    r[2] = (int)(*r ? 1 : 2);
    return p.b;
}`,
		`
void *tf(void *tid) { return tid; }
int main() {
    char *s = "a\tb\"c\n";
    char c = 'x';
    unsigned int u = 0;
    u = ~u >> 3;
    long big = 1 << 20;
    return (int)(u + big + c + (s != 0));
}`,
	}
	for i, src := range srcs {
		first := reprint(t, src)
		second := reprint(t, first)
		if first != second {
			t.Errorf("case %d: reprint is not a fixed point\n--- first\n%s\n--- second\n%s", i, first, second)
		}
	}
}

// TestPrecedencePreserved: printing must keep the parse tree's meaning —
// reparsing the printed form yields the same printed form even when
// parentheses carry semantics.
func TestPrecedencePreserved(t *testing.T) {
	src := `
int main() {
    int a = 1;
    int b = 2;
    int c = 3;
    int r1 = (a + b) * c;
    int r2 = a + b * c;
    int r3 = -(a - b);
    int r4 = a - (b - c);
    int r5 = (a & b) | c;
    int r6 = !(a < b);
    return r1 + r2 + r3 + r4 + r5 + r6;
}`
	out := reprint(t, src)
	for _, want := range []string{"(a + b) * c", "a + b * c", "a - (b - c)"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output lost grouping %q:\n%s", want, out)
		}
	}
}

// TestIncludesPreserved: #include lines survive printing.
func TestIncludesPreserved(t *testing.T) {
	out := reprint(t, "#include <stdio.h>\n#include \"RCCE.h\"\nint main() { return 0; }")
	if !strings.Contains(out, "#include <stdio.h>") || !strings.Contains(out, `#include "RCCE.h"`) {
		t.Errorf("includes lost:\n%s", out)
	}
}

// TestTypeString covers declaration rendering forms.
func TestTypeRendering(t *testing.T) {
	out := reprint(t, `
int *p;
double arr[8];
char **argvish;
unsigned int flags;
int main() { return 0; }`)
	for _, want := range []string{"int *p;", "double arr[8];", "char **argvish;", "unsigned int flags;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestStringEscaping: special characters are re-escaped on output.
func TestStringEscaping(t *testing.T) {
	out := reprint(t, `int main() { printf("tab\there\nquote\"q\\"); return 0; }`)
	if !strings.Contains(out, `\t`) || !strings.Contains(out, `\n`) ||
		!strings.Contains(out, `\"`) || !strings.Contains(out, `\\`) {
		t.Errorf("escapes lost: %s", out)
	}
}

// TestExprAndStmtString cover the standalone helpers.
func TestHelperStringers(t *testing.T) {
	f, err := parser.Parse("t.c", "int main() { int x = 1 + 2 * 3; return x; }")
	if err != nil {
		t.Fatal(err)
	}
	main := f.FindFunc("main")
	if got := StmtString(main.Body.List[0]); !strings.Contains(got, "1 + 2 * 3") {
		t.Errorf("StmtString = %q", got)
	}
}
