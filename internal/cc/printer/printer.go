// Package printer serialises the hsmcc IR back to compilable C source.
// It is the final stage of the paper's source-to-source pipeline: the
// translated RCCE program emitted here is what would be handed to icc on
// the SCC (and what our simulator re-parses and executes).
package printer

import (
	"fmt"
	"strings"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/token"
	"hsmcc/internal/cc/types"
)

// Print renders a whole translation unit.
func Print(f *ast.File) string {
	var p printer
	for i, d := range f.Decls {
		switch n := d.(type) {
		case *ast.Include:
			p.line(n.Text)
		case *ast.TypedefDecl:
			p.line("typedef " + declString(n.Type, n.Name) + ";")
		case *ast.StructDecl:
			p.printStructDef(n)
		case *ast.VarDecl:
			p.line(varDeclString(n) + ";")
		case *ast.FuncDecl:
			if i > 0 {
				p.line("")
			}
			p.printFunc(n)
		}
	}
	return p.sb.String()
}

// ExprString renders a single expression (used in tests and diagnostics).
func ExprString(e ast.Expr) string { return exprString(e, precLowest) }

// StmtString renders a single statement at zero indentation.
func StmtString(s ast.Stmt) string {
	var p printer
	p.printStmt(s)
	return strings.TrimRight(p.sb.String(), "\n")
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) line(s string) {
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("    ")
	}
	p.sb.WriteString(s)
	p.sb.WriteByte('\n')
}

func (p *printer) printFunc(f *ast.FuncDecl) {
	var params []string
	for _, prm := range f.Params {
		params = append(params, declString(prm.Type, prm.Name))
	}
	sig := fmt.Sprintf("%s(%s)", declString(f.Result, f.Name), strings.Join(params, ", "))
	if f.Body == nil {
		p.line(sig + ";")
		return
	}
	p.line(sig)
	p.printBlock(f.Body)
}

func (p *printer) printBlock(b *ast.BlockStmt) {
	p.line("{")
	p.indent++
	for _, s := range b.List {
		p.printStmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) printStmt(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.BlockStmt:
		p.printBlock(n)
	case *ast.DeclStmt:
		p.line(varDeclString(n.Decl) + ";")
	case *ast.ExprStmt:
		p.line(exprString(n.X, precLowest) + ";")
	case *ast.IfStmt:
		p.line("if (" + exprString(n.Cond, precLowest) + ")")
		p.printNested(n.Then)
		if n.Else != nil {
			p.line("else")
			p.printNested(n.Else)
		}
	case *ast.ForStmt:
		var init, cond, post string
		switch in := n.Init.(type) {
		case nil:
		case *ast.ExprStmt:
			init = exprString(in.X, precLowest)
		case *ast.DeclStmt:
			init = varDeclString(in.Decl)
		}
		if n.Cond != nil {
			cond = exprString(n.Cond, precLowest)
		}
		if n.Post != nil {
			post = exprString(n.Post, precLowest)
		}
		p.line(fmt.Sprintf("for (%s; %s; %s)", init, cond, post))
		p.printNested(n.Body)
	case *ast.WhileStmt:
		p.line("while (" + exprString(n.Cond, precLowest) + ")")
		p.printNested(n.Body)
	case *ast.DoWhileStmt:
		p.line("do")
		p.printNested(n.Body)
		p.line("while (" + exprString(n.Cond, precLowest) + ");")
	case *ast.SwitchStmt:
		p.line("switch (" + exprString(n.Tag, precLowest) + ") {")
		for _, c := range n.Cases {
			if c.Value != nil {
				p.line("case " + exprString(c.Value, precLowest) + ":")
			} else {
				p.line("default:")
			}
			p.indent++
			for _, cs := range c.Body {
				p.printStmt(cs)
			}
			p.indent--
		}
		p.line("}")
	case *ast.ReturnStmt:
		if n.Result != nil {
			p.line("return " + exprString(n.Result, precLowest) + ";")
		} else {
			p.line("return;")
		}
	case *ast.BreakStmt:
		p.line("break;")
	case *ast.ContinueStmt:
		p.line("continue;")
	case *ast.EmptyStmt:
		p.line(";")
	default:
		p.line(fmt.Sprintf("/* unprintable statement %T */", s))
	}
}

// printNested prints a statement as the body of a control structure,
// keeping blocks flush and indenting single statements.
func (p *printer) printNested(s ast.Stmt) {
	if b, ok := s.(*ast.BlockStmt); ok {
		p.printBlock(b)
		return
	}
	p.indent++
	p.printStmt(s)
	p.indent--
}

// varDeclString renders "int x", "int *p = &y", "double a[64] = {0}".
func varDeclString(d *ast.VarDecl) string {
	s := declString(d.Type, d.Name)
	switch d.Storage {
	case ast.StorageStatic:
		s = "static " + s
	case ast.StorageExtern:
		s = "extern " + s
	}
	if d.Init != nil {
		s += " = " + exprString(d.Init, precAssign)
	} else if d.InitLst != nil {
		var parts []string
		for _, e := range d.InitLst {
			parts = append(parts, exprString(e, precAssign))
		}
		s += " = {" + strings.Join(parts, ", ") + "}"
	}
	return s
}

// declString renders a C declarator: type then name with pointer/array
// syntax, e.g. declString(int**, "p") = "int **p";
// declString(double[3][4], "m") = "double m[3][4]".
func declString(t *types.Type, name string) string {
	// Peel arrays (outermost first) and pointers (innermost last).
	suffix := ""
	for t.Kind == types.Array {
		if t.Len < 0 {
			suffix += "[]"
		} else {
			suffix += fmt.Sprintf("[%d]", t.Len)
		}
		t = t.Elem
	}
	stars := ""
	for t.Kind == types.Pointer {
		stars += "*"
		t = t.Elem
	}
	base := t.String()
	if name == "" {
		return base + stars + suffix
	}
	return base + " " + stars + name + suffix
}

// TypeString renders a type for a cast, e.g. "(int *)".
func TypeString(t *types.Type) string {
	stars := ""
	for t.Kind == types.Pointer {
		stars += " *"
		t = t.Elem
	}
	return t.String() + stars
}

// Operator precedence for minimal-parentheses printing.
const (
	precLowest = iota
	precComma
	precAssign
	precCond
	precLogOr
	precLogAnd
	precBitOr
	precBitXor
	precBitAnd
	precEq
	precRel
	precShift
	precAdd
	precMul
	precCast
	precUnary
	precPostfix
)

func binPrec(op token.Kind) int {
	switch op {
	case token.OrOr:
		return precLogOr
	case token.AndAnd:
		return precLogAnd
	case token.Pipe:
		return precBitOr
	case token.Caret:
		return precBitXor
	case token.Amp:
		return precBitAnd
	case token.EqEq, token.NotEq:
		return precEq
	case token.Lt, token.Gt, token.Le, token.Ge:
		return precRel
	case token.Shl, token.Shr:
		return precShift
	case token.Plus, token.Minus:
		return precAdd
	case token.Star, token.Slash, token.Percent:
		return precMul
	}
	return precLowest
}

func opText(op token.Kind) string { return op.String() }

// exprString renders e; parent is the precedence of the enclosing context,
// used to decide whether parentheses are required.
func exprString(e ast.Expr, parent int) string {
	var s string
	var prec int
	switch n := e.(type) {
	case *ast.Ident:
		return n.Name
	case *ast.IntLit:
		return n.Text
	case *ast.FloatLit:
		return n.Text
	case *ast.StringLit:
		return "\"" + escapeString(n.Value) + "\""
	case *ast.CharLit:
		return "'" + escapeChar(n.Value) + "'"
	case *ast.ParenExpr:
		return "(" + exprString(n.X, precLowest) + ")"
	case *ast.BinaryExpr:
		prec = binPrec(n.Op)
		s = exprString(n.X, prec) + " " + opText(n.Op) + " " + exprString(n.Y, prec+1)
	case *ast.AssignExpr:
		prec = precAssign
		s = exprString(n.LHS, precUnary) + " " + opText(n.Op) + " " + exprString(n.RHS, precAssign)
	case *ast.UnaryExpr:
		prec = precUnary
		op := opText(n.Op)
		inner := exprString(n.X, precUnary)
		// Keep adjacent sign/address operators from merging into a
		// different token: `-(-a)` must not print as `--a` (which would
		// re-lex as a pre-decrement), nor `&(&x)` as `&&x`.
		if len(inner) > 0 && inner[0] == op[len(op)-1] &&
			(op == "-" || op == "+" || op == "&") {
			op += " "
		}
		s = op + inner
	case *ast.PostfixExpr:
		prec = precPostfix
		s = exprString(n.X, precPostfix) + opText(n.Op)
	case *ast.IndexExpr:
		prec = precPostfix
		s = exprString(n.X, precPostfix) + "[" + exprString(n.Index, precLowest) + "]"
	case *ast.CallExpr:
		prec = precPostfix
		var args []string
		for _, a := range n.Args {
			args = append(args, exprString(a, precAssign))
		}
		s = exprString(n.Fun, precPostfix) + "(" + strings.Join(args, ", ") + ")"
	case *ast.CastExpr:
		prec = precCast
		s = "(" + TypeString(n.To) + ")" + exprString(n.X, precCast)
	case *ast.SizeofExpr:
		prec = precUnary
		if n.OfType != nil {
			s = "sizeof(" + TypeString(n.OfType) + ")"
		} else {
			s = "sizeof(" + exprString(n.X, precLowest) + ")"
		}
		return s
	case *ast.CondExpr:
		prec = precCond
		s = exprString(n.Cond, precLogOr) + " ? " + exprString(n.Then, precLowest) +
			" : " + exprString(n.Else, precCond)
	case *ast.CommaExpr:
		prec = precComma
		s = exprString(n.X, precComma) + ", " + exprString(n.Y, precAssign)
	case *ast.MemberExpr:
		prec = precPostfix
		op := "."
		if n.Arrow {
			op = "->"
		}
		s = exprString(n.X, precPostfix) + op + n.Name
	default:
		return fmt.Sprintf("/*?%T*/", e)
	}
	if prec < parent {
		return "(" + s + ")"
	}
	return s
}

func escapeString(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		sb.WriteString(escapeChar(s[i]))
	}
	return sb.String()
}

func escapeChar(c byte) string {
	switch c {
	case '\n':
		return "\\n"
	case '\t':
		return "\\t"
	case '\r':
		return "\\r"
	case 0:
		return "\\0"
	case '\\':
		return "\\\\"
	case '"':
		return "\\\""
	case '\'':
		return "\\'"
	default:
		return string(c)
	}
}

// printStructDef re-emits a struct definition from its laid-out type.
func (p *printer) printStructDef(n *ast.StructDecl) {
	p.line("struct " + n.Type.Name + " {")
	for _, f := range n.Type.Fields {
		p.line("    " + declString(f.Type, f.Name) + ";")
	}
	p.line("};")
}
