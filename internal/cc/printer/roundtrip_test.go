package printer_test

import (
	"os"
	"path/filepath"
	"testing"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/parser"
	"hsmcc/internal/cc/printer"
)

// TestRoundTripTestdata is the frontend round-trip property over every
// checked-in C program (the hand-written examples, the golden RCCE
// translation, and the conformance seed corpus): printing a parsed file
// must yield source that re-parses to a structurally equal tree, and a
// second print must be byte-identical to the first. Together these pin
// the printer as a faithful inverse of the parser — the property the
// conformance engine's re-parse execution path depends on.
func TestRoundTripTestdata(t *testing.T) {
	var files []string
	for _, pat := range []string{"../../../testdata/*.c", "../../../testdata/conformance/*.c"} {
		m, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, m...)
	}
	if len(files) < 3 {
		t.Fatalf("found only %d testdata programs, corpus missing?", len(files))
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			first, err := parser.Parse(path, string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			printed := printer.Print(first)
			second, err := parser.Parse(path, printed)
			if err != nil {
				t.Fatalf("printed source does not re-parse: %v\n%s", err, printed)
			}
			if !ast.Equal(first, second) {
				t.Fatalf("reparse is not structurally equal\n--- printed\n%s", printed)
			}
			if again := printer.Print(second); again != printed {
				t.Fatalf("print is not a fixpoint\n--- first\n%s\n--- second\n%s", printed, again)
			}
		})
	}
}

// TestEqualDetectsDifferences guards the comparison itself: ast.Equal
// must not be trivially true.
func TestEqualDetectsDifferences(t *testing.T) {
	a, err := parser.Parse("a.c", "int main() { return 1 + 2; }")
	if err != nil {
		t.Fatal(err)
	}
	b, err := parser.Parse("b.c", "int main() { return 1 - 2; }")
	if err != nil {
		t.Fatal(err)
	}
	if ast.Equal(a, b) {
		t.Fatal("Equal missed an operator difference")
	}
	c, err := parser.Parse("c.c", "int main() { return (1 + 2); }")
	if err != nil {
		t.Fatal(err)
	}
	if !ast.Equal(a, c) {
		t.Fatal("Equal must ignore redundant parentheses")
	}
}
