package ast

import (
	"reflect"

	"hsmcc/internal/cc/types"
)

// Equal reports whether two IR trees are structurally equal: the same
// node shapes, names, operators, literals and declared types. Source
// positions, sema links (Ident.Sym, the cached result types) and
// redundant parentheses are ignored, so a tree compares equal to the
// result of printing and re-parsing it. The conformance engine and the
// printer round-trip tests build on this.
func Equal(a, b Node) bool {
	return eqValue(reflect.ValueOf(a), reflect.ValueOf(b))
}

// eqValue is a reflective structural walk. It special-cases the three
// places where "same program" differs from "same Go values": *types.Type
// (compared structurally, not by pointer), ParenExpr (stripped — the
// printer adds and removes precedence parens), and the sema-owned fields
// PosInfo/Sym/Typ (skipped).
func eqValue(av, bv reflect.Value) bool {
	av = normalize(av)
	bv = normalize(bv)
	if !av.IsValid() || !bv.IsValid() {
		return av.IsValid() == bv.IsValid()
	}
	if av.Type() != bv.Type() {
		return false
	}
	switch av.Kind() {
	case reflect.Pointer:
		if av.IsNil() || bv.IsNil() {
			return av.IsNil() == bv.IsNil()
		}
		if at, ok := av.Interface().(*types.Type); ok {
			return typeEqual(at, bv.Interface().(*types.Type))
		}
		return eqValue(av.Elem(), bv.Elem())
	case reflect.Struct:
		t := av.Type()
		for i := 0; i < t.NumField(); i++ {
			switch t.Field(i).Name {
			case "PosInfo", "Sym", "Typ":
				continue
			case "Name":
				// File.Name is the compilation name, not program text.
				if t == reflect.TypeOf(File{}) {
					continue
				}
			}
			if !eqValue(av.Field(i), bv.Field(i)) {
				return false
			}
		}
		return true
	case reflect.Slice:
		if av.Len() != bv.Len() {
			return false
		}
		for i := 0; i < av.Len(); i++ {
			if !eqValue(av.Index(i), bv.Index(i)) {
				return false
			}
		}
		return true
	default:
		return av.Interface() == bv.Interface()
	}
}

// normalize unwraps interface values and strips ParenExpr wrappers.
func normalize(v reflect.Value) reflect.Value {
	for {
		for v.Kind() == reflect.Interface {
			v = v.Elem()
		}
		if v.IsValid() && v.Kind() == reflect.Pointer && !v.IsNil() {
			if p, ok := v.Interface().(*ParenExpr); ok {
				v = reflect.ValueOf(p.X)
				continue
			}
		}
		return v
	}
}

// typeEqual compares types structurally (the types package caches layout
// in unexported fields, so reflect.DeepEqual would be too strict).
func typeEqual(a, b *types.Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Kind != b.Kind || a.Len != b.Len || a.Name != b.Name || a.Variadic != b.Variadic {
		return false
	}
	if !typeEqual(a.Elem, b.Elem) {
		return false
	}
	if len(a.Params) != len(b.Params) || len(a.Fields) != len(b.Fields) {
		return false
	}
	for i := range a.Params {
		if !typeEqual(a.Params[i], b.Params[i]) {
			return false
		}
	}
	for i := range a.Fields {
		if a.Fields[i].Name != b.Fields[i].Name || !typeEqual(a.Fields[i].Type, b.Fields[i].Type) {
			return false
		}
	}
	return true
}
