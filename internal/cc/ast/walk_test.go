package ast

import (
	"testing"

	"hsmcc/internal/cc/token"
	"hsmcc/internal/cc/types"
)

// buildFile constructs a small AST by hand:
//
//	int g;
//	int main() { if (g) { g = 1; } return g; }
func buildFile() *File {
	g := &VarDecl{Name: "g", Type: types.IntType}
	body := &BlockStmt{List: []Stmt{
		&IfStmt{
			Cond: &Ident{Name: "g"},
			Then: &BlockStmt{List: []Stmt{
				&ExprStmt{X: &AssignExpr{Op: token.Assign, LHS: &Ident{Name: "g"}, RHS: &IntLit{Value: 1}}},
			}},
		},
		&ReturnStmt{Result: &Ident{Name: "g"}},
	}}
	main := &FuncDecl{Name: "main", Result: types.IntType, Body: body}
	return &File{Decls: []Node{g, main}}
}

func TestInspectVisitsEverything(t *testing.T) {
	f := buildFile()
	idents := 0
	Inspect(f, func(n Node) bool {
		if _, ok := n.(*Ident); ok {
			idents++
		}
		return true
	})
	if idents != 3 {
		t.Errorf("visited %d idents, want 3", idents)
	}
}

func TestInspectPrune(t *testing.T) {
	f := buildFile()
	idents := 0
	Inspect(f, func(n Node) bool {
		if _, ok := n.(*IfStmt); ok {
			return false // prune the if subtree
		}
		if _, ok := n.(*Ident); ok {
			idents++
		}
		return true
	})
	if idents != 1 {
		t.Errorf("visited %d idents with pruning, want 1 (only the return)", idents)
	}
}

func TestFileHelpers(t *testing.T) {
	f := buildFile()
	if len(f.Funcs()) != 1 || f.Funcs()[0].Name != "main" {
		t.Error("Funcs should return main")
	}
	if f.FindFunc("main") == nil || f.FindFunc("nope") != nil {
		t.Error("FindFunc broken")
	}
	if len(f.Globals()) != 1 || f.Globals()[0].Name != "g" {
		t.Error("Globals should return g")
	}
}

func TestUnparen(t *testing.T) {
	inner := &IntLit{Value: 7}
	wrapped := Expr(&ParenExpr{X: &ParenExpr{X: inner}})
	if Unparen(wrapped) != Expr(inner) {
		t.Error("Unparen must strip nested parens")
	}
	if Unparen(inner) != Expr(inner) {
		t.Error("Unparen on a non-paren must be identity")
	}
}

func TestCallFuncName(t *testing.T) {
	c := &CallExpr{Fun: &Ident{Name: "printf"}}
	if c.FuncName() != "printf" {
		t.Errorf("FuncName = %q", c.FuncName())
	}
	indirect := &CallExpr{Fun: &ParenExpr{X: &Ident{Name: "fp"}}}
	if indirect.FuncName() != "" {
		t.Error("FuncName through parens should be empty (not a plain ident)")
	}
}

func TestWalkAllStatementKinds(t *testing.T) {
	// A block exercising every statement node; Walk must not panic and
	// must reach the innermost literal.
	lit := &IntLit{Value: 99}
	blk := &BlockStmt{List: []Stmt{
		&DeclStmt{Decl: &VarDecl{Name: "v", Type: types.IntType, Init: &IntLit{Value: 1}}},
		&ForStmt{Body: &EmptyStmt{}},
		&WhileStmt{Cond: &IntLit{Value: 0}, Body: &BreakStmt{}},
		&DoWhileStmt{Cond: &IntLit{Value: 0}, Body: &ContinueStmt{}},
		&SwitchStmt{Tag: &IntLit{Value: 1}, Cases: []*CaseClause{
			{Value: &IntLit{Value: 1}, Body: []Stmt{&ExprStmt{X: lit}}},
		}},
		&ReturnStmt{},
	}}
	found := false
	Inspect(blk, func(n Node) bool {
		if n == Node(lit) {
			found = true
		}
		return true
	})
	if !found {
		t.Error("Walk did not reach the switch-case body")
	}
}

func TestWalkAllExprKinds(t *testing.T) {
	e := &CondExpr{
		Cond: &BinaryExpr{Op: token.Lt, X: &Ident{Name: "a"}, Y: &IntLit{Value: 1}},
		Then: &UnaryExpr{Op: token.Minus, X: &CastExpr{To: types.IntType, X: &FloatLit{Value: 1.5}}},
		Else: &CommaExpr{
			X: &IndexExpr{X: &Ident{Name: "arr"}, Index: &IntLit{Value: 0}},
			Y: &MemberExpr{X: &Ident{Name: "s"}, Name: "f"},
		},
	}
	names := map[string]bool{}
	Inspect(e, func(n Node) bool {
		if id, ok := n.(*Ident); ok {
			names[id.Name] = true
		}
		return true
	})
	for _, want := range []string{"a", "arr", "s"} {
		if !names[want] {
			t.Errorf("Walk missed ident %s", want)
		}
	}
}
