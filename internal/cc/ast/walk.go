package ast

// Visitor receives each node during Walk. If Visit returns false the node's
// children are skipped.
type Visitor interface {
	Visit(n Node) bool
}

type funcVisitor func(Node) bool

func (f funcVisitor) Visit(n Node) bool { return f(n) }

// Inspect walks the tree rooted at n, calling f for every node. If f
// returns false, children of that node are not visited.
func Inspect(n Node, f func(Node) bool) { Walk(funcVisitor(f), n) }

// Walk performs a depth-first pre-order traversal of the tree rooted at n.
func Walk(v Visitor, n Node) {
	if n == nil {
		return
	}
	if !v.Visit(n) {
		return
	}
	switch x := n.(type) {
	case *File:
		for _, d := range x.Decls {
			Walk(v, d)
		}
	case *Include, *TypedefDecl, *StructDecl, *BreakStmt, *ContinueStmt, *EmptyStmt,
		*IntLit, *FloatLit, *StringLit, *CharLit:
		// leaves
	case *VarDecl:
		if x.Init != nil {
			Walk(v, x.Init)
		}
		for _, e := range x.InitLst {
			Walk(v, e)
		}
	case *Param:
		// leaf
	case *FuncDecl:
		for _, p := range x.Params {
			Walk(v, p)
		}
		if x.Body != nil {
			Walk(v, x.Body)
		}
	case *BlockStmt:
		for _, s := range x.List {
			Walk(v, s)
		}
	case *DeclStmt:
		Walk(v, x.Decl)
	case *ExprStmt:
		Walk(v, x.X)
	case *IfStmt:
		Walk(v, x.Cond)
		Walk(v, x.Then)
		if x.Else != nil {
			Walk(v, x.Else)
		}
	case *ForStmt:
		if x.Init != nil {
			Walk(v, x.Init)
		}
		if x.Cond != nil {
			Walk(v, x.Cond)
		}
		if x.Post != nil {
			Walk(v, x.Post)
		}
		Walk(v, x.Body)
	case *WhileStmt:
		Walk(v, x.Cond)
		Walk(v, x.Body)
	case *DoWhileStmt:
		Walk(v, x.Body)
		Walk(v, x.Cond)
	case *SwitchStmt:
		Walk(v, x.Tag)
		for _, c := range x.Cases {
			Walk(v, c)
		}
	case *CaseClause:
		if x.Value != nil {
			Walk(v, x.Value)
		}
		for _, s := range x.Body {
			Walk(v, s)
		}
	case *ReturnStmt:
		if x.Result != nil {
			Walk(v, x.Result)
		}
	case *Ident:
		// leaf
	case *BinaryExpr:
		Walk(v, x.X)
		Walk(v, x.Y)
	case *AssignExpr:
		Walk(v, x.LHS)
		Walk(v, x.RHS)
	case *UnaryExpr:
		Walk(v, x.X)
	case *PostfixExpr:
		Walk(v, x.X)
	case *IndexExpr:
		Walk(v, x.X)
		Walk(v, x.Index)
	case *CallExpr:
		Walk(v, x.Fun)
		for _, a := range x.Args {
			Walk(v, a)
		}
	case *CastExpr:
		Walk(v, x.X)
	case *SizeofExpr:
		if x.X != nil {
			Walk(v, x.X)
		}
	case *CondExpr:
		Walk(v, x.Cond)
		Walk(v, x.Then)
		Walk(v, x.Else)
	case *CommaExpr:
		Walk(v, x.X)
		Walk(v, x.Y)
	case *MemberExpr:
		Walk(v, x.X)
	case *ParenExpr:
		Walk(v, x.X)
	}
}

// Funcs returns the function definitions in f (prototypes excluded).
func (f *File) Funcs() []*FuncDecl {
	var out []*FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}

// FindFunc returns the function definition named name, or nil.
func (f *File) FindFunc(name string) *FuncDecl {
	for _, fd := range f.Funcs() {
		if fd.Name == name {
			return fd
		}
	}
	return nil
}

// Globals returns the global variable declarations in f.
func (f *File) Globals() []*VarDecl {
	var out []*VarDecl
	for _, d := range f.Decls {
		if vd, ok := d.(*VarDecl); ok {
			out = append(out, vd)
		}
	}
	return out
}
