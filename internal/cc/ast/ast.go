// Package ast defines the intermediate representation of the hsmcc
// frontend: a typed C syntax tree in the spirit of the CETUS IR the paper
// builds on. Analysis passes walk it (Walk/Inspect), transformation passes
// rewrite it in place, and the printer serialises it back to C source.
package ast

import (
	"hsmcc/internal/cc/token"
	"hsmcc/internal/cc/types"
)

// Node is implemented by every IR node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

// File is a translation unit: includes, globals, and function definitions in
// source order.
type File struct {
	Name  string
	Decls []Node // *Include, *VarDecl, *TypedefDecl, *FuncDecl
}

// Pos returns the position of the first declaration.
func (f *File) Pos() token.Pos {
	if len(f.Decls) > 0 {
		return f.Decls[0].Pos()
	}
	return token.Pos{}
}

// Include is a preserved preprocessor include line, e.g. `#include <stdio.h>`.
type Include struct {
	Text    string // the full line
	PosInfo token.Pos
}

// Pos implements Node.
func (n *Include) Pos() token.Pos { return n.PosInfo }

// Path extracts the include operand, e.g. "stdio.h" or "RCCE.h".
func (n *Include) Path() string {
	s := n.Text
	for i := 0; i < len(s); i++ {
		if s[i] == '<' || s[i] == '"' {
			for j := i + 1; j < len(s); j++ {
				if s[j] == '>' || s[j] == '"' {
					return s[i+1 : j]
				}
			}
		}
	}
	return ""
}

// StorageClass captures the storage-class specifier on a declaration.
type StorageClass int

// Storage classes.
const (
	StorageNone StorageClass = iota
	StorageStatic
	StorageExtern
	StorageTypedef
)

// VarDecl declares one variable (globals appear in File.Decls; locals in
// DeclStmt). A multi-declarator line like `int a, b;` is split into
// separate VarDecls by the parser.
type VarDecl struct {
	Name    string
	Type    *types.Type
	Init    Expr // nil if none
	InitLst []Expr
	Storage StorageClass
	PosInfo token.Pos

	// Sym is filled by sema: the canonical symbol for this declaration.
	Sym *Symbol
}

// Pos implements Node.
func (n *VarDecl) Pos() token.Pos { return n.PosInfo }

// TypedefDecl records a typedef alias.
type TypedefDecl struct {
	Name    string
	Type    *types.Type
	PosInfo token.Pos
}

// Pos implements Node.
func (n *TypedefDecl) Pos() token.Pos { return n.PosInfo }

// StructDecl records a top-level `struct Name { ... };` definition so the
// printer can re-emit it (Type carries the laid-out fields).
type StructDecl struct {
	Type    *types.Type
	PosInfo token.Pos
}

// Pos implements Node.
func (n *StructDecl) Pos() token.Pos { return n.PosInfo }

// Param is one function parameter.
type Param struct {
	Name    string
	Type    *types.Type
	PosInfo token.Pos
	Sym     *Symbol
}

// Pos implements Node.
func (n *Param) Pos() token.Pos { return n.PosInfo }

// FuncDecl is a function definition (Body != nil) or prototype (Body == nil).
type FuncDecl struct {
	Name    string
	Result  *types.Type
	Params  []*Param
	Body    *BlockStmt
	PosInfo token.Pos
}

// Pos implements Node.
func (n *FuncDecl) Pos() token.Pos { return n.PosInfo }

// Type returns the function's type.
func (n *FuncDecl) Type() *types.Type {
	var ps []*types.Type
	for _, p := range n.Params {
		ps = append(ps, p.Type)
	}
	return types.FuncOf(n.Result, ps, false)
}

// ---------------------------------------------------------------------------
// Symbols
// ---------------------------------------------------------------------------

// SymbolKind classifies a resolved symbol.
type SymbolKind int

// Symbol kinds.
const (
	SymVar SymbolKind = iota
	SymParam
	SymFunc
)

// Symbol is the canonical identity of a declared name; sema links every
// Ident to one. Analysis results (sharing status, counts) key off *Symbol.
type Symbol struct {
	Name   string
	Kind   SymbolKind
	Type   *types.Type
	Global bool
	// Func is the enclosing function name for locals/params; "" for globals.
	Func string
	Decl Node // *VarDecl, *Param or *FuncDecl
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a brace-enclosed statement list.
type BlockStmt struct {
	List    []Stmt
	PosInfo token.Pos
}

// DeclStmt is a local declaration statement.
type DeclStmt struct {
	Decl    *VarDecl
	PosInfo token.Pos
}

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	X       Expr
	PosInfo token.Pos
}

// IfStmt is if/else.
type IfStmt struct {
	Cond    Expr
	Then    Stmt
	Else    Stmt // nil if none
	PosInfo token.Pos
}

// ForStmt is a C for loop; Init/Cond/Post may be nil. Init may be a
// DeclStmt (C99 style) or ExprStmt.
type ForStmt struct {
	Init    Stmt
	Cond    Expr
	Post    Expr
	Body    Stmt
	PosInfo token.Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond    Expr
	Body    Stmt
	PosInfo token.Pos
}

// DoWhileStmt is a do { } while (cond); loop.
type DoWhileStmt struct {
	Body    Stmt
	Cond    Expr
	PosInfo token.Pos
}

// SwitchStmt is a switch with its cases flattened in source order.
type SwitchStmt struct {
	Tag     Expr
	Cases   []*CaseClause
	PosInfo token.Pos
}

// CaseClause is one case (or default when Value is nil) of a switch.
type CaseClause struct {
	Value   Expr // nil => default
	Body    []Stmt
	PosInfo token.Pos
}

// ReturnStmt returns from a function; Result may be nil.
type ReturnStmt struct {
	Result  Expr
	PosInfo token.Pos
}

// BreakStmt breaks a loop or switch.
type BreakStmt struct{ PosInfo token.Pos }

// ContinueStmt continues a loop.
type ContinueStmt struct{ PosInfo token.Pos }

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ PosInfo token.Pos }

// Pos implementations.
func (n *BlockStmt) Pos() token.Pos    { return n.PosInfo }
func (n *DeclStmt) Pos() token.Pos     { return n.PosInfo }
func (n *ExprStmt) Pos() token.Pos     { return n.PosInfo }
func (n *IfStmt) Pos() token.Pos       { return n.PosInfo }
func (n *ForStmt) Pos() token.Pos      { return n.PosInfo }
func (n *WhileStmt) Pos() token.Pos    { return n.PosInfo }
func (n *DoWhileStmt) Pos() token.Pos  { return n.PosInfo }
func (n *SwitchStmt) Pos() token.Pos   { return n.PosInfo }
func (n *CaseClause) Pos() token.Pos   { return n.PosInfo }
func (n *ReturnStmt) Pos() token.Pos   { return n.PosInfo }
func (n *BreakStmt) Pos() token.Pos    { return n.PosInfo }
func (n *ContinueStmt) Pos() token.Pos { return n.PosInfo }
func (n *EmptyStmt) Pos() token.Pos    { return n.PosInfo }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*SwitchStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*EmptyStmt) stmtNode()    {}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Expr is implemented by all expression nodes. ResultType is filled by sema
// and may be nil before type checking.
type Expr interface {
	Node
	exprNode()
	ResultType() *types.Type
}

// Ident is an identifier occurrence. Sym is linked by sema.
type Ident struct {
	Name    string
	PosInfo token.Pos
	Sym     *Symbol
	Typ     *types.Type
}

// IntLit is an integer literal.
type IntLit struct {
	Value   int64
	Text    string
	PosInfo token.Pos
	Typ     *types.Type
}

// FloatLit is a floating literal.
type FloatLit struct {
	Value   float64
	Text    string
	PosInfo token.Pos
	Typ     *types.Type
}

// StringLit is a string literal (unescaped content).
type StringLit struct {
	Value   string
	PosInfo token.Pos
	Typ     *types.Type
}

// CharLit is a character constant.
type CharLit struct {
	Value   byte
	PosInfo token.Pos
	Typ     *types.Type
}

// BinaryExpr is a binary operation, excluding assignment.
type BinaryExpr struct {
	Op      token.Kind
	X, Y    Expr
	PosInfo token.Pos
	Typ     *types.Type
}

// AssignExpr is an assignment (= or compound op=).
type AssignExpr struct {
	Op      token.Kind // token.Assign, token.AddAssign, ...
	LHS     Expr
	RHS     Expr
	PosInfo token.Pos
	Typ     *types.Type
}

// UnaryExpr is a prefix unary operation: - + ! ~ * & ++ --.
type UnaryExpr struct {
	Op      token.Kind
	X       Expr
	PosInfo token.Pos
	Typ     *types.Type
}

// PostfixExpr is x++ or x--.
type PostfixExpr struct {
	Op      token.Kind // PlusPlus or MinusMinus
	X       Expr
	PosInfo token.Pos
	Typ     *types.Type
}

// IndexExpr is x[i].
type IndexExpr struct {
	X       Expr
	Index   Expr
	PosInfo token.Pos
	Typ     *types.Type
}

// CallExpr is a function call. Fun is usually an *Ident.
type CallExpr struct {
	Fun     Expr
	Args    []Expr
	PosInfo token.Pos
	Typ     *types.Type
}

// FuncName returns the callee name when Fun is a plain identifier, else "".
func (n *CallExpr) FuncName() string {
	if id, ok := n.Fun.(*Ident); ok {
		return id.Name
	}
	return ""
}

// CastExpr is (T)x.
type CastExpr struct {
	To      *types.Type
	X       Expr
	PosInfo token.Pos
}

// SizeofExpr is sizeof(T) or sizeof expr.
type SizeofExpr struct {
	OfType  *types.Type // non-nil for sizeof(T)
	X       Expr        // non-nil for sizeof expr
	PosInfo token.Pos
	Typ     *types.Type
}

// CondExpr is c ? a : b.
type CondExpr struct {
	Cond    Expr
	Then    Expr
	Else    Expr
	PosInfo token.Pos
	Typ     *types.Type
}

// CommaExpr is "a, b" (evaluates X then Y, yields Y).
type CommaExpr struct {
	X, Y    Expr
	PosInfo token.Pos
	Typ     *types.Type
}

// MemberExpr is x.f or x->f (Arrow true).
type MemberExpr struct {
	X       Expr
	Name    string
	Arrow   bool
	PosInfo token.Pos
	Typ     *types.Type
}

// ParenExpr preserves explicit parentheses for faithful re-printing.
type ParenExpr struct {
	X       Expr
	PosInfo token.Pos
}

// Pos implementations.
func (n *Ident) Pos() token.Pos       { return n.PosInfo }
func (n *IntLit) Pos() token.Pos      { return n.PosInfo }
func (n *FloatLit) Pos() token.Pos    { return n.PosInfo }
func (n *StringLit) Pos() token.Pos   { return n.PosInfo }
func (n *CharLit) Pos() token.Pos     { return n.PosInfo }
func (n *BinaryExpr) Pos() token.Pos  { return n.PosInfo }
func (n *AssignExpr) Pos() token.Pos  { return n.PosInfo }
func (n *UnaryExpr) Pos() token.Pos   { return n.PosInfo }
func (n *PostfixExpr) Pos() token.Pos { return n.PosInfo }
func (n *IndexExpr) Pos() token.Pos   { return n.PosInfo }
func (n *CallExpr) Pos() token.Pos    { return n.PosInfo }
func (n *CastExpr) Pos() token.Pos    { return n.PosInfo }
func (n *SizeofExpr) Pos() token.Pos  { return n.PosInfo }
func (n *CondExpr) Pos() token.Pos    { return n.PosInfo }
func (n *CommaExpr) Pos() token.Pos   { return n.PosInfo }
func (n *MemberExpr) Pos() token.Pos  { return n.PosInfo }
func (n *ParenExpr) Pos() token.Pos   { return n.PosInfo }

func (*Ident) exprNode()       {}
func (*IntLit) exprNode()      {}
func (*FloatLit) exprNode()    {}
func (*StringLit) exprNode()   {}
func (*CharLit) exprNode()     {}
func (*BinaryExpr) exprNode()  {}
func (*AssignExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*PostfixExpr) exprNode() {}
func (*IndexExpr) exprNode()   {}
func (*CallExpr) exprNode()    {}
func (*CastExpr) exprNode()    {}
func (*SizeofExpr) exprNode()  {}
func (*CondExpr) exprNode()    {}
func (*CommaExpr) exprNode()   {}
func (*MemberExpr) exprNode()  {}
func (*ParenExpr) exprNode()   {}

// ResultType implementations.
func (n *Ident) ResultType() *types.Type       { return n.Typ }
func (n *IntLit) ResultType() *types.Type      { return n.Typ }
func (n *FloatLit) ResultType() *types.Type    { return n.Typ }
func (n *StringLit) ResultType() *types.Type   { return n.Typ }
func (n *CharLit) ResultType() *types.Type     { return n.Typ }
func (n *BinaryExpr) ResultType() *types.Type  { return n.Typ }
func (n *AssignExpr) ResultType() *types.Type  { return n.Typ }
func (n *UnaryExpr) ResultType() *types.Type   { return n.Typ }
func (n *PostfixExpr) ResultType() *types.Type { return n.Typ }
func (n *IndexExpr) ResultType() *types.Type   { return n.Typ }
func (n *CallExpr) ResultType() *types.Type    { return n.Typ }
func (n *CastExpr) ResultType() *types.Type    { return n.To }
func (n *SizeofExpr) ResultType() *types.Type  { return n.Typ }
func (n *CondExpr) ResultType() *types.Type    { return n.Typ }
func (n *CommaExpr) ResultType() *types.Type   { return n.Typ }
func (n *MemberExpr) ResultType() *types.Type  { return n.Typ }
func (n *ParenExpr) ResultType() *types.Type   { return n.X.ResultType() }

// Unparen strips any ParenExpr wrappers.
func Unparen(e Expr) Expr {
	for {
		p, ok := e.(*ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
