package synth

import (
	"math"
	"strings"
	"testing"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/parser"
)

// cornerParams are hand-picked extremes of the parameter space; tests
// quantify over these plus a seeded sample.
func cornerParams() []Params {
	return []Params{
		{Seed: 1, Ops: MinOps, MemFrac: 0, LoadFrac: 0, SharedFrac: 0, Sharing: 1, SharedAddrs: 1, PrivateAddrs: 1, Rounds: 1},
		{Seed: 2, Ops: 12, MemFrac: 1, LoadFrac: 0, SharedFrac: 1, Sharing: 4, SharedAddrs: 8, PrivateAddrs: 1, Rounds: 2},
		{Seed: 3, Ops: 24, MemFrac: 1, LoadFrac: 1, SharedFrac: 1, Sharing: 2, SharedAddrs: 16, PrivateAddrs: 2, Rounds: 1},
		{Seed: 4, Ops: 48, MemFrac: 0.5, LoadFrac: 0.5, SharedFrac: 0.5, Sharing: 48, SharedAddrs: 4, PrivateAddrs: 64, Rounds: 3, Double: true},
		{Seed: 5, Ops: 4096, MemFrac: 0.75, LoadFrac: 0.7, SharedFrac: 0.3, Sharing: 8, SharedAddrs: 128, PrivateAddrs: 512, Rounds: MaxRounds},
		{Seed: 6, Ops: 36, MemFrac: 1, LoadFrac: 0.5, SharedFrac: 1, Sharing: 1, SharedAddrs: 3, PrivateAddrs: 1, Rounds: 4, Double: true},
	}
}

func sampleParams(t *testing.T, n int) []Params {
	t.Helper()
	ps := cornerParams()
	for seed := int64(0); seed < int64(n); seed++ {
		p := ParamsForSeed(seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("ParamsForSeed(%d) out of contract: %v", seed, err)
		}
		ps = append(ps, p)
	}
	return ps
}

// TestDeterministicEmission pins the generator's central contract: the
// same (seed, params) vector yields byte-identical C source, and the
// canonical key round-trips exactly.
func TestDeterministicEmission(t *testing.T) {
	for _, p := range sampleParams(t, 40) {
		for _, threads := range []int{1, 2, 4, 9} {
			a, b := p.Source(threads), p.Source(threads)
			if a != b {
				t.Fatalf("%s at %d threads: two emissions differ", p.Key(), threads)
			}
		}
		got, err := ParseKey(p.Key())
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", p.Key(), err)
		}
		if got != p {
			t.Fatalf("key round trip: %q -> %+v, want %+v", p.Key(), got, p)
		}
	}
	// Distinct seeds individuate the schedule even at identical shape
	// parameters.
	p := cornerParams()[4]
	q := p
	q.Seed++
	if p.Source(4) == q.Source(4) {
		t.Fatal("distinct seeds emitted identical kernels")
	}
	if p.Key() == q.Key() {
		t.Fatal("distinct seeds share a workload key")
	}
}

// TestKeyValidation pins ParseKey's rejection of malformed keys.
func TestKeyValidation(t *testing.T) {
	bad := []string{
		"dot",
		"synth:",
		"synth:s1:o12:m0.5:l0.5:h0.5:d2:a4:p4:r1",      // missing kind
		"synth:s1:o12:m0.5:l0.5:h0.5:d2:a4:p4:r1:kx",   // bad kind
		"synth:s1:o2:m0.5:l0.5:h0.5:d2:a4:p4:r1:ki",    // ops below MinOps
		"synth:s1:o12:m1.5:l0.5:h0.5:d2:a4:p4:r1:ki",   // fraction out of range
		"synth:s1:o12:m0.5:l0.5:h0.5:d99:a4:p4:r1:ki",  // sharing beyond 48
		"synth:o12:s1:m0.5:l0.5:h0.5:d2:a4:p4:r1:ki",   // fields swapped
		"synth:s1:o12:m0.5:l0.5:h0.5:d2:a4:p4:r1:ki:x", // trailing field
	}
	for _, k := range bad {
		if _, err := ParseKey(k); err == nil {
			t.Errorf("ParseKey(%q) accepted a malformed key", k)
		}
	}
	if IsKey("dot") || !IsKey("synth:s0:...") {
		t.Error("IsKey misclassifies")
	}
}

// TestEmissionParses ensures every sampled kernel survives the frontend
// round trip: parse(print(ir)) succeeds and is structurally equal.
func TestEmissionParses(t *testing.T) {
	for _, p := range sampleParams(t, 25) {
		for _, threads := range []int{1, 3, 8} {
			f := p.File(threads)
			src := p.Source(threads)
			re, err := parser.Parse(f.Name, src)
			if err != nil {
				t.Fatalf("%s at %d threads does not parse: %v\n%s", p.Key(), threads, err, src)
			}
			if !ast.Equal(f, re) {
				t.Fatalf("%s at %d threads: parse(print(ir)) not structurally equal", p.Key(), threads)
			}
		}
	}
}

// TestRaceFreedomInvariants structurally verifies the race-freedom
// discipline on the emitted AST across the parameter range:
//
//  1. every store in compute round r targets prv, the r%2 parity
//     buffer, or the thread's own out slot — never sht, never the
//     opposite buffer;
//  2. every store into a data array indexes an own-window base
//     (me or me*K as the leading term);
//  3. every shared read in round r comes from sht or the 1-r%2 parity
//     buffer — arrays no thread writes in that round;
//  4. sht is written only in the warm round, under the group-leader
//     guard.
func TestRaceFreedomInvariants(t *testing.T) {
	for _, p := range sampleParams(t, 60) {
		for _, threads := range []int{1, 2, 5, 48} {
			checkRaceFreedom(t, p, threads)
		}
	}
}

func checkRaceFreedom(t *testing.T, p Params, threads int) {
	t.Helper()
	f := p.File(threads)
	for _, d := range f.Decls {
		fn, ok := d.(*ast.FuncDecl)
		if !ok || fn.Name == "main" {
			continue
		}
		isWarm := fn.Name == warmName
		round := -1
		if !isWarm {
			round = int(fn.Name[len("mix")] - '0')
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignExpr)
			if !ok {
				return true
			}
			// Stores.
			if ix, ok := as.LHS.(*ast.IndexExpr); ok {
				name := ix.X.(*ast.Ident).Name
				switch {
				case !isDataArray(name) && name != outName:
					// scalar target (acc etc.)
				case name == tableName:
					if !isWarm {
						t.Fatalf("%s@%d: %s writes read-only table", p.Key(), threads, fn.Name)
					}
				case name == swapAName || name == swapBName:
					if isWarm || name != swapName(round%2) {
						t.Fatalf("%s@%d: %s writes %s (want parity buffer %s)",
							p.Key(), threads, fn.Name, name, swapName(round%2))
					}
					requireOwnWindow(t, p, threads, fn.Name, name, ix)
				case name == privName:
					requireOwnWindow(t, p, threads, fn.Name, name, ix)
				case name == outName:
					if id, ok := ix.Index.(*ast.Ident); !ok || id.Name != "me" {
						t.Fatalf("%s@%d: %s writes out at non-own index", p.Key(), threads, fn.Name)
					}
				}
			}
			// Loads within the RHS.
			ast.Inspect(as.RHS, func(m ast.Node) bool {
				ix, ok := m.(*ast.IndexExpr)
				if !ok {
					return true
				}
				name := ix.X.(*ast.Ident).Name
				if !isDataArray(name) {
					return true
				}
				if isWarm {
					t.Fatalf("%s@%d: warm round reads %s", p.Key(), threads, name)
				}
				if (name == swapAName || name == swapBName) && name != swapName(1-round%2) {
					t.Fatalf("%s@%d: %s reads %s, the buffer its own round writes",
						p.Key(), threads, fn.Name, name)
				}
				if name == privName {
					requireOwnWindow(t, p, threads, fn.Name, name, ix)
				}
				return true
			})
			return true
		})
	}
}

// requireOwnWindow asserts the index expression's leading term is the
// thread's own window base: `me` or `me * K`.
func requireOwnWindow(t *testing.T, p Params, threads int, fn, arr string, ix *ast.IndexExpr) {
	t.Helper()
	sum, ok := ix.Index.(*ast.BinaryExpr)
	if !ok {
		// Bare `j`-style index only appears in warm's own-slice loop
		// with PA == 1 windows folded; accept `me` alone.
		if id, ok := ix.Index.(*ast.Ident); ok && id.Name == "me" {
			return
		}
		t.Fatalf("%s@%d: %s accesses %s with unexpected index shape", p.Key(), threads, fn, arr)
	}
	lead := sum.X
	if pe, ok := lead.(*ast.ParenExpr); ok {
		lead = pe.X
	}
	switch l := lead.(type) {
	case *ast.Ident:
		if l.Name != "me" {
			t.Fatalf("%s@%d: %s accesses %s with base %s, want me", p.Key(), threads, fn, arr, l.Name)
		}
	case *ast.BinaryExpr:
		id, ok := l.X.(*ast.Ident)
		if !ok || id.Name != "me" {
			t.Fatalf("%s@%d: %s accesses %s with non-own window base", p.Key(), threads, fn, arr)
		}
	default:
		t.Fatalf("%s@%d: %s accesses %s with unexpected base %T", p.Key(), threads, fn, arr, lead)
	}
}

// TestMixAccounting checks the emitted instruction mix two ways: the
// AST accounting must equal the schedule's integer counts exactly
// (Rounds copies of one body), and those integer counts must land
// within nested-rounding tolerance of the requested real-valued mix.
func TestMixAccounting(t *testing.T) {
	for _, p := range sampleParams(t, 60) {
		m, err := CountMix(p.File(4))
		if err != nil {
			t.Fatalf("%s: %v", p.Key(), err)
		}
		body, nonMem, privLoad, privStore, sharedLoad, sharedStore := p.RequestedCounts()
		r := p.Rounds
		if m.NonMem != r*nonMem || m.PrivLoads != r*privLoad || m.PrivStores != r*privStore ||
			m.SharedLoads != r*sharedLoad || m.SharedStores != r*sharedStore {
			t.Fatalf("%s: AST mix %+v does not match scheduled counts ×%d rounds (%d %d %d %d %d)",
				p.Key(), m, r, nonMem, privLoad, privStore, sharedLoad, sharedStore)
		}
		if m.Total() != r*body {
			t.Fatalf("%s: total %d, want %d", p.Key(), m.Total(), r*body)
		}
		// Nested rounding: each split is within half a unit at its own
		// denominator.
		const eps = 1e-9
		if d := math.Abs(float64(m.Mem()) - float64(m.Total())*p.MemFrac); d > float64(r)*0.5+eps {
			t.Errorf("%s: mem count off by %.2f (> %.1f)", p.Key(), d, float64(r)*0.5)
		}
		if mem := m.Mem(); mem > 0 {
			if d := math.Abs(float64(m.Loads()) - float64(mem)*p.LoadFrac); d > float64(r)*0.5+eps {
				t.Errorf("%s: load count off by %.2f", p.Key(), d)
			}
			// Shared splits round within loads and stores separately:
			// tolerance one half-unit per sub-split.
			if d := math.Abs(float64(m.SharedLoads+m.SharedStores) - float64(mem)*p.SharedFrac); d > float64(r)+eps {
				t.Errorf("%s: shared count off by %.2f", p.Key(), d)
			}
		}
	}
}

// TestScaled pins the harness problem-size hook: scale acts on Ops
// only, floored at MinOps, leaving the sharing/footprint shape alone.
func TestScaled(t *testing.T) {
	p := cornerParams()[4]
	half := p.Scaled(0.5)
	if half.Ops != p.Ops/2 {
		t.Fatalf("Scaled(0.5).Ops = %d, want %d", half.Ops, p.Ops/2)
	}
	half.Ops = p.Ops
	if half != p {
		t.Fatal("Scaled changed a non-Ops field")
	}
	if got := p.Scaled(0); got != p {
		t.Fatal("Scaled(0) must be identity")
	}
	tiny := p
	tiny.Ops = MinOps
	if got := tiny.Scaled(0.01); got.Ops != MinOps {
		t.Fatalf("Scaled floor: got Ops %d, want %d", got.Ops, MinOps)
	}
}

// TestReductions pins the shrinker's contract: every candidate is a
// valid vector of strictly smaller complexity, and greedy shrinking
// with a monotone predicate reaches a deterministic fixpoint.
func TestReductions(t *testing.T) {
	for _, p := range sampleParams(t, 30) {
		for _, c := range Reductions(p) {
			if err := c.Validate(); err != nil {
				t.Fatalf("%s: reduction %+v invalid: %v", p.Key(), c, err)
			}
			if c.Complexity() >= p.Complexity() {
				t.Fatalf("%s: reduction %+v does not shrink complexity", p.Key(), c)
			}
		}
	}
	// A predicate that keeps failing as long as sharing traffic exists
	// must shrink to the minimal sharing-bearing vector, identically on
	// repeat runs.
	p := Params{Seed: 11, Ops: 48, MemFrac: 1, LoadFrac: 0.5, SharedFrac: 1,
		Sharing: 8, SharedAddrs: 32, PrivateAddrs: 16, Rounds: 3, Double: true}
	fails := func(c Params) bool { return c.MemFrac > 0 && c.SharedFrac > 0 }
	a := Shrink(p, fails)
	b := Shrink(p, fails)
	if a != b {
		t.Fatalf("Shrink not deterministic: %+v vs %+v", a, b)
	}
	if !fails(a) {
		t.Fatalf("Shrink left the failing set: %+v", a)
	}
	if a.Ops != MinOps || a.Rounds != 1 || a.Sharing != 1 || a.Double {
		t.Fatalf("Shrink under-reduced: %+v", a)
	}
}

// TestArrayEmissionMatchesUsage checks that exactly the arrays the
// schedule touches are declared: a pure-compute kernel carries only
// out, a loads-only shared kernel carries no parity buffers.
func TestArrayEmissionMatchesUsage(t *testing.T) {
	pure := cornerParams()[0] // MemFrac 0
	src := pure.Source(4)
	for _, name := range []string{tableName, swapAName, swapBName, privName} {
		if strings.Contains(src, name) {
			t.Errorf("pure-compute kernel declares %s:\n%s", name, src)
		}
	}
	loads := cornerParams()[2] // LoadFrac 1, SharedFrac 1: table only
	src = loads.Source(4)
	if !strings.Contains(src, tableName) {
		t.Error("shared-loads kernel missing read-only table")
	}
	for _, name := range []string{swapAName, swapBName, privName} {
		if strings.Contains(src, name) {
			t.Errorf("loads-only kernel declares %s", name)
		}
	}
	stores := cornerParams()[1] // LoadFrac 0, SharedFrac 1: buffers only
	src = stores.Source(4)
	if !strings.Contains(src, swapAName) || !strings.Contains(src, swapBName) {
		t.Error("shared-stores kernel missing parity buffers")
	}
	if strings.Contains(src, tableName) {
		t.Error("stores-only kernel declares the read-only table")
	}
}
