package synth

// Complexity is the measure parameter-vector shrinking minimises: a
// monotone size of the vector, chosen so every Reductions candidate is
// strictly smaller and greedy shrinking terminates.
func (p Params) Complexity() int {
	n := p.Ops + p.Rounds + p.Sharing + p.SharedAddrs + p.PrivateAddrs
	if p.MemFrac > 0 {
		n++
	}
	if p.SharedFrac > 0 {
		n++
	}
	if p.LoadFrac < 1 {
		n++
	}
	if p.Double {
		n++
	}
	return n
}

// Reductions enumerates one-step-simpler candidate vectors, all valid.
// This is the synth analogue of the conformance spec shrinker's
// reductions: instead of dropping AST pieces it moves the vector toward
// the trivial corner of the parameter space — fewer ops and rounds,
// smaller footprints, degree-1 sharing, a loads-only all-private mix,
// int elements — while the failing cell keeps reproducing.
func Reductions(p Params) []Params {
	var out []Params
	add := func(f func(*Params)) {
		c := p
		f(&c)
		if c.Validate() == nil && c.Complexity() < p.Complexity() {
			out = append(out, c)
		}
	}
	// Cheap semantic simplifications first: a divergence observable
	// without shared traffic (or without stores, or on ints) should shed
	// that machinery before the structural halving commits to it.
	add(func(c *Params) { c.SharedFrac = 0 })
	add(func(c *Params) { c.MemFrac = 0 })
	add(func(c *Params) { c.LoadFrac = 1 })
	add(func(c *Params) { c.Double = false })
	add(func(c *Params) { c.Rounds-- })
	add(func(c *Params) { c.Sharing = 1 })
	add(func(c *Params) { c.Sharing /= 2 })
	add(func(c *Params) { c.Ops /= 2 })
	add(func(c *Params) { c.Ops = MinOps })
	add(func(c *Params) { c.SharedAddrs /= 2 })
	add(func(c *Params) { c.SharedAddrs = 1 })
	add(func(c *Params) { c.PrivateAddrs /= 2 })
	add(func(c *Params) { c.PrivateAddrs = 1 })
	return out
}

// Shrink greedily reduces a failing vector to a minimal reproducer:
// first-improvement descent over Reductions, keeping any candidate for
// which fails still holds, bounded by maxShrinkRun evaluations (each
// evaluation re-runs both backends at the failing cell).
func Shrink(p Params, fails func(Params) bool) Params {
	evals := 0
	cur := p
	for {
		improved := false
		for _, cand := range Reductions(cur) {
			if evals >= maxShrinkRun {
				return cur
			}
			evals++
			if fails(cand) {
				cur = cand
				improved = true
				break
			}
		}
		if !improved {
			return cur
		}
	}
}
