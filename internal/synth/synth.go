// Package synth is the parameterized synthetic-workload generator: a
// seeded, deterministic emitter of race-free Pthread C kernels driven
// by a continuous parameter vector instead of a discrete kernel
// grammar. Where internal/conformance explores program *shapes*, synth
// explores the *memory-behaviour plane* the paper's placement question
// actually lives on — fraction of memory operations, load/store ratio,
// degree of sharing per address, shared-vs-private address counts and
// per-thread footprint — the tunable axes of Graphite's synthetic
// benchmark, lifted to whole pthread programs.
//
// A Params value is a complete workload identity: its canonical Key()
// string round-trips through ParseKey, serves as the bench workload key
// (so every baseline/translation/profile cache entry and grid cell is
// keyed by the full parameter vector), and is the repro handle printed
// by hsmconf -synth. Emission is a pure function of (Params, threads):
// the same vector always yields byte-identical C source.
//
// Race freedom is by construction, the same discipline the conformance
// generator uses: every store in a compute round targets the storing
// thread's own slice (private slots, or the thread's own window of the
// round-parity write buffer), shared reads touch only arrays no thread
// writes in the same round (the read-only table, or the opposite-parity
// buffer), and rounds are separated by pthread_join barriers.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// Params is the synthetic-workload parameter vector. Fractions are in
// [0,1]; counts are positive. The vector (not the seed alone) is the
// workload identity — Seed only picks the concrete operation schedule
// and constants within the requested mix.
type Params struct {
	Seed int64 `json:"seed"`
	// Ops is the per-thread operation budget of each compute round (the
	// instruction-mix denominator; Graphite's total_instructions_per_core).
	Ops int `json:"ops"`
	// MemFrac is the fraction of operations that access memory.
	MemFrac float64 `json:"mem_frac"`
	// LoadFrac is the fraction of memory operations that are loads (the
	// rest are stores).
	LoadFrac float64 `json:"load_frac"`
	// SharedFrac is the fraction of memory operations that touch shared
	// addresses (the rest touch the thread's private footprint).
	SharedFrac float64 `json:"shared_frac"`
	// Sharing is the degree of sharing: how many threads share one
	// window of shared addresses (clamped to the thread count at
	// emission; Graphite's degree_of_sharing).
	Sharing int `json:"sharing"`
	// SharedAddrs is the shared addresses per sharing group.
	SharedAddrs int `json:"shared_addrs"`
	// PrivateAddrs is the per-thread private footprint in elements.
	PrivateAddrs int `json:"private_addrs"`
	// Rounds is the number of barrier-separated compute launch/join
	// rounds (each becomes one RCCE phase after translation).
	Rounds int `json:"rounds"`
	// Double selects double-typed data arrays (int otherwise).
	Double bool `json:"double"`
}

// Bounds enforced by Validate. MaxOps keeps a single kernel affordable
// under the full conformance matrix; MaxSharing matches the SCC's 48
// cores.
const (
	MinOps       = 4
	MaxOps       = 1 << 16
	MaxSharing   = 48
	MaxAddrs     = 1 << 12
	MaxRounds    = 8
	keyPrefix    = "synth:"
	fracGrid     = 20 // ParamsForSeed draws fractions on a 1/20 grid
	intModulus   = 9973
	maxShrinkRun = 200 // Shrink's candidate-evaluation bound
)

// Validate rejects vectors outside the generator's contract.
func (p Params) Validate() error {
	switch {
	case p.Ops < MinOps || p.Ops > MaxOps:
		return fmt.Errorf("synth: ops %d out of range [%d,%d]", p.Ops, MinOps, MaxOps)
	case p.MemFrac < 0 || p.MemFrac > 1:
		return fmt.Errorf("synth: mem_frac %v out of range [0,1]", p.MemFrac)
	case p.LoadFrac < 0 || p.LoadFrac > 1:
		return fmt.Errorf("synth: load_frac %v out of range [0,1]", p.LoadFrac)
	case p.SharedFrac < 0 || p.SharedFrac > 1:
		return fmt.Errorf("synth: shared_frac %v out of range [0,1]", p.SharedFrac)
	case p.Sharing < 1 || p.Sharing > MaxSharing:
		return fmt.Errorf("synth: sharing %d out of range [1,%d]", p.Sharing, MaxSharing)
	case p.SharedAddrs < 1 || p.SharedAddrs > MaxAddrs:
		return fmt.Errorf("synth: shared_addrs %d out of range [1,%d]", p.SharedAddrs, MaxAddrs)
	case p.PrivateAddrs < 1 || p.PrivateAddrs > MaxAddrs:
		return fmt.Errorf("synth: private_addrs %d out of range [1,%d]", p.PrivateAddrs, MaxAddrs)
	case p.Rounds < 1 || p.Rounds > MaxRounds:
		return fmt.Errorf("synth: rounds %d out of range [1,%d]", p.Rounds, MaxRounds)
	}
	return nil
}

// Key renders the canonical workload key: a `synth:`-prefixed, fully
// self-describing encoding of the parameter vector. Because the key IS
// the spec digest, anything keyed by workload key — bench baseline,
// translation, profile and placement caches, grid cell identities,
// report rows — distinguishes synthetic cells from corpus workloads and
// from each other by construction.
func (p Params) Key() string {
	kind := "i"
	if p.Double {
		kind = "f"
	}
	return fmt.Sprintf("%ss%d:o%d:m%s:l%s:h%s:d%d:a%d:p%d:r%d:k%s",
		keyPrefix, p.Seed, p.Ops,
		fracText(p.MemFrac), fracText(p.LoadFrac), fracText(p.SharedFrac),
		p.Sharing, p.SharedAddrs, p.PrivateAddrs, p.Rounds, kind)
}

func fracText(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// IsKey reports whether key names a synthetic workload.
func IsKey(key string) bool { return strings.HasPrefix(key, keyPrefix) }

// ParseKey decodes a canonical synth key back into its parameter
// vector, validating it. Key and ParseKey are exact inverses for every
// valid vector.
func ParseKey(key string) (Params, error) {
	var p Params
	if !IsKey(key) {
		return p, fmt.Errorf("synth: %q is not a synth: workload key", key)
	}
	fields := strings.Split(strings.TrimPrefix(key, keyPrefix), ":")
	if len(fields) != 10 {
		return p, fmt.Errorf("synth: key %q has %d fields, want 10", key, len(fields))
	}
	var err error
	getInt := func(f, tag string) int {
		if err != nil {
			return 0
		}
		if !strings.HasPrefix(f, tag) {
			err = fmt.Errorf("synth: key %q: field %q is not %s<value>", key, f, tag)
			return 0
		}
		v, convErr := strconv.Atoi(f[len(tag):])
		if convErr != nil {
			err = fmt.Errorf("synth: key %q: %v", key, convErr)
		}
		return v
	}
	getFrac := func(f, tag string) float64 {
		if err != nil {
			return 0
		}
		if !strings.HasPrefix(f, tag) {
			err = fmt.Errorf("synth: key %q: field %q is not %s<value>", key, f, tag)
			return 0
		}
		v, convErr := strconv.ParseFloat(f[len(tag):], 64)
		if convErr != nil {
			err = fmt.Errorf("synth: key %q: %v", key, convErr)
		}
		return v
	}
	seed := getInt(fields[0], "s")
	p.Seed = int64(seed)
	p.Ops = getInt(fields[1], "o")
	p.MemFrac = getFrac(fields[2], "m")
	p.LoadFrac = getFrac(fields[3], "l")
	p.SharedFrac = getFrac(fields[4], "h")
	p.Sharing = getInt(fields[5], "d")
	p.SharedAddrs = getInt(fields[6], "a")
	p.PrivateAddrs = getInt(fields[7], "p")
	p.Rounds = getInt(fields[8], "r")
	switch fields[9] {
	case "ki":
		p.Double = false
	case "kf":
		p.Double = true
	default:
		err = fmt.Errorf("synth: key %q: bad kind field %q", key, fields[9])
	}
	if err != nil {
		return p, err
	}
	return p, p.Validate()
}

// ParamsForSeed deterministically derives a valid parameter vector from
// a single seed — the conformance-mode sampler, sized so a full default
// matrix check per kernel stays cheap. Fractions land on a 1/20 grid
// (keeps keys short and shrink steps meaningful).
func ParamsForSeed(seed int64) Params {
	rng := rand.New(rand.NewSource(seed))
	frac := func() float64 { return float64(rng.Intn(fracGrid+1)) / fracGrid }
	return Params{
		Seed:         seed,
		Ops:          12 * (1 + rng.Intn(6)),
		MemFrac:      frac(),
		LoadFrac:     frac(),
		SharedFrac:   frac(),
		Sharing:      1 + rng.Intn(8),
		SharedAddrs:  2 + rng.Intn(31),
		PrivateAddrs: 1 + rng.Intn(32),
		Rounds:       1 + rng.Intn(3),
		Double:       rng.Intn(2) == 1,
	}
}

// Scaled returns the vector with the operation budget scaled by the
// bench harness's problem-size factor (floored at MinOps). Scale acts
// on Ops only: the sharing/footprint shape of the workload is the axis
// under study and must not drift with problem size.
func (p Params) Scaled(scale float64) Params {
	if scale > 0 && scale != 1.0 {
		p.Ops = int(math.Round(float64(p.Ops) * scale))
	}
	if p.Ops < MinOps {
		p.Ops = MinOps
	}
	if p.Ops > MaxOps {
		p.Ops = MaxOps
	}
	return p
}

// Name is the human-readable workload title used in reports.
func (p Params) Name() string {
	kind := "int"
	if p.Double {
		kind = "double"
	}
	return fmt.Sprintf("synthetic %s mix (mem %.2f, load %.2f, shared %.2f, sharing %d, footprint %d+%d, %d rounds)",
		kind, p.MemFrac, p.LoadFrac, p.SharedFrac, p.Sharing, p.SharedAddrs, p.PrivateAddrs, p.Rounds)
}
