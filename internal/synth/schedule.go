package synth

import (
	"math"
	"math/rand"
)

// opKind classifies one operation of a round's loop body. The kinds are
// exactly the instruction-mix buckets the parameter vector requests and
// CountMix accounts for.
type opKind int

const (
	opNonMem opKind = iota
	opPrivLoad
	opPrivStore
	opSharedLoad
	opSharedStore
)

// op is one scheduled operation: a kind plus the seeded constants that
// individuate it (index stride/offset, arithmetic constants, and for
// shared loads whether the source is the read-only table or the
// opposite-parity write buffer).
type op struct {
	kind   opKind
	stride int // index stride multiplier (≥1)
	off    int // index offset (≥0)
	c1, c2 int // int arithmetic constants
	f1, f2 int // double constant selectors (indices into fixed tables)
	fromSW bool
}

// maxBodyOps caps the emitted loop-body length; larger Ops budgets are
// realised by iterating the body (Graphite replays a fixed random
// instruction sequence the same way).
const maxBodyOps = 12

// schedule is the complete seeded operation plan: one body per compute
// round, iterated iters times.
type schedule struct {
	rounds [][]op
	iters  int
	counts mixCounts
}

// mixCounts is the integer realisation of the requested fractions over
// one loop body.
type mixCounts struct {
	body                   int
	nonMem                 int
	privLoad, privStore    int
	sharedLoad, sharedStore int
}

func (c mixCounts) loads() int  { return c.privLoad + c.sharedLoad }
func (c mixCounts) stores() int { return c.privStore + c.sharedStore }
func (c mixCounts) mem() int    { return c.loads() + c.stores() }

// splitCounts rounds the requested fractions to integer counts over a
// body of n operations. Rounding is nested (mem first, then load within
// mem, then shared within each of load/store) so every bucket is within
// half a unit of its exact value at its own denominator.
func splitCounts(p Params, n int) mixCounts {
	c := mixCounts{body: n}
	mem := roundClamp(float64(n)*p.MemFrac, n)
	load := roundClamp(float64(mem)*p.LoadFrac, mem)
	store := mem - load
	c.sharedLoad = roundClamp(float64(load)*p.SharedFrac, load)
	c.privLoad = load - c.sharedLoad
	c.sharedStore = roundClamp(float64(store)*p.SharedFrac, store)
	c.privStore = store - c.sharedStore
	c.nonMem = n - mem
	return c
}

func roundClamp(v float64, hi int) int {
	n := int(math.Round(v))
	if n < 0 {
		n = 0
	}
	if n > hi {
		n = hi
	}
	return n
}

// plan derives the seeded operation schedule from the vector. The plan
// depends only on Params — never on the thread count — so one vector
// runs the same logical program at every cores value of a sweep.
func (p Params) plan() *schedule {
	rng := rand.New(rand.NewSource(p.Seed ^ 0x73796e7468)) // distinct stream from ParamsForSeed
	body := p.Ops
	if body > maxBodyOps {
		body = maxBodyOps
	}
	s := &schedule{iters: p.Ops / body, counts: splitCounts(p, body)}
	for r := 0; r < p.Rounds; r++ {
		s.rounds = append(s.rounds, p.roundBody(rng, s.counts))
	}
	return s
}

// roundBody lays out one round's loop body: the counted kinds in a
// seeded order, each with seeded constants. Shared loads alternate
// between the read-only table and the opposite-parity write buffer
// (when stores populate one), starting with the table so it is always
// live when shared loads exist.
func (p Params) roundBody(rng *rand.Rand, c mixCounts) []op {
	kinds := make([]opKind, 0, c.body)
	for i := 0; i < c.nonMem; i++ {
		kinds = append(kinds, opNonMem)
	}
	for i := 0; i < c.privLoad; i++ {
		kinds = append(kinds, opPrivLoad)
	}
	for i := 0; i < c.privStore; i++ {
		kinds = append(kinds, opPrivStore)
	}
	for i := 0; i < c.sharedLoad; i++ {
		kinds = append(kinds, opSharedLoad)
	}
	for i := 0; i < c.sharedStore; i++ {
		kinds = append(kinds, opSharedStore)
	}
	rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })
	swLive := c.sharedStore > 0
	sharedLoads := 0
	ops := make([]op, 0, len(kinds))
	for _, k := range kinds {
		o := op{
			kind:   k,
			stride: 1 + rng.Intn(7),
			off:    rng.Intn(8),
			c1:     2 + rng.Intn(4),
			c2:     rng.Intn(10),
			f1:     rng.Intn(len(doubleScales)),
			f2:     rng.Intn(len(doubleOffsets)),
		}
		if k == opSharedLoad {
			o.fromSW = swLive && sharedLoads%2 == 1
			sharedLoads++
		}
		ops = append(ops, o)
	}
	return ops
}

// Double-kind constant tables. Scales are < 1 and offsets small so
// accumulator and element values stay bounded (see emit.go's invariant
// note); values are exact in binary so both backends print identical
// %.6f checksums trivially.
var (
	doubleScales  = []float64{0.25, 0.5, 0.75}
	doubleOffsets = []float64{0.5, 1.0, 1.5, 2.0, 2.5}
)

// usage reports which data arrays the schedule touches, which decides
// what the emitter declares, initialises and checksums.
type usage struct {
	priv, table, swap bool
}

func (s *schedule) usage() usage {
	var u usage
	for _, body := range s.rounds {
		for _, o := range body {
			switch o.kind {
			case opPrivLoad, opPrivStore:
				u.priv = true
			case opSharedStore:
				u.swap = true
			case opSharedLoad:
				if o.fromSW {
					u.swap = true
				} else {
					u.table = true
				}
			}
		}
	}
	return u
}
