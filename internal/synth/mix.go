package synth

import (
	"fmt"
	"strings"

	"hsmcc/internal/cc/ast"
)

// Mix is the instruction-mix accounting of an emitted kernel: operation
// counts per bucket over the compute-round loop bodies (the part of the
// program the parameter vector's fractions govern).
type Mix struct {
	NonMem       int `json:"non_mem"`
	PrivLoads    int `json:"priv_loads"`
	PrivStores   int `json:"priv_stores"`
	SharedLoads  int `json:"shared_loads"`
	SharedStores int `json:"shared_stores"`
}

func (m Mix) Loads() int  { return m.PrivLoads + m.SharedLoads }
func (m Mix) Stores() int { return m.PrivStores + m.SharedStores }
func (m Mix) Mem() int    { return m.Loads() + m.Stores() }
func (m Mix) Total() int  { return m.Mem() + m.NonMem }

// MemFrac is the realised fraction of operations that access memory.
func (m Mix) MemFrac() float64 { return ratio(m.Mem(), m.Total()) }

// LoadFrac is the realised fraction of memory operations that are loads.
func (m Mix) LoadFrac() float64 { return ratio(m.Loads(), m.Mem()) }

// SharedFrac is the realised fraction of memory operations on shared
// addresses.
func (m Mix) SharedFrac() float64 { return ratio(m.SharedLoads+m.SharedStores, m.Mem()) }

func ratio(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

func isSharedArray(name string) bool {
	return name == tableName || name == swapAName || name == swapBName
}

func isDataArray(name string) bool {
	return isSharedArray(name) || name == privName
}

// CountMix statically accounts the instruction mix of an emitted kernel
// by walking the compute rounds' loop bodies: each statement is one
// operation, classified as a store when its assignment target indexes a
// data array, a load when its right-hand side reads one, and non-memory
// otherwise. This is the accounting the mix property test checks the
// realised fractions against.
func CountMix(f *ast.File) (Mix, error) {
	var m Mix
	rounds := 0
	for _, d := range f.Decls {
		fn, ok := d.(*ast.FuncDecl)
		if !ok || !strings.HasPrefix(fn.Name, "mix") || fn.Body == nil {
			continue
		}
		rounds++
		loop := findLoop(fn.Body)
		if loop == nil {
			continue // a round whose budget emitted no body
		}
		for _, st := range loopBody(loop) {
			kind, name, err := classify(st)
			if err != nil {
				return m, fmt.Errorf("synth: %s: %w", fn.Name, err)
			}
			switch kind {
			case opNonMem:
				m.NonMem++
			case opPrivLoad, opSharedLoad:
				if name == privName {
					m.PrivLoads++
				} else {
					m.SharedLoads++
				}
			case opPrivStore, opSharedStore:
				if name == privName {
					m.PrivStores++
				} else {
					m.SharedStores++
				}
			}
		}
	}
	if rounds == 0 {
		return m, fmt.Errorf("synth: no mix round found in %s", f.Name)
	}
	return m, nil
}

func findLoop(b *ast.BlockStmt) *ast.ForStmt {
	for _, st := range b.List {
		if f, ok := st.(*ast.ForStmt); ok {
			return f
		}
	}
	return nil
}

func loopBody(f *ast.ForStmt) []ast.Stmt {
	if blk, ok := f.Body.(*ast.BlockStmt); ok {
		return blk.List
	}
	return []ast.Stmt{f.Body}
}

// classify maps one loop-body statement to its operation bucket and the
// data array involved. A statement that both stores to and loads from
// data arrays would be ambiguous — the emitter never produces one (store
// right-hand sides are array-free by construction) and classify rejects
// it so the accounting can't silently miscount.
func classify(st ast.Stmt) (opKind, string, error) {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return opNonMem, "", fmt.Errorf("unexpected statement form %T in mix loop", st)
	}
	as, ok := es.X.(*ast.AssignExpr)
	if !ok {
		return opNonMem, "", fmt.Errorf("unexpected expression form %T in mix loop", es.X)
	}
	storeName := ""
	if ix, ok := as.LHS.(*ast.IndexExpr); ok {
		if id, ok := ix.X.(*ast.Ident); ok && isDataArray(id.Name) {
			storeName = id.Name
		}
	}
	loadName := ""
	loads := 0
	ast.Inspect(as.RHS, func(n ast.Node) bool {
		if ix, ok := n.(*ast.IndexExpr); ok {
			if id, ok := ix.X.(*ast.Ident); ok && isDataArray(id.Name) {
				loadName = id.Name
				loads++
			}
		}
		return true
	})
	switch {
	case storeName != "" && loads > 0:
		return opNonMem, "", fmt.Errorf("statement both stores to %s and loads from %s", storeName, loadName)
	case loads > 1:
		return opNonMem, "", fmt.Errorf("statement performs %d loads, want at most 1", loads)
	case storeName == privName:
		return opPrivStore, storeName, nil
	case storeName != "":
		return opSharedStore, storeName, nil
	case loadName == privName:
		return opPrivLoad, loadName, nil
	case loadName != "":
		return opSharedLoad, loadName, nil
	}
	return opNonMem, "", nil
}

// RequestedCounts exposes the integer mix the schedule realises for a
// vector (per loop body, before iteration), so tests can compare the
// AST accounting against the request with exact rounding semantics.
func (p Params) RequestedCounts() (body, nonMem, privLoad, privStore, sharedLoad, sharedStore int) {
	s := p.plan()
	c := s.counts
	return c.body, c.nonMem, c.privLoad, c.privStore, c.sharedLoad, c.sharedStore
}
