package synth

import (
	"fmt"
	"strconv"
	"strings"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/printer"
	"hsmcc/internal/cc/token"
	"hsmcc/internal/cc/types"
)

// Array and function names of the emitted kernel shape.
//
//	sht — read-only shared table, one window of SharedAddrs per sharing
//	      group, written once by each group's leader in the warm round
//	swa/swb — parity-alternating shared write buffers: compute round r
//	      stores into its own SharedAddrs-wide window of the r%2 buffer
//	      and loads from its group's window of the other one, so no
//	      round ever reads a buffer any thread is writing
//	prv — per-thread private footprint of PrivateAddrs elements
//	out — one accumulator result slot per thread, summed across rounds
const (
	tableName = "sht"
	swapAName = "swa"
	swapBName = "swb"
	privName  = "prv"
	outName   = "out"
	warmName  = "warm"
)

func mixName(r int) string { return fmt.Sprintf("mix%d", r) }
func swapName(parity int) string {
	if parity == 0 {
		return swapAName
	}
	return swapBName
}

// Source renders the kernel as Pthread C source for a thread count.
// Emission is a pure function: the same (Params, threads) pair always
// produces byte-identical source.
func (p Params) Source(threads int) string {
	return printer.Print(p.File(threads))
}

// layout is the thread-count-resolved geometry of one emission.
type layout struct {
	threads int
	deg     int // effective sharing degree: min(Sharing, threads)
	groups  int // ceil(threads/deg) sharing groups
	sa, pa  int
}

func (p Params) layoutFor(threads int) layout {
	if threads < 1 {
		threads = 1
	}
	d := p.Sharing
	if d > threads {
		d = threads
	}
	if d < 1 {
		d = 1
	}
	return layout{
		threads: threads,
		deg:     d,
		groups:  (threads + d - 1) / d,
		sa:      p.SharedAddrs,
		pa:      p.PrivateAddrs,
	}
}

// File builds the kernel's IR for a thread count, following the corpus
// idiom the translator is specified over: global shared arrays, thread
// functions taking their ID through the void* argument, canonical
// launch/join loops in main, and per-array checksum prints.
//
// Value-boundedness invariant (what keeps arithmetic exact and
// overflow-free at any Ops budget): int operations reduce mod a fixed
// prime after every accumulate, so acc and every element stay in
// [0, intModulus); double operations only ever scale by constants < 1
// and add offsets ≤ 2.5, giving a fixpoint bound of 10 on acc and all
// elements, far below any precision loss at %.6f.
func (p Params) File(threads int) *ast.File {
	s := p.plan()
	u := s.usage()
	lay := p.layoutFor(threads)
	em := &synthEmitter{p: p, s: s, u: u, lay: lay}

	f := &ast.File{Name: strings.NewReplacer(":", "_", ".", "_").Replace(p.Key()) + ".c"}
	f.Decls = append(f.Decls,
		&ast.Include{Text: "#include <stdio.h>"},
		&ast.Include{Text: "#include <pthread.h>"},
	)
	for _, a := range em.arrays() {
		f.Decls = append(f.Decls, &ast.VarDecl{Name: a.name, Type: types.ArrayOf(a.elem, a.size)})
	}
	if em.hasWarm() {
		f.Decls = append(f.Decls, em.warmFunc())
	}
	for r := 0; r < p.Rounds; r++ {
		f.Decls = append(f.Decls, em.mixFunc(r))
	}
	f.Decls = append(f.Decls, em.mainFunc())
	return f
}

type synthEmitter struct {
	p   Params
	s   *schedule
	u   usage
	lay layout
}

func (em *synthEmitter) elem() *types.Type {
	if em.p.Double {
		return types.DoubleType
	}
	return types.IntType
}

type arrayDecl struct {
	name string
	elem *types.Type
	size int
}

// arrays lists the declared data arrays in checksum order. Only arrays
// the schedule touches exist — out always does.
func (em *synthEmitter) arrays() []arrayDecl {
	lay := em.lay
	var out []arrayDecl
	out = append(out, arrayDecl{outName, em.elem(), lay.threads})
	if em.u.table {
		out = append(out, arrayDecl{tableName, em.elem(), lay.groups * lay.sa})
	}
	if em.u.swap {
		size := lay.groups * lay.deg * lay.sa
		out = append(out, arrayDecl{swapAName, em.elem(), size})
		out = append(out, arrayDecl{swapBName, em.elem(), size})
	}
	if em.u.priv {
		out = append(out, arrayDecl{privName, em.elem(), lay.threads * lay.pa})
	}
	return out
}

func (em *synthEmitter) hasWarm() bool { return em.u.priv || em.u.table }

// warmFunc emits the initialisation round: every thread fills its own
// private slice, and each sharing group's leader (the unique thread
// with me % deg == 0 in the group) fills the group's read-only table
// window — one writer per element, race-free.
func (em *synthEmitter) warmFunc() *ast.FuncDecl {
	lay := em.lay
	var body []ast.Stmt
	body = append(body, sDecl("me", types.IntType,
		&ast.CastExpr{To: types.IntType, X: sIdent("tid")}))
	body = append(body, sDecl("j", types.IntType, nil))
	fill := func(target ast.Expr) ast.Stmt {
		// (me*7 + j*3) keeps windows distinguishable; the value form is
		// bounded per the emitter invariant.
		mixIdx := sBin(token.Plus,
			sBin(token.Star, sIdent("me"), sInt(7)),
			sBin(token.Star, sIdent("j"), sInt(3)))
		var val ast.Expr
		if em.p.Double {
			val = sBin(token.Plus,
				sBin(token.Star,
					&ast.CastExpr{To: types.DoubleType, X: &ast.ParenExpr{X: sBin(token.Percent, &ast.ParenExpr{X: mixIdx}, sInt(8))}},
					sFloat(0.25)),
				sFloat(0.5))
		} else {
			val = &ast.ParenExpr{X: sBin(token.Percent,
				&ast.ParenExpr{X: sBin(token.Plus, mixIdx, sInt(1))}, sInt(intModulus))}
		}
		return sExpr(sAssign(target, val))
	}
	forJ := func(bound int, st ast.Stmt) ast.Stmt {
		return &ast.ForStmt{
			Init: sExpr(sAssign(sIdent("j"), sInt(0))),
			Cond: sBin(token.Lt, sIdent("j"), sInt(int64(bound))),
			Post: &ast.PostfixExpr{Op: token.PlusPlus, X: sIdent("j")},
			Body: st,
		}
	}
	if em.u.priv {
		target := &ast.IndexExpr{X: sIdent(privName),
			Index: sBin(token.Plus, sMul(sIdent("me"), lay.pa), sIdent("j"))}
		body = append(body, forJ(lay.pa, fill(target)))
	}
	if em.u.table {
		target := &ast.IndexExpr{X: sIdent(tableName),
			Index: sBin(token.Plus, sMul(em.groupOf("me"), lay.sa), sIdent("j"))}
		loop := forJ(lay.sa, fill(target))
		body = append(body, &ast.IfStmt{
			Cond: sBin(token.EqEq,
				&ast.ParenExpr{X: sBin(token.Percent, sIdent("me"), sInt(int64(lay.deg)))},
				sInt(0)),
			Then: &ast.BlockStmt{List: []ast.Stmt{loop}},
		})
	}
	body = append(body, sCall("pthread_exit", sIdent("NULL")))
	return threadFuncDecl(warmName, body)
}

// groupOf is the sharing-group id of a thread: me / deg (folded to me
// when every thread is its own group).
func (em *synthEmitter) groupOf(name string) ast.Expr {
	if em.lay.deg == 1 {
		return sIdent(name)
	}
	return &ast.ParenExpr{X: sBin(token.Slash, sIdent(name), sInt(int64(em.lay.deg)))}
}

// mixFunc emits compute round r: the accumulator loop iterating the
// round's scheduled operation body, then the thread's result fold into
// its own out slot.
func (em *synthEmitter) mixFunc(r int) *ast.FuncDecl {
	var body []ast.Stmt
	body = append(body, sDecl("me", types.IntType,
		&ast.CastExpr{To: types.IntType, X: sIdent("tid")}))
	if em.p.Double {
		body = append(body, sDecl("acc", types.DoubleType, sFloat(0.5)))
	} else {
		body = append(body, sDecl("acc", types.IntType, sInt(int64(1+r))))
	}
	body = append(body, sDecl("i", types.IntType, nil))
	var inner []ast.Stmt
	for _, o := range em.s.rounds[r] {
		inner = append(inner, em.opStmt(o, r))
	}
	if len(inner) > 0 {
		body = append(body, &ast.ForStmt{
			Init: sExpr(sAssign(sIdent("i"), sInt(0))),
			Cond: sBin(token.Lt, sIdent("i"), sInt(int64(em.s.iters))),
			Post: &ast.PostfixExpr{Op: token.PlusPlus, X: sIdent("i")},
			Body: sNested(inner),
		})
	}
	slot := &ast.IndexExpr{X: sIdent(outName), Index: sIdent("me")}
	body = append(body, sExpr(sAssign(slot,
		sBin(token.Plus, &ast.IndexExpr{X: sIdent(outName), Index: sIdent("me")}, sIdent("acc")))))
	body = append(body, sCall("pthread_exit", sIdent("NULL")))
	return threadFuncDecl(mixName(r), body)
}

// wrapIdx is the bounded in-window offset (i*stride + off) % width.
func wrapIdx(o op, width int) ast.Expr {
	lin := sBin(token.Plus, sMul(sIdent("i"), o.stride), sInt(int64(o.off)))
	return &ast.ParenExpr{X: sBin(token.Percent, &ast.ParenExpr{X: lin}, sInt(int64(width)))}
}

// opStmt lowers one scheduled operation of round r to a statement.
// Stores target the thread's own window (me-based base), loads from
// shared state only touch arrays stable in this round — the race-
// freedom-by-construction discipline.
func (em *synthEmitter) opStmt(o op, r int) ast.Stmt {
	lay := em.lay
	switch o.kind {
	case opNonMem:
		if em.p.Double {
			// acc = acc * F1 + F2;
			return sExpr(sAssign(sIdent("acc"), sBin(token.Plus,
				sBin(token.Star, sIdent("acc"), sFloat(doubleScales[o.f1])),
				sFloat(doubleOffsets[o.f2]))))
		}
		// acc = (acc * C1 + C2) % M;
		return sExpr(sAssign(sIdent("acc"), sModM(sBin(token.Plus,
			sBin(token.Star, sIdent("acc"), sInt(int64(o.c1))), sInt(int64(o.c2))))))
	case opPrivLoad:
		idx := sBin(token.Plus, sMul(sIdent("me"), lay.pa), wrapIdx(o, lay.pa))
		return em.loadStmt(&ast.IndexExpr{X: sIdent(privName), Index: idx})
	case opPrivStore:
		idx := sBin(token.Plus, sMul(sIdent("me"), lay.pa), wrapIdx(o, lay.pa))
		return em.storeStmt(&ast.IndexExpr{X: sIdent(privName), Index: idx}, o)
	case opSharedLoad:
		if o.fromSW {
			width := lay.deg * lay.sa
			idx := sBin(token.Plus, sMulE(em.groupOf("me"), width), wrapIdx(o, width))
			return em.loadStmt(&ast.IndexExpr{X: sIdent(swapName(1 - r%2)), Index: idx})
		}
		idx := sBin(token.Plus, sMulE(em.groupOf("me"), lay.sa), wrapIdx(o, lay.sa))
		return em.loadStmt(&ast.IndexExpr{X: sIdent(tableName), Index: idx})
	case opSharedStore:
		idx := sBin(token.Plus, sMul(sIdent("me"), lay.sa), wrapIdx(o, lay.sa))
		return em.storeStmt(&ast.IndexExpr{X: sIdent(swapName(r % 2)), Index: idx}, o)
	}
	panic("synth: unknown op kind")
}

// loadStmt folds a memory read into the accumulator, keeping it bounded:
// int `acc = (acc + X) % M;`, double `acc = acc * 0.5 + X * 0.5;`.
func (em *synthEmitter) loadStmt(read ast.Expr) ast.Stmt {
	if em.p.Double {
		return sExpr(sAssign(sIdent("acc"), sBin(token.Plus,
			sBin(token.Star, sIdent("acc"), sFloat(0.5)),
			sBin(token.Star, read, sFloat(0.5)))))
	}
	return sExpr(sAssign(sIdent("acc"),
		sModM(sBin(token.Plus, sIdent("acc"), read))))
}

// storeStmt writes a bounded function of the accumulator; the RHS reads
// no array, so mix accounting classifies the statement as exactly one
// store.
func (em *synthEmitter) storeStmt(target ast.Expr, o op) ast.Stmt {
	if em.p.Double {
		return sExpr(sAssign(target, sBin(token.Plus,
			sBin(token.Star, sIdent("acc"), sFloat(0.5)),
			sFloat(doubleOffsets[o.f2]))))
	}
	return sExpr(sAssign(target,
		sModM(sBin(token.Plus, sIdent("acc"), sInt(int64(o.c2))))))
}

// mainFunc emits launch/join rounds (warm first when present) and the
// per-array checksum reduction.
func (em *synthEmitter) mainFunc() *ast.FuncDecl {
	lay := em.lay
	var body []ast.Stmt
	body = append(body,
		&ast.DeclStmt{Decl: &ast.VarDecl{Name: "th",
			Type: types.ArrayOf(types.OpaqueOf("pthread_t"), lay.threads)}},
		sDecl("t", types.IntType, nil),
	)
	launch := func(fn string) []ast.Stmt {
		return []ast.Stmt{
			&ast.ForStmt{
				Init: sExpr(sAssign(sIdent("t"), sInt(0))),
				Cond: sBin(token.Lt, sIdent("t"), sInt(int64(lay.threads))),
				Post: &ast.PostfixExpr{Op: token.PlusPlus, X: sIdent("t")},
				Body: sCall("pthread_create",
					&ast.UnaryExpr{Op: token.Amp, X: &ast.IndexExpr{X: sIdent("th"), Index: sIdent("t")}},
					sIdent("NULL"), sIdent(fn),
					&ast.CastExpr{To: types.PointerTo(types.VoidType), X: sIdent("t")}),
			},
			&ast.ForStmt{
				Init: sExpr(sAssign(sIdent("t"), sInt(0))),
				Cond: sBin(token.Lt, sIdent("t"), sInt(int64(lay.threads))),
				Post: &ast.PostfixExpr{Op: token.PlusPlus, X: sIdent("t")},
				Body: sCall("pthread_join",
					&ast.IndexExpr{X: sIdent("th"), Index: sIdent("t")}, sIdent("NULL")),
			},
		}
	}
	if em.hasWarm() {
		body = append(body, launch(warmName)...)
	}
	for r := 0; r < em.p.Rounds; r++ {
		body = append(body, launch(mixName(r))...)
	}
	body = append(body, em.reduction()...)
	body = append(body, &ast.ReturnStmt{Result: sInt(0)})
	return &ast.FuncDecl{
		Name:   "main",
		Result: types.IntType,
		Body:   &ast.BlockStmt{List: body},
	}
}

// reduction sums every declared array into one checksum line each
// (`c<idx> <sum>`), one accumulation loop per array since sizes differ.
func (em *synthEmitter) reduction() []ast.Stmt {
	var out []ast.Stmt
	out = append(out, sDecl("k", types.IntType, nil))
	arrays := em.arrays()
	for i := range arrays {
		name := fmt.Sprintf("c%d", i)
		if em.p.Double {
			out = append(out, sDecl(name, types.DoubleType, sFloat(0.0)))
		} else {
			out = append(out, sDecl(name, types.IntType, sInt(0)))
		}
	}
	for i, a := range arrays {
		name := fmt.Sprintf("c%d", i)
		out = append(out, &ast.ForStmt{
			Init: sExpr(sAssign(sIdent("k"), sInt(0))),
			Cond: sBin(token.Lt, sIdent("k"), sInt(int64(a.size))),
			Post: &ast.PostfixExpr{Op: token.PlusPlus, X: sIdent("k")},
			Body: sExpr(sAssign(sIdent(name),
				sBin(token.Plus, sIdent(name), &ast.IndexExpr{X: sIdent(a.name), Index: sIdent("k")}))),
		})
		verb := "%d"
		if em.p.Double {
			verb = "%.6f"
		}
		out = append(out, sCall("printf",
			&ast.StringLit{Value: fmt.Sprintf("c%d %s\n", i, verb)}, sIdent(name)))
	}
	return out
}

func threadFuncDecl(name string, body []ast.Stmt) *ast.FuncDecl {
	return &ast.FuncDecl{
		Name:   name,
		Result: types.PointerTo(types.VoidType),
		Params: []*ast.Param{{Name: "tid", Type: types.PointerTo(types.VoidType)}},
		Body:   &ast.BlockStmt{List: body},
	}
}

// ---------------------------------------------------------------------------
// Small AST builders (the conformance emitter's idiom, package-local)
// ---------------------------------------------------------------------------

func sIdent(name string) *ast.Ident { return &ast.Ident{Name: name} }

func sInt(v int64) *ast.IntLit {
	return &ast.IntLit{Value: v, Text: strconv.FormatInt(v, 10)}
}

func sFloat(v float64) *ast.FloatLit {
	t := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(t, ".eE") {
		t += ".0"
	}
	return &ast.FloatLit{Value: v, Text: t}
}

func sBin(op token.Kind, x, y ast.Expr) *ast.BinaryExpr {
	return &ast.BinaryExpr{Op: op, X: x, Y: y}
}

func sAssign(lhs, rhs ast.Expr) *ast.AssignExpr {
	return &ast.AssignExpr{Op: token.Assign, LHS: lhs, RHS: rhs}
}

func sExpr(e ast.Expr) ast.Stmt { return &ast.ExprStmt{X: e} }

func sCall(name string, args ...ast.Expr) ast.Stmt {
	return sExpr(&ast.CallExpr{Fun: sIdent(name), Args: args})
}

func sDecl(name string, t *types.Type, init ast.Expr) ast.Stmt {
	return &ast.DeclStmt{Decl: &ast.VarDecl{Name: name, Type: t, Init: init}}
}

// sMul emits x*k with the ×1 case folded to x.
func sMul(x ast.Expr, k int) ast.Expr {
	if k == 1 {
		return x
	}
	return sBin(token.Star, x, sInt(int64(k)))
}

// sMulE is sMul over a non-identifier base.
func sMulE(x ast.Expr, k int) ast.Expr { return sMul(x, k) }

// sModM reduces an int expression modulo the fixed prime:
// `(<e>) % 9973`.
func sModM(e ast.Expr) ast.Expr {
	return &ast.ParenExpr{X: sBin(token.Percent, &ast.ParenExpr{X: e}, sInt(intModulus))}
}

// sNested wraps a loop body: one statement stays bare, several become a
// block.
func sNested(list []ast.Stmt) ast.Stmt {
	if len(list) == 1 {
		return list[0]
	}
	return &ast.BlockStmt{List: list}
}
