package rcce

import (
	"fmt"

	"hsmcc/internal/cc/types"
	"hsmcc/internal/interp"
	"hsmcc/internal/sccsim"
)

// Two-sided message passing. RCCE's send/recv pair is synchronous
// (rendezvous) messaging built over the MPB: the sender stages data and
// raises a flag in the receiver's MPB section; the receiver waits for the
// flag, copies the payload out and acknowledges (van der Wijngaart et
// al. [29]). The thesis notes RCCE "accommodates both the shared memory
// and message passing paradigms" — translated programs use the former,
// but hand-written RCCE programs (and our API-completeness tests) use
// this half.
//
// The model: a transfer of n bytes between ranks r1, r2 completes at
//
//	max(sender ready, receiver ready) + staging + wire + drain
//
// where staging/drain charge per-line MPB costs on each side and wire is
// the mesh distance between the two cores.

// message is one in-flight rendezvous.
type message struct {
	src, dst int // ranks
	addr     uint32
	size     int
	sender   *interp.Proc
	ready    sccsim.Time // when the payload is staged
}

// sendState tracks rendezvous per (src,dst) pair.
type sendState struct {
	// pending maps src*maxRanks+dst to a staged message.
	pending map[int]*message
	// recvWaiting maps src*maxRanks+dst to a blocked receiver.
	recvWaiting map[int]*interp.Proc
}

const maxRanks = 1 << 10

func (rt *Runtime) sends() *sendState {
	if rt.sendrecv == nil {
		rt.sendrecv = &sendState{
			pending:     make(map[int]*message),
			recvWaiting: make(map[int]*interp.Proc),
		}
	}
	return rt.sendrecv
}

func pairKey(src, dst int) int { return src*maxRanks + dst }

// send implements RCCE_send(buf, size, dest): stage the payload, wake a
// waiting receiver, block until the receiver drains it. The staging
// copies charge the machine directly (no yield cadence), so the only
// suspension is the rendezvous block: step 1 means the receiver drained
// and released us.
func (rt *Runtime) send(p *interp.Proc, buf uint32, size, dst int, step int) error {
	if step != 0 {
		return nil
	}
	me := rt.RankOf(p)
	if dst < 0 || dst >= len(rt.ues) {
		return fmt.Errorf("RCCE_send: no rank %d", dst)
	}
	if dst == me {
		return fmt.Errorf("RCCE_send: rank %d sending to itself", me)
	}
	st := rt.sends()
	key := pairKey(me, dst)
	if st.pending[key] != nil {
		return fmt.Errorf("RCCE_send: rank %d already has a message in flight to %d", me, dst)
	}
	// Stage: read the payload (timed) and pay the wire to dst's MPB.
	rt.stageCopy(p, buf, size)
	p.Clock += rt.sim.Machine.ComputeTime(p.Core, 60) // flag write + sync
	msg := &message{src: me, dst: dst, addr: buf, size: size, sender: p, ready: p.Clock}
	st.pending[key] = msg
	if r := st.recvWaiting[key]; r != nil {
		delete(st.recvWaiting, key)
		r.Unblock(msg.ready)
	}
	// Rendezvous: the sender blocks until the receiver drains.
	if err := p.BlockFor(interp.ReasonSend); err != nil {
		p.PushResume(1, nil)
		return err
	}
	return nil
}

// recv implements RCCE_recv(buf, size, source): wait for the matching
// send, drain the payload into buf, release the sender. A woken
// receiver (step 1) re-enters the wait loop and finds its message; the
// drain path has no suspension points.
func (rt *Runtime) recv(p *interp.Proc, buf uint32, size, src int, step int) error {
	me := rt.RankOf(p)
	if src < 0 || src >= len(rt.ues) {
		return fmt.Errorf("RCCE_recv: no rank %d", src)
	}
	st := rt.sends()
	key := pairKey(src, me)
	for st.pending[key] == nil {
		if st.recvWaiting[key] != nil {
			return fmt.Errorf("RCCE_recv: two receivers for the same channel %d->%d", src, me)
		}
		st.recvWaiting[key] = p
		if err := p.BlockFor(interp.ReasonRecv); err != nil {
			p.PushResume(1, nil)
			return err
		}
	}
	msg := st.pending[key]
	delete(st.pending, key)
	if msg.size < size {
		size = msg.size
	}
	// The transfer cannot complete before the payload was staged.
	if msg.ready > p.Clock {
		p.Clock = msg.ready
	}
	// Wire between the two cores plus the drain copy.
	hops := rt.sim.Machine.Hops(p.Core, msg.sender.Core)
	p.Clock += sccsim.Time(2*hops) * 2 * rt.sim.Machine.CorePeriodOf(p.Core)
	rt.drainCopy(p, msg.sender.Core, msg.addr, buf, size)
	// Release the sender at the completion time.
	msg.sender.Unblock(p.Clock)
	return nil
}

// stageCopy charges the sender's read of its payload (line granularity).
func (rt *Runtime) stageCopy(p *interp.Proc, src uint32, size int) {
	const line = 32
	buf := make([]byte, line)
	m := rt.sim.Machine
	for off := 0; off < size; off += line {
		n := line
		if size-off < n {
			n = size - off
		}
		p.Clock += m.Load(p.Core, src+uint32(off), buf[:n], p.Clock)
		p.ProfileAccess(src+uint32(off), false)
	}
}

// drainCopy moves the payload from the sender's buffer into the receive
// buffer with full timing charged on the receiver's side. Reading through
// the sender's core makes private payload buffers work: shared and MPB
// addresses resolve identically from any core, private ones belong to
// the sender.
func (rt *Runtime) drainCopy(p *interp.Proc, senderCore int, src, dst uint32, size int) {
	const line = 32
	buf := make([]byte, line)
	m := rt.sim.Machine
	for off := 0; off < size; off += line {
		n := line
		if size-off < n {
			n = size - off
		}
		m.ReadBytes(senderCore, src+uint32(off), buf[:n])
		p.Clock += m.Store(p.Core, dst+uint32(off), buf[:n], p.Clock)
		p.ProfileAccess(dst+uint32(off), true)
	}
}

// sendrecvBuiltin dispatches the two-sided API; step is the resumption
// step popped by CallBuiltin, routed into the suspended half.
func (rt *Runtime) sendrecvBuiltin(p *interp.Proc, name string, args []interp.Value, step int) (interp.Value, bool, error) {
	zero := interp.IntValue(types.IntType, 0)
	switch name {
	case "RCCE_send":
		if len(args) < 3 {
			return zero, true, fmt.Errorf("RCCE_send: want (buf, size, dest)")
		}
		return zero, true, rt.send(p, args[0].Addr(), int(args[1].Int()), int(args[2].Int()), step)
	case "RCCE_recv":
		if len(args) < 3 {
			return zero, true, fmt.Errorf("RCCE_recv: want (buf, size, source)")
		}
		return zero, true, rt.recv(p, args[0].Addr(), int(args[1].Int()), int(args[2].Int()), step)
	}
	return interp.Value{}, false, nil
}
