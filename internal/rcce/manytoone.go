package rcce

import (
	"hsmcc/internal/interp"
	"hsmcc/internal/sccsim"
)

// Many-to-one execution (thesis §7.2): programs with more threads than
// the chip has cores cannot be converted 1:1; the thesis points to
// Cichowski et al. [6], who run multiple RCCE units of execution on one
// core. With Options.AllowOversubscribe, ranks may share cores and are
// time-multiplexed by the policy below: each core runs its current UE
// for a quantum before rotating, a context switch costs scheduler cycles
// and an L1 flush, and a core's virtual time only moves forward.

// Many-to-one scheduling parameters (core cycles).
const (
	// OversubscribeSwitchCycles is charged per UE change on a core.
	OversubscribeSwitchCycles = 1500
	// OversubscribeQuantumCycles is how long a UE keeps its core.
	OversubscribeQuantumCycles = 10000
)

// manyToOne schedules one UE per core at a time: the candidate for each
// core is its current occupant while the quantum lasts, else the
// lowest-clock runnable UE of that core; among candidates the one with
// the earliest effective start runs.
type manyToOne struct {
	machine  *sccsim.Machine
	quantum  sccsim.Time
	coreFree map[int]sccsim.Time
	lastOn   map[int]*interp.Proc
	last     *interp.Proc
}

func newManyToOne(m *sccsim.Machine) *manyToOne {
	return &manyToOne{
		machine:  m,
		quantum:  sccsim.Time(OversubscribeQuantumCycles) * m.CorePeriodOf(0),
		coreFree: make(map[int]sccsim.Time),
		lastOn:   make(map[int]*interp.Proc),
	}
}

// Next implements interp.Policy.
func (m *manyToOne) Next(procs []*interp.Proc) *interp.Proc {
	// Account the core time consumed by whoever ran last.
	if m.last != nil && m.last.Clock > m.coreFree[m.last.Core] {
		m.coreFree[m.last.Core] = m.last.Clock
	}
	// One candidate per core.
	candidates := make(map[int]*interp.Proc)
	for _, p := range procs {
		if p.State != interp.Runnable {
			continue
		}
		cur := m.lastOn[p.Core]
		if cur != nil && cur.State == interp.Runnable && cur.Clock-cur.Slice < m.quantum {
			candidates[p.Core] = cur
			continue
		}
		if best := candidates[p.Core]; best == nil || best == cur ||
			p.Clock < best.Clock || (p.Clock == best.Clock && p.ID < best.ID) {
			candidates[p.Core] = p
		}
	}
	var best *interp.Proc
	var bestEff sccsim.Time
	for _, p := range candidates {
		eff := p.Clock
		if f := m.coreFree[p.Core]; f > eff {
			eff = f
		}
		if best == nil || eff < bestEff || (eff == bestEff && p.ID < best.ID) {
			best, bestEff = p, eff
		}
	}
	if best == nil {
		m.last = nil
		return nil
	}
	if best.Clock < m.coreFree[best.Core] {
		best.Clock = m.coreFree[best.Core]
	}
	if prev := m.lastOn[best.Core]; prev != best {
		best.Clock += m.machine.ComputeTime(best.Core, OversubscribeSwitchCycles)
		best.Clock += m.machine.FlushL1(best.Core)
		best.Slice = best.Clock
	}
	m.lastOn[best.Core] = best
	m.last = best
	return best
}
