package rcce

import (
	"strings"
	"testing"

	"hsmcc/internal/interp"
	"hsmcc/internal/sccsim"
)

// TestSendRecvPingPong: the classic RCCE latency microbenchmark — rank 0
// and rank 1 bounce a message; payload integrity and rendezvous ordering
// are both checked.
func TestSendRecvPingPong(t *testing.T) {
	res := run(t, `
char buf[64];
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    int me = RCCE_ue();
    int i;
    if (me == 0) {
        for (i = 0; i < 64; i++) buf[i] = (char)(i + 1);
        RCCE_send(buf, 64, 1);
        RCCE_recv(buf, 64, 1);
        printf("rank0 got %d %d\n", buf[0], buf[63]);
    } else {
        RCCE_recv(buf, 64, 0);
        for (i = 0; i < 64; i++) buf[i] = (char)(buf[i] + 100);
        RCCE_send(buf, 64, 0);
    }
    RCCE_finalize();
    return 0;
}`, DefaultOptions(2))
	// buf[63] = (char)(64 + 100) wraps to -92 in signed char.
	if res.Output != "rank0 got 101 -92\n" {
		t.Errorf("output = %q, want rank0 got 101 -92", res.Output)
	}
}

// TestSendRecvRing: every rank passes a token around a ring; the sum of
// increments proves ordering across all pairs.
func TestSendRecvRing(t *testing.T) {
	res := run(t, `
int token[1];
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    int me = RCCE_ue();
    int n = RCCE_num_ues();
    int next = (me + 1) % n;
    int prev = (me + n - 1) % n;
    if (me == 0) {
        token[0] = 1000;
        RCCE_send((char*)token, sizeof(int), next);
        RCCE_recv((char*)token, sizeof(int), prev);
        printf("token %d\n", token[0]);
    } else {
        RCCE_recv((char*)token, sizeof(int), prev);
        token[0] = token[0] + 1;
        RCCE_send((char*)token, sizeof(int), next);
    }
    RCCE_finalize();
    return 0;
}`, DefaultOptions(6))
	if res.Output != "token 1005\n" {
		t.Errorf("output = %q, want token 1005 (5 increments around the ring)", res.Output)
	}
}

// TestSendRecvRendezvousTiming: the receiver cannot complete before the
// sender stages, and the sender blocks until the drain.
func TestSendRecvRendezvousTiming(t *testing.T) {
	res := run(t, `
char b[32];
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    if (RCCE_ue() == 0) {
        int i; int x = 0;
        for (i = 0; i < 30000; i++) x += i; /* sender is late */
        b[0] = (char)42;
        RCCE_send(b, 32, 1);
    } else {
        double t0 = RCCE_wtime();
        RCCE_recv(b, 32, 0);
        double t1 = RCCE_wtime();
        printf("waited %d got %d\n", t1 - t0 > 0.00001, b[0]);
    }
    RCCE_finalize();
    return 0;
}`, DefaultOptions(2))
	if res.Output != "waited 1 got 42\n" {
		t.Errorf("output = %q (receiver must wait for the late sender)", res.Output)
	}
}

// TestSendErrors covers the failure modes.
func TestSendErrors(t *testing.T) {
	_, err := tryRun(`
char b[8];
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    if (RCCE_ue() == 0) RCCE_send(b, 8, 0); /* to self */
    RCCE_finalize();
    return 0;
}`, DefaultOptions(2))
	if err == nil || !strings.Contains(err.Error(), "itself") {
		t.Errorf("err = %v, want self-send rejection", err)
	}
	_, err = tryRun(`
char b[8];
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    if (RCCE_ue() == 0) RCCE_send(b, 8, 99);
    RCCE_finalize();
    return 0;
}`, DefaultOptions(2))
	if err == nil || !strings.Contains(err.Error(), "no rank") {
		t.Errorf("err = %v, want bad-rank rejection", err)
	}
}

// TestSendRecvDeadlockDetected: a recv with no matching send is reported
// as a deadlock by the scheduler, not a hang.
func TestSendRecvDeadlockDetected(t *testing.T) {
	_, err := tryRun(`
char b[8];
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    if (RCCE_ue() == 1) RCCE_recv(b, 8, 0); /* rank 0 never sends */
    RCCE_finalize();
    return 0;
}`, DefaultOptions(2))
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want deadlock", err)
	}
	_ = sccsim.Time(0)
	_ = interp.Value{}
}
