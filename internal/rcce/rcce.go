// Package rcce is the Go analogue of the RCCE 2.0 communication library
// the translated programs target (van der Wijngaart et al. [29]): one
// process per core ("unit of execution"), a symmetric shared-memory
// allocator over the off-chip shared DRAM, an on-chip allocator over the
// Message Passing Buffer, barriers, test-and-set locks and one-sided
// put/get. Each API call charges SCC-realistic costs through the machine
// model.
//
// Allocation symmetry: like the real RCCE_shmalloc, the allocators return
// the same address on every rank for the same call sequence. The runtime
// enforces this — ranks must issue identical allocation sequences (the
// translator guarantees it by hoisting allocations to the top of
// RCCE_APP), and a divergent size is reported as an error.
package rcce

import (
	"fmt"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/types"
	"hsmcc/internal/interp"
	"hsmcc/internal/sccsim"
)

// Options configures an RCCE execution.
type Options struct {
	// Cores lists the physical cores of the participating UEs; rank i
	// runs on Cores[i]. Nil means cores 0..N-1.
	Cores []int
	// NumUEs is the number of participating units of execution when
	// Cores is nil.
	NumUEs int
	// StripeMPB block-distributes on-chip allocations across the
	// participants' MPB sections so each rank's slice is local
	// (disabled for the placement ablation: everything lands in rank
	// 0's section).
	StripeMPB bool
	// AllowOversubscribe enables the thesis §7.2 many-to-one mode: when
	// NumUEs exceeds the core count, ranks are assigned round-robin and
	// UEs sharing a core are time-multiplexed (with context-switch
	// costs) instead of being rejected.
	AllowOversubscribe bool
	// InitCycles/BarrierCycles are the library costs of RCCE_init and
	// each barrier visit.
	InitCycles    int
	BarrierCycles int
	// Engine overrides the execution engine for the session (the zero
	// value defers to interp.DefaultEngine / HSMCC_ENGINE).
	Engine interp.Engine
	// Profiler, when non-nil, is attached to the session as its memory
	// profiler (interp.Sim.Prof): every timed data access is reported to
	// it. Profiling runs of the `profiled` placement policy set this.
	Profiler interp.MemProfiler
	// AllocObserver, when non-nil, is told about each symmetric
	// allocation the moment it is created (not on the replaying ranks),
	// which lets a profiler label the allocator's address ranges with
	// the shared variables they back.
	AllocObserver AllocObserver
	// Cancel, when non-nil, is polled at every scheduling decision
	// (interp.Sim.Cancel): a non-nil return aborts the run promptly
	// with that error. Callers fingerprinting Options for cache keys
	// must exclude this field (it is per-request, not part of the run's
	// semantic identity).
	Cancel func() error
	// Trace, when non-nil, observes every scheduling event of the run
	// (interp.Sim.Trace): spawns, run slices, barrier/rendezvous blocks
	// with reasons, test-and-set spin rounds. Observation-only —
	// results are identical with or without it — and, like Cancel,
	// excluded from cache fingerprints.
	Trace interp.TraceSink
}

// AllocObserver observes symmetric allocations. seq is the allocation's
// index within its region (off-chip shmalloc and on-chip mpbmalloc
// count separately), matching the translator's emission order.
type AllocObserver interface {
	NoteAlloc(onChip bool, seq int, addr uint32, size int)
}

// DefaultOptions returns the runtime configuration used by the harness.
func DefaultOptions(numUEs int) Options {
	return Options{
		NumUEs:        numUEs,
		StripeMPB:     true,
		InitCycles:    50_000,
		BarrierCycles: 600,
	}
}

type allocation struct {
	addr uint32
	size int
}

// Runtime implements interp.Runtime for translated RCCE programs.
type Runtime struct {
	sim  *interp.Sim
	opts Options
	ues  []int // rank -> core
	// rankByProc resolves a context to its rank; with many-to-one
	// mapping several contexts share a core, so core identity is not
	// enough.
	rankByProc map[*interp.Proc]int
	rankByCore map[int]int

	shared struct {
		cursor uint32
		allocs []allocation
		seq    map[*interp.Proc]int
	}
	mpb struct {
		cursor uint32
		allocs []allocation
		seq    map[*interp.Proc]int
	}
	barrier struct {
		arrived int
		release sccsim.Time
		waiting []*interp.Proc
	}
	// sendrecv tracks two-sided messaging (sendrecv.go).
	sendrecv *sendState
}

// New attaches an RCCE runtime to sim. Scheduling uses the session's
// default min-clock policy.
func New(sim *interp.Sim, opts Options) (*Runtime, error) {
	ues := opts.Cores
	if ues == nil {
		if opts.NumUEs <= 0 {
			return nil, fmt.Errorf("rcce: no UEs configured")
		}
		for i := 0; i < opts.NumUEs; i++ {
			ues = append(ues, i%sim.Machine.Cores())
		}
	}
	shared := false
	seen := make(map[int]bool)
	for _, c := range ues {
		if seen[c] {
			shared = true
		}
		seen[c] = true
	}
	if shared && !opts.AllowOversubscribe {
		return nil, fmt.Errorf("rcce: %d UEs on %d cores share cores (set AllowOversubscribe for §7.2 many-to-one mode)",
			len(ues), len(seen))
	}
	rt := &Runtime{
		sim:        sim,
		opts:       opts,
		ues:        ues,
		rankByProc: make(map[*interp.Proc]int),
		rankByCore: make(map[int]int),
	}
	for r, c := range ues {
		rt.rankByCore[c] = r
	}
	if shared {
		// UEs sharing a core are serialised in virtual time.
		sim.Policy = newManyToOne(sim.Machine)
	}
	rt.shared.cursor = sccsim.SharedBase
	rt.shared.seq = make(map[*interp.Proc]int)
	rt.mpb.cursor = sccsim.MPBBase
	rt.mpb.seq = make(map[*interp.Proc]int)
	sim.Runtime = rt
	return rt, nil
}

// NumUEs returns the number of participating units of execution.
func (rt *Runtime) NumUEs() int { return len(rt.ues) }

// RankOf returns the rank of a context: by registration when spawned via
// Run, by core otherwise (single-UE-per-core sessions built by hand).
func (rt *Runtime) RankOf(p *interp.Proc) int {
	if r, ok := rt.rankByProc[p]; ok {
		return r
	}
	return rt.rankByCore[p.Core]
}

// RegisterRank binds a spawned context to its rank; Run does this for
// every UE it creates.
func (rt *Runtime) RegisterRank(p *interp.Proc, rank int) { rt.rankByProc[p] = rank }

// Tick implements interp.Runtime (no preemption: one process per core).
func (rt *Runtime) Tick(p *interp.Proc) {}

// OnExit implements interp.Runtime.
func (rt *Runtime) OnExit(p *interp.Proc) {}

// CallBuiltin implements the RCCE API.
//
// Every builtin follows the coroutine resumption protocol (see
// interp.Runtime): the single frame popped here carries the step to
// continue from plus any loop state (acquireLock's backoff), and is
// routed into whichever builtin the name dispatches to. Side effects
// that must not repeat (symmetric allocations, barrier arrival, message
// staging) sit strictly before the suspension that follows them, and no
// builtin yields before committing to handle its call.
func (rt *Runtime) CallBuiltin(p *interp.Proc, name string, args []interp.Value) (interp.Value, bool, error) {
	step := 0
	var sx any
	if p.Resuming() {
		step, sx = p.PopResume()
	}
	if v, handled, err := rt.sendrecvBuiltin(p, name, args, step); handled || err != nil {
		return v, handled, err
	}
	zero := interp.IntValue(types.IntType, 0)
	switch name {
	case "RCCE_init":
		if step == 0 {
			if err := p.ChargeCycles(rt.opts.InitCycles); err != nil {
				p.PushResume(1, nil)
				return zero, true, err
			}
		}
		return zero, true, nil

	case "RCCE_finalize":
		if step == 0 {
			if err := p.ChargeCycles(1_000); err != nil {
				p.PushResume(1, nil)
				return zero, true, err
			}
		}
		return zero, true, nil

	case "RCCE_ue":
		if step == 0 {
			if err := p.ChargeCycles(10); err != nil {
				p.PushResume(1, nil)
				return zero, true, err
			}
		}
		return interp.IntValue(types.IntType, int64(rt.RankOf(p))), true, nil

	case "RCCE_num_ues":
		if step == 0 {
			if err := p.ChargeCycles(10); err != nil {
				p.PushResume(1, nil)
				return zero, true, err
			}
		}
		return interp.IntValue(types.IntType, int64(len(rt.ues))), true, nil

	case "RCCE_wtime", "wallclock":
		if step == 0 {
			if err := p.ChargeCycles(15); err != nil {
				p.PushResume(1, nil)
				return zero, true, err
			}
		}
		return interp.FloatValue(types.DoubleType, p.Seconds()), true, nil

	case "RCCE_shmalloc":
		// The symmetric allocator advances a per-context sequence; it
		// must run exactly once, so the charge-yield saves the address.
		addr, _ := sx.(uint32)
		if step == 0 {
			if len(args) < 1 {
				return zero, true, fmt.Errorf("RCCE_shmalloc: missing size")
			}
			var err error
			addr, err = rt.shmalloc(p, int(args[0].Int()))
			if err != nil {
				return zero, true, err
			}
			if err := p.ChargeCycles(300); err != nil {
				p.PushResume(1, addr)
				return zero, true, err
			}
		}
		return interp.PtrValue(types.PointerTo(types.VoidType), addr), true, nil

	case "RCCE_shfree":
		if step == 0 {
			if err := p.ChargeCycles(50); err != nil {
				p.PushResume(1, nil)
				return zero, true, err
			}
		}
		return zero, true, nil

	case "RCCE_mpbmalloc", "RCCE_malloc":
		addr, _ := sx.(uint32)
		if step == 0 {
			if len(args) < 1 {
				return zero, true, fmt.Errorf("%s: missing size", name)
			}
			var err error
			addr, err = rt.mpbmalloc(p, int(args[0].Int()))
			if err != nil {
				return zero, true, err
			}
			if err := p.ChargeCycles(300); err != nil {
				p.PushResume(1, addr)
				return zero, true, err
			}
		}
		return interp.PtrValue(types.PointerTo(types.VoidType), addr), true, nil

	case "RCCE_barrier":
		if err := rt.doBarrier(p, step); err != nil {
			return zero, true, err
		}
		return zero, true, nil

	case "RCCE_acquire_lock":
		if step == 0 && len(args) < 1 {
			return zero, true, fmt.Errorf("RCCE_acquire_lock: missing UE")
		}
		if err := rt.acquireLock(p, int(args[0].Int()), step, sx); err != nil {
			return zero, true, err
		}
		return zero, true, nil

	case "RCCE_release_lock":
		if len(args) < 1 {
			return zero, true, fmt.Errorf("RCCE_release_lock: missing UE")
		}
		target := rt.lockTarget(int(args[0].Int()))
		lat := rt.sim.Machine.TASClear(p.Core, target, p.Clock)
		p.Clock += lat
		return zero, true, nil

	case "RCCE_put", "RCCE_get":
		if step == 0 && len(args) < 3 {
			return zero, true, fmt.Errorf("%s: want (dst, src, size, ue)", name)
		}
		if err := rt.bulkCopy(p, args[0].Addr(), args[1].Addr(), int(args[2].Int()), step); err != nil {
			return zero, true, err
		}
		return zero, true, nil

	// Power management (thesis §5.1: "procedure calls to the power
	// management API"; frequency changes act on the caller's voltage
	// domain, as on the real chip).
	case "RCCE_power_domain":
		if step == 0 {
			if err := p.ChargeCycles(10); err != nil {
				p.PushResume(1, nil)
				return zero, true, err
			}
		}
		return interp.IntValue(types.IntType, int64(rt.sim.Machine.DomainOf(p.Core))), true, nil

	case "RCCE_get_frequency":
		if step == 0 {
			if err := p.ChargeCycles(10); err != nil {
				p.PushResume(1, nil)
				return zero, true, err
			}
		}
		mhz := rt.sim.Machine.DomainMHz(rt.sim.Machine.DomainOf(p.Core))
		return interp.IntValue(types.IntType, int64(mhz)), true, nil

	case "RCCE_set_frequency":
		if step == 0 {
			if len(args) < 1 {
				return zero, true, fmt.Errorf("RCCE_set_frequency: missing MHz")
			}
			// Changing a domain's voltage and clock stalls it briefly.
			if err := p.ChargeCycles(20_000); err != nil {
				p.PushResume(1, nil)
				return zero, true, err
			}
		}
		dom := rt.sim.Machine.DomainOf(p.Core)
		if err := rt.sim.Machine.SetDomainMHz(dom, int(args[0].Int())); err != nil {
			return interp.IntValue(types.IntType, -1), true, nil
		}
		return zero, true, nil

	case "RCCE_chip_power":
		if step == 0 {
			if err := p.ChargeCycles(100); err != nil {
				p.PushResume(1, nil)
				return zero, true, err
			}
		}
		return interp.FloatValue(types.DoubleType, rt.sim.Machine.PowerEstimate()), true, nil
	}
	return interp.Value{}, false, nil
}

// shmalloc is the symmetric off-chip shared allocator.
func (rt *Runtime) shmalloc(p *interp.Proc, size int) (uint32, error) {
	idx := rt.shared.seq[p]
	rt.shared.seq[p] = idx + 1
	if idx < len(rt.shared.allocs) {
		a := rt.shared.allocs[idx]
		if a.size != size {
			return 0, fmt.Errorf("rcce: rank %d shmalloc #%d size %d diverges from %d",
				rt.RankOf(p), idx, size, a.size)
		}
		return a.addr, nil
	}
	addr := (rt.shared.cursor + 31) &^ 31
	if addr+uint32(size) > sccsim.SharedLimit {
		return 0, fmt.Errorf("rcce: shared memory exhausted")
	}
	rt.shared.cursor = addr + uint32(size)
	rt.shared.allocs = append(rt.shared.allocs, allocation{addr, size})
	if rt.opts.AllocObserver != nil {
		rt.opts.AllocObserver.NoteAlloc(false, idx, addr, size)
	}
	return addr, nil
}

// mpbmalloc is the symmetric on-chip allocator; allocations are striped
// across the participants' MPB sections unless disabled.
func (rt *Runtime) mpbmalloc(p *interp.Proc, size int) (uint32, error) {
	idx := rt.mpb.seq[p]
	rt.mpb.seq[p] = idx + 1
	if idx < len(rt.mpb.allocs) {
		a := rt.mpb.allocs[idx]
		if a.size != size {
			return 0, fmt.Errorf("rcce: rank %d mpbmalloc #%d size %d diverges from %d",
				rt.RankOf(p), idx, size, a.size)
		}
		return a.addr, nil
	}
	addr := (rt.mpb.cursor + 31) &^ 31
	total := uint32(rt.sim.Machine.Config().MPBTotal())
	if addr+uint32(size) > sccsim.MPBBase+total {
		return 0, fmt.Errorf("rcce: MPB exhausted (%d bytes requested beyond %d total)", size, total)
	}
	rt.mpb.cursor = addr + uint32(size)
	rt.mpb.allocs = append(rt.mpb.allocs, allocation{addr, size})
	if rt.opts.AllocObserver != nil {
		rt.opts.AllocObserver.NoteAlloc(true, idx, addr, size)
	}
	if rt.opts.StripeMPB && len(rt.ues) > 1 {
		chunk := (size + len(rt.ues) - 1) / len(rt.ues)
		chunk = (chunk + 31) &^ 31
		if chunk > 0 {
			rt.sim.Machine.MapMPB(addr, size, rt.ues, chunk)
		}
	} else {
		rt.sim.Machine.MapMPB(addr, size, rt.ues[:1], size+31)
	}
	return addr, nil
}

// doBarrier implements a dissemination-cost barrier: everyone waits for
// the last arriver, then resumes at the release time. Steps: 0 the
// arrival charge; 1 arrival bookkeeping + block; 2 woken at release.
func (rt *Runtime) doBarrier(p *interp.Proc, step int) error {
	if step == 0 {
		if err := p.ChargeCycles(rt.opts.BarrierCycles); err != nil {
			p.PushResume(1, nil)
			return err
		}
	}
	if step <= 1 {
		b := &rt.barrier
		if p.Clock > b.release {
			b.release = p.Clock
		}
		b.arrived++
		if b.arrived == len(rt.ues) {
			release := b.release
			for _, w := range b.waiting {
				w.Unblock(release)
			}
			b.waiting = b.waiting[:0]
			b.arrived = 0
			b.release = 0
			if release > p.Clock {
				p.Clock = release
			}
			return nil
		}
		b.waiting = append(b.waiting, p)
		if err := p.BlockFor(interp.ReasonBarrier); err != nil {
			p.PushResume(2, nil)
			return err
		}
	}
	return nil
}

// lockTarget maps a UE number to the core whose test-and-set register
// backs that lock.
func (rt *Runtime) lockTarget(ue int) int {
	if ue >= 0 && ue < len(rt.ues) {
		return rt.ues[ue]
	}
	return rt.ues[0]
}

// acquireLock spins on the target core's test-and-set register. The
// spin iteration has two suspension points — the backoff charge and the
// explicit yield — so the frame carries the current backoff: step 1
// resumes before the doubling (charge done), step 2 after the yield
// (iteration complete, test again).
func (rt *Runtime) acquireLock(p *interp.Proc, ue int, step int, sx any) error {
	target := rt.lockTarget(ue)
	backoff := 50
	if b, ok := sx.(int); ok {
		backoff = b
	}
	for {
		if step == 0 {
			ok, lat := rt.sim.Machine.TestAndSet(p.Core, target, p.Clock)
			p.Clock += lat
			if ok {
				return nil
			}
			// One failed round, reported before the backoff charge can
			// suspend (the step guard keeps it exactly-once per round).
			p.NoteSpin(backoff)
			if err := p.ChargeCycles(backoff); err != nil {
				p.PushResume(1, backoff)
				return err
			}
		}
		if step <= 1 {
			if backoff < 800 {
				backoff *= 2
			}
			if err := p.Yield(); err != nil {
				p.PushResume(2, backoff)
				return err
			}
		}
		step = 0
	}
}

// bulkCopy moves size bytes line-by-line with full memory timing: the
// transfer cost of RCCE_put/RCCE_get. Only the trailing charge can
// yield; the copies complete before it.
func (rt *Runtime) bulkCopy(p *interp.Proc, dst, src uint32, size int, step int) error {
	if step != 0 {
		return nil
	}
	const line = 32
	buf := make([]byte, line)
	m := rt.sim.Machine
	for off := 0; off < size; off += line {
		n := line
		if size-off < n {
			n = size - off
		}
		p.Clock += m.Load(p.Core, src+uint32(off), buf[:n], p.Clock)
		p.Clock += m.Store(p.Core, dst+uint32(off), buf[:n], p.Clock)
		p.ProfileAccess(src+uint32(off), false)
		p.ProfileAccess(dst+uint32(off), true)
	}
	if err := p.ChargeCycles(costPerCall + size/line); err != nil {
		p.PushResume(1, nil)
		return err
	}
	return nil
}

const costPerCall = 40

// Result summarises one RCCE run.
type Result struct {
	Makespan sccsim.Time
	Output   string
	Stats    sccsim.CoreStats
	// OnChipBytes is how much MPB space the program allocated.
	OnChipBytes int
	// SharedBytes is how much off-chip shared memory it allocated.
	SharedBytes int
}

// Seconds returns the makespan in seconds.
func (r *Result) Seconds() float64 { return float64(r.Makespan) / sccsim.PsPerSecond }

// EntryPoint returns the program's RCCE entry function: RCCE_APP if
// present (translated programs), else main (hand-written RCCE programs).
func EntryPoint(pr *interp.Program) *ast.FuncDecl {
	if fn := pr.Funcs["RCCE_APP"]; fn != nil {
		return fn
	}
	return pr.Funcs["main"]
}

// Run executes pr on machine m with one process per UE, starting every
// rank at time zero (the SCC launcher starts all cores together).
func Run(pr *interp.Program, m *sccsim.Machine, opts Options) (*Result, error) {
	sim := interp.NewSim(m, pr)
	if opts.Engine != interp.EngineDefault {
		sim.Engine = opts.Engine
	}
	sim.Prof = opts.Profiler
	sim.Cancel = opts.Cancel
	sim.Trace = opts.Trace
	interp.BindTrace(opts.Trace, m)
	rt, err := New(sim, opts)
	if err != nil {
		return nil, err
	}
	entry := EntryPoint(pr)
	if entry == nil {
		return nil, fmt.Errorf("rcce: program has neither RCCE_APP nor main")
	}
	// RCCE_APP(int *argc, char **argv) receives null pointers; the
	// benchmarks do not read their arguments.
	var args []interp.Value
	for range entry.Params {
		args = append(args, interp.IntValue(types.IntType, 0))
	}
	for rank, core := range rt.ues {
		p, err := sim.Spawn(core, entry, args, 0)
		if err != nil {
			return nil, err
		}
		rt.RegisterRank(p, rank)
	}
	if err := sim.Run(); err != nil {
		return nil, err
	}
	res := &Result{
		Makespan:    sim.Makespan(),
		Output:      sim.Output(),
		Stats:       m.TotalStats(),
		OnChipBytes: int(rt.mpb.cursor - sccsim.MPBBase),
		SharedBytes: int(rt.shared.cursor - sccsim.SharedBase),
	}
	return res, nil
}
