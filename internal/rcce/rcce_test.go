package rcce

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"hsmcc/internal/interp"
	"hsmcc/internal/sccsim"
)

func run(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	res, err := tryRun(src, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func tryRun(src string, opts Options) (*Result, error) {
	pr, err := interp.Compile("test.c", src)
	if err != nil {
		return nil, err
	}
	return Run(pr, sccsim.MustNew(sccsim.DefaultConfig()), opts)
}

func sortedLines(s string) []string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	sort.Strings(lines)
	return lines
}

func TestUEIdentity(t *testing.T) {
	res := run(t, `
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    printf("ue %d of %d\n", RCCE_ue(), RCCE_num_ues());
    RCCE_finalize();
    return 0;
}`, DefaultOptions(4))
	want := []string{"ue 0 of 4", "ue 1 of 4", "ue 2 of 4", "ue 3 of 4"}
	got := sortedLines(res.Output)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("output lines = %v, want %v", got, want)
	}
}

func TestShmallocSymmetricAndShared(t *testing.T) {
	res := run(t, `
int *data;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    data = (int*)RCCE_shmalloc(sizeof(int) * 8);
    int me = RCCE_ue();
    data[me] = 100 + me;
    RCCE_barrier(&RCCE_COMM_WORLD);
    if (me == 0) {
        int i; int sum = 0;
        for (i = 0; i < 4; i++) sum += data[i];
        printf("sum %d\n", sum);
    }
    RCCE_finalize();
    return 0;
}`, DefaultOptions(4))
	if res.Output != "sum 406\n" {
		t.Errorf("output = %q, want sum 406 (cross-core shared writes visible)", res.Output)
	}
	if res.SharedBytes < 32 {
		t.Errorf("SharedBytes = %d, want >= 32", res.SharedBytes)
	}
}

func TestMPBMallocVisible(t *testing.T) {
	res := run(t, `
int *data;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    data = (int*)RCCE_mpbmalloc(sizeof(int) * 4);
    int me = RCCE_ue();
    data[me] = me * me;
    RCCE_barrier(&RCCE_COMM_WORLD);
    if (me == 3) printf("%d %d %d %d\n", data[0], data[1], data[2], data[3]);
    RCCE_finalize();
    return 0;
}`, DefaultOptions(4))
	if res.Output != "0 1 4 9\n" {
		t.Errorf("output = %q", res.Output)
	}
	if res.OnChipBytes < 16 {
		t.Errorf("OnChipBytes = %d, want >= 16", res.OnChipBytes)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// Without the barrier rank 1 could read before rank 0 writes; the
	// barrier forces the ordering, so the result is deterministic.
	res := run(t, `
int *flag;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    flag = (int*)RCCE_shmalloc(sizeof(int));
    if (RCCE_ue() == 0) {
        int i; int x = 0;
        for (i = 0; i < 5000; i++) x += i;  /* rank 0 arrives late */
        *flag = x;
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    if (RCCE_ue() == 1) printf("flag %d\n", *flag);
    RCCE_finalize();
    return 0;
}`, DefaultOptions(2))
	if res.Output != "flag 12497500\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestLocksMutualExclusion(t *testing.T) {
	res := run(t, `
int *counter;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    counter = (int*)RCCE_shmalloc(sizeof(int));
    int i;
    for (i = 0; i < 200; i++) {
        RCCE_acquire_lock(0);
        *counter = *counter + 1;
        RCCE_release_lock(0);
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    if (RCCE_ue() == 0) printf("%d\n", *counter);
    RCCE_finalize();
    return 0;
}`, DefaultOptions(4))
	if res.Output != "800\n" {
		t.Errorf("output = %q, want 800", res.Output)
	}
}

func TestPutGetMoveData(t *testing.T) {
	res := run(t, `
char *src;
char *dst;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    src = (char*)RCCE_shmalloc(64);
    dst = (char*)RCCE_mpbmalloc(64);
    int me = RCCE_ue();
    if (me == 0) {
        int i;
        for (i = 0; i < 64; i++) src[i] = (char)i;
        RCCE_put(dst, src, 64, 0);
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    if (me == 1) printf("%d %d\n", dst[10], dst[63]);
    RCCE_finalize();
    return 0;
}`, DefaultOptions(2))
	if res.Output != "10 63\n" {
		t.Errorf("output = %q", res.Output)
	}
}

// TestParallelSpeedup: embarrassingly parallel work on N cores runs ~N
// times faster than on one.
func TestParallelSpeedup(t *testing.T) {
	src := func() string {
		return `
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    int n = RCCE_num_ues();
    int me = RCCE_ue();
    int total = 80000;
    int chunk = total / n;
    int i; int x = 0;
    for (i = me * chunk; i < (me + 1) * chunk; i++) x += i;
    RCCE_finalize();
    return 0;
}`
	}
	one := run(t, src(), DefaultOptions(1))
	eight := run(t, src(), DefaultOptions(8))
	speedup := float64(one.Makespan) / float64(eight.Makespan)
	if speedup < 6 || speedup > 9 {
		t.Errorf("8-core speedup = %.2f, want ~8", speedup)
	}
}

// TestMPBFasterThanShared: the same memory-heavy kernel runs faster from
// the MPB than from uncacheable shared DRAM — Fig 6.2's mechanism.
func TestMPBFasterThanShared(t *testing.T) {
	kernel := func(alloc string) string {
		return `
int *a;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    a = (int*)` + alloc + `(sizeof(int) * 512);
    int me = RCCE_ue();
    int n = RCCE_num_ues();
    int lo = me * (512 / n);
    int hi = lo + (512 / n);
    int pass; int i; int s = 0;
    for (pass = 0; pass < 20; pass++)
        for (i = lo; i < hi; i++) s += a[i];
    RCCE_finalize();
    return 0;
}`
	}
	off := run(t, kernel("RCCE_shmalloc"), DefaultOptions(4))
	on := run(t, kernel("RCCE_mpbmalloc"), DefaultOptions(4))
	if on.Makespan*2 > off.Makespan {
		t.Errorf("MPB run %d ps should be <1/2 of off-chip %d ps", on.Makespan, off.Makespan)
	}
}

// TestStripingLocality: with striping, each rank's slice is mostly local;
// without, ranks other than 0 pay remote MPB accesses.
func TestStripingLocality(t *testing.T) {
	src := `
int *a;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    a = (int*)RCCE_mpbmalloc(sizeof(int) * 1024);
    int me = RCCE_ue();
    int chunk = 1024 / RCCE_num_ues();
    int i;
    for (i = me * chunk; i < (me + 1) * chunk; i++) a[i] = me;
    RCCE_finalize();
    return 0;
}`
	striped := DefaultOptions(4)
	clumped := DefaultOptions(4)
	clumped.StripeMPB = false
	a := run(t, src, striped)
	b := run(t, src, clumped)
	if a.Stats.MPBRemote >= b.Stats.MPBRemote {
		t.Errorf("striped remote accesses %d !< clumped %d", a.Stats.MPBRemote, b.Stats.MPBRemote)
	}
}

func TestShmallocDivergenceDetected(t *testing.T) {
	_, err := tryRun(`
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    if (RCCE_ue() == 0) { RCCE_shmalloc(64); }
    else { RCCE_shmalloc(128); }
    RCCE_finalize();
    return 0;
}`, DefaultOptions(2))
	if err == nil || !strings.Contains(err.Error(), "diverges") {
		t.Errorf("err = %v, want divergence report", err)
	}
}

func TestMPBExhaustion(t *testing.T) {
	_, err := tryRun(`
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    RCCE_mpbmalloc(400000); /* > 384 KB */
    RCCE_finalize();
    return 0;
}`, DefaultOptions(2))
	if err == nil || !strings.Contains(err.Error(), "MPB exhausted") {
		t.Errorf("err = %v, want MPB exhausted", err)
	}
}

func TestRCCEWtime(t *testing.T) {
	res := run(t, `
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    double t0 = RCCE_wtime();
    int i; int x = 0;
    for (i = 0; i < 10000; i++) x += i;
    double t1 = RCCE_wtime();
    if (RCCE_ue() == 0) printf("%d\n", t1 > t0);
    RCCE_finalize();
    return 0;
}`, DefaultOptions(2))
	if res.Output != "1\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
int *d;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    d = (int*)RCCE_shmalloc(sizeof(int) * 16);
    int me = RCCE_ue();
    int i;
    for (i = 0; i < 50; i++) d[me] += i;
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return 0;
}`
	a := run(t, src, DefaultOptions(8))
	b := run(t, src, DefaultOptions(8))
	if a.Makespan != b.Makespan {
		t.Errorf("nondeterministic: %d vs %d", a.Makespan, b.Makespan)
	}
}

func TestTooManyUEs(t *testing.T) {
	if _, err := tryRun("int main() { return 0; }", DefaultOptions(64)); err == nil {
		t.Error("64 UEs on a 48-core machine should fail")
	}
}

// TestManyToOneMode: thesis §7.2 — more UEs than cores, time-multiplexed.
func TestManyToOneMode(t *testing.T) {
	src := `
int *acc;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    acc = (int*)RCCE_shmalloc(sizeof(int) * 64);
    int me = RCCE_ue();
    int i;
    for (i = 0; i < 200; i++) acc[me] = acc[me] + 1;
    RCCE_barrier(&RCCE_COMM_WORLD);
    if (me == 0) {
        int k; int sum = 0;
        for (k = 0; k < RCCE_num_ues(); k++) sum += acc[k];
        printf("sum %d\n", sum);
    }
    RCCE_finalize();
    return 0;
}`
	pr, err := interp.Compile("m2o.c", src)
	if err != nil {
		t.Fatal(err)
	}
	// 64 UEs on a 48-core chip: rejected without the flag...
	if _, err := Run(pr, sccsim.MustNew(sccsim.DefaultConfig()), DefaultOptions(64)); err == nil {
		t.Fatal("oversubscription should be rejected by default")
	}
	// ...accepted with it, and still correct.
	pr2, _ := interp.Compile("m2o.c", src)
	opts := DefaultOptions(64)
	opts.AllowOversubscribe = true
	res, err := Run(pr2, sccsim.MustNew(sccsim.DefaultConfig()), opts)
	if err != nil {
		t.Fatalf("many-to-one run: %v", err)
	}
	if res.Output != "sum 12800\n" {
		t.Errorf("output = %q, want sum 12800 (64 UEs x 200)", res.Output)
	}
}

// TestManyToOneSerializes: 8 UEs on 2 cores take roughly 4x the time of
// 8 UEs on 8 cores for the same total work.
func TestManyToOneSerializes(t *testing.T) {
	src := `
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    int i; int x = 0;
    for (i = 0; i < 20000; i++) x += i;
    RCCE_finalize();
    return 0;
}`
	run := func(cores []int) sccsim.Time {
		pr, err := interp.Compile("m2o2.c", src)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions(0)
		opts.Cores = cores
		opts.AllowOversubscribe = true
		res, err := Run(pr, sccsim.MustNew(sccsim.DefaultConfig()), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	spread := run([]int{0, 1, 2, 3, 4, 5, 6, 7})
	packed := run([]int{0, 0, 0, 0, 1, 1, 1, 1})
	ratio := float64(packed) / float64(spread)
	if ratio < 3 || ratio > 6 {
		t.Errorf("packed/spread makespan ratio = %.2f, want ~4 (4 UEs per core)", ratio)
	}
}

// TestPowerAPI: the SCC power-management routines (thesis §5.1).
func TestPowerAPI(t *testing.T) {
	res := run(t, `
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    if (RCCE_ue() == 0) {
        double before = RCCE_chip_power();
        int rc = RCCE_set_frequency(400);
        double after = RCCE_chip_power();
        printf("dom %d rc %d freq %d drop %d\n",
               RCCE_power_domain(), rc, RCCE_get_frequency(), after < before);
    }
    RCCE_finalize();
    return 0;
}`, DefaultOptions(2))
	if res.Output != "dom 0 rc 0 freq 400 drop 1\n" {
		t.Errorf("output = %q", res.Output)
	}
}

// TestPowerFrequencySlowsDomain: halving a domain's clock roughly doubles
// the compute time of its cores only.
func TestPowerFrequencySlowsDomain(t *testing.T) {
	src := `
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    if (RCCE_ue() == 0) { RCCE_set_frequency(MHZ); }
    RCCE_barrier(&RCCE_COMM_WORLD);
    int i; int x = 0;
    for (i = 0; i < 50000; i++) x += i;
    RCCE_finalize();
    return 0;
}`
	fast := run(t, strings.Replace(src, "MHZ", "800", 1), DefaultOptions(2))
	slow := run(t, strings.Replace(src, "MHZ", "400", 1), DefaultOptions(2))
	ratio := float64(slow.Makespan) / float64(fast.Makespan)
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("400 MHz / 800 MHz makespan ratio = %.2f, want ~2 (rank 0's domain)", ratio)
	}
	if RCCEInvalidFreqAccepted(t) {
		t.Error("invalid frequency accepted")
	}
}

// RCCEInvalidFreqAccepted checks the error path of RCCE_set_frequency.
func RCCEInvalidFreqAccepted(t *testing.T) bool {
	res := run(t, `
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    if (RCCE_ue() == 0) printf("rc %d\n", RCCE_set_frequency(9999));
    RCCE_finalize();
    return 0;
}`, DefaultOptions(1))
	return res.Output != "rc -1\n"
}
