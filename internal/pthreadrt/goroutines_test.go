package pthreadrt

import (
	"fmt"
	"runtime"
	"testing"

	"hsmcc/internal/interp"
	"hsmcc/internal/sccsim"
)

// countingRuntime wraps the pthread runtime and samples the host
// goroutine count at every statement boundary — including while threads
// are being created and joined mid-run.
type countingRuntime struct {
	inner   *Runtime
	samples int
	min     int
	max     int
}

func (c *countingRuntime) CallBuiltin(p *interp.Proc, name string, args []interp.Value) (interp.Value, bool, error) {
	return c.inner.CallBuiltin(p, name, args)
}

func (c *countingRuntime) Tick(p *interp.Proc) {
	n := runtime.NumGoroutine()
	if c.samples == 0 || n < c.min {
		c.min = n
	}
	if c.samples == 0 || n > c.max {
		c.max = n
	}
	c.samples++
	c.inner.Tick(p)
}

func (c *countingRuntime) OnExit(p *interp.Proc) { c.inner.OnExit(p) }

// TestCoroutineZeroGoroutines is the tentpole invariant: under the
// coroutine engine a multi-context run — threads created, scheduled,
// blocked on joins and mutexes, and exited mid-run — never creates a
// goroutine or varies the host goroutine count.
func TestCoroutineZeroGoroutines(t *testing.T) {
	checkZeroGoroutines(t, sccsim.DefaultConfig(), 8)
}

// TestCoroutineZeroGoroutinesMesh1024 re-pins the invariant at scale:
// 1024 contexts on the mesh1024 preset, where per-context allocations or
// a stray goroutine per switch would be 128x louder than on the SCC.
func TestCoroutineZeroGoroutinesMesh1024(t *testing.T) {
	checkZeroGoroutines(t, sccsim.MustPreset("mesh1024"), 1024)
}

// checkZeroGoroutines runs an nthreads-way create/lock/join program on a
// machine built from mcfg and asserts the host goroutine count never
// moves, sampled at every statement boundary.
func checkZeroGoroutines(t *testing.T, mcfg sccsim.Config, nthreads int) {
	t.Helper()
	src := fmt.Sprintf(`
int done[%d];
int gsum;
pthread_mutex_t mu;
void *tf(void *arg) {
  int me; int i;
  me = (int)arg;
  for (i = 0; i < 200; i++) done[me] = done[me] + i;
  pthread_mutex_lock(&mu);
  gsum = gsum + done[me];
  pthread_mutex_unlock(&mu);
  pthread_exit(NULL);
}
int main() {
  pthread_t th[%d];
  int t;
  pthread_mutex_init(&mu, NULL);
  for (t = 0; t < %d; t++) pthread_create(&th[t], NULL, tf, (void *)t);
  for (t = 0; t < %d; t++) pthread_join(th[t], NULL);
  printf("g %%d\n", gsum);
  return 0;
}`, nthreads, nthreads, nthreads, nthreads)
	pr, err := interp.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.FullyCompiled() {
		t.Fatal("program should compile fully")
	}
	sim := interp.NewSim(sccsim.MustNew(mcfg), pr)
	sim.Engine = interp.EngineCompiled
	rt := New(sim, DefaultOptions())
	counter := &countingRuntime{inner: rt}
	sim.Runtime = counter

	root, err := sim.Spawn(0, pr.Funcs["main"], nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt.tidOf[root] = 0
	rt.byTID[0] = root

	before := runtime.NumGoroutine()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	after := runtime.NumGoroutine()

	if !sim.Coroutine() {
		t.Fatal("expected coroutine mode")
	}
	if counter.samples == 0 {
		t.Fatal("runtime ticks never sampled")
	}
	if counter.min != before || counter.max != before {
		t.Errorf("goroutine count varied during the run: before=%d min=%d max=%d (samples=%d)",
			before, counter.min, counter.max, counter.samples)
	}
	if after != before {
		t.Errorf("goroutine count changed across the run: %d -> %d", before, after)
	}
	if got, want := sim.Output(), fmt.Sprintf("g %d\n", nthreads*19900); got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}
