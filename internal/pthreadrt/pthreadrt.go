// Package pthreadrt is the baseline execution environment of the paper's
// evaluation: a Pthread runtime in which every thread of a multithreaded
// program shares ONE core of the SCC ("multithreaded applications do run
// on the SCC, however they can only take advantage of a single core",
// thesis Chapter 6). Threads time-share the core under a round-robin
// scheduler with a fixed quantum; each context switch costs scheduler
// cycles and flushes the L1 (TLB/cache pollution), which is what makes
// the paper's 32-thread single-core baseline substantially slower than a
// single thread doing the same work.
package pthreadrt

import (
	"fmt"

	"hsmcc/internal/cc/types"
	"hsmcc/internal/interp"
	"hsmcc/internal/sccsim"
)

// Options configures the baseline runtime.
type Options struct {
	// Core is the SCC core the whole program runs on.
	Core int
	// QuantumCycles is the scheduling timeslice in core cycles.
	QuantumCycles int
	// SwitchCycles is the scheduler cost charged per context switch.
	SwitchCycles int
	// FlushOnSwitch models context-switch cache pollution by flushing
	// the L1 when the running thread changes.
	FlushOnSwitch bool
	// CreateCycles is the cost of pthread_create (kernel thread setup).
	CreateCycles int
	// Engine overrides the execution engine for the session (the zero
	// value defers to interp.DefaultEngine / HSMCC_ENGINE).
	Engine interp.Engine
	// Profiler, when non-nil, observes every timed data access of the
	// run (interp.Sim.Prof) — profiling a baseline uses the program's
	// static global addresses to label ranges.
	Profiler interp.MemProfiler
	// Cancel, when non-nil, is polled at every scheduling decision
	// (interp.Sim.Cancel): a non-nil return aborts the run promptly
	// with that error. Callers fingerprinting Options for cache keys
	// must exclude this field (it is per-request, not part of the run's
	// semantic identity).
	Cancel func() error
	// Trace, when non-nil, observes every scheduling event of the run
	// (interp.Sim.Trace): context spawns, run slices, blocks with
	// reasons, unblocks. Observation-only — results are identical with
	// or without it — and, like Cancel, excluded from cache
	// fingerprints.
	Trace interp.TraceSink
}

// DefaultOptions returns the calibrated baseline used by the experiment
// harness (EXPERIMENTS.md discusses the calibration).
func DefaultOptions() Options {
	return Options{
		Core:          0,
		QuantumCycles: 10_000,
		SwitchCycles:  1_500,
		FlushOnSwitch: true,
		CreateCycles:  8_000,
	}
}

// Runtime implements interp.Runtime for the single-core Pthread baseline.
type Runtime struct {
	sim  *interp.Sim
	opts Options

	quantum   sccsim.Time
	coreClock sccsim.Time
	nextTID   int64
	byTID     map[int64]*interp.Proc
	tidOf     map[*interp.Proc]int64
	joiners   map[int64][]*interp.Proc
	mutexes   map[uint32]*mutexState
	switches  uint64
}

type mutexState struct {
	owner   *interp.Proc
	waiters []*interp.Proc
}

// New attaches a baseline runtime (and its round-robin policy) to sim.
func New(sim *interp.Sim, opts Options) *Runtime {
	rt := &Runtime{
		sim:     sim,
		opts:    opts,
		quantum: sccsim.Time(opts.QuantumCycles) * sim.Machine.CorePeriodOf(opts.Core),
		byTID:   make(map[int64]*interp.Proc),
		tidOf:   make(map[*interp.Proc]int64),
		joiners: make(map[int64][]*interp.Proc),
		mutexes: make(map[uint32]*mutexState),
	}
	sim.Runtime = rt
	sim.Policy = &rrPolicy{rt: rt}
	return rt
}

// Switches reports how many context switches occurred.
func (rt *Runtime) Switches() uint64 { return rt.switches }

// rrPolicy keeps the current thread on the core until its quantum expires
// or it blocks, then rotates round-robin. Switching in a thread advances
// its clock to the core's time and charges the switch overhead. Current
// is tracked by pointer: the scheduler compacts finished contexts out of
// the scan list, so indices are not stable.
type rrPolicy struct {
	rt  *Runtime
	cur *interp.Proc
}

// Next implements interp.Policy.
func (pol *rrPolicy) Next(procs []*interp.Proc) *interp.Proc {
	if len(procs) == 0 {
		return nil
	}
	rt := pol.rt
	// Core time is the furthest any thread has run.
	coreClock := rt.coreClock
	for _, p := range procs {
		if p.Clock > coreClock {
			coreClock = p.Clock
		}
	}
	rt.coreClock = coreClock
	cur := len(procs) - 1
	for i, p := range procs {
		if p == pol.cur {
			cur = i
			break
		}
	}
	if pol.cur != nil && pol.cur.State == interp.Runnable && pol.cur.Clock-pol.cur.Slice < rt.quantum {
		return pol.cur
	}
	// Rotate to the next runnable thread.
	for off := 1; off <= len(procs); off++ {
		p := procs[(cur+off)%len(procs)]
		if p.State != interp.Runnable {
			continue
		}
		if p != pol.cur {
			rt.switches++
			if p.Clock < coreClock {
				p.Clock = coreClock
			}
			p.Clock += rt.sim.Machine.ComputeTime(p.Core, rt.opts.SwitchCycles)
			if rt.opts.FlushOnSwitch {
				p.Clock += rt.sim.Machine.FlushL1(p.Core)
			}
		}
		p.Slice = p.Clock
		pol.cur = p
		return p
	}
	return nil
}

// Tick implements interp.Runtime: preemption is handled in the policy (the
// context yields on its own memory-op cadence), so nothing to do here.
func (rt *Runtime) Tick(p *interp.Proc) {}

// OnExit wakes joiners of a finished thread.
func (rt *Runtime) OnExit(p *interp.Proc) {
	tid, ok := rt.tidOf[p]
	if !ok {
		return
	}
	for _, j := range rt.joiners[tid] {
		j.Unblock(p.Clock)
	}
	delete(rt.joiners, tid)
}

// CallBuiltin implements the Pthread API subset of thesis Algorithms 4-8.
//
// Every builtin follows the coroutine resumption protocol: a yield from
// ChargeCycles/StoreTyped/Block propagates with a PushResume frame whose
// step marks the continuation, and re-entry (Resuming true) pops the
// frame and skips everything already done. Side effects that must not
// repeat (Spawn, TID bookkeeping, waiter registration) sit strictly
// before the suspension that follows them. No builtin yields before
// committing to handle its call, so an unhandled name never touches the
// frame stack.
func (rt *Runtime) CallBuiltin(p *interp.Proc, name string, args []interp.Value) (interp.Value, bool, error) {
	zero := interp.IntValue(types.IntType, 0)
	step := 0
	if p.Resuming() {
		step, _ = p.PopResume()
	}
	switch name {
	case "pthread_create":
		// Steps: 0 charge; 1 spawn + bookkeeping + tid store; 2 done.
		if step == 0 {
			if len(args) < 4 {
				return zero, true, fmt.Errorf("pthread_create: want 4 arguments, got %d", len(args))
			}
			if rt.sim.Program.FuncByValue(args[2]) == nil {
				return zero, true, fmt.Errorf("pthread_create: third argument is not a function")
			}
			if err := p.ChargeCycles(rt.opts.CreateCycles); err != nil {
				p.PushResume(1, nil)
				return zero, true, err
			}
		}
		if step <= 1 {
			fn := rt.sim.Program.FuncByValue(args[2])
			child, err := rt.sim.Spawn(rt.opts.Core, fn, []interp.Value{args[3]}, p.Clock)
			if err != nil {
				return zero, true, err
			}
			rt.nextTID++
			tid := rt.nextTID
			rt.byTID[tid] = child
			rt.tidOf[child] = tid
			if addr := args[0].Addr(); addr != 0 {
				if err := p.StoreTyped(addr, types.OpaqueOf("pthread_t"), interp.IntValue(types.IntType, tid)); err != nil {
					if interp.IsYield(err) {
						p.PushResume(2, nil)
					}
					return zero, true, err
				}
			}
		}
		return zero, true, nil

	case "pthread_join":
		// Steps: 0 charge; 1 join test + block; 2 woken after the child
		// exited (the unblocker only wakes joiners from OnExit).
		if step == 0 {
			if len(args) < 1 {
				return zero, true, fmt.Errorf("pthread_join: missing thread ID")
			}
			tid := args[0].Int()
			child, ok := rt.byTID[tid]
			if !ok {
				return zero, true, fmt.Errorf("pthread_join: unknown thread %d", tid)
			}
			if err := p.ChargeCycles(200); err != nil {
				p.PushResume(1, nil)
				return zero, true, err
			}
			_ = child
		}
		if step <= 1 {
			tid := args[0].Int()
			child := rt.byTID[tid]
			if child.State != interp.Done {
				rt.joiners[tid] = append(rt.joiners[tid], p)
				if err := p.BlockFor(interp.ReasonJoin); err != nil {
					p.PushResume(2, nil)
					return zero, true, err
				}
			}
		}
		return zero, true, nil

	case "pthread_exit":
		return zero, true, interp.ThreadExitError()

	case "pthread_self":
		if step == 0 {
			if err := p.ChargeCycles(10); err != nil {
				p.PushResume(1, nil)
				return zero, true, err
			}
		}
		return interp.IntValue(types.IntType, rt.tidOf[p]), true, nil

	case "pthread_mutex_init", "pthread_mutex_destroy",
		"pthread_attr_init", "pthread_attr_destroy", "pthread_attr_setdetachstate":
		if step == 0 {
			if err := p.ChargeCycles(50); err != nil {
				p.PushResume(1, nil)
				return zero, true, err
			}
		}
		return zero, true, nil

	case "pthread_mutex_lock":
		// Steps: 0 charge; 1 acquire loop (a woken waiter re-enters the
		// loop and re-checks ownership, exactly as the blocking engine's
		// loop does after Block returns).
		mu := rt.mutex(args[0].Addr())
		if step == 0 {
			if err := p.ChargeCycles(25); err != nil { // futex fast path
				p.PushResume(1, nil)
				return zero, true, err
			}
		}
		for mu.owner != nil && mu.owner != p {
			mu.waiters = append(mu.waiters, p)
			if err := p.BlockFor(interp.ReasonMutex); err != nil {
				p.PushResume(1, nil)
				return zero, true, err
			}
		}
		mu.owner = p
		return zero, true, nil

	case "pthread_mutex_unlock":
		mu := rt.mutex(args[0].Addr())
		if step == 0 {
			if mu.owner != p {
				return zero, true, fmt.Errorf("pthread_mutex_unlock: not the owner")
			}
			if err := p.ChargeCycles(25); err != nil {
				p.PushResume(1, nil)
				return zero, true, err
			}
		}
		mu.owner = nil
		if len(mu.waiters) > 0 {
			w := mu.waiters[0]
			mu.waiters = mu.waiters[1:]
			w.Unblock(p.Clock)
		}
		return zero, true, nil
	}
	return interp.Value{}, false, nil
}

func (rt *Runtime) mutex(addr uint32) *mutexState {
	mu, ok := rt.mutexes[addr]
	if !ok {
		mu = &mutexState{}
		rt.mutexes[addr] = mu
	}
	return mu
}

// Result summarises one baseline run.
type Result struct {
	Makespan sccsim.Time
	Output   string
	Switches uint64
	Stats    sccsim.CoreStats
}

// Seconds returns the makespan in seconds.
func (r *Result) Seconds() float64 { return float64(r.Makespan) / sccsim.PsPerSecond }

// Run executes pr's main under the baseline runtime on a fresh scheduler
// bound to machine m.
func Run(pr *interp.Program, m *sccsim.Machine, opts Options) (*Result, error) {
	sim := interp.NewSim(m, pr)
	if opts.Engine != interp.EngineDefault {
		sim.Engine = opts.Engine
	}
	sim.Prof = opts.Profiler
	sim.Cancel = opts.Cancel
	sim.Trace = opts.Trace
	interp.BindTrace(opts.Trace, m)
	rt := New(sim, opts)
	main := pr.Funcs["main"]
	if main == nil {
		return nil, fmt.Errorf("pthreadrt: program has no main")
	}
	root, err := sim.Spawn(opts.Core, main, nil, 0)
	if err != nil {
		return nil, err
	}
	rt.tidOf[root] = 0
	rt.byTID[0] = root
	if err := sim.Run(); err != nil {
		return nil, err
	}
	return &Result{
		Makespan: sim.Makespan(),
		Output:   sim.Output(),
		Switches: rt.switches,
		Stats:    m.TotalStats(),
	}, nil
}
