package pthreadrt

import (
	"strings"
	"testing"

	"hsmcc/internal/interp"
	"hsmcc/internal/sccsim"
)

func run(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	pr, err := interp.Compile("test.c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := Run(pr, sccsim.MustNew(sccsim.DefaultConfig()), opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

const sumProgram = `
int sum[4] = {0};
void *tf(void *tid) {
    int me = (int)tid;
    int i;
    for (i = 0; i < 1000; i++) sum[me] += 1;
    pthread_exit(NULL);
}
int main() {
    pthread_t threads[4];
    int i;
    for (i = 0; i < 4; i++) pthread_create(&threads[i], NULL, tf, (void*)i);
    for (i = 0; i < 4; i++) pthread_join(threads[i], NULL);
    int total = 0;
    for (i = 0; i < 4; i++) total += sum[i];
    printf("total %d\n", total);
    return 0;
}`

func TestCreateJoin(t *testing.T) {
	res := run(t, sumProgram, DefaultOptions())
	if res.Output != "total 4000\n" {
		t.Errorf("output = %q, want total 4000", res.Output)
	}
	if res.Switches == 0 {
		t.Error("4 threads on one core must context-switch")
	}
}

func TestThreadsShareGlobals(t *testing.T) {
	res := run(t, `
int flag = 0;
int seen = 0;
void *setter(void *a) { flag = 42; pthread_exit(NULL); }
void *getter(void *a) {
    while (flag == 0) { }
    seen = flag;
    pthread_exit(NULL);
}
int main() {
    pthread_t a;
    pthread_t b;
    pthread_create(&a, NULL, getter, NULL);
    pthread_create(&b, NULL, setter, NULL);
    pthread_join(a, NULL);
    pthread_join(b, NULL);
    printf("%d\n", seen);
    return 0;
}`, DefaultOptions())
	if res.Output != "42\n" {
		t.Errorf("output = %q, want 42 (spin-wait requires preemption to terminate)", res.Output)
	}
}

func TestMutexProtectsCounter(t *testing.T) {
	res := run(t, `
pthread_mutex_t lock;
int counter = 0;
void *worker(void *a) {
    int i;
    for (i = 0; i < 500; i++) {
        pthread_mutex_lock(&lock);
        counter = counter + 1;
        pthread_mutex_unlock(&lock);
    }
    pthread_exit(NULL);
}
int main() {
    pthread_mutex_init(&lock, NULL);
    pthread_t t[3];
    int i;
    for (i = 0; i < 3; i++) pthread_create(&t[i], NULL, worker, NULL);
    for (i = 0; i < 3; i++) pthread_join(t[i], NULL);
    pthread_mutex_destroy(&lock);
    printf("%d\n", counter);
    return 0;
}`, DefaultOptions())
	if res.Output != "1500\n" {
		t.Errorf("output = %q, want 1500", res.Output)
	}
}

func TestPthreadSelf(t *testing.T) {
	res := run(t, `
void *tf(void *a) {
    printf("tid>0 %d\n", pthread_self() > 0);
    pthread_exit(NULL);
}
int main() {
    pthread_t x;
    pthread_create(&x, NULL, tf, NULL);
    pthread_join(x, NULL);
    return 0;
}`, DefaultOptions())
	if res.Output != "tid>0 1\n" {
		t.Errorf("output = %q", res.Output)
	}
}

// TestTimeSharingSerializes: N threads of equal work on one core take
// roughly N times one thread's makespan (plus switch overhead).
func TestTimeSharingSerializes(t *testing.T) {
	mk := func(n int) string {
		return strings.Replace(`
void *tf(void *a) {
    int i; int x = 0;
    for (i = 0; i < 20000; i++) x += i;
    pthread_exit(NULL);
}
int main() {
    pthread_t t[NN];
    int i;
    for (i = 0; i < NN; i++) pthread_create(&t[i], NULL, tf, (void*)i);
    for (i = 0; i < NN; i++) pthread_join(t[i], NULL);
    return 0;
}`, "NN", map[int]string{1: "1", 8: "8"}[n], -1)
	}
	one := run(t, mk(1), DefaultOptions())
	eight := run(t, mk(8), DefaultOptions())
	ratio := float64(eight.Makespan) / float64(one.Makespan)
	if ratio < 6 || ratio > 12 {
		t.Errorf("8-thread/1-thread makespan ratio = %.2f, want ~8", ratio)
	}
}

// TestSwitchOverheadCosts: a smaller quantum means more switches and a
// longer makespan for the same work.
func TestSwitchOverheadCosts(t *testing.T) {
	fast := DefaultOptions()
	slow := DefaultOptions()
	slow.QuantumCycles = 1_000
	a := run(t, sumProgram, fast)
	b := run(t, sumProgram, slow)
	if b.Switches <= a.Switches {
		t.Errorf("smaller quantum: %d switches !> %d", b.Switches, a.Switches)
	}
	if b.Makespan <= a.Makespan {
		t.Errorf("smaller quantum: makespan %d !> %d", b.Makespan, a.Makespan)
	}
}

// TestDeterminism: identical runs produce identical timing.
func TestDeterminism(t *testing.T) {
	a := run(t, sumProgram, DefaultOptions())
	b := run(t, sumProgram, DefaultOptions())
	if a.Makespan != b.Makespan || a.Switches != b.Switches {
		t.Errorf("nondeterministic: %d/%d vs %d/%d", a.Makespan, a.Switches, b.Makespan, b.Switches)
	}
}

func TestNoMainError(t *testing.T) {
	pr, err := interp.Compile("x.c", "int f() { return 1; }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(pr, sccsim.MustNew(sccsim.DefaultConfig()), DefaultOptions()); err == nil {
		t.Error("expected error for program without main")
	}
}

func TestJoinUnknownThread(t *testing.T) {
	pr, err := interp.Compile("x.c", `
int main() { pthread_join(77, NULL); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(pr, sccsim.MustNew(sccsim.DefaultConfig()), DefaultOptions()); err == nil {
		t.Error("expected error joining unknown thread")
	}
}

// TestNestedThreadCreation: a thread creating further threads (the
// baseline must handle transitive spawning).
func TestNestedThreadCreation(t *testing.T) {
	res := run(t, `
int hits[3];
void *leaf(void *tid) {
    hits[(int)tid] = 1;
    pthread_exit(NULL);
}
void *spawner(void *a) {
    pthread_t kids[2];
    pthread_create(&kids[0], NULL, leaf, (void*)1);
    pthread_create(&kids[1], NULL, leaf, (void*)2);
    pthread_join(kids[0], NULL);
    pthread_join(kids[1], NULL);
    hits[0] = 1;
    pthread_exit(NULL);
}
int main() {
    pthread_t s;
    pthread_create(&s, NULL, spawner, NULL);
    pthread_join(s, NULL);
    printf("%d %d %d\n", hits[0], hits[1], hits[2]);
    return 0;
}`, DefaultOptions())
	if res.Output != "1 1 1\n" {
		t.Errorf("output = %q, want 1 1 1", res.Output)
	}
}

// TestManyThreadsStackRecycling: far more sequential threads than stack
// slots — finished threads' stacks must be reused.
func TestManyThreadsStackRecycling(t *testing.T) {
	res := run(t, `
int n;
void *tick(void *a) { n = n + 1; pthread_exit(NULL); }
int main() {
    int i;
    pthread_t x;
    for (i = 0; i < 300; i++) {
        pthread_create(&x, NULL, tick, NULL);
        pthread_join(x, NULL);
    }
    printf("%d\n", n);
    return 0;
}`, DefaultOptions())
	if res.Output != "300\n" {
		t.Errorf("output = %q, want 300", res.Output)
	}
}
