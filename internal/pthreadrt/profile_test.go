package pthreadrt

import (
	"reflect"
	"testing"

	"hsmcc/internal/interp"
	"hsmcc/internal/profile"
	"hsmcc/internal/sccsim"
)

// TestBaselineProfilerCountsGlobalTraffic pins the Options.Profiler
// seam: profiling a baseline run labels the shared globals' static
// addresses with Collector.AddRange and observes exactly one report per
// timed access, under both engines — including the tree-walk's blocking
// goroutine scheduler, where yields suspend inside the accessors.
func TestBaselineProfilerCountsGlobalTraffic(t *testing.T) {
	const src = `
#include <stdio.h>
#include <pthread.h>

int counter[4];

void *tf(void *tid) {
    int me = (int)tid;
    counter[me] = counter[me] + 1;
    pthread_exit(0);
}

int main() {
    pthread_t t[4];
    int i;
    for (i = 0; i < 4; i++) {
        pthread_create(&t[i], 0, tf, (void *)i);
    }
    for (i = 0; i < 4; i++) {
        pthread_join(t[i], 0);
    }
    return 0;
}
`
	run := func(engine interp.Engine) []profile.VarStats {
		pr, err := interp.Compile("prof.c", src)
		if err != nil {
			t.Fatal(err)
		}
		col := profile.NewCollector(profile.Spec{})
		for _, d := range pr.File.Globals() {
			addr, ok := pr.GlobalAddr(d.Sym)
			if !ok {
				t.Fatalf("global %s has no address", d.Name)
			}
			col.AddRange(d.Name, addr, d.Type.Size())
		}
		opts := DefaultOptions()
		opts.Engine = engine
		opts.Profiler = col
		if _, err := Run(pr, sccsim.MustNew(sccsim.DefaultConfig()), opts); err != nil {
			t.Fatal(err)
		}
		return col.Snapshot()
	}

	compiled := run(interp.EngineCompiled)
	treewalk := run(interp.EngineTreeWalk)
	if !reflect.DeepEqual(compiled, treewalk) {
		t.Errorf("baseline profiles differ across engines:\ncompiled: %+v\ntreewalk: %+v", compiled, treewalk)
	}
	if len(compiled) != 1 || compiled[0].Name != "counter" {
		t.Fatalf("profile = %+v, want the counter array", compiled)
	}
	// Each of the four threads performs exactly one read and one write
	// of its element; any double-reporting across yields would inflate
	// these.
	if compiled[0].Reads != 4 || compiled[0].Writes != 4 {
		t.Errorf("counter traffic = %d reads/%d writes, want 4/4", compiled[0].Reads, compiled[0].Writes)
	}
}
