package interthread

import (
	"testing"

	"hsmcc/internal/analysis/scope"
	"hsmcc/internal/cc/parser"
	"hsmcc/internal/cc/sema"
)

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	f, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return Analyze(scope.Analyze(info))
}

const loopLaunch = `
int data[4];
void *tf(void *tid) {
    int me = (int)tid;
    data[me] = me;
    pthread_exit(NULL);
}
int main() {
    pthread_t th[4];
    int t;
    for (t = 0; t < 4; t++) pthread_create(&th[t], NULL, tf, (void*)t);
    for (t = 0; t < 4; t++) pthread_join(th[t], NULL);
    return data[0];
}`

func TestLaunchDetection(t *testing.T) {
	r := analyze(t, loopLaunch)
	if len(r.Launches) != 1 {
		t.Fatalf("launches = %d, want 1", len(r.Launches))
	}
	l := r.Launches[0]
	if l.Func != "tf" || l.Caller != "main" || !l.InLoop {
		t.Errorf("launch = %+v, want tf from main in a loop", l)
	}
	if r.ThreadFuncs["tf"] == 0 {
		t.Error("tf not recorded as a thread function")
	}
}

func TestVariableInThreadClassification(t *testing.T) {
	r := analyze(t, loopLaunch)
	// data is used inside tf, launched in a loop -> multiple threads.
	if got := r.VariableInThread(r.Scope.Lookup("data")); got != scope.InMultipleThreads {
		t.Errorf("data presence = %v, want InMultipleThreads", got)
	}
	// me is a local of tf: in a thread, but thread-private.
	if got := r.VariableInThread(r.Scope.Lookup("me")); got == scope.NotInThread {
		t.Errorf("me presence = %v, want in-thread", got)
	}
	// t lives only in main.
	if got := r.VariableInThread(r.Scope.Lookup("t")); got != scope.NotInThread {
		t.Errorf("t presence = %v, want NotInThread", got)
	}
}

func TestSharingRefinement(t *testing.T) {
	r := analyze(t, loopLaunch)
	// Globals touched by threads stay shared.
	if got := r.Scope.Lookup("data").Current(); got != scope.Shared {
		t.Errorf("data = %v, want Shared", got)
	}
	// Locals become private.
	for _, name := range []string{"me", "t", "th", "tid"} {
		if got := r.Scope.Lookup(name).Current(); got != scope.Private {
			t.Errorf("%s = %v, want Private", name, got)
		}
	}
}

func TestSingleLaunchOutsideLoop(t *testing.T) {
	r := analyze(t, `
int flag;
void *task(void *a) { flag = 1; pthread_exit(NULL); }
int main() {
    pthread_t x;
    pthread_create(&x, NULL, task, NULL);
    pthread_join(x, NULL);
    return flag;
}`)
	if len(r.Launches) != 1 || r.Launches[0].InLoop {
		t.Fatalf("want one non-loop launch, got %+v", r.Launches)
	}
	if got := r.VariableInThread(r.Scope.Lookup("flag")); got != scope.InSingleThread {
		t.Errorf("flag presence = %v, want InSingleThread", got)
	}
	// Still shared: written in the thread, read by main.
	if got := r.Scope.Lookup("flag").Current(); got != scope.Shared {
		t.Errorf("flag = %v, want Shared", got)
	}
}

func TestSameFuncLaunchedTwice(t *testing.T) {
	r := analyze(t, `
int v;
void *task(void *a) { v = v + 1; pthread_exit(NULL); }
int main() {
    pthread_t a;
    pthread_t b;
    pthread_create(&a, NULL, task, NULL);
    pthread_create(&b, NULL, task, NULL);
    pthread_join(a, NULL);
    pthread_join(b, NULL);
    return v;
}`)
	if r.ThreadFuncs["task"] != 2 {
		t.Errorf("task launch count = %d, want 2", r.ThreadFuncs["task"])
	}
	// Two static launch sites of the same function = multiple threads
	// (Algorithm 1's `seen > 1` branch).
	if got := r.VariableInThread(r.Scope.Lookup("v")); got != scope.InMultipleThreads {
		t.Errorf("v presence = %v, want InMultipleThreads", got)
	}
}

func TestNoThreadsProgram(t *testing.T) {
	r := analyze(t, `
int g;
int main() { g = 2; return g; }`)
	if len(r.Launches) != 0 {
		t.Errorf("launches = %d, want 0", len(r.Launches))
	}
	// A global in a threadless program is still (conservatively) shared
	// after Stage 1, and Stage 2 has no thread evidence to change it.
	if got := r.Scope.Lookup("g").Stage2; got == scope.Unknown {
		t.Error("stage 2 should have assigned a status")
	}
}
