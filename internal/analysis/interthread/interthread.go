// Package interthread implements Stage 2 of the paper's framework:
// inter-thread analysis (thesis §4.2, Algorithm 1). It discovers which
// functions are launched as threads via pthread_create, classifies every
// variable as appearing in no thread, a single thread, or multiple threads,
// and refines the sharing status: variables declared inside functions
// (locals and parameters) become Private, while globals keep their Shared
// status from Stage 1.
package interthread

import (
	"hsmcc/internal/analysis/scope"
	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/token"
)

// ThreadLaunch describes one pthread_create site.
type ThreadLaunch struct {
	// Func is the thread function's name (pthread_create argument 3).
	Func string
	// Caller is the function containing the call.
	Caller string
	// InLoop reports whether the call sits inside a loop.
	InLoop bool
	// Arg is the expression passed as the thread argument (argument 4).
	Arg ast.Expr
	// Call is the pthread_create call expression itself.
	Call *ast.CallExpr
}

// Result carries Stage 2's findings on top of the Stage 1 result.
type Result struct {
	Scope *scope.Result
	// Launches lists every pthread_create site in source order.
	Launches []ThreadLaunch
	// ThreadFuncs maps each function launched as a thread to how many
	// static launch sites it has (a site in a loop counts as many).
	ThreadFuncs map[string]int
}

// Analyze runs Stage 2.
func Analyze(sr *scope.Result) *Result {
	r := &Result{
		Scope:       sr,
		ThreadFuncs: make(map[string]int),
	}
	r.findLaunches()
	r.classifyVariables()
	r.refineSharing()
	return r
}

// findLaunches locates pthread_create calls and whether they are in loops.
func (r *Result) findLaunches() {
	for _, fn := range r.Scope.Info.File.Funcs() {
		r.walkStmts(fn.Body.List, fn.Name, false)
	}
}

func (r *Result) walkStmts(list []ast.Stmt, caller string, inLoop bool) {
	for _, s := range list {
		r.walkStmt(s, caller, inLoop)
	}
}

func (r *Result) walkStmt(s ast.Stmt, caller string, inLoop bool) {
	switch n := s.(type) {
	case *ast.BlockStmt:
		r.walkStmts(n.List, caller, inLoop)
	case *ast.ExprStmt:
		r.scanExpr(n.X, caller, inLoop)
	case *ast.DeclStmt:
		if n.Decl.Init != nil {
			r.scanExpr(n.Decl.Init, caller, inLoop)
		}
	case *ast.IfStmt:
		r.scanExpr(n.Cond, caller, inLoop)
		r.walkStmt(n.Then, caller, inLoop)
		if n.Else != nil {
			r.walkStmt(n.Else, caller, inLoop)
		}
	case *ast.ForStmt:
		if n.Init != nil {
			r.walkStmt(n.Init, caller, inLoop)
		}
		r.walkStmt(n.Body, caller, true)
	case *ast.WhileStmt:
		r.walkStmt(n.Body, caller, true)
	case *ast.DoWhileStmt:
		r.walkStmt(n.Body, caller, true)
	case *ast.SwitchStmt:
		for _, cl := range n.Cases {
			r.walkStmts(cl.Body, caller, inLoop)
		}
	case *ast.ReturnStmt:
		if n.Result != nil {
			r.scanExpr(n.Result, caller, inLoop)
		}
	}
}

func (r *Result) scanExpr(e ast.Expr, caller string, inLoop bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.FuncName() != "pthread_create" || len(call.Args) < 4 {
			return true
		}
		fnName := threadFuncName(call.Args[2])
		if fnName == "" {
			return true
		}
		r.Launches = append(r.Launches, ThreadLaunch{
			Func:   fnName,
			Caller: caller,
			InLoop: inLoop,
			Arg:    call.Args[3],
			Call:   call,
		})
		if inLoop {
			// A launch inside a loop stands for many threads; weight 2 so
			// Algorithm 1's "seen > 1" test reports multiple threads.
			r.ThreadFuncs[fnName] += 2
		} else {
			r.ThreadFuncs[fnName]++
		}
		return true
	})
}

// threadFuncName extracts the function name from pthread_create's third
// argument, stripping casts and a leading &.
func threadFuncName(e ast.Expr) string {
	switch n := ast.Unparen(e).(type) {
	case *ast.Ident:
		return n.Name
	case *ast.CastExpr:
		return threadFuncName(n.X)
	case *ast.UnaryExpr:
		if n.Op == token.Amp {
			return threadFuncName(n.X)
		}
	}
	return ""
}

// VariableInThread is the paper's Algorithm 1: given a variable, report
// whether it appears in no thread, a single thread, or multiple threads.
// A variable "appears in" a thread when a procedure that reads or writes
// it is launched by pthread_create; the launch being inside a loop, or the
// procedure having more than one launch site, means multiple threads.
func (r *Result) VariableInThread(v *scope.VarInfo) scope.ThreadPresence {
	procs := make(map[string]bool)
	for _, fn := range v.UseIn {
		procs[fn] = true
	}
	for _, fn := range v.DefIn {
		procs[fn] = true
	}
	best := scope.NotInThread
	for proc := range procs {
		seen, isThread := r.ThreadFuncs[proc]
		if !isThread {
			continue
		}
		if seen > 1 {
			return scope.InMultipleThreads
		}
		if best < scope.InSingleThread {
			best = scope.InSingleThread
		}
	}
	return best
}

// classifyVariables records Algorithm 1's result for every variable.
func (r *Result) classifyVariables() {
	for _, v := range r.Scope.Vars {
		v.Presence = r.VariableInThread(v)
	}
}

// refineSharing applies Stage 2's status update: locals and parameters are
// per-thread (or per-process after translation) and become Private; global
// variables keep Shared (Table 4.2 column "Stage 2").
func (r *Result) refineSharing() {
	for _, v := range r.Scope.Vars {
		if v.IsGlobal() {
			v.SetStage(2, scope.Shared)
		} else {
			v.SetStage(2, scope.Private)
		}
	}
}
