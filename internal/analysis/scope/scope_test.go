package scope

import (
	"strings"
	"testing"

	"hsmcc/internal/cc/parser"
	"hsmcc/internal/cc/sema"
)

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	f, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return Analyze(info)
}

func TestGlobalsStartShared(t *testing.T) {
	r := analyze(t, `
int g;
int main() { return 0; }`)
	v := r.Lookup("g")
	if v == nil || v.Stage1 != Shared {
		t.Fatalf("global starts %v, want Shared", v.Stage1)
	}
	if !v.IsGlobal() {
		t.Error("IsGlobal false for a global")
	}
}

func TestLocalsStartUnknown(t *testing.T) {
	r := analyze(t, "int main() { int l = 0; return l; }")
	v := r.Lookup("l")
	if v == nil || v.Stage1 != Unknown {
		t.Fatalf("local starts %v, want Unknown", v.Stage1)
	}
}

func TestReadWriteCounting(t *testing.T) {
	r := analyze(t, `
int main() {
    int a = 1;      /* 1 write */
    int b;
    b = a;          /* a: 1 read, b: 1 write */
    b += a;         /* a: 1 read, b: 1 read + 1 write */
    b++;            /* b: 1 read + 1 write */
    --b;            /* b: 1 read + 1 write */
    int c = a + b;  /* a,b read; c write */
    return c;       /* c read */
}`)
	a, b, c := r.Lookup("a"), r.Lookup("b"), r.Lookup("c")
	if a.Reads != 3 || a.Writes != 1 {
		t.Errorf("a rd/wr = %d/%d, want 3/1", a.Reads, a.Writes)
	}
	if b.Reads != 4 || b.Writes != 4 {
		t.Errorf("b rd/wr = %d/%d, want 4/4", b.Reads, b.Writes)
	}
	if c.Reads != 1 || c.Writes != 1 {
		t.Errorf("c rd/wr = %d/%d, want 1/1", c.Reads, c.Writes)
	}
}

func TestGlobalInitializerNotCounted(t *testing.T) {
	r := analyze(t, `
int g = 7;
int arr[3] = {1, 2, 3};
int main() { return g + arr[0]; }`)
	if v := r.Lookup("g"); v.Writes != 0 {
		t.Errorf("g writes = %d, want 0 (loader-applied)", v.Writes)
	}
	if v := r.Lookup("arr"); v.Writes != 0 {
		t.Errorf("arr writes = %d, want 0", v.Writes)
	}
}

func TestAddressTaken(t *testing.T) {
	r := analyze(t, `
int main() {
    int x = 1;
    int y = 2;
    int *p = &x;
    return *p + y;
}`)
	if !r.Lookup("x").AddressTaken {
		t.Error("x address-taken not detected")
	}
	if r.Lookup("y").AddressTaken {
		t.Error("y wrongly marked address-taken")
	}
	// &x counts as one read of x (thesis threads.Rd convention).
	if got := r.Lookup("x").Reads; got != 1 {
		t.Errorf("x reads = %d, want 1 (the &x)", got)
	}
}

func TestUseDefFunctions(t *testing.T) {
	r := analyze(t, `
int g;
void f1() { g = 1; }
int f2() { return g; }
int main() { f1(); return f2(); }`)
	v := r.Lookup("g")
	if strings.Join(v.DefIn, ",") != "f1" {
		t.Errorf("DefIn = %v, want [f1]", v.DefIn)
	}
	if strings.Join(v.UseIn, ",") != "f2" {
		t.Errorf("UseIn = %v, want [f2]", v.UseIn)
	}
}

func TestArrayCountAndMemSize(t *testing.T) {
	r := analyze(t, `
double big[100];
int main() { return (int)big[0]; }`)
	v := r.Lookup("big")
	if v.Count != 100 {
		t.Errorf("Count = %d, want 100", v.Count)
	}
	if v.MemSize != 800 {
		t.Errorf("MemSize = %d, want 800", v.MemSize)
	}
}

func TestSharedVars(t *testing.T) {
	r := analyze(t, `
int a;
int b;
int main() { return a + b; }`)
	if got := len(r.SharedVars()); got != 2 {
		t.Errorf("SharedVars = %d, want 2 (globals after Stage 1)", got)
	}
}

func TestStatusTransitions(t *testing.T) {
	v := &VarInfo{Stage1: Shared}
	if v.Current() != Shared {
		t.Error("Current after stage 1")
	}
	v.SetStage(2, Private)
	if v.Current() != Private || v.Stage2 != Private {
		t.Error("SetStage(2) not reflected")
	}
	v.SetStage(3, Shared)
	if v.Current() != Shared || v.Stage3 != Shared {
		t.Error("SetStage(3) not reflected")
	}
}

func TestSortedByMemSize(t *testing.T) {
	r := analyze(t, `
double big[10];
int small;
char mid[6];
int main() { return small + (int)big[0] + mid[0]; }`)
	sorted := SortedByMemSize(r.SharedVars())
	if sorted[0].Name != "small" || sorted[1].Name != "mid" || sorted[2].Name != "big" {
		var names []string
		for _, v := range sorted {
			names = append(names, v.Name)
		}
		t.Errorf("order = %v, want [small mid big]", names)
	}
}

func TestTableRow(t *testing.T) {
	r := analyze(t, "int g;\nint main() { return g; }")
	row := r.Lookup("g").TableRow()
	if !strings.Contains(row, "g") || !strings.Contains(row, "int") {
		t.Errorf("TableRow = %q", row)
	}
}

func TestStatusStrings(t *testing.T) {
	if Unknown.String() != "null" || Shared.String() != "true" || Private.String() != "false" {
		t.Errorf("status strings: %s/%s/%s", Unknown, Shared, Private)
	}
}

func TestCallArgumentsCountAsReads(t *testing.T) {
	r := analyze(t, `
int main() {
    int v = 3;
    printf("%d %d\n", v, v + 1);
    return 0;
}`)
	// v read twice in the call (plus none elsewhere).
	if got := r.Lookup("v").Reads; got != 2 {
		t.Errorf("v reads = %d, want 2", got)
	}
}
