// Package scope implements Stage 1 of the paper's framework: variable
// scope analysis. For every variable (global, local, parameter) it extracts
// the basic properties of Table 4.1 — name, type, size, static read and
// write counts, and the procedures each variable is used and defined in —
// and assigns the initial sharing status (globals start Shared, everything
// else Unknown; thesis §4.1).
package scope

import (
	"fmt"
	"sort"
	"strings"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/sema"
	"hsmcc/internal/cc/token"
	"hsmcc/internal/cc/types"
)

// Status is the tri-state sharing status of Table 4.2: Unknown corresponds
// to the thesis's "null", Shared to "true" and Private to "false".
type Status int

// Sharing statuses.
const (
	Unknown Status = iota
	Private
	Shared
)

// String renders the status like the thesis tables.
func (s Status) String() string {
	switch s {
	case Shared:
		return "true"
	case Private:
		return "false"
	default:
		return "null"
	}
}

// ThreadPresence is the result of the paper's Algorithm 1 for a variable.
type ThreadPresence int

// Thread presence values (Algorithm 1 return values).
const (
	NotInThread ThreadPresence = iota
	InSingleThread
	InMultipleThreads
)

// String renders the presence like the thesis text.
func (t ThreadPresence) String() string {
	switch t {
	case InSingleThread:
		return "In Single Thread"
	case InMultipleThreads:
		return "In Multiple Threads"
	default:
		return "Not in Thread"
	}
}

// VarInfo is the per-variable record built up across Stages 1-3
// (Table 4.1 plus the sharing-status trajectory of Table 4.2).
type VarInfo struct {
	Sym  *ast.Symbol
	Name string
	Type *types.Type
	// Count is the element count: array length for arrays, 1 otherwise
	// (the "Size" column of Table 4.1).
	Count int
	// MemSize is the total storage in bytes (Algorithm 3's mem_size).
	MemSize int
	Reads   int
	Writes  int
	// UseIn/DefIn are the function names the variable is read/written in,
	// in first-occurrence order.
	UseIn []string
	DefIn []string
	// AddressTaken reports whether &v occurs anywhere.
	AddressTaken bool

	// Status trajectory: after Stage 1, 2 and 3. Current() returns the
	// latest stage that has run.
	Stage1, Stage2, Stage3 Status
	stagesRun              int

	// Presence is Algorithm 1's classification (filled by Stage 2).
	Presence ThreadPresence
}

// Current returns the sharing status after the most recent stage.
func (v *VarInfo) Current() Status {
	switch v.stagesRun {
	case 0, 1:
		return v.Stage1
	case 2:
		return v.Stage2
	default:
		return v.Stage3
	}
}

// SetStage records status s as the result of stage n (2 or 3), following
// the thesis rule that a status may be refined but changes from null are
// always accepted.
func (v *VarInfo) SetStage(n int, s Status) {
	switch n {
	case 2:
		v.Stage2 = s
		if v.stagesRun < 2 {
			v.stagesRun = 2
		}
	case 3:
		v.Stage3 = s
		if v.stagesRun < 3 {
			v.stagesRun = 3
		}
	}
}

// IsGlobal reports whether the variable has file scope.
func (v *VarInfo) IsGlobal() bool { return v.Sym.Global }

// Result is the outcome of Stage 1 (and the carrier for Stages 2-3).
type Result struct {
	Info *sema.Info
	// Vars lists all analysed variables: globals first in declaration
	// order, then locals/params per function in source order.
	Vars []*VarInfo
	// BySym maps symbols to their records.
	BySym map[*ast.Symbol]*VarInfo
}

// Lookup finds the record for a variable by name, preferring globals, then
// any local with that name (test convenience; names in the benchmark
// sources are unique).
func (r *Result) Lookup(name string) *VarInfo {
	var local *VarInfo
	for _, v := range r.Vars {
		if v.Name != name {
			continue
		}
		if v.IsGlobal() {
			return v
		}
		if local == nil {
			local = v
		}
	}
	return local
}

// SharedVars returns the variables whose current status is Shared.
func (r *Result) SharedVars() []*VarInfo {
	var out []*VarInfo
	for _, v := range r.Vars {
		if v.Current() == Shared {
			out = append(out, v)
		}
	}
	return out
}

// Analyze runs Stage 1 over the translation unit.
//
// Counting rules (DESIGN.md §5): assignment LHS counts one write; compound
// assignment and ++/-- count one read and one write; a declaration
// initializer counts one write; every other identifier occurrence
// evaluated for its value — including array subscripts, call arguments and
// the operand of & — counts one read. Calls that pass &v to an API that
// stores through it (pthread_create's thread-ID argument) mark v defined
// in that function.
func Analyze(info *sema.Info) *Result {
	r := &Result{
		Info:  info,
		BySym: make(map[*ast.Symbol]*VarInfo),
	}
	record := func(sym *ast.Symbol) *VarInfo {
		if sym == nil || sym.Kind == ast.SymFunc {
			return nil
		}
		if v, ok := r.BySym[sym]; ok {
			return v
		}
		count := 1
		if sym.Type.Kind == types.Array {
			count = sym.Type.Len
		}
		v := &VarInfo{
			Sym:     sym,
			Name:    sym.Name,
			Type:    sym.Type,
			Count:   count,
			MemSize: sym.Type.Size(),
		}
		if sym.Global {
			v.Stage1 = Shared
		}
		r.BySym[sym] = v
		r.Vars = append(r.Vars, v)
		return v
	}
	for _, sym := range info.AllSymbols {
		record(sym)
	}

	// Global initializers are static data set up by the loader, not
	// runtime stores: they contribute neither reads nor writes (this is
	// what makes sum.Wr = 2 in Table 4.1 — the `= {0}` initialiser is
	// not an access). Local initialisers, by contrast, execute at run
	// time and are counted in countWalker.stmt.

	for _, fn := range info.File.Funcs() {
		cw := &countWalker{r: r, fn: fn.Name}
		cw.stmts(fn.Body.List)
	}
	return r
}

// countWalker performs the read/write counting walk inside one function.
type countWalker struct {
	r  *Result
	fn string
}

func (c *countWalker) varOf(e ast.Expr) *VarInfo {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return c.r.BySym[id.Sym]
	}
	return nil
}

func appendUnique(list []string, s string) []string {
	for _, x := range list {
		if x == s {
			return list
		}
	}
	return append(list, s)
}

func (c *countWalker) markRead(v *VarInfo) {
	if v == nil {
		return
	}
	v.Reads++
	if c.fn != "" {
		v.UseIn = appendUnique(v.UseIn, c.fn)
	}
}

func (c *countWalker) markWrite(v *VarInfo) {
	if v == nil {
		return
	}
	v.Writes++
	if c.fn != "" {
		v.DefIn = appendUnique(v.DefIn, c.fn)
	}
}

func (c *countWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *countWalker) stmt(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.BlockStmt:
		c.stmts(n.List)
	case *ast.DeclStmt:
		d := n.Decl
		if d.Init != nil || d.InitLst != nil {
			c.markWrite(c.r.BySym[d.Sym])
			if d.Init != nil {
				c.read(d.Init)
			}
			for _, e := range d.InitLst {
				c.read(e)
			}
		}
	case *ast.ExprStmt:
		c.read(n.X)
	case *ast.IfStmt:
		c.read(n.Cond)
		c.stmt(n.Then)
		if n.Else != nil {
			c.stmt(n.Else)
		}
	case *ast.ForStmt:
		if n.Init != nil {
			c.stmt(n.Init)
		}
		if n.Cond != nil {
			c.read(n.Cond)
		}
		if n.Post != nil {
			c.read(n.Post)
		}
		c.stmt(n.Body)
	case *ast.WhileStmt:
		c.read(n.Cond)
		c.stmt(n.Body)
	case *ast.DoWhileStmt:
		c.stmt(n.Body)
		c.read(n.Cond)
	case *ast.SwitchStmt:
		c.read(n.Tag)
		for _, cl := range n.Cases {
			if cl.Value != nil {
				c.read(cl.Value)
			}
			c.stmts(cl.Body)
		}
	case *ast.ReturnStmt:
		if n.Result != nil {
			c.read(n.Result)
		}
	}
}

// read walks e in a value context.
func (c *countWalker) read(e ast.Expr) {
	switch n := ast.Unparen(e).(type) {
	case nil:
	case *ast.Ident:
		c.markRead(c.r.BySym[n.Sym])
	case *ast.IntLit, *ast.FloatLit, *ast.StringLit, *ast.CharLit, *ast.SizeofExpr:
		if se, ok := n.(*ast.SizeofExpr); ok && se.X != nil {
			// sizeof does not evaluate its operand: no counts.
			return
		}
	case *ast.AssignExpr:
		c.assign(n)
	case *ast.BinaryExpr:
		c.read(n.X)
		c.read(n.Y)
	case *ast.UnaryExpr:
		switch n.Op {
		case token.PlusPlus, token.MinusMinus:
			c.rmw(n.X)
		case token.Amp:
			// &x evaluates x's address: one read of the base variable
			// (the thesis counts &threads[local] as a read of threads).
			c.readAddr(n.X)
		default:
			c.read(n.X)
		}
	case *ast.PostfixExpr:
		c.rmw(n.X)
	case *ast.IndexExpr:
		c.read(n.X)
		c.read(n.Index)
	case *ast.CallExpr:
		c.call(n)
	case *ast.CastExpr:
		c.read(n.X)
	case *ast.CondExpr:
		c.read(n.Cond)
		c.read(n.Then)
		c.read(n.Else)
	case *ast.CommaExpr:
		c.read(n.X)
		c.read(n.Y)
	case *ast.MemberExpr:
		c.read(n.X)
	}
}

// readAddr handles the operand of &: the base variable is read (address
// materialised), subscripts are value reads, and the variable is flagged
// address-taken.
func (c *countWalker) readAddr(e ast.Expr) {
	switch n := ast.Unparen(e).(type) {
	case *ast.Ident:
		v := c.r.BySym[n.Sym]
		c.markRead(v)
		if v != nil {
			v.AddressTaken = true
		}
	case *ast.IndexExpr:
		c.readAddr(n.X)
		c.read(n.Index)
	case *ast.UnaryExpr:
		c.read(n.X)
	case *ast.MemberExpr:
		c.readAddr(n.X)
	default:
		c.read(e)
	}
}

// assign counts an assignment: writes the LHS target, reads for compound
// ops, and reads the RHS.
func (c *countWalker) assign(n *ast.AssignExpr) {
	compound := n.Op != token.Assign
	c.lvalue(n.LHS, compound)
	c.read(n.RHS)
}

// rmw counts x++ / --x / x += style read-modify-write of an lvalue.
func (c *countWalker) rmw(e ast.Expr) {
	c.lvalue(e, true)
}

// lvalue counts a store target. alsoRead adds the read half of a
// read-modify-write.
func (c *countWalker) lvalue(e ast.Expr, alsoRead bool) {
	switch n := ast.Unparen(e).(type) {
	case *ast.Ident:
		v := c.r.BySym[n.Sym]
		if alsoRead {
			c.markRead(v)
		}
		c.markWrite(v)
	case *ast.IndexExpr:
		// Writing a[i] counts a write (and, for compound ops, a read) of
		// the array variable; the subscript is a value read.
		c.lvalue(n.X, alsoRead)
		c.read(n.Index)
	case *ast.UnaryExpr:
		if n.Op == token.Star {
			// *p = x reads p (to form the address); the pointee write is
			// attributed via points-to in Stage 3, not counted here.
			c.read(n.X)
			return
		}
		c.read(n.X)
	case *ast.MemberExpr:
		c.lvalue(n.X, alsoRead)
	default:
		c.read(e)
	}
}

// call counts a function call's arguments and applies API write-through
// effects: pthread_create's first argument stores the new thread's ID, so
// the pointed-to variable is defined here (Table 4.1 lists threads as
// defined in main).
func (c *countWalker) call(n *ast.CallExpr) {
	name := n.FuncName()
	for i, a := range n.Args {
		c.read(a)
		if name == "pthread_create" && i == 0 {
			if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.Amp {
				if v := c.baseVar(u.X); v != nil && c.fn != "" {
					v.DefIn = appendUnique(v.DefIn, c.fn)
				}
			}
		}
	}
}

// baseVar finds the root variable of an lvalue expression.
func (c *countWalker) baseVar(e ast.Expr) *VarInfo {
	switch n := ast.Unparen(e).(type) {
	case *ast.Ident:
		return c.r.BySym[n.Sym]
	case *ast.IndexExpr:
		return c.baseVar(n.X)
	case *ast.MemberExpr:
		return c.baseVar(n.X)
	}
	return nil
}

// TableRow renders a variable like a Table 4.1 row (for dumps and tests).
func (v *VarInfo) TableRow() string {
	ty := v.Type.String()
	if v.Type.Kind == types.Array {
		ty = v.Type.Elem.String() + "*"
	}
	use := strings.Join(v.UseIn, ", ")
	if use == "" {
		use = "null"
	}
	def := strings.Join(v.DefIn, ", ")
	if def == "" {
		def = "null"
	}
	return fmt.Sprintf("%s %s %d %d %d %s %s", v.Name, ty, v.Count, v.Reads, v.Writes, use, def)
}

// SortedByMemSize returns vars ascending by MemSize then name — the order
// Algorithm 3 partitions in.
func SortedByMemSize(vars []*VarInfo) []*VarInfo {
	out := append([]*VarInfo(nil), vars...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].MemSize != out[j].MemSize {
			return out[i].MemSize < out[j].MemSize
		}
		return out[i].Name < out[j].Name
	})
	return out
}
