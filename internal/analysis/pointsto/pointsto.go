// Package pointsto implements Stage 3 of the paper's framework: alias and
// pointer analysis (thesis §4.3, Algorithm 2). It is an Andersen-style
// inclusion-based points-to analysis — interprocedural, flow-insensitive —
// with the thesis's definite/possibly classification layered on top using
// control-flow information: a relationship is "definite" when it is
// established by an unconditional `p = &x` and the pointer has exactly one
// target; anything reached through branches, loops, or copy chains is
// "possibly".
//
// Algorithm 2 then propagates sharing: if a shared pointer definitely
// points to an object, that object becomes shared too (tmp in Table 4.2).
// Finally, globals that are never read, written, or address-taken are
// demoted to Private ("global variables which were defined but entirely
// unused may be set as private", thesis §4.3).
package pointsto

import (
	"fmt"
	"sort"
	"strings"

	"hsmcc/internal/analysis/cfg"
	"hsmcc/internal/analysis/interthread"
	"hsmcc/internal/analysis/scope"
	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/token"
	"hsmcc/internal/cc/types"
)

// Target is a points-to target: a variable or a heap allocation site.
type Target struct {
	// Var is the pointed-to variable; nil for heap objects.
	Var *scope.VarInfo
	// Heap labels an allocation site, e.g. "malloc@main#1"; "" for vars.
	Heap string
}

// Name renders the target.
func (t Target) Name() string {
	if t.Var != nil {
		return t.Var.Name
	}
	return t.Heap
}

// Relation is one pointer→target relationship with the thesis's
// definite/possibly classification.
type Relation struct {
	Ptr      *scope.VarInfo
	Target   Target
	Definite bool
}

// Options tunes the analysis.
type Options struct {
	// PropagatePossible extends Algorithm 2 to also propagate sharing
	// across "possibly" relationships (a conservative superset; the
	// thesis's Algorithm 2 uses definite relationships only).
	PropagatePossible bool
}

// Result is the Stage 3 outcome.
type Result struct {
	Inter *interthread.Result
	// Relations lists all pointer relationships discovered, sorted by
	// pointer name then target name.
	Relations []Relation
	// pts maps each pointer variable to its target set.
	pts map[*scope.VarInfo]map[Target]bool
	// definiteSrc marks targets introduced by unconditional direct
	// address-of assignments per pointer.
	definiteSrc map[*scope.VarInfo]map[Target]bool
}

// PointsTo returns the targets of a pointer variable, sorted by name.
func (r *Result) PointsTo(v *scope.VarInfo) []Target {
	set := r.pts[v]
	out := make([]Target, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Analyze runs Stage 3 with opts, updating sharing statuses in place.
func Analyze(ir *interthread.Result, opts Options) *Result {
	r := &Result{
		Inter:       ir,
		pts:         make(map[*scope.VarInfo]map[Target]bool),
		definiteSrc: make(map[*scope.VarInfo]map[Target]bool),
	}
	solver := newSolver(r)
	solver.collect()
	solver.solve()
	r.buildRelations()
	r.applyAlgorithm2(opts)
	r.demoteDeadGlobals()
	r.finalizeStatuses()
	return r
}

// --- constraint solver ------------------------------------------------------

type solver struct {
	r *Result
	// copies: dst ⊇ src edges.
	copies map[*scope.VarInfo][]*scope.VarInfo
	// loads: dst ⊇ *src.
	loads map[*scope.VarInfo][]*scope.VarInfo
	// stores: *dst ⊇ src.
	stores map[*scope.VarInfo][]*scope.VarInfo
	// work holds pointers whose sets changed.
	work []*scope.VarInfo
	// allocCount numbers allocation sites per function.
	allocCount map[string]int
	// cfgs caches per-function CFGs for definiteness tests.
	cfgs map[string]*cfg.Graph
	// curFn / curStmt track the statement being scanned.
	curFn   *ast.FuncDecl
	curStmt ast.Stmt
}

func newSolver(r *Result) *solver {
	return &solver{
		r:          r,
		copies:     make(map[*scope.VarInfo][]*scope.VarInfo),
		loads:      make(map[*scope.VarInfo][]*scope.VarInfo),
		stores:     make(map[*scope.VarInfo][]*scope.VarInfo),
		allocCount: make(map[string]int),
		cfgs:       make(map[string]*cfg.Graph),
	}
}

func (s *solver) varOf(e ast.Expr) *scope.VarInfo {
	switch n := ast.Unparen(e).(type) {
	case *ast.Ident:
		return s.r.Inter.Scope.BySym[n.Sym]
	case *ast.CastExpr:
		return s.varOf(n.X)
	case *ast.BinaryExpr:
		// Pointer arithmetic p+1 aliases p's targets.
		if n.Op == token.Plus || n.Op == token.Minus {
			if v := s.varOf(n.X); v != nil && v.Type.IsPointerLike() {
				return v
			}
			if v := s.varOf(n.Y); v != nil && v.Type.IsPointerLike() {
				return v
			}
		}
	}
	return nil
}

func (s *solver) addTarget(p *scope.VarInfo, t Target, definite bool) {
	if p == nil {
		return
	}
	set, ok := s.r.pts[p]
	if !ok {
		set = make(map[Target]bool)
		s.r.pts[p] = set
	}
	if !set[t] {
		set[t] = true
		s.work = append(s.work, p)
	}
	if definite {
		ds, ok := s.r.definiteSrc[p]
		if !ok {
			ds = make(map[Target]bool)
			s.r.definiteSrc[p] = ds
		}
		ds[t] = true
	}
}

// collect walks all functions gathering constraints.
func (s *solver) collect() {
	file := s.r.Inter.Scope.Info.File
	for _, fn := range file.Funcs() {
		s.curFn = fn
		s.cfgs[fn.Name] = cfg.Build(fn)
		s.collectStmts(fn.Body.List)
	}
	// Global initializers: int *p = &x;
	s.curFn = nil
	s.curStmt = nil
	for _, d := range file.Globals() {
		if d.Init != nil {
			s.handleAssign(s.r.Inter.Scope.BySym[d.Sym], d.Init, true)
		}
	}
}

func (s *solver) collectStmts(list []ast.Stmt) {
	for _, st := range list {
		s.collectStmt(st)
	}
}

func (s *solver) collectStmt(st ast.Stmt) {
	switch n := st.(type) {
	case *ast.BlockStmt:
		s.collectStmts(n.List)
	case *ast.DeclStmt:
		if n.Decl.Init != nil {
			s.curStmt = st
			s.handleAssign(s.r.Inter.Scope.BySym[n.Decl.Sym], n.Decl.Init, s.uncond(st))
		}
	case *ast.ExprStmt:
		s.curStmt = st
		s.scanExpr(n.X, s.uncond(st))
	case *ast.IfStmt:
		s.curStmt = st
		s.scanExpr(n.Cond, false)
		s.collectStmt(n.Then)
		if n.Else != nil {
			s.collectStmt(n.Else)
		}
	case *ast.ForStmt:
		if n.Init != nil {
			s.collectStmt(n.Init)
		}
		s.curStmt = st
		if n.Cond != nil {
			s.scanExpr(n.Cond, false)
		}
		if n.Post != nil {
			s.scanExpr(n.Post, false)
		}
		s.collectStmt(n.Body)
	case *ast.WhileStmt:
		s.curStmt = st
		s.scanExpr(n.Cond, false)
		s.collectStmt(n.Body)
	case *ast.DoWhileStmt:
		s.collectStmt(n.Body)
		s.curStmt = st
		s.scanExpr(n.Cond, false)
	case *ast.SwitchStmt:
		s.curStmt = st
		s.scanExpr(n.Tag, false)
		for _, cl := range n.Cases {
			s.collectStmts(cl.Body)
		}
	case *ast.ReturnStmt:
		if n.Result != nil {
			s.curStmt = st
			s.scanExpr(n.Result, false)
		}
	}
}

// uncond reports whether st executes on every path through the current
// function AND the function is not itself launched multiple times in a
// conditional way. (For Table 4.2's example, `ptr = &tmp` in main.)
func (s *solver) uncond(st ast.Stmt) bool {
	if s.curFn == nil {
		return true
	}
	g := s.cfgs[s.curFn.Name]
	if g == nil {
		return false
	}
	return g.Unconditional(st)
}

// scanExpr finds assignments and calls inside an expression.
func (s *solver) scanExpr(e ast.Expr, definiteCtx bool) {
	switch n := ast.Unparen(e).(type) {
	case nil:
	case *ast.AssignExpr:
		if n.Op == token.Assign {
			lhs := ast.Unparen(n.LHS)
			switch l := lhs.(type) {
			case *ast.Ident:
				s.handleAssign(s.r.Inter.Scope.BySym[l.Sym], n.RHS, definiteCtx)
			case *ast.UnaryExpr:
				if l.Op == token.Star {
					// *p = rhs: store constraint.
					if pv := s.varOf(l.X); pv != nil {
						if rv := s.rhsSource(n.RHS); rv != nil {
							s.stores[pv] = append(s.stores[pv], rv)
						}
					}
				}
			case *ast.IndexExpr:
				// a[i] = &x stores a pointer into an array: treat the
				// array as pointing to the target (field-insensitive).
				if av := s.varOf(l.X); av != nil {
					s.handleAssign(av, n.RHS, false)
				}
			}
		}
		s.scanExpr(n.RHS, false)
	case *ast.CallExpr:
		s.handleCall(n)
		for _, a := range n.Args {
			s.scanExpr(a, false)
		}
	case *ast.BinaryExpr:
		s.scanExpr(n.X, false)
		s.scanExpr(n.Y, false)
	case *ast.UnaryExpr:
		s.scanExpr(n.X, false)
	case *ast.PostfixExpr:
		s.scanExpr(n.X, false)
	case *ast.IndexExpr:
		s.scanExpr(n.X, false)
		s.scanExpr(n.Index, false)
	case *ast.CastExpr:
		s.scanExpr(n.X, false)
	case *ast.CondExpr:
		s.scanExpr(n.Cond, false)
		s.scanExpr(n.Then, false)
		s.scanExpr(n.Else, false)
	case *ast.CommaExpr:
		s.scanExpr(n.X, false)
		s.scanExpr(n.Y, false)
	}
}

// rhsSource returns the pointer variable the RHS copies from, or nil.
func (s *solver) rhsSource(e ast.Expr) *scope.VarInfo {
	return s.varOf(e)
}

// handleAssign records constraints for `dst = rhs`.
func (s *solver) handleAssign(dst *scope.VarInfo, rhs ast.Expr, definite bool) {
	if dst == nil {
		return
	}
	switch n := ast.Unparen(rhs).(type) {
	case *ast.UnaryExpr:
		if n.Op == token.Amp {
			if tv := s.baseVar(n.X); tv != nil {
				s.addTarget(dst, Target{Var: tv}, definite)
			}
			return
		}
		if n.Op == token.Star {
			// dst = *p: load constraint.
			if pv := s.varOf(n.X); pv != nil {
				s.loads[dst] = append(s.loads[dst], pv)
			}
			return
		}
	case *ast.Ident:
		if src := s.r.Inter.Scope.BySym[n.Sym]; src != nil {
			// Array names decay: q = a makes q point at a.
			if src.Type.Kind == types.Array {
				s.addTarget(dst, Target{Var: src}, definite)
			} else {
				s.copies[src] = append(s.copies[src], dst)
				s.work = append(s.work, src)
			}
		}
		return
	case *ast.CastExpr:
		s.handleAssign(dst, n.X, definite)
		return
	case *ast.CallExpr:
		name := n.FuncName()
		switch name {
		case "malloc", "calloc", "RCCE_shmalloc", "RCCE_mpbmalloc":
			fn := "global"
			if s.curFn != nil {
				fn = s.curFn.Name
			}
			s.allocCount[fn]++
			site := fmt.Sprintf("%s@%s#%d", name, fn, s.allocCount[fn])
			s.addTarget(dst, Target{Heap: site}, false)
		default:
			// dst = f(...): link to the returns of a defined function.
			if fd := s.r.Inter.Scope.Info.File.FindFunc(name); fd != nil {
				ast.Inspect(fd.Body, func(x ast.Node) bool {
					if ret, ok := x.(*ast.ReturnStmt); ok && ret.Result != nil {
						if rv := s.varOf(ret.Result); rv != nil {
							s.copies[rv] = append(s.copies[rv], dst)
							s.work = append(s.work, rv)
						}
					}
					return true
				})
			}
		}
		return
	case *ast.BinaryExpr:
		// Pointer arithmetic: dst = p + k.
		if v := s.varOf(rhs); v != nil {
			if v.Type.Kind == types.Array {
				s.addTarget(dst, Target{Var: v}, false)
			} else {
				s.copies[v] = append(s.copies[v], dst)
				s.work = append(s.work, v)
			}
		}
		return
	}
}

// baseVar finds the variable whose address is taken in &expr.
func (s *solver) baseVar(e ast.Expr) *scope.VarInfo {
	switch n := ast.Unparen(e).(type) {
	case *ast.Ident:
		return s.r.Inter.Scope.BySym[n.Sym]
	case *ast.IndexExpr:
		return s.baseVar(n.X)
	case *ast.MemberExpr:
		return s.baseVar(n.X)
	}
	return nil
}

// handleCall binds actual pointer arguments to formal parameters, plus the
// pthread_create thread-argument binding.
func (s *solver) handleCall(call *ast.CallExpr) {
	name := call.FuncName()
	if name == "pthread_create" && len(call.Args) >= 4 {
		if fnName := threadFuncName(call.Args[2]); fnName != "" {
			if fd := s.r.Inter.Scope.Info.File.FindFunc(fnName); fd != nil && len(fd.Params) > 0 {
				if prm := s.r.Inter.Scope.BySym[fd.Params[0].Sym]; prm != nil {
					s.handleAssign(prm, call.Args[3], false)
				}
			}
		}
		return
	}
	fd := s.r.Inter.Scope.Info.File.FindFunc(name)
	if fd == nil {
		return
	}
	for i, a := range call.Args {
		if i >= len(fd.Params) {
			break
		}
		if prm := s.r.Inter.Scope.BySym[fd.Params[i].Sym]; prm != nil {
			s.handleAssign(prm, a, false)
		}
	}
}

// solve runs the inclusion worklist to a fixed point.
func (s *solver) solve() {
	for len(s.work) > 0 {
		p := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		targets := s.r.pts[p]
		// Copy edges: dst ⊇ p.
		for _, dst := range s.copies[p] {
			for t := range targets {
				s.addTarget(dst, t, false)
			}
		}
		// Store edges *p ⊇ src: every target of p inherits src's set.
		for _, src := range s.stores[p] {
			for t := range targets {
				if t.Var != nil {
					for st := range s.r.pts[src] {
						s.addTarget(t.Var, st, false)
					}
					s.copies[src] = appendVar(s.copies[src], t.Var)
				}
			}
		}
		// Load edges dst ⊇ *src where src == p.
		for dst, srcs := range s.loads {
			for _, src := range srcs {
				if src != p {
					continue
				}
				for t := range targets {
					if t.Var != nil {
						s.copies[t.Var] = appendVar(s.copies[t.Var], dst)
						for tt := range s.r.pts[t.Var] {
							s.addTarget(dst, tt, false)
						}
					}
				}
			}
		}
	}
}

func appendVar(list []*scope.VarInfo, v *scope.VarInfo) []*scope.VarInfo {
	for _, x := range list {
		if x == v {
			return list
		}
	}
	return append(list, v)
}

// --- relations and Algorithm 2 ----------------------------------------------

// buildRelations freezes the solved sets into the public Relations list.
func (r *Result) buildRelations() {
	for p, set := range r.pts {
		for t := range set {
			definite := r.definiteSrc[p][t] && len(set) == 1
			r.Relations = append(r.Relations, Relation{Ptr: p, Target: t, Definite: definite})
		}
	}
	sort.Slice(r.Relations, func(i, j int) bool {
		if r.Relations[i].Ptr.Name != r.Relations[j].Ptr.Name {
			return r.Relations[i].Ptr.Name < r.Relations[j].Ptr.Name
		}
		return r.Relations[i].Target.Name() < r.Relations[j].Target.Name()
	})
}

// applyAlgorithm2 propagates sharing from shared pointers to their
// (definite) targets, iterating to a fixed point since a newly shared
// pointer can share its own targets.
func (r *Result) applyAlgorithm2(opts Options) {
	changed := true
	shared := make(map[*scope.VarInfo]bool)
	for _, v := range r.Inter.Scope.Vars {
		if v.Current() == scope.Shared {
			shared[v] = true
		}
	}
	for changed {
		changed = false
		for _, rel := range r.Relations {
			if !shared[rel.Ptr] {
				continue
			}
			if !rel.Definite && !opts.PropagatePossible {
				continue
			}
			if rel.Target.Var != nil && !shared[rel.Target.Var] {
				shared[rel.Target.Var] = true
				changed = true
			}
		}
	}
	for v := range shared {
		v.SetStage(3, scope.Shared)
	}
}

// demoteDeadGlobals sets entirely unused globals to Private.
func (r *Result) demoteDeadGlobals() {
	for _, v := range r.Inter.Scope.Vars {
		if v.IsGlobal() && v.Reads == 0 && v.Writes == 0 && !v.AddressTaken {
			v.SetStage(3, scope.Private)
		}
	}
}

// finalizeStatuses fills Stage3 for variables Algorithm 2 didn't touch.
func (r *Result) finalizeStatuses() {
	for _, v := range r.Inter.Scope.Vars {
		if v.Stage3 == scope.Unknown {
			v.SetStage(3, v.Stage2)
		}
	}
}

// Dump renders the relationship map for tests and diagnostics.
func (r *Result) Dump() string {
	var sb strings.Builder
	for _, rel := range r.Relations {
		kind := "possibly"
		if rel.Definite {
			kind = "definite"
		}
		fmt.Fprintf(&sb, "%s -> %s (%s)\n", rel.Ptr.Name, rel.Target.Name(), kind)
	}
	return sb.String()
}

func threadFuncName(e ast.Expr) string {
	switch n := ast.Unparen(e).(type) {
	case *ast.Ident:
		return n.Name
	case *ast.CastExpr:
		return threadFuncName(n.X)
	case *ast.UnaryExpr:
		if n.Op == token.Amp {
			return threadFuncName(n.X)
		}
	}
	return ""
}
