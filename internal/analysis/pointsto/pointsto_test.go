package pointsto

import (
	"strings"
	"testing"

	"hsmcc/internal/analysis/interthread"
	"hsmcc/internal/analysis/scope"
	"hsmcc/internal/cc/parser"
	"hsmcc/internal/cc/sema"
)

func analyze(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	f, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return Analyze(interthread.Analyze(scope.Analyze(info)), opts)
}

// The thesis's central example: a shared pointer aimed at a private local
// makes the pointee shared (tmp in Table 4.2).
func TestSharedPointerSharesPointee(t *testing.T) {
	r := analyze(t, `
int *ptr;
void *tf(void *a) { int v = *ptr; pthread_exit(NULL); }
int main() {
    int tmp = 1;
    ptr = &tmp;
    pthread_t x;
    pthread_create(&x, NULL, tf, NULL);
    pthread_join(x, NULL);
    return tmp;
}`, Options{})
	if got := r.Inter.Scope.Lookup("tmp").Current(); got != scope.Shared {
		t.Errorf("tmp = %v, want Shared (Algorithm 2)", got)
	}
	targets := r.PointsTo(r.Inter.Scope.Lookup("ptr"))
	if len(targets) != 1 || targets[0].Name() != "tmp" {
		t.Errorf("ptr points to %v, want [tmp]", targets)
	}
}

// A private pointer must not share its target.
func TestPrivatePointerDoesNotShare(t *testing.T) {
	r := analyze(t, `
int g;
void *tf(void *a) { g = 1; pthread_exit(NULL); }
int main() {
    int local = 5;
    int *p = &local;   /* p is private: only main touches it */
    pthread_t x;
    pthread_create(&x, NULL, tf, NULL);
    pthread_join(x, NULL);
    return *p;
}`, Options{})
	if got := r.Inter.Scope.Lookup("local").Current(); got != scope.Private {
		t.Errorf("local = %v, want Private", got)
	}
}

// Conditional assignment yields a "possibly" relation: Algorithm 2 only
// propagates sharing across definite ones.
func TestPossiblyRelationsNotPropagated(t *testing.T) {
	src := `
int *ptr;
void *tf(void *a) { int v = *ptr; pthread_exit(NULL); }
int main() {
    int always = 1;
    int sometimes = 2;
    ptr = &always;
    if (always > 0) {
        ptr = &sometimes;
    }
    pthread_t x;
    pthread_create(&x, NULL, tf, NULL);
    pthread_join(x, NULL);
    return 0;
}`
	strict := analyze(t, src, Options{})
	// "Definite" is must-point-to: the conditional reassignment means
	// neither relationship definitely holds (the thesis notes possibly
	// relations "often occur after analyzing pointers within an if-else
	// statement"), so Algorithm 2 shares neither target.
	for _, name := range []string{"always", "sometimes"} {
		if got := strict.Inter.Scope.Lookup(name).Current(); got != scope.Private {
			t.Errorf("%s = %v under definite-only, want Private", name, got)
		}
	}
	for _, rel := range strict.Relations {
		if rel.Definite {
			t.Errorf("relation %v should be possibly, not definite", rel)
		}
	}
	// The conservative-superset option shares both — the sound choice,
	// since tf may dereference either.
	loose := analyze(t, src, Options{PropagatePossible: true})
	for _, name := range []string{"always", "sometimes"} {
		if got := loose.Inter.Scope.Lookup(name).Current(); got != scope.Shared {
			t.Errorf("%s = %v with PropagatePossible, want Shared", name, got)
		}
	}
}

// Dead globals (never read or written) are demoted to private, like
// `global` in Table 4.2.
func TestDeadGlobalDemoted(t *testing.T) {
	r := analyze(t, `
int unused;
int live;
void *tf(void *a) { live = 1; pthread_exit(NULL); }
int main() {
    pthread_t x;
    pthread_create(&x, NULL, tf, NULL);
    pthread_join(x, NULL);
    return live;
}`, Options{})
	if got := r.Inter.Scope.Lookup("unused").Current(); got != scope.Private {
		t.Errorf("unused = %v, want Private (demoted)", got)
	}
	if got := r.Inter.Scope.Lookup("live").Current(); got != scope.Shared {
		t.Errorf("live = %v, want Shared", got)
	}
}

// Pointer copied through another pointer: p = q propagates targets.
func TestPointerCopyPropagation(t *testing.T) {
	r := analyze(t, `
int *p;
int *q;
void *tf(void *a) { int v = *p; pthread_exit(NULL); }
int main() {
    int cell = 9;
    q = &cell;
    p = q;
    pthread_t x;
    pthread_create(&x, NULL, tf, NULL);
    pthread_join(x, NULL);
    return 0;
}`, Options{})
	targets := r.PointsTo(r.Inter.Scope.Lookup("p"))
	found := false
	for _, tg := range targets {
		if tg.Name() == "cell" {
			found = true
		}
	}
	if !found {
		t.Errorf("p targets = %v, want to include cell", targets)
	}
	if got := r.Inter.Scope.Lookup("cell").Current(); got != scope.Shared {
		t.Errorf("cell = %v, want Shared (through p = q)", got)
	}
}

func TestRelationsAndDump(t *testing.T) {
	r := analyze(t, `
int *ptr;
int main() {
    int tmp = 1;
    ptr = &tmp;
    return *ptr;
}`, Options{})
	if len(r.Relations) == 0 {
		t.Fatal("no relations recorded")
	}
	dump := r.Dump()
	if !strings.Contains(dump, "ptr") || !strings.Contains(dump, "tmp") {
		t.Errorf("Dump = %q", dump)
	}
}

// Array base addresses through pointers: p = arr shares the array's
// status with the pointer's context.
func TestArrayDecayAssignment(t *testing.T) {
	r := analyze(t, `
double data[8];
double *view;
void *tf(void *a) { double v = view[0]; pthread_exit(NULL); }
int main() {
    view = data;
    pthread_t x;
    pthread_create(&x, NULL, tf, NULL);
    pthread_join(x, NULL);
    return 0;
}`, Options{})
	if got := r.Inter.Scope.Lookup("data").Current(); got != scope.Shared {
		t.Errorf("data = %v, want Shared (aliased by shared view)", got)
	}
}
