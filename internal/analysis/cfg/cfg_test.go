package cfg

import (
	"testing"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/parser"
)

func buildFor(t *testing.T, src string) (*Graph, *ast.FuncDecl) {
	t.Helper()
	f, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.FindFunc("main")
	if fn == nil {
		t.Fatal("no main")
	}
	return Build(fn), fn
}

func TestStraightLine(t *testing.T) {
	g, fn := buildFor(t, `
int main() {
    int a = 1;
    int b = 2;
    return a + b;
}`)
	for _, s := range fn.Body.List {
		if !g.Unconditional(s) {
			t.Errorf("straight-line statement %T should be unconditional", s)
		}
	}
}

func TestIfBranchesConditional(t *testing.T) {
	g, fn := buildFor(t, `
int main() {
    int a = 1;
    if (a) {
        a = 2;
    } else {
        a = 3;
    }
    a = 4;
    return a;
}`)
	ifStmt := fn.Body.List[1].(*ast.IfStmt)
	thenBody := ifStmt.Then.(*ast.BlockStmt).List[0]
	elseBody := ifStmt.Else.(*ast.BlockStmt).List[0]
	if g.Unconditional(thenBody) {
		t.Error("then-branch statement must be conditional")
	}
	if g.Unconditional(elseBody) {
		t.Error("else-branch statement must be conditional")
	}
	after := fn.Body.List[2]
	if !g.Unconditional(after) {
		t.Error("statement after the if must be unconditional again")
	}
}

func TestLoopBodyConditional(t *testing.T) {
	g, fn := buildFor(t, `
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 3; i++) {
        s += i;
    }
    while (s > 10) {
        s--;
    }
    return s;
}`)
	forBody := fn.Body.List[2].(*ast.ForStmt).Body.(*ast.BlockStmt).List[0]
	if g.Unconditional(forBody) {
		t.Error("for body must be conditional (loop may run zero times)")
	}
	whileBody := fn.Body.List[3].(*ast.WhileStmt).Body.(*ast.BlockStmt).List[0]
	if g.Unconditional(whileBody) {
		t.Error("while body must be conditional")
	}
}

func TestDominators(t *testing.T) {
	g, fn := buildFor(t, `
int main() {
    int a = 1;
    if (a) {
        a = 2;
    }
    return a;
}`)
	entry := g.BlockOf(fn.Body.List[0])
	thenB := g.BlockOf(fn.Body.List[1].(*ast.IfStmt).Then.(*ast.BlockStmt).List[0])
	exit := g.BlockOf(fn.Body.List[2])
	if entry == nil || thenB == nil || exit == nil {
		t.Fatal("BlockOf returned nil for a known statement")
	}
	if !g.Dominates(entry, thenB) || !g.Dominates(entry, exit) {
		t.Error("entry must dominate everything")
	}
	if g.Dominates(thenB, exit) {
		t.Error("a branch body must not dominate the join")
	}
	if !g.Dominates(exit, exit) {
		t.Error("dominance must be reflexive")
	}
}

func TestBreakContinue(t *testing.T) {
	// Must build without panicking and classify the post-loop statement
	// as unconditional.
	g, fn := buildFor(t, `
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 10; i++) {
        if (i == 2) continue;
        if (i == 5) break;
        s += i;
    }
    s = 1;
    return s;
}`)
	after := fn.Body.List[3]
	if !g.Unconditional(after) {
		t.Error("post-loop statement must be unconditional")
	}
}

func TestDoWhileBodyRuns(t *testing.T) {
	// A do-while body executes at least once: its first block is
	// dominated by the entry and (unlike for/while) runs unconditionally.
	g, fn := buildFor(t, `
int main() {
    int s = 0;
    do {
        s = 1;
    } while (s < 0);
    return s;
}`)
	body := fn.Body.List[1].(*ast.DoWhileStmt).Body.(*ast.BlockStmt).List[0]
	if !g.Unconditional(body) {
		t.Error("do-while body runs at least once: should be unconditional")
	}
}

func TestDumpNonEmpty(t *testing.T) {
	g, _ := buildFor(t, "int main() { return 0; }")
	if g.Dump() == "" {
		t.Error("Dump should describe the graph")
	}
}
