// Package cfg builds control-flow graphs for hsmcc functions and computes
// dominators. The points-to stage (paper Stage 3) uses it to classify
// pointer relationships as "definite" (the assignment executes on every
// path through the function) or "possibly" (it sits in a branch or loop),
// matching the thesis's description of CETUS's control-flow-aware analysis.
package cfg

import (
	"fmt"
	"strings"

	"hsmcc/internal/cc/ast"
)

// Block is one basic block: a maximal straight-line statement sequence.
type Block struct {
	ID    int
	Stmts []ast.Stmt
	Succs []*Block
	Preds []*Block
	// Label describes the block's role for dumps ("entry", "exit",
	// "if.then", "for.body", ...).
	Label string
}

// Graph is the CFG of one function.
type Graph struct {
	Fn     *ast.FuncDecl
	Blocks []*Block
	Entry  *Block
	Exit   *Block

	// stmtBlock maps each statement to its containing block.
	stmtBlock map[ast.Stmt]*Block
	// idom maps a block to its immediate dominator (Entry maps to nil).
	idom map[*Block]*Block
}

// Build constructs the CFG for fn (which must have a body).
func Build(fn *ast.FuncDecl) *Graph {
	g := &Graph{Fn: fn, stmtBlock: make(map[ast.Stmt]*Block)}
	g.Entry = g.newBlock("entry")
	g.Exit = g.newBlock("exit")
	cur := g.buildStmts(fn.Body.List, g.Entry, nil, nil)
	if cur != nil {
		g.link(cur, g.Exit)
	}
	g.computeDominators()
	return g
}

func (g *Graph) newBlock(label string) *Block {
	b := &Block{ID: len(g.Blocks), Label: label}
	g.Blocks = append(g.Blocks, b)
	return b
}

func (g *Graph) link(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// buildStmts threads stmts through the graph starting at cur. brk and cont
// are jump targets for break/continue; nil means not in a loop/switch.
// It returns the block control falls out of, or nil if control never falls
// through (e.g. ends in return/break).
func (g *Graph) buildStmts(stmts []ast.Stmt, cur *Block, brk, cont *Block) *Block {
	for _, s := range stmts {
		if cur == nil {
			// Unreachable code still gets a block so analyses see it.
			cur = g.newBlock("unreachable")
		}
		cur = g.buildStmt(s, cur, brk, cont)
	}
	return cur
}

func (g *Graph) buildStmt(s ast.Stmt, cur *Block, brk, cont *Block) *Block {
	switch n := s.(type) {
	case *ast.BlockStmt:
		return g.buildStmts(n.List, cur, brk, cont)
	case *ast.DeclStmt, *ast.ExprStmt, *ast.EmptyStmt:
		cur.Stmts = append(cur.Stmts, s)
		g.stmtBlock[s] = cur
		return cur
	case *ast.IfStmt:
		cur.Stmts = append(cur.Stmts, s)
		g.stmtBlock[s] = cur
		thenB := g.newBlock("if.then")
		g.link(cur, thenB)
		thenEnd := g.buildStmt(n.Then, thenB, brk, cont)
		join := g.newBlock("if.join")
		if thenEnd != nil {
			g.link(thenEnd, join)
		}
		if n.Else != nil {
			elseB := g.newBlock("if.else")
			g.link(cur, elseB)
			elseEnd := g.buildStmt(n.Else, elseB, brk, cont)
			if elseEnd != nil {
				g.link(elseEnd, join)
			}
		} else {
			g.link(cur, join)
		}
		if len(join.Preds) == 0 {
			return nil
		}
		return join
	case *ast.ForStmt:
		if n.Init != nil {
			cur = g.buildStmt(n.Init, cur, nil, nil)
		}
		head := g.newBlock("for.head")
		g.link(cur, head)
		head.Stmts = append(head.Stmts, s)
		g.stmtBlock[s] = head
		body := g.newBlock("for.body")
		after := g.newBlock("for.after")
		g.link(head, body)
		g.link(head, after) // loop may run zero times
		post := g.newBlock("for.post")
		bodyEnd := g.buildStmt(n.Body, body, after, post)
		if bodyEnd != nil {
			g.link(bodyEnd, post)
		}
		g.link(post, head)
		return after
	case *ast.WhileStmt:
		head := g.newBlock("while.head")
		g.link(cur, head)
		head.Stmts = append(head.Stmts, s)
		g.stmtBlock[s] = head
		body := g.newBlock("while.body")
		after := g.newBlock("while.after")
		g.link(head, body)
		g.link(head, after)
		bodyEnd := g.buildStmt(n.Body, body, after, head)
		if bodyEnd != nil {
			g.link(bodyEnd, head)
		}
		return after
	case *ast.DoWhileStmt:
		body := g.newBlock("do.body")
		g.link(cur, body)
		g.stmtBlock[s] = body
		after := g.newBlock("do.after")
		cond := g.newBlock("do.cond")
		bodyEnd := g.buildStmt(n.Body, body, after, cond)
		if bodyEnd != nil {
			g.link(bodyEnd, cond)
		}
		g.link(cond, body)
		g.link(cond, after)
		return after
	case *ast.SwitchStmt:
		cur.Stmts = append(cur.Stmts, s)
		g.stmtBlock[s] = cur
		after := g.newBlock("switch.after")
		hasDefault := false
		var prevEnd *Block
		for _, cl := range n.Cases {
			cb := g.newBlock("case")
			g.link(cur, cb)
			if prevEnd != nil { // fallthrough from the previous case
				g.link(prevEnd, cb)
			}
			if cl.Value == nil {
				hasDefault = true
			}
			prevEnd = g.buildStmts(cl.Body, cb, after, cont)
		}
		if prevEnd != nil {
			g.link(prevEnd, after)
		}
		if !hasDefault {
			g.link(cur, after)
		}
		if len(after.Preds) == 0 {
			return nil
		}
		return after
	case *ast.ReturnStmt:
		cur.Stmts = append(cur.Stmts, s)
		g.stmtBlock[s] = cur
		g.link(cur, g.Exit)
		return nil
	case *ast.BreakStmt:
		cur.Stmts = append(cur.Stmts, s)
		g.stmtBlock[s] = cur
		if brk != nil {
			g.link(cur, brk)
		}
		return nil
	case *ast.ContinueStmt:
		cur.Stmts = append(cur.Stmts, s)
		g.stmtBlock[s] = cur
		if cont != nil {
			g.link(cur, cont)
		}
		return nil
	}
	cur.Stmts = append(cur.Stmts, s)
	g.stmtBlock[s] = cur
	return cur
}

// computeDominators runs the classic iterative dominator algorithm over the
// reverse-post-order of reachable blocks.
func (g *Graph) computeDominators() {
	order := g.reversePostOrder()
	index := make(map[*Block]int, len(order))
	for i, b := range order {
		index[b] = i
	}
	g.idom = make(map[*Block]*Block)
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if b == g.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if _, reachable := index[p]; !reachable {
					continue
				}
				if p == g.Entry || g.idom[p] != nil {
					if newIdom == nil {
						newIdom = p
					} else {
						newIdom = g.intersect(p, newIdom, index)
					}
				}
			}
			if newIdom != nil && g.idom[b] != newIdom {
				g.idom[b] = newIdom
				changed = true
			}
		}
	}
}

func (g *Graph) intersect(a, b *Block, index map[*Block]int) *Block {
	for a != b {
		for index[a] > index[b] {
			a = g.idom[a]
			if a == nil {
				return b
			}
		}
		for index[b] > index[a] {
			b = g.idom[b]
			if b == nil {
				return a
			}
		}
	}
	return a
}

func (g *Graph) reversePostOrder() []*Block {
	seen := make(map[*Block]bool)
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	out := make([]*Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	return out
}

// Dominates reports whether a dominates b.
func (g *Graph) Dominates(a, b *Block) bool {
	for x := b; x != nil; {
		if x == a {
			return true
		}
		if x == g.Entry {
			return false
		}
		x = g.idom[x]
	}
	return false
}

// BlockOf returns the block containing stmt, or nil.
func (g *Graph) BlockOf(s ast.Stmt) *Block { return g.stmtBlock[s] }

// Unconditional reports whether stmt executes on every complete path
// through the function: its block dominates the exit block. Statements in
// branches, loops, or after early returns are conditional.
func (g *Graph) Unconditional(s ast.Stmt) bool {
	b := g.stmtBlock[s]
	if b == nil {
		return false
	}
	return g.Dominates(b, g.Exit)
}

// Dump renders the graph for debugging and golden tests.
func (g *Graph) Dump() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		var succ []string
		for _, s := range b.Succs {
			succ = append(succ, fmt.Sprintf("B%d", s.ID))
		}
		fmt.Fprintf(&sb, "B%d(%s) [%d stmts] -> %s\n", b.ID, b.Label, len(b.Stmts), strings.Join(succ, ","))
	}
	return sb.String()
}
