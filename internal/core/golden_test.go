package core

import (
	"os"
	"testing"

	"hsmcc/internal/partition"
)

// TestGoldenTranslation pins the exact translated output for the thesis's
// running example against testdata/example41_rcce.golden.c — the repo's
// analogue of thesis Example Code 4.2. Any intentional change to the
// translator's output must regenerate the golden file:
//
//	go run ./cmd/hsmcc -cores 3 -policy offchip testdata/example41.c \
//	    > testdata/example41_rcce.golden.c
func TestGoldenTranslation(t *testing.T) {
	src, err := os.ReadFile("../../testdata/example41.c")
	if err != nil {
		t.Fatalf("read input: %v", err)
	}
	want, err := os.ReadFile("../../testdata/example41_rcce.golden.c")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	p, err := Run("example41.c", string(src), Config{Cores: 3, Policy: partition.PolicyOffChipOnly})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if p.Output != string(want) {
		t.Errorf("translated output drifted from golden file\n--- got ---\n%s\n--- want ---\n%s",
			p.Output, want)
	}
}

// TestGoldenExecutes: the golden file is a real program — it runs on the
// simulator and produces the sums of Example Code 4.1.
func TestGoldenExecutes(t *testing.T) {
	want, err := os.ReadFile("../../testdata/example41_rcce.golden.c")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	// Re-parse and run via the public-facing components to keep this
	// test independent of the translator.
	p, err := Analyze("golden.c", string(want), Config{})
	if err != nil {
		t.Fatalf("golden file does not re-analyze: %v", err)
	}
	if p.File.FindFunc("RCCE_APP") == nil {
		t.Error("golden file lost its entry point")
	}
}
