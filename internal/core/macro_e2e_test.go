package core

import (
	"strings"
	"testing"
)

// TestMacroProgramTranslates: thesis §7.1 end to end — a macro-
// parameterised Pthread program passes the whole pipeline.
func TestMacroProgramTranslates(t *testing.T) {
	src := `
#define NTHREADS 4
int acc[NTHREADS];
void *tf(void *tid) {
    int me = (int)tid;
    acc[me] = me;
    pthread_exit(NULL);
}
int main() {
    pthread_t th[NTHREADS];
    int t;
    for (t = 0; t < NTHREADS; t++) {
        pthread_create(&th[t], NULL, tf, (void *)t);
    }
    for (t = 0; t < NTHREADS; t++) {
        pthread_join(th[t], NULL);
    }
    return acc[0];
}`
	p, err := Run("macro.c", src, Config{Cores: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !strings.Contains(p.Output, "RCCE_APP") || !strings.Contains(p.Output, "sizeof(int) * 4") {
		t.Errorf("macro program mistranslated:\n%s", p.Output)
	}
}
