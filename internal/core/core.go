// Package core is the paper's "Driver": it chains the five stages of the
// translation framework (thesis Figure 1.1) into a single pipeline.
//
//	Stage 1  variable scope analysis      (internal/analysis/scope)
//	Stage 2  inter-thread analysis        (internal/analysis/interthread)
//	Stage 3  alias and points-to analysis (internal/analysis/pointsto)
//	Stage 4  data partitioning            (internal/partition)
//	Stage 5  source-to-source translation (internal/translate)
//
// The entry points mirror CETUS's AnalysisPass/TransformPass driver: Analyze
// runs Stages 1-3 and returns the per-variable findings; Run continues
// through Stages 4-5 and yields the RCCE program as C source.
package core

import (
	"fmt"
	"strings"

	"hsmcc/internal/analysis/interthread"
	"hsmcc/internal/analysis/pointsto"
	"hsmcc/internal/analysis/scope"
	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/parser"
	"hsmcc/internal/cc/printer"
	"hsmcc/internal/cc/sema"
	"hsmcc/internal/cc/types"
	"hsmcc/internal/partition"
	"hsmcc/internal/translate"
)

// DefaultMPBCapacity is the SCC's usable on-chip shared SRAM: 8 KB per core
// across 48 cores (thesis §5.1). The partitioner sees the whole buffer, as
// Algorithm 3 treats the MPB as one on-chip pool.
const DefaultMPBCapacity = 48 * 8 * 1024

// Config parameterises a pipeline run.
type Config struct {
	// Cores is the number of SCC cores (UEs) the translated program
	// targets. Defaults to 32, the paper's configuration.
	Cores int
	// MPBCapacity is the on-chip shared memory budget in bytes for
	// Stage 4. Defaults to DefaultMPBCapacity. Ignored when Policy is
	// PolicyOffChipOnly.
	MPBCapacity int
	// Policy selects the Stage 4 heuristic. The zero value is the
	// paper's Algorithm 3 (size-ascending greedy).
	Policy partition.Policy
	// Placement is the explicit per-variable placement map (name ->
	// on-chip) consumed when Policy is partition.PolicyProfiled — the
	// output of the access-profiling optimizer (internal/profile).
	Placement map[string]bool
	// PropagatePossible extends Stage 3 to "possibly" relationships.
	PropagatePossible bool
}

func (c Config) withDefaults() Config {
	if c.Cores <= 0 {
		c.Cores = 32
	}
	if c.MPBCapacity <= 0 {
		c.MPBCapacity = DefaultMPBCapacity
	}
	return c
}

// Pipeline carries every artifact produced while translating one program.
type Pipeline struct {
	Name   string
	Source string
	Config Config

	File   *ast.File
	Sema   *sema.Info
	Scope  *scope.Result
	Inter  *interthread.Result
	Points *pointsto.Result
	Part   *partition.Result
	Unit   *translate.Unit

	// Output is the translated RCCE program as C source (empty until
	// Stage 5 has run).
	Output string
}

// Analyze parses src and runs Stages 1-3, leaving the program untranslated.
// The returned pipeline exposes the Table 4.1/4.2 data via its Scope and
// Points fields.
func Analyze(name, src string, cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	file, err := parser.Parse(name, src)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", name, err)
	}
	info, err := sema.Analyze(file)
	if err != nil {
		return nil, fmt.Errorf("sema %s: %w", name, err)
	}
	p := &Pipeline{Name: name, Source: src, Config: cfg, File: file, Sema: info}
	p.Scope = scope.Analyze(info)
	p.Inter = interthread.Analyze(p.Scope)
	p.Points = pointsto.Analyze(p.Inter, pointsto.Options{PropagatePossible: cfg.PropagatePossible})
	return p, nil
}

// Run executes the full five-stage pipeline over src and returns the
// pipeline with Output holding the translated RCCE C source.
func Run(name, src string, cfg Config) (*Pipeline, error) {
	p, err := Analyze(name, src, cfg)
	if err != nil {
		return nil, err
	}
	if err := p.Translate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Translate runs Stages 4-5 on an analysed pipeline, mutating p.File into
// the RCCE program and rendering it to p.Output.
func (p *Pipeline) Translate() error {
	if p.Points == nil {
		return fmt.Errorf("core: pipeline has not been analysed")
	}
	capacity := p.Config.MPBCapacity
	if p.Config.Policy == partition.PolicyOffChipOnly {
		capacity = 0
	}
	if p.Config.Policy == partition.PolicyProfiled {
		if p.Config.Placement == nil {
			return fmt.Errorf("core: the profiled policy needs an explicit placement map (run the profiler first)")
		}
		p.Part = partition.PartitionExplicit(p.Scope.SharedVars(), capacity, p.Config.Placement)
	} else {
		p.Part = partition.Partition(p.Scope.SharedVars(), capacity, p.Config.Policy)
	}
	unit, err := translate.Translate(p.File, p.Points, p.Part, translate.Options{Cores: p.Config.Cores})
	if err != nil {
		return fmt.Errorf("translate %s: %w", p.Name, err)
	}
	p.Unit = unit
	p.Output = printer.Print(p.File)
	return nil
}

// SharedVars returns the Stage 1-3 shared set in declaration order.
func (p *Pipeline) SharedVars() []*scope.VarInfo { return p.Scope.SharedVars() }

// Table41 renders the per-variable information table (thesis Table 4.1)
// for every analysed variable: name, type, element count, read count,
// write count, use-in and def-in function lists.
func (p *Pipeline) Table41() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-12s %5s %4s %4s  %-14s %-14s\n",
		"Name", "Type", "Size", "Rd", "Wr", "Use In", "Def In")
	for _, v := range p.Scope.Vars {
		fmt.Fprintf(&sb, "%-10s %-12s %5d %4d %4d  %-14s %-14s\n",
			v.Name, typeColumn(v), v.Count, v.Reads, v.Writes,
			orNull(strings.Join(v.UseIn, ", ")), orNull(strings.Join(v.DefIn, ", ")))
	}
	return sb.String()
}

// Table42 renders the sharing-status trajectory table (thesis Table 4.2):
// the status of each variable after Stages 1, 2 and 3.
func (p *Pipeline) Table42() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-8s %-8s %-8s\n", "Variable", "Stage 1", "Stage 2", "Stage 3")
	for _, v := range p.Scope.Vars {
		fmt.Fprintf(&sb, "%-10s %-8s %-8s %-8s\n",
			v.Name, v.Stage1, v.Stage2, v.Stage3)
	}
	return sb.String()
}

// PassLog returns the Stage 5 pass log, one line per transformation.
func (p *Pipeline) PassLog() []string {
	if p.Unit == nil {
		return nil
	}
	return p.Unit.Log
}

func typeColumn(v *scope.VarInfo) string {
	t := v.Type
	if t == nil {
		return "n/a"
	}
	// Table 4.1 renders array types as element-pointer types (sum int*).
	if t.Kind == types.Array {
		return t.Elem.String() + "*"
	}
	return t.String()
}

func orNull(s string) string {
	if s == "" {
		return "null"
	}
	return s
}
