package core

import (
	"os"
	"strings"
	"testing"

	"hsmcc/internal/analysis/scope"
	"hsmcc/internal/partition"
)

func example41(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("../../testdata/example41.c")
	if err != nil {
		t.Fatalf("read example41.c: %v", err)
	}
	return string(src)
}

func analyze41(t *testing.T) *Pipeline {
	t.Helper()
	p, err := Analyze("example41.c", example41(t), Config{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return p
}

// TestTable41 checks the Stage 1-3 per-variable facts against thesis
// Table 4.1. Two cells deviate by documented counting-rule corrections
// (DESIGN.md §5): sum.Rd is 3 (the thesis misses the printf read) and
// rc.Wr is 1 (statically one assignment).
func TestTable41(t *testing.T) {
	p := analyze41(t)
	want := []struct {
		name         string
		typ          string
		count        int
		rd, wr       int
		useIn, defIn string
	}{
		{"global", "int", 1, 0, 0, "null", "null"},
		{"ptr", "int*", 1, 1, 1, "tf", "main"},
		{"sum", "int*", 3, 3, 2, "tf, main", "tf"},
		{"tLocal", "int", 1, 3, 1, "tf", "tf"},
		{"tid", "void*", 1, 1, 0, "tf", "null"},
		// local.Wr is 5, not the thesis's 4: `int local = 0`, two
		// identical `local = 0` for-initialisers and two `local++`
		// make five static stores; the thesis appears to count one
		// for-initialiser once (DESIGN.md §5).
		{"local", "int", 1, 8, 5, "main", "main"},
		{"tmp", "int", 1, 1, 1, "main", "main"},
		{"threads", "pthread_t*", 3, 2, 0, "main", "main"},
		{"rc", "int", 1, 0, 1, "null", "main"},
	}
	for _, w := range want {
		v := p.Scope.Lookup(w.name)
		if v == nil {
			t.Errorf("variable %s not found", w.name)
			continue
		}
		if got := typeColumn(v); got != w.typ {
			t.Errorf("%s: type = %s, want %s", w.name, got, w.typ)
		}
		if v.Count != w.count {
			t.Errorf("%s: count = %d, want %d", w.name, v.Count, w.count)
		}
		if v.Reads != w.rd {
			t.Errorf("%s: reads = %d, want %d", w.name, v.Reads, w.rd)
		}
		if v.Writes != w.wr {
			t.Errorf("%s: writes = %d, want %d", w.name, v.Writes, w.wr)
		}
		if got := orNull(strings.Join(v.UseIn, ", ")); got != w.useIn {
			t.Errorf("%s: use-in = %q, want %q", w.name, got, w.useIn)
		}
		if got := orNull(strings.Join(v.DefIn, ", ")); got != w.defIn {
			t.Errorf("%s: def-in = %q, want %q", w.name, got, w.defIn)
		}
	}
}

// TestTable42 checks the sharing-status trajectory against thesis
// Table 4.2 exactly.
func TestTable42(t *testing.T) {
	p := analyze41(t)
	want := []struct {
		name                   string
		stage1, stage2, stage3 scope.Status
	}{
		{"global", scope.Shared, scope.Shared, scope.Private},
		{"ptr", scope.Shared, scope.Shared, scope.Shared},
		{"sum", scope.Shared, scope.Shared, scope.Shared},
		{"tLocal", scope.Unknown, scope.Private, scope.Private},
		{"tid", scope.Unknown, scope.Private, scope.Private},
		{"local", scope.Unknown, scope.Private, scope.Private},
		{"tmp", scope.Unknown, scope.Private, scope.Shared},
		{"threads", scope.Unknown, scope.Private, scope.Private},
		{"rc", scope.Unknown, scope.Private, scope.Private},
	}
	for _, w := range want {
		v := p.Scope.Lookup(w.name)
		if v == nil {
			t.Errorf("variable %s not found", w.name)
			continue
		}
		if v.Stage1 != w.stage1 || v.Stage2 != w.stage2 || v.Stage3 != w.stage3 {
			t.Errorf("%s: stages = %s/%s/%s, want %s/%s/%s",
				w.name, v.Stage1, v.Stage2, v.Stage3, w.stage1, w.stage2, w.stage3)
		}
	}
}

// TestTranslateExample41 checks the translated program against the load-
// bearing features of thesis Example Code 4.2.
func TestTranslateExample41(t *testing.T) {
	p, err := Run("example41.c", example41(t), Config{Cores: 3, Policy: partition.PolicyOffChipOnly})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := p.Output
	for _, want := range []string{
		`#include "RCCE.h"`,
		"RCCE_APP",
		"RCCE_init(&argc, &argv)",
		"RCCE_shmalloc",
		"myID = RCCE_ue()",
		"tf((void *)(myID))",
		"RCCE_barrier(&RCCE_COMM_WORLD)",
		"printf(\"Sum Array: %d\\n\", sum[myID])",
		"RCCE_finalize()",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("translated output missing %q\n---\n%s", want, out)
		}
	}
	for _, banned := range []string{"pthread_create", "pthread_join", "pthread_exit", "pthread_t", "<pthread.h>"} {
		if strings.Contains(out, banned) {
			t.Errorf("translated output still contains %q\n---\n%s", banned, out)
		}
	}
	// Both shared globals (sum array + ptr pointee) get explicit
	// allocations; the dead global `global` must not.
	if n := strings.Count(out, "RCCE_shmalloc"); n != 2 {
		t.Errorf("RCCE_shmalloc count = %d, want 2\n---\n%s", n, out)
	}
	// The dead global `global` is demoted to private after Stage 3: its
	// declaration survives (each process keeps a private copy) but it
	// must not receive a shared allocation.
	if strings.Contains(out, "global = ") {
		t.Errorf("dead global should not be allocated\n---\n%s", out)
	}
}

// TestTableRendering exercises the text renderers used by cmd/hsmbench.
func TestTableRendering(t *testing.T) {
	p := analyze41(t)
	t41 := p.Table41()
	for _, col := range []string{"Name", "Rd", "Wr", "ptr", "threads"} {
		if !strings.Contains(t41, col) {
			t.Errorf("Table41 missing %q:\n%s", col, t41)
		}
	}
	t42 := p.Table42()
	for _, col := range []string{"Stage 1", "Stage 2", "Stage 3", "tmp"} {
		if !strings.Contains(t42, col) {
			t.Errorf("Table42 missing %q:\n%s", col, t42)
		}
	}
}

// TestConfigDefaults verifies default parameters match the paper's setup.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Cores != 32 {
		t.Errorf("default cores = %d, want 32", c.Cores)
	}
	if c.MPBCapacity != 48*8*1024 {
		t.Errorf("default MPB capacity = %d, want 393216", c.MPBCapacity)
	}
}

// TestRunNoMain checks the error path for a program without main.
func TestRunNoMain(t *testing.T) {
	if _, err := Run("x.c", "int f() { return 0; }", Config{}); err == nil {
		t.Fatal("expected error for program without main")
	}
}

// TestAnalyzeParseError propagates lexer/parser failures.
func TestAnalyzeParseError(t *testing.T) {
	if _, err := Analyze("bad.c", "int main( {", Config{}); err == nil {
		t.Fatal("expected parse error")
	}
}

// TestMPBPartitioningAppliesOnChipAlloc checks Stage 4 -> Stage 5 wiring:
// with ample on-chip capacity the shared data is allocated via
// RCCE_mpbmalloc instead of RCCE_shmalloc.
func TestMPBPartitioningAppliesOnChipAlloc(t *testing.T) {
	p, err := Run("example41.c", example41(t), Config{Cores: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !strings.Contains(p.Output, "RCCE_mpbmalloc") {
		t.Errorf("expected on-chip allocations with default capacity\n---\n%s", p.Output)
	}
	if strings.Contains(p.Output, "RCCE_shmalloc") {
		t.Errorf("small shared set should fit entirely on-chip\n---\n%s", p.Output)
	}
}
