package sccsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache(1024, 2, 32)
	if hit, _ := c.Access(0, false); hit {
		t.Fatal("cold access should miss")
	}
	if hit, _ := c.Access(0, false); !hit {
		t.Fatal("second access should hit")
	}
	if hit, _ := c.Access(16, false); !hit {
		t.Fatal("same-line access should hit")
	}
	if hit, _ := c.Access(32, false); hit {
		t.Fatal("next line should miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/2", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 ways, 1 set of 2 lines: 64 B cache with 32 B lines.
	c := NewCache(64, 2, 32)
	c.Access(0, false)    // A
	c.Access(1024, false) // B
	c.Access(0, false)    // touch A: B becomes LRU
	c.Access(2048, false) // C evicts B
	if !c.Contains(0) {
		t.Error("A should survive (recently used)")
	}
	if c.Contains(1024) {
		t.Error("B should have been evicted (LRU)")
	}
	if !c.Contains(2048) {
		t.Error("C should be resident")
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := NewCache(64, 2, 32)
	c.Access(0, true) // dirty A
	c.Access(1024, false)
	_, dirty := c.Access(2048, false) // evicts dirty A
	if !dirty {
		t.Error("evicting a written line should report dirty")
	}
	if c.DirtyEv != 1 {
		t.Errorf("DirtyEv = %d, want 1", c.DirtyEv)
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(1024, 2, 32)
	c.Access(0, true)
	c.Access(64, true)
	c.Access(128, false)
	if dirty := c.Flush(); dirty != 2 {
		t.Errorf("Flush wrote back %d lines, want 2", dirty)
	}
	if c.Contains(0) || c.Contains(128) {
		t.Error("flush must invalidate everything")
	}
	if dirty := c.Flush(); dirty != 0 {
		t.Errorf("second flush wrote back %d lines, want 0", dirty)
	}
}

// TestCacheWorkingSetFits: a working set no larger than the cache incurs
// only cold misses under repeated sequential sweeps.
func TestCacheWorkingSetFits(t *testing.T) {
	c := NewCache(8192, 2, 32)
	for pass := 0; pass < 4; pass++ {
		for addr := uint32(0); addr < 8192; addr += 32 {
			c.Access(addr, false)
		}
	}
	if c.Misses != 8192/32 {
		t.Errorf("misses = %d, want %d cold misses only", c.Misses, 8192/32)
	}
}

// TestCacheStreamingThrashes: a working set much larger than the cache
// misses on (almost) every line under LRU.
func TestCacheStreamingThrashes(t *testing.T) {
	c := NewCache(8192, 2, 32)
	span := uint32(4 * 8192)
	for pass := 0; pass < 2; pass++ {
		for addr := uint32(0); addr < span; addr += 32 {
			c.Access(addr, false)
		}
	}
	if c.Hits != 0 {
		t.Errorf("streaming 4x the cache size hit %d times, want 0", c.Hits)
	}
}

// TestCacheInvariants: property test — hits+misses equals accesses, and
// Contains agrees with a just-completed Access.
func TestCacheInvariants(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCache(1024, 2, 32)
		accesses := uint64(0)
		for i := 0; i < int(n%2000); i++ {
			addr := uint32(rng.Intn(1 << 16))
			c.Access(addr, rng.Intn(2) == 0)
			accesses++
			if !c.Contains(addr) {
				return false // just-accessed line must be resident
			}
		}
		return c.Hits+c.Misses == accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCacheGeometry(t *testing.T) {
	c := NewCache(8192, 2, 32)
	if c.Lines() != 256 {
		t.Errorf("Lines = %d, want 256", c.Lines())
	}
	if c.LineBytes() != 32 {
		t.Errorf("LineBytes = %d, want 32", c.LineBytes())
	}
}
