package sccsim

import (
	"fmt"
	"sort"
)

// debugMC enables memory-controller wait tracing (calibration only).
var debugMC = false

// Machine is one simulated SCC chip: storage plus a timing model. It is
// not safe for concurrent use; the interpreter's scheduler guarantees a
// single execution context touches it at a time (DESIGN.md §8).
type Machine struct {
	cfg Config

	// Derived timing constants (picoseconds).
	basePeriod Time
	hopTime    Time
	l1Hit      Time
	l2Hit      Time
	mpbAccess  Time
	mcLatency  Time
	mcOccupy   Time
	dirtyEvict Time

	// Derived geometry, resolved once from the config so the access hot
	// path never re-derives tile or controller mapping.
	coresPerTile int
	mpbStride    int
	mcPos        []meshPos
	coreMC       []int32
	coreMCHops   []int32

	cores  []*coreState
	mcs    []*memController
	shared *PageMem
	mpb    []byte
	// mpbRanges records striped allocations so remote-vs-local MPB
	// latency reflects data placement; addresses outside any range
	// default to the section owner (addr / MPBStride).
	mpbRanges []mpbRange
	tas       []bool
}

type coreState struct {
	l1    *Cache
	l2    *Cache
	priv  *PageMem
	timer CoreTimer // current core period under DVFS + compute-time accumulator
	// Derived per-core latencies, recomputed on DVFS changes so the
	// per-access hot path avoids a cycles×period multiply each time.
	l1HitT Time
	l2HitT Time
	dirtyT Time
	stats  CoreStats
}

// CoreTimer is one core's cycle-to-time converter: Period tracks the
// core's DVFS state and Comp accumulates its compute time. The machine
// hands out a stable pointer per core (Timer) so the interpreter can
// charge compute cycles with one multiply and two adds — no machine or
// core-state re-resolution on the per-operation hot path.
type CoreTimer struct {
	Period Time
	Comp   Time
}

// Cycles converts a cycle count on this core into time, accounting it.
func (t *CoreTimer) Cycles(n int) Time {
	d := Time(n) * t.Period
	t.Comp += d
	return d
}

// Timer returns core's timer handle; it stays valid across DVFS changes.
func (m *Machine) Timer(core int) *CoreTimer { return &m.cores[core].timer }

// setPeriod installs a core period and its derived latencies.
func (cs *coreState) setPeriod(cfg *Config, period Time) {
	cs.timer.Period = period
	cs.l1HitT = Time(cfg.L1HitCycles) * period
	cs.l2HitT = Time(cfg.L2HitCycles) * period
	cs.dirtyT = Time(cfg.DirtyEvictCycles) * period
}

// CoreStats counts one core's memory traffic and time.
type CoreStats struct {
	Loads, Stores     uint64
	PrivateAccesses   uint64
	SharedAccesses    uint64
	MPBAccesses       uint64
	MPBRemote         uint64
	L1Hits, L1Misses  uint64
	L2Hits, L2Misses  uint64
	MemTime, CompTime Time
}

// Delta returns the counter increments since prev (a snapshot of the
// same core taken earlier). Counters only grow, so the result is the
// traffic of the interval; trace recorders sample it per run slice.
func (s CoreStats) Delta(prev CoreStats) CoreStats {
	return CoreStats{
		Loads:           s.Loads - prev.Loads,
		Stores:          s.Stores - prev.Stores,
		PrivateAccesses: s.PrivateAccesses - prev.PrivateAccesses,
		SharedAccesses:  s.SharedAccesses - prev.SharedAccesses,
		MPBAccesses:     s.MPBAccesses - prev.MPBAccesses,
		MPBRemote:       s.MPBRemote - prev.MPBRemote,
		L1Hits:          s.L1Hits - prev.L1Hits,
		L1Misses:        s.L1Misses - prev.L1Misses,
		L2Hits:          s.L2Hits - prev.L2Hits,
		L2Misses:        s.L2Misses - prev.L2Misses,
		MemTime:         s.MemTime - prev.MemTime,
		CompTime:        s.CompTime - prev.CompTime,
	}
}

type memController struct {
	freeAt   Time
	busy     Time
	requests uint64
}

type mpbRange struct {
	start, end uint32
	owners     []int // chunked round-robin ownership
	chunk      uint32
}

// New builds a machine from cfg. Uncore latencies (mesh hops, MPB SRAM,
// memory controllers) are derived from the base CoreMHz clock once, here;
// frequency tiers (and later DVFS changes) scale only the core-domain
// latencies, exactly as SetDomainMHz does.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	period := cfg.CorePeriod()
	m := &Machine{
		cfg:          cfg,
		basePeriod:   period,
		hopTime:      Time(cfg.HopCycles) * period,
		l1Hit:        Time(cfg.L1HitCycles) * period,
		l2Hit:        Time(cfg.L2HitCycles) * period,
		mpbAccess:    Time(cfg.MPBAccessCycles) * period,
		mcLatency:    Time(cfg.MCLatencyCycles) * period,
		mcOccupy:     Time(cfg.MCOccupancyCycles) * period,
		dirtyEvict:   Time(cfg.DirtyEvictCycles) * period,
		coresPerTile: cfg.TileCores(),
		mpbStride:    cfg.MPBStride(),
		mcPos:        computeMCPositions(&cfg),
		shared:       NewPageMem(),
		mpb:          make([]byte, cfg.MPBTotal()),
		tas:          make([]bool, cfg.Cores),
	}
	m.computeMeshMap()
	m.cores = make([]*coreState, 0, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		cs := &coreState{
			l1:   NewCache(cfg.L1Bytes, cfg.L1Ways, cfg.LineBytes),
			l2:   NewCache(cfg.L2Bytes, cfg.L2Ways, cfg.LineBytes),
			priv: NewPageMem(),
		}
		corePeriod := period
		if len(cfg.Tiers) > 0 {
			corePeriod = Time(1e6 / uint64(cfg.TierMHz(i)))
		}
		cs.setPeriod(&m.cfg, corePeriod)
		m.cores = append(m.cores, cs)
	}
	for i := 0; i < cfg.MemControllers; i++ {
		m.mcs = append(m.mcs, &memController{})
	}
	return m, nil
}

// MustNew builds a machine or panics; for tests and examples.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Cores returns the core count.
func (m *Machine) Cores() int { return len(m.cores) }

// CorePeriodOf returns core's current cycle duration (DVFS-aware).
func (m *Machine) CorePeriodOf(core int) Time { return m.cores[core].timer.Period }

// ComputeTime converts an instruction cycle count on core into time and
// records it.
func (m *Machine) ComputeTime(core int, cycles int) Time {
	return m.cores[core].timer.Cycles(cycles)
}

// ---------------------------------------------------------------------------
// Data movement
// ---------------------------------------------------------------------------

// Load reads len(buf) bytes at addr on behalf of core and returns the
// access latency starting from now. The backing store is selected with a
// direct switch (no interface dispatch or boxing on the hot path).
func (m *Machine) Load(core int, addr uint32, buf []byte, now Time) Time {
	switch {
	case addr >= MPBBase:
		copy(buf, m.mpb[addr-MPBBase:])
	case addr >= SharedBase:
		m.shared.Read(addr-SharedBase, buf)
	default:
		m.cores[core].priv.Read(addr, buf)
	}
	cs := m.cores[core]
	cs.stats.Loads++
	lat := m.accessTime(core, addr, false, now)
	cs.stats.MemTime += lat
	return lat
}

// Store writes data at addr on behalf of core and returns the latency.
func (m *Machine) Store(core int, addr uint32, data []byte, now Time) Time {
	switch {
	case addr >= MPBBase:
		copy(m.mpb[addr-MPBBase:], data)
	case addr >= SharedBase:
		m.shared.Write(addr-SharedBase, data)
	default:
		m.cores[core].priv.Write(addr, data)
	}
	cs := m.cores[core]
	cs.stats.Stores++
	lat := m.accessTime(core, addr, true, now)
	cs.stats.MemTime += lat
	return lat
}

// ReadBytes copies memory without charging time (used by the runtime for
// printf formatting and by tests).
func (m *Machine) ReadBytes(core int, addr uint32, buf []byte) {
	m.backing(core, addr).Read(addr-m.regionBase(addr), buf)
}

// WriteBytes stores memory without charging time (program loading).
func (m *Machine) WriteBytes(core int, addr uint32, data []byte) {
	m.backing(core, addr).Write(addr-m.regionBase(addr), data)
}

// regionMem adapts the flat MPB array to the PageMem interface.
type regionMem struct{ b []byte }

func (r regionMem) Read(off uint32, buf []byte)   { copy(buf, r.b[off:]) }
func (r regionMem) Write(off uint32, data []byte) { copy(r.b[off:], data) }

type byteStore interface {
	Read(addr uint32, buf []byte)
	Write(addr uint32, data []byte)
}

func (m *Machine) backing(core int, addr uint32) byteStore {
	switch {
	case addr >= MPBBase:
		return regionMem{m.mpb}
	case addr >= SharedBase:
		return m.shared
	default:
		return m.cores[core].priv
	}
}

func (m *Machine) regionBase(addr uint32) uint32 {
	switch {
	case addr >= MPBBase:
		return MPBBase
	case addr >= SharedBase:
		return SharedBase
	default:
		return 0
	}
}

// ---------------------------------------------------------------------------
// Timing
// ---------------------------------------------------------------------------

// accessTime computes the latency of one access according to the address
// class (see the package comment for the model).
func (m *Machine) accessTime(core int, addr uint32, write bool, now Time) Time {
	cs := m.cores[core]
	switch {
	case addr >= MPBBase:
		cs.stats.MPBAccesses++
		return m.mpbTime(core, addr, write)
	case addr >= SharedBase:
		cs.stats.SharedAccesses++
		if m.cfg.SharedCacheable {
			return m.cachedTime(core, addr, write, now)
		}
		// Uncacheable: every access crosses the mesh to the quadrant's
		// controller and pays the full DRAM latency plus queueing.
		return m.dramTime(core, now)
	default:
		cs.stats.PrivateAccesses++
		return m.cachedTime(core, addr, write, now)
	}
}

// cachedTime walks the private hierarchy: L1, then L2, then DRAM via the
// quadrant controller. Write misses allocate (write-allocate policy).
// Cache latencies are in the core's clock domain, so they scale with
// DVFS (the derived times are recomputed whenever a domain's frequency
// changes); the mesh and controllers run off their own clocks.
func (m *Machine) cachedTime(core int, addr uint32, write bool, now Time) Time {
	cs := m.cores[core]
	hit, dirty := cs.l1.Access(addr, write)
	if hit {
		cs.stats.L1Hits++
		return cs.l1HitT
	}
	cs.stats.L1Misses++
	lat := cs.l1HitT
	if dirty {
		lat += cs.dirtyT
	}
	hit, dirty = cs.l2.Access(addr, write)
	if hit {
		cs.stats.L2Hits++
		return lat + cs.l2HitT
	}
	cs.stats.L2Misses++
	lat += cs.l2HitT
	if dirty {
		lat += cs.dirtyT
	}
	return lat + m.dramTime(core, now+lat)
}

// dramTime is one trip to the core's quadrant memory controller: mesh
// wire latency both ways, queueing behind earlier requests, and the DDR
// access itself.
func (m *Machine) dramTime(core int, now Time) Time {
	wire := m.meshRoundTrip(m.HopsToController(core))
	mc := m.mcs[m.ControllerOf(core)]
	arrival := now + wire/2
	start := arrival
	if mc.freeAt > start {
		start = mc.freeAt
	}
	mc.freeAt = start + m.mcOccupy
	mc.busy += m.mcOccupy
	mc.requests++
	if start-arrival > 1000000 && debugMC {
		fmt.Printf("DBG core=%d now=%dns arrival=%dns start=%dns wait=%dns\n", core, now/1000, arrival/1000, start/1000, (start-arrival)/1000)
	}
	return wire + (start - arrival) + m.mcLatency
}

// mpbTime is an access to the on-chip SRAM. With MPBCacheable (the SCC's
// MPBT type) the line may hit in L1; a miss or uncached access pays the
// SRAM access at the owning tile plus mesh distance.
func (m *Machine) mpbTime(core int, addr uint32, write bool) Time {
	cs := m.cores[core]
	owner := m.MPBOwner(addr)
	if owner != core {
		cs.stats.MPBRemote++
	}
	if m.cfg.MPBCacheable {
		hit, _ := cs.l1.Access(addr, write)
		if hit {
			cs.stats.L1Hits++
			return cs.l1HitT
		}
		cs.stats.L1Misses++
	}
	return m.mpbAccess + m.meshRoundTrip(m.Hops(core, owner))
}

// ---------------------------------------------------------------------------
// MPB ownership
// ---------------------------------------------------------------------------

// MapMPB registers a striped allocation: [start, start+size) is owned in
// chunk-sized pieces round-robin across owners. The RCCE runtime calls
// this when it block-distributes an on-chip array so that each rank's
// slice is local to it.
func (m *Machine) MapMPB(start uint32, size int, owners []int, chunk int) {
	if len(owners) == 0 || chunk <= 0 {
		return
	}
	m.mpbRanges = append(m.mpbRanges, mpbRange{
		start:  start,
		end:    start + uint32(size),
		owners: append([]int(nil), owners...),
		chunk:  uint32(chunk),
	})
	sort.Slice(m.mpbRanges, func(i, j int) bool { return m.mpbRanges[i].start < m.mpbRanges[j].start })
}

// MPBOwner returns the core whose MPB section holds addr.
func (m *Machine) MPBOwner(addr uint32) int {
	for i := range m.mpbRanges {
		r := &m.mpbRanges[i]
		if addr >= r.start && addr < r.end {
			idx := int((addr - r.start) / r.chunk)
			return r.owners[idx%len(r.owners)]
		}
	}
	off := int(addr - MPBBase)
	owner := off / m.mpbStride
	if owner >= len(m.cores) {
		owner = len(m.cores) - 1
	}
	return owner
}

// ---------------------------------------------------------------------------
// Test-and-set registers
// ---------------------------------------------------------------------------

// TestAndSet atomically reads-and-sets target's lock register on behalf
// of core, returning whether the lock was acquired (register was clear)
// and the access latency (a mesh round trip to the register's tile).
func (m *Machine) TestAndSet(core, target int, now Time) (acquired bool, lat Time) {
	lat = m.meshRoundTrip(m.Hops(core, target)) + m.basePeriod
	acquired = !m.tas[target]
	m.tas[target] = true
	return acquired, lat
}

// TASClear releases target's lock register; the latency is charged to
// the releasing core.
func (m *Machine) TASClear(core, target int, now Time) Time {
	m.tas[target] = false
	return m.meshRoundTrip(m.Hops(core, target)) + m.basePeriod
}

// TASValue reads the register without side effects (tests).
func (m *Machine) TASValue(target int) bool { return m.tas[target] }

// ---------------------------------------------------------------------------
// Cache maintenance & stats
// ---------------------------------------------------------------------------

// FlushL1 invalidates core's L1, returning the flush cost (the pthread
// baseline charges it on every context switch: dirty lines drain to L2).
func (m *Machine) FlushL1(core int) Time {
	dirty := m.cores[core].l1.Flush()
	return Time(dirty) * m.dirtyEvict
}

// StatsOf returns a copy of core's counters. Compute time lives in the
// core's timer (the hot-path accumulator) and is folded into the copy.
func (m *Machine) StatsOf(core int) CoreStats {
	st := m.cores[core].stats
	st.CompTime = m.cores[core].timer.Comp
	return st
}

// TotalStats sums the per-core counters.
func (m *Machine) TotalStats() CoreStats {
	var t CoreStats
	for _, c := range m.cores {
		t.Loads += c.stats.Loads
		t.Stores += c.stats.Stores
		t.PrivateAccesses += c.stats.PrivateAccesses
		t.SharedAccesses += c.stats.SharedAccesses
		t.MPBAccesses += c.stats.MPBAccesses
		t.MPBRemote += c.stats.MPBRemote
		t.L1Hits += c.stats.L1Hits
		t.L1Misses += c.stats.L1Misses
		t.L2Hits += c.stats.L2Hits
		t.L2Misses += c.stats.L2Misses
		t.MemTime += c.stats.MemTime
		t.CompTime += c.timer.Comp
	}
	return t
}

// MCBusy returns controller i's cumulative occupancy and request count.
func (m *Machine) MCBusy(i int) (Time, uint64) { return m.mcs[i].busy, m.mcs[i].requests }

// String summarises the machine for diagnostics.
func (m *Machine) String() string {
	return fmt.Sprintf("SCC<%d cores %dx%d mesh %d MCs core=%dMHz mesh=%dMHz ddr=%dMHz>",
		m.cfg.Cores, m.cfg.TilesX, m.cfg.TilesY, m.cfg.MemControllers,
		m.cfg.CoreMHz, m.cfg.MeshMHz, m.cfg.DDRMHz)
}
