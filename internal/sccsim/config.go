// Package sccsim models the Intel Single-chip Cloud Computer: 48 P54C
// Pentium-class cores on 24 tiles in a 6x4 mesh, private non-coherent
// L1/L2 caches, a 384 KB on-chip Message Passing Buffer (8 KB per core),
// four DDR3 memory controllers at the mesh corners, one test-and-set
// register per core, and voltage/frequency domains (thesis §5.1,
// Howard et al. [13], Mattson et al. [19]).
//
// The model is a deterministic virtual-time simulator. All timing is kept
// in picoseconds so that per-domain frequency scaling composes cleanly;
// the interpreter charges compute cycles and routes every memory access
// through Machine, which decides the latency from the address class:
//
//	private DRAM   cacheable in L1 and L2 (write-back, write-allocate)
//	shared DRAM    uncacheable (SCC shared pages bypass the caches)
//	MPB            cacheable in L1 only (the SCC's MPBT line type)
//
// Contention is modelled at the memory controllers: each is a virtual-
// time-ordered server; a request arriving while the controller is busy
// queues behind it. Mesh distance adds per-hop wire latency both ways.
package sccsim

import "fmt"

// Time is a point or duration in simulated time, in picoseconds.
type Time = uint64

// PsPerSecond converts seconds to Time.
const PsPerSecond = 1e12

// Address classes of the simulated 32-bit physical address space. The
// layout mirrors the SCC lookup-table configuration used by RCCE: a
// private range per core, a shared uncacheable DRAM window, and the
// memory-mapped MPB.
const (
	// PrivateBase..PrivateLimit is the per-core private cacheable range.
	// Each core has its own backing store for this window (the LUT maps
	// the same core addresses to disjoint DRAM).
	PrivateBase  uint32 = 0x0000_1000
	PrivateLimit uint32 = 0x4000_0000

	// SharedBase..SharedLimit is off-chip shared DRAM, uncacheable,
	// visible to all cores at the same addresses.
	SharedBase  uint32 = 0x8000_0000
	SharedLimit uint32 = 0xC000_0000

	// MPBBase is the first byte of the on-chip Message Passing Buffer;
	// core c's 8 KB section starts at MPBBase + c*MPBPerCore.
	MPBBase uint32 = 0xC000_0000
)

// MPBPerCore is each core's slice of the on-chip SRAM (8 KB, thesis §5.1).
const MPBPerCore = 8 * 1024

// Config holds every architectural and timing parameter of the model.
// DefaultConfig returns the paper's experimental platform (Table 6.1).
type Config struct {
	// Geometry.
	Cores  int // total cores (48 on the SCC)
	TilesX int // mesh columns (6)
	TilesY int // mesh rows (4)

	// Clocks, in MHz (Table 6.1: 800/1600/1066).
	CoreMHz int
	MeshMHz int
	DDRMHz  int

	// Private cache hierarchy (per core; P54C-class L1 + SCC tile L2).
	L1Bytes   int
	L1Ways    int
	L2Bytes   int
	L2Ways    int
	LineBytes int

	// Latencies, in core cycles at CoreMHz. Conversions to Time happen
	// once at machine construction so DVFS does not retroactively change
	// uncore latencies.
	L1HitCycles       int // load-to-use on an L1 hit
	L2HitCycles       int // L1 miss, L2 hit
	MPBAccessCycles   int // MPB SRAM access once at the owning tile
	HopCycles         int // mesh latency per hop, one way
	MCLatencyCycles   int // DRAM access latency at the controller (bank+DDR)
	MCOccupancyCycles int // controller occupancy per request (pipelined DDR)
	DirtyEvictCycles  int // write-back of an evicted dirty line

	// Memory controllers.
	MemControllers int // 4 on the SCC, at the mesh corners

	// MPBCacheable selects the SCC's MPBT behaviour: MPB lines are
	// cacheable in L1 (not L2). Disabling it is the ablation case.
	MPBCacheable bool
	// SharedCacheable lets shared DRAM be cached like private memory —
	// a hypothetical coherent machine, used only for the ablation bench
	// (the real SCC cannot do this safely).
	SharedCacheable bool
}

// DefaultConfig returns the experimental platform of thesis Table 6.1 with
// SCC-documented latencies.
func DefaultConfig() Config {
	return Config{
		Cores:  48,
		TilesX: 6,
		TilesY: 4,

		CoreMHz: 800,
		MeshMHz: 1600,
		DDRMHz:  1066,

		L1Bytes:   8 * 1024,
		L1Ways:    2,
		L2Bytes:   256 * 1024,
		L2Ways:    4,
		LineBytes: 32,

		L1HitCycles:       1,
		L2HitCycles:       18,
		MPBAccessCycles:   15,
		HopCycles:         2,
		MCLatencyCycles:   46,
		MCOccupancyCycles: 8,
		DirtyEvictCycles:  6,

		MemControllers: 4,
		MPBCacheable:   true,
	}
}

// Validate reports configuration inconsistencies.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.Cores > c.TilesX*c.TilesY*2 {
		return fmt.Errorf("sccsim: %d cores do not fit on a %dx%d mesh of dual-core tiles",
			c.Cores, c.TilesX, c.TilesY)
	}
	if c.CoreMHz <= 0 || c.MeshMHz <= 0 || c.DDRMHz <= 0 {
		return fmt.Errorf("sccsim: clocks must be positive")
	}
	if c.LineBytes <= 0 || c.L1Bytes%c.LineBytes != 0 || c.L2Bytes%c.LineBytes != 0 {
		return fmt.Errorf("sccsim: cache sizes must be multiples of the line size")
	}
	if c.L1Ways <= 0 || c.L2Ways <= 0 {
		return fmt.Errorf("sccsim: cache associativity must be positive")
	}
	if c.MemControllers <= 0 {
		return fmt.Errorf("sccsim: need at least one memory controller")
	}
	return nil
}

// CorePeriod returns the duration of one core cycle at the base frequency.
func (c Config) CorePeriod() Time { return Time(1e6 / uint64(c.CoreMHz)) }

// MPBTotal returns the size of the whole Message Passing Buffer.
func (c Config) MPBTotal() int { return c.Cores * MPBPerCore }

// Table61 renders the SCC configuration table (thesis Table 6.1).
func (c Config) Table61(units int) string {
	return fmt.Sprintf(""+
		"Core Frequency         %d MHz\n"+
		"Communication Network  %d MHz\n"+
		"Off-chip Memory        %d MHz\n"+
		"Execution Units        %d cores\n",
		c.CoreMHz, c.MeshMHz, c.DDRMHz, units)
}
