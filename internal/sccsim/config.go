// Package sccsim models the Intel Single-chip Cloud Computer: 48 P54C
// Pentium-class cores on 24 tiles in a 6x4 mesh, private non-coherent
// L1/L2 caches, a 384 KB on-chip Message Passing Buffer (8 KB per core),
// four DDR3 memory controllers at the mesh corners, one test-and-set
// register per core, and voltage/frequency domains (thesis §5.1,
// Howard et al. [13], Mattson et al. [19]).
//
// The model is a deterministic virtual-time simulator. All timing is kept
// in picoseconds so that per-domain frequency scaling composes cleanly;
// the interpreter charges compute cycles and routes every memory access
// through Machine, which decides the latency from the address class:
//
//	private DRAM   cacheable in L1 and L2 (write-back, write-allocate)
//	shared DRAM    uncacheable (SCC shared pages bypass the caches)
//	MPB            cacheable in L1 only (the SCC's MPBT line type)
//
// Contention is modelled at the memory controllers: each is a virtual-
// time-ordered server; a request arriving while the controller is busy
// queues behind it. Mesh distance adds per-hop wire latency both ways.
package sccsim

import "fmt"

// Time is a point or duration in simulated time, in picoseconds.
type Time = uint64

// PsPerSecond converts seconds to Time.
const PsPerSecond = 1e12

// Address classes of the simulated 32-bit physical address space. The
// layout mirrors the SCC lookup-table configuration used by RCCE: a
// private range per core, a shared uncacheable DRAM window, and the
// memory-mapped MPB.
const (
	// PrivateBase..PrivateLimit is the per-core private cacheable range.
	// Each core has its own backing store for this window (the LUT maps
	// the same core addresses to disjoint DRAM).
	PrivateBase  uint32 = 0x0000_1000
	PrivateLimit uint32 = 0x4000_0000

	// SharedBase..SharedLimit is off-chip shared DRAM, uncacheable,
	// visible to all cores at the same addresses.
	SharedBase  uint32 = 0x8000_0000
	SharedLimit uint32 = 0xC000_0000

	// MPBBase is the first byte of the on-chip Message Passing Buffer;
	// core c's 8 KB section starts at MPBBase + c*MPBPerCore.
	MPBBase uint32 = 0xC000_0000
)

// MPBPerCore is each core's slice of the on-chip SRAM on the real SCC
// (8 KB, thesis §5.1). It is the default for Config.MPBPerCoreBytes.
const MPBPerCore = 8 * 1024

// Tier is a contiguous run of cores clocked at its own base frequency.
// Tiers cover the core index space in order: the first tier holds cores
// [0, Cores), the second the next run, and so on. They model asymmetric
// machines (a few fast cores in front of a wide slow mesh) without
// touching the DVFS machinery — tier clocks set each core's initial
// period exactly as SetDomainMHz would, and uncore latencies stay on the
// config's base CoreMHz clock.
type Tier struct {
	Cores   int
	CoreMHz int
}

// Config holds every architectural and timing parameter of the model.
// DefaultConfig returns the paper's experimental platform (Table 6.1).
type Config struct {
	// Geometry.
	Cores  int // total cores (48 on the SCC)
	TilesX int // mesh columns (6)
	TilesY int // mesh rows (4)
	// CoresPerTile is the number of cores sharing a tile (and therefore a
	// mesh router). Zero means the SCC's dual-core tiles.
	CoresPerTile int
	// MPBPerCoreBytes is each core's slice of the on-chip SRAM. Zero
	// means the SCC's 8 KB (MPBPerCore); scaled meshes shrink it so the
	// total MPB stays within on-chip reason at 256-1024 cores.
	MPBPerCoreBytes int
	// Tiers optionally splits the cores into frequency tiers (asymmetric
	// machines). Empty means every core runs at CoreMHz. When present,
	// tier core counts must sum to Cores.
	Tiers []Tier

	// Clocks, in MHz (Table 6.1: 800/1600/1066).
	CoreMHz int
	MeshMHz int
	DDRMHz  int

	// Private cache hierarchy (per core; P54C-class L1 + SCC tile L2).
	L1Bytes   int
	L1Ways    int
	L2Bytes   int
	L2Ways    int
	LineBytes int

	// Latencies, in core cycles at CoreMHz. Conversions to Time happen
	// once at machine construction so DVFS does not retroactively change
	// uncore latencies.
	L1HitCycles       int // load-to-use on an L1 hit
	L2HitCycles       int // L1 miss, L2 hit
	MPBAccessCycles   int // MPB SRAM access once at the owning tile
	HopCycles         int // mesh latency per hop, one way
	MCLatencyCycles   int // DRAM access latency at the controller (bank+DDR)
	MCOccupancyCycles int // controller occupancy per request (pipelined DDR)
	DirtyEvictCycles  int // write-back of an evicted dirty line

	// Memory controllers.
	MemControllers int // 4 on the SCC, at the mesh corners

	// MPBCacheable selects the SCC's MPBT behaviour: MPB lines are
	// cacheable in L1 (not L2). Disabling it is the ablation case.
	MPBCacheable bool
	// SharedCacheable lets shared DRAM be cached like private memory —
	// a hypothetical coherent machine, used only for the ablation bench
	// (the real SCC cannot do this safely).
	SharedCacheable bool
}

// DefaultConfig returns the experimental platform of thesis Table 6.1 with
// SCC-documented latencies.
func DefaultConfig() Config {
	return Config{
		Cores:  48,
		TilesX: 6,
		TilesY: 4,

		CoreMHz: 800,
		MeshMHz: 1600,
		DDRMHz:  1066,

		L1Bytes:   8 * 1024,
		L1Ways:    2,
		L2Bytes:   256 * 1024,
		L2Ways:    4,
		LineBytes: 32,

		L1HitCycles:       1,
		L2HitCycles:       18,
		MPBAccessCycles:   15,
		HopCycles:         2,
		MCLatencyCycles:   46,
		MCOccupancyCycles: 8,
		DirtyEvictCycles:  6,

		MemControllers: 4,
		MPBCacheable:   true,
	}
}

// Validate reports configuration inconsistencies.
func (c Config) Validate() error {
	cpt := c.TileCores()
	if c.CoresPerTile < 0 {
		return fmt.Errorf("sccsim: negative cores per tile")
	}
	if c.TilesX <= 0 || c.TilesY <= 0 {
		return fmt.Errorf("sccsim: mesh dimensions must be positive")
	}
	if c.Cores <= 0 || c.Cores > c.TilesX*c.TilesY*cpt {
		return fmt.Errorf("sccsim: %d cores do not fit on a %dx%d mesh of %d-core tiles",
			c.Cores, c.TilesX, c.TilesY, cpt)
	}
	if c.CoreMHz <= 0 || c.MeshMHz <= 0 || c.DDRMHz <= 0 {
		return fmt.Errorf("sccsim: clocks must be positive")
	}
	if c.LineBytes < 2 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("sccsim: line size must be a power of two >= 2")
	}
	if c.L1Bytes%c.LineBytes != 0 || c.L2Bytes%c.LineBytes != 0 {
		return fmt.Errorf("sccsim: cache sizes must be multiples of the line size")
	}
	if c.L1Ways <= 0 || c.L2Ways <= 0 {
		return fmt.Errorf("sccsim: cache associativity must be positive")
	}
	if c.MemControllers <= 0 {
		return fmt.Errorf("sccsim: need at least one memory controller")
	}
	if c.MPBPerCoreBytes < 0 {
		return fmt.Errorf("sccsim: negative per-core MPB size")
	}
	if len(c.Tiers) > 0 {
		total := 0
		for i, t := range c.Tiers {
			if t.Cores <= 0 {
				return fmt.Errorf("sccsim: tier %d has %d cores", i, t.Cores)
			}
			if t.CoreMHz <= 0 {
				return fmt.Errorf("sccsim: tier %d clock must be positive", i)
			}
			total += t.Cores
		}
		if total != c.Cores {
			return fmt.Errorf("sccsim: tiers cover %d cores, machine has %d", total, c.Cores)
		}
	}
	return nil
}

// CorePeriod returns the duration of one core cycle at the base frequency.
func (c Config) CorePeriod() Time { return Time(1e6 / uint64(c.CoreMHz)) }

// TileCores returns the effective cores-per-tile count (default 2, the
// SCC's dual-core tiles).
func (c Config) TileCores() int {
	if c.CoresPerTile <= 0 {
		return 2
	}
	return c.CoresPerTile
}

// MPBStride returns the effective per-core MPB slice (default 8 KB).
func (c Config) MPBStride() int {
	if c.MPBPerCoreBytes <= 0 {
		return MPBPerCore
	}
	return c.MPBPerCoreBytes
}

// TierMHz returns the base frequency of a core under the tier layout
// (CoreMHz when no tiers are configured).
func (c Config) TierMHz(core int) int {
	for _, t := range c.Tiers {
		if core < t.Cores {
			return t.CoreMHz
		}
		core -= t.Cores
	}
	return c.CoreMHz
}

// MPBTotal returns the size of the whole Message Passing Buffer.
func (c Config) MPBTotal() int { return c.Cores * c.MPBStride() }

// PresetNames lists the named machine configurations, smallest first.
func PresetNames() []string { return []string{"scc48", "mesh256", "mesh1024"} }

// PresetConfig resolves a named machine configuration. "scc48" is the
// paper's 48-core SCC (DefaultConfig); "mesh256" and "mesh1024" scale
// the same core, cache and latency parameters onto larger square meshes
// with quad-core tiles, more perimeter memory controllers, and per-core
// MPB slices shrunk so the total on-chip SRAM grows sublinearly (the
// MemPool/TeraPool regime of 256-1024 cores sharing a mesh). The empty
// name resolves to scc48 so call sites can treat "no machine named" as
// the default platform.
func PresetConfig(name string) (Config, error) {
	switch name {
	case "", "scc48":
		return DefaultConfig(), nil
	case "mesh256":
		cfg := DefaultConfig()
		cfg.Cores = 256
		cfg.TilesX, cfg.TilesY = 8, 8
		cfg.CoresPerTile = 4
		cfg.MemControllers = 8
		cfg.MPBPerCoreBytes = 4 * 1024
		return cfg, nil
	case "mesh1024":
		cfg := DefaultConfig()
		cfg.Cores = 1024
		cfg.TilesX, cfg.TilesY = 16, 16
		cfg.CoresPerTile = 4
		cfg.MemControllers = 16
		cfg.MPBPerCoreBytes = 2 * 1024
		return cfg, nil
	}
	return Config{}, fmt.Errorf("sccsim: unknown machine preset %q (have %v)", name, PresetNames())
}

// MustPreset resolves a preset or panics; for tests and examples.
func MustPreset(name string) Config {
	cfg, err := PresetConfig(name)
	if err != nil {
		panic(err)
	}
	return cfg
}

// Table61 renders the SCC configuration table (thesis Table 6.1).
func (c Config) Table61(units int) string {
	return fmt.Sprintf(""+
		"Core Frequency         %d MHz\n"+
		"Communication Network  %d MHz\n"+
		"Off-chip Memory        %d MHz\n"+
		"Execution Units        %d cores\n",
		c.CoreMHz, c.MeshMHz, c.DDRMHz, units)
}
