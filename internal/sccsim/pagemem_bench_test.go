package sccsim

import "testing"

// mapPageMem is the original map-backed page store, kept here as the
// benchmark baseline so `go test -bench PageMem ./internal/sccsim`
// shows what removing the map hash from the access path buys.
type mapPageMem struct {
	pages map[uint32]*[pageSize]byte
}

func (p *mapPageMem) page(addr uint32) *[pageSize]byte {
	key := addr / pageSize
	pg, ok := p.pages[key]
	if !ok {
		pg = new([pageSize]byte)
		p.pages[key] = pg
	}
	return pg
}

func (p *mapPageMem) Read(addr uint32, buf []byte) {
	for len(buf) > 0 {
		pg := p.page(addr)
		off := addr % pageSize
		n := copy(buf, pg[off:])
		buf = buf[n:]
		addr += uint32(n)
	}
}

func (p *mapPageMem) Write(addr uint32, data []byte) {
	for len(data) > 0 {
		pg := p.page(addr)
		off := addr % pageSize
		n := copy(pg[off:], data)
		data = data[n:]
		addr += uint32(n)
	}
}

// accessPattern mimics the interpreter's traffic: a loop walking an
// array in one region (the heap) interleaved with stack-slot accesses
// high in the address space — two localities the last-page cache and
// dense table serve without hashing.
var accessPattern = func() []uint32 {
	addrs := make([]uint32, 0, 4096)
	const heap = PrivateBase + 0x2000
	const stack = PrivateLimit - 0x100
	for i := 0; i < 2048; i++ {
		addrs = append(addrs, heap+uint32(i%1024)*4, stack-uint32(i%16)*8)
	}
	return addrs
}()

func BenchmarkPageMemAccess(b *testing.B) {
	var buf [8]byte
	b.Run("dense", func(b *testing.B) {
		m := NewPageMem()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, a := range accessPattern {
				m.Write(a, buf[:4])
				m.Read(a, buf[:4])
			}
		}
	})
	b.Run("map-baseline", func(b *testing.B) {
		m := &mapPageMem{pages: make(map[uint32]*[pageSize]byte)}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, a := range accessPattern {
				m.Write(a, buf[:4])
				m.Read(a, buf[:4])
			}
		}
	})
}

// TestPageMemSpanningAndZeroing covers the dense store against the
// behaviours the simulator relies on: zero-fill on first touch, reads
// and writes spanning page boundaries, and Touched accounting.
func TestPageMemSpanningAndZeroing(t *testing.T) {
	m := NewPageMem()
	var got [16]byte
	m.Read(pageSize-8, got[:])
	for _, b := range got {
		if b != 0 {
			t.Fatal("fresh pages must read zero")
		}
	}
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	m.Write(pageSize-8, data) // spans pages 0 and 1
	m.Read(pageSize-8, got[:])
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("spanning write: byte %d = %d, want %d", i, got[i], data[i])
		}
	}
	if m.Touched() != 2 {
		t.Fatalf("Touched = %d, want 2", m.Touched())
	}
	// High stack addresses coexist with low heap pages.
	m.Write(PrivateLimit-4, []byte{0xaa, 0xbb, 0xcc, 0xdd})
	var hi [4]byte
	m.Read(PrivateLimit-4, hi[:])
	if hi != [4]byte{0xaa, 0xbb, 0xcc, 0xdd} {
		t.Fatalf("high write read back %x", hi)
	}
	if m.Touched() != 3 {
		t.Fatalf("Touched = %d, want 3", m.Touched())
	}
	m.Zero(pageSize-8, 16)
	m.Read(pageSize-8, got[:])
	for _, b := range got {
		if b != 0 {
			t.Fatal("Zero must clear the range")
		}
	}
}
