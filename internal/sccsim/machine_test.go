package sccsim

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func testMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

// forEachPreset runs a subtest per named machine preset, so geometry
// invariants are pinned on the scaled meshes, not just the SCC.
func forEachPreset(t *testing.T, f func(t *testing.T, m *Machine)) {
	t.Helper()
	for _, name := range PresetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := New(MustPreset(name))
			if err != nil {
				t.Fatalf("New(%s): %v", name, err)
			}
			f(t, m)
		})
	}
}

// TestPresetConfigsValid: every named preset validates and carries the
// advertised geometry.
func TestPresetConfigsValid(t *testing.T) {
	for _, name := range PresetNames() {
		cfg := MustPreset(name)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if cfg.Cores > cfg.TilesX*cfg.TilesY*cfg.TileCores() {
			t.Errorf("%s: %d cores overflow the mesh", name, cfg.Cores)
		}
	}
	if cfg := MustPreset("mesh1024"); cfg.Cores != 1024 || cfg.MemControllers != 16 {
		t.Errorf("mesh1024 = %d cores / %d MCs, want 1024/16", cfg.Cores, cfg.MemControllers)
	}
	if _, err := PresetConfig("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
	// The empty name is the SCC default, so "no machine named" call
	// sites resolve to the paper's platform.
	if cfg := MustPreset(""); cfg.Cores != 48 {
		t.Errorf("default preset = %d cores, want 48", cfg.Cores)
	}
}

// TestTierClocks: an asymmetric tier layout sets per-core base periods
// like SetDomainMHz would, without touching uncore latencies.
func TestTierClocks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tiers = []Tier{{Cores: 8, CoreMHz: 800}, {Cores: 40, CoreMHz: 400}}
	m := MustNew(cfg)
	fast := m.ComputeTime(0, 100)
	slow := m.ComputeTime(8, 100)
	if slow != 2*fast {
		t.Errorf("tier-1 compute = %d ps, want 2x tier-0 %d ps", slow, fast)
	}
	// Uncore latency (uncached shared DRAM) stays on the base clock:
	// identical from a fast-tier and a symmetric machine's core 0.
	buf := make([]byte, 4)
	sym := testMachine(t)
	if a, b := m.Load(0, SharedBase, buf, 0), sym.Load(0, SharedBase, buf, 0); a != b {
		t.Errorf("tiered shared access = %d ps, symmetric = %d ps; uncore must not retier", a, b)
	}
	bad := DefaultConfig()
	bad.Tiers = []Tier{{Cores: 10, CoreMHz: 800}}
	if err := bad.Validate(); err == nil {
		t.Error("tiers covering 10 of 48 cores validated")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Cores = 100 }, // > 2 per tile * 24 tiles
		func(c *Config) { c.CoreMHz = 0 },
		func(c *Config) { c.LineBytes = 0 },
		func(c *Config) { c.L1Ways = 0 },
		func(c *Config) { c.MemControllers = 0 },
		func(c *Config) { c.L1Bytes = 100 }, // not a line multiple
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestTable61(t *testing.T) {
	s := DefaultConfig().Table61(32)
	for _, want := range []string{"800 MHz", "1600 MHz", "1066 MHz", "32 cores"} {
		if !contains(s, want) {
			t.Errorf("Table61 missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestPrivateIsolation: private memory is per core; the same address on
// two cores must not alias.
func TestPrivateIsolation(t *testing.T) {
	m := testMachine(t)
	addr := PrivateBase + 128
	m.WriteBytes(0, addr, []byte{1, 2, 3, 4})
	m.WriteBytes(1, addr, []byte{9, 9, 9, 9})
	var buf [4]byte
	m.ReadBytes(0, addr, buf[:])
	if buf != [4]byte{1, 2, 3, 4} {
		t.Errorf("core 0 private = %v, want 1 2 3 4", buf)
	}
	m.ReadBytes(1, addr, buf[:])
	if buf != [4]byte{9, 9, 9, 9} {
		t.Errorf("core 1 private = %v, want 9 9 9 9", buf)
	}
}

// TestSharedVisibility: shared DRAM writes from one core are visible to
// every other core — the property the translated programs rely on.
func TestSharedVisibility(t *testing.T) {
	forEachPreset(t, func(t *testing.T, m *Machine) {
		addr := SharedBase + 4096
		var word [4]byte
		binary.LittleEndian.PutUint32(word[:], 0xDEADBEEF)
		m.Store(7, addr, word[:], 0)
		var got [4]byte
		m.Load(m.cfg.Cores/2, addr, got[:], 0)
		if binary.LittleEndian.Uint32(got[:]) != 0xDEADBEEF {
			t.Errorf("shared read = %x, want deadbeef", got)
		}
	})
}

// TestMPBVisibility: the MPB is globally visible on-chip SRAM, whatever
// the per-core stride.
func TestMPBVisibility(t *testing.T) {
	forEachPreset(t, func(t *testing.T, m *Machine) {
		addr := MPBBase + uint32(3*m.mpbStride) + 16
		m.Store(0, addr, []byte{42}, 0)
		var b [1]byte
		m.Load(m.cfg.Cores-1, addr, b[:], 0)
		if b[0] != 42 {
			t.Errorf("MPB read = %d, want 42", b[0])
		}
	})
}

// TestCachedFasterThanUncached: repeated private accesses (L1-hot) must
// be much cheaper than uncacheable shared accesses — the central premise
// of the HSM architecture.
func TestCachedFasterThanUncached(t *testing.T) {
	m := testMachine(t)
	buf := make([]byte, 4)
	// Warm the line, then measure a hit.
	m.Load(0, PrivateBase, buf, 0)
	hit := m.Load(0, PrivateBase, buf, 0)
	shared := m.Load(0, SharedBase, buf, 0)
	if hit*10 > shared {
		t.Errorf("L1 hit %d ps vs shared %d ps: want >=10x gap", hit, shared)
	}
}

// TestMPBFasterThanSharedDRAM: the reason Stage 4 exists.
func TestMPBFasterThanSharedDRAM(t *testing.T) {
	m := testMachine(t)
	buf := make([]byte, 4)
	mpb := m.Load(0, MPBBase, buf, 0) // core 0's own section, cold
	shared := m.Load(0, SharedBase, buf, 0)
	if mpb >= shared {
		t.Errorf("MPB %d ps !< shared %d ps", mpb, shared)
	}
	// And a warm (L1-cached) MPB access is cheaper still.
	warm := m.Load(0, MPBBase, buf, 0)
	if warm >= mpb {
		t.Errorf("warm MPB %d ps !< cold MPB %d ps", warm, mpb)
	}
}

// TestRemoteMPBSlower: distance matters on the mesh, at every scale.
func TestRemoteMPBSlower(t *testing.T) {
	for _, name := range PresetNames() {
		t.Run(name, func(t *testing.T) {
			cfg := MustPreset(name)
			cfg.MPBCacheable = false // isolate the wire latency from caching
			m := MustNew(cfg)
			buf := make([]byte, 4)
			last := cfg.Cores - 1
			local := m.Load(0, MPBBase, buf, 0) // owner = core 0
			far := MPBBase + uint32(last*m.mpbStride)
			remote := m.Load(0, far, buf, 0) // owner = last core, opposite corner
			if remote <= local {
				t.Errorf("remote MPB %d ps !> local %d ps", remote, local)
			}
			wantGap := m.meshRoundTrip(m.Hops(0, last))
			if remote-local != wantGap {
				t.Errorf("remote-local gap = %d ps, want mesh round trip %d ps", remote-local, wantGap)
			}
		})
	}
}

// TestMCQueueing: back-to-back uncached shared accesses at one controller
// queue behind each other.
func TestMCQueueing(t *testing.T) {
	m := testMachine(t)
	buf := make([]byte, 4)
	first := m.Load(0, SharedBase, buf, 0)
	second := m.Load(0, SharedBase+64, buf, 0) // same instant, same MC
	if second <= first {
		t.Errorf("queued access %d ps !> unqueued %d ps", second, first)
	}
	if second-first != m.mcOccupy {
		t.Errorf("queue delay = %d ps, want one occupancy slot %d ps", second-first, m.mcOccupy)
	}
}

// TestQuadrantControllers: nearest-corner assignment splits the full chip
// into four equal quadrants of 12 cores. (The paper's 32-core runs see
// "at least 8 cores in contention per memory controller": ranks 0-31 fill
// quadrants unevenly, up to 12 on the row-0/1 controllers.)
func TestQuadrantControllers(t *testing.T) {
	m := testMachine(t)
	counts := make(map[int]int)
	for c := 0; c < 48; c++ {
		counts[m.ControllerOf(c)]++
	}
	if len(counts) != 4 {
		t.Fatalf("48 cores use %d controllers, want 4", len(counts))
	}
	for mc, n := range counts {
		if n != 12 {
			t.Errorf("controller %d serves %d cores, want 12", mc, n)
		}
	}
	max32 := 0
	for c := 0; c < 32; c++ {
		if m.ControllerOf(c) == 0 {
			max32++
		}
	}
	if max32 < 8 {
		t.Errorf("busiest controller serves %d of ranks 0-31, want >= 8", max32)
	}
}

// TestControllerAssignmentNearest: on every preset, each core reaches
// DRAM through a genuinely nearest controller, and no controller is
// stranded unused — the property the corner rule generalized to.
func TestControllerAssignmentNearest(t *testing.T) {
	forEachPreset(t, func(t *testing.T, m *Machine) {
		served := make(map[int]int)
		for c := 0; c < m.cfg.Cores; c++ {
			mc := m.ControllerOf(c)
			if mc < 0 || mc >= m.cfg.MemControllers {
				t.Fatalf("core %d assigned controller %d of %d", c, mc, m.cfg.MemControllers)
			}
			served[mc]++
			cx, cy := m.CoreXY(c)
			best := 1 << 30
			for i := range m.mcPos {
				if d := abs(cx-m.mcPos[i].x) + abs(cy-m.mcPos[i].y); d < best {
					best = d
				}
			}
			if got := m.HopsToController(c); got != best {
				t.Errorf("core %d: %d hops to its controller, nearest is %d", c, got, best)
			}
		}
		if len(served) != m.cfg.MemControllers {
			t.Errorf("%d of %d controllers serve cores", len(served), m.cfg.MemControllers)
		}
	})
}

// TestHopsSymmetricAndTriangle: property-check the mesh metric on every
// preset geometry.
func TestHopsSymmetricAndTriangle(t *testing.T) {
	forEachPreset(t, func(t *testing.T, m *Machine) {
		n := m.cfg.Cores
		f := func(a, b, c uint16) bool {
			x, y, z := int(a)%n, int(b)%n, int(c)%n
			if m.Hops(x, y) != m.Hops(y, x) {
				return false
			}
			if m.Hops(x, x) != 0 {
				return false
			}
			return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
}

// TestTileLayout: TileCores cores per tile, coordinates within the mesh.
func TestTileLayout(t *testing.T) {
	forEachPreset(t, func(t *testing.T, m *Machine) {
		per := m.cfg.TileCores()
		if m.TileOf(0) != m.TileOf(per-1) {
			t.Errorf("cores 0 and %d must share a tile", per-1)
		}
		if m.TileOf(per-1) == m.TileOf(per) {
			t.Errorf("cores %d and %d must not share a tile", per-1, per)
		}
		for c := 0; c < m.cfg.Cores; c++ {
			x, y := m.CoreXY(c)
			if x < 0 || x >= m.cfg.TilesX || y < 0 || y >= m.cfg.TilesY {
				t.Errorf("core %d at (%d,%d) outside %dx%d mesh",
					c, x, y, m.cfg.TilesX, m.cfg.TilesY)
			}
		}
	})
}

// TestTAS: the per-core test-and-set registers implement try-lock.
func TestTAS(t *testing.T) {
	m := testMachine(t)
	got, _ := m.TestAndSet(1, 5, 0)
	if !got {
		t.Fatal("first TAS should acquire")
	}
	got, _ = m.TestAndSet(2, 5, 0)
	if got {
		t.Fatal("second TAS should fail while held")
	}
	m.TASClear(1, 5, 0)
	got, _ = m.TestAndSet(2, 5, 0)
	if !got {
		t.Fatal("TAS after clear should acquire")
	}
	if !m.TASValue(5) {
		t.Fatal("register should read set")
	}
}

// TestTASLatencyDistance: locking a far register costs more than a near
// one.
func TestTASLatencyDistance(t *testing.T) {
	forEachPreset(t, func(t *testing.T, m *Machine) {
		_, near := m.TestAndSet(0, 0, 0)
		_, far := m.TestAndSet(0, m.cfg.Cores-1, 0)
		if far <= near {
			t.Errorf("far TAS %d ps !> near %d ps", far, near)
		}
	})
}

// TestMPBStripedOwnership: MapMPB distributes chunk ownership round-robin.
func TestMPBStripedOwnership(t *testing.T) {
	m := testMachine(t)
	owners := []int{0, 1, 2, 3}
	m.MapMPB(MPBBase, 4*64, owners, 64)
	for i, want := range owners {
		addr := MPBBase + uint32(i*64)
		if got := m.MPBOwner(addr); got != want {
			t.Errorf("chunk %d owner = %d, want %d", i, got, want)
		}
	}
	// Outside the range: section-default ownership (per-core stride).
	if got := m.MPBOwner(MPBBase + uint32(10*m.mpbStride) + 4*64 + 1); got != 10 {
		t.Errorf("default owner = %d, want 10", got)
	}
}

// TestFlushL1CostsDirtyWritebacks: flushing after stores costs more than
// flushing a clean cache.
func TestFlushL1CostsDirtyWritebacks(t *testing.T) {
	m := testMachine(t)
	if m.FlushL1(0) != 0 {
		t.Fatal("flushing an empty L1 should be free")
	}
	buf := []byte{1, 2, 3, 4}
	for i := 0; i < 16; i++ {
		m.Store(0, PrivateBase+uint32(i*32), buf, 0)
	}
	if m.FlushL1(0) == 0 {
		t.Fatal("flushing 16 dirty lines should cost write-backs")
	}
}

// TestComputeTimeDVFS: halving the clock doubles compute time.
func TestComputeTimeDVFS(t *testing.T) {
	m := testMachine(t)
	base := m.ComputeTime(0, 100)
	if err := m.SetDomainMHz(0, 400); err != nil {
		t.Fatalf("SetDomainMHz: %v", err)
	}
	slow := m.ComputeTime(0, 100)
	if slow != 2*base {
		t.Errorf("at 400 MHz compute = %d ps, want %d", slow, 2*base)
	}
	// Cores outside the domain are unaffected.
	other := m.ComputeTime(VoltageDomainCores, 100)
	if other != base {
		t.Errorf("other-domain compute = %d ps, want %d", other, base)
	}
}

func TestSetDomainMHzBounds(t *testing.T) {
	m := testMachine(t)
	if err := m.SetDomainMHz(0, 50); err == nil {
		t.Error("50 MHz should be rejected")
	}
	if err := m.SetDomainMHz(0, 2000); err == nil {
		t.Error("2000 MHz should be rejected")
	}
	if err := m.SetDomainMHz(99, 800); err == nil {
		t.Error("bogus domain should be rejected")
	}
}

// TestPowerFit: the power model reproduces the chip's published envelope
// (25 W at 125 MHz, 125 W at 1 GHz) within 2%.
func TestPowerFit(t *testing.T) {
	if p := PowerAt(125); p < 24.5 || p > 25.5 {
		t.Errorf("P(125 MHz) = %.1f W, want ~25", p)
	}
	if p := PowerAt(1000); p < 122 || p > 128 {
		t.Errorf("P(1 GHz) = %.1f W, want ~125", p)
	}
	if PowerAt(800) <= PowerAt(400) {
		t.Error("power must grow with frequency")
	}
}

// TestPowerEstimateTracksDomains: lowering one domain lowers chip power.
func TestPowerEstimateTracksDomains(t *testing.T) {
	m := testMachine(t)
	before := m.PowerEstimate()
	if err := m.SetDomainMHz(0, MinMHz); err != nil {
		t.Fatal(err)
	}
	after := m.PowerEstimate()
	if after >= before {
		t.Errorf("power after downclock %.1f W !< before %.1f W", after, before)
	}
}

// TestSharedCacheableAblation: with the hypothetical coherent
// configuration, repeated shared accesses become cache hits.
func TestSharedCacheableAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SharedCacheable = true
	m := MustNew(cfg)
	buf := make([]byte, 4)
	m.Load(0, SharedBase, buf, 0)
	warm := m.Load(0, SharedBase, buf, 0)
	if warm != m.l1Hit {
		t.Errorf("warm cacheable-shared access = %d ps, want L1 hit %d ps", warm, m.l1Hit)
	}
}

// TestStatsAccumulate: counters track the traffic mix.
func TestStatsAccumulate(t *testing.T) {
	m := testMachine(t)
	buf := make([]byte, 4)
	m.Load(3, PrivateBase, buf, 0)
	m.Store(3, SharedBase, buf, 0)
	m.Load(3, MPBBase, buf, 0)
	s := m.StatsOf(3)
	if s.Loads != 2 || s.Stores != 1 {
		t.Errorf("loads/stores = %d/%d, want 2/1", s.Loads, s.Stores)
	}
	if s.PrivateAccesses != 1 || s.SharedAccesses != 1 || s.MPBAccesses != 1 {
		t.Errorf("mix = %d/%d/%d, want 1/1/1", s.PrivateAccesses, s.SharedAccesses, s.MPBAccesses)
	}
	total := m.TotalStats()
	if total.Loads != 2 {
		t.Errorf("total loads = %d, want 2", total.Loads)
	}
}

// TestPageMemRoundTrip: property test — writes then reads return the same
// bytes at arbitrary addresses and lengths, including page boundaries.
func TestPageMemRoundTrip(t *testing.T) {
	pm := NewPageMem()
	f := func(addr uint32, data []byte) bool {
		if len(data) > 64*1024 {
			data = data[:64*1024]
		}
		pm.Write(addr, data)
		got := make([]byte, len(data))
		pm.Read(addr, got)
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageMemZero(t *testing.T) {
	pm := NewPageMem()
	pm.Write(4090, []byte{1, 2, 3, 4, 5, 6, 7, 8}) // spans a page boundary
	pm.Zero(4090, 8)
	buf := make([]byte, 8)
	pm.Read(4090, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatalf("Zero left %v", buf)
		}
	}
}
