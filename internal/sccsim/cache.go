package sccsim

// Cache is a set-associative, write-back, write-allocate cache model with
// LRU replacement. It tracks tags only — data lives in the machine's
// backing stores — which is sufficient because the SCC's caches are
// non-coherent and private: a cached line can never be stale with respect
// to another core's writes (shared pages are uncacheable), so hit/miss
// behaviour is independent of contents.
//
// Lines are stored as one flat ways-major array (set s occupies
// lines[s*ways : (s+1)*ways]) and Access resolves hit and LRU victim in
// a single pass — this sits directly on the simulator's per-access hot
// path, so it is kept branch-lean and allocation-free.
type Cache struct {
	// lines is materialised on first access: a machine constructs one
	// L1+L2 pair per core, but a run touches only the cores it schedules
	// work on, so eager allocation would dominate short simulations.
	lines     []cacheLine
	nlines    int
	ways      int
	lineBits  uint
	setMask   uint32
	tick      uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	DirtyEv   uint64
}

// cacheLine packs to 16 bytes (used, tag, flag bits) so a set scan
// stays within one or two host cache lines.
type cacheLine struct {
	used  uint64
	tag   uint32
	flags uint8 // bit 0: valid, bit 1: dirty
}

const (
	lineValid = 1 << 0
	lineDirty = 1 << 1
)

// invalidTag marks an empty way. Real line addresses are addr>>lineBits
// with lineBits >= 1 (Config.Validate requires a line size of at least
// two bytes), so the all-ones tag can never match an access — which
// lets the hit scan test the tag alone, with no validity load.
const invalidTag = ^uint32(0)

// NewCache builds a cache of the given geometry. size and lineBytes must
// be powers-of-two multiples.
func NewCache(size, ways, lineBytes int) *Cache {
	nsets := size / lineBytes / ways
	if nsets < 1 {
		nsets = 1
	}
	return &Cache{
		nlines:   nsets * ways,
		ways:     ways,
		lineBits: log2(lineBytes),
		setMask:  uint32(nsets - 1),
	}
}

func log2(v int) uint {
	var b uint
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}

// Access looks up the line containing addr, allocating it on a miss.
// It returns whether the access hit and whether the allocation evicted a
// dirty line (which costs a write-back).
//
// Hits dominate every workload this model serves (the corpus runs >90%
// L1 hit rates), so the hit scan is a pure tag compare — empty ways hold
// invalidTag, which no real line address can equal, and the flags byte is
// never loaded. Only a miss pays the second scan for the LRU victim;
// invalid ways carry used==0 while valid ways carry used>=1, so the
// minimum-used way is exactly the first invalid way when one exists and
// the LRU way otherwise — the same choice the original scan made.
func (c *Cache) Access(addr uint32, write bool) (hit, dirtyEvict bool) {
	c.tick++
	if c.lines == nil {
		c.materialize()
	}
	lineAddr := addr >> c.lineBits
	base := int(lineAddr&c.setMask) * c.ways
	set := c.lines[base : base+c.ways]
	for i := range set {
		if set[i].tag == lineAddr {
			ln := &set[i]
			ln.used = c.tick
			if write {
				ln.flags |= lineDirty
			}
			c.Hits++
			return true, false
		}
	}
	c.Misses++
	victim := 0
	minUsed := ^uint64(0)
	for i := range set {
		if set[i].used < minUsed {
			minUsed = set[i].used
			victim = i
		}
	}
	v := &set[victim]
	if v.tag != invalidTag {
		c.Evictions++
		if v.flags&lineDirty != 0 {
			c.DirtyEv++
			dirtyEvict = true
		}
	}
	flags := uint8(lineValid)
	if write {
		flags |= lineDirty
	}
	*v = cacheLine{tag: lineAddr, flags: flags, used: c.tick}
	return false, dirtyEvict
}

// materialize allocates the line array with every way marked empty.
func (c *Cache) materialize() {
	c.lines = make([]cacheLine, c.nlines)
	for i := range c.lines {
		c.lines[i].tag = invalidTag
	}
}

// Contains reports whether addr's line is resident (no state change).
func (c *Cache) Contains(addr uint32) bool {
	if c.lines == nil {
		return false
	}
	lineAddr := addr >> c.lineBits
	base := int(lineAddr&c.setMask) * c.ways
	set := c.lines[base : base+c.ways]
	for i := range set {
		if set[i].tag == lineAddr {
			return true
		}
	}
	return false
}

// Flush invalidates every line, returning how many dirty lines were
// written back. The pthread baseline uses this to model the cache
// pollution of a context switch.
func (c *Cache) Flush() (dirty int) {
	for i := range c.lines {
		if c.lines[i].flags&(lineValid|lineDirty) == lineValid|lineDirty {
			dirty++
		}
		c.lines[i] = cacheLine{tag: invalidTag}
	}
	return dirty
}

// Lines returns the total line capacity.
func (c *Cache) Lines() int { return c.nlines }

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int { return 1 << c.lineBits }
