package sccsim

// Cache is a set-associative, write-back, write-allocate cache model with
// LRU replacement. It tracks tags only — data lives in the machine's
// backing stores — which is sufficient because the SCC's caches are
// non-coherent and private: a cached line can never be stale with respect
// to another core's writes (shared pages are uncacheable), so hit/miss
// behaviour is independent of contents.
type Cache struct {
	sets      [][]cacheLine
	lineBits  uint
	setMask   uint32
	tick      uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	DirtyEv   uint64
}

type cacheLine struct {
	tag   uint32
	valid bool
	dirty bool
	used  uint64
}

// NewCache builds a cache of the given geometry. size and lineBytes must
// be powers-of-two multiples.
func NewCache(size, ways, lineBytes int) *Cache {
	nsets := size / lineBytes / ways
	if nsets < 1 {
		nsets = 1
	}
	c := &Cache{
		sets:     make([][]cacheLine, nsets),
		lineBits: log2(lineBytes),
		setMask:  uint32(nsets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, ways)
	}
	return c
}

func log2(v int) uint {
	var b uint
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}

// Access looks up the line containing addr, allocating it on a miss.
// It returns whether the access hit and whether the allocation evicted a
// dirty line (which costs a write-back).
func (c *Cache) Access(addr uint32, write bool) (hit, dirtyEvict bool) {
	c.tick++
	lineAddr := addr >> c.lineBits
	set := c.sets[lineAddr&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].used = c.tick
			if write {
				set[i].dirty = true
			}
			c.Hits++
			return true, false
		}
	}
	c.Misses++
	// Miss: allocate over the LRU way.
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	if set[victim].valid {
		c.Evictions++
		if set[victim].dirty {
			c.DirtyEv++
			dirtyEvict = true
		}
	}
	set[victim] = cacheLine{tag: lineAddr, valid: true, dirty: write, used: c.tick}
	return false, dirtyEvict
}

// Contains reports whether addr's line is resident (no state change).
func (c *Cache) Contains(addr uint32) bool {
	lineAddr := addr >> c.lineBits
	set := c.sets[lineAddr&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return true
		}
	}
	return false
}

// Flush invalidates every line, returning how many dirty lines were
// written back. The pthread baseline uses this to model the cache
// pollution of a context switch.
func (c *Cache) Flush() (dirty int) {
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid && c.sets[s][i].dirty {
				dirty++
			}
			c.sets[s][i] = cacheLine{}
		}
	}
	return dirty
}

// Lines returns the total line capacity.
func (c *Cache) Lines() int { return len(c.sets) * len(c.sets[0]) }

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int { return 1 << c.lineBits }
