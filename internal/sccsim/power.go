package sccsim

import "fmt"

// The SCC exposes voltage and frequency control at domain granularity:
// six voltage domains of eight cores (2x2 tiles) and per-tile frequency
// dividers (thesis §5.1). The paper quotes the operating envelope as
// 0.7 V / 125 MHz (25 W) up to 1.14 V / 1 GHz (125 W); the power model
// below is fitted to those two points with P = leak*V + k*V^2*f.

// VoltageDomainCores is the number of cores per voltage domain.
const VoltageDomainCores = 8

// Power-model coefficients fitted to the SCC datapoints (see above).
const (
	powerK    = 7.025e-8 // W per V^2*Hz, switching power
	powerLeak = 29.57    // W per V, leakage at 50C
)

// MinMHz and MaxMHz bound the SCC's core frequency range.
const (
	MinMHz = 125
	MaxMHz = 1000
)

// VoltageFor returns the supply voltage required to run at mhz, by linear
// interpolation between the chip's two published operating points.
func VoltageFor(mhz int) float64 {
	if mhz < MinMHz {
		mhz = MinMHz
	}
	if mhz > MaxMHz {
		mhz = MaxMHz
	}
	frac := float64(mhz-MinMHz) / float64(MaxMHz-MinMHz)
	return 0.7 + frac*(1.14-0.7)
}

// PowerAt estimates whole-chip power (watts) with every domain at mhz.
func PowerAt(mhz int) float64 {
	v := VoltageFor(mhz)
	f := float64(mhz) * 1e6
	return powerLeak*v + powerK*v*v*f
}

// VoltageDomains returns the number of voltage domains on the machine.
func (m *Machine) VoltageDomains() int {
	return (len(m.cores) + VoltageDomainCores - 1) / VoltageDomainCores
}

// DomainOf returns the voltage domain of a core.
func (m *Machine) DomainOf(core int) int { return core / VoltageDomainCores }

// SetDomainMHz changes the clock of every core in a voltage domain. It
// returns an error when the frequency is outside the chip's envelope.
// Uncore latencies (mesh, MPB, DRAM) are unaffected: they run off the
// mesh and DDR clocks.
func (m *Machine) SetDomainMHz(domain, mhz int) error {
	if mhz < MinMHz || mhz > MaxMHz {
		return fmt.Errorf("sccsim: %d MHz outside the %d-%d MHz envelope", mhz, MinMHz, MaxMHz)
	}
	if domain < 0 || domain >= m.VoltageDomains() {
		return fmt.Errorf("sccsim: no voltage domain %d", domain)
	}
	period := Time(1e6 / uint64(mhz))
	lo := domain * VoltageDomainCores
	hi := lo + VoltageDomainCores
	if hi > len(m.cores) {
		hi = len(m.cores)
	}
	for c := lo; c < hi; c++ {
		m.cores[c].setPeriod(&m.cfg, period)
	}
	return nil
}

// DomainMHz returns the current frequency of a domain's cores.
func (m *Machine) DomainMHz(domain int) int {
	core := domain * VoltageDomainCores
	return int(1e6 / uint64(m.cores[core].timer.Period))
}

// PowerEstimate sums a per-domain fit of the chip's power at the current
// frequencies: each domain contributes its share of leakage plus
// switching power at its own voltage and frequency.
func (m *Machine) PowerEstimate() float64 {
	domains := m.VoltageDomains()
	var total float64
	for d := 0; d < domains; d++ {
		mhz := m.DomainMHz(d)
		v := VoltageFor(mhz)
		f := float64(mhz) * 1e6
		total += (powerLeak*v + powerK*v*v*f) / float64(domains)
	}
	return total
}
