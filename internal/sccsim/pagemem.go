package sccsim

// pageSize is the granularity of the sparse backing store. 4 KB matches
// the SCC page tables, though the value only affects allocation locality.
const pageSize = 4096

const (
	pageShift = 12 // log2(pageSize)
	pageMask  = pageSize - 1
	// The 32-bit physical space holds 2^20 pages; a two-level table
	// (1024 directories of 1024 pages) resolves any of them with two
	// array indexes — no map hash on the access path.
	dirShift = 10
	dirSize  = 1 << dirShift
	leafMask = dirSize - 1
)

// PageMem is a sparse byte-addressable memory: pages materialise zeroed on
// first touch, so stacks high in the address space and heaps low coexist
// without reserving the range between them.
//
// The access path is allocation- and hash-free: a two-entry last-page
// cache catches the loop locality of the interpreter's contiguous
// low/heap and high/stack ranges (which alternate per statement), and
// misses fall through to a dense two-level page table (directory of
// leaf arrays) instead of the former map lookup. BenchmarkPageMemAccess
// pins the difference.
type PageMem struct {
	// Two-entry most-recent-page cache: interpreter traffic alternates
	// between a data page (array/heap) and the stack page of the current
	// frame, so one entry per stream catches both.
	lastKey uint32
	last    *[pageSize]byte
	prevKey uint32
	prev    *[pageSize]byte
	// dir is the root directory, allocated on first touch so that the
	// untouched cores of a freshly built machine cost nothing.
	dir     [][]*[pageSize]byte
	touched int
}

// NewPageMem returns an empty memory.
func NewPageMem() *PageMem {
	return &PageMem{}
}

func (p *PageMem) page(addr uint32) *[pageSize]byte {
	key := addr >> pageShift
	if key == p.lastKey && p.last != nil {
		return p.last
	}
	if key == p.prevKey && p.prev != nil {
		p.lastKey, p.prevKey = p.prevKey, p.lastKey
		p.last, p.prev = p.prev, p.last
		return p.last
	}
	return p.pageSlow(key)
}

func (p *PageMem) pageSlow(key uint32) *[pageSize]byte {
	if p.dir == nil {
		p.dir = make([][]*[pageSize]byte, dirSize)
	}
	leaf := p.dir[key>>dirShift]
	if leaf == nil {
		leaf = make([]*[pageSize]byte, dirSize)
		p.dir[key>>dirShift] = leaf
	}
	pg := leaf[key&leafMask]
	if pg == nil {
		pg = new([pageSize]byte)
		leaf[key&leafMask] = pg
		p.touched++
	}
	p.prevKey, p.prev = p.lastKey, p.last
	p.lastKey, p.last = key, pg
	return pg
}

// Read copies len(buf) bytes starting at addr into buf. The interpreter
// issues word-sized accesses that almost never straddle a page, so the
// single-page case is handled without the span loop.
func (p *PageMem) Read(addr uint32, buf []byte) {
	off := addr & pageMask
	if int(off)+len(buf) <= pageSize {
		copy(buf, p.page(addr)[off:])
		return
	}
	for len(buf) > 0 {
		pg := p.page(addr)
		off := addr & pageMask
		n := copy(buf, pg[off:])
		buf = buf[n:]
		addr += uint32(n)
	}
}

// Write copies data into memory starting at addr.
func (p *PageMem) Write(addr uint32, data []byte) {
	off := addr & pageMask
	if int(off)+len(data) <= pageSize {
		copy(p.page(addr)[off:], data)
		return
	}
	for len(data) > 0 {
		pg := p.page(addr)
		off := addr & pageMask
		n := copy(pg[off:], data)
		data = data[n:]
		addr += uint32(n)
	}
}

// Zero clears size bytes starting at addr.
func (p *PageMem) Zero(addr uint32, size int) {
	var zeros [pageSize]byte
	for size > 0 {
		n := pageSize
		if size < n {
			n = size
		}
		p.Write(addr, zeros[:n])
		addr += uint32(n)
		size -= n
	}
}

// Touched returns the number of materialised pages (test/diagnostic aid).
func (p *PageMem) Touched() int { return p.touched }
