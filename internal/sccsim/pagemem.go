package sccsim

// pageSize is the granularity of the sparse backing store. 4 KB matches
// the SCC page tables, though the value only affects allocation locality.
const pageSize = 4096

// PageMem is a sparse byte-addressable memory: pages materialise zeroed on
// first touch, so stacks high in the address space and heaps low coexist
// without reserving the range between them.
type PageMem struct {
	pages map[uint32]*[pageSize]byte
}

// NewPageMem returns an empty memory.
func NewPageMem() *PageMem {
	return &PageMem{pages: make(map[uint32]*[pageSize]byte)}
}

func (p *PageMem) page(addr uint32) *[pageSize]byte {
	key := addr / pageSize
	pg, ok := p.pages[key]
	if !ok {
		pg = new([pageSize]byte)
		p.pages[key] = pg
	}
	return pg
}

// Read copies len(buf) bytes starting at addr into buf.
func (p *PageMem) Read(addr uint32, buf []byte) {
	for len(buf) > 0 {
		pg := p.page(addr)
		off := addr % pageSize
		n := copy(buf, pg[off:])
		buf = buf[n:]
		addr += uint32(n)
	}
}

// Write copies data into memory starting at addr.
func (p *PageMem) Write(addr uint32, data []byte) {
	for len(data) > 0 {
		pg := p.page(addr)
		off := addr % pageSize
		n := copy(pg[off:], data)
		data = data[n:]
		addr += uint32(n)
	}
}

// Zero clears size bytes starting at addr.
func (p *PageMem) Zero(addr uint32, size int) {
	var zeros [pageSize]byte
	for size > 0 {
		n := pageSize
		if size < n {
			n = size
		}
		p.Write(addr, zeros[:n])
		addr += uint32(n)
		size -= n
	}
}

// Touched returns the number of materialised pages (test/diagnostic aid).
func (p *PageMem) Touched() int { return len(p.pages) }
