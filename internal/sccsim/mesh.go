package sccsim

// The SCC places two cores per tile on a 6x4 mesh (thesis Figure 5.1).
// Routing is dimension-ordered (X then Y), so the distance between two
// tiles is the Manhattan distance. The four memory controllers sit on the
// mesh corners; each core reaches DRAM through the controller of its
// quadrant, which is what puts "at least 8 cores in contention per memory
// controller" in the paper's 32-core runs.

// TileOf returns the tile index of a core (two cores per tile).
func (m *Machine) TileOf(core int) int { return core / 2 }

// TileXY returns a tile's mesh coordinates.
func (m *Machine) TileXY(tile int) (x, y int) {
	return tile % m.cfg.TilesX, tile / m.cfg.TilesX
}

// CoreXY returns a core's tile coordinates.
func (m *Machine) CoreXY(core int) (x, y int) { return m.TileXY(m.TileOf(core)) }

// Hops returns the XY-routed hop count between the tiles of two cores.
func (m *Machine) Hops(coreA, coreB int) int {
	ax, ay := m.CoreXY(coreA)
	bx, by := m.CoreXY(coreB)
	return abs(ax-bx) + abs(ay-by)
}

// mcPosition returns the mesh coordinates of memory controller i. The
// controllers sit on the corners (for the default four); additional
// controllers wrap along the left/right edges.
func (m *Machine) mcPosition(i int) (x, y int) {
	maxX, maxY := m.cfg.TilesX-1, m.cfg.TilesY-1
	switch i % 4 {
	case 0:
		return 0, 0
	case 1:
		return maxX, 0
	case 2:
		return 0, maxY
	default:
		return maxX, maxY
	}
}

// ControllerOf returns the memory controller serving a core: the one at
// the nearest corner (ties broken toward the lower index), which
// partitions the chip into quadrants.
func (m *Machine) ControllerOf(core int) int {
	cx, cy := m.CoreXY(core)
	best, bestDist := 0, 1<<30
	for i := range m.mcs {
		x, y := m.mcPosition(i)
		d := abs(cx-x) + abs(cy-y)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// HopsToController returns the hop count from a core's tile to its
// memory controller.
func (m *Machine) HopsToController(core int) int {
	cx, cy := m.CoreXY(core)
	x, y := m.mcPosition(m.ControllerOf(core))
	return abs(cx-x) + abs(cy-y)
}

// meshRoundTrip is the wire latency of a request/response pair across
// the given hop count.
func (m *Machine) meshRoundTrip(hops int) Time {
	return Time(2*hops) * m.hopTime
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
