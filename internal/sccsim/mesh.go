package sccsim

// The SCC places two cores per tile on a 6x4 mesh (thesis Figure 5.1);
// scaled configurations widen the tiles (Config.CoresPerTile) and the
// mesh. Routing is dimension-ordered (X then Y), so the distance between
// two tiles is the Manhattan distance. Up to four memory controllers sit
// on the mesh corners exactly as on the SCC; larger controller counts
// are spread evenly along the mesh perimeter. Each core reaches DRAM
// through its nearest controller, which is what puts "at least 8 cores
// in contention per memory controller" in the paper's 32-core runs.
//
// Controller assignment and hop counts depend only on the configuration,
// so they are resolved once at machine construction (computeMeshMap);
// dramTime — the per-access hot path — reads two array entries instead
// of re-running a nearest-controller search per DRAM request.

// TileOf returns the tile index of a core.
func (m *Machine) TileOf(core int) int { return core / m.coresPerTile }

// TileXY returns a tile's mesh coordinates.
func (m *Machine) TileXY(tile int) (x, y int) {
	return tile % m.cfg.TilesX, tile / m.cfg.TilesX
}

// CoreXY returns a core's tile coordinates.
func (m *Machine) CoreXY(core int) (x, y int) { return m.TileXY(m.TileOf(core)) }

// Hops returns the XY-routed hop count between the tiles of two cores.
func (m *Machine) Hops(coreA, coreB int) int {
	ax, ay := m.CoreXY(coreA)
	bx, by := m.CoreXY(coreB)
	return abs(ax-bx) + abs(ay-by)
}

// mcPosition returns the mesh coordinates of memory controller i.
func (m *Machine) mcPosition(i int) (x, y int) {
	p := m.mcPos[i]
	return p.x, p.y
}

// computeMCPositions places the memory controllers on the mesh. The
// first four take the corners in the SCC's order (preserving the
// original quadrant partition bit-for-bit on legacy configs); beyond
// four, controllers are spread evenly along the mesh perimeter —
// derived from the mesh geometry rather than the SCC's corner constant,
// so a 16x16 mesh with 16 controllers gets an edge distribution instead
// of 13 controllers piled onto 4 corner positions.
func computeMCPositions(cfg *Config) []meshPos {
	maxX, maxY := cfg.TilesX-1, cfg.TilesY-1
	n := cfg.MemControllers
	pos := make([]meshPos, n)
	if n <= 4 {
		corners := [4]meshPos{{0, 0}, {maxX, 0}, {0, maxY}, {maxX, maxY}}
		for i := range pos {
			pos[i] = corners[i%4]
		}
		return pos
	}
	perim := perimeterWalk(cfg.TilesX, cfg.TilesY)
	for i := range pos {
		pos[i] = perim[i*len(perim)/n]
	}
	return pos
}

type meshPos struct{ x, y int }

// perimeterWalk enumerates the border tiles clockwise from (0,0):
// along the top row, down the right column, back along the bottom row,
// and up the left column. Degenerate meshes (one row or column) reduce
// to a single pass.
func perimeterWalk(w, h int) []meshPos {
	if w == 1 {
		out := make([]meshPos, h)
		for y := 0; y < h; y++ {
			out[y] = meshPos{0, y}
		}
		return out
	}
	if h == 1 {
		out := make([]meshPos, w)
		for x := 0; x < w; x++ {
			out[x] = meshPos{x, 0}
		}
		return out
	}
	out := make([]meshPos, 0, 2*(w+h)-4)
	for x := 0; x < w; x++ {
		out = append(out, meshPos{x, 0})
	}
	for y := 1; y < h; y++ {
		out = append(out, meshPos{w - 1, y})
	}
	for x := w - 2; x >= 0; x-- {
		out = append(out, meshPos{x, h - 1})
	}
	for y := h - 2; y >= 1; y-- {
		out = append(out, meshPos{0, y})
	}
	return out
}

// computeMeshMap resolves every core's memory controller and hop count
// (nearest controller by Manhattan distance, ties toward the lower
// index — the SCC quadrant rule, now derived from geometry).
func (m *Machine) computeMeshMap() {
	m.coreMC = make([]int32, m.cfg.Cores)
	m.coreMCHops = make([]int32, m.cfg.Cores)
	for core := 0; core < m.cfg.Cores; core++ {
		cx, cy := m.CoreXY(core)
		best, bestDist := 0, 1<<30
		for i := range m.mcPos {
			d := abs(cx-m.mcPos[i].x) + abs(cy-m.mcPos[i].y)
			if d < bestDist {
				best, bestDist = i, d
			}
		}
		m.coreMC[core] = int32(best)
		m.coreMCHops[core] = int32(bestDist)
	}
}

// ControllerOf returns the memory controller serving a core.
func (m *Machine) ControllerOf(core int) int { return int(m.coreMC[core]) }

// HopsToController returns the hop count from a core's tile to its
// memory controller.
func (m *Machine) HopsToController(core int) int { return int(m.coreMCHops[core]) }

// meshRoundTrip is the wire latency of a request/response pair across
// the given hop count.
func (m *Machine) meshRoundTrip(hops int) Time {
	return Time(2*hops) * m.hopTime
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
