package bench

// The parallel experiment grid: the (workload x cores x policy x
// MPB-budget) sweep behind the paper's evaluation, run concurrently
// across goroutines. Each simulated SCC machine is independent, so
// cells parallelise perfectly; results are placed by cell index, which
// makes the output deterministic regardless of worker count — the
// property TestGridDeterminism pins down to byte-identical JSON.

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"hsmcc/internal/interp"
	"hsmcc/internal/partition"
	"hsmcc/internal/sccsim"
	"hsmcc/internal/trace"
)

// Grid is the declarative spec of one experiment sweep.
type Grid struct {
	// Name labels the emitted report (BENCH_<Name>.json).
	Name string `json:"name"`
	// Workloads are workload keys (see All); empty = the full corpus.
	Workloads []string `json:"workloads"`
	// Cores are the thread/core counts to sweep.
	Cores []int `json:"cores"`
	// Policies are Stage 4 policy names: "offchip", "size", "freq", or
	// "profiled" (profile-guided placement; each profiled cell first
	// takes a memoized profiling pass at its (workload, cores) point).
	Policies []string `json:"policies"`
	// MPBBudgets are Stage 4 on-chip byte budgets; 0 = the machine's
	// full MPB. Empty = [0].
	MPBBudgets []int `json:"mpb_budgets"`
	// Scale is the problem-size multiplier (0 = 1.0).
	Scale float64 `json:"scale"`
	// Machine names the simulated machine preset for every cell
	// (sccsim.PresetNames; "" = the SCC default, scc48). Core counts in
	// Cores must fit the preset's core count.
	Machine string `json:"machine,omitempty"`
}

// DefaultGrid is the full paper sweep: every workload, the Fig 6.3 core
// counts, both Stage 4 placements, full MPB budget.
func DefaultGrid() Grid {
	var keys []string
	for _, w := range All() {
		keys = append(keys, w.Key)
	}
	return Grid{
		Name:      "paper",
		Workloads: keys,
		Cores:     []int{1, 2, 4, 8, 16, 32},
		Policies:  []string{"offchip", "size"},
		Scale:     1.0,
	}
}

// ParsePolicy maps the CLI/JSON policy names (shared with cmd/hsmcc) to
// Stage 4 policies.
func ParsePolicy(name string) (partition.Policy, error) {
	switch name {
	case "size":
		return partition.PolicySizeAscending, nil
	case "freq":
		return partition.PolicyFrequencyDensity, nil
	case "offchip":
		return partition.PolicyOffChipOnly, nil
	case "profiled":
		return partition.PolicyProfiled, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want size, freq, offchip or profiled)", name)
}

// Cell is one point of the grid.
type Cell struct {
	// Index is the cell's position in the deterministic enumeration of
	// the full (unsharded) grid.
	Index     int    `json:"index"`
	Workload  string `json:"workload"`
	Cores     int    `json:"cores"`
	Policy    string `json:"policy"`
	MPBBudget int    `json:"mpb_budget"`
}

// Cells enumerates the grid in deterministic workload-major order:
// workload, then cores, then policy, then budget.
func (g Grid) Cells() []Cell {
	budgets := g.MPBBudgets
	if len(budgets) == 0 {
		budgets = []int{0}
	}
	workloads := g.Workloads
	if len(workloads) == 0 {
		for _, w := range All() {
			workloads = append(workloads, w.Key)
		}
	}
	var cells []Cell
	for _, wk := range workloads {
		for _, n := range g.Cores {
			for _, pol := range g.Policies {
				for _, b := range budgets {
					cells = append(cells, Cell{
						Index:     len(cells),
						Workload:  wk,
						Cores:     n,
						Policy:    pol,
						MPBBudget: b,
					})
				}
			}
		}
	}
	return cells
}

// Validate rejects specs that reference unknown workloads or policies
// before any simulation time is spent.
func (g Grid) Validate() error {
	if len(g.Cores) == 0 {
		return fmt.Errorf("grid %q: no core counts", g.Name)
	}
	if len(g.Policies) == 0 {
		return fmt.Errorf("grid %q: no policies", g.Name)
	}
	for _, wk := range g.Workloads {
		if _, ok := ByKey(wk); !ok {
			return fmt.Errorf("grid %q: unknown workload %q", g.Name, wk)
		}
	}
	for _, p := range g.Policies {
		if _, err := ParsePolicy(p); err != nil {
			return fmt.Errorf("grid %q: %w", g.Name, err)
		}
	}
	for _, b := range g.MPBBudgets {
		if b < 0 {
			return fmt.Errorf("grid %q: negative MPB budget %d (use 0 for the full MPB)", g.Name, b)
		}
	}
	mcfg, err := sccsim.PresetConfig(g.Machine)
	if err != nil {
		return fmt.Errorf("grid %q: %w", g.Name, err)
	}
	for _, n := range g.Cores {
		if n > mcfg.Cores {
			return fmt.Errorf("grid %q: %d cores exceed machine %q (%d cores)",
				g.Name, n, g.MachineName(), mcfg.Cores)
		}
	}
	return nil
}

// MachineName resolves the grid's machine preset name ("" = scc48).
func (g Grid) MachineName() string {
	if g.Machine == "" {
		return "scc48"
	}
	return g.Machine
}

// CellResult is the machine-readable outcome of one cell: the baseline
// and translated timings, the correctness check, and the simulator
// counters that explain the placement effect.
type CellResult struct {
	Cell
	// BaselinePs/RCCEPs are simulated makespans in picoseconds — exact
	// integers, so reports diff cleanly across runs.
	BaselinePs uint64 `json:"baseline_ps"`
	RCCEPs     uint64 `json:"rcce_ps"`
	// Speedup is BaselinePs/RCCEPs.
	Speedup float64 `json:"speedup"`
	// Match is the end-to-end validation: the translated RCCE program
	// printed the same distinct result lines as the Pthread baseline.
	Match bool `json:"match"`
	// OnChipBytes is what Stage 4 placed in the MPB.
	OnChipBytes int `json:"onchip_bytes"`
	// PlacementDigest fingerprints the profile-guided placement map
	// (profiled cells only).
	PlacementDigest string `json:"placement_digest,omitempty"`
	// MPBAccesses/SharedAccesses are the RCCE run's memory counters.
	MPBAccesses    uint64 `json:"mpb_accesses"`
	SharedAccesses uint64 `json:"shared_accesses"`
	// Error is set (and the metrics zero) if the cell failed.
	Error string `json:"error,omitempty"`
	// Cached reports whether the semantic result is shared with an
	// earlier-indexed identical cell (e.g. budget 0 vs the explicit
	// full MPB). Determined by enumeration order, not execution order,
	// so reports stay byte-identical across worker counts.
	Cached bool `json:"cached"`
}

// RunOptions controls grid execution.
type RunOptions struct {
	// Parallel is the worker count (<=0 = GOMAXPROCS).
	Parallel int
	// ShardIndex/ShardCount select every ShardCount-th cell starting at
	// ShardIndex (round-robin over the deterministic enumeration), so n
	// machines each running shard i/n cover the grid exactly once.
	// ShardCount <= 1 disables sharding.
	ShardIndex, ShardCount int
	// Engine selects the execution engine for every cell ("",
	// "compiled" or "treewalk"; empty defers to HSMCC_ENGINE).
	Engine string
	// Cache, when non-nil, replaces the per-sweep compile cache: the
	// serving daemon passes its process-lifetime cache here so grid
	// requests reuse (and warm) compiles, baselines and profiles across
	// requests.
	Cache *Cache
	// Cancel, when non-nil, is polled before each cell starts and at
	// every scheduling decision inside each simulation; once it returns
	// non-nil, remaining cells are marked with that error instead of
	// running.
	Cancel func() error
	// Fault, when non-nil, is the chaos-injection seam threaded into
	// every cell's Config (see Config.Fault): it fires at the named
	// compute stages inside the memoized closures, so injected panics
	// and cancellations exercise the cache's drop-on-error discipline.
	Fault func(stage string) error
	// OnResult, when non-nil, receives every finished cell in
	// deterministic index order (a reorder buffer sequences the
	// concurrent workers), before RunGrid returns. Callbacks are
	// serialized — the daemon streams NDJSON straight from here.
	OnResult func(CellResult)
	// TraceDir, when non-empty, attaches a trace.Recorder to every
	// RCCE simulation the sweep actually executes and writes one Chrome
	// trace_event file per distinct run into the directory, named after
	// the cell's semantic key. Cells served from the cell cache (dups,
	// warm daemon caches) write nothing — only real simulations have a
	// timeline.
	TraceDir string
}

// Report is the JSON document hsmbench emits as BENCH_<grid>.json.
type Report struct {
	Grid Grid `json:"grid"`
	// Shard is "i/n" when the report covers one shard, "" otherwise.
	Shard   string       `json:"shard,omitempty"`
	Results []CellResult `json:"results"`
	// SynthWins is the profiled-vs-static win map over the report's
	// synthetic cells (hsmbench -synth fills it in via SynthWinMap;
	// empty for corpus-only grids).
	SynthWins []SynthWin `json:"synth_wins,omitempty"`
}

// JSON renders the report with a stable layout (indent + trailing
// newline) so that reruns and shards diff and concatenate cleanly.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Filename is the canonical artifact name for this report's grid.
func (r *Report) Filename() string {
	return fmt.Sprintf("BENCH_%s.json", r.Grid.Name)
}

// cellKey identifies the semantic inputs of an RCCE run. Cells with
// different spec budgets can resolve to the same effective work (budget
// 0 is "the full MPB"), which the cache collapses. The engine is part
// of the identity: a run under one engine must never serve a cell that
// asked for another (equivalence tests compare engines through this
// very path). placement is the profile-guided placement map digest —
// empty for static policies — so a profiled cell can never collide with
// a static-policy cell at the same (cores, policy-name, budget) tuple,
// nor with a profiled cell whose measured placement differs.
//
// (Baseline runs have no per-grid cache anymore: RunBaseline memoizes
// through the sweep's shared bench.Cache, so every policy and budget
// cell at one (workload, cores) point shares a single run.)
// machine is the machine-config digest: sweeps over different presets
// (the scaling study) share one daemon-lifetime cache, and a cell run
// on a 48-core mesh must never serve the same (workload, cores, policy,
// budget) point simulated on a 1024-core one.
type cellKey struct {
	workload  string
	cores     int
	policy    string
	budget    int
	engine    interp.Engine
	placement string
	machine   string
}

// semanticKey normalises a cell to its cache identity: budget 0 and an
// explicit full-MPB budget are the same work. The placement digest is
// filled in by runCell once the (memoized) profile pass has produced
// it; for duplicate-marking before execution the empty digest is
// enough, because the digest is itself a deterministic function of the
// other key fields.
func semanticKey(c Cell, fullMPB int, engine interp.Engine, machine string) cellKey {
	b := c.MPBBudget
	if b <= 0 {
		b = fullMPB
	}
	return cellKey{workload: c.Workload, cores: c.Cores, policy: c.Policy, budget: b,
		engine: engine, machine: machine}
}

// gridRunner carries the per-run caches.
type gridRunner struct {
	grid    Grid
	cfg     Config
	fullMPB int
	// engine is the resolved execution engine, part of every cache key.
	engine interp.Engine
	cells  onceCache[cellKey, *RunResult]
	// traceDir, when non-empty, receives one Chrome trace file per
	// distinct RCCE simulation (RunOptions.TraceDir).
	traceDir string
}

// RunGrid executes the grid's cells across a worker pool and returns
// the report in deterministic cell order. Per-cell failures are
// recorded in CellResult.Error rather than aborting the sweep; only
// invalid specs and shards error out.
func RunGrid(g Grid, opt RunOptions) (*Report, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	cells := g.Cells()
	rep := &Report{Grid: g}
	if opt.ShardCount > 1 {
		if opt.ShardIndex < 0 || opt.ShardIndex >= opt.ShardCount {
			return nil, fmt.Errorf("shard %d/%d out of range", opt.ShardIndex, opt.ShardCount)
		}
		var mine []Cell
		for _, c := range cells {
			if c.Index%opt.ShardCount == opt.ShardIndex {
				mine = append(mine, c)
			}
		}
		cells = mine
		rep.Shard = fmt.Sprintf("%d/%d", opt.ShardIndex, opt.ShardCount)
	}
	workers := opt.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}

	r := &gridRunner{grid: g, cfg: DefaultConfig()}
	r.cfg.Scale = g.Scale
	if r.cfg.Scale == 0 {
		r.cfg.Scale = 1.0
	}
	// Validate resolved the preset already; a fresh machine per run keeps
	// timing state (controller queues) from leaking between cells.
	mcfg := sccsim.MustPreset(g.Machine)
	r.cfg.Machine = func() *sccsim.Machine { return sccsim.MustNew(mcfg) }
	// One compile cache for the whole sweep: each workload's baseline
	// source and each distinct translated source compile exactly once,
	// and all matrix cells (across all workers) share the immutable
	// compiled Programs. A caller-provided cache (the daemon's
	// process-lifetime one) extends the sharing across sweeps.
	r.cfg.Cache = opt.Cache
	if r.cfg.Cache == nil {
		r.cfg.Cache = NewCache()
	}
	r.cfg.Cancel = opt.Cancel
	r.cfg.Fault = opt.Fault
	r.traceDir = opt.TraceDir
	eng, err := interp.ParseEngine(opt.Engine)
	if err != nil {
		return nil, err
	}
	r.cfg.Engine = eng
	r.engine = eng.Resolve()

	// Mark duplicate cells (same semantic key as an earlier-indexed
	// cell) up front, so the Cached flag does not depend on which
	// worker won the race to compute the shared entry. The machine
	// config is fixed across the sweep: fingerprint it once here so
	// per-cell cache-key construction never builds a throwaway machine.
	r.fullMPB = r.cfg.Machine().Config().MPBTotal()
	r.cfg = r.cfg.PrecomputeMachineEnv()
	firstByKey := make(map[cellKey]int)
	dup := make([]bool, len(cells))
	for i, c := range cells {
		k := semanticKey(c, r.fullMPB, r.engine, r.cfg.machineEnv)
		if _, ok := firstByKey[k]; ok {
			dup[i] = true
		} else {
			firstByKey[k] = i
		}
	}

	results := make([]CellResult, len(cells))
	// The reorder buffer behind OnResult: workers finish cells in any
	// order, the callback sees them in index order.
	var emit func(i int)
	if opt.OnResult != nil {
		var emu sync.Mutex
		ready := make([]bool, len(cells))
		next := 0
		emit = func(i int) {
			emu.Lock()
			defer emu.Unlock()
			ready[i] = true
			for next < len(cells) && ready[next] {
				opt.OnResult(results[next])
				next++
			}
		}
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if opt.Cancel != nil {
					if err := opt.Cancel(); err != nil {
						results[i] = CellResult{Cell: cells[i], Error: fmt.Sprintf("canceled: %v", err)}
						results[i].Cached = dup[i]
						if emit != nil {
							emit(i)
						}
						continue
					}
				}
				results[i] = r.safeRunCell(cells[i])
				results[i].Cached = dup[i]
				if emit != nil {
					emit(i)
				}
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	rep.Results = results
	return rep, nil
}

// safeRunCell is runCell behind a panic boundary: a panicking cell
// (injected or genuine) costs exactly that cell — it is recorded as a
// cell error in the report and the worker goroutine survives to drain
// the rest of the sweep. Panics inside memoized computes are already
// captured by the cache layer (evict.go); this catches the rest of the
// per-cell path.
func (r *gridRunner) safeRunCell(cell Cell) (res CellResult) {
	defer func() {
		if v := recover(); v != nil {
			res = CellResult{Cell: cell, Error: fmt.Sprintf("panic: %v", v)}
		}
	}()
	return r.runCell(cell)
}

// runCell executes one grid cell (baseline + translated run), pulling
// both halves through the memoizing caches.
func (r *gridRunner) runCell(cell Cell) CellResult {
	res := CellResult{Cell: cell}
	w, ok := ByKey(cell.Workload)
	if !ok {
		res.Error = fmt.Sprintf("unknown workload %q", cell.Workload)
		return res
	}
	policy, err := ParsePolicy(cell.Policy)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	cfg := r.cfg
	cfg.Threads = cell.Cores
	cfg.MPBCapacity = cell.MPBBudget

	// The baseline is memoized through the sweep's shared bench.Cache
	// (keyed by workload, cores, scale, engine and run environment), so
	// every policy and budget cell shares one run.
	base, err := RunBaseline(w, cfg)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	key := semanticKey(cell, r.fullMPB, r.engine, r.cfg.machineEnv)
	if policy == partition.PolicyProfiled {
		// Resolve the measured placement (profile pass memoized in the
		// shared Cache) so its digest becomes part of the cell's cache
		// identity.
		pl, err := PlacementFor(w, cfg, key.budget)
		if err != nil {
			res.Error = err.Error()
			return res
		}
		key.placement = pl.Digest()
	}
	// With a trace directory, the cell that actually simulates (the
	// winner of the onceCache race) records its run and writes the
	// Chrome trace named by the semantic key; cache hits write nothing.
	var rec *trace.Recorder
	conv, err := r.cells.get(key, func() (*RunResult, error) {
		if r.traceDir != "" {
			rec = trace.NewRecorder(nil, 0)
			cfg.TraceRCCE = rec
		}
		return RunRCCE(w, cfg, policy)
	})
	if err != nil {
		res.Error = err.Error()
		return res
	}
	if rec != nil {
		name := fmt.Sprintf("%s_%dc_%s_%d.trace.json", key.workload, key.cores, key.policy, key.budget)
		if werr := rec.WriteFile(filepath.Join(r.traceDir, name)); werr != nil {
			res.Error = fmt.Sprintf("write trace: %v", werr)
			return res
		}
	}
	res.BaselinePs = base.Makespan
	res.RCCEPs = conv.Makespan
	res.Speedup = Speedup(base, conv)
	res.Match = SameResults(base.Output, conv.Output)
	res.MPBAccesses = conv.Stats.MPBAccesses
	res.SharedAccesses = conv.Stats.SharedAccesses
	res.OnChipBytes = conv.OnChipBytes
	res.PlacementDigest = conv.PlacementDigest
	return res
}

// FormatReport renders the grid results as a text table (the
// machine-readable form is Report.JSON).
func FormatReport(rep *Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Grid %q — %d cells", rep.Grid.Name, len(rep.Results))
	if rep.Shard != "" {
		fmt.Fprintf(&sb, " (shard %s)", rep.Shard)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-10s %6s %-8s %10s %12s %12s %9s %10s %6s\n",
		"Workload", "Cores", "Policy", "MPB-budget", "Pthread (s)", "RCCE (s)", "Speedup", "On-chip B", "Match")
	for _, r := range rep.Results {
		if r.Error != "" {
			fmt.Fprintf(&sb, "%-10s %6d %-8s %10d  ERROR: %s\n", r.Workload, r.Cores, r.Policy, r.MPBBudget, r.Error)
			continue
		}
		fmt.Fprintf(&sb, "%-10s %6d %-8s %10d %12.4f %12.4f %8.1fx %10d %6v\n",
			r.Workload, r.Cores, r.Policy, r.MPBBudget,
			float64(r.BaselinePs)/sccsim.PsPerSecond, float64(r.RCCEPs)/sccsim.PsPerSecond,
			r.Speedup, r.OnChipBytes, r.Match)
	}
	return sb.String()
}

// MergeReports combines shard reports of the same grid into one full
// report ordered by cell index — the reduce step after a sharded sweep.
func MergeReports(parts ...*Report) (*Report, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("no reports to merge")
	}
	out := &Report{Grid: parts[0].Grid}
	wantSpec, err := json.Marshal(out.Grid)
	if err != nil {
		return nil, err
	}
	seen := make(map[int]bool)
	for _, p := range parts {
		spec, err := json.Marshal(p.Grid)
		if err != nil {
			return nil, err
		}
		// Name alone is not identity: shards taken at different scales
		// or over different axes must not be mixed into one report.
		if string(spec) != string(wantSpec) {
			return nil, fmt.Errorf("cannot merge reports with different grid specs (%s vs %s)", wantSpec, spec)
		}
		for _, r := range p.Results {
			if seen[r.Index] {
				return nil, fmt.Errorf("duplicate cell %d across shards", r.Index)
			}
			seen[r.Index] = true
			out.Results = append(out.Results, r)
		}
	}
	// A merge is only "the full report" if every cell of the grid is
	// present — catching a forgotten shard before its absence silently
	// skews downstream comparisons.
	if want := len(out.Grid.Cells()); len(out.Results) != want {
		return nil, fmt.Errorf("merge incomplete: %d of %d cells (missing shard?)", len(out.Results), want)
	}
	sort.Slice(out.Results, func(i, j int) bool { return out.Results[i].Index < out.Results[j].Index })
	return out, nil
}
