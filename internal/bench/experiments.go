package bench

import (
	"fmt"
	"strings"

	"hsmcc/internal/core"
	"hsmcc/internal/partition"
	"hsmcc/internal/sccsim"
)

// Fig61Row is one bar of thesis Figure 6.1: the speedup of the converted
// 32-core RCCE program (off-chip shared memory only) over the 32-thread
// Pthread baseline on one core.
type Fig61Row struct {
	Workload  string
	BaselineS float64
	RCCES     float64
	Speedup   float64
	PaperNote string
	ResultsOK bool
}

// paperFig61 records the factors the thesis reports (Chapter 6); Dot and
// LU appear in the figure without stated numbers.
var paperFig61 = map[string]string{
	"pi":     "32x",
	"sum35":  "29x",
	"primes": "16x",
	"stream": "17x",
	"dot":    "low (DRAM contention)",
	"lu":     "low (DRAM contention)",
}

// Fig61 reproduces Figure 6.1: every benchmark, baseline vs off-chip RCCE.
func Fig61(cfg Config) ([]Fig61Row, error) {
	var rows []Fig61Row
	for _, w := range Thesis() {
		both, err := RunBothBackends(w, cfg, partition.PolicyOffChipOnly)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig61Row{
			Workload:  w.Name,
			BaselineS: both.Baseline.Seconds(),
			RCCES:     both.RCCE.Seconds(),
			Speedup:   Speedup(both.Baseline, both.RCCE),
			PaperNote: paperFig61[w.Key],
			ResultsOK: both.Match,
		})
	}
	return rows, nil
}

// Fig62Row is one pair of bars of Figure 6.2: RCCE runtime with shared
// data off-chip vs partitioned onto the MPB by Stage 4.
type Fig62Row struct {
	Workload  string
	OffChipS  float64
	OnChipS   float64
	Gain      float64
	OnChipB   int // bytes Stage 4 placed on-chip
	ResultsOK bool
}

// Fig62 reproduces Figure 6.2: off-chip vs MPB placement per benchmark.
func Fig62(cfg Config) ([]Fig62Row, error) {
	var rows []Fig62Row
	for _, w := range Thesis() {
		off, err := RunRCCE(w, cfg, partition.PolicyOffChipOnly)
		if err != nil {
			return nil, err
		}
		on, err := RunRCCE(w, cfg, partition.PolicySizeAscending)
		if err != nil {
			return nil, err
		}
		// Recompute the Stage 4 decision for reporting.
		src := w.Source(cfg.Threads, cfg.Scale)
		pipe, err := core.Analyze(w.Key+".c", src, core.Config{Cores: cfg.Threads})
		if err != nil {
			return nil, err
		}
		part := partition.Partition(pipe.SharedVars(), sccsim.DefaultConfig().MPBTotal(), partition.PolicySizeAscending)
		rows = append(rows, Fig62Row{
			Workload:  w.Name,
			OffChipS:  off.Seconds(),
			OnChipS:   on.Seconds(),
			Gain:      float64(off.Makespan) / float64(on.Makespan),
			OnChipB:   part.OnChipBytes,
			ResultsOK: SameResults(off.Output, on.Output),
		})
	}
	return rows, nil
}

// Fig63Row is one point of Figure 6.3: Pi Approximation speedup over the
// single-core baseline as the core count grows.
type Fig63Row struct {
	Cores   int
	Speedup float64
	RCCES   float64
}

// Fig63 reproduces Figure 6.3: Pi speedup vs core count. The baseline is
// the Pthread program with `cores` threads on one core, exactly as the
// thesis normalises its scaling study.
func Fig63(cfg Config, coreCounts []int) ([]Fig63Row, error) {
	if coreCounts == nil {
		coreCounts = []int{1, 2, 4, 8, 16, 32, 48}
	}
	w, _ := ByKey("pi")
	var rows []Fig63Row
	for _, n := range coreCounts {
		c := cfg
		c.Threads = n
		both, err := RunBothBackends(w, c, partition.PolicySizeAscending)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig63Row{Cores: n, Speedup: Speedup(both.Baseline, both.RCCE), RCCES: both.RCCE.Seconds()})
	}
	return rows, nil
}

// FormatFig61 renders Figure 6.1 as text.
func FormatFig61(rows []Fig61Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 6.1 — RCCE (off-chip shared) speedup over same-thread-count 1-core Pthread\n")
	fmt.Fprintf(&sb, "%-18s %12s %12s %9s %8s  %s\n", "Benchmark", "Pthread (s)", "RCCE (s)", "Speedup", "Match", "Paper")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %12.4f %12.4f %8.1fx %8v  %s\n",
			r.Workload, r.BaselineS, r.RCCES, r.Speedup, r.ResultsOK, r.PaperNote)
	}
	return sb.String()
}

// FormatFig62 renders Figure 6.2 as text.
func FormatFig62(rows []Fig62Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 6.2 — RCCE runtime: off-chip shared DRAM vs on-chip MPB (Stage 4)\n")
	fmt.Fprintf(&sb, "%-18s %12s %12s %9s %10s %7s\n", "Benchmark", "Off-chip (s)", "On-chip (s)", "Gain", "MPB bytes", "Match")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %12.4f %12.4f %8.1fx %10d %7v\n",
			r.Workload, r.OffChipS, r.OnChipS, r.Gain, r.OnChipB, r.ResultsOK)
		sum += r.Gain
	}
	fmt.Fprintf(&sb, "%-18s %35.1fx (paper: 8x on average)\n", "geometric context:", sum/float64(len(rows)))
	return sb.String()
}

// FormatFig63 renders Figure 6.3 as text.
func FormatFig63(rows []Fig63Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 6.3 — Pi Approximation speedup vs core count\n")
	fmt.Fprintf(&sb, "%6s %9s %12s\n", "Cores", "Speedup", "RCCE (s)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%6d %8.1fx %12.4f\n", r.Cores, r.Speedup, r.RCCES)
	}
	return sb.String()
}

// Table61 renders the SCC configuration table.
func Table61(cfg Config) string {
	return sccsim.DefaultConfig().Table61(cfg.Threads)
}
