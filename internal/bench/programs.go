package bench

// Compile-once batching. A compiled interp.Program is immutable, so one
// compile can serve every matrix cell (and every concurrent worker) that
// executes the same source. The Cache memoizes the two compile-side
// stages of a harness run — the Pthread source compile and the
// translate→emit→re-parse pipeline — so a grid sweep or a conformance
// matrix compiles each workload exactly once per distinct source and
// fans the cells out across host cores against the shared Program.

import (
	"fmt"

	"hsmcc/internal/core"
	"hsmcc/internal/interp"
	"hsmcc/internal/partition"
)

// programKey identifies one compiled source image.
type programKey struct {
	name string
	src  string
}

// translationKey identifies one run of the five-stage translation
// pipeline. Scale and threads pin the generated source; policy and the
// effective MPB capacity pin the Stage 4 placement. The translated
// source itself then feeds the program cache, so cells whose placements
// emit identical C (e.g. budgets above the working-set size) share one
// compile.
type translationKey struct {
	workload string
	threads  int
	scale    float64
	policy   partition.Policy
	capacity int
}

// translation is the cached output of the pipeline before any
// TransformRCCE hook runs (the hook is a per-run fault-injection seam,
// so it must apply after the cache).
type translation struct {
	source      string
	onChipBytes int
}

// Cache memoizes compile-side work across harness runs. Safe for
// concurrent use; a nil *Cache disables caching (every call compiles).
type Cache struct {
	programs     onceCache[programKey, *interp.Program]
	translations onceCache[translationKey, *translation]
}

// NewCache returns an empty compile cache.
func NewCache() *Cache { return &Cache{} }

// program returns the compiled form of (name, src), compiling at most
// once per distinct source even under concurrent lookups.
func (c *Cache) program(name, src string) (*interp.Program, error) {
	if c == nil {
		return interp.Compile(name, src)
	}
	return c.programs.get(programKey{name, src}, func() (*interp.Program, error) {
		return interp.Compile(name, src)
	})
}

// translate runs (or reuses) the translation pipeline for one cell.
func (c *Cache) translate(w Workload, threads int, scale float64, policy partition.Policy, capacity int) (*translation, error) {
	run := func() (*translation, error) {
		src := w.Source(threads, scale)
		pipe, err := core.Run(w.Key+".c", src, core.Config{
			Cores:       threads,
			Policy:      policy,
			MPBCapacity: capacity,
		})
		if err != nil {
			return nil, fmt.Errorf("%s translate: %w", w.Key, err)
		}
		return &translation{source: pipe.Output, onChipBytes: pipe.Part.OnChipBytes}, nil
	}
	if c == nil {
		return run()
	}
	key := translationKey{w.Key, threads, scale, policy, capacity}
	return c.translations.get(key, run)
}
