package bench

// Compile-once batching. A compiled interp.Program is immutable, so one
// compile can serve every matrix cell (and every concurrent worker) that
// executes the same source. The Cache memoizes the compile-side stages
// of a harness run — the Pthread source compile and the
// translate→emit→re-parse pipeline — plus two run-level results that
// are pure functions of their configuration: the single-core baseline
// execution (identical across every policy and budget of a sweep) and
// the access-profiling pass (identical across every budget). A grid
// sweep or a conformance matrix therefore compiles each workload
// exactly once per distinct source, runs its baseline once per
// (workload, cores) and profiles it once per (workload, cores), fanning
// the cells out across host cores against the shared results.

import (
	"fmt"
	"sync/atomic"

	"hsmcc/internal/core"
	"hsmcc/internal/interp"
	"hsmcc/internal/partition"
	"hsmcc/internal/profile"
)

// programKey identifies one compiled source image.
type programKey struct {
	name string
	src  string
}

// translationKey identifies one run of the five-stage translation
// pipeline. Scale and threads pin the generated source; policy and the
// effective MPB capacity pin the Stage 4 placement; placement is the
// profile-guided placement map digest ("" for the static policies), so
// two profiled translations at the same (cores, policy-name, capacity)
// tuple but with different measured placements — and a profiled cell
// versus a static-policy cell — can never share a cache entry. machine
// is the machine-config digest: now that sweeps span machine presets, a
// translation placed for one machine's MPB geometry must never serve a
// cell on another, even when the effective byte capacities coincide.
// The translated source itself then feeds the program cache, so cells
// whose placements emit identical C (e.g. budgets above the working-set
// size) share one compile.
type translationKey struct {
	workload  string
	threads   int
	scale     float64
	policy    partition.Policy
	capacity  int
	placement string
	machine   string
}

// translation is the cached output of the pipeline before any
// TransformRCCE hook runs (the hook is a per-run fault-injection seam,
// so it must apply after the cache).
type translation struct {
	source      string
	onChipBytes int
	// offChipAllocs/onChipAllocs name the program's shared allocations
	// in runtime call order per region (translate.Unit.Allocs): the
	// labels a profiling run attaches to the RCCE allocator's ranges.
	offChipAllocs, onChipAllocs []string
}

// baselineRunKey identifies one baseline execution. The baseline is a
// pure function of the workload source (workload, threads, scale), the
// engine and the run environment (machine configuration plus baseline
// runtime options, folded into env) — every policy and budget variant
// of a sweep reuses it, the ROADMAP's cross-cell memoization.
type baselineRunKey struct {
	workload string
	threads  int
	scale    float64
	engine   interp.Engine
	env      string
}

// profileKey identifies one access-profiling pass. The profile is
// measured under the uniform off-chip reference placement, so it is
// budget-independent: every MPB budget of a profiled sweep shares one
// profiling run.
type profileKey struct {
	workload string
	threads  int
	scale    float64
	engine   interp.Engine
	env      string
}

// placementKey identifies one optimized placement: the profile it was
// derived from plus the effective byte budget. Memoizing the optimizer
// output (not just the profile) means a profiled cell's digest lookup
// and its translation share one knapsack solve.
type placementKey struct {
	profileKey
	budget int
}

// Cache memoizes compile-side work and configuration-pure run results
// across harness runs. Safe for concurrent use; a nil *Cache disables
// caching (every call recomputes).
type Cache struct {
	programs     onceCache[programKey, *interp.Program]
	translations onceCache[translationKey, *translation]
	baselines    onceCache[baselineRunKey, *RunResult]
	profiles     onceCache[profileKey, *profile.Report]
	placements   onceCache[placementKey, *profile.Placement]

	// budget, when non-nil, is the shared LRU spine bounding the total
	// estimated resident cost of the five maps (see evict.go). Sweep
	// caches are unbounded; the serving daemon's process-lifetime cache
	// is sized.
	budget *costBudget

	// Compute counters (not cache lookups): how many times each stage
	// actually ran. Tests pin the cross-cell sharing contract on these.
	programCompiles int64
	translateRuns   int64
	baselineRuns    int64
	profileRuns     int64
}

// NewCache returns an empty, unbounded compile cache — the right shape
// for a sweep, whose cache dies with the run.
func NewCache() *Cache { return &Cache{} }

// NewCacheSized returns a compile cache whose total estimated resident
// cost is bounded by maxCostBytes: admissions beyond the bound evict
// least-recently-used entries (across all five memo maps), and a single
// entry costing more than the whole budget is served but never cached.
// Costs are estimates — the emitted/source text dominates programs and
// translations, outputs dominate baseline runs — chosen so the bound
// tracks real memory to well within an order of magnitude without
// deep-walking every AST. maxCostBytes <= 0 means unbounded.
func NewCacheSized(maxCostBytes int64) *Cache {
	c := &Cache{}
	if maxCostBytes <= 0 {
		return c
	}
	b := newCostBudget(maxCostBytes)
	c.budget = b
	c.programs.budget = b
	c.programs.costOf = func(k programKey, _ *interp.Program) int64 {
		// Compiled closures, frame layouts and the AST together run a
		// small multiple of the source text.
		return 512 + 6*int64(len(k.src))
	}
	c.translations.budget = b
	c.translations.costOf = func(_ translationKey, t *translation) int64 {
		n := 256 + int64(len(t.source))
		for _, s := range t.offChipAllocs {
			n += int64(len(s)) + 16
		}
		for _, s := range t.onChipAllocs {
			n += int64(len(s)) + 16
		}
		return n
	}
	c.baselines.budget = b
	c.baselines.costOf = func(_ baselineRunKey, r *RunResult) int64 {
		return 512 + int64(len(r.Output)) + int64(len(r.TranslatedSource))
	}
	c.profiles.budget = b
	c.profiles.costOf = func(_ profileKey, r *profile.Report) int64 {
		return 256 + 96*int64(len(r.Vars))
	}
	c.placements.budget = b
	c.placements.costOf = func(_ placementKey, p *profile.Placement) int64 {
		return 256 + 64*int64(len(p.Choices))
	}
	return c
}

// CacheStats reports how many times each memoized stage was computed
// (as opposed to served from the cache), plus the lookup and eviction
// counters of the shared LRU budget (zero-valued for unbounded caches
// except Hits/Misses/Entries, which are always tracked).
type CacheStats struct {
	ProgramCompiles int64
	TranslateRuns   int64
	BaselineRuns    int64
	ProfileRuns     int64

	// Hits/Misses count lookups across all five maps. A lookup that
	// coalesces onto another request's in-flight computation counts as
	// a hit (it shares the result without recomputing).
	Hits   int64
	Misses int64
	// Entries is the live entry count across the maps.
	Entries int
	// Evictions, CostBytes and MaxCostBytes describe the LRU budget.
	Evictions    int64
	CostBytes    int64
	MaxCostBytes int64
}

// HitRate is Hits / (Hits + Misses), 0 when no lookups happened.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats returns the compute counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	s := CacheStats{
		ProgramCompiles: atomic.LoadInt64(&c.programCompiles),
		TranslateRuns:   atomic.LoadInt64(&c.translateRuns),
		BaselineRuns:    atomic.LoadInt64(&c.baselineRuns),
		ProfileRuns:     atomic.LoadInt64(&c.profileRuns),
	}
	for _, add := range []func() (int64, int64){
		c.programs.counters, c.translations.counters,
		c.baselines.counters, c.profiles.counters, c.placements.counters,
	} {
		h, m := add()
		s.Hits += h
		s.Misses += m
	}
	s.Entries = c.programs.len() + c.translations.len() +
		c.baselines.len() + c.profiles.len() + c.placements.len()
	if c.budget != nil {
		s.CostBytes, s.MaxCostBytes, s.Evictions = c.budget.stats()
	}
	return s
}

// program returns the compiled form of (name, src), compiling at most
// once per distinct source even under concurrent lookups. fault and
// span, when non-nil, fire inside the compute closure (Config.Fault's
// and Config.Span's "compile" seam) so an injected panic or
// cancellation exercises the cache's drop-on-error discipline rather
// than bypassing it — and so a cache hit produces no compile span.
func (c *Cache) program(name, src string, fault func(string) error, span func(string) func()) (*interp.Program, error) {
	compile := func() (*interp.Program, error) {
		if fault != nil {
			if err := fault("compile"); err != nil {
				return nil, fmt.Errorf("%s compile: %w", name, err)
			}
		}
		if span != nil {
			defer span("compile")()
		}
		return interp.Compile(name, src)
	}
	if c == nil {
		return compile()
	}
	return c.programs.get(programKey{name, src}, func() (*interp.Program, error) {
		atomic.AddInt64(&c.programCompiles, 1)
		return compile()
	})
}

// translate runs (or reuses) the translation pipeline for one cell.
// pl carries the profile-guided placement for PolicyProfiled cells (nil
// for the static policies).
func (c *Cache) translate(w Workload, threads int, scale float64, policy partition.Policy, capacity int, pl *profile.Placement, machineEnv string, fault func(string) error, span func(string) func()) (*translation, error) {
	run := func() (*translation, error) {
		if c != nil {
			atomic.AddInt64(&c.translateRuns, 1)
		}
		if fault != nil {
			if err := fault("translate"); err != nil {
				return nil, fmt.Errorf("%s translate: %w", w.Key, err)
			}
		}
		if span != nil {
			defer span("translate")()
		}
		src := w.Source(threads, scale)
		cc := core.Config{
			Cores:       threads,
			Policy:      policy,
			MPBCapacity: capacity,
		}
		if pl != nil {
			cc.Placement = pl.OnChip()
		}
		pipe, err := core.Run(w.Key+".c", src, cc)
		if err != nil {
			return nil, fmt.Errorf("%s translate: %w", w.Key, err)
		}
		t := &translation{source: pipe.Output, onChipBytes: pipe.Part.OnChipBytes}
		for _, a := range pipe.Unit.Allocs {
			if a.OnChip {
				t.onChipAllocs = append(t.onChipAllocs, a.Var)
			} else {
				t.offChipAllocs = append(t.offChipAllocs, a.Var)
			}
		}
		return t, nil
	}
	if c == nil {
		return run()
	}
	key := translationKey{w.Key, threads, scale, policy, capacity, "", machineEnv}
	if pl != nil {
		key.placement = pl.Digest()
	}
	return c.translations.get(key, run)
}

// baselineRun runs (or reuses) the baseline execution for cfg.
func (c *Cache) baselineRun(w Workload, cfg Config) (*RunResult, error) {
	run := func() (*RunResult, error) {
		if c != nil {
			atomic.AddInt64(&c.baselineRuns, 1)
		}
		return runBaselineUncached(w, cfg)
	}
	if c == nil {
		return run()
	}
	key := baselineRunKey{w.Key, cfg.Threads, cfg.Scale, cfg.Engine.Resolve(), cfg.baselineEnv()}
	return c.baselines.get(key, run)
}

// profileReport runs (or reuses) the access-profiling pass for cfg.
func (c *Cache) profileReport(w Workload, cfg Config) (*profile.Report, error) {
	run := func() (*profile.Report, error) {
		if c != nil {
			atomic.AddInt64(&c.profileRuns, 1)
		}
		return profileUncached(w, cfg)
	}
	if c == nil {
		return run()
	}
	key := profileKey{w.Key, cfg.Threads, cfg.Scale, cfg.Engine.Resolve(), cfg.rcceEnv()}
	return c.profiles.get(key, run)
}

// placementFor runs (or reuses) the profile→optimize pair for cfg at
// the given effective budget.
func (c *Cache) placementFor(w Workload, cfg Config, budget int) (*profile.Placement, error) {
	run := func() (*profile.Placement, error) {
		rep, err := c.profileReport(w, cfg)
		if err != nil {
			return nil, err
		}
		return profile.Optimize(rep, budget), nil
	}
	if c == nil {
		return run()
	}
	pk := profileKey{w.Key, cfg.Threads, cfg.Scale, cfg.Engine.Resolve(), cfg.rcceEnv()}
	return c.placements.get(placementKey{pk, budget}, run)
}
