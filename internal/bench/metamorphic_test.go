package bench

import (
	"testing"
)

// TestPlacementMetamorphic pins the paper's semantic-preservation claim
// as a metamorphic property over the whole workload corpus: for a fixed
// (workload, cores), the translated program's output must be
// byte-identical across every Stage 4 placement policy and MPB budget
// of the grid. Placement may move data between the MPB and off-chip
// shared DRAM and reshuffle timing, but it must never change a single
// byte of what the program computes or prints. (Byte-identity holds
// because every corpus main prints its result lines after the final
// barrier — each core prints the same text, whatever order cores finish
// in.)
func TestPlacementMetamorphic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the corpus under every placement")
	}
	policies := []string{"offchip", "size", "freq"}
	budgets := []int{0, 4096} // full MPB and a pressure budget
	cfg := DefaultConfig()
	cfg.Threads = 4
	cfg.Scale = 0.05

	for _, w := range All() {
		w := w
		t.Run(w.Key, func(t *testing.T) {
			base, err := RunBaseline(w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var refOut string
			var refFrom string
			for _, pname := range policies {
				policy, err := ParsePolicy(pname)
				if err != nil {
					t.Fatal(err)
				}
				for _, budget := range budgets {
					c := cfg
					c.MPBCapacity = budget
					conv, err := RunRCCE(w, c, policy)
					if err != nil {
						t.Fatalf("policy=%s budget=%d: %v", pname, budget, err)
					}
					if !SameResults(base.Output, conv.Output) {
						t.Fatalf("policy=%s budget=%d: diverges from baseline\n--- baseline\n%s--- rcce\n%s",
							pname, budget, base.Output, conv.Output)
					}
					if refFrom == "" {
						refOut, refFrom = conv.Output, pname
						continue
					}
					if conv.Output != refOut {
						t.Fatalf("output differs across placements: %s vs policy=%s budget=%d\n--- %s\n%s--- %s/%d\n%s",
							refFrom, pname, budget, refFrom, refOut, pname, budget, conv.Output)
					}
				}
			}
		})
	}
}

// TestRunBothBackendsMatchesManualComparison pins the extracted helper
// against its inlined ancestor: RunBothBackends must report exactly
// what RunBaseline + RunRCCE + SameResults report.
func TestRunBothBackendsMatchesManualComparison(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threads = 4
	cfg.Scale = 0.05
	w, ok := ByKey("pi")
	if !ok {
		t.Fatal("pi workload missing")
	}
	policy, err := ParsePolicy("size")
	if err != nil {
		t.Fatal(err)
	}
	both, err := RunBothBackends(w, cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunBaseline(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := RunRCCE(w, cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	if both.Baseline.Output != base.Output || both.RCCE.Output != conv.Output {
		t.Fatal("RunBothBackends ran different executions than the manual path")
	}
	if both.Match != SameResults(base.Output, conv.Output) {
		t.Fatal("RunBothBackends.Match disagrees with SameResults")
	}
	if !both.Match {
		t.Fatalf("pi must validate\n--- baseline\n%s--- rcce\n%s", base.Output, conv.Output)
	}
}

// TestTransformRCCESeam verifies the fault-injection hook: an identity
// transform must not change the execution, and the transformed source is
// what actually runs (and is surfaced in TranslatedSource).
func TestTransformRCCESeam(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threads = 2
	cfg.Scale = 0.05
	w, _ := ByKey("pi")
	policy, _ := ParsePolicy("offchip")

	plain, err := RunRCCE(w, cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	seen := ""
	cfg.TransformRCCE = func(src string) (string, error) {
		seen = src
		return "// conformance fault-injection seam\n" + src, nil
	}
	hooked, err := RunRCCE(w, cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	if seen == "" {
		t.Fatal("TransformRCCE was not invoked")
	}
	if hooked.Output != plain.Output {
		t.Fatal("identity-plus-comment transform changed program output")
	}
	if want := "// conformance fault-injection seam\n" + seen; hooked.TranslatedSource != want {
		t.Fatal("TranslatedSource does not reflect the transformed program")
	}
}
