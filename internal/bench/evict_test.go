package bench

// Property tests for the size-bounded LRU (evict.go): the accounted
// cost never exceeds the budget, recently-used entries survive cold
// ones, admission control keeps oversized entries out, eviction never
// invalidates a Program already handed to a running simulation, and the
// whole machinery holds under concurrent hammering (run with -race).

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// sizedStringCache builds a onceCache[string,string] on a fresh budget,
// costing each entry at len(value) bytes.
func sizedStringCache(maxBytes int64) (*onceCache[string, string], *costBudget) {
	b := newCostBudget(maxBytes)
	c := &onceCache[string, string]{
		budget: b,
		costOf: func(_ string, v string) int64 { return int64(len(v)) },
	}
	return c, b
}

func TestEvictBoundNeverExceeded(t *testing.T) {
	const max = 1000
	c, b := sizedStringCache(max)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(100))
		size := 10 + rng.Intn(200)
		if _, err := c.get(k, func() (string, error) {
			return string(make([]byte, size)), nil
		}); err != nil {
			t.Fatal(err)
		}
		cur, bmax, _ := b.stats()
		if cur > bmax {
			t.Fatalf("after %d ops: accounted cost %d exceeds budget %d", i+1, cur, bmax)
		}
	}
	if _, _, ev := b.stats(); ev == 0 {
		t.Fatal("the scenario caused no evictions — the bound was never stressed")
	}
}

func TestEvictHottestSurvive(t *testing.T) {
	// Budget fits ~4 entries of 100 bytes. One hot key is touched
	// between every cold admission; the cold keys churn past the budget
	// many times over, but the hot key must never be evicted.
	c, _ := sizedStringCache(400)
	computes := make(map[string]int)
	getOnceCounted := func(k string, size int) {
		t.Helper()
		if _, err := c.get(k, func() (string, error) {
			computes[k]++
			return string(make([]byte, size)), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	getOnceCounted("hot", 100)
	for i := 0; i < 50; i++ {
		getOnceCounted(fmt.Sprintf("cold%d", i), 100)
		getOnceCounted("hot", 100)
	}
	if computes["hot"] != 1 {
		t.Fatalf("hot key computed %d times, want 1 — LRU evicted the most recently used entry", computes["hot"])
	}
	// And the cold tail did get evicted: re-requesting an early cold key
	// recomputes.
	getOnceCounted("cold0", 100)
	if computes["cold0"] != 2 {
		t.Fatalf("cold0 computed %d times, want 2 (admitted, evicted, recomputed)", computes["cold0"])
	}
}

func TestEvictOversizedServedNotCached(t *testing.T) {
	c, b := sizedStringCache(100)
	for i := 0; i < 3; i++ {
		v, err := c.get("huge", func() (string, error) {
			return string(make([]byte, 500)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(v) != 500 {
			t.Fatalf("oversized value served with %d bytes, want 500", len(v))
		}
	}
	if n := c.len(); n != 0 {
		t.Fatalf("oversized entry was cached (%d live entries), admission control failed", n)
	}
	if cur, _, _ := b.stats(); cur != 0 {
		t.Fatalf("oversized entry charged %d bytes against the budget", cur)
	}
}

func TestEvictErroredNeverCached(t *testing.T) {
	c, _ := sizedStringCache(1000)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, err := c.get("k", func() (string, error) { calls++; return "", boom })
		if !errors.Is(err, boom) {
			t.Fatalf("got err %v, want boom", err)
		}
	}
	if calls != 3 {
		t.Fatalf("errored computation ran %d times, want 3 (errors must not be cached)", calls)
	}
	if n := c.len(); n != 0 {
		t.Fatalf("%d live entries after errored computations, want 0", n)
	}
}

// TestEvictInFlightProgramSurvives pins the daemon-critical property:
// evicting a compiled Program from the cache must not affect a
// simulation already running it. Values are immutable and GC-managed —
// eviction drops the map reference only.
func TestEvictInFlightProgramSurvives(t *testing.T) {
	// A budget that fits roughly one compiled program: admitting a
	// second source evicts the first.
	w := Pi()
	cfg := DefaultConfig()
	cfg.Threads = 2
	cfg.Scale = 0.01
	src := w.Source(cfg.Threads, cfg.Scale)
	cfg.Cache = NewCacheSized(512 + 6*int64(len(src)) + 64)

	pr, err := CompileBaseline(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Run it once for the reference output.
	ref, err := RunBaselineProgram(w, pr, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Evict pi's program by admitting a different source of similar
	// size.
	w2 := Sum35()
	if _, err := CompileBaseline(w2, cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Cache.Stats().Evictions == 0 {
		t.Fatal("second compile did not evict — the budget is not tight enough for the property to be tested")
	}

	// The evicted Program must still run, bit-for-bit.
	res, err := RunBaselineProgram(w, pr, cfg)
	if err != nil {
		t.Fatalf("evicted in-flight program failed to run: %v", err)
	}
	if res.Output != ref.Output || res.Makespan != ref.Makespan {
		t.Fatalf("evicted program diverged: output %q makespan %d, want %q %d",
			res.Output, res.Makespan, ref.Output, ref.Makespan)
	}

	// A fresh request for pi recompiles under a new entry.
	before := cfg.Cache.Stats().ProgramCompiles
	pr2, err := CompileBaseline(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if after := cfg.Cache.Stats().ProgramCompiles; after != before+1 {
		t.Fatalf("recompile count went %d -> %d, want +1 after eviction", before, after)
	}
	if pr2 == pr {
		t.Fatal("re-request returned the evicted pointer — eviction did not drop the entry")
	}
}

// TestEvictConcurrentStress hammers one small-budget cache from many
// goroutines (meaningful under -race): the bound holds at every
// observation point, values are always correct for their key, and the
// structure stays consistent.
func TestEvictConcurrentStress(t *testing.T) {
	const max = 2000
	c, b := sizedStringCache(max)
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 300; i++ {
				k := fmt.Sprintf("k%d", rng.Intn(40))
				want := "v:" + k
				v, err := c.get(k, func() (string, error) {
					return want + string(make([]byte, 50+rng.Intn(150))), nil
				})
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
				if v[:len(want)] != want {
					select {
					case errc <- fmt.Errorf("key %s served value for %q", k, v[:len(want)]):
					default:
					}
					return
				}
				if cur, bmax, _ := b.stats(); cur > bmax {
					select {
					case errc <- fmt.Errorf("cost %d exceeds budget %d", cur, bmax):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	cur, bmax, ev := b.stats()
	if cur > bmax {
		t.Fatalf("final cost %d exceeds budget %d", cur, bmax)
	}
	if ev == 0 {
		t.Fatal("stress run caused no evictions — budget was never stressed")
	}
}
