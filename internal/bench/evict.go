package bench

// Size-bounded memoization: the admission/eviction half of bench.Cache.
//
// A Cache built with NewCacheSized accounts every admitted entry's
// estimated resident cost (bytes) against one shared budget spanning
// all five memo maps (programs, translations, baselines, profiles,
// placements), evicting in least-recently-used order when an admission
// would exceed the bound. Three properties the daemon and its tests
// rely on:
//
//   - The accounted cost never exceeds the budget: eviction happens
//     inside the admission's critical section, and an entry whose cost
//     alone exceeds the whole budget is computed and returned but never
//     cached (admission control), so one pathological request cannot
//     flush the working set.
//   - Eviction never invalidates an in-flight result. Values are
//     immutable (compiled Programs by design, results by convention)
//     and garbage-collected: eviction only drops the map reference, so
//     a Program handed out before eviction keeps running unaffected.
//   - Errored computations are never cached. A canceled or failed run
//     deletes its entry, so the next request for the same key retries
//     instead of being served a stale context-deadline error.
//   - Panicked computations are captured, not fatal: the compute
//     wrapper converts a panic into a *PanicError, the entry is dropped
//     like any errored compute, and coalesced waiters retry with their
//     own computation rather than inheriting the poison.

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// costBudget is the LRU spine shared by a sized Cache's typed maps:
// a recency list over admitted entries plus the running cost total.
// Lock order: a typed map's mutex is always taken before the budget's.
type costBudget struct {
	mu        sync.Mutex
	max       int64
	cur       int64
	ll        *list.List // of *budgetItem; front = most recently used
	evictions int64
}

func newCostBudget(max int64) *costBudget {
	return &costBudget{max: max, ll: list.New()}
}

// budgetItem is one admitted entry's handle on the LRU spine.
type budgetItem struct {
	cost    int64
	elem    *list.Element
	evicted bool
	// remove drops the entry from its owning typed map. Called without
	// any lock held (it takes the owner's).
	remove func()
}

// admit charges item against the budget, evicting from the cold end
// until the bound holds again, and returns the victims for the caller
// to remove from their maps once no locks are held. item.cost must not
// exceed b.max (admission control happens in the caller).
func (b *costBudget) admit(item *budgetItem) (victims []*budgetItem) {
	b.mu.Lock()
	defer b.mu.Unlock()
	item.elem = b.ll.PushFront(item)
	b.cur += item.cost
	for b.cur > b.max {
		back := b.ll.Back()
		if back == nil {
			break
		}
		v := back.Value.(*budgetItem)
		if v == item {
			break
		}
		b.ll.Remove(back)
		v.evicted = true
		b.cur -= v.cost
		b.evictions++
		victims = append(victims, v)
	}
	return victims
}

// touch marks item most-recently-used (no-op once evicted).
func (b *costBudget) touch(item *budgetItem) {
	b.mu.Lock()
	if !item.evicted {
		b.ll.MoveToFront(item.elem)
	}
	b.mu.Unlock()
}

func (b *costBudget) stats() (cur, max, evictions int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cur, b.max, b.evictions
}

// onceCache memoizes a computation per key, running it exactly once
// even under concurrent lookups (per-key sync.Once under a map lock).
// With a budget attached it becomes one shard of a size-bounded LRU:
// successful computations are admitted at costOf(key, value) bytes,
// hits refresh recency, and the spine evicts cold entries to keep the
// shared bound. Errored computations are always dropped for retry.
type onceCache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*onceEntry[V]
	// budget and costOf enable eviction; both nil = unbounded (the
	// grid/conformance sweep caches, whose lifetime is one sweep).
	budget *costBudget
	costOf func(K, V) int64
	hits   int64
	misses int64
}

type onceEntry[V any] struct {
	once sync.Once
	val  V
	err  error
	// Admission state, guarded by the owning cache's mu.
	admitted bool
	item     *budgetItem
}

func (c *onceCache[K, V]) get(k K, f func() (V, error)) (V, error) {
	for {
		v, err, ran := c.getOnce(k, f)
		if err != nil && !ran && (isCancelErr(err) || IsPanic(err)) {
			// We coalesced onto another requester's in-flight computation
			// and inherited ITS failure: a cancellation bound to the
			// config that started the compute (the cancel hook is not
			// ours), or a panic injected into that requester's run. The
			// errored entry has been dropped; retry with our own
			// computation, whose own hooks govern.
			continue
		}
		return v, err
	}
}

// isCancelErr reports whether err is (or wraps) a context cancellation.
func isCancelErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (c *onceCache[K, V]) getOnce(k K, f func() (V, error)) (V, error, bool) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*onceEntry[V])
	}
	e, ok := c.m[k]
	if !ok {
		e = &onceEntry[V]{}
		c.m[k] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	ran := false
	e.once.Do(func() {
		ran = true
		// A panic inside the compute must not poison the entry: without
		// recovery sync.Once would mark it done with a zero value and a
		// nil error, serving garbage to every later lookup. Capture it
		// as the entry's error so settle drops it for retry.
		defer capturePanic(&e.err)
		e.val, e.err = f()
	})
	c.settle(k, e)
	return e.val, e.err, ran
}

// settle performs post-compute bookkeeping for an entry a get observed:
// drop errored entries (retry semantics), admit a fresh success against
// the budget, refresh recency on a hit.
func (c *onceCache[K, V]) settle(k K, e *onceEntry[V]) {
	var victims []*budgetItem
	c.mu.Lock()
	if e.err != nil {
		if c.m[k] == e {
			delete(c.m, k)
		}
	} else if c.budget == nil {
		// Unbounded cache: nothing to account.
	} else if !e.admitted {
		e.admitted = true
		cost := int64(1)
		if c.costOf != nil {
			cost = c.costOf(k, e.val)
		}
		if cost < 1 {
			cost = 1
		}
		if cost > c.budget.max {
			// Admission control: an entry costing more than the whole
			// budget is served but never cached.
			if c.m[k] == e {
				delete(c.m, k)
			}
		} else {
			e.item = &budgetItem{cost: cost, remove: func() { c.removeIf(k, e) }}
			victims = c.budget.admit(e.item)
		}
	} else if e.item != nil {
		c.budget.touch(e.item)
	}
	c.mu.Unlock()
	for _, v := range victims {
		v.remove()
	}
}

// removeIf drops k only if it still maps to e: by the time an eviction
// decision lands here, the key may have been recomputed under a new
// entry, which must survive.
func (c *onceCache[K, V]) removeIf(k K, e *onceEntry[V]) {
	c.mu.Lock()
	if c.m[k] == e {
		delete(c.m, k)
	}
	c.mu.Unlock()
}

func (c *onceCache[K, V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func (c *onceCache[K, V]) counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
