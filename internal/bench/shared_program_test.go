package bench

import (
	"fmt"
	"sync"
	"testing"

	"hsmcc/internal/partition"
	"hsmcc/internal/rcce"
)

// TestSharedProgramConcurrentCells pins the immutable-Program contract:
// one compiled Program (per backend) serves many concurrent simulations.
// It compiles the workload exactly once per backend through the shared
// cache, then runs 12 matrix cells — baseline cells under varying
// scheduler options and RCCE cells under varying runtime options,
// including an oversubscribed mapping — concurrently against the two
// shared Programs. Run under -race (CI does), this is the proof that
// nothing reached from a Program is written during execution; the
// deterministic cells must also reproduce byte-identical output.
func TestSharedProgramConcurrentCells(t *testing.T) {
	w, ok := ByKey("pi")
	if !ok {
		t.Fatal("no pi workload")
	}
	cfg := DefaultConfig()
	cfg.Threads = 6
	cfg.Scale = 0.05
	cfg.Cache = NewCache()

	basePr, err := CompileBaseline(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !basePr.FullyCompiled() {
		t.Fatal("baseline program should compile fully")
	}
	tr, err := TranslateWorkload(w, cfg, partition.PolicySizeAscending)
	if err != nil {
		t.Fatal(err)
	}

	type cell struct {
		name string
		run  func() (string, error)
	}
	var cells []cell
	// Baseline cells: the same Program under different quanta.
	for _, q := range []int{5_000, 10_000, 20_000} {
		q := q
		for rep := 0; rep < 2; rep++ {
			cells = append(cells, cell{
				name: fmt.Sprintf("baseline/q%d", q),
				run: func() (string, error) {
					c := cfg
					c.Baseline.QuantumCycles = q
					res, err := RunBaselineProgram(w, basePr, c)
					if err != nil {
						return "", err
					}
					return res.Output, nil
				},
			})
		}
	}
	// RCCE cells: the same translated Program under different runtime
	// configurations, including §7.2 many-to-one oversubscription.
	rcceOpts := []func(int) rcce.Options{
		func(n int) rcce.Options { return rcce.DefaultOptions(n) },
		func(n int) rcce.Options {
			o := rcce.DefaultOptions(n)
			o.StripeMPB = false
			return o
		},
		func(n int) rcce.Options {
			o := rcce.DefaultOptions(n)
			o.Cores = []int{0, 1, 2, 0, 1, 2}
			o.AllowOversubscribe = true
			return o
		},
	}
	for i, mk := range rcceOpts {
		mk := mk
		for rep := 0; rep < 2; rep++ {
			cells = append(cells, cell{
				name: fmt.Sprintf("rcce/opt%d", i),
				run: func() (string, error) {
					c := cfg
					c.RCCE = mk
					res, err := RunRCCEProgram(w, tr, c, partition.PolicySizeAscending)
					if err != nil {
						return "", err
					}
					return res.Output, nil
				},
			})
		}
	}
	if len(cells) < 8 {
		t.Fatalf("want >= 8 concurrent cells, have %d", len(cells))
	}

	outs := make([]string, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i := range cells {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i], errs[i] = cells[i].run()
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cell %s: %v", cells[i].name, err)
		}
	}
	// Determinism: identical cells must reproduce identical output.
	byName := map[string]string{}
	for i, c := range cells {
		if prev, ok := byName[c.name]; ok {
			if prev != outs[i] {
				t.Errorf("cell %s: concurrent repeats diverged:\n%s\n---\n%s", c.name, prev, outs[i])
			}
		} else {
			byName[c.name] = outs[i]
		}
	}
	// And every cell computed the right answer.
	want := DistinctLines(outs[0])
	for i := range cells {
		if !SameResults(outs[0], outs[i]) {
			t.Errorf("cell %s result lines diverge from baseline: %v vs %v",
				cells[i].name, want, DistinctLines(outs[i]))
		}
	}
}
