package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// testGrid is a fixed sub-grid small enough to run many times per test
// yet wide enough to cover every axis (two workloads, two core counts,
// two policies, a duplicate budget pair).
func testGrid() Grid {
	return Grid{
		Name:      "test",
		Workloads: []string{"pi", "stream"},
		Cores:     []int{2, 4},
		Policies:  []string{"offchip", "size"},
		Scale:     0.05,
	}
}

// TestGridDeterminism is the harness's core claim: a parallel run
// produces byte-identical JSON to a sequential run of the same grid.
func TestGridDeterminism(t *testing.T) {
	g := testGrid()
	seq, err := RunGrid(g, RunOptions{Parallel: 1})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := RunGrid(g, RunOptions{Parallel: 8})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	sj, err := seq.JSON()
	if err != nil {
		t.Fatal(err)
	}
	pj, err := par.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Errorf("parallel JSON differs from sequential JSON\n--- sequential ---\n%s\n--- parallel ---\n%s", sj, pj)
	}
}

// TestGridResults checks the physics of the sub-grid: every cell
// matches, speedups beat 1x, and cell ordering follows the enumeration.
func TestGridResults(t *testing.T) {
	rep, err := RunGrid(testGrid(), RunOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 8 {
		t.Fatalf("results = %d, want 8", len(rep.Results))
	}
	for i, r := range rep.Results {
		if r.Error != "" {
			t.Errorf("cell %d: %s", r.Index, r.Error)
			continue
		}
		if r.Index != i {
			t.Errorf("result %d carries index %d", i, r.Index)
		}
		if !r.Match {
			t.Errorf("cell %d (%s/%d/%s): baseline and RCCE outputs differ", r.Index, r.Workload, r.Cores, r.Policy)
		}
		if r.Speedup <= 0 {
			t.Errorf("cell %d (%s/%d/%s): no speedup recorded", r.Index, r.Workload, r.Cores, r.Policy)
		}
		// Compute-bound Pi must beat the time-shared baseline even at
		// test scale; memory-bound Stream need not at 2 cores.
		if r.Workload == "pi" && r.Speedup <= 1 {
			t.Errorf("cell %d (pi/%d/%s): speedup %.2f <= 1", r.Index, r.Cores, r.Policy, r.Speedup)
		}
		if r.Policy == "offchip" && r.OnChipBytes != 0 {
			t.Errorf("cell %d: offchip policy placed %d bytes on-chip", r.Index, r.OnChipBytes)
		}
	}
	// Stream under the size policy must place its arrays on-chip.
	var streamOn *CellResult
	for i := range rep.Results {
		r := &rep.Results[i]
		if r.Workload == "stream" && r.Policy == "size" && streamOn == nil {
			streamOn = r
		}
	}
	if streamOn == nil || streamOn.OnChipBytes == 0 {
		t.Error("stream/size cell placed nothing on-chip")
	}
}

// TestGridSharding: shards partition the grid exactly — disjoint,
// exhaustive, and each cell's result equals the unsharded run's.
func TestGridSharding(t *testing.T) {
	g := testGrid()
	full, err := RunGrid(g, RunOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	var parts []*Report
	seen := make(map[int]int)
	for i := 0; i < n; i++ {
		p, err := RunGrid(g, RunOptions{Parallel: 2, ShardIndex: i, ShardCount: n})
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, n, err)
		}
		if p.Shard == "" {
			t.Errorf("shard %d/%d: report not labelled", i, n)
		}
		for _, r := range p.Results {
			seen[r.Index]++
		}
		parts = append(parts, p)
	}
	for _, c := range g.Cells() {
		if seen[c.Index] != 1 {
			t.Errorf("cell %d covered %d times across shards, want exactly once", c.Index, seen[c.Index])
		}
	}
	merged, err := MergeReports(parts...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	mj, _ := (&Report{Grid: merged.Grid, Results: merged.Results}).JSON()
	fj, _ := full.JSON()
	if !bytes.Equal(mj, fj) {
		t.Errorf("merged shard reports differ from the unsharded run\n--- merged ---\n%s\n--- full ---\n%s", mj, fj)
	}
}

// TestGridCaching: cells that normalise to the same semantic work (the
// implicit budget 0 vs the explicit full MPB) share one simulation, and
// the later-indexed cell is flagged Cached with identical numbers.
func TestGridCaching(t *testing.T) {
	g := testGrid()
	g.Workloads = []string{"pi"}
	g.Cores = []int{2}
	g.Policies = []string{"size"}
	g.MPBBudgets = []int{0, DefaultConfig().Machine().Config().MPBTotal()}
	rep, err := RunGrid(g, RunOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(rep.Results))
	}
	a, b := rep.Results[0], rep.Results[1]
	if a.Cached {
		t.Error("first cell should be computed, not cached")
	}
	if !b.Cached {
		t.Error("duplicate cell should be flagged cached")
	}
	if a.RCCEPs != b.RCCEPs || a.BaselinePs != b.BaselinePs {
		t.Errorf("cached cell diverged: %d/%d vs %d/%d", a.BaselinePs, a.RCCEPs, b.BaselinePs, b.RCCEPs)
	}
}

// TestGridValidate: bad specs fail fast, before any simulation.
func TestGridValidate(t *testing.T) {
	g := testGrid()
	g.Workloads = []string{"nope"}
	if _, err := RunGrid(g, RunOptions{}); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown workload not rejected: %v", err)
	}
	g = testGrid()
	g.Policies = []string{"bogus"}
	if _, err := RunGrid(g, RunOptions{}); err == nil {
		t.Error("unknown policy not rejected")
	}
	g = testGrid()
	if _, err := RunGrid(g, RunOptions{ShardIndex: 5, ShardCount: 3}); err == nil {
		t.Error("out-of-range shard not rejected")
	}
	g = testGrid()
	g.MPBBudgets = []int{-100}
	if _, err := RunGrid(g, RunOptions{}); err == nil {
		t.Error("negative MPB budget not rejected")
	}
}

// TestMergeReportsGuards: merging mismatched specs or an incomplete
// shard set fails loudly instead of yielding a misleading report.
func TestMergeReportsGuards(t *testing.T) {
	g := testGrid()
	g.Workloads = []string{"pi"}
	g.Cores = []int{2}
	shard0, err := RunGrid(g, RunOptions{ShardIndex: 0, ShardCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeReports(shard0); err == nil {
		t.Error("incomplete shard set (0/2 only) merged without error")
	}
	other := *shard0
	other.Grid.Scale = 0.5
	if _, err := MergeReports(shard0, &other); err == nil {
		t.Error("reports with different grid specs merged without error")
	}
}

// TestGridJSONRoundTrip: the emitted document is valid JSON that decodes
// back to the same report.
func TestGridJSONRoundTrip(t *testing.T) {
	g := testGrid()
	g.Workloads = []string{"pi"}
	g.Cores = []int{2}
	rep, err := RunGrid(g, RunOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Filename() != "BENCH_test.json" {
		t.Errorf("filename = %q", rep.Filename())
	}
	buf, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("emitted JSON does not decode: %v", err)
	}
	if len(back.Results) != len(rep.Results) || back.Grid.Name != rep.Grid.Name {
		t.Error("round trip lost data")
	}
	if back.Results[0].RCCEPs == 0 {
		t.Error("round trip lost the makespan")
	}
}

// TestDefaultGridCoversCorpus: the paper grid sweeps every workload in
// the corpus under both Stage 4 placements.
func TestDefaultGridCoversCorpus(t *testing.T) {
	g := DefaultGrid()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Workloads) < 10 {
		t.Errorf("default grid has %d workloads, want the full corpus (>= 10)", len(g.Workloads))
	}
	want := len(g.Workloads) * len(g.Cores) * len(g.Policies)
	if got := len(g.Cells()); got != want {
		t.Errorf("cells = %d, want %d", got, want)
	}
}

// TestGridProfiledPolicy sweeps the profiled policy through the grid
// runner: outputs still match the baseline, every profiled cell carries
// a placement digest, the profiled cells never trail the best static
// policy at the same budget, and a parallel run stays byte-identical to
// a sequential one (the profile pass is memoized, not racy).
func TestGridProfiledPolicy(t *testing.T) {
	g := Grid{
		Name:       "profiled-test",
		Workloads:  []string{"dot", "stream", "hist"},
		Cores:      []int{4},
		Policies:   []string{"offchip", "size", "freq", "profiled"},
		MPBBudgets: []int{2048, 16384},
		Scale:      0.05,
	}
	seq, err := RunGrid(g, RunOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunGrid(g, RunOptions{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	sj, _ := seq.JSON()
	pj, _ := par.JSON()
	if !bytes.Equal(sj, pj) {
		t.Errorf("profiled grid not deterministic across worker counts")
	}
	best := map[[2]interface{}]uint64{} // (workload, budget) -> best static ps
	for _, r := range seq.Results {
		if r.Error != "" {
			t.Fatalf("cell %d: %s", r.Index, r.Error)
		}
		if !r.Match {
			t.Errorf("cell %d (%s/%s): outputs diverged", r.Index, r.Workload, r.Policy)
		}
		k := [2]interface{}{r.Workload, r.MPBBudget}
		if r.Policy != "profiled" {
			if r.PlacementDigest != "" {
				t.Errorf("static cell %d carries placement digest %s", r.Index, r.PlacementDigest)
			}
			if best[k] == 0 || r.RCCEPs < best[k] {
				best[k] = r.RCCEPs
			}
		}
	}
	for _, r := range seq.Results {
		if r.Policy != "profiled" {
			continue
		}
		if r.PlacementDigest == "" {
			t.Errorf("profiled cell %d has no placement digest", r.Index)
		}
		k := [2]interface{}{r.Workload, r.MPBBudget}
		if r.RCCEPs > best[k] {
			t.Errorf("%s budget %d: profiled %d ps trails best static %d ps",
				r.Workload, r.MPBBudget, r.RCCEPs, best[k])
		}
	}
}
