package bench

import (
	"strings"
	"testing"

	"hsmcc/internal/synth"
)

func testSynthParams() synth.Params {
	return synth.Params{
		Seed:         7,
		Ops:          48,
		MemFrac:      0.8,
		LoadFrac:     0.5,
		SharedFrac:   0.6,
		Sharing:      2,
		SharedAddrs:  16,
		PrivateAddrs: 8,
		Rounds:       2,
	}
}

// TestSynthWorkloadByKey pins the first-class-axis contract: a
// canonical synth key resolves through ByKey to the exact workload, the
// corpus is unaffected, malformed synth keys are rejected, and no
// corpus key can collide with the synth namespace.
func TestSynthWorkloadByKey(t *testing.T) {
	p := testSynthParams()
	w, ok := ByKey(p.Key())
	if !ok {
		t.Fatalf("ByKey(%q) did not resolve", p.Key())
	}
	if w.Key != p.Key() || w.Class != "synthetic" {
		t.Fatalf("resolved workload %q class %q, want key %q class synthetic", w.Key, w.Class, p.Key())
	}
	if src := w.Source(4, 1.0); src != p.Source(4) {
		t.Fatal("ByKey-resolved workload emits different source than the vector")
	}
	if _, ok := ByKey("synth:notakey"); ok {
		t.Fatal("ByKey accepted a malformed synth key")
	}
	if _, ok := ByKey("dot"); !ok {
		t.Fatal("corpus lookup broken")
	}
	for _, w := range All() {
		if synth.IsKey(w.Key) {
			t.Fatalf("corpus workload %q collides with the synth: namespace", w.Key)
		}
	}
}

// TestSynthCacheKeysDistinct is the cache-identity satellite: because
// the workload key is the full parameter-vector digest, two vectors
// differing in any single field must occupy distinct baseline and
// translation cache entries (and identical vectors must share one).
func TestSynthCacheKeysDistinct(t *testing.T) {
	base := testSynthParams()
	variants := []func(*synth.Params){
		func(p *synth.Params) { p.Seed++ },
		func(p *synth.Params) { p.Ops *= 2 },
		func(p *synth.Params) { p.MemFrac = 0.4 },
		func(p *synth.Params) { p.LoadFrac = 1 },
		func(p *synth.Params) { p.SharedFrac = 0 },
		func(p *synth.Params) { p.Sharing = 4 },
		func(p *synth.Params) { p.SharedAddrs = 32 },
		func(p *synth.Params) { p.PrivateAddrs = 16 },
		func(p *synth.Params) { p.Rounds = 1 },
		func(p *synth.Params) { p.Double = true },
	}
	seen := map[string]bool{base.Key(): true}
	for i, mut := range variants {
		q := base
		mut(&q)
		if seen[q.Key()] {
			t.Fatalf("variant %d: key %q collides with another vector", i, q.Key())
		}
		seen[q.Key()] = true
	}

	cfg := DefaultConfig()
	cfg.Threads = 2
	cfg.Cache = NewCache()
	other := base
	other.SharedAddrs = 32
	for _, p := range []synth.Params{base, other, base} { // third run must hit the cache
		if _, err := RunBaseline(SynthWorkload(p), cfg); err != nil {
			t.Fatalf("baseline %s: %v", p.Key(), err)
		}
	}
	if got := cfg.Cache.Stats().BaselineRuns; got != 2 {
		t.Fatalf("BaselineRuns = %d, want 2 (distinct vectors separate, identical vectors shared)", got)
	}
}

// TestSynthGridSweep runs a small synthetic grid end-to-end: every cell
// must execute, match the baseline, and the profiled-vs-static win map
// must cover the swept plane point.
func TestSynthGridSweep(t *testing.T) {
	p := testSynthParams()
	q := p
	q.Sharing = 1
	g := Grid{
		Name:      "synthtest",
		Workloads: []string{p.Key(), q.Key()},
		Cores:     []int{2},
		Policies:  []string{"offchip", "size", "profiled"},
		MPBBudgets: []int{
			0,
		},
		Scale: 1.0,
	}
	rep, err := RunGrid(g, RunOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 6 {
		t.Fatalf("got %d results, want 6", len(rep.Results))
	}
	for _, res := range rep.Results {
		if res.Error != "" {
			t.Fatalf("cell %v: %s", res.Cell, res.Error)
		}
		if !res.Match {
			t.Fatalf("cell %v: translated output diverged from baseline", res.Cell)
		}
	}
	wins := SynthWinMap(rep)
	if len(wins) != 2 {
		t.Fatalf("win map has %d points, want 2", len(wins))
	}
	for _, w := range wins {
		if w.ProfiledPs == 0 || w.BestStaticPs == 0 || w.Delta <= 0 {
			t.Fatalf("degenerate win point %+v", w)
		}
		if w.BestStatic == "profiled" {
			t.Fatalf("best static policy is profiled: %+v", w)
		}
	}
	if !strings.Contains(FormatSynthWinMap(wins), "delta") {
		t.Fatal("FormatSynthWinMap lost its header")
	}
}

// TestSynthProfiledPlacement pins internal/profile support: a sharing-
// heavy synthetic kernel profiles cleanly, the optimizer yields a
// deterministic placement digest, and the profile sees the kernel's
// shared arrays.
func TestSynthProfiledPlacement(t *testing.T) {
	p := testSynthParams()
	w := SynthWorkload(p)
	cfg := DefaultConfig()
	cfg.Threads = 4
	cfg.Cache = NewCache()
	rep, err := ProfileWorkload(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Vars) == 0 {
		t.Fatal("profile saw no shared variables")
	}
	names := map[string]bool{}
	for _, v := range rep.Vars {
		names[v.Name] = true
	}
	for _, want := range []string{"sht", "swa", "swb", "prv", "out"} {
		if !names[want] {
			t.Errorf("profile is missing shared array %s (saw %v)", want, names)
		}
	}
	pl1, err := PlacementFor(w, cfg, 512)
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := PlacementFor(w, cfg, 512)
	if err != nil {
		t.Fatal(err)
	}
	if pl1.Digest() == "" || pl1.Digest() != pl2.Digest() {
		t.Fatalf("placement digest unstable: %q vs %q", pl1.Digest(), pl2.Digest())
	}
}

// TestSynthPlane pins the committed sweep plane: full cross product,
// valid vectors, distinct keys.
func TestSynthPlane(t *testing.T) {
	opt := DefaultSynthPlane()
	plane := SynthPlane(opt)
	if want := len(opt.Sharings) * len(opt.Footprints); len(plane) != want {
		t.Fatalf("plane has %d cells, want %d", len(plane), want)
	}
	seen := map[string]bool{}
	for _, p := range plane {
		if err := p.Validate(); err != nil {
			t.Fatalf("plane vector invalid: %v", err)
		}
		if seen[p.Key()] {
			t.Fatalf("duplicate plane key %q", p.Key())
		}
		seen[p.Key()] = true
	}
}
