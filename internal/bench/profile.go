package bench

// The profile-then-run harness side of the profile-guided placement
// policy (internal/profile): ProfileWorkload measures a workload's
// shared-variable access pattern once per configuration, PlacementFor
// turns the measurements into a concrete placement for a budget, and
// TranslateWorkload (harness.go) consumes the placement as the Stage 4
// `profiled` policy. The profiling pass is memoized through the shared
// bench.Cache, so a grid sweep profiles each (workload, cores) point
// exactly once no matter how many budgets and cells fan out from it.

import (
	"fmt"

	"hsmcc/internal/partition"
	"hsmcc/internal/profile"
	"hsmcc/internal/rcce"
)

// ProfileWorkload runs the access-profiling pass for w at cfg's thread
// count and scale: translate with every shared variable off-chip (the
// uniform reference placement), execute the translated RCCE program
// once with a profile.Collector attached, and distill the counters into
// a deterministic profile.Report. The report is byte-identical across
// execution engines and is memoized via cfg.Cache per (workload,
// threads, scale, engine, machine+runtime options).
//
// The profiling run deliberately bypasses cfg.TransformRCCE: the
// fault-injection seam targets the translation under test, while the
// profile must measure the real program.
func ProfileWorkload(w Workload, cfg Config) (*profile.Report, error) {
	if cfg.Cache != nil {
		return cfg.Cache.profileReport(w, cfg)
	}
	return profileUncached(w, cfg)
}

// profileUncached is the compute half of ProfileWorkload.
func profileUncached(w Workload, cfg Config) (*profile.Report, error) {
	if err := cfg.fault("profile"); err != nil {
		return nil, fmt.Errorf("%s profile: %w", w.Key, err)
	}
	defer cfg.span("profile")()
	tr, err := cfg.Cache.translate(w, cfg.Threads, cfg.Scale, partition.PolicyOffChipOnly, 0, nil, cfg.machineFingerprint(), cfg.Fault, cfg.Span)
	if err != nil {
		return nil, fmt.Errorf("%s profile translate: %w", w.Key, err)
	}
	pr, err := cfg.Cache.program(w.Key+"_rcce.c", tr.source, cfg.Fault, cfg.Span)
	if err != nil {
		return nil, fmt.Errorf("%s profile reparse: %w", w.Key, err)
	}
	col := profile.NewCollector(profile.Spec{OffChip: tr.offChipAllocs, OnChip: tr.onChipAllocs})
	m := cfg.Machine()
	ropts := cfg.rcceOptions()
	ropts.Profiler = col
	ropts.AllocObserver = col
	// The profiling pass is memoized: its simulation must not leak
	// events into a per-request trace recorder, or warm and cold runs
	// would trace differently.
	ropts.Trace = nil
	res, err := rcce.Run(pr, m, ropts)
	if err != nil {
		return nil, fmt.Errorf("%s profile run: %w", w.Key, err)
	}
	mcfg := m.Config()
	return &profile.Report{
		Workload: w.Key,
		Cores:    cfg.Threads,
		Scale:    cfg.Scale,
		Engine:   cfg.Engine.Resolve().String(),
		Vars:     col.Snapshot(),
		MPB: profile.MPBStats{
			CapacityBytes:  mcfg.MPBTotal(),
			PerCoreBytes:   mcfg.MPBStride(),
			UsedBytes:      res.OnChipBytes,
			Accesses:       res.Stats.MPBAccesses,
			Remote:         res.Stats.MPBRemote,
			SharedAccesses: res.Stats.SharedAccesses,
		},
	}, nil
}

// PlacementFor profiles w and optimizes the placement of its shared set
// for the given effective on-chip budget in bytes (callers resolve
// "0 = full MPB" first; TranslateWorkload does). Both halves are
// memoized via cfg.Cache, so a grid cell's digest lookup and its
// translation share one profiling run and one optimizer solve.
func PlacementFor(w Workload, cfg Config, budget int) (*profile.Placement, error) {
	return cfg.Cache.placementFor(w, cfg, budget)
}
