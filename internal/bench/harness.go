package bench

import (
	"fmt"
	"sort"
	"strings"

	"hsmcc/internal/interp"
	"hsmcc/internal/partition"
	"hsmcc/internal/profile"
	"hsmcc/internal/pthreadrt"
	"hsmcc/internal/rcce"
	"hsmcc/internal/sccsim"
)

// RunResult is one measured execution.
type RunResult struct {
	Workload string
	Mode     string // "pthread-1core", "rcce-offchip", "rcce-onchip", "rcce-profiled"
	Threads  int
	Makespan sccsim.Time
	Output   string
	Stats    sccsim.CoreStats
	// TranslatedSource is the RCCE C program (RCCE modes only).
	TranslatedSource string
	// OnChipBytes is what Stage 4 placed in the MPB (RCCE modes only).
	OnChipBytes int
	// PlacementDigest fingerprints the profile-guided placement map
	// (profiled policy only; empty for the static policies).
	PlacementDigest string
}

// Seconds converts the makespan.
func (r *RunResult) Seconds() float64 { return float64(r.Makespan) / sccsim.PsPerSecond }

// Config parameterises harness runs.
type Config struct {
	// Threads is the thread count for the baseline and the UE count for
	// RCCE runs (the paper uses 32 for both).
	Threads int
	// Scale shrinks/grows problem sizes (1.0 = full experiment size).
	Scale float64
	// Baseline holds the single-core Pthread runtime options.
	Baseline pthreadrt.Options
	// Machine returns a fresh machine per run (timing state such as
	// controller queues must not leak between runs).
	Machine func() *sccsim.Machine
	// MPBCapacity overrides the Stage 4 on-chip budget (0 = the
	// machine's full MPB). The partition-policy ablation uses a small
	// budget to create placement pressure.
	MPBCapacity int
	// RCCE overrides the runtime options per UE count (nil = defaults).
	// The MPB-placement ablation disables striping through this hook.
	RCCE func(numUEs int) rcce.Options
	// TransformRCCE, when non-nil, rewrites the translated C source
	// between Stage 5 and re-parsing. The conformance engine uses it to
	// inject translator faults and prove the differential oracle catches
	// them; nil is the identity.
	TransformRCCE func(src string) (string, error)
	// Engine selects the execution engine for both backends (the zero
	// value defers to interp.DefaultEngine / HSMCC_ENGINE). Part of the
	// cell cache identity: mixed-engine sweeps must not share results.
	Engine interp.Engine
	// Cache, when non-nil, memoizes the compile-side stages (source
	// compile and translation) so one compiled Program serves every
	// cell — and every concurrent worker — with the same source. The
	// grid runner and the conformance oracle install one.
	Cache *Cache
	// Cancel, when non-nil, is polled at every scheduling decision of
	// every simulation this config runs (baseline, RCCE, profiling): a
	// non-nil return aborts the run promptly with that error. It is
	// per-request state, never part of any cache identity — the serving
	// layer wires a request context's Err here so deadlines and client
	// disconnects stop simulations mid-flight.
	Cancel func() error
	// Fault, when non-nil, is invoked at the entry of every compute
	// stage this config runs — "compile", "translate", "baseline",
	// "simulate", "profile" — before the stage does any work. It is the
	// chaos-injection seam (internal/serve/chaos): the hook may sleep
	// (injected delay), panic (injected crash, recovered into a
	// *PanicError at the nearest isolation boundary) or return an error
	// (spurious cancellation). It fires inside memoized computations, so
	// the cache's drop-on-error discipline is what a fault exercises.
	// Like Cancel it is per-request state, never part of any cache
	// identity.
	Fault func(stage string) error
	// Span, when non-nil, is invoked at the entry of every compute stage
	// this config actually executes — same stage names as Fault — and the
	// returned func at its exit. It is the request-tracing seam
	// (internal/serve spans): because it fires inside the memoized
	// computations, a cache hit produces no compute span, which is
	// exactly what a request timeline should show. Like Cancel and Fault
	// it is per-request state, never part of any cache identity.
	Span func(stage string) func()
	// TraceRCCE, when non-nil, receives the scheduling/memory event
	// stream of the RCCE simulation (the un-memoized half of a run; see
	// internal/trace.Recorder). Observation only: simulation output and
	// cycle stats are identical with or without it, so like the other
	// per-run observers it is excluded from every cache identity.
	TraceRCCE interp.TraceSink
	// machineEnv, when non-empty, is a precomputed fingerprint of
	// cfg.Machine().Config() — sweeps whose machine is fixed (the grid
	// runner) set it once so cache-key construction does not build a
	// throwaway machine per lookup.
	machineEnv string
}

// DefaultConfig is the paper's configuration: 32 threads/cores, full
// problem sizes, Table 6.1 machine.
func DefaultConfig() Config {
	return Config{
		Threads:  32,
		Scale:    1.0,
		Baseline: pthreadrt.DefaultOptions(),
		Machine:  func() *sccsim.Machine { return sccsim.MustNew(sccsim.DefaultConfig()) },
	}
}

// fault fires cfg's fault-injection hook for one compute stage.
func (cfg Config) fault(stage string) error {
	if cfg.Fault == nil {
		return nil
	}
	return cfg.Fault(stage)
}

// span opens a stage span when cfg carries the tracing seam; the
// returned func closes it and is never nil.
func (cfg Config) span(stage string) func() {
	if cfg.Span == nil {
		return func() {}
	}
	return cfg.Span(stage)
}

// rcceOptions resolves the effective RCCE runtime options for cfg.
func (cfg Config) rcceOptions() rcce.Options {
	ropts := rcce.DefaultOptions(cfg.Threads)
	if cfg.RCCE != nil {
		ropts = cfg.RCCE(cfg.Threads)
	}
	ropts.Engine = cfg.Engine
	ropts.Cancel = cfg.Cancel
	ropts.Trace = cfg.TraceRCCE
	return ropts
}

// baselineEnv fingerprints the parts of the environment a baseline run
// depends on beyond (workload, threads, scale, engine): the machine
// configuration and the baseline runtime options. It completes the
// cross-cell memoization key — two cells may share a baseline result
// only when every input of that run is identical.
func (cfg Config) baselineEnv() string {
	opts := cfg.Baseline
	// Per-run observers are not semantic identity, and a non-nil func
	// would render as a pointer — nondeterministic across processes.
	opts.Cancel = nil
	opts.Profiler = nil
	opts.Trace = nil
	return fmt.Sprintf("%s|%+v", cfg.machineFingerprint(), opts)
}

// machineFingerprint renders the machine configuration for cache keys,
// preferring the precomputed copy over constructing a throwaway machine
// per lookup.
func (cfg Config) machineFingerprint() string {
	if cfg.machineEnv != "" {
		return cfg.machineEnv
	}
	return fmt.Sprintf("%+v", cfg.Machine().Config())
}

// PrecomputeMachineEnv returns a copy of cfg carrying the machine-config
// fingerprint, built once here. Harnesses that derive many cell configs
// from one template over a fixed machine (the grid runner, the
// conformance oracle) call this on the template so per-cell cache-key
// construction never builds a throwaway machine.
func (cfg Config) PrecomputeMachineEnv() Config {
	cfg.machineEnv = cfg.machineFingerprint()
	return cfg
}

// rcceEnv fingerprints the profiling-run environment: the machine
// configuration plus the effective RCCE options (which carry the
// core mapping and oversubscription mode).
func (cfg Config) rcceEnv() string {
	ropts := cfg.rcceOptions()
	// Same exclusion as baselineEnv: per-run observers and the cancel
	// hook are request state, not cache identity.
	ropts.Cancel = nil
	ropts.Profiler = nil
	ropts.AllocObserver = nil
	ropts.Trace = nil
	return fmt.Sprintf("%s|%+v", cfg.machineFingerprint(), ropts)
}

// CompileBaseline compiles (or fetches from the cache) the unconverted
// Pthread program for cfg's thread count and scale. The returned Program
// is immutable — one compile serves any number of concurrent runs.
func CompileBaseline(w Workload, cfg Config) (*interp.Program, error) {
	src := w.Source(cfg.Threads, cfg.Scale)
	pr, err := cfg.Cache.program(w.Key+".c", src, cfg.Fault, cfg.Span)
	if err != nil {
		return nil, fmt.Errorf("%s baseline: %w", w.Key, err)
	}
	return pr, nil
}

// RunBaselineProgram executes an already-compiled baseline program: all
// threads time-share one SCC core (thesis Chapter 6's baseline).
func RunBaselineProgram(w Workload, pr *interp.Program, cfg Config) (*RunResult, error) {
	if err := cfg.fault("baseline"); err != nil {
		return nil, fmt.Errorf("%s baseline: %w", w.Key, err)
	}
	defer cfg.span("baseline")()
	opts := cfg.Baseline
	opts.Engine = cfg.Engine
	opts.Cancel = cfg.Cancel
	res, err := pthreadrt.Run(pr, cfg.Machine(), opts)
	if err != nil {
		return nil, fmt.Errorf("%s baseline: %w", w.Key, err)
	}
	return &RunResult{
		Workload: w.Key,
		Mode:     "pthread-1core",
		Threads:  cfg.Threads,
		Makespan: res.Makespan,
		Output:   res.Output,
		Stats:    res.Stats,
	}, nil
}

// RunBaseline measures the unconverted Pthread program. With a Cache in
// cfg both the compile AND the execution are memoized: the baseline is
// a pure function of (workload, threads, scale, engine, machine+runtime
// options), so every policy and budget cell of a sweep at the same
// configuration shares one run instead of recomputing it.
func RunBaseline(w Workload, cfg Config) (*RunResult, error) {
	if cfg.Cache != nil {
		return cfg.Cache.baselineRun(w, cfg)
	}
	return runBaselineUncached(w, cfg)
}

// runBaselineUncached is the compute half of RunBaseline.
func runBaselineUncached(w Workload, cfg Config) (*RunResult, error) {
	pr, err := CompileBaseline(w, cfg)
	if err != nil {
		return nil, err
	}
	return RunBaselineProgram(w, pr, cfg)
}

// Translation is the compiled outcome of the five-stage pipeline for one
// placement: the emitted RCCE C source (after any TransformRCCE hook),
// its immutable compiled Program, and the Stage 4 on-chip footprint.
type Translation struct {
	Source      string
	Program     *interp.Program
	OnChipBytes int
	// Placement is the profile-guided placement the translation applied
	// (profiled policy only; nil for the static policies).
	Placement *profile.Placement
}

// TranslateWorkload runs the translate pipeline for one cell and
// compiles the emitted source, reusing cfg.Cache for both stages: the
// pipeline is keyed by (workload, threads, scale, policy, capacity,
// placement digest) and the compile by the emitted text, so cells whose
// placements print identical programs share one compiled image. For the
// profiled policy it first obtains the workload's access profile
// (memoized per configuration) and optimizes the placement for the
// cell's effective budget.
func TranslateWorkload(w Workload, cfg Config, policy partition.Policy) (*Translation, error) {
	capacity := cfg.MPBCapacity
	if capacity <= 0 {
		capacity = cfg.Machine().Config().MPBTotal()
	}
	scale := cfg.Scale
	var pl *profile.Placement
	if policy == partition.PolicyProfiled {
		var err error
		pl, err = PlacementFor(w, cfg, capacity)
		if err != nil {
			return nil, err
		}
	}
	if policy == partition.PolicyOffChipOnly {
		// Stage 4 ignores the capacity when everything goes off-chip;
		// normalising the cache identity lets every budget share one
		// pipeline run.
		capacity = 0
	}
	tr, err := cfg.Cache.translate(w, cfg.Threads, scale, policy, capacity, pl, cfg.machineFingerprint(), cfg.Fault, cfg.Span)
	if err != nil {
		return nil, err
	}
	translated := tr.source
	if cfg.TransformRCCE != nil {
		translated, err = cfg.TransformRCCE(translated)
		if err != nil {
			return nil, fmt.Errorf("%s transform translated source: %w", w.Key, err)
		}
	}
	pr, err := cfg.Cache.program(w.Key+"_rcce.c", translated, cfg.Fault, cfg.Span)
	if err != nil {
		return nil, fmt.Errorf("%s reparse translated source: %w\n---\n%s", w.Key, err, translated)
	}
	return &Translation{Source: translated, Program: pr, OnChipBytes: tr.onChipBytes, Placement: pl}, nil
}

// RunRCCEProgram executes a translated program with one process per UE.
func RunRCCEProgram(w Workload, tr *Translation, cfg Config, policy partition.Policy) (*RunResult, error) {
	if err := cfg.fault("simulate"); err != nil {
		return nil, fmt.Errorf("%s simulate: %w", w.Key, err)
	}
	defer cfg.span("simulate")()
	mode := "rcce-offchip"
	switch policy {
	case partition.PolicyOffChipOnly:
	case partition.PolicyProfiled:
		mode = "rcce-profiled"
	default:
		mode = "rcce-onchip"
	}
	ropts := cfg.rcceOptions()
	res, err := rcce.Run(tr.Program, cfg.Machine(), ropts)
	if err != nil {
		return nil, fmt.Errorf("%s %s: %w", w.Key, mode, err)
	}
	r := &RunResult{
		Workload:         w.Key,
		Mode:             mode,
		Threads:          cfg.Threads,
		Makespan:         res.Makespan,
		Output:           res.Output,
		Stats:            res.Stats,
		TranslatedSource: tr.Source,
		OnChipBytes:      tr.OnChipBytes,
	}
	if tr.Placement != nil {
		r.PlacementDigest = tr.Placement.Digest()
	}
	return r, nil
}

// RunRCCE translates the Pthread program through the five-stage pipeline
// with the given Stage 4 policy, re-parses the emitted C source (so the
// experiment exercises exactly what the translator prints), and executes
// it with one process per core.
func RunRCCE(w Workload, cfg Config, policy partition.Policy) (*RunResult, error) {
	tr, err := TranslateWorkload(w, cfg, policy)
	if err != nil {
		return nil, err
	}
	return RunRCCEProgram(w, tr, cfg, policy)
}

// BothResult pairs one baseline execution with one translated execution
// of the same workload — the unit of differential validation.
type BothResult struct {
	Baseline *RunResult
	RCCE     *RunResult
	// Match reports whether both backends printed the same distinct
	// result lines (see SameResults).
	Match bool
}

// RunBothBackends runs w through the single-core Pthread baseline and
// through the full translate→RCCE→sccsim pipeline under the given
// Stage 4 policy, then compares their outputs. This is the validation
// path shared by the experiment figures, the grid runner and the
// conformance engine.
func RunBothBackends(w Workload, cfg Config, policy partition.Policy) (*BothResult, error) {
	base, err := RunBaseline(w, cfg)
	if err != nil {
		return nil, err
	}
	conv, err := RunRCCE(w, cfg, policy)
	if err != nil {
		return nil, err
	}
	return &BothResult{
		Baseline: base,
		RCCE:     conv,
		Match:    SameResults(base.Output, conv.Output),
	}, nil
}

// DistinctLines returns the sorted set of distinct non-empty lines.
func DistinctLines(s string) []string {
	seen := make(map[string]bool)
	for _, l := range strings.Split(s, "\n") {
		if l != "" {
			seen[l] = true
		}
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// SameResults reports whether two runs computed the same answer: the
// baseline prints each result line once, the RCCE program prints it once
// per core, so we compare distinct line sets.
func SameResults(base, rcceOut string) bool {
	a, b := DistinctLines(base), DistinctLines(rcceOut)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Speedup is baseline time over converted time.
func Speedup(base, conv *RunResult) float64 {
	if conv.Makespan == 0 {
		return 0
	}
	return float64(base.Makespan) / float64(conv.Makespan)
}
