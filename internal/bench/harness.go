package bench

import (
	"fmt"
	"sort"
	"strings"

	"hsmcc/internal/core"
	"hsmcc/internal/interp"
	"hsmcc/internal/partition"
	"hsmcc/internal/pthreadrt"
	"hsmcc/internal/rcce"
	"hsmcc/internal/sccsim"
)

// RunResult is one measured execution.
type RunResult struct {
	Workload string
	Mode     string // "pthread-1core", "rcce-offchip", "rcce-onchip"
	Threads  int
	Makespan sccsim.Time
	Output   string
	Stats    sccsim.CoreStats
	// TranslatedSource is the RCCE C program (RCCE modes only).
	TranslatedSource string
	// OnChipBytes is what Stage 4 placed in the MPB (RCCE modes only).
	OnChipBytes int
}

// Seconds converts the makespan.
func (r *RunResult) Seconds() float64 { return float64(r.Makespan) / sccsim.PsPerSecond }

// Config parameterises harness runs.
type Config struct {
	// Threads is the thread count for the baseline and the UE count for
	// RCCE runs (the paper uses 32 for both).
	Threads int
	// Scale shrinks/grows problem sizes (1.0 = full experiment size).
	Scale float64
	// Baseline holds the single-core Pthread runtime options.
	Baseline pthreadrt.Options
	// Machine returns a fresh machine per run (timing state such as
	// controller queues must not leak between runs).
	Machine func() *sccsim.Machine
	// MPBCapacity overrides the Stage 4 on-chip budget (0 = the
	// machine's full MPB). The partition-policy ablation uses a small
	// budget to create placement pressure.
	MPBCapacity int
	// RCCE overrides the runtime options per UE count (nil = defaults).
	// The MPB-placement ablation disables striping through this hook.
	RCCE func(numUEs int) rcce.Options
	// TransformRCCE, when non-nil, rewrites the translated C source
	// between Stage 5 and re-parsing. The conformance engine uses it to
	// inject translator faults and prove the differential oracle catches
	// them; nil is the identity.
	TransformRCCE func(src string) (string, error)
}

// DefaultConfig is the paper's configuration: 32 threads/cores, full
// problem sizes, Table 6.1 machine.
func DefaultConfig() Config {
	return Config{
		Threads:  32,
		Scale:    1.0,
		Baseline: pthreadrt.DefaultOptions(),
		Machine:  func() *sccsim.Machine { return sccsim.MustNew(sccsim.DefaultConfig()) },
	}
}

// RunBaseline measures the unconverted Pthread program: all threads
// time-share one SCC core (thesis Chapter 6's baseline).
func RunBaseline(w Workload, cfg Config) (*RunResult, error) {
	src := w.Source(cfg.Threads, cfg.Scale)
	pr, err := interp.Compile(w.Key+".c", src)
	if err != nil {
		return nil, fmt.Errorf("%s baseline: %w", w.Key, err)
	}
	res, err := pthreadrt.Run(pr, cfg.Machine(), cfg.Baseline)
	if err != nil {
		return nil, fmt.Errorf("%s baseline: %w", w.Key, err)
	}
	return &RunResult{
		Workload: w.Key,
		Mode:     "pthread-1core",
		Threads:  cfg.Threads,
		Makespan: res.Makespan,
		Output:   res.Output,
		Stats:    res.Stats,
	}, nil
}

// RunRCCE translates the Pthread program through the five-stage pipeline
// with the given Stage 4 policy, re-parses the emitted C source (so the
// experiment exercises exactly what the translator prints), and executes
// it with one process per core.
func RunRCCE(w Workload, cfg Config, policy partition.Policy) (*RunResult, error) {
	src := w.Source(cfg.Threads, cfg.Scale)
	machine := cfg.Machine()
	capacity := cfg.MPBCapacity
	if capacity <= 0 {
		capacity = machine.Config().MPBTotal()
	}
	pipe, err := core.Run(w.Key+".c", src, core.Config{
		Cores:       cfg.Threads,
		Policy:      policy,
		MPBCapacity: capacity,
	})
	if err != nil {
		return nil, fmt.Errorf("%s translate: %w", w.Key, err)
	}
	translated := pipe.Output
	if cfg.TransformRCCE != nil {
		translated, err = cfg.TransformRCCE(translated)
		if err != nil {
			return nil, fmt.Errorf("%s transform translated source: %w", w.Key, err)
		}
	}
	pr, err := interp.Compile(w.Key+"_rcce.c", translated)
	if err != nil {
		return nil, fmt.Errorf("%s reparse translated source: %w\n---\n%s", w.Key, err, translated)
	}
	mode := "rcce-offchip"
	if policy != partition.PolicyOffChipOnly {
		mode = "rcce-onchip"
	}
	ropts := rcce.DefaultOptions(cfg.Threads)
	if cfg.RCCE != nil {
		ropts = cfg.RCCE(cfg.Threads)
	}
	res, err := rcce.Run(pr, machine, ropts)
	if err != nil {
		return nil, fmt.Errorf("%s %s: %w", w.Key, mode, err)
	}
	return &RunResult{
		Workload:         w.Key,
		Mode:             mode,
		Threads:          cfg.Threads,
		Makespan:         res.Makespan,
		Output:           res.Output,
		Stats:            res.Stats,
		TranslatedSource: translated,
		OnChipBytes:      pipe.Part.OnChipBytes,
	}, nil
}

// BothResult pairs one baseline execution with one translated execution
// of the same workload — the unit of differential validation.
type BothResult struct {
	Baseline *RunResult
	RCCE     *RunResult
	// Match reports whether both backends printed the same distinct
	// result lines (see SameResults).
	Match bool
}

// RunBothBackends runs w through the single-core Pthread baseline and
// through the full translate→RCCE→sccsim pipeline under the given
// Stage 4 policy, then compares their outputs. This is the validation
// path shared by the experiment figures, the grid runner and the
// conformance engine.
func RunBothBackends(w Workload, cfg Config, policy partition.Policy) (*BothResult, error) {
	base, err := RunBaseline(w, cfg)
	if err != nil {
		return nil, err
	}
	conv, err := RunRCCE(w, cfg, policy)
	if err != nil {
		return nil, err
	}
	return &BothResult{
		Baseline: base,
		RCCE:     conv,
		Match:    SameResults(base.Output, conv.Output),
	}, nil
}

// DistinctLines returns the sorted set of distinct non-empty lines.
func DistinctLines(s string) []string {
	seen := make(map[string]bool)
	for _, l := range strings.Split(s, "\n") {
		if l != "" {
			seen[l] = true
		}
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// SameResults reports whether two runs computed the same answer: the
// baseline prints each result line once, the RCCE program prints it once
// per core, so we compare distinct line sets.
func SameResults(base, rcceOut string) bool {
	a, b := DistinctLines(base), DistinctLines(rcceOut)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Speedup is baseline time over converted time.
func Speedup(base, conv *RunResult) float64 {
	if conv.Makespan == 0 {
		return 0
	}
	return float64(base.Makespan) / float64(conv.Makespan)
}
