package bench

// Panic isolation: a panic inside a memoized computation or a harness
// stage must cost exactly one request, not the process. Recovery sites
// (the onceCache compute wrapper in evict.go, the grid worker in
// grid.go) convert the panic into a *PanicError, which travels the
// ordinary error path: the serving layer answers 500 with the error
// envelope, and the cache layer drops the entry so coalesced waiters
// retry with their own computation instead of inheriting the poison.

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// PanicError is a recovered panic carried as an ordinary error.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at the recovery site (kept
	// off Error() so HTTP envelopes stay small; diagnostics can reach
	// for it explicitly).
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// IsPanic reports whether err is (or wraps) a recovered panic.
func IsPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// capturePanic converts an in-flight panic into a *PanicError stored in
// *errp. Use as `defer capturePanic(&err)` at a recovery boundary.
func capturePanic(errp *error) {
	if v := recover(); v != nil {
		*errp = &PanicError{Value: v, Stack: debug.Stack()}
	}
}
