// Package bench contains the paper's benchmarks as parameterised
// Pthread C sources (thesis §5.2, Appendix C, plus the expanded corpus
// of workloads_extra.go) and the experiment harness that reproduces
// every table and figure of the evaluation — sequentially via the Fig6x
// functions, or concurrently via the grid runner (grid.go).
//
// Each workload is generated for a given thread count and problem scale;
// the same source serves as the single-core Pthread baseline and, after
// running through the five-stage translator, as the multiprocess RCCE
// program. Problem sizes are chosen so the relevant mechanism appears
// (e.g. Stream's arrays exceed the 256 KB L2 so the baseline streams from
// DRAM, yet fit the 384 KB MPB so Stage 4 can move them on-chip; LU's
// matrix exceeds the MPB, the case the paper calls out).
package bench

import (
	"fmt"
	"strings"

	"hsmcc/internal/synth"
)

// Workload is one benchmark program generator.
type Workload struct {
	// Key is the short identifier used in reports (pi, primes, ...).
	Key string
	// Name is the display name from the thesis.
	Name string
	// Class groups benchmarks the way §5.2 does.
	Class string
	// Source generates the Pthread program for a thread count and a
	// problem scale factor (1.0 = the harness's full experiment size).
	Source func(threads int, scale float64) string
}

// Thesis returns the six benchmarks of thesis §5.2 in the thesis's
// order — the set the Chapter 6 figures are defined over.
func Thesis() []Workload {
	return []Workload{
		Pi(), Sum35(), Primes(), LU(), Dot(), Stream(),
	}
}

// All returns the full corpus: the six thesis benchmarks plus the
// expanded kernels (workloads_extra.go) the grid harness sweeps.
func All() []Workload {
	return append(Thesis(), Histogram(), KMeans(), MatMul(), ProdCons())
}

// ByKey finds a workload. `synth:`-prefixed keys resolve to the
// synthetic generator (synth.ParseKey decodes the full parameter
// vector from the key), so synthetic cells are first-class anywhere a
// workload key is accepted — grids, profiling, the CLIs.
func ByKey(key string) (Workload, bool) {
	if synth.IsKey(key) {
		p, err := synth.ParseKey(key)
		if err != nil {
			return Workload{}, false
		}
		return SynthWorkload(p), true
	}
	for _, w := range All() {
		if w.Key == key {
			return w, true
		}
	}
	return Workload{}, false
}

func scaled(base int, scale float64, granule int) int {
	n := int(float64(base) * scale)
	if n < granule {
		n = granule
	}
	return n / granule * granule
}

// Pi is the Pi Approximation benchmark (thesis Algorithm 12): numerical
// integration of 4/(1+x^2) over [0,1], block-distributed. Compute-bound
// and perfectly balanced: the workload that approaches the ideal 32x in
// Fig 6.1.
func Pi() Workload {
	return Workload{
		Key:   "pi",
		Name:  "Pi Approximation",
		Class: "approximation/number theory",
		Source: func(threads int, scale float64) string {
			chunk := scaled(163840, scale, threads) / threads
			n := chunk * threads
			return fmt.Sprintf(`
double psum[%[1]d];

void *tf(void *tid) {
    int me = (int)tid;
    double step = 1.0 / %[2]d;
    int lo = me * %[3]d;
    int i;
    double x;
    double s = 0.0;
    for (i = lo; i < lo + %[3]d; i++) {
        x = ((double)i + 0.5) * step;
        s += 4.0 / (1.0 + x * x);
    }
    psum[me] = s;
    pthread_exit(NULL);
}

int main() {
    pthread_t th[%[1]d];
    int t;
    for (t = 0; t < %[1]d; t++) {
        pthread_create(&th[t], NULL, tf, (void *)t);
    }
    for (t = 0; t < %[1]d; t++) {
        pthread_join(th[t], NULL);
    }
    double pi = 0.0;
    double step = 1.0 / %[2]d;
    int k;
    for (k = 0; k < %[1]d; k++) {
        pi += psum[k];
    }
    pi = pi * step;
    printf("pi %%.6f\n", pi);
    return 0;
}
`, threads, n, chunk)
		},
	}
}

// Sum35 is the 3-5-Sum benchmark: sum the increasingly large multiples of
// 3 and 5 below N, block-distributed. Modulo-heavy integer compute with a
// single shared result slot per thread.
func Sum35() Workload {
	return Workload{
		Key:   "sum35",
		Name:  "3-5-Sum",
		Class: "approximation/number theory",
		Source: func(threads int, scale float64) string {
			chunk := scaled(262144, scale, threads) / threads
			n := chunk * threads
			return fmt.Sprintf(`
double psum[%[1]d];

void *tf(void *tid) {
    int me = (int)tid;
    int lo = me * %[3]d;
    int i;
    double s = 0.0;
    for (i = lo; i < lo + %[3]d; i++) {
        if (i %% 3 == 0 || i %% 5 == 0) {
            s += (double)i;
        }
    }
    psum[me] = s;
    pthread_exit(NULL);
}

int main() {
    pthread_t th[%[1]d];
    int t;
    for (t = 0; t < %[1]d; t++) {
        pthread_create(&th[t], NULL, tf, (void *)t);
    }
    for (t = 0; t < %[1]d; t++) {
        pthread_join(th[t], NULL);
    }
    double total = 0.0;
    int k;
    for (k = 0; k < %[1]d; k++) {
        total += psum[k];
    }
    printf("sum35 of %[2]d = %%.0f\n", total);
    return 0;
}
`, threads, n, chunk)
		},
	}
}

// Primes is the Count Primes benchmark (thesis Algorithm 11): trial
// division over a block-distributed candidate range. The cost of testing
// a candidate grows with its value, so block distribution leaves the last
// thread with the most work — the load imbalance that caps Fig 6.1's
// speedup near 16x.
func Primes() Workload {
	return Workload{
		Key:   "primes",
		Name:  "Count Primes",
		Class: "approximation/number theory",
		Source: func(threads int, scale float64) string {
			chunk := scaled(4096, scale, threads) / threads
			n := chunk * threads
			return fmt.Sprintf(`
int count[%[1]d];

void *tf(void *tid) {
    int me = (int)tid;
    int lo = me * %[3]d;
    if (lo < 2) {
        lo = 2;
    }
    int hi = (me + 1) * %[3]d;
    int i;
    int j;
    int prime;
    int total = 0;
    for (i = lo; i < hi; i++) {
        prime = 1;
        for (j = 2; j < i; j++) {
            if (i %% j == 0) {
                prime = 0;
                break;
            }
        }
        total += prime;
    }
    count[me] = total;
    pthread_exit(NULL);
}

int main() {
    pthread_t th[%[1]d];
    int t;
    for (t = 0; t < %[1]d; t++) {
        pthread_create(&th[t], NULL, tf, (void *)t);
    }
    for (t = 0; t < %[1]d; t++) {
        pthread_join(th[t], NULL);
    }
    int total = 0;
    int k;
    for (k = 0; k < %[1]d; k++) {
        total += count[k];
    }
    printf("primes below %[2]d: %%d\n", total);
    return 0;
}
`, threads, n, chunk)
		},
	}
}

// Dot is the Dot Product benchmark: two large double vectors in shared
// memory, block-distributed multiply-accumulate. Memory-bound; with
// off-chip shared data it is one of the paper's controller-contention
// cases ("at least 8 cores in contention per memory controller").
func Dot() Workload {
	return Workload{
		Key:   "dot",
		Name:  "Dot Product",
		Class: "linear algebra",
		Source: func(threads int, scale float64) string {
			chunk := scaled(16384, scale, threads) / threads
			n := chunk * threads
			return fmt.Sprintf(`
double a[%[2]d];
double b[%[2]d];
double psum[%[1]d];

void *tf(void *tid) {
    int me = (int)tid;
    int lo = me * %[3]d;
    int hi = lo + %[3]d;
    int i;
    for (i = lo; i < hi; i++) {
        a[i] = (double)(i %% 64) * 0.5;
        b[i] = (double)(i %% 32) * 2.0;
    }
    double s = 0.0;
    for (i = lo; i < hi; i++) {
        s += a[i] * b[i];
    }
    psum[me] = s;
    pthread_exit(NULL);
}

int main() {
    pthread_t th[%[1]d];
    int t;
    for (t = 0; t < %[1]d; t++) {
        pthread_create(&th[t], NULL, tf, (void *)t);
    }
    for (t = 0; t < %[1]d; t++) {
        pthread_join(th[t], NULL);
    }
    double total = 0.0;
    int k;
    for (k = 0; k < %[1]d; k++) {
        total += psum[k];
    }
    printf("dot %%.1f\n", total);
    return 0;
}
`, threads, n, chunk)
		},
	}
}

// Stream is the synthetic memory benchmark (thesis Algorithms 13-16):
// the Copy, Scale, Add and Triad kernels over three double arrays,
// block-distributed. Array sizing is load-bearing: 3 x 96 KB exceeds the
// 256 KB L2 (the baseline streams from DRAM) but fits the 384 KB MPB
// (Stage 4 can move all three on-chip — the biggest Fig 6.2 winner).
func Stream() Workload {
	return Workload{
		Key:   "stream",
		Name:  "Stream",
		Class: "memory operations",
		Source: func(threads int, scale float64) string {
			chunk := scaled(12288, scale, threads) / threads
			n := chunk * threads
			return fmt.Sprintf(`
double a[%[2]d];
double b[%[2]d];
double c[%[2]d];

void *tf(void *tid) {
    int me = (int)tid;
    int lo = me * %[3]d;
    int hi = lo + %[3]d;
    int j;
    for (j = lo; j < hi; j++) {
        a[j] = 1.0;
        b[j] = 2.0;
        c[j] = 0.0;
    }
    for (j = lo; j < hi; j++) {
        c[j] = a[j];
    }
    for (j = lo; j < hi; j++) {
        b[j] = 3.0 * c[j];
    }
    for (j = lo; j < hi; j++) {
        c[j] = a[j] + b[j];
    }
    for (j = lo; j < hi; j++) {
        a[j] = b[j] + 3.0 * c[j];
    }
    pthread_exit(NULL);
}

int main() {
    pthread_t th[%[1]d];
    int t;
    for (t = 0; t < %[1]d; t++) {
        pthread_create(&th[t], NULL, tf, (void *)t);
    }
    for (t = 0; t < %[1]d; t++) {
        pthread_join(th[t], NULL);
    }
    printf("stream %%.1f %%.1f %%.1f\n", a[0], b[%[2]d / 2], c[%[2]d - 1]);
    return 0;
}
`, threads, n, chunk)
		},
	}
}

// LU is the LU Decomposition benchmark: in-place Gaussian elimination
// without pivoting over an n x n matrix, rows of each elimination step
// distributed across threads, one create/join round per step (which the
// translator turns into one barrier per step). The matrix is sized past
// the 384 KB MPB so Stage 4 must leave it off-chip — the case Fig 6.2
// highlights as gaining almost nothing from the MPB.
func LU() Workload {
	return Workload{
		Key:   "lu",
		Name:  "LU Decomposition",
		Class: "linear algebra",
		Source: func(threads int, scale float64) string {
			n := scaled(224, scale, 4)
			if n < 8 {
				n = 8
			}
			return fmt.Sprintf(`
double A[%[2]d];
int kk;

void *init_rows(void *tid) {
    int me = (int)tid;
    int i;
    int j;
    for (i = me; i < %[3]d; i += %[1]d) {
        for (j = 0; j < %[3]d; j++) {
            if (i == j) {
                A[i * %[3]d + j] = (double)%[3]d;
            } else {
                A[i * %[3]d + j] = 1.0;
            }
        }
    }
    pthread_exit(NULL);
}

void *elim_rows(void *tid) {
    int me = (int)tid;
    int k = kk;
    double pivot = A[k * %[3]d + k];
    int i;
    int j;
    double factor;
    for (i = k + 1 + me; i < %[3]d; i += %[1]d) {
        factor = A[i * %[3]d + k] / pivot;
        A[i * %[3]d + k] = factor;
        for (j = k + 1; j < %[3]d; j++) {
            A[i * %[3]d + j] -= factor * A[k * %[3]d + j];
        }
    }
    pthread_exit(NULL);
}

int main() {
    pthread_t th[%[1]d];
    int t;
    int k;
    for (t = 0; t < %[1]d; t++) {
        pthread_create(&th[t], NULL, init_rows, (void *)t);
    }
    for (t = 0; t < %[1]d; t++) {
        pthread_join(th[t], NULL);
    }
    for (k = 0; k < %[3]d - 1; k++) {
        kk = k;
        for (t = 0; t < %[1]d; t++) {
            pthread_create(&th[t], NULL, elim_rows, (void *)t);
        }
        for (t = 0; t < %[1]d; t++) {
            pthread_join(th[t], NULL);
        }
    }
    double trace = 0.0;
    int d;
    for (d = 0; d < %[3]d; d++) {
        trace += A[d * %[3]d + d];
    }
    printf("lu trace %%.1f\n", trace);
    return 0;
}
`, threads, n*n, n)
		},
	}
}

// indent is a test helper exposed for the golden-source tests.
func indent(s string, pad string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = pad + l
		}
	}
	return strings.Join(lines, "\n")
}
