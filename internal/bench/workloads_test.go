package bench

import (
	"strings"
	"testing"

	"hsmcc/internal/core"
	"hsmcc/internal/interp"
)

// TestWorkloadSourcesValid: every benchmark generator produces a program
// that parses, typechecks and analyses across the parameter grid the
// experiments use (1..48 threads, tiny to full problem sizes).
func TestWorkloadSourcesValid(t *testing.T) {
	threads := []int{1, 3, 8, 32, 48}
	scales := []float64{0.05, 0.5, 1.0}
	for _, w := range All() {
		for _, n := range threads {
			for _, s := range scales {
				src := w.Source(n, s)
				if _, err := interp.Compile(w.Key+".c", src); err != nil {
					t.Errorf("%s threads=%d scale=%.2f: %v", w.Key, n, s, err)
				}
			}
		}
	}
}

// TestWorkloadsAnalyzeShared: Stage 1-3 must find each benchmark's shared
// arrays — the data the whole paper is about.
func TestWorkloadsAnalyzeShared(t *testing.T) {
	wantShared := map[string][]string{
		"pi":     {"psum"},
		"sum35":  {"psum"},
		"primes": {"count"},
		"dot":    {"a", "b", "psum"},
		"stream": {"a", "b", "c"},
		"lu":     {"A", "kk"},
		// Expanded corpus (workloads_extra.go).
		"hist":     {"data", "hist"},
		"kmeans":   {"px", "cent", "csum", "ccnt"},
		"matmul":   {"A", "B", "C"},
		"prodcons": {"buf", "psum", "rr"},
	}
	for _, w := range All() {
		p, err := core.Analyze(w.Key+".c", w.Source(8, 0.05), core.Config{Cores: 8})
		if err != nil {
			t.Fatalf("%s: %v", w.Key, err)
		}
		shared := map[string]bool{}
		for _, v := range p.SharedVars() {
			shared[v.Name] = true
		}
		for _, name := range wantShared[w.Key] {
			if !shared[name] {
				t.Errorf("%s: %s not detected as shared (got %v)", w.Key, name, shared)
			}
		}
	}
}

// TestWorkloadChunksCoverRange: the generated block distribution covers
// the whole problem exactly once (chunk * threads == N in the source).
func TestWorkloadChunksCoverRange(t *testing.T) {
	for _, w := range All() {
		src := w.Source(7, 0.3) // awkward thread count on purpose
		if !strings.Contains(src, "pthread_create") {
			t.Errorf("%s: no launches generated", w.Key)
		}
		if strings.Contains(src, "%!") {
			t.Errorf("%s: Sprintf verb error in generator:\n%s", w.Key, src)
		}
	}
}

// TestScaledHelper pins the size-rounding rules.
func TestScaledHelper(t *testing.T) {
	if got := scaled(100, 1.0, 8); got != 96 {
		t.Errorf("scaled(100,1,8) = %d, want 96 (rounded to granule)", got)
	}
	if got := scaled(100, 0.001, 8); got != 8 {
		t.Errorf("scaled tiny = %d, want the granule floor 8", got)
	}
}
