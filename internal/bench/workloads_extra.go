package bench

// The expanded workload corpus beyond the thesis's six benchmarks.
// NUMA/manycore placement conclusions only generalise across a diverse
// workload mix (JArena, arXiv:1902.07590; TLP survey, arXiv:1603.09274),
// so the grid harness adds four kernels exercising mechanisms the
// original six do not: gather/scatter binning (Histogram), iterative
// convergence with main-driven rounds (KMeans), O(n^3) tiled compute
// (MatMul), and a barrier-heavy alternating-phase pipeline
// (Producer/Consumer). Each is a real Pthread C program driven through
// the full Stage 1-5 pipeline like the originals.

import "fmt"

// Histogram bins a shared data array into per-thread private bin rows
// that main merges — the classic gather/scatter reduction. The data
// array is the memory-bound part; the 16-bin rows are tiny, so Stage 4
// places the bins on-chip long before the data fits.
func Histogram() Workload {
	const bins = 16
	return Workload{
		Key:   "hist",
		Name:  "Histogram",
		Class: "memory operations",
		Source: func(threads int, scale float64) string {
			chunk := scaled(65536, scale, threads) / threads
			n := chunk * threads
			return fmt.Sprintf(`
int data[%[2]d];
int hist[%[4]d];

void *tf(void *tid) {
    int me = (int)tid;
    int lo = me * %[3]d;
    int hi = lo + %[3]d;
    int i;
    int b;
    for (i = lo; i < hi; i++) {
        data[i] = (i * 7 + 3) %% 251;
    }
    for (i = lo; i < hi; i++) {
        b = data[i] %% %[5]d;
        hist[me * %[5]d + b] += 1;
    }
    pthread_exit(NULL);
}

int main() {
    pthread_t th[%[1]d];
    int t;
    for (t = 0; t < %[1]d; t++) {
        pthread_create(&th[t], NULL, tf, (void *)t);
    }
    for (t = 0; t < %[1]d; t++) {
        pthread_join(th[t], NULL);
    }
    int total[%[5]d];
    int b;
    int k;
    for (b = 0; b < %[5]d; b++) {
        total[b] = 0;
    }
    for (k = 0; k < %[1]d; k++) {
        for (b = 0; b < %[5]d; b++) {
            total[b] += hist[k * %[5]d + b];
        }
    }
    int check = 0;
    for (b = 0; b < %[5]d; b++) {
        check += (b + 1) * total[b];
    }
    printf("hist %%d %%d\n", total[0], check);
    return 0;
}
`, threads, n, chunk, bins*threads, bins)
		},
	}
}

// KMeans is 1-D k-means with K=4 centroids over a shared point array:
// each iteration the threads accumulate per-thread partial sums and
// counts per cluster, then main recomputes the centroids — an iterative
// convergence kernel whose rounds become one barrier each after
// translation (like LU's elimination steps).
func KMeans() Workload {
	const k = 4
	const iters = 3
	return Workload{
		Key:   "kmeans",
		Name:  "KMeans",
		Class: "machine learning",
		Source: func(threads int, scale float64) string {
			chunk := scaled(49152, scale, threads) / threads
			n := chunk * threads
			return fmt.Sprintf(`
double px[%[2]d];
double cent[%[4]d];
double csum[%[5]d];
int ccnt[%[5]d];

void *init_pts(void *tid) {
    int me = (int)tid;
    int lo = me * %[3]d;
    int hi = lo + %[3]d;
    int i;
    for (i = lo; i < hi; i++) {
        px[i] = (double)(i %% 97) * 0.25;
    }
    pthread_exit(NULL);
}

void *assign_pts(void *tid) {
    int me = (int)tid;
    int lo = me * %[3]d;
    int hi = lo + %[3]d;
    int i;
    int c;
    int best;
    double d;
    double bestd;
    double x;
    double lc[%[4]d];
    double ls[%[4]d];
    int ln[%[4]d];
    for (c = 0; c < %[4]d; c++) {
        lc[c] = cent[c];
        ls[c] = 0.0;
        ln[c] = 0;
    }
    for (i = lo; i < hi; i++) {
        x = px[i];
        best = 0;
        bestd = fabs(x - lc[0]);
        for (c = 1; c < %[4]d; c++) {
            d = fabs(x - lc[c]);
            if (d < bestd) {
                bestd = d;
                best = c;
            }
        }
        ls[best] += x;
        ln[best] += 1;
    }
    for (c = 0; c < %[4]d; c++) {
        csum[me * %[4]d + c] = ls[c];
        ccnt[me * %[4]d + c] = ln[c];
    }
    pthread_exit(NULL);
}

int main() {
    pthread_t th[%[1]d];
    int t;
    int c;
    int it;
    for (c = 0; c < %[4]d; c++) {
        cent[c] = (double)c * 8.0;
    }
    for (t = 0; t < %[1]d; t++) {
        pthread_create(&th[t], NULL, init_pts, (void *)t);
    }
    for (t = 0; t < %[1]d; t++) {
        pthread_join(th[t], NULL);
    }
    for (it = 0; it < %[6]d; it++) {
        for (t = 0; t < %[1]d; t++) {
            pthread_create(&th[t], NULL, assign_pts, (void *)t);
        }
        for (t = 0; t < %[1]d; t++) {
            pthread_join(th[t], NULL);
        }
        double s;
        int cnt;
        int j;
        for (c = 0; c < %[4]d; c++) {
            s = 0.0;
            cnt = 0;
            for (j = 0; j < %[1]d; j++) {
                s += csum[j * %[4]d + c];
                cnt += ccnt[j * %[4]d + c];
            }
            if (cnt > 0) {
                cent[c] = s / (double)cnt;
            }
        }
    }
    printf("kmeans %%.3f %%.3f %%.3f %%.3f\n", cent[0], cent[1], cent[2], cent[3]);
    return 0;
}
`, threads, n, chunk, k, k*threads, iters)
		},
	}
}

// MatMul is a tiled dense matrix multiply C = A x B with rows strided
// across threads and the inner j-loop blocked into 8-wide tiles. The
// three n x n double matrices exceed the 384 KB MPB at full size (like
// LU), so Stage 4 must leave the big operands off-chip.
func MatMul() Workload {
	const tile = 8
	return Workload{
		Key:   "matmul",
		Name:  "Tiled MatMul",
		Class: "linear algebra",
		Source: func(threads int, scale float64) string {
			n := scaled(128, scale, tile)
			return fmt.Sprintf(`
double A[%[2]d];
double B[%[2]d];
double C[%[2]d];

void *init_ab(void *tid) {
    int me = (int)tid;
    int i;
    int j;
    for (i = me; i < %[3]d; i += %[1]d) {
        for (j = 0; j < %[3]d; j++) {
            A[i * %[3]d + j] = (double)((i + j) %% 8) * 0.5;
            B[i * %[3]d + j] = (double)((i * 2 + j) %% 5) * 1.0;
        }
    }
    pthread_exit(NULL);
}

void *mul_rows(void *tid) {
    int me = (int)tid;
    int i;
    int j;
    int jt;
    int kx;
    double s;
    for (i = me; i < %[3]d; i += %[1]d) {
        for (jt = 0; jt < %[3]d; jt += %[4]d) {
            for (j = jt; j < jt + %[4]d; j++) {
                s = 0.0;
                for (kx = 0; kx < %[3]d; kx++) {
                    s += A[i * %[3]d + kx] * B[kx * %[3]d + j];
                }
                C[i * %[3]d + j] = s;
            }
        }
    }
    pthread_exit(NULL);
}

int main() {
    pthread_t th[%[1]d];
    int t;
    for (t = 0; t < %[1]d; t++) {
        pthread_create(&th[t], NULL, init_ab, (void *)t);
    }
    for (t = 0; t < %[1]d; t++) {
        pthread_join(th[t], NULL);
    }
    for (t = 0; t < %[1]d; t++) {
        pthread_create(&th[t], NULL, mul_rows, (void *)t);
    }
    for (t = 0; t < %[1]d; t++) {
        pthread_join(th[t], NULL);
    }
    double trace = 0.0;
    int d;
    for (d = 0; d < %[3]d; d++) {
        trace += C[d * %[3]d + d];
    }
    printf("matmul trace %%.1f corner %%.1f\n", trace, C[%[2]d - 1]);
    return 0;
}
`, threads, n*n, n, tile)
		},
	}
}

// ProdCons is a barrier-heavy alternating-phase pipeline: each round the
// producer threads fill the shared buffer, then (after a join, which
// translation turns into a barrier) each consumer thread reduces its
// right neighbour's chunk — forcing cross-core traffic through the
// shared buffer every round. With two joins per round it has the
// highest barrier-to-work ratio in the corpus.
func ProdCons() Workload {
	return Workload{
		Key:   "prodcons",
		Name:  "Producer/Consumer",
		Class: "synchronization",
		Source: func(threads int, scale float64) string {
			chunk := scaled(8192, scale, threads) / threads
			n := chunk * threads
			rounds := scaled(8, scale, 2)
			return fmt.Sprintf(`
double buf[%[2]d];
double psum[%[1]d];
int rr;

void *produce(void *tid) {
    int me = (int)tid;
    int lo = me * %[3]d;
    int hi = lo + %[3]d;
    int i;
    for (i = lo; i < hi; i++) {
        buf[i] = (double)((i + rr * 7) %% 101) * 0.5;
    }
    pthread_exit(NULL);
}

void *consume(void *tid) {
    int me = (int)tid;
    int src = ((me + 1) %% %[1]d) * %[3]d;
    int i;
    double s = 0.0;
    for (i = 0; i < %[3]d; i++) {
        s += buf[src + i];
    }
    psum[me] += s;
    pthread_exit(NULL);
}

int main() {
    pthread_t th[%[1]d];
    int t;
    int r;
    for (r = 0; r < %[4]d; r++) {
        rr = r;
        for (t = 0; t < %[1]d; t++) {
            pthread_create(&th[t], NULL, produce, (void *)t);
        }
        for (t = 0; t < %[1]d; t++) {
            pthread_join(th[t], NULL);
        }
        for (t = 0; t < %[1]d; t++) {
            pthread_create(&th[t], NULL, consume, (void *)t);
        }
        for (t = 0; t < %[1]d; t++) {
            pthread_join(th[t], NULL);
        }
    }
    double total = 0.0;
    int k;
    for (k = 0; k < %[1]d; k++) {
        total += psum[k];
    }
    printf("prodcons %%.1f\n", total);
    return 0;
}
`, threads, n, chunk, rounds)
		},
	}
}
