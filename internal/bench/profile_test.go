package bench

import (
	"testing"

	"hsmcc/internal/interp"
	"hsmcc/internal/partition"
	"hsmcc/internal/profile"
)

// profCfg is the small-scale configuration the profiling tests share.
func profCfg(threads int) Config {
	cfg := DefaultConfig()
	cfg.Threads = threads
	cfg.Scale = 0.05
	cfg.Cache = NewCache()
	return cfg
}

// TestProfiledPolicyEndToEndCorpus runs the profile→optimize→translate→
// execute loop for every corpus workload and checks the translated
// program still computes the baseline's answer.
func TestProfiledPolicyEndToEndCorpus(t *testing.T) {
	cfg := profCfg(4)
	for _, w := range All() {
		both, err := RunBothBackends(w, cfg, partition.PolicyProfiled)
		if err != nil {
			t.Fatalf("%s: %v", w.Key, err)
		}
		if !both.Match {
			t.Errorf("%s: profiled RCCE output diverged from the baseline\nbase:\n%s\nrcce:\n%s",
				w.Key, both.Baseline.Output, both.RCCE.Output)
		}
		if both.RCCE.Mode != "rcce-profiled" {
			t.Errorf("%s: mode %q", w.Key, both.RCCE.Mode)
		}
		if both.RCCE.PlacementDigest == "" {
			t.Errorf("%s: profiled run has no placement digest", w.Key)
		}
	}
}

// TestProfileByteIdenticalAcrossEngines pins the engine-parity contract:
// the tree-walk reference and the coroutine engine perform the same
// memory accesses in the same amounts, so their profiles serialize to
// identical bytes (modulo the engine label itself).
func TestProfileByteIdenticalAcrossEngines(t *testing.T) {
	for _, w := range []string{"pi", "stream", "hist", "prodcons", "lu"} {
		wl, ok := ByKey(w)
		if !ok {
			t.Fatalf("unknown workload %s", w)
		}
		run := func(e interp.Engine) []byte {
			cfg := profCfg(4)
			cfg.Engine = e
			rep, err := ProfileWorkload(wl, cfg)
			if err != nil {
				t.Fatalf("%s (%s): %v", w, e, err)
			}
			rep.Engine = "" // the label is the one intended difference
			buf, err := rep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			return buf
		}
		compiled := run(interp.EngineCompiled)
		treewalk := run(interp.EngineTreeWalk)
		if string(compiled) != string(treewalk) {
			t.Errorf("%s: profiles differ across engines\ncompiled:\n%s\ntreewalk:\n%s", w, compiled, treewalk)
		}
	}
}

// TestProfiledNotWorseThanStatic is the headline property of the
// subsystem: at equal MPB budget, the measured-placement policy's cycle
// count is never worse than the best static policy (ties allowed — at
// unconstrained budgets every policy converges to all-on-chip).
func TestProfiledNotWorseThanStatic(t *testing.T) {
	statics := []partition.Policy{
		partition.PolicyOffChipOnly,
		partition.PolicySizeAscending,
		partition.PolicyFrequencyDensity,
	}
	for _, budget := range []int{2048, 16384, 0} {
		cfg := profCfg(8)
		cfg.MPBCapacity = budget
		for _, w := range All() {
			best := uint64(0)
			for _, pol := range statics {
				res, err := RunRCCE(w, cfg, pol)
				if err != nil {
					t.Fatalf("%s/%v: %v", w.Key, pol, err)
				}
				if best == 0 || uint64(res.Makespan) < best {
					best = uint64(res.Makespan)
				}
			}
			prof, err := RunRCCE(w, cfg, partition.PolicyProfiled)
			if err != nil {
				t.Fatalf("%s/profiled: %v", w.Key, err)
			}
			if uint64(prof.Makespan) > best {
				t.Errorf("%s budget %d: profiled %d ps worse than best static %d ps",
					w.Key, budget, prof.Makespan, best)
			}
		}
	}
}

// TestProfiledPlacementRespectsBudget: the optimizer's chosen set fits
// the effective budget, and Stage 4 echoes it.
func TestProfiledPlacementRespectsBudget(t *testing.T) {
	cfg := profCfg(8)
	for _, budget := range []int{512, 2048, 16384} {
		cfg.MPBCapacity = budget
		for _, w := range All() {
			tr, err := TranslateWorkload(w, cfg, partition.PolicyProfiled)
			if err != nil {
				t.Fatalf("%s: %v", w.Key, err)
			}
			if tr.Placement == nil {
				t.Fatalf("%s: no placement attached", w.Key)
			}
			if tr.Placement.OnChipBytes > budget {
				t.Errorf("%s: placement %d B over budget %d", w.Key, tr.Placement.OnChipBytes, budget)
			}
			if tr.OnChipBytes > budget {
				t.Errorf("%s: Stage 4 placed %d B over budget %d", w.Key, tr.OnChipBytes, budget)
			}
		}
	}
}

// TestProfilePassMemoizedAcrossBudgets: one profiling run serves every
// budget of a sweep (the profile is measured under the off-chip
// reference placement, so it is budget-independent).
func TestProfilePassMemoizedAcrossBudgets(t *testing.T) {
	cfg := profCfg(4)
	w, _ := ByKey("dot")
	for _, budget := range []int{512, 2048, 16384, 0} {
		c := cfg
		c.MPBCapacity = budget
		if _, err := TranslateWorkload(w, c, partition.PolicyProfiled); err != nil {
			t.Fatal(err)
		}
	}
	if n := cfg.Cache.Stats().ProfileRuns; n != 1 {
		t.Fatalf("profile pass ran %d times across budgets, want 1", n)
	}
}

// TestBaselineRunMemoizedAcrossCells (ROADMAP open item): every policy
// and budget cell at one (workload, cores) configuration shares a
// single baseline execution through the shared Cache.
func TestBaselineRunMemoizedAcrossCells(t *testing.T) {
	cfg := profCfg(4)
	w, _ := ByKey("pi")
	policies := []partition.Policy{
		partition.PolicyOffChipOnly,
		partition.PolicySizeAscending,
		partition.PolicyFrequencyDensity,
		partition.PolicyProfiled,
	}
	for _, pol := range policies {
		if _, err := RunBothBackends(w, cfg, pol); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
	}
	if n := cfg.Cache.Stats().BaselineRuns; n != 1 {
		t.Fatalf("baseline ran %d times across %d cells, want 1", n, len(policies))
	}
	// A different core count is a different configuration: it must not
	// share the run.
	cfg2 := cfg
	cfg2.Threads = 2
	if _, err := RunBaseline(w, cfg2); err != nil {
		t.Fatal(err)
	}
	if n := cfg.Cache.Stats().BaselineRuns; n != 2 {
		t.Fatalf("baseline runs after second cores value = %d, want 2", n)
	}
	// A different engine never shares either.
	cfg3 := cfg
	cfg3.Engine = interp.EngineTreeWalk
	if _, err := RunBaseline(w, cfg3); err != nil {
		t.Fatal(err)
	}
	if n := cfg.Cache.Stats().BaselineRuns; n != 3 {
		t.Fatalf("baseline runs after engine switch = %d, want 3", n)
	}
}

// TestTranslationCacheDistinguishesPlacements (satellite fix): two
// profiled translations at the same (workload, cores, capacity) tuple
// but different placement maps must not share a cache entry, and a
// profiled translation must not collide with a static-policy one.
func TestTranslationCacheDistinguishesPlacements(t *testing.T) {
	cache := NewCache()
	w, _ := ByKey("dot")
	// Hand-built placements give full control over the map contents.
	mk := func(onchip map[string]bool) *profile.Placement {
		pl := &profile.Placement{Budget: 16384}
		for _, name := range []string{"a", "b", "psum"} {
			pl.Choices = append(pl.Choices, profile.Choice{Name: name, OnChip: onchip[name]})
		}
		return pl
	}
	plA := mk(map[string]bool{"psum": true})
	plB := mk(map[string]bool{"a": true})
	trA, err := cache.translate(w, 4, 0.05, partition.PolicyProfiled, 16384, plA, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	trB, err := cache.translate(w, 4, 0.05, partition.PolicyProfiled, 16384, plB, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if trA == trB || trA.source == trB.source {
		t.Fatalf("different placements shared one translation")
	}
	trStatic, err := cache.translate(w, 4, 0.05, partition.PolicySizeAscending, 16384, nil, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if trStatic == trA || trStatic == trB {
		t.Fatalf("static translation shared a profiled cache entry")
	}
	if n := cache.Stats().TranslateRuns; n != 3 {
		t.Fatalf("pipeline ran %d times, want 3", n)
	}
}

// TestProfileReportShape sanity-checks the measured content: every
// shared variable of the translated program appears with traffic and a
// full sharer set, and the MPB statistics reflect the off-chip
// reference run.
func TestProfileReportShape(t *testing.T) {
	cfg := profCfg(4)
	w, _ := ByKey("stream")
	rep, err := ProfileWorkload(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Vars) != 3 {
		t.Fatalf("stream profile has %d vars, want 3 (a,b,c): %+v", len(rep.Vars), rep.Vars)
	}
	for i := range rep.Vars {
		v := &rep.Vars[i]
		if v.Accesses() == 0 {
			t.Errorf("%s: no measured traffic", v.Name)
		}
		if len(v.Sharers) != 4 {
			t.Errorf("%s: sharer set %v, want all 4 cores", v.Name, v.Sharers)
		}
	}
	if rep.MPB.UsedBytes != 0 {
		t.Errorf("off-chip reference run occupied %d MPB bytes", rep.MPB.UsedBytes)
	}
	if rep.MPB.SharedAccesses == 0 {
		t.Errorf("no shared-DRAM accesses recorded")
	}
	if rep.MPB.CapacityBytes <= 0 || rep.MPB.PerCoreBytes <= 0 {
		t.Errorf("MPB capacity missing: %+v", rep.MPB)
	}
}
