package bench

import (
	"testing"

	"hsmcc/internal/interp"
	"hsmcc/internal/partition"
	"hsmcc/internal/rcce"
	"hsmcc/internal/synth"
)

// The compiled engine's landing invariant: byte-identical program output
// AND identical simulated-time/cycle statistics versus the tree-walk
// reference engine, over the whole workload corpus, on both the Pthread
// baseline and the translated RCCE pipeline. Only host-side work may
// differ between engines; the virtual-clock model must not.

// withEngine runs f with the session default engine forced to e.
func withEngine(t *testing.T, e interp.Engine, f func()) {
	t.Helper()
	old := interp.DefaultEngine
	interp.DefaultEngine = e
	defer func() { interp.DefaultEngine = old }()
	f()
}

// equivConfig is a reduced-size configuration that still touches every
// address class (private, shared DRAM, MPB) and both runtimes.
func equivConfig() Config {
	cfg := DefaultConfig()
	cfg.Threads = 8
	cfg.Scale = 0.05
	return cfg
}

func requireEqualRuns(t *testing.T, what string, compiled, reference *RunResult) {
	t.Helper()
	if compiled.Output != reference.Output {
		t.Errorf("%s: output diverged between engines\n--- compiled\n%s\n--- tree-walk\n%s",
			what, compiled.Output, reference.Output)
	}
	if compiled.Makespan != reference.Makespan {
		t.Errorf("%s: makespan %d ps (compiled) != %d ps (tree-walk)",
			what, compiled.Makespan, reference.Makespan)
	}
	if compiled.Stats != reference.Stats {
		t.Errorf("%s: cycle statistics diverged\ncompiled:  %+v\ntree-walk: %+v",
			what, compiled.Stats, reference.Stats)
	}
}

// TestEngineEquivalenceCorpus pins compiled-vs-reference equality over
// the full 10-workload corpus, for the single-core Pthread baseline and
// for the translate→RCCE→sccsim pipeline under both an off-chip-only and
// an on-chip placement policy.
func TestEngineEquivalenceCorpus(t *testing.T) {
	cfg := equivConfig()
	for _, w := range All() {
		w := w
		t.Run(w.Key, func(t *testing.T) {
			var cBase, rBase *RunResult
			var err error
			withEngine(t, interp.EngineCompiled, func() { cBase, err = RunBaseline(w, cfg) })
			if err != nil {
				t.Fatalf("compiled baseline: %v", err)
			}
			withEngine(t, interp.EngineTreeWalk, func() { rBase, err = RunBaseline(w, cfg) })
			if err != nil {
				t.Fatalf("tree-walk baseline: %v", err)
			}
			requireEqualRuns(t, "baseline", cBase, rBase)

			for _, pol := range []partition.Policy{partition.PolicyOffChipOnly, partition.PolicySizeAscending} {
				var cRCCE, rRCCE *RunResult
				withEngine(t, interp.EngineCompiled, func() { cRCCE, err = RunRCCE(w, cfg, pol) })
				if err != nil {
					t.Fatalf("compiled rcce %v: %v", pol, err)
				}
				withEngine(t, interp.EngineTreeWalk, func() { rRCCE, err = RunRCCE(w, cfg, pol) })
				if err != nil {
					t.Fatalf("tree-walk rcce %v: %v", pol, err)
				}
				requireEqualRuns(t, "rcce/"+string(rune('0'+int(pol))), cRCCE, rRCCE)
			}
		})
	}
}

// TestEngineEquivalenceSynth extends the engine-parity invariant from
// the hand-written corpus to the synthetic plane: a seeded sample of
// parameter vectors (plus mix extremes) must run byte-identical in
// output and cycle statistics under both engines, on the baseline and
// on the translated pipeline under both an off-chip and an on-chip
// policy.
func TestEngineEquivalenceSynth(t *testing.T) {
	cfg := equivConfig()
	cfg.Scale = 1.0 // synth vectors below are already test-sized
	vectors := []synth.Params{
		{Seed: 21, Ops: 48, MemFrac: 1, LoadFrac: 0.5, SharedFrac: 1, Sharing: 4, SharedAddrs: 16, PrivateAddrs: 1, Rounds: 2},
		{Seed: 22, Ops: 36, MemFrac: 0, LoadFrac: 0, SharedFrac: 0, Sharing: 1, SharedAddrs: 1, PrivateAddrs: 1, Rounds: 1, Double: true},
	}
	for seed := int64(300); seed < 306; seed++ {
		vectors = append(vectors, synth.ParamsForSeed(seed))
	}
	for _, p := range vectors {
		p := p
		t.Run(p.Key(), func(t *testing.T) {
			w := SynthWorkload(p)
			var cBase, rBase *RunResult
			var err error
			withEngine(t, interp.EngineCompiled, func() { cBase, err = RunBaseline(w, cfg) })
			if err != nil {
				t.Fatalf("compiled baseline: %v", err)
			}
			withEngine(t, interp.EngineTreeWalk, func() { rBase, err = RunBaseline(w, cfg) })
			if err != nil {
				t.Fatalf("tree-walk baseline: %v", err)
			}
			requireEqualRuns(t, "baseline", cBase, rBase)

			for _, pol := range []partition.Policy{partition.PolicyOffChipOnly, partition.PolicySizeAscending} {
				var cRCCE, rRCCE *RunResult
				withEngine(t, interp.EngineCompiled, func() { cRCCE, err = RunRCCE(w, cfg, pol) })
				if err != nil {
					t.Fatalf("compiled rcce %v: %v", pol, err)
				}
				withEngine(t, interp.EngineTreeWalk, func() { rRCCE, err = RunRCCE(w, cfg, pol) })
				if err != nil {
					t.Fatalf("tree-walk rcce %v: %v", pol, err)
				}
				requireEqualRuns(t, "rcce", cRCCE, rRCCE)
			}
		})
	}
}

// TestEngineEquivalenceOversubscribed covers the §7.2 many-to-one
// scheduler (more UEs than cores), which exercises the manyToOne policy
// and context-switch charges under the direct-handoff scheduler.
func TestEngineEquivalenceOversubscribed(t *testing.T) {
	w, ok := ByKey("pi")
	if !ok {
		t.Fatal("no pi workload")
	}
	cfg := equivConfig()
	cfg.Threads = 6
	cfg.RCCE = func(n int) rcce.Options {
		o := rcce.DefaultOptions(n)
		o.Cores = []int{0, 1, 2, 0, 1, 2}
		o.AllowOversubscribe = true
		return o
	}
	var compiled, reference *RunResult
	var err error
	withEngine(t, interp.EngineCompiled, func() { compiled, err = RunRCCE(w, cfg, partition.PolicyOffChipOnly) })
	if err != nil {
		t.Fatalf("compiled: %v", err)
	}
	withEngine(t, interp.EngineTreeWalk, func() { reference, err = RunRCCE(w, cfg, partition.PolicyOffChipOnly) })
	if err != nil {
		t.Fatalf("tree-walk: %v", err)
	}
	requireEqualRuns(t, "oversubscribed", compiled, reference)
}
