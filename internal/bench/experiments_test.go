package bench

import (
	"strings"
	"testing"
)

// TestFig61ShapesAtReducedScale: the experiment function preserves the
// paper's qualitative ordering even at test sizes — compute-bound
// benchmarks beat memory-bound ones, and every result matches.
func TestFig61Shapes(t *testing.T) {
	cfg := quickConfig()
	cfg.Scale = 0.25
	rows, err := Fig61(cfg)
	if err != nil {
		t.Fatalf("Fig61: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byName := map[string]Fig61Row{}
	for _, r := range rows {
		if !r.ResultsOK {
			t.Errorf("%s: baseline and RCCE outputs differ", r.Workload)
		}
		if r.Speedup <= 1 {
			t.Errorf("%s: speedup %.2f <= 1", r.Workload, r.Speedup)
		}
		byName[r.Workload] = r
	}
	// The paper's headline ordering: Pi (compute-bound, balanced) beats
	// Stream (memory-bound) by a wide margin.
	if byName["Pi Approximation"].Speedup < 2*byName["Stream"].Speedup {
		t.Errorf("Pi (%.1fx) should dominate Stream (%.1fx)",
			byName["Pi Approximation"].Speedup, byName["Stream"].Speedup)
	}
	out := FormatFig61(rows)
	for _, w := range []string{"Pi Approximation", "Speedup", "32x"} {
		if !strings.Contains(out, w) {
			t.Errorf("FormatFig61 missing %q", w)
		}
	}
}

// TestFig62Shapes: Stream gains the most from the MPB; LU gains nothing
// (its matrix exceeds the MPB even at reduced scale? no — so we check
// that gains are >= ~1 and Stream leads).
func TestFig62Shapes(t *testing.T) {
	cfg := quickConfig()
	cfg.Scale = 0.25
	rows, err := Fig62(cfg)
	if err != nil {
		t.Fatalf("Fig62: %v", err)
	}
	var stream, pi Fig62Row
	for _, r := range rows {
		if !r.ResultsOK {
			t.Errorf("%s: off-chip and on-chip outputs differ", r.Workload)
		}
		if r.Gain < 0.95 {
			t.Errorf("%s: MPB placement made it slower (%.2fx)", r.Workload, r.Gain)
		}
		switch r.Workload {
		case "Stream":
			stream = r
		case "Pi Approximation":
			pi = r
		}
	}
	if stream.Gain <= pi.Gain {
		t.Errorf("Stream gain (%.2fx) should exceed Pi gain (%.2fx)", stream.Gain, pi.Gain)
	}
	if stream.OnChipB == 0 {
		t.Error("Stage 4 placed nothing on-chip for Stream")
	}
	if !strings.Contains(FormatFig62(rows), "MPB bytes") {
		t.Error("FormatFig62 missing header")
	}
}

// TestFig63Monotone: speedup grows with core count.
func TestFig63Monotone(t *testing.T) {
	cfg := quickConfig()
	cfg.Scale = 0.25
	rows, err := Fig63(cfg, []int{1, 2, 8})
	if err != nil {
		t.Fatalf("Fig63: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if !(rows[0].Speedup < rows[1].Speedup && rows[1].Speedup < rows[2].Speedup) {
		t.Errorf("speedups not monotone: %.2f %.2f %.2f",
			rows[0].Speedup, rows[1].Speedup, rows[2].Speedup)
	}
	// 8 cores should land near 8x (within scheduling overhead slack).
	if rows[2].Speedup < 5 || rows[2].Speedup > 13 {
		t.Errorf("8-core speedup = %.2f, want ~8", rows[2].Speedup)
	}
	if !strings.Contains(FormatFig63(rows), "Cores") {
		t.Error("FormatFig63 missing header")
	}
}

// TestTable61Content matches the paper's platform numbers.
func TestTable61Content(t *testing.T) {
	out := Table61(DefaultConfig())
	for _, w := range []string{"800 MHz", "1600 MHz", "1066 MHz", "32 cores"} {
		if !strings.Contains(out, w) {
			t.Errorf("Table61 missing %q:\n%s", w, out)
		}
	}
}
