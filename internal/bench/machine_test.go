package bench

import (
	"testing"

	"hsmcc/internal/interp"
	"hsmcc/internal/partition"
	"hsmcc/internal/sccsim"
)

// configFor builds a harness Config over a named machine preset with the
// fingerprint precomputed, the way the grid runner does.
func configFor(t *testing.T, preset string) Config {
	t.Helper()
	mcfg, err := sccsim.PresetConfig(preset)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Machine = func() *sccsim.Machine { return sccsim.MustNew(mcfg) }
	return cfg.PrecomputeMachineEnv()
}

// TestMachineCacheKeysDistinct pins the cache-identity contract for
// machine scaling: every memoization key that covers a simulated run —
// baseline, profiling, translation, grid cell — must separate two
// machine presets, so a scaling sweep sharing one daemon-lifetime cache
// can never serve an scc48 result to a mesh256 cell (or vice versa).
func TestMachineCacheKeysDistinct(t *testing.T) {
	a := configFor(t, "scc48")
	b := configFor(t, "mesh256")

	if a.machineEnv == b.machineEnv {
		t.Fatalf("machine fingerprints collide across presets: %q", a.machineEnv)
	}
	if a.baselineEnv() == b.baselineEnv() {
		t.Errorf("baseline run env identical across machine presets")
	}
	if a.rcceEnv() == b.rcceEnv() {
		t.Errorf("profile run env identical across machine presets")
	}

	ka := translationKey{"hist", 4, 1.0, partition.PolicySizeAscending, 1 << 14, "", a.machineEnv}
	kb := ka
	kb.machine = b.machineEnv
	if ka == kb {
		t.Errorf("translation keys identical across machine presets")
	}

	cell := Cell{Workload: "hist", Cores: 4, Policy: "size"}
	ca := semanticKey(cell, 1<<14, interp.EngineCompiled, a.machineEnv)
	cb := semanticKey(cell, 1<<14, interp.EngineCompiled, b.machineEnv)
	if ca == cb {
		t.Errorf("grid cell keys identical across machine presets")
	}

	// End to end: the same translation request through one shared cache
	// under the two machines must compute twice, not share.
	cache := NewCache()
	ta := a
	ta.Cache = cache
	tb := b
	tb.Cache = cache
	w, ok := ByKey("hist")
	if !ok {
		t.Fatal("histogram workload missing")
	}
	if _, err := cache.translate(w, 4, 0.05, partition.PolicySizeAscending, 1<<14, nil, ta.machineEnv, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.translate(w, 4, 0.05, partition.PolicySizeAscending, 1<<14, nil, tb.machineEnv, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().TranslateRuns; got != 2 {
		t.Errorf("translation shared across machine presets: %d runs, want 2", got)
	}
}

// TestGridMachinePreset runs a tiny grid on a scaled machine end to end:
// the preset must reach the simulator (cells validate and match) and the
// report must carry the machine name for provenance.
func TestGridMachinePreset(t *testing.T) {
	g := Grid{
		Name:      "scaletest",
		Workloads: []string{"hist"},
		Cores:     []int{4},
		Policies:  []string{"size"},
		Scale:     0.05,
		Machine:   "mesh256",
	}
	rep, err := RunGrid(g, RunOptions{Parallel: 1, Engine: "compiled"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Error != "" {
		t.Fatalf("cell failed: %s", r.Error)
	}
	if !r.Match {
		t.Errorf("translated output mismatch on mesh256")
	}
	if rep.Grid.MachineName() != "mesh256" {
		t.Errorf("report machine = %q, want mesh256", rep.Grid.MachineName())
	}
}

// TestMesh1024ThousandContexts runs a corpus workload with 1024 thread
// contexts time-sharing a mesh1024 machine — the scaling point the
// resume-path work targets — and pins the engine-equivalence oracle
// there: the compiled coroutine engine must produce byte-identical
// output and an identical cycle count to the treewalk reference.
func TestMesh1024ThousandContexts(t *testing.T) {
	w, ok := ByKey("hist")
	if !ok {
		t.Fatal("histogram workload missing")
	}
	run := func(engine interp.Engine) *RunResult {
		cfg := configFor(t, "mesh1024")
		cfg.Threads = 1024
		cfg.Scale = 0.05
		cfg.Engine = engine
		res, err := RunBaseline(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(interp.EngineCompiled)
	ref := run(interp.EngineTreeWalk)
	if fast.Output == "" {
		t.Fatal("1024-context run produced no output")
	}
	if fast.Output != ref.Output {
		t.Errorf("engine output diverges at 1024 contexts")
	}
	if fast.Makespan != ref.Makespan {
		t.Errorf("cycle stats diverge at 1024 contexts: compiled %d ps, treewalk %d ps",
			fast.Makespan, ref.Makespan)
	}
}

// TestGridRejectsOversizedCores pins Validate: a core count beyond the
// preset's machine must fail before any simulation runs.
func TestGridRejectsOversizedCores(t *testing.T) {
	g := Grid{
		Name:     "toolarge",
		Cores:    []int{64},
		Policies: []string{"size"},
	}
	if err := g.Validate(); err == nil {
		t.Fatal("64 cores on scc48 validated; want error")
	}
	g.Machine = "mesh256"
	if err := g.Validate(); err != nil {
		t.Fatalf("64 cores on mesh256 rejected: %v", err)
	}
}
