package bench

import (
	"strings"
	"testing"

	"hsmcc/internal/partition"
)

// quickConfig shrinks problems so the full matrix of benchmarks runs in
// test time. 8 threads/cores keeps every mechanism (parallelism, sharing,
// barriers) while staying fast.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Threads = 8
	cfg.Scale = 0.05
	return cfg
}

// TestAllBenchmarksTranslateAndAgree is the end-to-end correctness claim
// of the paper: every Pthread benchmark, after automatic translation to
// RCCE, computes the same answer on the simulated SCC — under both
// Stage 4 policies.
func TestAllBenchmarksTranslateAndAgree(t *testing.T) {
	cfg := quickConfig()
	for _, w := range All() {
		w := w
		t.Run(w.Key, func(t *testing.T) {
			base, err := RunBaseline(w, cfg)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			if base.Output == "" {
				t.Fatal("baseline produced no output")
			}
			for _, pol := range []partition.Policy{partition.PolicyOffChipOnly, partition.PolicySizeAscending} {
				conv, err := RunRCCE(w, cfg, pol)
				if err != nil {
					t.Fatalf("rcce (policy %v): %v", pol, err)
				}
				if !SameResults(base.Output, conv.Output) {
					t.Errorf("policy %v: results differ\nbaseline: %q\nrcce:     %v",
						pol, DistinctLines(base.Output), DistinctLines(conv.Output))
				}
				// Every core must have printed the result.
				lines := strings.Count(conv.Output, "\n")
				if lines != cfg.Threads*strings.Count(base.Output, "\n") {
					t.Errorf("policy %v: got %d output lines, want %d (one per core)",
						pol, lines, cfg.Threads*strings.Count(base.Output, "\n"))
				}
			}
		})
	}
}

// TestConvertedFasterThanBaseline: the paper's headline — converted
// programs on N cores beat N threads on one core by a wide margin. Run
// at a scale where work dominates the fixed RCCE startup costs.
func TestConvertedFasterThanBaseline(t *testing.T) {
	cfg := quickConfig()
	cfg.Scale = 0.3
	for _, w := range All() {
		w := w
		t.Run(w.Key, func(t *testing.T) {
			base, err := RunBaseline(w, cfg)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			conv, err := RunRCCE(w, cfg, partition.PolicyOffChipOnly)
			if err != nil {
				t.Fatalf("rcce: %v", err)
			}
			if s := Speedup(base, conv); s < 2 {
				t.Errorf("speedup = %.2fx, want > 2x on 8 cores", s)
			}
		})
	}
}

// TestOnChipNotSlower: Stage 4's MPB placement must never lose to
// off-chip placement for the memory-bound kernels, and Stream must gain
// substantially (Fig 6.2's mechanism).
func TestOnChipHelpsStream(t *testing.T) {
	cfg := quickConfig()
	cfg.Scale = 0.3
	w, _ := ByKey("stream")
	off, err := RunRCCE(w, cfg, partition.PolicyOffChipOnly)
	if err != nil {
		t.Fatalf("off-chip: %v", err)
	}
	on, err := RunRCCE(w, cfg, partition.PolicySizeAscending)
	if err != nil {
		t.Fatalf("on-chip: %v", err)
	}
	if gain := Speedup(&RunResult{Makespan: off.Makespan}, on); gain < 2 {
		t.Errorf("stream MPB gain = %.2fx, want > 2x", gain)
	}
	if on.Stats.MPBAccesses == 0 {
		t.Error("on-chip run never touched the MPB")
	}
	if off.Stats.MPBAccesses != 0 {
		t.Error("off-chip run should not touch the MPB")
	}
}

// TestTranslatedSourceShape: the emitted RCCE programs carry the
// structural features of thesis Example 4.2.
func TestTranslatedSourceShape(t *testing.T) {
	cfg := quickConfig()
	for _, w := range All() {
		conv, err := RunRCCE(w, cfg, partition.PolicyOffChipOnly)
		if err != nil {
			t.Fatalf("%s: %v", w.Key, err)
		}
		src := conv.TranslatedSource
		for _, want := range []string{"RCCE_APP", "RCCE_init", "RCCE_finalize", "RCCE_ue()", "RCCE_barrier", "RCCE_shmalloc"} {
			if !strings.Contains(src, want) {
				t.Errorf("%s: translated source missing %s", w.Key, want)
			}
		}
		if strings.Contains(src, "pthread") {
			t.Errorf("%s: translated source still mentions pthread:\n%s", w.Key, src)
		}
	}
}

// TestWorkloadScaling: Scale grows the problem, the makespan follows.
func TestWorkloadScaling(t *testing.T) {
	small := quickConfig()
	big := quickConfig()
	big.Scale = 2 * small.Scale
	w, _ := ByKey("pi")
	a, err := RunBaseline(w, small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBaseline(w, big)
	if err != nil {
		t.Fatal(err)
	}
	if b.Makespan <= a.Makespan {
		t.Errorf("2x scale: makespan %d !> %d", b.Makespan, a.Makespan)
	}
}

// TestByKey covers the registry.
func TestByKey(t *testing.T) {
	if _, ok := ByKey("pi"); !ok {
		t.Error("pi should exist")
	}
	if _, ok := ByKey("nope"); ok {
		t.Error("nope should not exist")
	}
	if len(Thesis()) != 6 {
		t.Errorf("expected the thesis's 6 benchmarks, got %d", len(Thesis()))
	}
	if len(All()) < 10 {
		t.Errorf("expected the expanded corpus of >= 10 kernels, got %d", len(All()))
	}
	for _, key := range []string{"hist", "kmeans", "matmul", "prodcons"} {
		if _, ok := ByKey(key); !ok {
			t.Errorf("expanded workload %s should exist", key)
		}
	}
}
