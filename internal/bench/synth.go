package bench

import (
	"fmt"
	"sort"
	"strings"

	"hsmcc/internal/synth"
)

// SynthWorkload lifts a synthetic parameter vector into a bench
// workload. The workload key is the vector's canonical synth: encoding
// — the full spec digest — so every cache the harness keys by workload
// (baseline runs, translations, profiles, placements, grid cells)
// distinguishes synthetic cells from corpus workloads and from each
// other by construction: two vectors differing in any field have
// different keys, and no corpus key starts with "synth:".
//
// The harness scale factor maps onto the per-round operation budget
// (synth.Params.Scaled), leaving the sharing/footprint shape — the axis
// under study — invariant.
func SynthWorkload(p synth.Params) Workload {
	return Workload{
		Key:   p.Key(),
		Name:  p.Name(),
		Class: "synthetic",
		Source: func(threads int, scale float64) string {
			return p.Scaled(scale).Source(threads)
		},
	}
}

// SynthPlaneOptions parameterise the default sharing×footprint sweep
// plane: the fixed mix every plane cell shares, and the two swept axes.
type SynthPlaneOptions struct {
	Seed       int64
	Sharings   []int // degree-of-sharing axis
	Footprints []int // shared addresses per sharing group
}

// DefaultSynthPlane is the committed BENCH_synth.json plane: sharing
// degrees from private-ish (1) to widely shared (8), shared footprints
// from MPB-trivial to budget-straining.
func DefaultSynthPlane() SynthPlaneOptions {
	return SynthPlaneOptions{
		Seed:       1,
		Sharings:   []int{1, 2, 4, 8},
		Footprints: []int{64, 256, 1024},
	}
}

// SynthPlane enumerates the plane's parameter vectors: a fixed
// memory-heavy mix (75% memory ops, 60% loads, 60% shared) crossed over
// the sharing and footprint axes. Two compute rounds make the parity
// write buffers live in both directions, so profiled placement sees
// genuine read-write shared traffic.
func SynthPlane(opt SynthPlaneOptions) []synth.Params {
	var out []synth.Params
	for _, sh := range opt.Sharings {
		for _, fp := range opt.Footprints {
			out = append(out, synth.Params{
				Seed:         opt.Seed,
				Ops:          768,
				MemFrac:      0.75,
				LoadFrac:     0.6,
				SharedFrac:   0.6,
				Sharing:      sh,
				SharedAddrs:  fp,
				PrivateAddrs: 32,
				Rounds:       2,
			})
		}
	}
	return out
}

// SynthWin is one point of the profiled-vs-static win map: at a
// (sharing, footprint, cores, budget) cell, how the profile-guided
// placement's makespan compares against the best static policy's.
type SynthWin struct {
	Workload     string  `json:"workload"`
	Sharing      int     `json:"sharing"`
	Footprint    int     `json:"footprint"`
	Cores        int     `json:"cores"`
	MPBBudget    int     `json:"mpb_budget"`
	ProfiledPs   uint64  `json:"profiled_ps"`
	BestStatic   string  `json:"best_static"`
	BestStaticPs uint64  `json:"best_static_ps"`
	// Delta is best_static_ps / profiled_ps: > 1 where profiling wins,
	// < 1 where a static heuristic was already optimal.
	Delta float64 `json:"delta"`
}

// SynthWinMap derives the win map from a grid report: for every
// synthetic (workload, cores, budget) point that has a profiled cell
// and at least one error-free static cell, one SynthWin comparing the
// profiled makespan to the fastest static policy's. Points are sorted
// (sharing, footprint, cores, budget) so the JSON diffs cleanly.
func SynthWinMap(rep *Report) []SynthWin {
	type point struct {
		workload      string
		cores, budget int
	}
	profiled := make(map[point]uint64)
	static := make(map[point]CellResult)
	for _, res := range rep.Results {
		if !synth.IsKey(res.Workload) || res.Error != "" {
			continue
		}
		pt := point{res.Workload, res.Cores, res.MPBBudget}
		if res.Policy == "profiled" {
			profiled[pt] = res.RCCEPs
			continue
		}
		if best, ok := static[pt]; !ok || res.RCCEPs < best.RCCEPs {
			static[pt] = res
		}
	}
	var wins []SynthWin
	for pt, prof := range profiled {
		best, ok := static[pt]
		if !ok || prof == 0 {
			continue
		}
		p, err := synth.ParseKey(pt.workload)
		if err != nil {
			continue
		}
		wins = append(wins, SynthWin{
			Workload:     pt.workload,
			Sharing:      p.Sharing,
			Footprint:    p.SharedAddrs,
			Cores:        pt.cores,
			MPBBudget:    pt.budget,
			ProfiledPs:   prof,
			BestStatic:   best.Policy,
			BestStaticPs: best.RCCEPs,
			Delta:        float64(best.RCCEPs) / float64(prof),
		})
	}
	sort.Slice(wins, func(i, j int) bool {
		a, b := wins[i], wins[j]
		if a.Sharing != b.Sharing {
			return a.Sharing < b.Sharing
		}
		if a.Footprint != b.Footprint {
			return a.Footprint < b.Footprint
		}
		if a.Cores != b.Cores {
			return a.Cores < b.Cores
		}
		return a.MPBBudget < b.MPBBudget
	})
	return wins
}

// FormatSynthWinMap renders the win map as the text table hsmbench
// prints alongside the JSON artifact.
func FormatSynthWinMap(wins []SynthWin) string {
	if len(wins) == 0 {
		return "no synthetic profiled-vs-static cells in report\n"
	}
	var sb strings.Builder
	sb.WriteString("Profiled-vs-static win map (delta > 1: profiled placement wins)\n")
	fmt.Fprintf(&sb, "%7s %9s %5s %9s %12s %12s %-8s %7s\n",
		"sharing", "footprint", "cores", "budget", "profiled_ps", "static_ps", "static", "delta")
	for _, w := range wins {
		fmt.Fprintf(&sb, "%7d %9d %5d %9d %12d %12d %-8s %7.3f\n",
			w.Sharing, w.Footprint, w.Cores, w.MPBBudget,
			w.ProfiledPs, w.BestStaticPs, w.BestStatic, w.Delta)
	}
	return sb.String()
}
