package interp

import (
	"fmt"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/types"
)

// Per-operation compute costs in core cycles, P54C-flavoured: the Pentium
// is in-order with a slow divider and blocking loads. The same table
// applies to baseline and translated runs, so runtime ratios are driven
// by parallel structure and the memory system.
const (
	costALU    = 1  // integer add/sub/logic/compare, branches
	costIMul   = 9  // integer multiply
	costIDiv   = 41 // integer divide / modulo
	costFAdd   = 3  // FP add/sub/compare
	costFMul   = 3  // FP multiply
	costFDiv   = 39 // FP divide
	costConv   = 3  // int<->float conversion
	costCall   = 5  // call + frame setup
	costReturn = 3
)

// ctrl is statement-level control flow.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// call runs fn(args) to completion and returns its value, dispatching on
// the session's engine: the compiled form by default, the tree-walk
// reference on request or for functions the compiler refused. The
// dispatch is deterministic in the Program and Engine, so a coroutine
// re-descent reaches the same callee.
func (p *Proc) call(fn *ast.FuncDecl, args []Value) (Value, error) {
	if p.Sim.Engine != EngineTreeWalk {
		if cf := p.Sim.Program.compiled[fn]; cf != nil && !cf.fallback {
			return p.callCompiled(cf, args)
		}
	}
	return p.callTree(fn, args)
}

// callTree runs fn(args) in a fresh tree-walk frame (reference engine).
// The tree-walk only runs under the blocking goroutine scheduler, where
// the yield-capable primitives suspend internally and never return the
// yield sentinel.
func (p *Proc) callTree(fn *ast.FuncDecl, args []Value) (Value, error) {
	if fn.Body == nil {
		return Value{}, fmt.Errorf("call of undefined function %s", fn.Name)
	}
	p.Calls++
	if err := p.chargeCycles(costCall); err != nil {
		return Value{}, err
	}
	fr, err := p.pushFrame(fn)
	if err != nil {
		return Value{}, err
	}
	defer p.popFrame()
	for i, prm := range fn.Params {
		if prm.Sym == nil {
			continue
		}
		var v Value
		if i < len(args) {
			v = args[i]
		}
		if err := p.storeValue(fr.slots[prm.Sym], prm.Type, v); err != nil {
			return Value{}, err
		}
	}
	var ret Value
	if _, err := p.execBlock(fn.Body, &ret); err != nil {
		return Value{}, err
	}
	if err := p.chargeCycles(costReturn); err != nil {
		return Value{}, err
	}
	return ret, nil
}

func (p *Proc) execBlock(b *ast.BlockStmt, ret *Value) (ctrl, error) {
	for _, s := range b.List {
		c, err := p.execStmt(s, ret)
		if err != nil || c != ctrlNone {
			return c, err
		}
	}
	return ctrlNone, nil
}

func (p *Proc) execStmt(s ast.Stmt, ret *Value) (ctrl, error) {
	p.Ops++
	if rt := p.Sim.Runtime; rt != nil {
		rt.Tick(p)
	}
	switch n := s.(type) {
	case *ast.BlockStmt:
		return p.execBlock(n, ret)

	case *ast.DeclStmt:
		d := n.Decl
		if d.Sym == nil {
			return ctrlNone, nil
		}
		addr, ok := p.addrOfSymbol(d.Sym)
		if !ok {
			return ctrlNone, fmt.Errorf("%s: local %s has no slot", d.Pos(), d.Name)
		}
		if d.Init != nil {
			v, err := p.evalExpr(d.Init)
			if err != nil {
				return ctrlNone, err
			}
			if err := p.storeValue(addr, d.Type, v); err != nil {
				return ctrlNone, err
			}
		}
		for i, e := range d.InitLst {
			elem := d.Type.Elem
			if elem == nil {
				return ctrlNone, fmt.Errorf("%s: aggregate initialiser on scalar %s", d.Pos(), d.Name)
			}
			v, err := p.evalExpr(e)
			if err != nil {
				return ctrlNone, err
			}
			if err := p.storeValue(addr+uint32(i*elem.Size()), elem, v); err != nil {
				return ctrlNone, err
			}
		}
		// `int a[3] = {0}` zero-fills the remainder; PageMem starts
		// zeroed but the slot may be reused stack memory.
		if len(n.Decl.InitLst) > 0 && d.Type.Kind == types.Array {
			elem := d.Type.Elem
			zero := IntValue(types.IntType, 0)
			for i := len(n.Decl.InitLst); i < d.Type.Len; i++ {
				if err := p.storeValue(addr+uint32(i*elem.Size()), elem, zero); err != nil {
					return ctrlNone, err
				}
			}
		}
		return ctrlNone, nil

	case *ast.ExprStmt:
		_, err := p.evalExpr(n.X)
		return ctrlNone, err

	case *ast.IfStmt:
		cond, err := p.evalExpr(n.Cond)
		if err != nil {
			return ctrlNone, err
		}
		if err := p.chargeCycles(costALU); err != nil {
			return ctrlNone, err
		}
		if cond.Bool() {
			return p.execStmt(n.Then, ret)
		}
		if n.Else != nil {
			return p.execStmt(n.Else, ret)
		}
		return ctrlNone, nil

	case *ast.ForStmt:
		if n.Init != nil {
			if _, err := p.execStmt(n.Init, ret); err != nil {
				return ctrlNone, err
			}
		}
		for {
			if n.Cond != nil {
				cond, err := p.evalExpr(n.Cond)
				if err != nil {
					return ctrlNone, err
				}
				if err := p.chargeCycles(costALU); err != nil {
					return ctrlNone, err
				}
				if !cond.Bool() {
					break
				}
			}
			c, err := p.execStmt(n.Body, ret)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return c, nil
			}
			if n.Post != nil {
				if _, err := p.evalExpr(n.Post); err != nil {
					return ctrlNone, err
				}
			}
		}
		return ctrlNone, nil

	case *ast.WhileStmt:
		for {
			cond, err := p.evalExpr(n.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if err := p.chargeCycles(costALU); err != nil {
				return ctrlNone, err
			}
			if !cond.Bool() {
				return ctrlNone, nil
			}
			c, err := p.execStmt(n.Body, ret)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if c == ctrlReturn {
				return c, nil
			}
		}

	case *ast.DoWhileStmt:
		for {
			c, err := p.execStmt(n.Body, ret)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if c == ctrlReturn {
				return c, nil
			}
			cond, err := p.evalExpr(n.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if err := p.chargeCycles(costALU); err != nil {
				return ctrlNone, err
			}
			if !cond.Bool() {
				return ctrlNone, nil
			}
		}

	case *ast.SwitchStmt:
		tag, err := p.evalExpr(n.Tag)
		if err != nil {
			return ctrlNone, err
		}
		if err := p.chargeCycles(costALU); err != nil {
			return ctrlNone, err
		}
		matched := false
		for _, cl := range n.Cases {
			if !matched {
				if cl.Value == nil {
					matched = true // default
				} else {
					cv, err := p.evalExpr(cl.Value)
					if err != nil {
						return ctrlNone, err
					}
					matched = cv.Int() == tag.Int()
				}
			}
			if !matched {
				continue
			}
			for _, cs := range cl.Body {
				c, err := p.execStmt(cs, ret)
				if err != nil {
					return ctrlNone, err
				}
				switch c {
				case ctrlBreak:
					return ctrlNone, nil
				case ctrlReturn, ctrlContinue:
					return c, nil
				}
			}
		}
		return ctrlNone, nil

	case *ast.ReturnStmt:
		if n.Result != nil {
			v, err := p.evalExpr(n.Result)
			if err != nil {
				return ctrlNone, err
			}
			*ret = v
		}
		return ctrlReturn, nil

	case *ast.BreakStmt:
		return ctrlBreak, nil
	case *ast.ContinueStmt:
		return ctrlContinue, nil
	case *ast.EmptyStmt:
		return ctrlNone, nil

	default:
		return ctrlNone, fmt.Errorf("%s: cannot execute %T", s.Pos(), s)
	}
}
