package interp

import (
	"fmt"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/token"
	"hsmcc/internal/cc/types"
)

// evalExpr evaluates e to an rvalue (tree-walk reference engine; runs
// only under the blocking goroutine scheduler, so the yield-capable
// primitives suspend internally and the propagated errors here are
// always real failures).
func (p *Proc) evalExpr(e ast.Expr) (Value, error) {
	switch n := e.(type) {
	case *ast.ParenExpr:
		return p.evalExpr(n.X)

	case *ast.IntLit:
		return IntValue(types.IntType, n.Value), nil
	case *ast.FloatLit:
		return FloatValue(types.DoubleType, n.Value), nil
	case *ast.CharLit:
		return IntValue(types.CharType, int64(n.Value)), nil
	case *ast.StringLit:
		addr, ok := p.Sim.Program.stringAddrs[n]
		if !ok {
			return Value{}, fmt.Errorf("%s: string literal not in image", n.Pos())
		}
		return PtrValue(types.PointerTo(types.CharType), addr), nil

	case *ast.Ident:
		return p.evalIdent(n)

	case *ast.BinaryExpr:
		return p.evalBinary(n)

	case *ast.AssignExpr:
		return p.evalAssign(n)

	case *ast.UnaryExpr:
		return p.evalUnary(n)

	case *ast.PostfixExpr:
		addr, t, err := p.evalLValue(n.X)
		if err != nil {
			return Value{}, err
		}
		old, err := p.loadValue(addr, t)
		if err != nil {
			return Value{}, err
		}
		delta := int64(1)
		if n.Op == token.MinusMinus {
			delta = -1
		}
		if err := p.chargeCycles(costALU); err != nil {
			return Value{}, err
		}
		upd := p.stepValue(old, t, delta)
		if err := p.storeValue(addr, t, upd); err != nil {
			return Value{}, err
		}
		return old, nil

	case *ast.IndexExpr:
		addr, t, err := p.evalLValue(n)
		if err != nil {
			return Value{}, err
		}
		if t.Kind == types.Array {
			// Array element of array type decays to a pointer.
			return PtrValue(types.PointerTo(t.Elem), addr), nil
		}
		return p.loadValue(addr, t)

	case *ast.CallExpr:
		return p.evalCall(n)

	case *ast.CastExpr:
		v, err := p.evalExpr(n.X)
		if err != nil {
			return Value{}, err
		}
		if (v.IsFloat() && n.To.IsInteger()) || (!v.IsFloat() && n.To.IsFloat()) {
			if err := p.chargeCycles(costConv); err != nil {
				return Value{}, err
			}
		}
		return Convert(v, n.To), nil

	case *ast.SizeofExpr:
		t := n.OfType
		if t == nil && n.X != nil {
			t = n.X.ResultType()
		}
		if t == nil {
			return Value{}, fmt.Errorf("%s: sizeof untyped operand", n.Pos())
		}
		return IntValue(types.UIntType, int64(t.Size())), nil

	case *ast.CondExpr:
		cond, err := p.evalExpr(n.Cond)
		if err != nil {
			return Value{}, err
		}
		if err := p.chargeCycles(costALU); err != nil {
			return Value{}, err
		}
		if cond.Bool() {
			return p.evalExpr(n.Then)
		}
		return p.evalExpr(n.Else)

	case *ast.CommaExpr:
		if _, err := p.evalExpr(n.X); err != nil {
			return Value{}, err
		}
		return p.evalExpr(n.Y)

	case *ast.MemberExpr:
		addr, t, err := p.evalLValue(n)
		if err != nil {
			return Value{}, err
		}
		return p.loadValue(addr, t)

	default:
		return Value{}, fmt.Errorf("%s: cannot evaluate %T", e.Pos(), e)
	}
}

// evalIdent resolves an identifier occurrence as an rvalue.
func (p *Proc) evalIdent(n *ast.Ident) (Value, error) {
	if n.Sym == nil {
		// sema leaves NULL and runtime handles unresolved.
		switch n.Name {
		case "NULL":
			return PtrValue(types.PointerTo(types.VoidType), 0), nil
		case "RCCE_COMM_WORLD":
			return IntValue(types.OpaqueOf("RCCE_COMM"), 0), nil
		}
		return Value{}, fmt.Errorf("%s: unresolved identifier %s", n.Pos(), n.Name)
	}
	if n.Sym.Kind == ast.SymFunc {
		fn, ok := p.Sim.Program.Funcs[n.Name]
		if !ok {
			return Value{}, fmt.Errorf("%s: undefined function %s", n.Pos(), n.Name)
		}
		return p.Sim.Program.FuncValue(fn), nil
	}
	addr, ok := p.addrOfSymbol(n.Sym)
	if !ok {
		return Value{}, fmt.Errorf("%s: no storage for %s", n.Pos(), n.Name)
	}
	if n.Sym.Type.Kind == types.Array {
		if err := p.chargeCycles(costALU); err != nil { // address formation only
			return Value{}, err
		}
		return PtrValue(types.PointerTo(n.Sym.Type.Elem), addr), nil
	}
	return p.loadValue(addr, n.Sym.Type)
}

// evalLValue resolves e to (address, stored type).
func (p *Proc) evalLValue(e ast.Expr) (uint32, *types.Type, error) {
	switch n := e.(type) {
	case *ast.ParenExpr:
		return p.evalLValue(n.X)

	case *ast.Ident:
		if n.Sym == nil {
			return 0, nil, fmt.Errorf("%s: %s is not assignable", n.Pos(), n.Name)
		}
		addr, ok := p.addrOfSymbol(n.Sym)
		if !ok {
			return 0, nil, fmt.Errorf("%s: no storage for %s", n.Pos(), n.Name)
		}
		return addr, n.Sym.Type, nil

	case *ast.UnaryExpr:
		if n.Op != token.Star {
			return 0, nil, fmt.Errorf("%s: %s is not an lvalue", e.Pos(), n.Op)
		}
		v, err := p.evalExpr(n.X)
		if err != nil {
			return 0, nil, err
		}
		t := n.X.ResultType()
		var elem *types.Type
		if t != nil && t.IsPointerLike() {
			elem = t.Decay().Elem
		}
		if elem == nil {
			elem = types.IntType
		}
		if v.Addr() == 0 {
			return 0, nil, fmt.Errorf("%s: null pointer dereference", e.Pos())
		}
		return v.Addr(), elem, nil

	case *ast.IndexExpr:
		base, elem, err := p.indexBase(n)
		if err != nil {
			return 0, nil, err
		}
		idx, err := p.evalExpr(n.Index)
		if err != nil {
			return 0, nil, err
		}
		if err := p.chargeCycles(costALU); err != nil { // address arithmetic
			return 0, nil, err
		}
		return base + uint32(idx.Int()*int64(elem.Size())), elem, nil

	case *ast.MemberExpr:
		var base uint32
		var st *types.Type
		if n.Arrow {
			v, err := p.evalExpr(n.X)
			if err != nil {
				return 0, nil, err
			}
			base = v.Addr()
			t := n.X.ResultType()
			if t == nil || t.Elem == nil {
				return 0, nil, fmt.Errorf("%s: -> on non-pointer", e.Pos())
			}
			st = t.Elem
		} else {
			a, t, err := p.evalLValue(n.X)
			if err != nil {
				return 0, nil, err
			}
			base, st = a, t
		}
		f, ok := st.Field(n.Name)
		if !ok {
			return 0, nil, fmt.Errorf("%s: no field %s in %s", e.Pos(), n.Name, st)
		}
		if err := p.chargeCycles(costALU); err != nil {
			return 0, nil, err
		}
		return base + uint32(f.Offset), f.Type, nil

	default:
		return 0, nil, fmt.Errorf("%s: %T is not an lvalue", e.Pos(), e)
	}
}

// indexBase resolves the base address and element type of x[i]: arrays
// use their storage directly, pointers load the pointer value first.
func (p *Proc) indexBase(n *ast.IndexExpr) (uint32, *types.Type, error) {
	bt := n.X.ResultType()
	if bt != nil && bt.Kind == types.Array {
		addr, t, err := p.evalLValue(n.X)
		if err != nil {
			return 0, nil, err
		}
		return addr, t.Elem, nil
	}
	v, err := p.evalExpr(n.X)
	if err != nil {
		return 0, nil, err
	}
	var elem *types.Type
	if bt != nil && bt.IsPointerLike() {
		elem = bt.Decay().Elem
	}
	if elem == nil {
		elem = types.IntType
	}
	if v.Addr() == 0 {
		return 0, nil, fmt.Errorf("%s: indexing a null pointer", n.Pos())
	}
	return v.Addr(), elem, nil
}

// stepValue adds delta respecting pointer scaling.
func (p *Proc) stepValue(v Value, t *types.Type, delta int64) Value {
	if t.Kind == types.Pointer && t.Elem != nil {
		return PtrValue(t, uint32(v.Int()+delta*int64(t.Elem.Size())))
	}
	if v.IsFloat() {
		return FloatValue(t, v.F+float64(delta))
	}
	return IntValue(t, v.I+delta)
}

// evalUnary handles prefix operators.
func (p *Proc) evalUnary(n *ast.UnaryExpr) (Value, error) {
	switch n.Op {
	case token.Amp:
		// &x: no memory access, just address formation. Function names
		// appear here too (`&tf`), as does the synthetic communicator
		// handle `&RCCE_COMM_WORLD` (storage-less; the barrier builtin
		// ignores its argument, matching RCCE's global communicator).
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			if id.Sym != nil && id.Sym.Kind == ast.SymFunc {
				return p.evalIdent(id)
			}
			if id.Sym == nil && id.Name == "RCCE_COMM_WORLD" {
				return PtrValue(types.PointerTo(types.OpaqueOf("RCCE_COMM")), 0), nil
			}
		}
		addr, t, err := p.evalLValue(n.X)
		if err != nil {
			return Value{}, err
		}
		if err := p.chargeCycles(costALU); err != nil {
			return Value{}, err
		}
		return PtrValue(types.PointerTo(t), addr), nil

	case token.Star:
		addr, t, err := p.evalLValue(n)
		if err != nil {
			return Value{}, err
		}
		if t.Kind == types.Array {
			return PtrValue(types.PointerTo(t.Elem), addr), nil
		}
		return p.loadValue(addr, t)

	case token.PlusPlus, token.MinusMinus:
		addr, t, err := p.evalLValue(n.X)
		if err != nil {
			return Value{}, err
		}
		old, err := p.loadValue(addr, t)
		if err != nil {
			return Value{}, err
		}
		delta := int64(1)
		if n.Op == token.MinusMinus {
			delta = -1
		}
		if err := p.chargeCycles(costALU); err != nil {
			return Value{}, err
		}
		upd := p.stepValue(old, t, delta)
		if err := p.storeValue(addr, t, upd); err != nil {
			return Value{}, err
		}
		return upd, nil
	}

	v, err := p.evalExpr(n.X)
	if err != nil {
		return Value{}, err
	}
	switch n.Op {
	case token.Minus:
		if v.IsFloat() {
			if err := p.chargeCycles(costFAdd); err != nil {
				return Value{}, err
			}
			return FloatValue(v.T, -v.F), nil
		}
		if err := p.chargeCycles(costALU); err != nil {
			return Value{}, err
		}
		return IntValue(v.T, -v.I), nil
	case token.Plus:
		return v, nil
	case token.Bang:
		if err := p.chargeCycles(costALU); err != nil {
			return Value{}, err
		}
		if v.Bool() {
			return IntValue(types.IntType, 0), nil
		}
		return IntValue(types.IntType, 1), nil
	case token.Tilde:
		if err := p.chargeCycles(costALU); err != nil {
			return Value{}, err
		}
		return IntValue(v.T, int64(int32(^uint32(v.Int())))), nil
	default:
		return Value{}, fmt.Errorf("%s: unary %s unsupported", n.Pos(), n.Op)
	}
}

// evalAssign handles = and compound assignments.
func (p *Proc) evalAssign(n *ast.AssignExpr) (Value, error) {
	addr, t, err := p.evalLValue(n.LHS)
	if err != nil {
		return Value{}, err
	}
	if n.Op == token.Assign {
		rhs, err := p.evalExpr(n.RHS)
		if err != nil {
			return Value{}, err
		}
		v := Convert(rhs, t)
		if err := p.storeValue(addr, t, v); err != nil {
			return Value{}, err
		}
		return v, nil
	}
	old, err := p.loadValue(addr, t)
	if err != nil {
		return Value{}, err
	}
	rhs, err := p.evalExpr(n.RHS)
	if err != nil {
		return Value{}, err
	}
	op, ok := compoundOps[n.Op]
	if !ok {
		return Value{}, fmt.Errorf("%s: assignment op %s unsupported", n.Pos(), n.Op)
	}
	res, err := p.applyBinary(op, old, rhs, t)
	if err != nil {
		return Value{}, err
	}
	v := Convert(res, t)
	if err := p.storeValue(addr, t, v); err != nil {
		return Value{}, err
	}
	return v, nil
}

var compoundOps = map[token.Kind]token.Kind{
	token.AddAssign: token.Plus,
	token.SubAssign: token.Minus,
	token.MulAssign: token.Star,
	token.DivAssign: token.Slash,
	token.ModAssign: token.Percent,
	token.AndAssign: token.Amp,
	token.OrAssign:  token.Pipe,
	token.XorAssign: token.Caret,
	token.ShlAssign: token.Shl,
	token.ShrAssign: token.Shr,
}

// evalBinary handles binary operators including short-circuit logic and
// pointer arithmetic.
func (p *Proc) evalBinary(n *ast.BinaryExpr) (Value, error) {
	if n.Op == token.AndAnd || n.Op == token.OrOr {
		x, err := p.evalExpr(n.X)
		if err != nil {
			return Value{}, err
		}
		if err := p.chargeCycles(costALU); err != nil {
			return Value{}, err
		}
		if n.Op == token.AndAnd && !x.Bool() {
			return IntValue(types.IntType, 0), nil
		}
		if n.Op == token.OrOr && x.Bool() {
			return IntValue(types.IntType, 1), nil
		}
		y, err := p.evalExpr(n.Y)
		if err != nil {
			return Value{}, err
		}
		if y.Bool() {
			return IntValue(types.IntType, 1), nil
		}
		return IntValue(types.IntType, 0), nil
	}
	x, err := p.evalExpr(n.X)
	if err != nil {
		return Value{}, err
	}
	y, err := p.evalExpr(n.Y)
	if err != nil {
		return Value{}, err
	}
	return p.applyBinary(n.Op, x, y, n.Typ)
}

// applyBinary computes x op y, charging the operation cost. The charges
// are those of the original per-case table (binCost hoists them without
// changing any charge or its order relative to the fold), and the single
// charge site is what makes the function resumable under the coroutine
// engine: a yield at the charge saves the pure outcome in the frame, so
// re-entry (with any operands) just returns it.
func (p *Proc) applyBinary(op token.Kind, x, y Value, rt *types.Type) (Value, error) {
	if p.coResuming {
		return p.applyResume()
	}
	cost := costALU // pointer arithmetic charges one ALU cycle
	if xt := x.T; xt == nil || !xt.IsPointerLike() || (op != token.Plus && op != token.Minus) {
		cost = binCost(op, x.IsFloat() || y.IsFloat())
	}
	if err := p.chargeCycles(cost); err != nil {
		p.pushApplyOutcome(applyBinaryFold(op, x, y, rt))
		return Value{}, err
	}
	return applyBinaryFold(op, x, y, rt)
}

// applyBinaryFold is applyBinary's pure compute half: pointer
// arithmetic, then the shared numeric fold.
func applyBinaryFold(op token.Kind, x, y Value, rt *types.Type) (Value, error) {
	// Pointer arithmetic: scale the integer side by the element size.
	if xt := x.T; xt != nil && xt.IsPointerLike() && (op == token.Plus || op == token.Minus) {
		elem := xt.Decay().Elem
		size := int64(4)
		if elem != nil && elem.Size() > 0 {
			size = int64(elem.Size())
		}
		if yt := y.T; yt != nil && yt.IsPointerLike() && op == token.Minus {
			return IntValue(types.IntType, (x.Int()-y.Int())/size), nil
		}
		delta := y.Int() * size
		if op == token.Minus {
			delta = -delta
		}
		return PtrValue(xt.Decay(), uint32(x.Int()+delta)), nil
	}
	v, err := foldBinary(op, x, y)
	if err != nil {
		return Value{}, err
	}
	if rt != nil && rt.IsArithmetic() && v.T != nil && v.T.IsArithmetic() {
		return Convert(v, rt), nil
	}
	return v, nil
}

// foldBinary is the pure arithmetic core, shared with the constant folder.
func foldBinary(op token.Kind, x, y Value) (Value, error) {
	float := x.IsFloat() || y.IsFloat()
	boolInt := func(b bool) Value {
		if b {
			return IntValue(types.IntType, 1)
		}
		return IntValue(types.IntType, 0)
	}
	if float {
		a, b := x.Float(), y.Float()
		t := types.DoubleType
		switch op {
		case token.Plus:
			return FloatValue(t, a+b), nil
		case token.Minus:
			return FloatValue(t, a-b), nil
		case token.Star:
			return FloatValue(t, a*b), nil
		case token.Slash:
			return FloatValue(t, a/b), nil
		case token.Lt:
			return boolInt(a < b), nil
		case token.Gt:
			return boolInt(a > b), nil
		case token.Le:
			return boolInt(a <= b), nil
		case token.Ge:
			return boolInt(a >= b), nil
		case token.EqEq:
			return boolInt(a == b), nil
		case token.NotEq:
			return boolInt(a != b), nil
		default:
			return Value{}, fmt.Errorf("float operands for %s", op)
		}
	}
	a, b := x.Int(), y.Int()
	t := types.IntType
	if x.T != nil && x.T.Kind == types.UInt {
		t = types.UIntType
	}
	wrap := func(v int64) Value {
		if t.Kind == types.UInt {
			return IntValue(t, int64(uint32(v)))
		}
		return IntValue(t, int64(int32(v)))
	}
	switch op {
	case token.Plus:
		return wrap(a + b), nil
	case token.Minus:
		return wrap(a - b), nil
	case token.Star:
		return wrap(a * b), nil
	case token.Slash:
		if b == 0 {
			return Value{}, fmt.Errorf("integer division by zero")
		}
		return wrap(a / b), nil
	case token.Percent:
		if b == 0 {
			return Value{}, fmt.Errorf("integer modulo by zero")
		}
		return wrap(a % b), nil
	case token.Amp:
		return wrap(a & b), nil
	case token.Pipe:
		return wrap(a | b), nil
	case token.Caret:
		return wrap(a ^ b), nil
	case token.Shl:
		return wrap(a << (uint(b) & 31)), nil
	case token.Shr:
		if t.Kind == types.UInt {
			return wrap(int64(uint32(a) >> (uint(b) & 31))), nil
		}
		return wrap(int64(int32(a) >> (uint(b) & 31))), nil
	case token.Lt:
		return boolInt(a < b), nil
	case token.Gt:
		return boolInt(a > b), nil
	case token.Le:
		return boolInt(a <= b), nil
	case token.Ge:
		return boolInt(a >= b), nil
	case token.EqEq:
		return boolInt(a == b), nil
	case token.NotEq:
		return boolInt(a != b), nil
	default:
		return Value{}, fmt.Errorf("binary op %s unsupported", op)
	}
}
