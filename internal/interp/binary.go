package interp

import (
	"fmt"

	"hsmcc/internal/cc/token"
	"hsmcc/internal/cc/types"
)

// binCost is the cycle charge for one binary operation — the exact
// per-case charges of the original applyBinary/applyBinaryFast pair,
// hoisted to a pure table so each apply has a single charge site (which
// is what makes the pair resumable with one frame under the coroutine
// engine; the charge-then-compute order per case is unchanged).
func binCost(op token.Kind, float bool) int {
	switch op {
	case token.Star:
		if float {
			return costFMul
		}
		return costIMul
	case token.Slash, token.Percent:
		if float {
			return costFDiv
		}
		return costIDiv
	default:
		if float {
			return costFAdd
		}
		return costALU
	}
}

// applyResume finishes a suspended binary apply: the charge completed
// and the pure outcome (value or fold error) was saved in the frame, so
// re-entry returns it without consulting the operands. Both appliers
// push this frame shape, which lets a resume reach either one — the
// zero operands a caller passes on re-entry route to the numeric branch
// regardless of how the original call routed.
func (p *Proc) applyResume() (Value, error) {
	fr := p.popKRef()
	if e, ok := fr.x.(error); ok {
		return Value{}, e
	}
	return fr.v, nil
}

// pushApplyOutcome saves a suspended apply's pure outcome.
func (p *Proc) pushApplyOutcome(v Value, err error) {
	if err != nil {
		p.pushK(kframe{x: err})
	} else {
		p.pushK(kframe{v: v})
	}
}

// applyBinaryFast is the compiled engine's fusion of applyBinary and
// foldBinary: one float/int classification, one charge, the same folds,
// wrap-arounds and error messages as the two-level reference pair (which
// stays as the tree-walk path and the constant folder). Behaviourally
// identical by construction; pinned by the engine-equivalence golden
// tests. Resumable: the only suspension point is the charge, after which
// the computation is pure over the operands, so the yield path computes
// the outcome eagerly and re-entry just returns it.
func (p *Proc) applyBinaryFast(op token.Kind, x, y Value, rt *types.Type) (Value, error) {
	// Pointer arithmetic: rare; route through the reference path.
	if xt := x.T; xt != nil && xt.IsPointerLike() && (op == token.Plus || op == token.Minus) {
		return p.applyBinary(op, x, y, rt)
	}
	if p.coResuming {
		return p.applyResume()
	}
	if err := p.chargeCycles(binCost(op, x.IsFloat() || y.IsFloat())); err != nil {
		p.pushApplyOutcome(foldFast(op, x, y, rt))
		return Value{}, err
	}
	return foldFast(op, x, y, rt)
}

// foldFast is applyBinaryFast's pure compute half.
func foldFast(op token.Kind, x, y Value, rt *types.Type) (Value, error) {
	if x.IsFloat() || y.IsFloat() {
		a, b := x.Float(), y.Float()
		t := types.DoubleType
		var v Value
		switch op {
		case token.Plus:
			v = Value{T: t, F: a + b}
		case token.Minus:
			v = Value{T: t, F: a - b}
		case token.Star:
			v = Value{T: t, F: a * b}
		case token.Slash:
			v = Value{T: t, F: a / b}
		case token.Lt:
			v = boolValue(a < b)
		case token.Gt:
			v = boolValue(a > b)
		case token.Le:
			v = boolValue(a <= b)
		case token.Ge:
			v = boolValue(a >= b)
		case token.EqEq:
			v = boolValue(a == b)
		case token.NotEq:
			v = boolValue(a != b)
		default:
			return Value{}, fmt.Errorf("float operands for %s", op)
		}
		if rt != nil && rt.IsArithmetic() {
			return Convert(v, rt), nil
		}
		return v, nil
	}
	a, b := x.Int(), y.Int()
	t := types.IntType
	uns := x.T != nil && x.T.Kind == types.UInt
	if uns {
		t = types.UIntType
	}
	wrap := func(v int64) Value {
		if uns {
			return Value{T: t, I: int64(uint32(v))}
		}
		return Value{T: t, I: int64(int32(v))}
	}
	var v Value
	switch op {
	case token.Plus:
		v = wrap(a + b)
	case token.Minus:
		v = wrap(a - b)
	case token.Star:
		v = wrap(a * b)
	case token.Slash:
		if b == 0 {
			return Value{}, fmt.Errorf("integer division by zero")
		}
		v = wrap(a / b)
	case token.Percent:
		if b == 0 {
			return Value{}, fmt.Errorf("integer modulo by zero")
		}
		v = wrap(a % b)
	case token.Amp:
		v = wrap(a & b)
	case token.Pipe:
		v = wrap(a | b)
	case token.Caret:
		v = wrap(a ^ b)
	case token.Shl:
		v = wrap(a << (uint(b) & 31))
	case token.Shr:
		if uns {
			v = wrap(int64(uint32(a) >> (uint(b) & 31)))
		} else {
			v = wrap(int64(int32(a) >> (uint(b) & 31)))
		}
	case token.Lt:
		v = boolValue(a < b)
	case token.Gt:
		v = boolValue(a > b)
	case token.Le:
		v = boolValue(a <= b)
	case token.Ge:
		v = boolValue(a >= b)
	case token.EqEq:
		v = boolValue(a == b)
	case token.NotEq:
		v = boolValue(a != b)
	default:
		return Value{}, fmt.Errorf("binary op %s unsupported", op)
	}
	if rt != nil && rt.IsArithmetic() {
		return Convert(v, rt), nil
	}
	return v, nil
}

func boolValue(b bool) Value {
	if b {
		return Value{T: types.IntType, I: 1}
	}
	return Value{T: types.IntType, I: 0}
}
