package interp

import (
	"fmt"

	"hsmcc/internal/cc/token"
	"hsmcc/internal/cc/types"
)

// applyBinaryFast is the compiled engine's fusion of applyBinary and
// foldBinary: one float/int classification, one operator dispatch, the
// same cycle charges, folds, wrap-arounds and error messages as the
// two-level reference pair (which stays as the tree-walk path and the
// constant folder). Behaviourally identical by construction; pinned by
// the engine-equivalence golden tests.
func (p *Proc) applyBinaryFast(op token.Kind, x, y Value, rt *types.Type) (Value, error) {
	// Pointer arithmetic: rare; route through the reference path.
	if xt := x.T; xt != nil && xt.IsPointerLike() && (op == token.Plus || op == token.Minus) {
		return p.applyBinary(op, x, y, rt)
	}
	if x.IsFloat() || y.IsFloat() {
		a, b := x.Float(), y.Float()
		t := types.DoubleType
		var v Value
		switch op {
		case token.Plus:
			p.chargeCycles(costFAdd)
			v = Value{T: t, F: a + b}
		case token.Minus:
			p.chargeCycles(costFAdd)
			v = Value{T: t, F: a - b}
		case token.Star:
			p.chargeCycles(costFMul)
			v = Value{T: t, F: a * b}
		case token.Slash:
			p.chargeCycles(costFDiv)
			v = Value{T: t, F: a / b}
		case token.Lt:
			p.chargeCycles(costFAdd)
			v = boolValue(a < b)
		case token.Gt:
			p.chargeCycles(costFAdd)
			v = boolValue(a > b)
		case token.Le:
			p.chargeCycles(costFAdd)
			v = boolValue(a <= b)
		case token.Ge:
			p.chargeCycles(costFAdd)
			v = boolValue(a >= b)
		case token.EqEq:
			p.chargeCycles(costFAdd)
			v = boolValue(a == b)
		case token.NotEq:
			p.chargeCycles(costFAdd)
			v = boolValue(a != b)
		case token.Percent:
			p.chargeCycles(costFDiv)
			return Value{}, fmt.Errorf("float operands for %s", op)
		default:
			p.chargeCycles(costFAdd)
			return Value{}, fmt.Errorf("float operands for %s", op)
		}
		if rt != nil && rt.IsArithmetic() {
			return Convert(v, rt), nil
		}
		return v, nil
	}
	a, b := x.Int(), y.Int()
	t := types.IntType
	uns := x.T != nil && x.T.Kind == types.UInt
	if uns {
		t = types.UIntType
	}
	wrap := func(v int64) Value {
		if uns {
			return Value{T: t, I: int64(uint32(v))}
		}
		return Value{T: t, I: int64(int32(v))}
	}
	var v Value
	switch op {
	case token.Plus:
		p.chargeCycles(costALU)
		v = wrap(a + b)
	case token.Minus:
		p.chargeCycles(costALU)
		v = wrap(a - b)
	case token.Star:
		p.chargeCycles(costIMul)
		v = wrap(a * b)
	case token.Slash:
		p.chargeCycles(costIDiv)
		if b == 0 {
			return Value{}, fmt.Errorf("integer division by zero")
		}
		v = wrap(a / b)
	case token.Percent:
		p.chargeCycles(costIDiv)
		if b == 0 {
			return Value{}, fmt.Errorf("integer modulo by zero")
		}
		v = wrap(a % b)
	case token.Amp:
		p.chargeCycles(costALU)
		v = wrap(a & b)
	case token.Pipe:
		p.chargeCycles(costALU)
		v = wrap(a | b)
	case token.Caret:
		p.chargeCycles(costALU)
		v = wrap(a ^ b)
	case token.Shl:
		p.chargeCycles(costALU)
		v = wrap(a << (uint(b) & 31))
	case token.Shr:
		p.chargeCycles(costALU)
		if uns {
			v = wrap(int64(uint32(a) >> (uint(b) & 31)))
		} else {
			v = wrap(int64(int32(a) >> (uint(b) & 31)))
		}
	case token.Lt:
		p.chargeCycles(costALU)
		v = boolValue(a < b)
	case token.Gt:
		p.chargeCycles(costALU)
		v = boolValue(a > b)
	case token.Le:
		p.chargeCycles(costALU)
		v = boolValue(a <= b)
	case token.Ge:
		p.chargeCycles(costALU)
		v = boolValue(a >= b)
	case token.EqEq:
		p.chargeCycles(costALU)
		v = boolValue(a == b)
	case token.NotEq:
		p.chargeCycles(costALU)
		v = boolValue(a != b)
	default:
		p.chargeCycles(costALU)
		return Value{}, fmt.Errorf("binary op %s unsupported", op)
	}
	if rt != nil && rt.IsArithmetic() {
		return Convert(v, rt), nil
	}
	return v, nil
}

func boolValue(b bool) Value {
	if b {
		return Value{T: types.IntType, I: 1}
	}
	return Value{T: types.IntType, I: 0}
}
