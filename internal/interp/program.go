package interp

import (
	"fmt"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/parser"
	"hsmcc/internal/cc/sema"
	"hsmcc/internal/cc/types"
	"hsmcc/internal/sccsim"
)

// Program is a loadable executable image: the checked AST plus the layout
// of its globals and string literals in the private address space. The
// same Program instantiates once per execution context (each SCC process
// gets its own private copy; baseline threads share their parent's copy).
//
// A Program is IMMUTABLE once Load returns: the layout maps, the function
// tables and every compiled closure are built eagerly and only read
// afterwards. That immutability is a load-bearing contract — one compiled
// Program is shared by any number of concurrent Sims (the grid runner and
// the conformance oracle compile once per workload and fan matrix cells
// out across host cores), so nothing reached from a Program may be
// written during execution. TestProgramSharedAcrossSims pins this under
// the race detector.
type Program struct {
	File  *ast.File
	Info  *sema.Info
	Funcs map[string]*ast.FuncDecl

	// globalAddrs assigns each file-scope variable symbol its address in
	// the private globals segment.
	globalAddrs map[*ast.Symbol]uint32
	// stringAddrs assigns each string literal an address (NUL-terminated
	// bytes in the globals segment).
	stringAddrs map[*ast.StringLit]uint32
	// ImageEnd is the first free private address after globals+strings;
	// the heap starts here.
	ImageEnd uint32

	// funcList gives every defined function a small integer so function
	// values (e.g. pthread_create's third argument) fit in a Value; index
	// i is encoded as i+1 so that 0 stays a null function pointer.
	funcList []*ast.FuncDecl

	// compiled caches the lowered form of every function (compile.go),
	// built once at Load time; compiledList parallels funcList so
	// function values decode to their compiled form without a map lookup.
	compiled     map[*ast.FuncDecl]*compiledFunc
	compiledList []*compiledFunc
	// fullyCompiled reports that no function poisoned back to the
	// tree-walk reference; only then can a session run its contexts as
	// stackless coroutines (the tree-walk can only block on a goroutine).
	fullyCompiled bool
}

// FullyCompiled reports whether every defined function lowered to the
// compiled form — the precondition for the coroutine execution core.
func (pr *Program) FullyCompiled() bool { return pr.fullyCompiled }

// FuncValue returns the value encoding of a defined function.
func (pr *Program) FuncValue(fn *ast.FuncDecl) Value {
	for i, f := range pr.funcList {
		if f == fn {
			return Value{T: types.PointerTo(types.VoidType), I: int64(i + 1)}
		}
	}
	return Value{T: types.PointerTo(types.VoidType)}
}

// FuncByValue decodes a function value back to its declaration.
func (pr *Program) FuncByValue(v Value) *ast.FuncDecl {
	i := int(v.Int()) - 1
	if i < 0 || i >= len(pr.funcList) {
		return nil
	}
	return pr.funcList[i]
}

// compiledByValue decodes a function value to its compiled form.
func (pr *Program) compiledByValue(v Value) *compiledFunc {
	i := int(v.Int()) - 1
	if i < 0 || i >= len(pr.compiledList) {
		return nil
	}
	return pr.compiledList[i]
}

// GlobalsBase is where the globals segment starts in private memory.
const GlobalsBase = sccsim.PrivateBase

// Load lays out a checked file into a Program.
func Load(file *ast.File, info *sema.Info) (*Program, error) {
	pr := &Program{
		File:        file,
		Info:        info,
		Funcs:       make(map[string]*ast.FuncDecl),
		globalAddrs: make(map[*ast.Symbol]uint32),
		stringAddrs: make(map[*ast.StringLit]uint32),
	}
	for _, fn := range file.Funcs() {
		pr.Funcs[fn.Name] = fn
		pr.funcList = append(pr.funcList, fn)
	}
	cursor := GlobalsBase
	align := func(n uint32, a int) uint32 {
		if a <= 1 {
			return n
		}
		ua := uint32(a)
		return (n + ua - 1) / ua * ua
	}
	for _, d := range file.Globals() {
		if d.Sym == nil {
			return nil, fmt.Errorf("interp: global %s has no symbol (sema not run?)", d.Name)
		}
		size := d.Type.Size()
		if size <= 0 {
			size = 4
		}
		cursor = align(cursor, d.Type.Align())
		pr.globalAddrs[d.Sym] = cursor
		cursor += uint32(size)
	}
	// String literals live after the globals, NUL-terminated.
	ast.Inspect(file, func(n ast.Node) bool {
		if s, ok := n.(*ast.StringLit); ok {
			if _, seen := pr.stringAddrs[s]; !seen {
				pr.stringAddrs[s] = cursor
				cursor += uint32(len(s.Value)) + 1
			}
		}
		return true
	})
	pr.ImageEnd = align(cursor, 8)
	compileProgram(pr)
	return pr, nil
}

// Compile parses, checks and loads C source in one step.
func Compile(name, src string) (*Program, error) {
	file, err := parser.Parse(name, src)
	if err != nil {
		return nil, err
	}
	info, err := sema.Analyze(file)
	if err != nil {
		return nil, err
	}
	return Load(file, info)
}

// GlobalAddr returns the private address of a global symbol.
func (pr *Program) GlobalAddr(sym *ast.Symbol) (uint32, bool) {
	a, ok := pr.globalAddrs[sym]
	return a, ok
}

// instantiate writes the image (global initialisers and string bytes)
// into core's private memory on machine m. Globals without initialisers
// stay zero (PageMem zero-fills).
func (pr *Program) instantiate(m *sccsim.Machine, core int) error {
	for _, d := range pr.File.Globals() {
		addr := pr.globalAddrs[d.Sym]
		if d.Init != nil {
			v, err := constValue(d.Init, d.Type)
			if err != nil {
				return fmt.Errorf("interp: global %s: %w", d.Name, err)
			}
			if err := storeRaw(m, core, addr, d.Type, v); err != nil {
				return err
			}
		}
		for i, e := range d.InitLst {
			elem := d.Type.Elem
			if elem == nil {
				return fmt.Errorf("interp: aggregate initialiser on scalar %s", d.Name)
			}
			v, err := constValue(e, elem)
			if err != nil {
				return fmt.Errorf("interp: global %s[%d]: %w", d.Name, i, err)
			}
			if err := storeRaw(m, core, addr+uint32(i*elem.Size()), elem, v); err != nil {
				return err
			}
		}
	}
	for s, addr := range pr.stringAddrs {
		b := append([]byte(s.Value), 0)
		m.WriteBytes(core, addr, b)
	}
	return nil
}

// storeRaw writes a constant without charging simulated time (loader).
func storeRaw(m *sccsim.Machine, core int, addr uint32, t *types.Type, v Value) error {
	buf := make([]byte, t.Size())
	if err := encodeValue(t, Convert(v, t), buf); err != nil {
		return err
	}
	m.WriteBytes(core, addr, buf)
	return nil
}

// constValue folds the constant expressions allowed in global
// initialisers (literals, negation, simple arithmetic).
func constValue(e ast.Expr, want *types.Type) (Value, error) {
	switch n := ast.Unparen(e).(type) {
	case *ast.IntLit:
		return IntValue(types.IntType, n.Value), nil
	case *ast.FloatLit:
		return FloatValue(types.DoubleType, n.Value), nil
	case *ast.CharLit:
		return IntValue(types.CharType, int64(n.Value)), nil
	case *ast.UnaryExpr:
		v, err := constValue(n.X, want)
		if err != nil {
			return Value{}, err
		}
		switch n.Op.String() {
		case "-":
			if v.IsFloat() {
				return FloatValue(v.T, -v.F), nil
			}
			return IntValue(v.T, -v.I), nil
		case "+":
			return v, nil
		}
		return Value{}, fmt.Errorf("non-constant unary initialiser")
	case *ast.BinaryExpr:
		x, err := constValue(n.X, want)
		if err != nil {
			return Value{}, err
		}
		y, err := constValue(n.Y, want)
		if err != nil {
			return Value{}, err
		}
		return foldBinary(n.Op, x, y)
	case *ast.CastExpr:
		v, err := constValue(n.X, n.To)
		if err != nil {
			return Value{}, err
		}
		return Convert(v, n.To), nil
	default:
		return Value{}, fmt.Errorf("non-constant initialiser %T", e)
	}
}
