package interp

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/sccsim"
)

// ProcState is an execution context's scheduling state.
type ProcState int

// Proc states.
const (
	Runnable ProcState = iota
	Running
	Blocked
	Done
)

// Policy picks the next context to run. Next must return nil only when no
// proc is Runnable.
type Policy interface {
	Next(procs []*Proc) *Proc
}

// MinClock schedules the runnable context with the smallest virtual time
// (ties broken by lowest ID): the policy for multi-core RCCE execution,
// which keeps cross-core memory events approximately time-ordered.
type MinClock struct{}

// Next implements Policy.
func (MinClock) Next(procs []*Proc) *Proc {
	var best *Proc
	for _, p := range procs {
		if p.State != Runnable {
			continue
		}
		if best == nil || p.Clock < best.Clock || (p.Clock == best.Clock && p.ID < best.ID) {
			best = p
		}
	}
	return best
}

// Runtime supplies the environment-specific builtins (pthread or RCCE)
// and scheduling hooks.
type Runtime interface {
	// CallBuiltin dispatches a runtime function; handled=false passes the
	// call to the interpreter's common builtins. A builtin that calls a
	// yield-capable primitive (ChargeCycles, Block, Yield, the typed
	// accessors) must follow the coroutine resumption protocol: push a
	// continuation with PushResume before propagating a yield, pop it
	// with PopResume when re-entered with Resuming true, and never
	// yield before committing to handle the call.
	CallBuiltin(p *Proc, name string, args []Value) (v Value, handled bool, err error)
	// Tick runs at statement boundaries (preemption hook). It must not
	// yield or block.
	Tick(p *Proc)
	// OnExit runs when a context finishes (wakes joiners, etc.).
	OnExit(p *Proc)
}

// YieldEvery is how many timed memory accesses a context performs before
// cooperatively yielding, bounding how far one context's virtual clock can
// run ahead between scheduling decisions.
const YieldEvery = 32

// StackBytes is the stack reserved per execution context.
const StackBytes = 256 * 1024

// Sim is one simulation session: a machine, a loaded program, a runtime
// and the set of execution contexts. The Program is the immutable
// compiled half — one Program may back any number of concurrent Sims —
// while the Sim carries every piece of per-run mutable state (context
// set, heaps, stack slots, output).
type Sim struct {
	Machine *sccsim.Machine
	Program *Program
	Runtime Runtime
	Policy  Policy
	// Engine selects the execution engine (compiled by default; the
	// tree-walk reference for golden comparisons). Set before Spawn.
	Engine Engine
	// Prof, when non-nil, observes every timed data-memory access of the
	// session (see MemProfiler). Set before Spawn; profiling runs attach
	// a profile.Collector here, everything else leaves it nil.
	Prof MemProfiler
	// Cancel, when non-nil, is polled at every scheduling decision (one
	// call per context switch, both engines). A non-nil return aborts
	// the session promptly with that error: in-flight contexts unwind,
	// Run returns the error, and no further work is scheduled. The
	// serving layer wires a request context's Err here so a wall-clock
	// deadline or client disconnect stops a simulation mid-flight.
	Cancel func() error
	// Trace, when non-nil, observes every scheduling event of the
	// session (see TraceSink). Set before Spawn; like Prof it is
	// observation-only and excluded from cache fingerprints.
	Trace TraceSink
	Out   bytes.Buffer

	procs  []*Proc
	nextID int
	// per-core bump allocators (threads share their core's heap).
	heaps  map[int]uint32
	stacks map[int]int // stack slots ever handed out on this core
	// freeStacks recycles the slots of finished contexts so long-running
	// programs that repeatedly create and join threads (LU does one
	// round per elimination step) do not exhaust the address space.
	freeStacks map[int][]int
	// doneMax preserves the completion times of compacted contexts.
	doneMax sccsim.Time
	done    int // finished contexts still in procs
	err     error
	halted  bool
	// coro is true when contexts run as stackless coroutines stepped by
	// runCoro (the compiled engine on a fully-compiled program); false
	// runs the goroutine-per-context handoff chain (tree-walk reference,
	// or a program with compiler-poisoned functions). Fixed at the first
	// Spawn, when the engine choice is final.
	coro    bool
	modeSet bool
	// elected carries the successor chosen by a suspending coroutine to
	// the stepping loop, so each scheduling event makes exactly one
	// Policy.Next call in both modes.
	elected      *Proc
	electedValid bool
	// ctrl wakes Run when a goroutine-mode session finishes (all done,
	// deadlock, or error). Contexts hand off to each other directly; Run
	// only sees the first dispatch and the final signal.
	ctrl chan struct{}
}

// NewSim builds a session. The runtime must be attached by the caller
// before Run (pthreadrt and rcce packages do this).
func NewSim(m *sccsim.Machine, pr *Program) *Sim {
	return &Sim{
		Machine:    m,
		Program:    pr,
		Policy:     NewMinClockHeap(),
		Engine:     DefaultEngine,
		heaps:      make(map[int]uint32),
		stacks:     make(map[int]int),
		freeStacks: make(map[int][]int),
		ctrl:       make(chan struct{}, 1),
	}
}

// Procs returns the spawned contexts.
func (s *Sim) Procs() []*Proc { return s.procs }

// Coroutine reports whether the session runs contexts as stackless
// coroutines (no goroutine, no channel op per context switch).
func (s *Sim) Coroutine() bool { return s.coro }

// decideMode fixes the execution mode at the first Spawn: coroutines
// need every function in compiled form (a poisoned function would have
// to block inside the tree-walk, which only the goroutine engine can).
func (s *Sim) decideMode() {
	if s.modeSet {
		return
	}
	s.modeSet = true
	s.Engine = s.Engine.Resolve()
	s.coro = s.Engine != EngineTreeWalk && s.Program.FullyCompiled()
}

// Spawn creates an execution context on core that will run fn(args) when
// first scheduled, starting at virtual time start. The program image is
// instantiated into the core's private memory the first time a context
// lands on that core.
func (s *Sim) Spawn(core int, fn *ast.FuncDecl, args []Value, start sccsim.Time) (*Proc, error) {
	if core < 0 || core >= s.Machine.Cores() {
		return nil, fmt.Errorf("interp: spawn on core %d of %d", core, s.Machine.Cores())
	}
	s.decideMode()
	if _, loaded := s.heaps[core]; !loaded {
		if err := s.Program.instantiate(s.Machine, core); err != nil {
			return nil, err
		}
		s.heaps[core] = s.Program.ImageEnd
	}
	var idx int
	if free := s.freeStacks[core]; len(free) > 0 {
		idx = free[len(free)-1]
		s.freeStacks[core] = free[:len(free)-1]
	} else {
		idx = s.stacks[core]
		s.stacks[core]++
	}
	const maxSlots = int((sccsim.PrivateLimit - sccsim.PrivateBase) / 2 / StackBytes)
	if idx >= maxSlots {
		return nil, fmt.Errorf("interp: core %d out of stack space (%d live contexts)", core, idx)
	}
	p := &Proc{
		Sim:      s,
		ID:       s.nextID,
		Core:     core,
		Clock:    start,
		State:    Runnable,
		stackIdx: idx,
		fn:       fn,
		args:     args,
		prof:     s.Prof,
		trace:    s.Trace,
	}
	p.stackTop = sccsim.PrivateLimit - uint32(idx*StackBytes)
	p.stackPtr = p.stackTop
	p.timer = s.Machine.Timer(core)
	s.nextID++
	s.procs = append(s.procs, p)
	s.noteRunnable(p)
	if p.trace != nil {
		p.trace.TraceSpawn(p.ID, p.Core, start)
	}
	if s.coro {
		// Adopt pooled buffers: the resumption stack comes pre-reserved
		// (growth inside an unwind would add allocation noise to the hot
		// switch path) and a recycled bundle carries every arena at its
		// previous high-water capacity, so steady-state spawns allocate
		// nothing.
		p.adoptScratch()
		if cf := s.Program.compiled[fn]; cf != nil && !cf.fallback {
			p.rootCF = cf
		}
	} else {
		p.resume = make(chan struct{})
		go p.top()
	}
	return p, nil
}

// Run executes the session to completion and returns the first runtime
// error, if any. Coroutine sessions step contexts from a plain loop on
// the calling goroutine; goroutine-mode sessions start the handoff
// chain — contexts pick their successor and resume it directly, and a
// context that reschedules itself performs no channel operation at all.
func (s *Sim) Run() error {
	s.decideMode()
	if s.coro {
		return s.runCoro()
	}
	defer s.stopAll()
	s.handoff(s.pickNext())
	<-s.ctrl
	if s.err != nil {
		return s.err
	}
	if s.allDone() {
		return nil
	}
	return fmt.Errorf("interp: deadlock: %s", s.stateSummary())
}

// handoff transfers control to next (resuming its goroutine), or signals
// Run that nothing is runnable. Exactly one goroutine holds control at a
// time; every transfer is a single channel send.
func (s *Sim) handoff(next *Proc) {
	if next == nil {
		s.ctrl <- struct{}{}
		return
	}
	next.State = Running
	if next.trace != nil {
		// The coroutine stepping loop fires the same hook at the same
		// Runnable→Running edge, after the policy's clock adjustments.
		next.trace.TraceResume(next.ID, next.Core, next.Clock)
	}
	next.resume <- struct{}{}
}

// pickNext compacts if due and asks the policy for the next context.
// It is the single choke point every scheduling decision of both
// engines passes through, so it also polls the session's Cancel hook:
// on cancellation it records the error and elects nobody, which makes
// the goroutine engine signal Run (stopAll then unwinds the parked
// contexts) and the coroutine stepping loop fall out of its loop.
func (s *Sim) pickNext() *Proc {
	if s.Cancel != nil && s.err == nil {
		if err := s.Cancel(); err != nil {
			s.fail(fmt.Errorf("interp: session canceled: %w", err))
			return nil
		}
	}
	if s.done >= 64 && s.done*2 >= len(s.procs) {
		s.compact()
	}
	return s.Policy.Next(s.procs)
}

// noteRunnable tells a notification-aware policy (the min-clock heap)
// that p became runnable or changed clock while runnable.
func (s *Sim) noteRunnable(p *Proc) {
	if n, ok := s.Policy.(runnableNotifier); ok {
		n.NoteRunnable(p)
	}
}

// compact drops finished contexts from the scheduling scan once they
// outnumber the live ones, keeping Next() cheap for programs that spawn
// thousands of short-lived threads.
func (s *Sim) compact() {
	live := s.procs[:0]
	for _, p := range s.procs {
		if p.State == Done {
			if p.Clock > s.doneMax {
				s.doneMax = p.Clock
			}
			continue
		}
		live = append(live, p)
	}
	s.procs = live
	s.done = 0
}

// Makespan returns the latest completion time across contexts.
func (s *Sim) Makespan() sccsim.Time {
	end := s.doneMax
	for _, p := range s.procs {
		if p.Clock > end {
			end = p.Clock
		}
	}
	return end
}

// Output returns everything the program printed.
func (s *Sim) Output() string { return s.Out.String() }

func (s *Sim) allDone() bool {
	for _, p := range s.procs {
		if p.State != Done {
			return false
		}
	}
	return true
}

func (s *Sim) stateSummary() string {
	counts := map[ProcState]int{}
	for _, p := range s.procs {
		counts[p.State]++
	}
	var keys []int
	for k := range counts {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	buf := ""
	names := map[ProcState]string{Runnable: "runnable", Running: "running", Blocked: "blocked", Done: "done"}
	for _, k := range keys {
		buf += fmt.Sprintf(" %d %s", counts[ProcState(k)], names[ProcState(k)])
	}
	return buf
}

// stopAll terminates any still-live context goroutines (error paths).
func (s *Sim) stopAll() {
	s.halted = true
	for _, p := range s.procs {
		if p.State != Done && p.resume != nil {
			close(p.resume)
		}
	}
}

// fail records the first runtime error.
func (s *Sim) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// top is the context goroutine body (goroutine mode only).
func (p *Proc) top() {
	if !p.acquire() {
		return
	}
	v, err := p.call(p.fn, p.args)
	p.finish(v, err)
	s := p.Sim
	if s.err != nil {
		// The session stops on the first error without scheduling more
		// work, as the original run loop did.
		s.ctrl <- struct{}{}
		return
	}
	s.handoff(s.pickNext())
}

// acquire waits to be scheduled; false means the session was torn down.
func (p *Proc) acquire() bool {
	_, ok := <-p.resume
	if !ok {
		runtime.Goexit()
	}
	return ok
}

// Yield cooperatively gives up the processor while staying runnable.
// When the policy re-elects the yielding context — the common case under
// both the round-robin baseline (within a quantum) and min-clock once a
// context owns the smallest time — control returns without suspending at
// all. In goroutine mode the call blocks until re-elected and returns
// nil; in coroutine mode it returns the yield sentinel, which the caller
// propagates (pushing its resumption frame) to the stepping loop.
func (p *Proc) Yield() error {
	if p.Sim.coro {
		return p.yieldCoro()
	}
	p.State = Runnable
	p.lastYield = p.Clock
	s := p.Sim
	s.noteRunnable(p)
	next := s.pickNext()
	if next == p {
		p.State = Running
		return nil
	}
	if p.trace != nil {
		p.trace.TraceSuspend(p.ID, p.Core, p.Clock, SuspendYield, ReasonNone)
	}
	s.handoff(next)
	p.acquire()
	return nil
}

// Block parks the context until another context calls Unblock. The same
// mode split as Yield applies: goroutine mode blocks and returns nil,
// coroutine mode returns the yield sentinel to propagate.
func (p *Proc) Block() error {
	if p.Sim.coro {
		return p.blockCoro()
	}
	p.State = Blocked
	p.lastYield = p.Clock
	if p.trace != nil {
		p.trace.TraceSuspend(p.ID, p.Core, p.Clock, SuspendBlock, p.takeBlockReason())
	}
	s := p.Sim
	s.handoff(s.pickNext())
	p.acquire()
	return nil
}

// Unblock makes a parked context runnable again, advancing its clock to
// at least `at` (the virtual time of the event that released it).
func (p *Proc) Unblock(at sccsim.Time) {
	if at > p.Clock {
		p.Clock = at
	}
	if p.State == Blocked {
		p.State = Runnable
		if p.trace != nil {
			p.trace.TraceUnblock(p.ID, p.Core, p.Clock)
		}
	}
	if p.State == Runnable {
		p.Sim.noteRunnable(p)
	}
}

// takeBlockReason consumes the tag a BlockFor caller left for the one
// suspension it precedes.
func (p *Proc) takeBlockReason() BlockReason {
	r := p.blockReason
	p.blockReason = ReasonNone
	return r
}
