package interp

import (
	"testing"

	"hsmcc/internal/sccsim"
)

// coroProgram is a compute+memory kernel that exercises yields (memory
// cadence and clock horizon) without needing a runtime.
const coroProgram = `
int a[64];
int work(int n) {
  int i; int s;
  s = 0;
  for (i = 0; i < n; i++) { a[i % 64] = a[i % 64] + i; s = s + a[i % 64]; }
  return s;
}
int main() {
  printf("s %d\n", work(20000));
  return 0;
}`

// TestCoroutineModeEngaged pins the mode decision: a fully-compiled
// program under the compiled engine runs as coroutines; the tree-walk
// reference keeps the goroutine scheduler.
func TestCoroutineModeEngaged(t *testing.T) {
	pr, err := Compile("c.c", coroProgram)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.FullyCompiled() {
		t.Fatal("kernel should compile fully")
	}
	sim := NewSim(sccsim.MustNew(sccsim.DefaultConfig()), pr)
	sim.Engine = EngineCompiled
	if _, err := sim.Spawn(0, pr.Funcs["main"], nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !sim.Coroutine() {
		t.Error("compiled engine on a fully-compiled program should run coroutines")
	}

	ref := NewSim(sccsim.MustNew(sccsim.DefaultConfig()), pr)
	ref.Engine = EngineTreeWalk
	if _, err := ref.Spawn(0, pr.Funcs["main"], nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	if ref.Coroutine() {
		t.Error("tree-walk engine must not run coroutines")
	}
	if sim.Output() != ref.Output() {
		t.Errorf("engine outputs differ: %q vs %q", sim.Output(), ref.Output())
	}
	if sim.Makespan() != ref.Makespan() {
		t.Errorf("engine makespans differ: %d vs %d", sim.Makespan(), ref.Makespan())
	}
}

// TestCoroutineFallOffEndReturn pins the return-cell arena against the
// resume-depth bug: a function that suspends inside a nested call and
// then completes WITHOUT a value-returning return statement must yield
// the zero Value, exactly like the tree-walk reference — not whatever
// the nested call left in the arena. Needs two contexts so the yields
// actually suspend.
func TestCoroutineFallOffEndReturn(t *testing.T) {
	pr, err := Compile("f.c", `
int a[64];
int helper(int n) {
  int i; int s;
  s = 0;
  for (i = 0; i < n; i++) { a[i % 64] = a[i % 64] + i; s = s + a[i % 64]; }
  return s;
}
int noret(int n) { helper(n); }
int worker(int me) {
  printf("v%d %d\n", me, noret(20000));
  return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	run := func(e Engine) *Sim {
		sim := NewSim(sccsim.MustNew(sccsim.DefaultConfig()), pr)
		sim.Engine = e
		for core := 0; core < 2; core++ {
			if _, err := sim.Spawn(core, pr.Funcs["worker"], []Value{IntValue(nil, int64(core))}, 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return sim
	}
	coro := run(EngineCompiled)
	if !coro.Coroutine() {
		t.Fatal("expected coroutine mode")
	}
	ref := run(EngineTreeWalk)
	if coro.Output() != ref.Output() {
		t.Errorf("fall-off-the-end return diverged:\ncoroutine:\n%s\ntree-walk:\n%s", coro.Output(), ref.Output())
	}
}

// TestSchedulerParityHeapVsLinearCoroutine pins the min-clock heap
// against the linear-scan oracle under the coroutine engine: multiple
// contexts interleaving through yields must produce byte-identical
// output and identical per-context clocks with either policy.
func TestSchedulerParityHeapVsLinearCoroutine(t *testing.T) {
	pr, err := Compile("p.c", `
int a[64];
int worker(int me) {
  int i; int s;
  s = 0;
  for (i = 0; i < 6000; i++) { a[(i + me) % 64] = a[(i + me) % 64] + me; s = s + a[(i + me) % 64]; }
  printf("w%d %d\n", me, s);
  return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	run := func(pol Policy) (*Sim, error) {
		sim := NewSim(sccsim.MustNew(sccsim.DefaultConfig()), pr)
		sim.Engine = EngineCompiled
		sim.Policy = pol
		for core := 0; core < 4; core++ {
			if _, err := sim.Spawn(core, pr.Funcs["worker"], []Value{IntValue(nil, int64(core))}, 0); err != nil {
				return nil, err
			}
		}
		return sim, sim.Run()
	}
	heap, err := run(NewMinClockHeap())
	if err != nil {
		t.Fatal(err)
	}
	if !heap.Coroutine() {
		t.Fatal("expected coroutine mode")
	}
	linear, err := run(MinClock{})
	if err != nil {
		t.Fatal(err)
	}
	if heap.Output() != linear.Output() {
		t.Errorf("policy outputs diverge:\nheap:\n%s\nlinear:\n%s", heap.Output(), linear.Output())
	}
	if heap.Makespan() != linear.Makespan() {
		t.Errorf("policy makespans diverge: %d vs %d", heap.Makespan(), linear.Makespan())
	}
	hp, lp := heap.Procs(), linear.Procs()
	for i := range hp {
		if hp[i].Clock != lp[i].Clock {
			t.Errorf("proc %d clock: heap %d vs linear %d", i, hp[i].Clock, lp[i].Clock)
		}
	}
}
