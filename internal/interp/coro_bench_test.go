package interp

import (
	"fmt"
	"testing"

	"hsmcc/internal/sccsim"
)

// switchKernel is the switch-dense microbenchmark kernel: every context
// touches memory on each iteration through a two-deep call chain, so the
// cooperative cadence (YieldEvery plus the clock-skew horizon) forces a
// scheduler election every few statements and each suspension unwinds —
// and each resume re-descends — a realistic frame stack (main → for →
// block → call → for → block → assignment). The per-iteration compute is
// deliberately tiny: the benchmark measures the context-switch machinery,
// not the simulated memory system.
const switchKernel = `
int a[64];
int inner(int me, int lo, int n) {
  int i; int s;
  s = 0;
  for (i = lo; i < lo + n; i++) {
    a[(i + me) % 64] = a[(i + me) % 64] + me;
    s = s + a[(i + me) % 64];
  }
  return s;
}
int worker(int me) {
  int r; int s;
  s = 0;
  for (r = 0; r < 50; r++) {
    s = s + inner(me, r * 40, 40);
  }
  return s;
}`

// runSwitchKernel spawns one context per core and runs the session to
// completion under the session-default engine (the HSMCC_ENGINE seam),
// so the benchguard gate can drive the same kernel through both engines
// from one binary.
func runSwitchKernel(b *testing.B, pr *Program, contexts int) *Sim {
	cfg := sccsim.DefaultConfig()
	sim := NewSim(sccsim.MustNew(cfg), pr)
	for c := 0; c < contexts; c++ {
		core := c % cfg.Cores
		if _, err := sim.Spawn(core, pr.Funcs["worker"], []Value{IntValue(nil, int64(c))}, 0); err != nil {
			b.Fatal(err)
		}
	}
	if err := sim.Run(); err != nil {
		b.Fatal(err)
	}
	if DefaultEngine == EngineCompiled && !sim.Coroutine() {
		b.Fatal("expected coroutine mode")
	}
	return sim
}

// BenchmarkContextSwitch measures the coroutine resume hot path under
// scheduler pressure: 32 contexts interleaving at the memory-op yield
// cadence. It is one of the benchguard gate's inputs — the tree-walk
// engine runs the same kernel through its goroutine handoff chain, and
// the coroutine engine must keep a geomean margin over it (see
// .github/workflows/ci.yml and docs/PERFORMANCE.md).
func BenchmarkContextSwitch(b *testing.B) {
	pr, err := Compile("switch.c", switchKernel)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runSwitchKernel(b, pr, 32)
	}
}

// BenchmarkContextSwitchDeep is the same kernel at 256 contexts
// oversubscribed across the default 48-core machine — the regime where
// per-switch cost dominates end-to-end time.
func BenchmarkContextSwitchDeep(b *testing.B) {
	pr, err := Compile("switch.c", switchKernel)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runSwitchKernel(b, pr, 256)
	}
}

// BenchmarkPickNext measures one scheduling election at 1024 runnable
// contexts: the MinClockHeap pop/push pair that every context switch of
// a mesh1024-scale simulation pays.
func BenchmarkPickNext(b *testing.B) {
	for _, n := range []int{48, 1024} {
		b.Run(fmt.Sprintf("contexts=%d", n), func(b *testing.B) {
			pol := NewMinClockHeap()
			procs := make([]*Proc, n)
			for i := range procs {
				procs[i] = &Proc{ID: i, State: Runnable, Clock: sccsim.Time(i * 977)}
				pol.NoteRunnable(procs[i])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pol.Next(procs)
				if p == nil {
					b.Fatal("no runnable context")
				}
				// Advance the elected context and requeue it, as a yield does.
				p.Clock += 104729
				pol.NoteRunnable(p)
			}
		})
	}
}
