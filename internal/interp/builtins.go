package interp

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/types"
)

// evalCall dispatches a call: defined functions first (directly by name
// or through a function pointer), then the runtime's builtins, then the
// interpreter's common libc subset.
func (p *Proc) evalCall(n *ast.CallExpr) (Value, error) {
	name := n.FuncName()

	// Indirect call through an expression or function-valued variable.
	if name == "" || (n.Fun.ResultType() != nil && p.Sim.Program.Funcs[name] == nil && !isKnownBuiltin(name)) {
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Sym != nil && id.Sym.Kind != ast.SymFunc {
			fv, err := p.evalExpr(n.Fun)
			if err != nil {
				return Value{}, err
			}
			if fn := p.Sim.Program.FuncByValue(fv); fn != nil {
				args, err := p.evalArgs(n.Args)
				if err != nil {
					return Value{}, err
				}
				return p.call(fn, args)
			}
		}
	}

	if fn, ok := p.Sim.Program.Funcs[name]; ok && fn.Body != nil {
		args, err := p.evalArgs(n.Args)
		if err != nil {
			return Value{}, err
		}
		return p.call(fn, args)
	}

	args, err := p.evalArgs(n.Args)
	if err != nil {
		return Value{}, err
	}
	if rt := p.Sim.Runtime; rt != nil {
		v, handled, err := rt.CallBuiltin(p, name, args)
		if err != nil {
			return Value{}, err
		}
		if handled {
			return v, nil
		}
	}
	v, handled, err := p.commonBuiltin(name, args)
	if err != nil {
		return Value{}, err
	}
	if handled {
		return v, nil
	}
	return Value{}, fmt.Errorf("%s: call of unknown function %s", n.Pos(), name)
}

func (p *Proc) evalArgs(exprs []ast.Expr) ([]Value, error) {
	args := make([]Value, len(exprs))
	for i, e := range exprs {
		v, err := p.evalExpr(e)
		if err != nil {
			return nil, err
		}
		args[i] = v
		if err := p.chargeCycles(costALU); err != nil { // argument push
			return nil, err
		}
	}
	return args, nil
}

func isKnownBuiltin(name string) bool {
	return commonBuiltinID(name) != bNone ||
		strings.HasPrefix(name, "pthread_") || strings.HasPrefix(name, "RCCE_")
}

// builtinID is an interned common-builtin identity; the compiled engine
// resolves call sites to IDs once so the hot path dispatches on a small
// integer instead of comparing strings.
type builtinID int

// Interned common builtins (bNone means "not a common builtin").
const (
	bNone builtinID = iota
	bPrintf
	bMalloc
	bCalloc
	bFree
	bMemset
	bMemcpy
	bExit
	bAtoi
	bSqrt
	bFabs
	bWallclock
)

// commonBuiltinID interns a callee name.
func commonBuiltinID(name string) builtinID {
	switch name {
	case "printf":
		return bPrintf
	case "malloc", "RCCE_malloc_request":
		return bMalloc
	case "calloc":
		return bCalloc
	case "free":
		return bFree
	case "memset":
		return bMemset
	case "memcpy":
		return bMemcpy
	case "exit", "abort":
		return bExit
	case "atoi":
		return bAtoi
	case "sqrt":
		return bSqrt
	case "fabs":
		return bFabs
	case "wallclock":
		return bWallclock
	}
	return bNone
}

// commonBuiltin implements the runtime-independent libc subset (the
// tree-walk engine's string-keyed entry point).
func (p *Proc) commonBuiltin(name string, args []Value) (Value, bool, error) {
	return p.commonBuiltinByID(commonBuiltinID(name), args)
}

// commonBuiltinByID dispatches an interned common builtin. Every builtin
// follows the coroutine resumption protocol: all side effects that must
// not repeat (output formatting, heap allocation, machine accesses)
// happen before the single trailing charge, and a frame carries whatever
// the post-charge epilogue needs (the formatted text, the allocated
// address, the computed result).
func (p *Proc) commonBuiltinByID(id builtinID, args []Value) (Value, bool, error) {
	var fr kframe
	if p.coResuming {
		fr = p.popK()
	}
	switch id {
	case bPrintf:
		var out string
		if fr.step == 0 {
			if len(args) == 0 {
				return Value{}, true, fmt.Errorf("printf without format")
			}
			format := p.ReadCString(args[0].Addr())
			var err error
			out, err = p.formatC(format, args[1:])
			if err != nil {
				return Value{}, true, err
			}
			if err := p.chargeCycles(costCall + len(out)); err != nil { // I/O cost proportional to text
				p.pushK(kframe{step: 1, x: out})
				return Value{}, true, err
			}
		} else {
			out = fr.x.(string)
		}
		p.Sim.Out.WriteString(out)
		return IntValue(types.IntType, int64(len(out))), true, nil

	case bMalloc: // private heap (also RCCE_malloc_request)
		addr := fr.a
		if fr.step == 0 {
			addr = p.heapAlloc(int(args[0].Int()))
			if err := p.chargeCycles(costCall * 4); err != nil {
				p.pushK(kframe{step: 1, a: addr})
				return Value{}, true, err
			}
		}
		return PtrValue(types.PointerTo(types.VoidType), addr), true, nil

	case bCalloc:
		addr := fr.a
		if fr.step == 0 {
			n := int(args[0].Int() * args[1].Int())
			addr = p.heapAlloc(n)
			// PageMem zero-fills fresh pages; the bump allocator never
			// reuses, so the region is already zero.
			if err := p.chargeCycles(costCall*4 + n/8); err != nil {
				p.pushK(kframe{step: 1, a: addr})
				return Value{}, true, err
			}
		}
		return PtrValue(types.PointerTo(types.VoidType), addr), true, nil

	case bFree:
		if fr.step == 0 {
			if err := p.chargeCycles(costCall); err != nil {
				p.pushK(kframe{step: 1})
				return Value{}, true, err
			}
		}
		return Value{T: types.VoidType}, true, nil

	case bMemset:
		if fr.step == 0 {
			addr, val, n := args[0].Addr(), byte(args[1].Int()), int(args[2].Int())
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = val
			}
			p.Clock += p.Sim.Machine.Store(p.Core, addr, buf, p.Clock)
			// One timed machine access, one profiler report (mirrors
			// the Machine's own per-call accounting); the store has
			// completed, so a yield below never re-issues it.
			if p.prof != nil {
				p.prof.NoteAccess(p.Core, addr, true)
			}
			if err := p.chargeCycles(n / 4); err != nil {
				p.pushK(kframe{step: 1})
				return Value{}, true, err
			}
		}
		return args[0], true, nil

	case bMemcpy:
		if fr.step == 0 {
			dst, src, n := args[0].Addr(), args[1].Addr(), int(args[2].Int())
			buf := make([]byte, n)
			p.Clock += p.Sim.Machine.Load(p.Core, src, buf, p.Clock)
			p.Clock += p.Sim.Machine.Store(p.Core, dst, buf, p.Clock)
			if p.prof != nil {
				p.prof.NoteAccess(p.Core, src, false)
				p.prof.NoteAccess(p.Core, dst, true)
			}
			if err := p.chargeCycles(n / 4); err != nil {
				p.pushK(kframe{step: 1})
				return Value{}, true, err
			}
		}
		return args[0], true, nil

	case bExit:
		return Value{}, true, errThreadExit

	case bAtoi:
		v := fr.n
		if fr.step == 0 {
			s := p.ReadCString(args[0].Addr())
			iv, _ := strconv.Atoi(strings.TrimSpace(s))
			v = int64(iv)
			if err := p.chargeCycles(costCall + 4*len(s)); err != nil {
				p.pushK(kframe{step: 1, n: v})
				return Value{}, true, err
			}
		}
		return IntValue(types.IntType, v), true, nil

	case bSqrt:
		if fr.step == 0 {
			if err := p.chargeCycles(70); err != nil { // P54C FSQRT
				p.pushK(kframe{step: 1})
				return Value{}, true, err
			}
		}
		return FloatValue(types.DoubleType, math.Sqrt(args[0].Float())), true, nil

	case bFabs:
		if fr.step == 0 {
			if err := p.chargeCycles(costFAdd); err != nil {
				p.pushK(kframe{step: 1})
				return Value{}, true, err
			}
		}
		return FloatValue(types.DoubleType, math.Abs(args[0].Float())), true, nil

	case bWallclock:
		if fr.step == 0 {
			if err := p.chargeCycles(costCall); err != nil {
				p.pushK(kframe{step: 1})
				return Value{}, true, err
			}
		}
		return FloatValue(types.DoubleType, p.Seconds()), true, nil
	}
	return Value{}, false, nil
}

// formatC renders a C printf format with the given arguments.
func (p *Proc) formatC(format string, args []Value) (string, error) {
	var sb strings.Builder
	ai := 0
	next := func() (Value, error) {
		if ai >= len(args) {
			return Value{}, fmt.Errorf("printf: missing argument %d for %q", ai, format)
		}
		v := args[ai]
		ai++
		return v, nil
	}
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			sb.WriteByte(c)
			continue
		}
		// Collect the spec: flags, width, precision, length modifiers.
		j := i + 1
		for j < len(format) && strings.ContainsRune("-+ #0123456789.", rune(format[j])) {
			j++
		}
		for j < len(format) && (format[j] == 'l' || format[j] == 'h') {
			j++
		}
		if j >= len(format) {
			sb.WriteByte('%')
			break
		}
		spec := strings.Map(func(r rune) rune {
			if r == 'l' || r == 'h' {
				return -1
			}
			return r
		}, format[i+1:j])
		verb := format[j]
		i = j
		switch verb {
		case '%':
			sb.WriteByte('%')
		case 'd', 'i':
			v, err := next()
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "%"+spec+"d", v.Int())
		case 'u':
			v, err := next()
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "%"+spec+"d", uint32(v.Int()))
		case 'x', 'X', 'o':
			v, err := next()
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "%"+spec+string(verb), uint32(v.Int()))
		case 'c':
			v, err := next()
			if err != nil {
				return "", err
			}
			sb.WriteByte(byte(v.Int()))
		case 'f', 'F', 'e', 'E', 'g', 'G':
			v, err := next()
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "%"+spec+string(verb), v.Float())
		case 's':
			v, err := next()
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "%"+spec+"s", p.ReadCString(v.Addr()))
		case 'p':
			v, err := next()
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "0x%x", uint32(v.Int()))
		default:
			return "", fmt.Errorf("printf: unsupported verb %%%c", verb)
		}
	}
	return sb.String(), nil
}
