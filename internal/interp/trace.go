package interp

import "hsmcc/internal/sccsim"

// Scheduler tracing follows the MemProfiler pattern: an interface the
// session owner attaches before Spawn, a nil-check at each hook site,
// and hook placement restricted to code paths the two execution engines
// share, so an attached sink observes the exact same event sequence —
// same contexts, same clocks, same order — under the tree-walk and the
// coroutine engine. The hooks only observe (they never charge time or
// touch scheduling state), so simulation output and cycle statistics
// are identical with tracing on or off.
//
// Hook sites and their cross-engine twins:
//
//   - TraceSpawn: Sim.Spawn (engine-independent).
//   - TraceResume: the elected context's Runnable→Running transition —
//     handoff in goroutine mode, the runCoro stepping loop in coroutine
//     mode. A self-reelected yielder suspends nothing and resumes
//     nothing: its run slice simply continues.
//   - TraceSuspend: Yield/yieldCoro after the self-reelect check (kind
//     SuspendYield), Block/blockCoro (SuspendBlock with the reason a
//     BlockFor caller tagged), and finish (SuspendFinish; finish itself
//     is shared by both engines).
//   - TraceUnblock: Proc.Unblock's Blocked→Runnable edge, after the
//     clock advanced to the release time.
//   - TraceSpin: Proc.NoteSpin, called by runtimes once per failed
//     test-and-set round of a spin lock.
//
// The suspend event carries the context's clock at the moment it gave
// up the processor; the resume event carries its clock when it next got
// it (which may be later — a policy can charge switch costs inside
// Next). A recorder reconstructs per-context run slices as
// [resume clock, suspend clock] and blocked intervals as
// [suspend clock, unblock clock] without any engine-divergent state.

// SuspendKind says why a context gave up the processor.
type SuspendKind uint8

// Suspension kinds.
const (
	SuspendYield  SuspendKind = iota // cooperative yield, still runnable
	SuspendBlock                     // parked until Unblock
	SuspendFinish                    // context completed
)

// BlockReason classifies a SuspendBlock for the stall breakdown.
// Runtimes tag their Block calls through BlockFor.
type BlockReason uint8

// Block reasons.
const (
	ReasonNone    BlockReason = iota
	ReasonMutex               // pthread_mutex_lock wait
	ReasonBarrier             // RCCE_barrier wait
	ReasonJoin                // pthread_join wait
	ReasonSend                // rendezvous send waiting for the drain
	ReasonRecv                // rendezvous recv waiting for the message
)

// String returns the stable lower-case name used in trace exports.
func (r BlockReason) String() string {
	switch r {
	case ReasonMutex:
		return "mutex"
	case ReasonBarrier:
		return "barrier"
	case ReasonJoin:
		return "join"
	case ReasonSend:
		return "send"
	case ReasonRecv:
		return "recv"
	}
	return "block"
}

// NumBlockReasons is the size of the BlockReason enumeration (for
// fixed-size per-reason accumulators).
const NumBlockReasons = int(ReasonRecv) + 1

// TraceSink observes scheduling events of a session. Implementations
// must be cheap and need no locking (one context of a session runs at a
// time, and the hooks fire from the scheduling paths only — never from
// the per-access memory hot path). A nil sink — the default — costs a
// single pointer check per context switch.
type TraceSink interface {
	TraceSpawn(ctx, core int, at sccsim.Time)
	TraceResume(ctx, core int, at sccsim.Time)
	TraceSuspend(ctx, core int, at sccsim.Time, kind SuspendKind, reason BlockReason)
	TraceUnblock(ctx, core int, at sccsim.Time)
	TraceSpin(ctx, core int, at sccsim.Time, backoff int)
}

// MachineBinder is implemented by trace sinks that sample machine state
// (per-core counters). The runtime Run functions bind the session's
// machine right after attaching the sink and before the first spawn, so
// sinks can be constructed before the machine exists.
type MachineBinder interface {
	BindMachine(m *sccsim.Machine)
}

// BindTrace attaches a machine to sink if it wants one.
func BindTrace(sink TraceSink, m *sccsim.Machine) {
	if b, ok := sink.(MachineBinder); ok {
		b.BindMachine(m)
	}
}

// BlockFor parks the context like Block, tagging the suspension with
// the reason a trace sink sees. The tag is consumed by the one Block it
// precedes (a plain Block reports ReasonNone).
func (p *Proc) BlockFor(r BlockReason) error {
	p.blockReason = r
	return p.Block()
}

// NoteSpin reports one failed test-and-set round of a spin lock (with
// the backoff about to be charged, in cycles) to the session trace.
// Call it exactly once per failed round, before any yield propagates,
// so spin counts are byte-identical across engines.
func (p *Proc) NoteSpin(backoff int) {
	if p.trace != nil {
		p.trace.TraceSpin(p.ID, p.Core, p.Clock, backoff)
	}
}
