// Package interp executes the C subset of internal/cc directly from the
// AST on a simulated SCC (internal/sccsim). It is the experimental
// substitute for the paper's icc-compiled binaries: the same program runs
// under the Pthread baseline runtime (32 threads on one core) and the
// translated RCCE runtime (one process per core), with identical
// per-operation compute costs, so runtime ratios reflect the memory
// system and the parallel structure rather than interpreter artifacts.
//
// Execution contexts (threads or core processes) are stackless
// coroutines under the compiled engine — stepped from one scheduler
// loop with zero goroutines and zero channel operations per switch
// (coro.go) — and goroutines under a strict-handoff scheduler for the
// tree-walk reference. In both modes exactly one context runs at a time
// and all virtual-time decisions are deterministic (DESIGN.md §8).
package interp

import (
	"encoding/binary"
	"fmt"

	"hsmcc/internal/cc/types"
)

// Value is one C rvalue: integers and pointers ride in I, floats in F.
// The type tag drives arithmetic and memory encoding.
type Value struct {
	T *types.Type
	I int64
	F float64
}

// IntValue wraps an int in a typed Value.
func IntValue(t *types.Type, v int64) Value { return Value{T: t, I: v} }

// FloatValue wraps a float in a typed Value.
func FloatValue(t *types.Type, v float64) Value { return Value{T: t, F: v} }

// PtrValue wraps a simulated address as a typed pointer value.
func PtrValue(t *types.Type, addr uint32) Value { return Value{T: t, I: int64(addr)} }

// IsFloat reports whether the value carries its payload in F.
func (v Value) IsFloat() bool {
	return v.T != nil && (v.T.Kind == types.Float || v.T.Kind == types.Double)
}

// Int returns the value as an integer, converting floats.
func (v Value) Int() int64 {
	if v.IsFloat() {
		return int64(v.F)
	}
	return v.I
}

// Float returns the value as a float64, converting integers.
func (v Value) Float() float64 {
	if v.IsFloat() {
		return v.F
	}
	return float64(v.I)
}

// Addr returns the value as a simulated address.
func (v Value) Addr() uint32 { return uint32(v.Int()) }

// Bool returns C truthiness.
func (v Value) Bool() bool {
	if v.IsFloat() {
		return v.F != 0
	}
	return v.I != 0
}

// Convert coerces v to type t, truncating integers to the destination
// width and converting between integer and floating representations.
func Convert(v Value, t *types.Type) Value {
	if t == nil || t.Kind == types.Void {
		return Value{T: types.VoidType}
	}
	switch t.Kind {
	case types.Float:
		return Value{T: t, F: float64(float32(v.Float()))}
	case types.Double:
		return Value{T: t, F: v.Float()}
	case types.Char:
		return Value{T: t, I: int64(int8(v.Int()))}
	case types.Short:
		return Value{T: t, I: int64(int16(v.Int()))}
	case types.Int, types.Long:
		return Value{T: t, I: int64(int32(v.Int()))}
	case types.UInt:
		return Value{T: t, I: int64(uint32(v.Int()))}
	case types.Pointer, types.Array, types.Opaque, types.Func:
		return Value{T: t, I: int64(uint32(v.Int()))}
	default:
		return Value{T: t, I: v.Int()}
	}
}

// encodeValue writes v's representation for type t into buf (LE, ILP32).
func encodeValue(t *types.Type, v Value, buf []byte) error {
	switch t.Kind {
	case types.Char:
		buf[0] = byte(v.Int())
	case types.Short:
		binary.LittleEndian.PutUint16(buf, uint16(v.Int()))
	case types.Int, types.Long, types.UInt, types.Pointer, types.Opaque:
		binary.LittleEndian.PutUint32(buf, uint32(v.Int()))
	case types.Float:
		binary.LittleEndian.PutUint32(buf, floatBits32(v.Float()))
	case types.Double:
		binary.LittleEndian.PutUint64(buf, floatBits64(v.Float()))
	default:
		return fmt.Errorf("interp: cannot store value of type %s", t)
	}
	return nil
}

// decodeValue reads a value of type t from buf.
func decodeValue(t *types.Type, buf []byte) (Value, error) {
	switch t.Kind {
	case types.Char:
		return Value{T: t, I: int64(int8(buf[0]))}, nil
	case types.Short:
		return Value{T: t, I: int64(int16(binary.LittleEndian.Uint16(buf)))}, nil
	case types.Int, types.Long:
		return Value{T: t, I: int64(int32(binary.LittleEndian.Uint32(buf)))}, nil
	case types.UInt, types.Pointer, types.Opaque:
		return Value{T: t, I: int64(binary.LittleEndian.Uint32(buf))}, nil
	case types.Float:
		return Value{T: t, F: float64(bitsFloat32(binary.LittleEndian.Uint32(buf)))}, nil
	case types.Double:
		return Value{T: t, F: bitsFloat64(binary.LittleEndian.Uint64(buf))}, nil
	default:
		return Value{}, fmt.Errorf("interp: cannot load value of type %s", t)
	}
}
