package interp

import (
	"fmt"
	"os"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/types"
)

// This file defines the compiled (lowered) form of a program: the result
// of the one-time compile pass in compile.go. The tree-walking evaluator
// in eval.go/exec.go is kept unchanged as the reference engine; the
// golden equivalence tests pin the compiled engine to byte-identical
// output and identical cycle statistics against it.

// Engine selects how execution contexts run function bodies.
type Engine int

// Engines.
const (
	// EngineDefault defers to the session default (DefaultEngine, which
	// the HSMCC_ENGINE environment variable seeds). It is the zero value
	// so option structs that embed an Engine inherit the default.
	EngineDefault Engine = iota
	// EngineCompiled executes the closure form lowered by compile.go:
	// frame layouts resolved once per function, locals as dense slot
	// arrays, expressions pre-bound so the per-node type-switch and all
	// name re-resolution disappear from the hot loop. On fully-compiled
	// programs it runs contexts as stackless coroutines (coro.go).
	EngineCompiled
	// EngineTreeWalk is the original statement-by-statement AST walk,
	// retained as the semantic reference for golden tests; its contexts
	// block on goroutines.
	EngineTreeWalk
)

// String names the engine as the CLI flags and HSMCC_ENGINE spell it.
func (e Engine) String() string {
	switch e {
	case EngineCompiled:
		return "compiled"
	case EngineTreeWalk:
		return "treewalk"
	}
	return "default"
}

// ParseEngine maps a CLI/flag name to an engine; the empty string (and
// "default") selects the session default.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "", "default":
		return EngineDefault, nil
	case "compiled", "coroutine":
		return EngineCompiled, nil
	case "treewalk":
		return EngineTreeWalk, nil
	}
	return EngineDefault, fmt.Errorf("unknown engine %q (want compiled or treewalk)", name)
}

// Resolve replaces EngineDefault with the session default.
func (e Engine) Resolve() Engine {
	if e == EngineDefault {
		return DefaultEngine
	}
	return e
}

// DefaultEngine is the engine NewSim installs. The HSMCC_ENGINE
// environment variable overrides it ("treewalk" selects the reference
// engine), which is how CI benchmarks both engines from one binary.
var DefaultEngine = engineFromEnv()

func engineFromEnv() Engine {
	if os.Getenv("HSMCC_ENGINE") == "treewalk" {
		return EngineTreeWalk
	}
	return EngineCompiled
}

// evalFn is a lowered expression: evaluate to an rvalue.
type evalFn func(p *Proc) (Value, error)

// lvalFn is a lowered lvalue: resolve to (address, stored type).
type lvalFn func(p *Proc) (uint32, *types.Type, error)

// execFn is a lowered statement.
type execFn func(p *Proc, ret *Value) (ctrl, error)

// slotDef is one frame slot of a function's layout, in allocation order
// (parameters first, then every local declaration in source order —
// exactly the order the reference engine's pushFrame walks).
type slotDef struct {
	sym   *ast.Symbol
	size  uint32
	amask uint32 // alignment - 1
}

// compiledFunc is the resolved form of one *ast.FuncDecl, cached on the
// Program at load time.
type compiledFunc struct {
	decl *ast.FuncDecl
	name string

	// slots is the frame layout; slot i's address is computed at frame
	// push (a subtract and mask per slot) into the Proc's slot arena.
	slots []slotDef
	// paramSlot maps parameter index -> slot index (-1: unnamed param).
	paramSlot  []int
	paramType  []*types.Type
	paramStore []typedStore

	body execFn

	// fallback marks a function the compiler refused (a nil type in its
	// layout or an unexpected tree shape); calls route to the tree-walk
	// engine, which reproduces the reference behaviour exactly.
	fallback bool
}

// cframe is one compiled-engine activation record. Slot addresses live in
// the Proc's slotMem arena at [base, base+n); saved restores the stack
// pointer on pop.
type cframe struct {
	base  int
	saved uint32
}
