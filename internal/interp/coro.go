package interp

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"hsmcc/internal/cc/types"
)

// The coroutine execution core. Under the compiled engine, execution
// contexts are stackless coroutines stepped from one plain loop on the
// caller's goroutine: a yield point (memory-op cadence, clock-skew
// horizon, RCCE/pthread blocking) unwinds the compiled-closure stack
// with the errYield sentinel while every closure on the path pushes an
// explicit resumption frame, and the scheduler loop later re-enters the
// context from the top, each closure popping its frame and jumping
// straight back to the suspended child. No goroutines are created and
// no channel is touched on any context switch; the tree-walk reference
// engine keeps the original goroutine-per-context blocking scheduler
// behind the HSMCC_ENGINE seam.
//
// Frame discipline (the whole protocol):
//
//   - Leaf primitives (chargeCycles, noteMemOp and the typed memory
//     accessors, Yield, Block) COMPLETE their effect before yielding and
//     return errYield without a frame; their caller records "site k
//     done" and resumes after the call, never re-running it. A leaf
//     that produces a value returns the real value alongside errYield
//     so the caller can save it in its frame.
//   - Every other function on the unwind path pushes exactly one frame
//     ("I was inside child k", plus any locals computed so far) and, on
//     resume, pops it and re-invokes the same child, which resumes
//     internally. The re-descent never evaluates anything fresh, so the
//     shared Proc state (slot arena, frame pointer, argument arena) is
//     only consulted once control reaches the suspension point again.
//
// Resumption frames are pushed innermost-first during the unwind, so
// popping from the tail re-enters the path outermost-first. The last
// pop clears the resuming flag; execution then continues normally.

// errYield is the coroutine suspension sentinel. It travels the same
// path as runtime errors — every combinator already propagates errors
// immediately — but is intercepted by the scheduler loop instead of
// failing the session.
var errYield = errors.New("interp: coroutine yield")

// IsYield reports whether err is the coroutine suspension sentinel.
// Runtime packages use it to distinguish a suspension from a failure
// when a primitive they called wants to yield.
func IsYield(err error) bool { return err == errYield }

// kframe is one resumption frame: the step a function suspended at plus
// whatever locals it needs to continue. The scratch fields cover every
// shape the compiled combinators save (values, addresses, counters);
// runtimes put their state in x.
//
// Storage is split for the sake of the switch hot path: the per-frame
// meta (step, address, counter) lives in a pointer-free 16-byte stack
// that the garbage collector never scans and pushes without write
// barriers, while the occasional Value or interface payload rides on
// side stacks, flagged in the step word. A frame push is the unwind's
// only memory traffic, so this layout halves the cost of every context
// switch.
type kframe struct {
	step int
	v    Value
	a    uint32
	n    int64
	x    any
}

// kmeta is the pointer-free stored form of a frame.
type kmeta struct {
	step int32 // step | kHasV | kHasX
	a    uint32
	n    int64
}

// The step word's upper bits multiplex four orthogonal encodings over
// one 16-byte kmeta:
//
//   - kHasV/kHasX flag a Value or interface payload on the side stacks.
//   - kInline* replace kHasV for the dominant scalar payloads: an
//     int-family or double Value whose second machine word is zero rides
//     directly in the meta's n field (which such frames never use), so
//     the kvals spill — a 24-byte copy each way — is skipped entirely.
//   - kPiggy fuses a multi-statement block's resume index into the frame
//     below it (bits 13..25) instead of pushing a frame of the block's
//     own. Straight-line statement lists are the most common combinator
//     on every unwind path, so this removes one push+pop per block level
//     per context switch. The fusing block always peeks and clears the
//     piggy bits before the carrier frame's owner pops it (resume order
//     is outermost-first and the owner is always deeper), so popKRef
//     never decodes a step with piggy bits still set.
//
// Own steps are bounded by the largest block statement index, so the
// mask keeps 26 bits even though fused carriers must fit theirs in 13.
const (
	kHasV       = 1 << 30
	kHasX       = 1 << 29
	kPiggy      = 1 << 28
	kInlineInt  = 1 << 26
	kInlineUInt = 2 << 26
	kInlineDbl  = 3 << 26
	kInlineMask = 3 << 26
	kPiggyShift = 13
	kPiggyMax   = 1<<kPiggyShift - 1
	kPiggyBits  = kPiggy | kPiggyMax<<kPiggyShift
	kStepMask   = 1<<26 - 1
)

// pushK saves one resumption frame. A saved Value always carries its
// type (the zero Value means "nothing saved"), which is what lets the
// payload flags reconstruct the frame exactly.
func (p *Proc) pushK(fr kframe) {
	st := int32(fr.step)
	n := fr.n
	if fr.v.T != nil {
		switch {
		case n == 0 && fr.v.F == 0 && fr.v.T == types.IntType:
			st |= kInlineInt
			n = fr.v.I
		case n == 0 && fr.v.F == 0 && fr.v.T == types.UIntType:
			st |= kInlineUInt
			n = fr.v.I
		case n == 0 && fr.v.I == 0 && fr.v.T == types.DoubleType:
			st |= kInlineDbl
			n = int64(math.Float64bits(fr.v.F))
		default:
			st |= kHasV
			p.kvals = append(p.kvals, fr.v)
		}
	}
	if fr.x != nil {
		st |= kHasX
		p.kxs = append(p.kxs, fr.x)
	}
	p.kstack = append(p.kstack, kmeta{step: st, a: fr.a, n: n})
}

func (p *Proc) popK() kframe {
	return *p.popKRef()
}

// popKRef pops the top frame into the Proc's scratch slot and returns a
// pointer to it. The slot is overwritten by the next pop, so a resuming
// function must copy any field it needs into locals before re-invoking
// anything that could pop or push (the re-descent discipline already
// requires exactly that).
func (p *Proc) popKRef() *kframe {
	n := len(p.kstack) - 1
	m := p.kstack[n]
	p.kstack = p.kstack[:n]
	fr := &p.kscratch
	fr.step = int(m.step & kStepMask)
	fr.a = m.a
	fr.n = m.n
	switch m.step & (kHasV | kInlineMask) {
	case 0:
		fr.v = Value{}
	case kInlineInt:
		fr.v = Value{T: types.IntType, I: m.n}
		fr.n = 0
	case kInlineUInt:
		fr.v = Value{T: types.UIntType, I: m.n}
		fr.n = 0
	case kInlineDbl:
		fr.v = Value{T: types.DoubleType, F: math.Float64frombits(uint64(m.n))}
		fr.n = 0
	default:
		vi := len(p.kvals) - 1
		fr.v = p.kvals[vi]
		p.kvals[vi] = Value{}
		p.kvals = p.kvals[:vi]
	}
	if m.step&kHasX != 0 {
		xi := len(p.kxs) - 1
		fr.x = p.kxs[xi]
		p.kxs[xi] = nil
		p.kxs = p.kxs[:xi]
	} else {
		fr.x = nil
	}
	if n == 0 {
		p.coResuming = false
	}
	return fr
}

// Resuming reports whether the context is re-descending to a suspension
// point. Runtime packages check it at the top of a builtin and pop
// their frame with PopResume.
func (p *Proc) Resuming() bool { return p.coResuming }

// PushResume saves a runtime builtin's continuation before it
// propagates a yield: step selects where to re-enter, x carries any
// state the re-entry needs.
func (p *Proc) PushResume(step int, x any) { p.pushK(kframe{step: step, x: x}) }

// PopResume pops the frame pushed by PushResume. Call only when
// Resuming reports true.
func (p *Proc) PopResume() (int, any) {
	fr := p.popK()
	return fr.step, fr.x
}

// yieldCoro suspends a coroutine-mode context: it stays runnable, the
// next context is elected with exactly one policy call (matching the
// goroutine engine's Yield), and when the policy re-elects the yielder
// the suspension is skipped entirely — no unwind, no frames.
func (p *Proc) yieldCoro() error {
	p.State = Runnable
	p.lastYield = p.Clock
	s := p.Sim
	s.noteRunnable(p)
	next := s.pickNext()
	if next == p {
		p.State = Running
		return nil
	}
	if p.trace != nil {
		p.trace.TraceSuspend(p.ID, p.Core, p.Clock, SuspendYield, ReasonNone)
	}
	s.elected, s.electedValid = next, true
	return errYield
}

// blockCoro parks a coroutine-mode context until Unblock; the caller's
// builtin resumes after its Block call once re-elected.
func (p *Proc) blockCoro() error {
	p.State = Blocked
	p.lastYield = p.Clock
	if p.trace != nil {
		p.trace.TraceSuspend(p.ID, p.Core, p.Clock, SuspendBlock, p.takeBlockReason())
	}
	s := p.Sim
	s.elected, s.electedValid = s.pickNext(), true
	return errYield
}

// runCoro is the coroutine scheduler: a plain loop that steps whichever
// context the policy elects until everything is done, something
// deadlocks, or a context fails. The policy call sequence is identical
// to the goroutine engine's handoff chain — one Next per yield, block
// or exit — so stateful policies (round-robin quanta, many-to-one
// core multiplexing) observe the exact same transitions.
func (s *Sim) runCoro() error {
	next := s.pickNext()
	for next != nil {
		next.State = Running
		if next.trace != nil {
			// The goroutine engine fires the same hook in handoff, the
			// same Runnable→Running edge with the same clock.
			next.trace.TraceResume(next.ID, next.Core, next.Clock)
		}
		s.elected, s.electedValid = nil, false
		finished := next.stepCoro()
		if s.err != nil {
			break
		}
		if finished {
			next = s.pickNext()
			continue
		}
		if s.electedValid {
			next = s.elected
		} else {
			// A context must suspend through yieldCoro/blockCoro, which
			// always elect a successor; reaching here is a protocol bug.
			s.fail(fmt.Errorf("interp: context %d suspended without electing a successor", next.ID))
			break
		}
	}
	if s.err != nil {
		return s.err
	}
	if s.allDone() {
		return nil
	}
	return fmt.Errorf("interp: deadlock: %s", s.stateSummary())
}

// stepCoro enters or resumes a context and runs it to its next
// suspension point; true means the context finished (bookkeeping done).
// The root callee is resolved once at spawn, so a resume costs no map
// lookup before the re-descent.
func (p *Proc) stepCoro() bool {
	if len(p.kstack) > 0 {
		p.coResuming = true
	}
	var v Value
	var err error
	if cf := p.rootCF; cf != nil {
		v, err = p.callCompiled(cf, p.args)
	} else {
		v, err = p.call(p.fn, p.args)
	}
	if err == errYield {
		return false
	}
	p.finish(v, err)
	return true
}

// procScratch bundles every growable per-context buffer of the compiled
// engine so one pool hit at spawn replaces seven warm-up allocations
// (the resumption stacks, the activation arenas and the 6 KB per-depth
// return arena). Contexts churn — a matrix cell spawns and finishes
// hundreds — while the buffers' high-water marks are workload constants,
// so recycling makes a whole sweep allocate O(live contexts) once
// instead of O(spawns). The pool is package-level on purpose: parallel
// grid workers and repeated cells all feed the same free list
// (sync.Pool is concurrency-safe and GC-bounded).
type procScratch struct {
	kstack   []kmeta
	kvals    []Value
	kxs      []any
	cframes  []cframe
	slotMem  []uint32
	argArena []Value
	retSlots []Value
}

var scratchPool = sync.Pool{New: func() any {
	return &procScratch{
		kstack:   make([]kmeta, 0, 64),
		retSlots: make([]Value, maxCallDepth+1),
	}
}}

// adoptScratch attaches pooled buffers to a fresh context.
func (p *Proc) adoptScratch() {
	sc := scratchPool.Get().(*procScratch)
	p.scratch = sc
	p.kstack = sc.kstack
	p.kvals = sc.kvals
	p.kxs = sc.kxs
	p.cframes = sc.cframes
	p.slotMem = sc.slotMem
	p.argArena = sc.argArena
	p.retSlots = sc.retSlots
}

// releaseScratch returns the buffers (with their grown capacities) to
// the pool. All stacks are empty at a clean finish; retSlots keeps its
// stale cells because runCompiledBodyAt zeroes a cell on every fresh
// entry, and Values hold no heap pointers beyond the immortal type
// singletons.
func (p *Proc) releaseScratch() {
	sc := p.scratch
	if sc == nil {
		return
	}
	p.scratch = nil
	// The side stacks and argument arena are empty after a clean finish,
	// but a context killed by a runtime error can leave occupied cells;
	// clear them so the pool never pins runtime objects.
	for i := range p.kvals {
		p.kvals[i] = Value{}
	}
	for i := range p.kxs {
		p.kxs[i] = nil
	}
	for i := range p.argArena {
		p.argArena[i] = Value{}
	}
	sc.kstack = p.kstack[:0]
	sc.kvals = p.kvals[:0]
	sc.kxs = p.kxs[:0]
	sc.cframes = p.cframes[:0]
	sc.slotMem = p.slotMem[:0]
	sc.argArena = p.argArena[:0]
	sc.retSlots = p.retSlots
	p.kstack, p.kvals, p.kxs = nil, nil, nil
	p.cframes, p.slotMem, p.argArena, p.retSlots = nil, nil, nil, nil
	scratchPool.Put(sc)
}

// finish is the context completion path shared by both engines: record
// the result, recycle the stack slot, wake joiners.
func (p *Proc) finish(v Value, err error) {
	switch err {
	case nil, errThreadExit:
		p.Ret = v
	default:
		p.Sim.fail(fmt.Errorf("proc %d (core %d): %w", p.ID, p.Core, err))
	}
	if p.trace != nil {
		p.trace.TraceSuspend(p.ID, p.Core, p.Clock, SuspendFinish, ReasonNone)
	}
	p.State = Done
	s := p.Sim
	s.done++
	s.freeStacks[p.Core] = append(s.freeStacks[p.Core], p.stackIdx)
	p.releaseScratch()
	if s.Runtime != nil {
		s.Runtime.OnExit(p)
	}
}
