package interp

import (
	"errors"
	"fmt"
)

// The coroutine execution core. Under the compiled engine, execution
// contexts are stackless coroutines stepped from one plain loop on the
// caller's goroutine: a yield point (memory-op cadence, clock-skew
// horizon, RCCE/pthread blocking) unwinds the compiled-closure stack
// with the errYield sentinel while every closure on the path pushes an
// explicit resumption frame, and the scheduler loop later re-enters the
// context from the top, each closure popping its frame and jumping
// straight back to the suspended child. No goroutines are created and
// no channel is touched on any context switch; the tree-walk reference
// engine keeps the original goroutine-per-context blocking scheduler
// behind the HSMCC_ENGINE seam.
//
// Frame discipline (the whole protocol):
//
//   - Leaf primitives (chargeCycles, noteMemOp and the typed memory
//     accessors, Yield, Block) COMPLETE their effect before yielding and
//     return errYield without a frame; their caller records "site k
//     done" and resumes after the call, never re-running it. A leaf
//     that produces a value returns the real value alongside errYield
//     so the caller can save it in its frame.
//   - Every other function on the unwind path pushes exactly one frame
//     ("I was inside child k", plus any locals computed so far) and, on
//     resume, pops it and re-invokes the same child, which resumes
//     internally. The re-descent never evaluates anything fresh, so the
//     shared Proc state (slot arena, frame pointer, argument arena) is
//     only consulted once control reaches the suspension point again.
//
// Resumption frames are pushed innermost-first during the unwind, so
// popping from the tail re-enters the path outermost-first. The last
// pop clears the resuming flag; execution then continues normally.

// errYield is the coroutine suspension sentinel. It travels the same
// path as runtime errors — every combinator already propagates errors
// immediately — but is intercepted by the scheduler loop instead of
// failing the session.
var errYield = errors.New("interp: coroutine yield")

// IsYield reports whether err is the coroutine suspension sentinel.
// Runtime packages use it to distinguish a suspension from a failure
// when a primitive they called wants to yield.
func IsYield(err error) bool { return err == errYield }

// kframe is one resumption frame: the step a function suspended at plus
// whatever locals it needs to continue. The scratch fields cover every
// shape the compiled combinators save (values, addresses, counters);
// runtimes put their state in x.
//
// Storage is split for the sake of the switch hot path: the per-frame
// meta (step, address, counter) lives in a pointer-free 16-byte stack
// that the garbage collector never scans and pushes without write
// barriers, while the occasional Value or interface payload rides on
// side stacks, flagged in the step word. A frame push is the unwind's
// only memory traffic, so this layout halves the cost of every context
// switch.
type kframe struct {
	step int
	v    Value
	a    uint32
	n    int64
	x    any
}

// kmeta is the pointer-free stored form of a frame.
type kmeta struct {
	step int32 // step | kHasV | kHasX
	a    uint32
	n    int64
}

const (
	kHasV     = 1 << 30
	kHasX     = 1 << 29
	kStepMask = kHasX - 1
)

// pushK saves one resumption frame. A saved Value always carries its
// type (the zero Value means "nothing saved"), which is what lets the
// payload flags reconstruct the frame exactly.
func (p *Proc) pushK(fr kframe) {
	st := int32(fr.step)
	if fr.v.T != nil {
		st |= kHasV
		p.kvals = append(p.kvals, fr.v)
	}
	if fr.x != nil {
		st |= kHasX
		p.kxs = append(p.kxs, fr.x)
	}
	p.kstack = append(p.kstack, kmeta{step: st, a: fr.a, n: fr.n})
}

func (p *Proc) popK() kframe {
	return *p.popKRef()
}

// popKRef pops the top frame into the Proc's scratch slot and returns a
// pointer to it. The slot is overwritten by the next pop, so a resuming
// function must copy any field it needs into locals before re-invoking
// anything that could pop or push (the re-descent discipline already
// requires exactly that).
func (p *Proc) popKRef() *kframe {
	n := len(p.kstack) - 1
	m := p.kstack[n]
	p.kstack = p.kstack[:n]
	fr := &p.kscratch
	fr.step = int(m.step & kStepMask)
	fr.a = m.a
	fr.n = m.n
	if m.step&kHasV != 0 {
		vi := len(p.kvals) - 1
		fr.v = p.kvals[vi]
		p.kvals[vi] = Value{}
		p.kvals = p.kvals[:vi]
	} else {
		fr.v = Value{}
	}
	if m.step&kHasX != 0 {
		xi := len(p.kxs) - 1
		fr.x = p.kxs[xi]
		p.kxs[xi] = nil
		p.kxs = p.kxs[:xi]
	} else {
		fr.x = nil
	}
	if n == 0 {
		p.coResuming = false
	}
	return fr
}

// Resuming reports whether the context is re-descending to a suspension
// point. Runtime packages check it at the top of a builtin and pop
// their frame with PopResume.
func (p *Proc) Resuming() bool { return p.coResuming }

// PushResume saves a runtime builtin's continuation before it
// propagates a yield: step selects where to re-enter, x carries any
// state the re-entry needs.
func (p *Proc) PushResume(step int, x any) { p.pushK(kframe{step: step, x: x}) }

// PopResume pops the frame pushed by PushResume. Call only when
// Resuming reports true.
func (p *Proc) PopResume() (int, any) {
	fr := p.popK()
	return fr.step, fr.x
}

// yieldCoro suspends a coroutine-mode context: it stays runnable, the
// next context is elected with exactly one policy call (matching the
// goroutine engine's Yield), and when the policy re-elects the yielder
// the suspension is skipped entirely — no unwind, no frames.
func (p *Proc) yieldCoro() error {
	p.State = Runnable
	p.lastYield = p.Clock
	s := p.Sim
	s.noteRunnable(p)
	next := s.pickNext()
	if next == p {
		p.State = Running
		return nil
	}
	s.elected, s.electedValid = next, true
	return errYield
}

// blockCoro parks a coroutine-mode context until Unblock; the caller's
// builtin resumes after its Block call once re-elected.
func (p *Proc) blockCoro() error {
	p.State = Blocked
	p.lastYield = p.Clock
	s := p.Sim
	s.elected, s.electedValid = s.pickNext(), true
	return errYield
}

// runCoro is the coroutine scheduler: a plain loop that steps whichever
// context the policy elects until everything is done, something
// deadlocks, or a context fails. The policy call sequence is identical
// to the goroutine engine's handoff chain — one Next per yield, block
// or exit — so stateful policies (round-robin quanta, many-to-one
// core multiplexing) observe the exact same transitions.
func (s *Sim) runCoro() error {
	next := s.pickNext()
	for next != nil {
		next.State = Running
		s.elected, s.electedValid = nil, false
		finished := next.stepCoro()
		if s.err != nil {
			break
		}
		if finished {
			next = s.pickNext()
			continue
		}
		if s.electedValid {
			next = s.elected
		} else {
			// A context must suspend through yieldCoro/blockCoro, which
			// always elect a successor; reaching here is a protocol bug.
			s.fail(fmt.Errorf("interp: context %d suspended without electing a successor", next.ID))
			break
		}
	}
	if s.err != nil {
		return s.err
	}
	if s.allDone() {
		return nil
	}
	return fmt.Errorf("interp: deadlock: %s", s.stateSummary())
}

// stepCoro enters or resumes a context and runs it to its next
// suspension point; true means the context finished (bookkeeping done).
// The root callee is resolved once at spawn, so a resume costs no map
// lookup before the re-descent.
func (p *Proc) stepCoro() bool {
	if len(p.kstack) > 0 {
		p.coResuming = true
	}
	var v Value
	var err error
	if cf := p.rootCF; cf != nil {
		v, err = p.callCompiled(cf, p.args)
	} else {
		v, err = p.call(p.fn, p.args)
	}
	if err == errYield {
		return false
	}
	p.finish(v, err)
	return true
}

// finish is the context completion path shared by both engines: record
// the result, recycle the stack slot, wake joiners.
func (p *Proc) finish(v Value, err error) {
	switch err {
	case nil, errThreadExit:
		p.Ret = v
	default:
		p.Sim.fail(fmt.Errorf("proc %d (core %d): %w", p.ID, p.Core, err))
	}
	p.State = Done
	s := p.Sim
	s.done++
	s.freeStacks[p.Core] = append(s.freeStacks[p.Core], p.stackIdx)
	if s.Runtime != nil {
		s.Runtime.OnExit(p)
	}
}
