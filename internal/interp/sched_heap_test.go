package interp

import (
	"math/rand"
	"testing"

	"hsmcc/internal/sccsim"
)

// TestMinClockHeapMatchesLinear drives the indexed heap policy and the
// linear-scan oracle side by side through a randomized schedule of the
// transitions the session generates (spawn, yield with clock advance,
// block, unblock with clock raise, finish) and demands they elect the
// same context at every step. The linear MinClock is the specification;
// the heap must be observationally identical.
func TestMinClockHeapMatchesLinear(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		heap := NewMinClockHeap()
		oracle := MinClock{}
		var procs []*Proc
		nextID := 0
		spawn := func(clock sccsim.Time) {
			p := &Proc{ID: nextID, Clock: clock, State: Runnable}
			nextID++
			procs = append(procs, p)
			heap.NoteRunnable(p)
		}
		for i := 0; i < 3; i++ {
			spawn(sccsim.Time(rng.Intn(100)))
		}
		var blocked []*Proc
		for step := 0; step < 2000; step++ {
			want := oracle.Next(procs)
			got := heap.Next(procs)
			if want != got {
				t.Fatalf("seed %d step %d: heap elected %v, oracle %v", seed, step, got, want)
			}
			if want == nil {
				// Everyone blocked or done: unblock one or stop.
				if len(blocked) == 0 {
					break
				}
				p := blocked[rng.Intn(len(blocked))]
				p.State = Runnable
				p.Clock += sccsim.Time(rng.Intn(50))
				heap.NoteRunnable(p)
				continue
			}
			p := want
			p.State = Running
			p.Clock += sccsim.Time(1 + rng.Intn(200))
			switch r := rng.Intn(10); {
			case r < 6: // cooperative yield
				p.State = Runnable
				heap.NoteRunnable(p)
			case r < 8: // block, sometimes unblocking someone else
				p.State = Blocked
				blocked = append(blocked, p)
				if len(blocked) > 1 && rng.Intn(2) == 0 {
					w := blocked[rng.Intn(len(blocked))]
					if w != p {
						// Unblock raises the sleeper at most to the
						// runner's clock, as Proc.Unblock does.
						if p.Clock > w.Clock {
							w.Clock = p.Clock
						}
						w.State = Runnable
						heap.NoteRunnable(w)
					}
				}
			case r < 9: // finish
				p.State = Done
			default: // spawn a sibling, keep running, then yield
				spawn(p.Clock)
				p.State = Runnable
				heap.NoteRunnable(p)
			}
			// Occasionally compact Done procs out, as the session does.
			if step%97 == 0 {
				live := procs[:0]
				for _, q := range procs {
					if q.State != Done {
						live = append(live, q)
					}
				}
				procs = live
				liveBlocked := blocked[:0]
				for _, q := range blocked {
					if q.State == Blocked {
						liveBlocked = append(liveBlocked, q)
					}
				}
				blocked = liveBlocked
			}
		}
	}
}

// TestMinClockHeapMatchesLinearWide re-runs the parity drive at the
// mesh1024 population: 1024 live contexts, so sift paths several levels
// deep and large stale-entry populations are actually exercised.
func TestMinClockHeapMatchesLinearWide(t *testing.T) {
	for seed := int64(100); seed < 103; seed++ {
		rng := rand.New(rand.NewSource(seed))
		heap := NewMinClockHeap()
		oracle := MinClock{}
		procs := make([]*Proc, 0, 1024)
		for i := 0; i < 1024; i++ {
			p := &Proc{ID: i, Clock: sccsim.Time(rng.Intn(10_000)), State: Runnable}
			procs = append(procs, p)
			heap.NoteRunnable(p)
		}
		var blocked []*Proc
		for step := 0; step < 5000; step++ {
			want := oracle.Next(procs)
			got := heap.Next(procs)
			if want != got {
				t.Fatalf("seed %d step %d: heap elected %v, oracle %v", seed, step, got, want)
			}
			if want == nil {
				if len(blocked) == 0 {
					break
				}
				p := blocked[rng.Intn(len(blocked))]
				p.State = Runnable
				p.Clock += sccsim.Time(rng.Intn(50))
				heap.NoteRunnable(p)
				continue
			}
			p := want
			p.State = Running
			p.Clock += sccsim.Time(1 + rng.Intn(500))
			switch r := rng.Intn(10); {
			case r < 7:
				p.State = Runnable
				heap.NoteRunnable(p)
			case r < 9:
				p.State = Blocked
				blocked = append(blocked, p)
				if len(blocked) > 1 && rng.Intn(2) == 0 {
					w := blocked[rng.Intn(len(blocked))]
					if w != p {
						if p.Clock > w.Clock {
							w.Clock = p.Clock
						}
						w.State = Runnable
						heap.NoteRunnable(w)
					}
				}
			default:
				p.State = Done
			}
		}
	}
}

// TestMinClockHeapDuplicateNotes: redundant notifications (unblocking an
// already-runnable context, double notes at the same clock) must not
// change elections.
func TestMinClockHeapDuplicateNotes(t *testing.T) {
	heap := NewMinClockHeap()
	a := &Proc{ID: 0, Clock: 10, State: Runnable}
	b := &Proc{ID: 1, Clock: 5, State: Runnable}
	procs := []*Proc{a, b}
	heap.NoteRunnable(a)
	heap.NoteRunnable(b)
	heap.NoteRunnable(b) // duplicate at same clock
	heap.NoteRunnable(a) // duplicate
	if got := heap.Next(procs); got != b {
		t.Fatalf("elected %v, want b", got)
	}
	b.State = Running
	b.Clock = 20
	b.State = Runnable
	heap.NoteRunnable(b)
	// A stale entry for b (clock 5) is still in the heap; it must be
	// discarded in favour of a at clock 10.
	if got := heap.Next(procs); got != a {
		t.Fatalf("elected %v, want a (stale entry must be discarded)", got)
	}
}
