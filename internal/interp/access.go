package interp

import (
	"encoding/binary"
	"math"

	"hsmcc/internal/cc/types"
)

// Typed memory accessors, selected once per compiled site. Each variant
// is the fusion of loadValue+decodeValue (or Convert+encodeValue+
// storeValue) for one type kind: the same Machine access, the same
// noteMemOp cadence, the same resulting bits — minus the per-operation
// size computation and kind switches. Kinds outside the table fall back
// to the generic routines, preserving their exact behaviour (including
// error messages and panics on malformed types).
//
// Every accessor is a coroutine-protocol leaf: the machine access and
// the decode/encode complete before the memory-op cadence can yield, so
// on errYield the returned Value is the real result and the caller
// resumes after the access without re-issuing it.

// typedLoad reads a value of a fixed type from simulated memory.
type typedLoad func(p *Proc, addr uint32) (Value, error)

// typedStore writes v (converting it to the fixed type first) and
// returns the converted value, which assignment expressions yield.
type typedStore func(p *Proc, addr uint32, v Value) (Value, error)

func makeLoad(t *types.Type) typedLoad {
	if t == nil {
		return func(p *Proc, addr uint32) (Value, error) { return p.loadValue(addr, t) }
	}
	sz := t.Size()
	if sz <= 0 || sz > 8 {
		return func(p *Proc, addr uint32) (Value, error) { return p.loadValue(addr, t) }
	}
	switch t.Kind {
	case types.Char:
		return func(p *Proc, addr uint32) (Value, error) {
			buf := p.buf[:sz]
			p.Clock += p.Sim.Machine.Load(p.Core, addr, buf, p.Clock)
			return Value{T: t, I: int64(int8(buf[0]))}, p.noteLoad(addr)
		}
	case types.Short:
		return func(p *Proc, addr uint32) (Value, error) {
			buf := p.buf[:sz]
			p.Clock += p.Sim.Machine.Load(p.Core, addr, buf, p.Clock)
			return Value{T: t, I: int64(int16(binary.LittleEndian.Uint16(buf)))}, p.noteLoad(addr)
		}
	case types.Int, types.Long:
		return func(p *Proc, addr uint32) (Value, error) {
			buf := p.buf[:sz]
			p.Clock += p.Sim.Machine.Load(p.Core, addr, buf, p.Clock)
			return Value{T: t, I: int64(int32(binary.LittleEndian.Uint32(buf)))}, p.noteLoad(addr)
		}
	case types.UInt, types.Pointer, types.Opaque:
		return func(p *Proc, addr uint32) (Value, error) {
			buf := p.buf[:sz]
			p.Clock += p.Sim.Machine.Load(p.Core, addr, buf, p.Clock)
			return Value{T: t, I: int64(binary.LittleEndian.Uint32(buf))}, p.noteLoad(addr)
		}
	case types.Float:
		return func(p *Proc, addr uint32) (Value, error) {
			buf := p.buf[:sz]
			p.Clock += p.Sim.Machine.Load(p.Core, addr, buf, p.Clock)
			return Value{T: t, F: float64(math.Float32frombits(binary.LittleEndian.Uint32(buf)))}, p.noteLoad(addr)
		}
	case types.Double:
		return func(p *Proc, addr uint32) (Value, error) {
			buf := p.buf[:sz]
			p.Clock += p.Sim.Machine.Load(p.Core, addr, buf, p.Clock)
			return Value{T: t, F: math.Float64frombits(binary.LittleEndian.Uint64(buf))}, p.noteLoad(addr)
		}
	}
	return func(p *Proc, addr uint32) (Value, error) { return p.loadValue(addr, t) }
}

func makeStore(t *types.Type) typedStore {
	generic := func(p *Proc, addr uint32, v Value) (Value, error) {
		cv := Convert(v, t)
		if err := p.storeValue(addr, t, cv); err != nil {
			return cv, err
		}
		return cv, nil
	}
	if t == nil {
		return generic
	}
	sz := t.Size()
	if sz <= 0 || sz > 8 {
		return generic
	}
	switch t.Kind {
	case types.Char:
		return func(p *Proc, addr uint32, v Value) (Value, error) {
			cv := Value{T: t, I: int64(int8(v.Int()))}
			buf := p.buf[:sz]
			buf[0] = byte(cv.I)
			p.Clock += p.Sim.Machine.Store(p.Core, addr, buf, p.Clock)
			return cv, p.noteStore(addr)
		}
	case types.Short:
		return func(p *Proc, addr uint32, v Value) (Value, error) {
			cv := Value{T: t, I: int64(int16(v.Int()))}
			buf := p.buf[:sz]
			binary.LittleEndian.PutUint16(buf, uint16(cv.I))
			p.Clock += p.Sim.Machine.Store(p.Core, addr, buf, p.Clock)
			return cv, p.noteStore(addr)
		}
	case types.Int, types.Long:
		return func(p *Proc, addr uint32, v Value) (Value, error) {
			cv := Value{T: t, I: int64(int32(v.Int()))}
			buf := p.buf[:sz]
			binary.LittleEndian.PutUint32(buf, uint32(cv.I))
			p.Clock += p.Sim.Machine.Store(p.Core, addr, buf, p.Clock)
			return cv, p.noteStore(addr)
		}
	case types.UInt, types.Pointer, types.Opaque:
		return func(p *Proc, addr uint32, v Value) (Value, error) {
			cv := Value{T: t, I: int64(uint32(v.Int()))}
			buf := p.buf[:sz]
			binary.LittleEndian.PutUint32(buf, uint32(cv.I))
			p.Clock += p.Sim.Machine.Store(p.Core, addr, buf, p.Clock)
			return cv, p.noteStore(addr)
		}
	case types.Float:
		return func(p *Proc, addr uint32, v Value) (Value, error) {
			cv := Value{T: t, F: float64(float32(v.Float()))}
			buf := p.buf[:sz]
			binary.LittleEndian.PutUint32(buf, math.Float32bits(float32(cv.F)))
			p.Clock += p.Sim.Machine.Store(p.Core, addr, buf, p.Clock)
			return cv, p.noteStore(addr)
		}
	case types.Double:
		return func(p *Proc, addr uint32, v Value) (Value, error) {
			cv := Value{T: t, F: v.Float()}
			buf := p.buf[:sz]
			binary.LittleEndian.PutUint64(buf, math.Float64bits(cv.F))
			p.Clock += p.Sim.Machine.Store(p.Core, addr, buf, p.Clock)
			return cv, p.noteStore(addr)
		}
	}
	return generic
}
