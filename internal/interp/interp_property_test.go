package interp

import (
	"fmt"
	"testing"
	"testing/quick"

	"hsmcc/internal/sccsim"
)

// runExpr evaluates a C expression over two int parameters by generating
// and executing a tiny program.
func runExpr(t *testing.T, expr string, a, b int32) (int32, error) {
	t.Helper()
	src := fmt.Sprintf(`
int compute(int a, int b) { return %s; }
int main() { printf("%%d", compute(%d, %d)); return 0; }`, expr, a, b)
	sim, err := tryRunMain(src)
	if err != nil {
		return 0, err
	}
	var v int32
	if _, err := fmt.Sscanf(sim.Output(), "%d", &v); err != nil {
		return 0, fmt.Errorf("bad output %q: %v", sim.Output(), err)
	}
	return v, nil
}

// TestIntArithmeticMatchesGo: property test — the interpreter's 32-bit
// integer semantics agree with Go's int32 arithmetic for every operator.
func TestIntArithmeticMatchesGo(t *testing.T) {
	type opCase struct {
		expr string
		eval func(a, b int32) (int32, bool) // ok=false -> skip (UB)
	}
	ops := []opCase{
		{"a + b", func(a, b int32) (int32, bool) { return a + b, true }},
		{"a - b", func(a, b int32) (int32, bool) { return a - b, true }},
		{"a * b", func(a, b int32) (int32, bool) { return a * b, true }},
		{"a / b", func(a, b int32) (int32, bool) {
			if b == 0 || (a == -1<<31 && b == -1) {
				return 0, false
			}
			return a / b, true
		}},
		{"a % b", func(a, b int32) (int32, bool) {
			if b == 0 || (a == -1<<31 && b == -1) {
				return 0, false
			}
			return a % b, true
		}},
		{"a & b", func(a, b int32) (int32, bool) { return a & b, true }},
		{"a | b", func(a, b int32) (int32, bool) { return a | b, true }},
		{"a ^ b", func(a, b int32) (int32, bool) { return a ^ b, true }},
		{"a < b", func(a, b int32) (int32, bool) { return boolToInt(a < b), true }},
		{"a >= b", func(a, b int32) (int32, bool) { return boolToInt(a >= b), true }},
		{"a == b", func(a, b int32) (int32, bool) { return boolToInt(a == b), true }},
	}
	for _, op := range ops {
		op := op
		f := func(a, b int32) bool {
			want, ok := op.eval(a, b)
			if !ok {
				return true
			}
			got, err := runExpr(t, op.expr, a, b)
			if err != nil {
				t.Logf("%s with a=%d b=%d: %v", op.expr, a, b, err)
				return false
			}
			return got == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%s: %v", op.expr, err)
		}
	}
}

// TestShiftSemantics: shifts mask the count like x86 (mod 32).
func TestShiftSemantics(t *testing.T) {
	got, err := runExpr(t, "a << b", 1, 4)
	if err != nil || got != 16 {
		t.Errorf("1<<4 = %d (%v)", got, err)
	}
	got, err = runExpr(t, "a >> b", -8, 1)
	if err != nil || got != -4 {
		t.Errorf("-8>>1 = %d (%v), want arithmetic shift", got, err)
	}
}

// TestMemoryRoundTripValues: property test — storing then loading any
// int32 through simulated memory preserves it, for every integer width's
// in-range values.
func TestMemoryRoundTripValues(t *testing.T) {
	f := func(v int32) bool {
		src := fmt.Sprintf(`
int cell;
int main() { cell = %d; printf("%%d", cell); return 0; }`, v)
		sim, err := tryRunMain(src)
		if err != nil {
			return false
		}
		return sim.Output() == fmt.Sprint(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDoubleRoundTrip: doubles survive memory round trips bit-exactly for
// printable values.
func TestDoubleRoundTrip(t *testing.T) {
	f := func(v float32) bool {
		src := fmt.Sprintf(`
double cell;
int main() { cell = %v; printf("%%g", cell); return 0; }`, float64(v))
		sim, err := tryRunMain(src)
		if err != nil {
			return false
		}
		return sim.Output() == fmt.Sprintf("%g", float64(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func boolToInt(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// TestRecursionDepthLimit: runaway recursion is reported, not a Go crash.
func TestRecursionDepthLimit(t *testing.T) {
	_, err := tryRunMain(`
int down(int n) { return down(n + 1); }
int main() { return down(0); }`)
	if err == nil {
		t.Fatal("infinite recursion not caught")
	}
}

// TestDeadlockDetected: a context blocking forever is a scheduler error,
// not a hang. The block happens through a runtime builtin — the
// supported suspension path in both engines (Tick must not block).
func TestDeadlockDetected(t *testing.T) {
	pr, err := Compile("d.c", "int park(); int main() { park(); return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(sccsim.MustNew(sccsim.DefaultConfig()), pr)
	sim.Runtime = blockForever{}
	if _, err := sim.Spawn(0, pr.Funcs["main"], nil, 0); err != nil {
		t.Fatal(err)
	}
	err = sim.Run()
	if err == nil || !contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want deadlock report", err)
	}
}

// blockForever parks any context that calls park(), with no one to wake
// it.
type blockForever struct{}

func (blockForever) CallBuiltin(p *Proc, name string, args []Value) (Value, bool, error) {
	if name != "park" {
		return Value{}, false, nil
	}
	if p.Resuming() {
		p.PopResume()
		return Value{}, true, nil
	}
	if err := p.Block(); err != nil {
		p.PushResume(1, nil)
		return Value{}, true, err
	}
	return Value{}, true, nil
}
func (blockForever) Tick(p *Proc) {}
func (blockForever) OnExit(p *Proc) {}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
