package interp

import (
	"strings"
	"testing"

	"hsmcc/internal/sccsim"
)

// runMain compiles src, spawns main on core 0 and runs to completion,
// returning the session for inspection.
func runMain(t *testing.T, src string) *Sim {
	t.Helper()
	s, err := tryRunMain(src)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return s
}

func tryRunMain(src string) (*Sim, error) {
	pr, err := Compile("test.c", src)
	if err != nil {
		return nil, err
	}
	sim := NewSim(sccsim.MustNew(sccsim.DefaultConfig()), pr)
	main := pr.Funcs["main"]
	if _, err := sim.Spawn(0, main, nil, 0); err != nil {
		return nil, err
	}
	if err := sim.Run(); err != nil {
		return sim, err
	}
	return sim, nil
}

func TestArithmetic(t *testing.T) {
	s := runMain(t, `
int main() {
    int a = 7;
    int b = 3;
    printf("%d %d %d %d %d\n", a+b, a-b, a*b, a/b, a%b);
    printf("%d %d %d\n", a<<1, a>>1, a^b);
    return 0;
}`)
	want := "10 4 21 2 1\n14 3 4\n"
	if s.Output() != want {
		t.Errorf("output = %q, want %q", s.Output(), want)
	}
}

func TestFloatArithmetic(t *testing.T) {
	s := runMain(t, `
int main() {
    double x = 1.5;
    double y = 0.25;
    printf("%.3f %.3f %.3f %.3f\n", x+y, x-y, x*y, x/y);
    printf("%d %d\n", x > y, x < y);
    return 0;
}`)
	want := "1.750 1.250 0.375 6.000\n1 0\n"
	if s.Output() != want {
		t.Errorf("output = %q, want %q", s.Output(), want)
	}
}

func TestControlFlow(t *testing.T) {
	s := runMain(t, `
int main() {
    int sum = 0;
    int i;
    for (i = 0; i < 10; i++) {
        if (i % 2 == 0) continue;
        if (i == 9) break;
        sum += i;
    }
    int j = 0;
    while (j < 3) { sum += 100; j++; }
    do { sum += 1000; } while (0);
    printf("%d\n", sum);
    return 0;
}`)
	// odd i in [1,7]: 1+3+5+7 = 16; + 300 + 1000
	if s.Output() != "1316\n" {
		t.Errorf("output = %q, want 1316", s.Output())
	}
}

func TestSwitch(t *testing.T) {
	s := runMain(t, `
int classify(int v) {
    switch (v) {
    case 0: return 100;
    case 1:
    case 2: return 200;
    default: return 300;
    }
}
int main() {
    printf("%d %d %d %d\n", classify(0), classify(1), classify(2), classify(9));
    return 0;
}`)
	if s.Output() != "100 200 200 300\n" {
		t.Errorf("output = %q", s.Output())
	}
}

func TestPointersAndArrays(t *testing.T) {
	s := runMain(t, `
int arr[5];
int main() {
    int i;
    for (i = 0; i < 5; i++) arr[i] = i * i;
    int *p = arr;
    p = p + 2;
    printf("%d %d\n", *p, p[1]);
    *p = 99;
    printf("%d\n", arr[2]);
    int x = 42;
    int *q = &x;
    *q = *q + 1;
    printf("%d\n", x);
    printf("%d\n", (int)(p - arr));
    return 0;
}`)
	want := "4 9\n99\n43\n2\n"
	if s.Output() != want {
		t.Errorf("output = %q, want %q", s.Output(), want)
	}
}

func TestGlobalInitializers(t *testing.T) {
	s := runMain(t, `
int g = 5;
double d = 2.5;
int table[4] = {1, 2, 3, 4};
char msg[6];
int main() {
    printf("%d %.1f %d %d\n", g, d, table[0], table[3]);
    return 0;
}`)
	if s.Output() != "5 2.5 1 4\n" {
		t.Errorf("output = %q", s.Output())
	}
}

func TestRecursion(t *testing.T) {
	s := runMain(t, `
int fact(int n) {
    if (n <= 1) return 1;
    return n * fact(n - 1);
}
int fib(int n) {
    if (n < 2) return n;
    return fib(n-1) + fib(n-2);
}
int main() {
    printf("%d %d\n", fact(10), fib(15));
    return 0;
}`)
	if s.Output() != "3628800 610\n" {
		t.Errorf("output = %q", s.Output())
	}
}

func TestFunctionPointerCall(t *testing.T) {
	s := runMain(t, `
int twice(int v) { return 2 * v; }
int main() {
    int r = twice(21);
    printf("%d\n", r);
    return 0;
}`)
	if s.Output() != "42\n" {
		t.Errorf("output = %q", s.Output())
	}
}

func TestStrings(t *testing.T) {
	s := runMain(t, `
int main() {
    char *msg = "hello";
    printf("%s world %c%c\n", msg, msg[0], 'x');
    printf("%5d|%-5d|%05d\n", 42, 42, 42);
    return 0;
}`)
	want := "hello world hx\n   42|42   |00042\n"
	if s.Output() != want {
		t.Errorf("output = %q, want %q", s.Output(), want)
	}
}

func TestCastsAndSizeof(t *testing.T) {
	s := runMain(t, `
int main() {
    double d = 3.9;
    int i = (int)d;
    double back = (double)i;
    printf("%d %.1f\n", i, back);
    printf("%u %u %u %u\n", sizeof(char), sizeof(int), sizeof(double), sizeof(int*));
    char c = (char)300;
    printf("%d\n", c);
    return 0;
}`)
	want := "3 3.0\n1 4 8 4\n44\n"
	if s.Output() != want {
		t.Errorf("output = %q, want %q", s.Output(), want)
	}
}

func TestTernaryCommaLogical(t *testing.T) {
	s := runMain(t, `
int side;
int touch(int v) { side = side + 1; return v; }
int main() {
    int a = 1 ? 10 : 20;
    int b = 0 ? 10 : 20;
    int c = (touch(1), touch(2));
    printf("%d %d %d %d\n", a, b, c, side);
    // Short-circuit: touch must not run.
    side = 0;
    int d = 0 && touch(1);
    int e = 1 || touch(1);
    printf("%d %d %d\n", d, e, side);
    return 0;
}`)
	want := "10 20 2 2\n0 1 0\n"
	if s.Output() != want {
		t.Errorf("output = %q, want %q", s.Output(), want)
	}
}

func TestStructMembers(t *testing.T) {
	s := runMain(t, `
struct point { int x; int y; double w; };
struct point g;
int main() {
    g.x = 3;
    g.y = 4;
    g.w = 1.5;
    struct point *p = &g;
    p->x = p->x + p->y;
    printf("%d %d %.1f\n", g.x, g.y, p->w);
    return 0;
}`)
	if s.Output() != "7 4 1.5\n" {
		t.Errorf("output = %q", s.Output())
	}
}

func TestMallocMemset(t *testing.T) {
	s := runMain(t, `
int main() {
    int *buf = (int*)malloc(sizeof(int) * 8);
    memset(buf, 0, sizeof(int) * 8);
    int i;
    for (i = 0; i < 8; i++) buf[i] = i;
    int *copy = (int*)malloc(sizeof(int) * 8);
    memcpy(copy, buf, sizeof(int) * 8);
    printf("%d %d\n", copy[3], copy[7]);
    free(buf);
    return 0;
}`)
	if s.Output() != "3 7\n" {
		t.Errorf("output = %q", s.Output())
	}
}

func TestMathBuiltins(t *testing.T) {
	s := runMain(t, `
int main() {
    printf("%.1f %.1f\n", sqrt(16.0), fabs(0.0 - 2.5));
    return 0;
}`)
	if s.Output() != "4.0 2.5\n" {
		t.Errorf("output = %q", s.Output())
	}
}

func TestWallclockAdvances(t *testing.T) {
	s := runMain(t, `
int main() {
    double t0 = wallclock();
    int i;
    int x = 0;
    for (i = 0; i < 1000; i++) x += i;
    double t1 = wallclock();
    printf("%d %d\n", x, t1 > t0);
    return 0;
}`)
	if s.Output() != "499500 1\n" {
		t.Errorf("output = %q", s.Output())
	}
	if s.Makespan() == 0 {
		t.Error("makespan should be nonzero")
	}
}

func TestClockScalesWithWork(t *testing.T) {
	small := runMain(t, `int main(){ int i; int x=0; for(i=0;i<100;i++) x+=i; return 0; }`)
	big := runMain(t, `int main(){ int i; int x=0; for(i=0;i<10000;i++) x+=i; return 0; }`)
	if big.Makespan() < 50*small.Makespan() {
		t.Errorf("100x work should be ~100x time: small=%d big=%d", small.Makespan(), big.Makespan())
	}
}

func TestDivideByZeroError(t *testing.T) {
	_, err := tryRunMain(`int main() { int z = 0; return 1 / z; }`)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v, want division by zero", err)
	}
}

func TestNullDerefError(t *testing.T) {
	_, err := tryRunMain(`int main() { int *p = NULL; return *p; }`)
	if err == nil || !strings.Contains(err.Error(), "null pointer") {
		t.Errorf("err = %v, want null pointer", err)
	}
}

func TestUnknownFunctionError(t *testing.T) {
	_, err := tryRunMain(`int main() { pthread_self(); return 0; }`)
	if err == nil {
		t.Error("expected error for runtime-less pthread call")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("x.c", "int main( {"); err == nil {
		t.Error("parse error not reported")
	}
	if _, err := Compile("x.c", "int main() { return undeclared; }"); err == nil {
		t.Error("sema error not reported")
	}
}

func TestValueConvertRoundTrip(t *testing.T) {
	v := Convert(FloatValue(nil, 3.75), nil)
	if v.T.Kind != 0 { // void
		t.Skip("nil type converts to void")
	}
}

func TestCharAndShortTruncation(t *testing.T) {
	s := runMain(t, `
int main() {
    char c = 200;
    short h = 70000;
    unsigned int u = 0 - 1;
    printf("%d %d %u\n", c, h, u);
    return 0;
}`)
	if s.Output() != "-56 4464 4294967295\n" {
		t.Errorf("output = %q", s.Output())
	}
}

// TestDeterminism: two identical runs give identical makespans and output.
func TestDeterminism(t *testing.T) {
	src := `
int data[64];
int main() {
    int i;
    for (i = 0; i < 64; i++) data[i] = i * 3;
    int sum = 0;
    for (i = 0; i < 64; i++) sum += data[i];
    printf("%d\n", sum);
    return 0;
}`
	a := runMain(t, src)
	b := runMain(t, src)
	if a.Makespan() != b.Makespan() || a.Output() != b.Output() {
		t.Errorf("nondeterministic: %d/%q vs %d/%q", a.Makespan(), a.Output(), b.Makespan(), b.Output())
	}
}

// TestMemoryTimingVisible: touching uncached shared memory in a loop is
// slower than the same loop over cached private memory.
func TestMemoryTimingVisible(t *testing.T) {
	priv := runMain(t, `
int arr[256];
int main() { int i; int s=0; for (i=0;i<256;i++) s += arr[i&255]; return s; }`)

	pr, err := Compile("shared.c", `
int main() { int i; int s=0; int *arr = (int*)0x80000000; for (i=0;i<256;i++) s += arr[i&255]; return s; }`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sim := NewSim(sccsim.MustNew(sccsim.DefaultConfig()), pr)
	if _, err := sim.Spawn(0, pr.Funcs["main"], nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if sim.Makespan() < 2*priv.Makespan() {
		t.Errorf("shared loop %d ps should be >2x private loop %d ps", sim.Makespan(), priv.Makespan())
	}
}
