package interp

import (
	"fmt"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/types"
)

// The compile pass lowers each function once, at Load time, into the
// closure form of ir.go. Lowering is a transcription of eval.go/exec.go:
// every chargeCycles call, memory access and error message is emitted in
// the same order as the tree-walk engine, so the compiled engine produces
// byte-identical output AND identical simulated-time statistics — only
// host-side work (type switches, map lookups, per-call AST walks) is
// resolved ahead of time. Anything the compiler cannot resolve statically
// poisons the whole function, which then routes to the tree-walk engine;
// mixing engines per function is safe because both operate on the same
// Proc stack-pointer discipline (a program with any poisoned function
// falls back to the goroutine scheduler as a whole — see Sim.decideMode).
//
// Every lowered closure additionally follows the coroutine resumption
// protocol of coro.go. Each closure's body is a sequence of units
// separated by suspension sites; the frame it pushes on a yield records
// the unit to continue from plus any locals later units consume. A
// child-yield (the unit's sub-closure suspended and pushed its own
// frame) records the same unit, so re-entry re-calls the child, which
// resumes internally; a leaf-yield (chargeCycles or a typed accessor
// completed its effect and yielded) records the next unit. The two cases
// need no flag: after this closure pops its frame, the resuming bit is
// still set exactly when a deeper frame (the child's) remains.
//
// The resume dispatch is kept OFF the fresh path: closures test the
// resuming bit once, handle non-zero steps in a cold block (small
// resume-tail closures bound at compile time carry any duplicated
// suffix), and fall through to a straight-line fresh body that matches
// the pre-coroutine engine instruction for instruction. A step-0 frame
// ("inside my first child") also falls through — the child pops its own
// frame and resumes internally.

// compileProgram lowers every function of a loaded program.
func compileProgram(pr *Program) {
	pr.compiled = make(map[*ast.FuncDecl]*compiledFunc, len(pr.funcList))
	pr.compiledList = make([]*compiledFunc, len(pr.funcList))
	// Two phases: layouts first, so call sites can reference any callee's
	// shell (recursion, forward calls), then bodies.
	for i, fn := range pr.funcList {
		cf := &compiledFunc{decl: fn, name: fn.Name}
		cf.buildLayout()
		pr.compiled[fn] = cf
		pr.compiledList[i] = cf
	}
	pr.fullyCompiled = true
	for _, cf := range pr.compiledList {
		if cf.decl.Body == nil {
			continue
		}
		if cf.fallback {
			pr.fullyCompiled = false
			continue
		}
		c := &compiler{pr: pr, cf: cf, slotIdx: make(map[*ast.Symbol]int)}
		for i, sd := range cf.slots {
			// Last allocation wins, mirroring the reference frame map.
			c.slotIdx[sd.sym] = i
		}
		body := c.compileBlock(cf.decl.Body)
		if c.poison {
			cf.fallback = true
			pr.fullyCompiled = false
			continue
		}
		cf.body = body
	}
}

// buildLayout computes the frame layout exactly as the reference
// pushFrame does: one slot per named parameter, then one per local
// declaration anywhere in the body, in Inspect (source) order.
func (cf *compiledFunc) buildLayout() {
	fn := cf.decl
	add := func(sym *ast.Symbol, t *types.Type) int {
		if t == nil {
			cf.fallback = true
			return -1
		}
		size := uint32(t.Size())
		if size == 0 {
			size = 4
		}
		a := uint32(t.Align())
		if a == 0 {
			a = 4
		}
		cf.slots = append(cf.slots, slotDef{sym: sym, size: size, amask: a - 1})
		return len(cf.slots) - 1
	}
	cf.paramSlot = make([]int, len(fn.Params))
	cf.paramType = make([]*types.Type, len(fn.Params))
	cf.paramStore = make([]typedStore, len(fn.Params))
	for i, prm := range fn.Params {
		cf.paramSlot[i] = -1
		cf.paramType[i] = prm.Type
		cf.paramStore[i] = makeStore(prm.Type)
		if prm.Sym != nil {
			cf.paramSlot[i] = add(prm.Sym, prm.Type)
		}
	}
	if fn.Body == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeclStmt); ok && d.Decl.Sym != nil {
			add(d.Decl.Sym, d.Decl.Type)
		}
		return true
	})
}

// compiler lowers one function body.
type compiler struct {
	pr      *Program
	cf      *compiledFunc
	slotIdx map[*ast.Symbol]int
	poison  bool
}

// bail poisons the function; the returned closure is never executed.
func (c *compiler) bail() evalFn {
	c.poison = true
	return func(p *Proc) (Value, error) { return Value{}, fmt.Errorf("interp: poisoned function") }
}

func errEval(err error) evalFn {
	return func(p *Proc) (Value, error) { return Value{}, err }
}

// b2i packs a saved boolean into a frame counter field.
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// compileBlock lowers a statement list (no per-block statement tick; the
// enclosing BlockStmt node, when there is one, carries its own).
func (c *compiler) compileBlock(b *ast.BlockStmt) execFn {
	list := make([]execFn, len(b.List))
	for i, s := range b.List {
		list[i] = c.compileStmt(s)
	}
	switch len(list) {
	case 0:
		return func(p *Proc, ret *Value) (ctrl, error) { return ctrlNone, nil }
	case 1:
		return list[0]
	}
	return func(p *Proc, ret *Value) (ctrl, error) {
		start := 0
		if p.coResuming {
			// A fused resume index rides the top frame (always this
			// block's own record: outer frames are already popped, and
			// the descendant frame it fused onto is popped only after
			// this block re-enters it). Clearing the piggy bits here —
			// before the carrier's owner ever pops — is what keeps the
			// general pop free of piggy decoding.
			if n := len(p.kstack) - 1; n >= 0 && p.kstack[n].step&kPiggy != 0 {
				start = int(p.kstack[n].step>>kPiggyShift) & kPiggyMax
				p.kstack[n].step &^= kPiggyBits
			} else {
				start = p.popKRef().step
			}
		}
		for i := start; i < len(list); i++ {
			if ct, err := list[i](p, ret); err != nil || ct != ctrlNone {
				if err == errYield {
					// Fuse the resume index into the frame the yielding
					// child just pushed instead of pushing one of our
					// own, when that frame has room (no piggy yet, own
					// step within 13 bits). One 8191-way statement list
					// or an already-claimed carrier falls back to a
					// plain frame.
					if n := len(p.kstack) - 1; n >= 0 && i <= kPiggyMax &&
						p.kstack[n].step&kPiggyBits == 0 {
						p.kstack[n].step |= kPiggy | int32(i)<<kPiggyShift
					} else {
						p.pushK(kframe{step: i})
					}
				}
				return ct, err
			}
		}
		return ctrlNone, nil
	}
}

// tick is the per-statement prologue of the reference execStmt. It must
// not yield (Runtime.Tick is documented non-yielding), so statement
// combinators run it only on fresh entry.
func (p *Proc) tick() {
	p.Ops++
	if rt := p.Sim.Runtime; rt != nil {
		rt.Tick(p)
	}
}

func (c *compiler) compileStmt(s ast.Stmt) execFn {
	switch n := s.(type) {
	// BlockStmt and ExprStmt are TRANSPARENT combinators: single-child
	// pass-throughs whose resume unconditionally re-enters the child and
	// restores no locals. They push no frame — on a re-descent the
	// resuming bit alone routes them straight into the child (skipping
	// the tick, which already ran on fresh entry) — so every suspension
	// that crosses them saves a frame both ways.
	case *ast.BlockStmt:
		inner := c.compileBlock(n)
		return func(p *Proc, ret *Value) (ctrl, error) {
			if !p.coResuming {
				p.tick()
			}
			return inner(p, ret)
		}

	case *ast.DeclStmt:
		return c.compileDecl(n)

	case *ast.ExprStmt:
		x := c.compileExpr(n.X)
		return func(p *Proc, ret *Value) (ctrl, error) {
			if !p.coResuming {
				p.tick()
			}
			_, err := x(p)
			return ctrlNone, err
		}

	case *ast.IfStmt:
		cond := c.compileExpr(n.Cond)
		then := c.compileStmt(n.Then)
		var els execFn
		if n.Else != nil {
			els = c.compileStmt(n.Else)
		}
		// Units: 1 condition eval, 2 post-charge branch select (n = the
		// saved condition), 3 inside the taken branch.
		return func(p *Proc, ret *Value) (ctrl, error) {
			step, cb := 0, false
			if p.coResuming {
				fr := p.popKRef()
				step, cb = fr.step, fr.n != 0
			} else {
				p.tick()
			}
			if step <= 1 {
				v, err := cond(p)
				if err != nil {
					if err == errYield {
						p.pushK(kframe{step: 1})
					}
					return ctrlNone, err
				}
				cb = v.Bool()
				if err := p.chargeCycles(costALU); err != nil {
					p.pushK(kframe{step: 2, n: b2i(cb)})
					return ctrlNone, err
				}
			}
			if cb {
				ct, err := then(p, ret)
				if err == errYield {
					p.pushK(kframe{step: 3, n: 1})
				}
				return ct, err
			}
			if els != nil {
				ct, err := els(p, ret)
				if err == errYield {
					p.pushK(kframe{step: 3})
				}
				return ct, err
			}
			return ctrlNone, nil
		}

	case *ast.ForStmt:
		var init execFn
		if n.Init != nil {
			init = c.compileStmt(n.Init)
		}
		var cond evalFn
		if n.Cond != nil {
			cond = c.compileExpr(n.Cond)
		}
		var post evalFn
		if n.Post != nil {
			post = c.compileExpr(n.Post)
		}
		body := c.compileStmt(n.Body)
		// Units per iteration: 2 cond eval, 3 post-charge test (n = the
		// saved condition), 4 body, 5 post expression; unit 1 is the
		// one-time init.
		return func(p *Proc, ret *Value) (ctrl, error) {
			step, cbSaved := 0, false
			if p.coResuming {
				fr := p.popKRef()
				step, cbSaved = fr.step, fr.n != 0
			} else {
				p.tick()
			}
			if step <= 1 {
				if init != nil {
					if _, err := init(p, ret); err != nil {
						if err == errYield {
							p.pushK(kframe{step: 1})
						}
						return ctrlNone, err
					}
				}
				step = 2
			}
			for {
				if step <= 2 {
					if cond != nil {
						v, err := cond(p)
						if err != nil {
							if err == errYield {
								p.pushK(kframe{step: 2})
							}
							return ctrlNone, err
						}
						cb := v.Bool()
						if err := p.chargeCycles(costALU); err != nil {
							p.pushK(kframe{step: 3, n: b2i(cb)})
							return ctrlNone, err
						}
						if !cb {
							break
						}
					}
				} else if step == 3 {
					if !cbSaved {
						break
					}
				}
				if step <= 4 {
					ct, err := body(p, ret)
					if err != nil {
						if err == errYield {
							p.pushK(kframe{step: 4})
						}
						return ctrlNone, err
					}
					if ct == ctrlBreak {
						break
					}
					if ct == ctrlReturn {
						return ct, nil
					}
				}
				if post != nil {
					if _, err := post(p); err != nil {
						if err == errYield {
							p.pushK(kframe{step: 5})
						}
						return ctrlNone, err
					}
				}
				step = 2
			}
			return ctrlNone, nil
		}

	case *ast.WhileStmt:
		cond := c.compileExpr(n.Cond)
		body := c.compileStmt(n.Body)
		// Units per iteration: 1 cond eval, 2 post-charge test, 3 body.
		return func(p *Proc, ret *Value) (ctrl, error) {
			step, cbSaved := 0, false
			if p.coResuming {
				fr := p.popKRef()
				step, cbSaved = fr.step, fr.n != 0
			} else {
				p.tick()
			}
			for {
				if step <= 1 {
					v, err := cond(p)
					if err != nil {
						if err == errYield {
							p.pushK(kframe{step: 1})
						}
						return ctrlNone, err
					}
					cb := v.Bool()
					if err := p.chargeCycles(costALU); err != nil {
						p.pushK(kframe{step: 2, n: b2i(cb)})
						return ctrlNone, err
					}
					if !cb {
						return ctrlNone, nil
					}
				} else if step == 2 {
					if !cbSaved {
						return ctrlNone, nil
					}
				}
				ct, err := body(p, ret)
				if err != nil {
					if err == errYield {
						p.pushK(kframe{step: 3})
					}
					return ctrlNone, err
				}
				if ct == ctrlBreak {
					return ctrlNone, nil
				}
				if ct == ctrlReturn {
					return ct, nil
				}
				step = 1
			}
		}

	case *ast.DoWhileStmt:
		body := c.compileStmt(n.Body)
		cond := c.compileExpr(n.Cond)
		// Units per iteration: 1 body, 2 cond eval, 3 post-charge test.
		return func(p *Proc, ret *Value) (ctrl, error) {
			step, cbSaved := 0, false
			if p.coResuming {
				fr := p.popKRef()
				step, cbSaved = fr.step, fr.n != 0
			} else {
				p.tick()
			}
			for {
				if step <= 1 {
					ct, err := body(p, ret)
					if err != nil {
						if err == errYield {
							p.pushK(kframe{step: 1})
						}
						return ctrlNone, err
					}
					if ct == ctrlBreak {
						return ctrlNone, nil
					}
					if ct == ctrlReturn {
						return ct, nil
					}
				}
				if step <= 2 {
					v, err := cond(p)
					if err != nil {
						if err == errYield {
							p.pushK(kframe{step: 2})
						}
						return ctrlNone, err
					}
					cb := v.Bool()
					if err := p.chargeCycles(costALU); err != nil {
						p.pushK(kframe{step: 3, n: b2i(cb)})
						return ctrlNone, err
					}
					if !cb {
						return ctrlNone, nil
					}
				} else if step == 3 {
					if !cbSaved {
						return ctrlNone, nil
					}
				}
				step = 1
			}
		}

	case *ast.SwitchStmt:
		tag := c.compileExpr(n.Tag)
		type ccase struct {
			value evalFn // nil => default
			body  []execFn
		}
		cases := make([]ccase, len(n.Cases))
		for i, cl := range n.Cases {
			if cl.Value != nil {
				cases[i].value = c.compileExpr(cl.Value)
			}
			cases[i].body = make([]execFn, len(cl.Body))
			for j, cs := range cl.Body {
				cases[i].body[j] = c.compileStmt(cs)
			}
		}
		// Units: 1 tag eval, 2 post-charge dispatch (n = tag), 3 case-
		// value eval (a = case index), 4 case-body stmt (a = case,
		// n = stmt index — the tag is dead once a body runs, and
		// matched stays true from there on).
		return func(p *Proc, ret *Value) (ctrl, error) {
			var tagI int64
			step, startCase, startStmt := 0, 0, 0
			matched := false
			if p.coResuming {
				fr := p.popKRef()
				step, tagI = fr.step, fr.n
				switch step {
				case 3:
					startCase = int(fr.a)
				case 4:
					startCase = int(fr.a)
					startStmt = int(fr.n)
					matched = true
				}
			} else {
				p.tick()
			}
			if step <= 1 {
				tv, err := tag(p)
				if err != nil {
					if err == errYield {
						p.pushK(kframe{step: 1})
					}
					return ctrlNone, err
				}
				tagI = tv.Int()
				if err := p.chargeCycles(costALU); err != nil {
					p.pushK(kframe{step: 2, n: tagI})
					return ctrlNone, err
				}
			}
			for i := startCase; i < len(cases); i++ {
				cl := &cases[i]
				if !matched {
					if cl.value == nil {
						matched = true
					} else {
						cv, err := cl.value(p)
						if err != nil {
							if err == errYield {
								p.pushK(kframe{step: 3, n: tagI, a: uint32(i)})
							}
							return ctrlNone, err
						}
						matched = cv.Int() == tagI
					}
				}
				if !matched {
					continue
				}
				for j := startStmt; j < len(cl.body); j++ {
					ct, err := cl.body[j](p, ret)
					if err != nil {
						if err == errYield {
							p.pushK(kframe{step: 4, a: uint32(i), n: int64(j)})
						}
						return ctrlNone, err
					}
					switch ct {
					case ctrlBreak:
						return ctrlNone, nil
					case ctrlReturn, ctrlContinue:
						return ct, nil
					}
				}
				startStmt = 0
			}
			return ctrlNone, nil
		}

	case *ast.ReturnStmt:
		if n.Result == nil {
			return func(p *Proc, ret *Value) (ctrl, error) {
				p.tick()
				return ctrlReturn, nil
			}
		}
		res := c.compileExpr(n.Result)
		// Transparent: resume re-enters the result expression; nothing
		// happens between its completion and the return.
		return func(p *Proc, ret *Value) (ctrl, error) {
			if !p.coResuming {
				p.tick()
			}
			v, err := res(p)
			if err != nil {
				return ctrlNone, err
			}
			*ret = v
			return ctrlReturn, nil
		}

	case *ast.BreakStmt:
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			return ctrlBreak, nil
		}
	case *ast.ContinueStmt:
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			return ctrlContinue, nil
		}
	case *ast.EmptyStmt:
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			return ctrlNone, nil
		}

	default:
		err := fmt.Errorf("%s: cannot execute %T", s.Pos(), s)
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			return ctrlNone, err
		}
	}
}

// compileDecl lowers a local declaration: the slot address comes from the
// frame arena, initialisers store with full memory timing, and array
// initialiser lists zero-fill the remainder, all as the reference does.
// Units: 1 init eval, 2 init store done, 3 list element (n = index; a
// leaf-yield at the element store records the next index), 5 zero-fill
// element (n = next index). Slot addresses are resolved per unit — never
// at entry — because cfp still points at the innermost frame while a
// resume is descending.
func (c *compiler) compileDecl(n *ast.DeclStmt) execFn {
	d := n.Decl
	if d.Sym == nil {
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			return ctrlNone, nil
		}
	}
	idx, ok := c.slotIdx[d.Sym]
	if !ok || d.Type == nil {
		// A local whose symbol is not in its own function's layout cannot
		// happen for sema-checked trees; keep the reference behaviour.
		c.poison = true
		return nil
	}
	typ := d.Type
	var init evalFn
	if d.Init != nil {
		init = c.compileExpr(d.Init)
	}
	var initLst []evalFn
	var elem *types.Type
	var elemSize uint32
	zeroFrom, zeroTo := 0, 0
	if len(d.InitLst) > 0 {
		elem = d.Type.Elem
		if elem == nil {
			// Aggregate initialiser on a scalar: defer the reference error
			// to run time (after the tick, like execStmt).
			err := fmt.Errorf("%s: aggregate initialiser on scalar %s", d.Pos(), d.Name)
			return func(p *Proc, ret *Value) (ctrl, error) {
				step := 0
				if p.coResuming {
					step = p.popKRef().step
				} else {
					p.tick()
				}
				if init != nil && step <= 1 { // mirrors execStmt order: Init runs first
					v, ierr := init(p)
					if ierr != nil {
						if ierr == errYield {
							p.pushK(kframe{step: 1})
						}
						return ctrlNone, ierr
					}
					if serr := p.storeValue(p.slotAddr(idx), typ, v); serr != nil {
						if serr == errYield {
							p.pushK(kframe{step: 2})
						}
						return ctrlNone, serr
					}
				}
				return ctrlNone, err
			}
		}
		elemSize = uint32(elem.Size())
		initLst = make([]evalFn, len(d.InitLst))
		for i, e := range d.InitLst {
			initLst[i] = c.compileExpr(e)
		}
		if d.Type.Kind == types.Array {
			zeroFrom, zeroTo = len(d.InitLst), d.Type.Len
		}
	}
	sf := makeStore(typ)
	var elemStore typedStore
	if elem != nil {
		elemStore = makeStore(elem)
	}
	return func(p *Proc, ret *Value) (ctrl, error) {
		step := 0
		listFrom, zFrom := 0, zeroFrom
		if p.coResuming {
			fr := p.popKRef()
			step = fr.step
			switch step {
			case 3:
				listFrom = int(fr.n)
			case 5:
				zFrom = int(fr.n)
			}
		} else {
			p.tick()
		}
		if step <= 1 && init != nil {
			v, err := init(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{step: 1})
				}
				return ctrlNone, err
			}
			if _, err := sf(p, p.slotAddr(idx), v); err != nil {
				if err == errYield {
					p.pushK(kframe{step: 2})
				}
				return ctrlNone, err
			}
		}
		if step <= 3 {
			for i := listFrom; i < len(initLst); i++ {
				v, err := initLst[i](p)
				if err != nil {
					if err == errYield {
						p.pushK(kframe{step: 3, n: int64(i)})
					}
					return ctrlNone, err
				}
				if _, err := elemStore(p, p.slotAddr(idx)+uint32(i)*elemSize, v); err != nil {
					if err == errYield {
						p.pushK(kframe{step: 3, n: int64(i + 1)})
					}
					return ctrlNone, err
				}
			}
		}
		if zeroTo > zFrom {
			zero := IntValue(types.IntType, 0)
			for i := zFrom; i < zeroTo; i++ {
				if _, err := elemStore(p, p.slotAddr(idx)+uint32(i)*elemSize, zero); err != nil {
					if err == errYield {
						p.pushK(kframe{step: 5, n: int64(i + 1)})
					}
					return ctrlNone, err
				}
			}
		}
		return ctrlNone, nil
	}
}
