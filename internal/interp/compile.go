package interp

import (
	"fmt"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/token"
	"hsmcc/internal/cc/types"
)

// The compile pass lowers each function once, at Load time, into the
// closure form of ir.go. Lowering is a transcription of eval.go/exec.go:
// every chargeCycles call, memory access and error message is emitted in
// the same order as the tree-walk engine, so the compiled engine produces
// byte-identical output AND identical simulated-time statistics — only
// host-side work (type switches, map lookups, per-call AST walks) is
// resolved ahead of time. Anything the compiler cannot resolve statically
// poisons the whole function, which then routes to the tree-walk engine;
// mixing engines per function is safe because both operate on the same
// Proc stack-pointer discipline.

// compileProgram lowers every function of a loaded program.
func compileProgram(pr *Program) {
	pr.compiled = make(map[*ast.FuncDecl]*compiledFunc, len(pr.funcList))
	pr.compiledList = make([]*compiledFunc, len(pr.funcList))
	// Two phases: layouts first, so call sites can reference any callee's
	// shell (recursion, forward calls), then bodies.
	for i, fn := range pr.funcList {
		cf := &compiledFunc{decl: fn, name: fn.Name}
		cf.buildLayout()
		pr.compiled[fn] = cf
		pr.compiledList[i] = cf
	}
	for _, cf := range pr.compiledList {
		if cf.fallback || cf.decl.Body == nil {
			continue
		}
		c := &compiler{pr: pr, cf: cf, slotIdx: make(map[*ast.Symbol]int)}
		for i, sd := range cf.slots {
			// Last allocation wins, mirroring the reference frame map.
			c.slotIdx[sd.sym] = i
		}
		body := c.compileBlock(cf.decl.Body)
		if c.poison {
			cf.fallback = true
			continue
		}
		cf.body = body
	}
}

// buildLayout computes the frame layout exactly as the reference
// pushFrame does: one slot per named parameter, then one per local
// declaration anywhere in the body, in Inspect (source) order.
func (cf *compiledFunc) buildLayout() {
	fn := cf.decl
	add := func(sym *ast.Symbol, t *types.Type) int {
		if t == nil {
			cf.fallback = true
			return -1
		}
		size := uint32(t.Size())
		if size == 0 {
			size = 4
		}
		a := uint32(t.Align())
		if a == 0 {
			a = 4
		}
		cf.slots = append(cf.slots, slotDef{sym: sym, size: size, amask: a - 1})
		return len(cf.slots) - 1
	}
	cf.paramSlot = make([]int, len(fn.Params))
	cf.paramType = make([]*types.Type, len(fn.Params))
	cf.paramStore = make([]typedStore, len(fn.Params))
	for i, prm := range fn.Params {
		cf.paramSlot[i] = -1
		cf.paramType[i] = prm.Type
		cf.paramStore[i] = makeStore(prm.Type)
		if prm.Sym != nil {
			cf.paramSlot[i] = add(prm.Sym, prm.Type)
		}
	}
	if fn.Body == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeclStmt); ok && d.Decl.Sym != nil {
			add(d.Decl.Sym, d.Decl.Type)
		}
		return true
	})
}

// compiler lowers one function body.
type compiler struct {
	pr      *Program
	cf      *compiledFunc
	slotIdx map[*ast.Symbol]int
	poison  bool
}

// bail poisons the function; the returned closure is never executed.
func (c *compiler) bail() evalFn {
	c.poison = true
	return func(p *Proc) (Value, error) { return Value{}, fmt.Errorf("interp: poisoned function") }
}

func errEval(err error) evalFn {
	return func(p *Proc) (Value, error) { return Value{}, err }
}

// compileLoadOf turns a compiled lvalue into an rvalue closure: arrays
// decay to element pointers, everything else loads through the typed
// accessor when the stored type is statically known.
func (c *compiler) compileLoadOf(lf lvalFn, st *types.Type) evalFn {
	if st != nil {
		if st.Kind == types.Array {
			pt := types.PointerTo(st.Elem)
			return func(p *Proc) (Value, error) {
				addr, _, err := lf(p)
				if err != nil {
					return Value{}, err
				}
				return PtrValue(pt, addr), nil
			}
		}
		ld := makeLoad(st)
		return func(p *Proc) (Value, error) {
			addr, _, err := lf(p)
			if err != nil {
				return Value{}, err
			}
			return ld(p, addr)
		}
	}
	return func(p *Proc) (Value, error) {
		addr, t, err := lf(p)
		if err != nil {
			return Value{}, err
		}
		if t.Kind == types.Array {
			return PtrValue(types.PointerTo(t.Elem), addr), nil
		}
		return p.loadValue(addr, t)
	}
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// compileBlock lowers a statement list (no per-block statement tick; the
// enclosing BlockStmt node, when there is one, carries its own).
func (c *compiler) compileBlock(b *ast.BlockStmt) execFn {
	list := make([]execFn, len(b.List))
	for i, s := range b.List {
		list[i] = c.compileStmt(s)
	}
	switch len(list) {
	case 0:
		return func(p *Proc, ret *Value) (ctrl, error) { return ctrlNone, nil }
	case 1:
		return list[0]
	}
	return func(p *Proc, ret *Value) (ctrl, error) {
		for _, f := range list {
			if ct, err := f(p, ret); err != nil || ct != ctrlNone {
				return ct, err
			}
		}
		return ctrlNone, nil
	}
}

// tick is the per-statement prologue of the reference execStmt.
func (p *Proc) tick() {
	p.Ops++
	if rt := p.Sim.Runtime; rt != nil {
		rt.Tick(p)
	}
}

func (c *compiler) compileStmt(s ast.Stmt) execFn {
	switch n := s.(type) {
	case *ast.BlockStmt:
		inner := c.compileBlock(n)
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			return inner(p, ret)
		}

	case *ast.DeclStmt:
		return c.compileDecl(n)

	case *ast.ExprStmt:
		x := c.compileExpr(n.X)
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			_, err := x(p)
			return ctrlNone, err
		}

	case *ast.IfStmt:
		cond := c.compileExpr(n.Cond)
		then := c.compileStmt(n.Then)
		var els execFn
		if n.Else != nil {
			els = c.compileStmt(n.Else)
		}
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			v, err := cond(p)
			if err != nil {
				return ctrlNone, err
			}
			p.chargeCycles(costALU)
			if v.Bool() {
				return then(p, ret)
			}
			if els != nil {
				return els(p, ret)
			}
			return ctrlNone, nil
		}

	case *ast.ForStmt:
		var init execFn
		if n.Init != nil {
			init = c.compileStmt(n.Init)
		}
		var cond evalFn
		if n.Cond != nil {
			cond = c.compileExpr(n.Cond)
		}
		var post evalFn
		if n.Post != nil {
			post = c.compileExpr(n.Post)
		}
		body := c.compileStmt(n.Body)
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			if init != nil {
				if _, err := init(p, ret); err != nil {
					return ctrlNone, err
				}
			}
			for {
				if cond != nil {
					v, err := cond(p)
					if err != nil {
						return ctrlNone, err
					}
					p.chargeCycles(costALU)
					if !v.Bool() {
						break
					}
				}
				ct, err := body(p, ret)
				if err != nil {
					return ctrlNone, err
				}
				if ct == ctrlBreak {
					break
				}
				if ct == ctrlReturn {
					return ct, nil
				}
				if post != nil {
					if _, err := post(p); err != nil {
						return ctrlNone, err
					}
				}
			}
			return ctrlNone, nil
		}

	case *ast.WhileStmt:
		cond := c.compileExpr(n.Cond)
		body := c.compileStmt(n.Body)
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			for {
				v, err := cond(p)
				if err != nil {
					return ctrlNone, err
				}
				p.chargeCycles(costALU)
				if !v.Bool() {
					return ctrlNone, nil
				}
				ct, err := body(p, ret)
				if err != nil {
					return ctrlNone, err
				}
				if ct == ctrlBreak {
					return ctrlNone, nil
				}
				if ct == ctrlReturn {
					return ct, nil
				}
			}
		}

	case *ast.DoWhileStmt:
		body := c.compileStmt(n.Body)
		cond := c.compileExpr(n.Cond)
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			for {
				ct, err := body(p, ret)
				if err != nil {
					return ctrlNone, err
				}
				if ct == ctrlBreak {
					return ctrlNone, nil
				}
				if ct == ctrlReturn {
					return ct, nil
				}
				v, err := cond(p)
				if err != nil {
					return ctrlNone, err
				}
				p.chargeCycles(costALU)
				if !v.Bool() {
					return ctrlNone, nil
				}
			}
		}

	case *ast.SwitchStmt:
		tag := c.compileExpr(n.Tag)
		type ccase struct {
			value evalFn // nil => default
			body  []execFn
		}
		cases := make([]ccase, len(n.Cases))
		for i, cl := range n.Cases {
			if cl.Value != nil {
				cases[i].value = c.compileExpr(cl.Value)
			}
			cases[i].body = make([]execFn, len(cl.Body))
			for j, cs := range cl.Body {
				cases[i].body[j] = c.compileStmt(cs)
			}
		}
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			tv, err := tag(p)
			if err != nil {
				return ctrlNone, err
			}
			p.chargeCycles(costALU)
			matched := false
			for i := range cases {
				cl := &cases[i]
				if !matched {
					if cl.value == nil {
						matched = true
					} else {
						cv, err := cl.value(p)
						if err != nil {
							return ctrlNone, err
						}
						matched = cv.Int() == tv.Int()
					}
				}
				if !matched {
					continue
				}
				for _, f := range cl.body {
					ct, err := f(p, ret)
					if err != nil {
						return ctrlNone, err
					}
					switch ct {
					case ctrlBreak:
						return ctrlNone, nil
					case ctrlReturn, ctrlContinue:
						return ct, nil
					}
				}
			}
			return ctrlNone, nil
		}

	case *ast.ReturnStmt:
		if n.Result == nil {
			return func(p *Proc, ret *Value) (ctrl, error) {
				p.tick()
				return ctrlReturn, nil
			}
		}
		res := c.compileExpr(n.Result)
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			v, err := res(p)
			if err != nil {
				return ctrlNone, err
			}
			*ret = v
			return ctrlReturn, nil
		}

	case *ast.BreakStmt:
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			return ctrlBreak, nil
		}
	case *ast.ContinueStmt:
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			return ctrlContinue, nil
		}
	case *ast.EmptyStmt:
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			return ctrlNone, nil
		}

	default:
		err := fmt.Errorf("%s: cannot execute %T", s.Pos(), s)
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			return ctrlNone, err
		}
	}
}

// compileDecl lowers a local declaration: the slot address comes from the
// frame arena, initialisers store with full memory timing, and array
// initialiser lists zero-fill the remainder, all as the reference does.
func (c *compiler) compileDecl(n *ast.DeclStmt) execFn {
	d := n.Decl
	if d.Sym == nil {
		return func(p *Proc, ret *Value) (ctrl, error) {
			p.tick()
			return ctrlNone, nil
		}
	}
	idx, ok := c.slotIdx[d.Sym]
	if !ok || d.Type == nil {
		// A local whose symbol is not in its own function's layout cannot
		// happen for sema-checked trees; keep the reference behaviour.
		c.poison = true
		return nil
	}
	typ := d.Type
	var init evalFn
	if d.Init != nil {
		init = c.compileExpr(d.Init)
	}
	var initLst []evalFn
	var elem *types.Type
	var elemSize uint32
	zeroFrom, zeroTo := 0, 0
	if len(d.InitLst) > 0 {
		elem = d.Type.Elem
		if elem == nil {
			// Aggregate initialiser on a scalar: defer the reference error
			// to run time (after the tick, like execStmt).
			err := fmt.Errorf("%s: aggregate initialiser on scalar %s", d.Pos(), d.Name)
			return func(p *Proc, ret *Value) (ctrl, error) {
				p.tick()
				if init != nil { // mirrors execStmt order: Init runs first
					v, ierr := init(p)
					if ierr != nil {
						return ctrlNone, ierr
					}
					addr := p.slotAddr(idx)
					if serr := p.storeValue(addr, typ, v); serr != nil {
						return ctrlNone, serr
					}
				}
				return ctrlNone, err
			}
		}
		elemSize = uint32(elem.Size())
		initLst = make([]evalFn, len(d.InitLst))
		for i, e := range d.InitLst {
			initLst[i] = c.compileExpr(e)
		}
		if d.Type.Kind == types.Array {
			zeroFrom, zeroTo = len(d.InitLst), d.Type.Len
		}
	}
	sf := makeStore(typ)
	var elemStore typedStore
	if elem != nil {
		elemStore = makeStore(elem)
	}
	return func(p *Proc, ret *Value) (ctrl, error) {
		p.tick()
		addr := p.slotAddr(idx)
		if init != nil {
			v, err := init(p)
			if err != nil {
				return ctrlNone, err
			}
			if _, err := sf(p, addr, v); err != nil {
				return ctrlNone, err
			}
		}
		for i, f := range initLst {
			v, err := f(p)
			if err != nil {
				return ctrlNone, err
			}
			if _, err := elemStore(p, addr+uint32(i)*elemSize, v); err != nil {
				return ctrlNone, err
			}
		}
		if zeroTo > zeroFrom {
			zero := IntValue(types.IntType, 0)
			for i := zeroFrom; i < zeroTo; i++ {
				if _, err := elemStore(p, addr+uint32(i)*elemSize, zero); err != nil {
					return ctrlNone, err
				}
			}
		}
		return ctrlNone, nil
	}
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

func (c *compiler) compileExpr(e ast.Expr) evalFn {
	switch n := e.(type) {
	case *ast.ParenExpr:
		return c.compileExpr(n.X)

	case *ast.IntLit:
		v := IntValue(types.IntType, n.Value)
		return func(p *Proc) (Value, error) { return v, nil }
	case *ast.FloatLit:
		v := FloatValue(types.DoubleType, n.Value)
		return func(p *Proc) (Value, error) { return v, nil }
	case *ast.CharLit:
		v := IntValue(types.CharType, int64(n.Value))
		return func(p *Proc) (Value, error) { return v, nil }

	case *ast.StringLit:
		addr, ok := c.pr.stringAddrs[n]
		if !ok {
			return errEval(fmt.Errorf("%s: string literal not in image", n.Pos()))
		}
		v := PtrValue(types.PointerTo(types.CharType), addr)
		return func(p *Proc) (Value, error) { return v, nil }

	case *ast.Ident:
		return c.compileIdent(n)

	case *ast.BinaryExpr:
		return c.compileBinary(n)

	case *ast.AssignExpr:
		return c.compileAssign(n)

	case *ast.UnaryExpr:
		return c.compileUnary(n)

	case *ast.PostfixExpr:
		lf, st := c.compileLValue(n.X)
		delta := int64(1)
		if n.Op == token.MinusMinus {
			delta = -1
		}
		if st != nil {
			ld, sf := makeLoad(st), makeStore(st)
			return func(p *Proc) (Value, error) {
				addr, _, err := lf(p)
				if err != nil {
					return Value{}, err
				}
				old, err := ld(p, addr)
				if err != nil {
					return Value{}, err
				}
				p.chargeCycles(costALU)
				if _, err := sf(p, addr, p.stepValue(old, st, delta)); err != nil {
					return Value{}, err
				}
				return old, nil
			}
		}
		return func(p *Proc) (Value, error) {
			addr, t, err := lf(p)
			if err != nil {
				return Value{}, err
			}
			old, err := p.loadValue(addr, t)
			if err != nil {
				return Value{}, err
			}
			p.chargeCycles(costALU)
			upd := p.stepValue(old, t, delta)
			if err := p.storeValue(addr, t, upd); err != nil {
				return Value{}, err
			}
			return old, nil
		}

	case *ast.IndexExpr:
		return c.compileLoadOf(c.compileLValue(n))

	case *ast.CallExpr:
		return c.compileCall(n)

	case *ast.CastExpr:
		x := c.compileExpr(n.X)
		to := n.To
		if to == nil {
			c.poison = true
			return c.bail()
		}
		toInt, toFloat := to.IsInteger(), to.IsFloat()
		return func(p *Proc) (Value, error) {
			v, err := x(p)
			if err != nil {
				return Value{}, err
			}
			if (v.IsFloat() && toInt) || (!v.IsFloat() && toFloat) {
				p.chargeCycles(costConv)
			}
			return Convert(v, to), nil
		}

	case *ast.SizeofExpr:
		t := n.OfType
		if t == nil && n.X != nil {
			t = n.X.ResultType()
		}
		if t == nil {
			return errEval(fmt.Errorf("%s: sizeof untyped operand", n.Pos()))
		}
		v := IntValue(types.UIntType, int64(t.Size()))
		return func(p *Proc) (Value, error) { return v, nil }

	case *ast.CondExpr:
		cond := c.compileExpr(n.Cond)
		then := c.compileExpr(n.Then)
		els := c.compileExpr(n.Else)
		return func(p *Proc) (Value, error) {
			v, err := cond(p)
			if err != nil {
				return Value{}, err
			}
			p.chargeCycles(costALU)
			if v.Bool() {
				return then(p)
			}
			return els(p)
		}

	case *ast.CommaExpr:
		x := c.compileExpr(n.X)
		y := c.compileExpr(n.Y)
		return func(p *Proc) (Value, error) {
			if _, err := x(p); err != nil {
				return Value{}, err
			}
			return y(p)
		}

	case *ast.MemberExpr:
		lf, st := c.compileLValue(n)
		if st != nil {
			ld := makeLoad(st)
			return func(p *Proc) (Value, error) {
				addr, _, err := lf(p)
				if err != nil {
					return Value{}, err
				}
				return ld(p, addr)
			}
		}
		return func(p *Proc) (Value, error) {
			addr, t, err := lf(p)
			if err != nil {
				return Value{}, err
			}
			return p.loadValue(addr, t)
		}

	default:
		return errEval(fmt.Errorf("%s: cannot evaluate %T", e.Pos(), e))
	}
}

// compileIdent resolves an identifier occurrence once: globals to their
// image address, locals to a frame slot index, functions to their encoded
// value — the reference engine redoes all of this on every occurrence.
func (c *compiler) compileIdent(n *ast.Ident) evalFn {
	if n.Sym == nil {
		switch n.Name {
		case "NULL":
			v := PtrValue(types.PointerTo(types.VoidType), 0)
			return func(p *Proc) (Value, error) { return v, nil }
		case "RCCE_COMM_WORLD":
			v := IntValue(types.OpaqueOf("RCCE_COMM"), 0)
			return func(p *Proc) (Value, error) { return v, nil }
		}
		return errEval(fmt.Errorf("%s: unresolved identifier %s", n.Pos(), n.Name))
	}
	if n.Sym.Kind == ast.SymFunc {
		fn, ok := c.pr.Funcs[n.Name]
		if !ok {
			return errEval(fmt.Errorf("%s: undefined function %s", n.Pos(), n.Name))
		}
		v := c.pr.FuncValue(fn)
		return func(p *Proc) (Value, error) { return v, nil }
	}
	typ := n.Sym.Type
	if typ == nil {
		c.poison = true
		return c.bail()
	}
	if idx, ok := c.slotIdx[n.Sym]; ok {
		if typ.Kind == types.Array {
			pt := types.PointerTo(typ.Elem)
			return func(p *Proc) (Value, error) {
				p.chargeCycles(costALU)
				return PtrValue(pt, p.slotAddr(idx)), nil
			}
		}
		ld := makeLoad(typ)
		return func(p *Proc) (Value, error) {
			return ld(p, p.slotAddr(idx))
		}
	}
	if addr, ok := c.pr.GlobalAddr(n.Sym); ok {
		if typ.Kind == types.Array {
			v := PtrValue(types.PointerTo(typ.Elem), addr)
			return func(p *Proc) (Value, error) {
				p.chargeCycles(costALU)
				return v, nil
			}
		}
		ld := makeLoad(typ)
		return func(p *Proc) (Value, error) {
			return ld(p, addr)
		}
	}
	return errEval(fmt.Errorf("%s: no storage for %s", n.Pos(), n.Name))
}

// compileLValue lowers e to an address resolver. The second result is
// the statically-known stored type when the compiler can prove it (used
// to specialise index arithmetic); the closure always reports the type
// it resolved, exactly as the reference evalLValue does.
func (c *compiler) compileLValue(e ast.Expr) (lvalFn, *types.Type) {
	switch n := e.(type) {
	case *ast.ParenExpr:
		return c.compileLValue(n.X)

	case *ast.Ident:
		if n.Sym == nil {
			err := fmt.Errorf("%s: %s is not assignable", n.Pos(), n.Name)
			return func(p *Proc) (uint32, *types.Type, error) { return 0, nil, err }, nil
		}
		typ := n.Sym.Type
		if idx, ok := c.slotIdx[n.Sym]; ok {
			return func(p *Proc) (uint32, *types.Type, error) {
				return p.slotAddr(idx), typ, nil
			}, typ
		}
		if addr, ok := c.pr.GlobalAddr(n.Sym); ok {
			return func(p *Proc) (uint32, *types.Type, error) {
				return addr, typ, nil
			}, typ
		}
		err := fmt.Errorf("%s: no storage for %s", n.Pos(), n.Name)
		return func(p *Proc) (uint32, *types.Type, error) { return 0, nil, err }, nil

	case *ast.UnaryExpr:
		if n.Op != token.Star {
			err := fmt.Errorf("%s: %s is not an lvalue", e.Pos(), n.Op)
			return func(p *Proc) (uint32, *types.Type, error) { return 0, nil, err }, nil
		}
		x := c.compileExpr(n.X)
		t := n.X.ResultType()
		var elem *types.Type
		if t != nil && t.IsPointerLike() {
			elem = t.Decay().Elem
		}
		if elem == nil {
			elem = types.IntType
		}
		nullErr := fmt.Errorf("%s: null pointer dereference", e.Pos())
		return func(p *Proc) (uint32, *types.Type, error) {
			v, err := x(p)
			if err != nil {
				return 0, nil, err
			}
			if v.Addr() == 0 {
				return 0, nil, nullErr
			}
			return v.Addr(), elem, nil
		}, elem

	case *ast.IndexExpr:
		return c.compileIndexLValue(n)

	case *ast.MemberExpr:
		return c.compileMemberLValue(n)

	default:
		err := fmt.Errorf("%s: %T is not an lvalue", e.Pos(), e)
		return func(p *Proc) (uint32, *types.Type, error) { return 0, nil, err }, nil
	}
}

// compileIndexLValue lowers x[i], replicating indexBase: array-typed
// bases use their storage address, pointer bases load the pointer first.
func (c *compiler) compileIndexLValue(n *ast.IndexExpr) (lvalFn, *types.Type) {
	idxFn := c.compileExpr(n.Index)
	bt := n.X.ResultType()
	if bt != nil && bt.Kind == types.Array {
		baseFn, staticT := c.compileLValue(n.X)
		if staticT != nil {
			elem := staticT.Elem
			if elem == nil {
				c.poison = true
				return nil, nil
			}
			elemSize := int64(elem.Size())
			return func(p *Proc) (uint32, *types.Type, error) {
				base, _, err := baseFn(p)
				if err != nil {
					return 0, nil, err
				}
				iv, err := idxFn(p)
				if err != nil {
					return 0, nil, err
				}
				p.chargeCycles(costALU)
				return base + uint32(iv.Int()*elemSize), elem, nil
			}, elem
		}
		// Base type only known at run time (error paths): mirror the
		// reference flow with the runtime type.
		return func(p *Proc) (uint32, *types.Type, error) {
			base, t, err := baseFn(p)
			if err != nil {
				return 0, nil, err
			}
			elem := t.Elem
			iv, err := idxFn(p)
			if err != nil {
				return 0, nil, err
			}
			p.chargeCycles(costALU)
			return base + uint32(iv.Int()*int64(elem.Size())), elem, nil
		}, nil
	}
	xFn := c.compileExpr(n.X)
	var elem *types.Type
	if bt != nil && bt.IsPointerLike() {
		elem = bt.Decay().Elem
	}
	if elem == nil {
		elem = types.IntType
	}
	elemSize := int64(elem.Size())
	nullErr := fmt.Errorf("%s: indexing a null pointer", n.Pos())
	return func(p *Proc) (uint32, *types.Type, error) {
		v, err := xFn(p)
		if err != nil {
			return 0, nil, err
		}
		if v.Addr() == 0 {
			return 0, nil, nullErr
		}
		iv, err := idxFn(p)
		if err != nil {
			return 0, nil, err
		}
		p.chargeCycles(costALU)
		return v.Addr() + uint32(iv.Int()*elemSize), elem, nil
	}, elem
}

// compileMemberLValue lowers x.f / x->f with the field offset resolved
// at compile time whenever the struct type is statically known.
func (c *compiler) compileMemberLValue(n *ast.MemberExpr) (lvalFn, *types.Type) {
	if n.Arrow {
		t := n.X.ResultType()
		if t == nil || t.Elem == nil {
			x := c.compileExpr(n.X)
			err := fmt.Errorf("%s: -> on non-pointer", n.Pos())
			return func(p *Proc) (uint32, *types.Type, error) {
				if _, e := x(p); e != nil {
					return 0, nil, e
				}
				return 0, nil, err
			}, nil
		}
		st := t.Elem
		f, ok := st.Field(n.Name)
		if !ok {
			x := c.compileExpr(n.X)
			err := fmt.Errorf("%s: no field %s in %s", n.Pos(), n.Name, st)
			return func(p *Proc) (uint32, *types.Type, error) {
				if _, e := x(p); e != nil {
					return 0, nil, e
				}
				return 0, nil, err
			}, nil
		}
		x := c.compileExpr(n.X)
		off := uint32(f.Offset)
		ft := f.Type
		return func(p *Proc) (uint32, *types.Type, error) {
			v, err := x(p)
			if err != nil {
				return 0, nil, err
			}
			p.chargeCycles(costALU)
			return v.Addr() + off, ft, nil
		}, ft
	}
	baseFn, staticT := c.compileLValue(n.X)
	if staticT == nil {
		// Inner lvalue type resolves at run time (error paths): replicate
		// the reference field lookup dynamically.
		name := n.Name
		pos := n.Pos()
		return func(p *Proc) (uint32, *types.Type, error) {
			base, st, err := baseFn(p)
			if err != nil {
				return 0, nil, err
			}
			f, ok := st.Field(name)
			if !ok {
				return 0, nil, fmt.Errorf("%s: no field %s in %s", pos, name, st)
			}
			p.chargeCycles(costALU)
			return base + uint32(f.Offset), f.Type, nil
		}, nil
	}
	f, ok := staticT.Field(n.Name)
	if !ok {
		err := fmt.Errorf("%s: no field %s in %s", n.Pos(), n.Name, staticT)
		return func(p *Proc) (uint32, *types.Type, error) {
			if _, _, e := baseFn(p); e != nil {
				return 0, nil, e
			}
			return 0, nil, err
		}, nil
	}
	off := uint32(f.Offset)
	ft := f.Type
	return func(p *Proc) (uint32, *types.Type, error) {
		base, _, err := baseFn(p)
		if err != nil {
			return 0, nil, err
		}
		p.chargeCycles(costALU)
		return base + off, ft, nil
	}, ft
}

func (c *compiler) compileUnary(n *ast.UnaryExpr) evalFn {
	switch n.Op {
	case token.Amp:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			if id.Sym != nil && id.Sym.Kind == ast.SymFunc {
				return c.compileIdent(id)
			}
			if id.Sym == nil && id.Name == "RCCE_COMM_WORLD" {
				v := PtrValue(types.PointerTo(types.OpaqueOf("RCCE_COMM")), 0)
				return func(p *Proc) (Value, error) { return v, nil }
			}
		}
		lf, _ := c.compileLValue(n.X)
		return func(p *Proc) (Value, error) {
			addr, t, err := lf(p)
			if err != nil {
				return Value{}, err
			}
			p.chargeCycles(costALU)
			return PtrValue(types.PointerTo(t), addr), nil
		}

	case token.Star:
		return c.compileLoadOf(c.compileLValue(n))

	case token.PlusPlus, token.MinusMinus:
		lf, st := c.compileLValue(n.X)
		delta := int64(1)
		if n.Op == token.MinusMinus {
			delta = -1
		}
		if st != nil {
			ld, sf := makeLoad(st), makeStore(st)
			return func(p *Proc) (Value, error) {
				addr, _, err := lf(p)
				if err != nil {
					return Value{}, err
				}
				old, err := ld(p, addr)
				if err != nil {
					return Value{}, err
				}
				p.chargeCycles(costALU)
				upd := p.stepValue(old, st, delta)
				if _, err := sf(p, addr, upd); err != nil {
					return Value{}, err
				}
				return upd, nil
			}
		}
		return func(p *Proc) (Value, error) {
			addr, t, err := lf(p)
			if err != nil {
				return Value{}, err
			}
			old, err := p.loadValue(addr, t)
			if err != nil {
				return Value{}, err
			}
			p.chargeCycles(costALU)
			upd := p.stepValue(old, t, delta)
			if err := p.storeValue(addr, t, upd); err != nil {
				return Value{}, err
			}
			return upd, nil
		}
	}

	x := c.compileExpr(n.X)
	switch n.Op {
	case token.Minus:
		return func(p *Proc) (Value, error) {
			v, err := x(p)
			if err != nil {
				return Value{}, err
			}
			if v.IsFloat() {
				p.chargeCycles(costFAdd)
				return FloatValue(v.T, -v.F), nil
			}
			p.chargeCycles(costALU)
			return IntValue(v.T, -v.I), nil
		}
	case token.Plus:
		return x
	case token.Bang:
		return func(p *Proc) (Value, error) {
			v, err := x(p)
			if err != nil {
				return Value{}, err
			}
			p.chargeCycles(costALU)
			if v.Bool() {
				return IntValue(types.IntType, 0), nil
			}
			return IntValue(types.IntType, 1), nil
		}
	case token.Tilde:
		return func(p *Proc) (Value, error) {
			v, err := x(p)
			if err != nil {
				return Value{}, err
			}
			p.chargeCycles(costALU)
			return IntValue(v.T, int64(int32(^uint32(v.Int())))), nil
		}
	default:
		err := fmt.Errorf("%s: unary %s unsupported", n.Pos(), n.Op)
		return func(p *Proc) (Value, error) {
			if _, e := x(p); e != nil {
				return Value{}, e
			}
			return Value{}, err
		}
	}
}

func (c *compiler) compileAssign(n *ast.AssignExpr) evalFn {
	lf, st := c.compileLValue(n.LHS)
	rf := c.compileExpr(n.RHS)
	if n.Op == token.Assign {
		if st != nil {
			sf := makeStore(st)
			return func(p *Proc) (Value, error) {
				addr, _, err := lf(p)
				if err != nil {
					return Value{}, err
				}
				rhs, err := rf(p)
				if err != nil {
					return Value{}, err
				}
				return sf(p, addr, rhs)
			}
		}
		return func(p *Proc) (Value, error) {
			addr, t, err := lf(p)
			if err != nil {
				return Value{}, err
			}
			rhs, err := rf(p)
			if err != nil {
				return Value{}, err
			}
			v := Convert(rhs, t)
			if err := p.storeValue(addr, t, v); err != nil {
				return Value{}, err
			}
			return v, nil
		}
	}
	op, opOK := compoundOps[n.Op]
	badOp := fmt.Errorf("%s: assignment op %s unsupported", n.Pos(), n.Op)
	if st != nil && opOK {
		ld, sf := makeLoad(st), makeStore(st)
		return func(p *Proc) (Value, error) {
			addr, _, err := lf(p)
			if err != nil {
				return Value{}, err
			}
			old, err := ld(p, addr)
			if err != nil {
				return Value{}, err
			}
			rhs, err := rf(p)
			if err != nil {
				return Value{}, err
			}
			res, err := p.applyBinaryFast(op, old, rhs, st)
			if err != nil {
				return Value{}, err
			}
			return sf(p, addr, res)
		}
	}
	return func(p *Proc) (Value, error) {
		addr, t, err := lf(p)
		if err != nil {
			return Value{}, err
		}
		old, err := p.loadValue(addr, t)
		if err != nil {
			return Value{}, err
		}
		rhs, err := rf(p)
		if err != nil {
			return Value{}, err
		}
		if !opOK {
			return Value{}, badOp
		}
		res, err := p.applyBinary(op, old, rhs, t)
		if err != nil {
			return Value{}, err
		}
		v := Convert(res, t)
		if err := p.storeValue(addr, t, v); err != nil {
			return Value{}, err
		}
		return v, nil
	}
}

func (c *compiler) compileBinary(n *ast.BinaryExpr) evalFn {
	x := c.compileExpr(n.X)
	y := c.compileExpr(n.Y)
	if n.Op == token.AndAnd || n.Op == token.OrOr {
		andand := n.Op == token.AndAnd
		return func(p *Proc) (Value, error) {
			xv, err := x(p)
			if err != nil {
				return Value{}, err
			}
			p.chargeCycles(costALU)
			if andand && !xv.Bool() {
				return IntValue(types.IntType, 0), nil
			}
			if !andand && xv.Bool() {
				return IntValue(types.IntType, 1), nil
			}
			yv, err := y(p)
			if err != nil {
				return Value{}, err
			}
			if yv.Bool() {
				return IntValue(types.IntType, 1), nil
			}
			return IntValue(types.IntType, 0), nil
		}
	}
	op, rt := n.Op, n.Typ
	return func(p *Proc) (Value, error) {
		xv, err := x(p)
		if err != nil {
			return Value{}, err
		}
		yv, err := y(p)
		if err != nil {
			return Value{}, err
		}
		return p.applyBinaryFast(op, xv, yv, rt)
	}
}

// compileCall classifies the call site once — direct (callee resolved to
// its compiled form), indirect (function-pointer variable), or builtin
// (runtime dispatch by name, then the interned common-libc subset) — the
// exact classification evalCall re-derives on every execution.
func (c *compiler) compileCall(n *ast.CallExpr) evalFn {
	pr := c.pr
	name := n.FuncName()
	argFns := make([]evalFn, len(n.Args))
	for i, a := range n.Args {
		argFns[i] = c.compileExpr(a)
	}
	cid := commonBuiltinID(name)
	unknownErr := fmt.Errorf("%s: call of unknown function %s", n.Pos(), name)
	builtinTail := func(p *Proc, argv []Value) (Value, error) {
		if rt := p.Sim.Runtime; rt != nil {
			v, handled, err := rt.CallBuiltin(p, name, argv)
			if err != nil {
				return Value{}, err
			}
			if handled {
				return v, nil
			}
		}
		v, handled, err := p.commonBuiltinByID(cid, argv)
		if err != nil {
			return Value{}, err
		}
		if handled {
			return v, nil
		}
		return Value{}, unknownErr
	}

	indirect := false
	if name == "" || (n.Fun.ResultType() != nil && pr.Funcs[name] == nil && !isKnownBuiltin(name)) {
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Sym != nil && id.Sym.Kind != ast.SymFunc {
			indirect = true
		}
	}
	if indirect {
		funFn := c.compileExpr(n.Fun)
		return func(p *Proc) (Value, error) {
			fv, err := funFn(p)
			if err != nil {
				return Value{}, err
			}
			cf := p.Sim.Program.compiledByValue(fv)
			argv, base, err := p.evalCompiledArgs(argFns)
			if err != nil {
				return Value{}, err
			}
			var v Value
			if cf != nil {
				v, err = p.dispatchCall(cf, argv)
			} else {
				v, err = builtinTail(p, argv)
			}
			p.argArena = p.argArena[:base]
			return v, err
		}
	}
	if fn := pr.Funcs[name]; fn != nil && fn.Body != nil {
		cf := pr.compiled[fn]
		return func(p *Proc) (Value, error) {
			argv, base, err := p.evalCompiledArgs(argFns)
			if err != nil {
				return Value{}, err
			}
			v, err := p.dispatchCall(cf, argv)
			p.argArena = p.argArena[:base]
			return v, err
		}
	}
	return func(p *Proc) (Value, error) {
		argv, base, err := p.evalCompiledArgs(argFns)
		if err != nil {
			return Value{}, err
		}
		v, err := builtinTail(p, argv)
		p.argArena = p.argArena[:base]
		return v, err
	}
}
