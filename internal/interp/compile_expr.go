package interp

import (
	"fmt"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/token"
	"hsmcc/internal/cc/types"
)

// Expression lowering (the expression half of the compile pass; the
// statement half and the pass driver live in compile.go). Every closure
// follows the coroutine resumption protocol, with the resume dispatch
// kept off the fresh path: a cold prologue handles non-zero steps —
// small resume-tail closures, bound once at compile time, carry any
// suffix a mid-expression resume re-enters — and the fresh body below
// it is the straight-line pre-coroutine code plus push-on-yield.

func (c *compiler) compileExpr(e ast.Expr) evalFn {
	switch n := e.(type) {
	case *ast.ParenExpr:
		return c.compileExpr(n.X)

	case *ast.IntLit:
		v := IntValue(types.IntType, n.Value)
		return func(p *Proc) (Value, error) { return v, nil }
	case *ast.FloatLit:
		v := FloatValue(types.DoubleType, n.Value)
		return func(p *Proc) (Value, error) { return v, nil }
	case *ast.CharLit:
		v := IntValue(types.CharType, int64(n.Value))
		return func(p *Proc) (Value, error) { return v, nil }

	case *ast.StringLit:
		addr, ok := c.pr.stringAddrs[n]
		if !ok {
			return errEval(fmt.Errorf("%s: string literal not in image", n.Pos()))
		}
		v := PtrValue(types.PointerTo(types.CharType), addr)
		return func(p *Proc) (Value, error) { return v, nil }

	case *ast.Ident:
		return c.compileIdent(n)

	case *ast.BinaryExpr:
		return c.compileBinary(n)

	case *ast.AssignExpr:
		return c.compileAssign(n)

	case *ast.UnaryExpr:
		return c.compileUnary(n)

	case *ast.PostfixExpr:
		return c.compileIncDec(n.X, n.Op == token.MinusMinus, false)

	case *ast.IndexExpr:
		return c.compileLoadOf(c.compileLValue(n))

	case *ast.CallExpr:
		return c.compileCall(n)

	case *ast.CastExpr:
		x := c.compileExpr(n.X)
		to := n.To
		if to == nil {
			c.poison = true
			return c.bail()
		}
		toInt, toFloat := to.IsInteger(), to.IsFloat()
		return func(p *Proc) (Value, error) {
			if p.coResuming {
				fr := p.popKRef()
				if fr.step != 0 { // conversion charge complete
					return Convert(fr.v, to), nil
				}
			}
			v, err := x(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{})
				}
				return Value{}, err
			}
			if (v.IsFloat() && toInt) || (!v.IsFloat() && toFloat) {
				if err := p.chargeCycles(costConv); err != nil {
					p.pushK(kframe{step: 1, v: v})
					return Value{}, err
				}
			}
			return Convert(v, to), nil
		}

	case *ast.SizeofExpr:
		t := n.OfType
		if t == nil && n.X != nil {
			t = n.X.ResultType()
		}
		if t == nil {
			return errEval(fmt.Errorf("%s: sizeof untyped operand", n.Pos()))
		}
		v := IntValue(types.UIntType, int64(t.Size()))
		return func(p *Proc) (Value, error) { return v, nil }

	case *ast.CondExpr:
		cond := c.compileExpr(n.Cond)
		then := c.compileExpr(n.Then)
		els := c.compileExpr(n.Else)
		// branch re-runs the selected arm on resume (charge-yield enters
		// it fresh, arm-yield re-calls it).
		branch := func(p *Proc, cb bool) (Value, error) {
			f := els
			if cb {
				f = then
			}
			v, err := f(p)
			if err == errYield {
				p.pushK(kframe{step: 1, n: b2i(cb)})
			}
			return v, err
		}
		return func(p *Proc) (Value, error) {
			if p.coResuming {
				fr := p.popKRef()
				if fr.step != 0 {
					return branch(p, fr.n != 0)
				}
			}
			v, err := cond(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{})
				}
				return Value{}, err
			}
			cb := v.Bool()
			if err := p.chargeCycles(costALU); err != nil {
				p.pushK(kframe{step: 1, n: b2i(cb)})
				return Value{}, err
			}
			return branch(p, cb)
		}

	case *ast.CommaExpr:
		x := c.compileExpr(n.X)
		y := c.compileExpr(n.Y)
		return func(p *Proc) (Value, error) {
			runX := true
			if p.coResuming {
				fr := p.popKRef()
				runX = fr.step == 0 // step 0: x suspended, re-enter it
			}
			if runX {
				if _, err := x(p); err != nil {
					if err == errYield {
						p.pushK(kframe{})
					}
					return Value{}, err
				}
			}
			v, err := y(p)
			if err == errYield {
				p.pushK(kframe{step: 1})
			}
			return v, err
		}

	case *ast.MemberExpr:
		lf, st := c.compileLValue(n)
		if st != nil {
			ld := makeLoad(st)
			return func(p *Proc) (Value, error) {
				if p.coResuming {
					fr := p.popKRef()
					if fr.step != 0 {
						return fr.v, nil
					}
				}
				addr, _, err := lf(p)
				if err != nil {
					if err == errYield {
						p.pushK(kframe{})
					}
					return Value{}, err
				}
				v, err := ld(p, addr)
				if err != nil {
					if err == errYield {
						p.pushK(kframe{step: 1, v: v})
					}
					return Value{}, err
				}
				return v, nil
			}
		}
		return func(p *Proc) (Value, error) {
			if p.coResuming {
				fr := p.popKRef()
				if fr.step != 0 {
					return fr.v, nil
				}
			}
			addr, t, err := lf(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{})
				}
				return Value{}, err
			}
			v, err := p.loadValue(addr, t)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{step: 1, v: v})
				}
				return Value{}, err
			}
			return v, nil
		}

	default:
		return errEval(fmt.Errorf("%s: cannot evaluate %T", e.Pos(), e))
	}
}

// compileIncDec lowers x++/x--/++x/--x (postfix returns the old value,
// prefix the updated one). Units: 0 lvalue, 1 load, 2 post-load charge,
// 3 store, 4 done (result saved).
func (c *compiler) compileIncDec(lhs ast.Expr, minus, prefix bool) evalFn {
	lf, st := c.compileLValue(lhs)
	delta := int64(1)
	if minus {
		delta = -1
	}
	if st != nil {
		ld, sf := makeLoad(st), makeStore(st)
		// tail finishes the operation from the post-load charge (step 2)
		// or the store (step 3).
		tail := func(p *Proc, addr uint32, old Value, step int) (Value, error) {
			if step <= 2 {
				if err := p.chargeCycles(costALU); err != nil {
					p.pushK(kframe{step: 3, a: addr, v: old})
					return Value{}, err
				}
			}
			res := old
			upd := p.stepValue(old, st, delta)
			if prefix {
				res = upd
			}
			if _, err := sf(p, addr, upd); err != nil {
				if err == errYield {
					p.pushK(kframe{step: 4, v: res})
				}
				return Value{}, err
			}
			return res, nil
		}
		return func(p *Proc) (Value, error) {
			if p.coResuming {
				fr := p.popKRef()
				switch fr.step {
				case 2, 3:
					return tail(p, fr.a, fr.v, fr.step)
				case 4:
					return fr.v, nil
				}
			}
			addr, _, err := lf(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{})
				}
				return Value{}, err
			}
			old, err := ld(p, addr)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{step: 2, a: addr, v: old})
				}
				return Value{}, err
			}
			if err := p.chargeCycles(costALU); err != nil {
				p.pushK(kframe{step: 3, a: addr, v: old})
				return Value{}, err
			}
			res := old
			upd := p.stepValue(old, st, delta)
			if prefix {
				res = upd
			}
			if _, err := sf(p, addr, upd); err != nil {
				if err == errYield {
					p.pushK(kframe{step: 4, v: res})
				}
				return Value{}, err
			}
			return res, nil
		}
	}
	tail := func(p *Proc, addr uint32, t *types.Type, old Value, step int) (Value, error) {
		if step <= 2 {
			if err := p.chargeCycles(costALU); err != nil {
				p.pushK(kframe{step: 3, a: addr, v: old, x: t})
				return Value{}, err
			}
		}
		res := old
		upd := p.stepValue(old, t, delta)
		if prefix {
			res = upd
		}
		if err := p.storeValue(addr, t, upd); err != nil {
			if err == errYield {
				p.pushK(kframe{step: 4, v: res})
			}
			return Value{}, err
		}
		return res, nil
	}
	return func(p *Proc) (Value, error) {
		if p.coResuming {
			fr := p.popKRef()
			switch fr.step {
			case 2, 3:
				t, _ := fr.x.(*types.Type)
				return tail(p, fr.a, t, fr.v, fr.step)
			case 4:
				return fr.v, nil
			}
		}
		addr, t, err := lf(p)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{})
			}
			return Value{}, err
		}
		old, err := p.loadValue(addr, t)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{step: 2, a: addr, v: old, x: t})
			}
			return Value{}, err
		}
		return tail(p, addr, t, old, 2)
	}
}

// compileIdent resolves an identifier occurrence once: globals to their
// image address, locals to a frame slot index, functions to their encoded
// value — the reference engine redoes all of this on every occurrence.
func (c *compiler) compileIdent(n *ast.Ident) evalFn {
	if n.Sym == nil {
		switch n.Name {
		case "NULL":
			v := PtrValue(types.PointerTo(types.VoidType), 0)
			return func(p *Proc) (Value, error) { return v, nil }
		case "RCCE_COMM_WORLD":
			v := IntValue(types.OpaqueOf("RCCE_COMM"), 0)
			return func(p *Proc) (Value, error) { return v, nil }
		}
		return errEval(fmt.Errorf("%s: unresolved identifier %s", n.Pos(), n.Name))
	}
	if n.Sym.Kind == ast.SymFunc {
		fn, ok := c.pr.Funcs[n.Name]
		if !ok {
			return errEval(fmt.Errorf("%s: undefined function %s", n.Pos(), n.Name))
		}
		v := c.pr.FuncValue(fn)
		return func(p *Proc) (Value, error) { return v, nil }
	}
	typ := n.Sym.Type
	if typ == nil {
		c.poison = true
		return c.bail()
	}
	if idx, ok := c.slotIdx[n.Sym]; ok {
		if typ.Kind == types.Array {
			pt := types.PointerTo(typ.Elem)
			return func(p *Proc) (Value, error) {
				if p.coResuming {
					p.popKRef()
				} else if err := p.chargeCycles(costALU); err != nil {
					p.pushK(kframe{step: 1})
					return Value{}, err
				}
				return PtrValue(pt, p.slotAddr(idx)), nil
			}
		}
		ld := makeLoad(typ)
		return func(p *Proc) (Value, error) {
			if p.coResuming {
				return p.popKRef().v, nil
			}
			v, err := ld(p, p.slotAddr(idx))
			if err != nil {
				if err == errYield {
					p.pushK(kframe{v: v})
				}
				return Value{}, err
			}
			return v, nil
		}
	}
	if addr, ok := c.pr.GlobalAddr(n.Sym); ok {
		if typ.Kind == types.Array {
			v := PtrValue(types.PointerTo(typ.Elem), addr)
			return func(p *Proc) (Value, error) {
				if p.coResuming {
					p.popKRef()
				} else if err := p.chargeCycles(costALU); err != nil {
					p.pushK(kframe{step: 1})
					return Value{}, err
				}
				return v, nil
			}
		}
		ld := makeLoad(typ)
		return func(p *Proc) (Value, error) {
			if p.coResuming {
				return p.popKRef().v, nil
			}
			v, err := ld(p, addr)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{v: v})
				}
				return Value{}, err
			}
			return v, nil
		}
	}
	return errEval(fmt.Errorf("%s: no storage for %s", n.Pos(), n.Name))
}

// compileLoadOf turns a compiled lvalue into an rvalue closure: arrays
// decay to element pointers, everything else loads through the typed
// accessor when the stored type is statically known.
func (c *compiler) compileLoadOf(lf lvalFn, st *types.Type) evalFn {
	if st != nil {
		if st.Kind == types.Array {
			pt := types.PointerTo(st.Elem)
			// Transparent: the decay after the lvalue resolves is pure.
			return func(p *Proc) (Value, error) {
				addr, _, err := lf(p)
				if err != nil {
					return Value{}, err
				}
				return PtrValue(pt, addr), nil
			}
		}
		ld := makeLoad(st)
		return func(p *Proc) (Value, error) {
			if p.coResuming {
				fr := p.popKRef()
				if fr.step != 0 {
					return fr.v, nil
				}
			}
			addr, _, err := lf(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{})
				}
				return Value{}, err
			}
			v, err := ld(p, addr)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{step: 1, v: v})
				}
				return Value{}, err
			}
			return v, nil
		}
	}
	return func(p *Proc) (Value, error) {
		if p.coResuming {
			fr := p.popKRef()
			if fr.step != 0 {
				return fr.v, nil
			}
		}
		addr, t, err := lf(p)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{})
			}
			return Value{}, err
		}
		if t.Kind == types.Array {
			return PtrValue(types.PointerTo(t.Elem), addr), nil
		}
		v, err := p.loadValue(addr, t)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{step: 1, v: v})
			}
			return Value{}, err
		}
		return v, nil
	}
}

// compileLValue lowers e to an address resolver. The second result is
// the statically-known stored type when the compiler can prove it (used
// to specialise index arithmetic); the closure always reports the type
// it resolved, exactly as the reference evalLValue does.
func (c *compiler) compileLValue(e ast.Expr) (lvalFn, *types.Type) {
	switch n := e.(type) {
	case *ast.ParenExpr:
		return c.compileLValue(n.X)

	case *ast.Ident:
		if n.Sym == nil {
			err := fmt.Errorf("%s: %s is not assignable", n.Pos(), n.Name)
			return func(p *Proc) (uint32, *types.Type, error) { return 0, nil, err }, nil
		}
		typ := n.Sym.Type
		if idx, ok := c.slotIdx[n.Sym]; ok {
			return func(p *Proc) (uint32, *types.Type, error) {
				return p.slotAddr(idx), typ, nil
			}, typ
		}
		if addr, ok := c.pr.GlobalAddr(n.Sym); ok {
			return func(p *Proc) (uint32, *types.Type, error) {
				return addr, typ, nil
			}, typ
		}
		err := fmt.Errorf("%s: no storage for %s", n.Pos(), n.Name)
		return func(p *Proc) (uint32, *types.Type, error) { return 0, nil, err }, nil

	case *ast.UnaryExpr:
		if n.Op != token.Star {
			err := fmt.Errorf("%s: %s is not an lvalue", e.Pos(), n.Op)
			return func(p *Proc) (uint32, *types.Type, error) { return 0, nil, err }, nil
		}
		x := c.compileExpr(n.X)
		t := n.X.ResultType()
		var elem *types.Type
		if t != nil && t.IsPointerLike() {
			elem = t.Decay().Elem
		}
		if elem == nil {
			elem = types.IntType
		}
		nullErr := fmt.Errorf("%s: null pointer dereference", e.Pos())
		// Transparent: only the pointer expression can suspend.
		return func(p *Proc) (uint32, *types.Type, error) {
			v, err := x(p)
			if err != nil {
				return 0, nil, err
			}
			if v.Addr() == 0 {
				return 0, nil, nullErr
			}
			return v.Addr(), elem, nil
		}, elem

	case *ast.IndexExpr:
		return c.compileIndexLValue(n)

	case *ast.MemberExpr:
		return c.compileMemberLValue(n)

	default:
		err := fmt.Errorf("%s: %T is not an lvalue", e.Pos(), e)
		return func(p *Proc) (uint32, *types.Type, error) { return 0, nil, err }, nil
	}
}

// compileIndexLValue lowers x[i], replicating indexBase: array-typed
// bases use their storage address, pointer bases load the pointer first.
// Units: 0 base resolve, 1 index eval (a = base), 2 address charge
// (a = base, n = index), 3 done.
func (c *compiler) compileIndexLValue(n *ast.IndexExpr) (lvalFn, *types.Type) {
	idxFn := c.compileExpr(n.Index)
	bt := n.X.ResultType()
	if bt != nil && bt.Kind == types.Array {
		baseFn, staticT := c.compileLValue(n.X)
		if staticT != nil {
			elem := staticT.Elem
			if elem == nil {
				c.poison = true
				return nil, nil
			}
			elemSize := int64(elem.Size())
			tail := func(p *Proc, base uint32) (uint32, *types.Type, error) {
				v, err := idxFn(p)
				if err != nil {
					if err == errYield {
						p.pushK(kframe{step: 1, a: base})
					}
					return 0, nil, err
				}
				iv := v.Int()
				if err := p.chargeCycles(costALU); err != nil {
					p.pushK(kframe{step: 3, a: base, n: iv})
					return 0, nil, err
				}
				return base + uint32(iv*elemSize), elem, nil
			}
			return func(p *Proc) (uint32, *types.Type, error) {
				if p.coResuming {
					fr := p.popKRef()
					switch fr.step {
					case 1:
						return tail(p, fr.a)
					case 3:
						return fr.a + uint32(fr.n*elemSize), elem, nil
					}
				}
				base, _, err := baseFn(p)
				if err != nil {
					if err == errYield {
						p.pushK(kframe{})
					}
					return 0, nil, err
				}
				v, err := idxFn(p)
				if err != nil {
					if err == errYield {
						p.pushK(kframe{step: 1, a: base})
					}
					return 0, nil, err
				}
				iv := v.Int()
				if err := p.chargeCycles(costALU); err != nil {
					p.pushK(kframe{step: 3, a: base, n: iv})
					return 0, nil, err
				}
				return base + uint32(iv*elemSize), elem, nil
			}, elem
		}
		// Base type only known at run time (error paths): mirror the
		// reference flow with the runtime type.
		tail := func(p *Proc, base uint32, elem *types.Type) (uint32, *types.Type, error) {
			v, err := idxFn(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{step: 1, a: base, x: elem})
				}
				return 0, nil, err
			}
			iv := v.Int()
			if err := p.chargeCycles(costALU); err != nil {
				p.pushK(kframe{step: 3, a: base, n: iv, x: elem})
				return 0, nil, err
			}
			return base + uint32(iv*int64(elem.Size())), elem, nil
		}
		return func(p *Proc) (uint32, *types.Type, error) {
			if p.coResuming {
				fr := p.popKRef()
				switch fr.step {
				case 1:
					el, _ := fr.x.(*types.Type)
					return tail(p, fr.a, el)
				case 3:
					el, _ := fr.x.(*types.Type)
					return fr.a + uint32(fr.n*int64(el.Size())), el, nil
				}
			}
			base, t, err := baseFn(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{})
				}
				return 0, nil, err
			}
			return tail(p, base, t.Elem)
		}, nil
	}
	xFn := c.compileExpr(n.X)
	var elem *types.Type
	if bt != nil && bt.IsPointerLike() {
		elem = bt.Decay().Elem
	}
	if elem == nil {
		elem = types.IntType
	}
	elemSize := int64(elem.Size())
	nullErr := fmt.Errorf("%s: indexing a null pointer", n.Pos())
	tail := func(p *Proc, base uint32) (uint32, *types.Type, error) {
		v, err := idxFn(p)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{step: 1, a: base})
			}
			return 0, nil, err
		}
		iv := v.Int()
		if err := p.chargeCycles(costALU); err != nil {
			p.pushK(kframe{step: 3, a: base, n: iv})
			return 0, nil, err
		}
		return base + uint32(iv*elemSize), elem, nil
	}
	return func(p *Proc) (uint32, *types.Type, error) {
		if p.coResuming {
			fr := p.popKRef()
			switch fr.step {
			case 1:
				return tail(p, fr.a)
			case 3:
				return fr.a + uint32(fr.n*elemSize), elem, nil
			}
		}
		bv, err := xFn(p)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{})
			}
			return 0, nil, err
		}
		base := bv.Addr()
		if base == 0 {
			return 0, nil, nullErr
		}
		v, err := idxFn(p)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{step: 1, a: base})
			}
			return 0, nil, err
		}
		iv := v.Int()
		if err := p.chargeCycles(costALU); err != nil {
			p.pushK(kframe{step: 3, a: base, n: iv})
			return 0, nil, err
		}
		return base + uint32(iv*elemSize), elem, nil
	}, elem
}

// compileMemberLValue lowers x.f / x->f with the field offset resolved
// at compile time whenever the struct type is statically known.
// Units: 0 base, 1 offset charge (a = base), 2 done.
func (c *compiler) compileMemberLValue(n *ast.MemberExpr) (lvalFn, *types.Type) {
	// evalThenErr preserves the reference error flow: evaluate the inner
	// expression for its effects, then report the structural error.
	evalThenErr := func(x evalFn, err error) lvalFn {
		return func(p *Proc) (uint32, *types.Type, error) { // transparent
			if _, e := x(p); e != nil {
				return 0, nil, e
			}
			return 0, nil, err
		}
	}
	if n.Arrow {
		t := n.X.ResultType()
		if t == nil || t.Elem == nil {
			return evalThenErr(c.compileExpr(n.X), fmt.Errorf("%s: -> on non-pointer", n.Pos())), nil
		}
		st := t.Elem
		f, ok := st.Field(n.Name)
		if !ok {
			return evalThenErr(c.compileExpr(n.X), fmt.Errorf("%s: no field %s in %s", n.Pos(), n.Name, st)), nil
		}
		x := c.compileExpr(n.X)
		off := uint32(f.Offset)
		ft := f.Type
		return func(p *Proc) (uint32, *types.Type, error) {
			if p.coResuming {
				fr := p.popKRef()
				if fr.step != 0 { // 2: offset charge complete
					return fr.a + off, ft, nil
				}
			}
			v, err := x(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{})
				}
				return 0, nil, err
			}
			base := v.Addr()
			if err := p.chargeCycles(costALU); err != nil {
				p.pushK(kframe{step: 2, a: base})
				return 0, nil, err
			}
			return base + off, ft, nil
		}, ft
	}
	baseFn, staticT := c.compileLValue(n.X)
	if staticT == nil {
		// Inner lvalue type resolves at run time (error paths): replicate
		// the reference field lookup dynamically.
		name := n.Name
		pos := n.Pos()
		return func(p *Proc) (uint32, *types.Type, error) {
			if p.coResuming {
				fr := p.popKRef()
				if fr.step != 0 { // 2: offset charge complete
					return fr.a + uint32(fr.n), fr.x.(*types.Type), nil
				}
			}
			base, st, err := baseFn(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{})
				}
				return 0, nil, err
			}
			f, ok := st.Field(name)
			if !ok {
				return 0, nil, fmt.Errorf("%s: no field %s in %s", pos, name, st)
			}
			off, ft := uint32(f.Offset), f.Type
			if err := p.chargeCycles(costALU); err != nil {
				p.pushK(kframe{step: 2, a: base, n: int64(off), x: ft})
				return 0, nil, err
			}
			return base + off, ft, nil
		}, nil
	}
	f, ok := staticT.Field(n.Name)
	if !ok {
		err := fmt.Errorf("%s: no field %s in %s", n.Pos(), n.Name, staticT)
		return func(p *Proc) (uint32, *types.Type, error) { // transparent
			if _, _, e := baseFn(p); e != nil {
				return 0, nil, e
			}
			return 0, nil, err
		}, nil
	}
	off := uint32(f.Offset)
	ft := f.Type
	return func(p *Proc) (uint32, *types.Type, error) {
		if p.coResuming {
			fr := p.popKRef()
			if fr.step != 0 { // 2: offset charge complete
				return fr.a + off, ft, nil
			}
		}
		base, _, err := baseFn(p)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{})
			}
			return 0, nil, err
		}
		if err := p.chargeCycles(costALU); err != nil {
			p.pushK(kframe{step: 2, a: base})
			return 0, nil, err
		}
		return base + off, ft, nil
	}, ft
}

func (c *compiler) compileUnary(n *ast.UnaryExpr) evalFn {
	switch n.Op {
	case token.Amp:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			if id.Sym != nil && id.Sym.Kind == ast.SymFunc {
				return c.compileIdent(id)
			}
			if id.Sym == nil && id.Name == "RCCE_COMM_WORLD" {
				v := PtrValue(types.PointerTo(types.OpaqueOf("RCCE_COMM")), 0)
				return func(p *Proc) (Value, error) { return v, nil }
			}
		}
		lf, _ := c.compileLValue(n.X)
		return func(p *Proc) (Value, error) {
			if p.coResuming {
				fr := p.popKRef()
				if fr.step != 0 { // address charge complete
					return fr.v, nil
				}
			}
			addr, t, err := lf(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{})
				}
				return Value{}, err
			}
			v := PtrValue(types.PointerTo(t), addr)
			if err := p.chargeCycles(costALU); err != nil {
				p.pushK(kframe{step: 1, v: v})
				return Value{}, err
			}
			return v, nil
		}

	case token.Star:
		return c.compileLoadOf(c.compileLValue(n))

	case token.PlusPlus, token.MinusMinus:
		return c.compileIncDec(n.X, n.Op == token.MinusMinus, true)
	}

	x := c.compileExpr(n.X)
	switch n.Op {
	case token.Minus:
		return func(p *Proc) (Value, error) {
			if p.coResuming {
				fr := p.popKRef()
				if fr.step != 0 {
					return fr.v, nil
				}
			}
			v, err := x(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{})
				}
				return Value{}, err
			}
			var res Value
			cost := costALU
			if v.IsFloat() {
				res, cost = FloatValue(v.T, -v.F), costFAdd
			} else {
				res = IntValue(v.T, -v.I)
			}
			if err := p.chargeCycles(cost); err != nil {
				p.pushK(kframe{step: 1, v: res})
				return Value{}, err
			}
			return res, nil
		}
	case token.Plus:
		return x
	case token.Bang:
		return func(p *Proc) (Value, error) {
			if p.coResuming {
				fr := p.popKRef()
				if fr.step != 0 {
					return fr.v, nil
				}
			}
			v, err := x(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{})
				}
				return Value{}, err
			}
			res := IntValue(types.IntType, 1)
			if v.Bool() {
				res = IntValue(types.IntType, 0)
			}
			if err := p.chargeCycles(costALU); err != nil {
				p.pushK(kframe{step: 1, v: res})
				return Value{}, err
			}
			return res, nil
		}
	case token.Tilde:
		return func(p *Proc) (Value, error) {
			if p.coResuming {
				fr := p.popKRef()
				if fr.step != 0 {
					return fr.v, nil
				}
			}
			v, err := x(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{})
				}
				return Value{}, err
			}
			res := IntValue(v.T, int64(int32(^uint32(v.Int()))))
			if err := p.chargeCycles(costALU); err != nil {
				p.pushK(kframe{step: 1, v: res})
				return Value{}, err
			}
			return res, nil
		}
	default:
		err := fmt.Errorf("%s: unary %s unsupported", n.Pos(), n.Op)
		return func(p *Proc) (Value, error) { // transparent
			if _, e := x(p); e != nil {
				return Value{}, e
			}
			return Value{}, err
		}
	}
}

func (c *compiler) compileAssign(n *ast.AssignExpr) evalFn {
	lf, st := c.compileLValue(n.LHS)
	rf := c.compileExpr(n.RHS)
	if n.Op == token.Assign {
		if st != nil {
			sf := makeStore(st)
			// tail re-enters from the RHS (step 1); a store-yield saves
			// the converted value under step 3.
			tail := func(p *Proc, addr uint32) (Value, error) {
				rhs, err := rf(p)
				if err != nil {
					if err == errYield {
						p.pushK(kframe{step: 1, a: addr})
					}
					return Value{}, err
				}
				cv, err := sf(p, addr, rhs)
				if err != nil {
					if err == errYield {
						p.pushK(kframe{step: 3, v: cv})
					}
					return Value{}, err
				}
				return cv, nil
			}
			return func(p *Proc) (Value, error) {
				if p.coResuming {
					fr := p.popKRef()
					switch fr.step {
					case 1:
						return tail(p, fr.a)
					case 3:
						return fr.v, nil
					}
				}
				addr, _, err := lf(p)
				if err != nil {
					if err == errYield {
						p.pushK(kframe{})
					}
					return Value{}, err
				}
				rhs, err := rf(p)
				if err != nil {
					if err == errYield {
						p.pushK(kframe{step: 1, a: addr})
					}
					return Value{}, err
				}
				cv, err := sf(p, addr, rhs)
				if err != nil {
					if err == errYield {
						p.pushK(kframe{step: 3, v: cv})
					}
					return Value{}, err
				}
				return cv, nil
			}
		}
		tail := func(p *Proc, addr uint32, t *types.Type) (Value, error) {
			rhs, err := rf(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{step: 1, a: addr, x: t})
				}
				return Value{}, err
			}
			v := Convert(rhs, t)
			if err := p.storeValue(addr, t, v); err != nil {
				if err == errYield {
					p.pushK(kframe{step: 3, v: v})
				}
				return Value{}, err
			}
			return v, nil
		}
		return func(p *Proc) (Value, error) {
			if p.coResuming {
				fr := p.popKRef()
				switch fr.step {
				case 1:
					t, _ := fr.x.(*types.Type)
					return tail(p, fr.a, t)
				case 3:
					return fr.v, nil
				}
			}
			addr, t, err := lf(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{})
				}
				return Value{}, err
			}
			return tail(p, addr, t)
		}
	}
	op, opOK := compoundOps[n.Op]
	badOp := fmt.Errorf("%s: assignment op %s unsupported", n.Pos(), n.Op)
	if st != nil && opOK {
		ld, sf := makeLoad(st), makeStore(st)
		// applyTail re-enters from the binary op (step 3 passes empty
		// operands — a suspended apply saved its own outcome); rhsTail
		// from the RHS (step 2); a store-yield saves the result (step 5).
		applyTail := func(p *Proc, addr uint32, old, rhs Value) (Value, error) {
			res, err := p.applyBinaryFast(op, old, rhs, st)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{step: 3, a: addr})
				}
				return Value{}, err
			}
			sv, err := sf(p, addr, res)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{step: 5, v: sv})
				}
				return Value{}, err
			}
			return sv, nil
		}
		rhsTail := func(p *Proc, addr uint32, old Value) (Value, error) {
			rhs, err := rf(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{step: 2, a: addr, v: old})
				}
				return Value{}, err
			}
			return applyTail(p, addr, old, rhs)
		}
		return func(p *Proc) (Value, error) {
			if p.coResuming {
				fr := p.popKRef()
				switch fr.step {
				case 2:
					return rhsTail(p, fr.a, fr.v)
				case 3:
					return applyTail(p, fr.a, Value{}, Value{})
				case 5:
					return fr.v, nil
				}
			}
			addr, _, err := lf(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{})
				}
				return Value{}, err
			}
			old, err := ld(p, addr)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{step: 2, a: addr, v: old})
				}
				return Value{}, err
			}
			return rhsTail(p, addr, old)
		}
	}
	applyTail := func(p *Proc, addr uint32, t *types.Type, old, rhs Value) (Value, error) {
		if !opOK {
			return Value{}, badOp
		}
		res, err := p.applyBinary(op, old, rhs, t)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{step: 3, a: addr, x: t})
			}
			return Value{}, err
		}
		v := Convert(res, t)
		if err := p.storeValue(addr, t, v); err != nil {
			if err == errYield {
				p.pushK(kframe{step: 5, v: v})
			}
			return Value{}, err
		}
		return v, nil
	}
	rhsTail := func(p *Proc, addr uint32, t *types.Type, old Value) (Value, error) {
		rhs, err := rf(p)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{step: 2, a: addr, v: old, x: t})
			}
			return Value{}, err
		}
		return applyTail(p, addr, t, old, rhs)
	}
	return func(p *Proc) (Value, error) {
		if p.coResuming {
			fr := p.popKRef()
			switch fr.step {
			case 2:
				t, _ := fr.x.(*types.Type)
				return rhsTail(p, fr.a, t, fr.v)
			case 3:
				t, _ := fr.x.(*types.Type)
				return applyTail(p, fr.a, t, Value{}, Value{})
			case 5:
				return fr.v, nil
			}
		}
		addr, t, err := lf(p)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{})
			}
			return Value{}, err
		}
		old, err := p.loadValue(addr, t)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{step: 2, a: addr, v: old, x: t})
			}
			return Value{}, err
		}
		return rhsTail(p, addr, t, old)
	}
}

func (c *compiler) compileBinary(n *ast.BinaryExpr) evalFn {
	x := c.compileExpr(n.X)
	y := c.compileExpr(n.Y)
	if n.Op == token.AndAnd || n.Op == token.OrOr {
		andand := n.Op == token.AndAnd
		// tail decides short-circuit and evaluates the RHS; both the
		// post-charge resume and an RHS re-entry land here.
		tail := func(p *Proc, xb bool) (Value, error) {
			if andand && !xb {
				return IntValue(types.IntType, 0), nil
			}
			if !andand && xb {
				return IntValue(types.IntType, 1), nil
			}
			yv, err := y(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{step: 1, n: b2i(xb)})
				}
				return Value{}, err
			}
			if yv.Bool() {
				return IntValue(types.IntType, 1), nil
			}
			return IntValue(types.IntType, 0), nil
		}
		return func(p *Proc) (Value, error) {
			if p.coResuming {
				fr := p.popKRef()
				if fr.step != 0 {
					return tail(p, fr.n != 0)
				}
			}
			xv, err := x(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{})
				}
				return Value{}, err
			}
			xb := xv.Bool()
			if err := p.chargeCycles(costALU); err != nil {
				p.pushK(kframe{step: 1, n: b2i(xb)})
				return Value{}, err
			}
			if andand && !xb {
				return IntValue(types.IntType, 0), nil
			}
			if !andand && xb {
				return IntValue(types.IntType, 1), nil
			}
			yv, err := y(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{step: 1, n: b2i(xb)})
				}
				return Value{}, err
			}
			if yv.Bool() {
				return IntValue(types.IntType, 1), nil
			}
			return IntValue(types.IntType, 0), nil
		}
	}
	op, rt := n.Op, n.Typ
	// tail evaluates the RHS and applies the operator on a resume with
	// the LHS restored; a suspended apply saved its own outcome, so the
	// step-2 re-entry passes empty operands.
	tail := func(p *Proc, xv Value) (Value, error) {
		yv, err := y(p)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{step: 1, v: xv})
			}
			return Value{}, err
		}
		v, err := p.applyBinaryFast(op, xv, yv, rt)
		if err == errYield {
			p.pushK(kframe{step: 2})
		}
		return v, err
	}
	return func(p *Proc) (Value, error) {
		if p.coResuming {
			fr := p.popKRef()
			switch fr.step {
			case 1:
				return tail(p, fr.v)
			case 2:
				return p.applyBinaryFast(op, Value{}, Value{}, rt)
			}
		}
		xv, err := x(p)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{})
			}
			return Value{}, err
		}
		yv, err := y(p)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{step: 1, v: xv})
			}
			return Value{}, err
		}
		v, err := p.applyBinaryFast(op, xv, yv, rt)
		if err == errYield {
			p.pushK(kframe{step: 2})
		}
		return v, err
	}
}

// compileCall classifies the call site once — direct (callee resolved to
// its compiled form), indirect (function-pointer variable), or builtin
// (runtime dispatch by name, then the interned common-libc subset) — the
// exact classification evalCall re-derives on every execution. The
// argument arena stays extended across a suspension (evaluated arguments
// live there), so the frame only records the arena base to re-slice.
func (c *compiler) compileCall(n *ast.CallExpr) evalFn {
	pr := c.pr
	name := n.FuncName()
	argFns := make([]evalFn, len(n.Args))
	for i, a := range n.Args {
		argFns[i] = c.compileExpr(a)
	}
	nargs := len(argFns)
	cid := commonBuiltinID(name)
	unknownErr := fmt.Errorf("%s: call of unknown function %s", n.Pos(), name)
	// builtinTail dispatches runtime-then-common builtins, resumable at
	// either: step 0 re-enters the runtime builtin, step 1 skips the
	// runtime (it declined without side effects) and re-enters the
	// common builtin.
	builtinTail := func(p *Proc, argv []Value) (Value, error) {
		step := 0
		if p.coResuming {
			step = p.popKRef().step
		}
		if step <= 0 {
			if rt := p.Sim.Runtime; rt != nil {
				v, handled, err := rt.CallBuiltin(p, name, argv)
				if err != nil {
					if err == errYield {
						p.pushK(kframe{step: 0})
					}
					return Value{}, err
				}
				if handled {
					return v, nil
				}
			}
		}
		v, handled, err := p.commonBuiltinByID(cid, argv)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{step: 1})
			}
			return Value{}, err
		}
		if handled {
			return v, nil
		}
		return Value{}, unknownErr
	}

	indirect := false
	if name == "" || (n.Fun.ResultType() != nil && pr.Funcs[name] == nil && !isKnownBuiltin(name)) {
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Sym != nil && id.Sym.Kind != ast.SymFunc {
			indirect = true
		}
	}
	if indirect {
		funFn := c.compileExpr(n.Fun)
		invoke := func(p *Proc, fv Value, base int, argv []Value) (Value, error) {
			cf := p.Sim.Program.compiledByValue(fv)
			var v Value
			var err error
			if cf != nil {
				v, err = p.dispatchCall(cf, argv)
			} else {
				v, err = builtinTail(p, argv)
			}
			if err == errYield {
				p.pushK(kframe{step: 2, v: fv, a: uint32(base)})
				return Value{}, err
			}
			p.argArena = p.argArena[:base]
			return v, err
		}
		argsTail := func(p *Proc, fv Value) (Value, error) {
			argv, base, err := p.evalCompiledArgs(argFns)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{step: 1, v: fv})
				}
				return Value{}, err
			}
			return invoke(p, fv, base, argv)
		}
		return func(p *Proc) (Value, error) {
			if p.coResuming {
				fr := p.popKRef()
				switch fr.step {
				case 1:
					return argsTail(p, fr.v)
				case 2:
					base := int(fr.a)
					return invoke(p, fr.v, base, p.argArena[base:base+nargs:base+nargs])
				}
			}
			fv, err := funFn(p)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{})
				}
				return Value{}, err
			}
			return argsTail(p, fv)
		}
	}
	if fn := pr.Funcs[name]; fn != nil && fn.Body != nil {
		cf := pr.compiled[fn]
		invoke := func(p *Proc, base int, argv []Value) (Value, error) {
			v, err := p.dispatchCall(cf, argv)
			if err == errYield {
				p.pushK(kframe{step: 1, a: uint32(base)})
				return Value{}, err
			}
			p.argArena = p.argArena[:base]
			return v, err
		}
		return func(p *Proc) (Value, error) {
			if p.coResuming {
				fr := p.popKRef()
				if fr.step != 0 {
					base := int(fr.a)
					return invoke(p, base, p.argArena[base:base+nargs:base+nargs])
				}
			}
			argv, base, err := p.evalCompiledArgs(argFns)
			if err != nil {
				if err == errYield {
					p.pushK(kframe{})
				}
				return Value{}, err
			}
			v, err := p.dispatchCall(cf, argv)
			if err == errYield {
				p.pushK(kframe{step: 1, a: uint32(base)})
				return Value{}, err
			}
			p.argArena = p.argArena[:base]
			return v, err
		}
	}
	invoke := func(p *Proc, base int, argv []Value) (Value, error) {
		v, err := builtinTail(p, argv)
		if err == errYield {
			p.pushK(kframe{step: 1, a: uint32(base)})
			return Value{}, err
		}
		p.argArena = p.argArena[:base]
		return v, err
	}
	return func(p *Proc) (Value, error) {
		if p.coResuming {
			fr := p.popKRef()
			if fr.step != 0 {
				base := int(fr.a)
				return invoke(p, base, p.argArena[base:base+nargs:base+nargs])
			}
		}
		argv, base, err := p.evalCompiledArgs(argFns)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{})
			}
			return Value{}, err
		}
		v, err := builtinTail(p, argv)
		if err == errYield {
			p.pushK(kframe{step: 1, a: uint32(base)})
			return Value{}, err
		}
		p.argArena = p.argArena[:base]
		return v, err
	}
}
