package interp

import "hsmcc/internal/sccsim"

// runnableNotifier is implemented by policies that maintain indexed
// scheduling state. The session calls NoteRunnable at every transition
// that makes a context runnable or changes its clock while runnable
// (spawn, unblock, cooperative yield); policies without the method are
// scanned statelessly, as before.
type runnableNotifier interface {
	NoteRunnable(p *Proc)
}

// MinClockHeap is the indexed form of MinClock: an intrusive min-heap
// keyed on (Clock, ID), updated on state transitions, replacing the O(n)
// scan per scheduling decision. Entries are invalidated lazily — a
// context's stale entries (from before its clock advanced) are discarded
// at pop time, which keeps every update O(log n) with no delete-by-key.
// MinClock (the linear scan) is retained as the test oracle; the
// equivalence property is pinned by TestMinClockHeapMatchesLinear.
//
// The heap must observe every runnable transition, so it only works as a
// session's policy when installed before the first Spawn (NewSim does
// this); swapping it in mid-session would miss existing contexts.
type MinClockHeap struct {
	h []clockEntry
}

type clockEntry struct {
	clock sccsim.Time
	id    int
	p     *Proc
}

// NewMinClockHeap returns an empty indexed min-clock policy.
func NewMinClockHeap() *MinClockHeap { return &MinClockHeap{} }

// NoteRunnable implements runnableNotifier.
func (m *MinClockHeap) NoteRunnable(p *Proc) {
	m.h = append(m.h, clockEntry{clock: p.Clock, id: p.ID, p: p})
	m.up(len(m.h) - 1)
}

// Next implements Policy: pop entries until one still describes a
// runnable context at its current clock. An entry is stale when the
// context ran (clock advanced), blocked, or finished since it was
// pushed; the context's current state, if runnable, is always covered
// by a fresher entry, so discarding stale ones is safe.
func (m *MinClockHeap) Next(procs []*Proc) *Proc {
	for len(m.h) > 0 {
		e := m.h[0]
		m.pop()
		if e.p.State == Runnable && e.p.Clock == e.clock {
			return e.p
		}
	}
	return nil
}

// entryLess orders by (clock, id) — the deterministic tiebreak the
// linear oracle uses.
func entryLess(a, b *clockEntry) bool {
	return a.clock < b.clock || (a.clock == b.clock && a.id < b.id)
}

// up and pop sift with a hole instead of pairwise swaps: the moving
// entry stays in a register-resident local while displaced entries
// shift one slot, so each level costs one 24-byte store rather than
// three. At 1024 runnable contexts the heap is ten levels deep and
// every context switch pays one push and at least one pop, which makes
// this the scheduler's hottest loop.
func (m *MinClockHeap) up(i int) {
	e := m.h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(&e, &m.h[parent]) {
			break
		}
		m.h[i] = m.h[parent]
		i = parent
	}
	m.h[i] = e
}

func (m *MinClockHeap) pop() {
	n := len(m.h) - 1
	e := m.h[n]
	m.h[n] = clockEntry{}
	m.h = m.h[:n]
	if n == 0 {
		return
	}
	// Sift the former last entry down from the root hole.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		small := l
		if r < n && entryLess(&m.h[r], &m.h[l]) {
			small = r
		}
		if !entryLess(&m.h[small], &e) {
			break
		}
		m.h[i] = m.h[small]
		i = small
	}
	m.h[i] = e
}
