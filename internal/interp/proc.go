package interp

import (
	"errors"
	"fmt"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/types"
	"hsmcc/internal/sccsim"
)

// errThreadExit unwinds a context when the program calls pthread_exit or
// exit; it is not reported as a failure.
var errThreadExit = errors.New("thread exit")

// ThreadExitError returns the sentinel used to unwind a context; runtimes
// return it from CallBuiltin to terminate the calling thread cleanly.
func ThreadExitError() error { return errThreadExit }

// maxCallDepth bounds recursion in interpreted programs.
const maxCallDepth = 256

// Proc is one execution context: a Pthread thread or an RCCE process.
type Proc struct {
	Sim   *Sim
	ID    int
	Core  int
	Clock sccsim.Time
	State ProcState
	// Ret is the entry function's return value once State is Done.
	Ret Value
	// Slice is runtime-private scheduling state (the pthread runtime
	// stores the quantum start here).
	Slice sccsim.Time

	fn     *ast.FuncDecl
	args   []Value
	resume chan struct{}
	yieldq chan struct{}

	frames    []*frame
	stackIdx  int
	stackTop  uint32
	stackPtr  uint32
	memOps    int
	lastYield sccsim.Time
	buf       [8]byte

	// Stats.
	Ops   uint64 // executed statements
	Calls uint64
}

// frame is one activation record.
type frame struct {
	fn    *ast.FuncDecl
	slots map[*ast.Symbol]uint32
	saved uint32 // stack pointer to restore
}

// ---------------------------------------------------------------------------
// Time accounting and memory access
// ---------------------------------------------------------------------------

// yieldHorizonPs bounds how far a context's virtual clock may run ahead
// between scheduler handoffs (2.5 us = 2000 cycles at 800 MHz). Memory-
// controller queueing is order-of-issue, so issue order must approximate
// virtual-time order: without this bound, one context executing a large
// compute block (e.g. RCCE_init) and then touching DRAM would push the
// controller's free time into the virtual future and charge every
// lower-clock context a spurious wait.
const yieldHorizonPs = sccsim.Time(2_500_000)

// chargeCycles adds n core cycles of compute time, yielding when the
// clock has run past the skew horizon.
func (p *Proc) chargeCycles(n int) {
	p.Clock += p.Sim.Machine.ComputeTime(p.Core, n)
	if p.Clock-p.lastYield >= yieldHorizonPs {
		p.Yield()
	}
}

// noteMemOp implements the cooperative yield cadence. Accesses to shared
// regions (shared DRAM, MPB) yield immediately: those are the points
// where cross-core contention is modelled, and letting one context run a
// burst ahead would serialize whole bursts at the memory controllers
// instead of interleaving requests in virtual-time order. Private
// accesses cannot contend, so they only yield every YieldEvery ops to
// keep scheduling overhead low.
func (p *Proc) noteMemOp(addr uint32) {
	p.memOps++
	if addr >= sccsim.SharedBase || p.memOps >= YieldEvery ||
		p.Clock-p.lastYield >= yieldHorizonPs {
		p.memOps = 0
		p.Yield()
	}
}

// loadValue reads a typed value from simulated memory, charging latency.
func (p *Proc) loadValue(addr uint32, t *types.Type) (Value, error) {
	size := t.Size()
	if size <= 0 || size > 8 {
		return Value{}, fmt.Errorf("load of %d-byte type %s", size, t)
	}
	buf := p.buf[:size]
	p.Clock += p.Sim.Machine.Load(p.Core, addr, buf, p.Clock)
	p.noteMemOp(addr)
	return decodeValue(t, buf)
}

// storeValue writes a typed value to simulated memory, charging latency.
func (p *Proc) storeValue(addr uint32, t *types.Type, v Value) error {
	size := t.Size()
	if size <= 0 || size > 8 {
		return fmt.Errorf("store of %d-byte type %s", size, t)
	}
	buf := p.buf[:size]
	if err := encodeValue(t, Convert(v, t), buf); err != nil {
		return err
	}
	p.Clock += p.Sim.Machine.Store(p.Core, addr, buf, p.Clock)
	p.noteMemOp(addr)
	return nil
}

// ---------------------------------------------------------------------------
// Address resolution
// ---------------------------------------------------------------------------

// addrOfSymbol finds a variable's address: innermost frame slot first,
// then the globals image.
func (p *Proc) addrOfSymbol(sym *ast.Symbol) (uint32, bool) {
	if len(p.frames) > 0 {
		if a, ok := p.frames[len(p.frames)-1].slots[sym]; ok {
			return a, true
		}
	}
	if a, ok := p.Sim.Program.GlobalAddr(sym); ok {
		return a, true
	}
	return 0, false
}

// heapAlloc bump-allocates n bytes from the core's private heap.
func (p *Proc) heapAlloc(n int) uint32 {
	s := p.Sim
	cur := s.heaps[p.Core]
	cur = (cur + 7) &^ 7
	addr := cur
	s.heaps[p.Core] = cur + uint32(n)
	return addr
}

// pushFrame allocates the activation record for fn: one aligned stack
// slot per parameter and per local declaration anywhere in the body
// (slots are assigned once, like a compiled frame).
func (p *Proc) pushFrame(fn *ast.FuncDecl) (*frame, error) {
	if len(p.frames) >= maxCallDepth {
		return nil, fmt.Errorf("call depth exceeds %d in %s", maxCallDepth, fn.Name)
	}
	fr := &frame{fn: fn, slots: make(map[*ast.Symbol]uint32), saved: p.stackPtr}
	sp := p.stackPtr
	alloc := func(sym *ast.Symbol, t *types.Type) {
		size := uint32(t.Size())
		if size == 0 {
			size = 4
		}
		a := uint32(t.Align())
		if a == 0 {
			a = 4
		}
		sp -= size
		sp &^= a - 1
		fr.slots[sym] = sp
	}
	for _, prm := range fn.Params {
		if prm.Sym != nil {
			alloc(prm.Sym, prm.Type)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeclStmt); ok && d.Decl.Sym != nil {
			alloc(d.Decl.Sym, d.Decl.Type)
		}
		return true
	})
	if p.stackTop-sp > StackBytes {
		return nil, fmt.Errorf("stack overflow in %s", fn.Name)
	}
	p.stackPtr = sp
	p.frames = append(p.frames, fr)
	return fr, nil
}

func (p *Proc) popFrame() {
	fr := p.frames[len(p.frames)-1]
	p.frames = p.frames[:len(p.frames)-1]
	p.stackPtr = fr.saved
}

// LoadTyped reads a typed value with timing; for runtime packages.
func (p *Proc) LoadTyped(addr uint32, t *types.Type) (Value, error) {
	return p.loadValue(addr, t)
}

// StoreTyped writes a typed value with timing; for runtime packages.
func (p *Proc) StoreTyped(addr uint32, t *types.Type, v Value) error {
	return p.storeValue(addr, t, v)
}

// ChargeCycles adds compute cycles; for runtime packages.
func (p *Proc) ChargeCycles(n int) { p.chargeCycles(n) }

// Printf appends to the session output.
func (p *Proc) Printf(format string, args ...any) {
	fmt.Fprintf(&p.Sim.Out, format, args...)
}

// ReadCString copies a NUL-terminated string out of simulated memory.
func (p *Proc) ReadCString(addr uint32) string {
	var out []byte
	var b [1]byte
	for len(out) < 1<<16 {
		p.Sim.Machine.ReadBytes(p.Core, addr, b[:])
		if b[0] == 0 {
			break
		}
		out = append(out, b[0])
		addr++
	}
	return string(out)
}

// Seconds converts the context clock to seconds.
func (p *Proc) Seconds() float64 { return float64(p.Clock) / sccsim.PsPerSecond }
