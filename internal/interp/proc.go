package interp

import (
	"errors"
	"fmt"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/types"
	"hsmcc/internal/sccsim"
)

// errThreadExit unwinds a context when the program calls pthread_exit or
// exit; it is not reported as a failure.
var errThreadExit = errors.New("thread exit")

// ThreadExitError returns the sentinel used to unwind a context; runtimes
// return it from CallBuiltin to terminate the calling thread cleanly.
func ThreadExitError() error { return errThreadExit }

// maxCallDepth bounds recursion in interpreted programs.
const maxCallDepth = 256

// Proc is one execution context: a Pthread thread or an RCCE process.
type Proc struct {
	Sim   *Sim
	ID    int
	Core  int
	Clock sccsim.Time
	State ProcState
	// Ret is the entry function's return value once State is Done.
	Ret Value
	// Slice is runtime-private scheduling state (the pthread runtime
	// stores the quantum start here).
	Slice sccsim.Time

	fn *ast.FuncDecl
	// rootCF is fn's compiled form, resolved at spawn for coroutine
	// contexts so every resume skips the map lookup.
	rootCF *compiledFunc
	args   []Value
	// resume is the goroutine-mode wakeup channel; coroutine-mode
	// contexts have no goroutine and leave it nil.
	resume chan struct{}

	frames    []*frame
	stackIdx  int
	stackTop  uint32
	stackPtr  uint32
	memOps    int
	lastYield sccsim.Time
	buf       [8]byte

	// Compiled-engine state: activation records index into the slotMem
	// arena (cfp is the running frame's base), and argArena is the
	// stack-disciplined scratch space for call arguments. Both amortise
	// to zero allocations per call.
	cframes  []cframe
	slotMem  []uint32
	cfp      int
	argArena []Value
	// retSlots holds one return-value cell per call depth, so a call's
	// ret pointer does not escape to the heap; fixed capacity because
	// active bodies hold interior pointers across nested calls.
	retSlots []Value
	// Coroutine state: the resumption stacks a suspension unwinds into
	// (pointer-free meta plus payload side stacks), the pop scratch
	// slot, and the flag marking a re-descent to the suspension point
	// (coro.go documents the protocol).
	kstack     []kmeta
	kvals      []Value
	kxs        []any
	kscratch   kframe
	coResuming bool
	// scratch is the pooled bundle the buffers above came from (nil in
	// goroutine mode); finish returns it for the next spawn.
	scratch *procScratch
	// timer is the machine's cycle-to-time handle for this context's
	// core (stable across DVFS changes).
	timer *sccsim.CoreTimer
	// prof is the session's access profiler (nil when disabled), copied
	// from Sim.Prof at Spawn so the accessor hot path avoids the Sim
	// indirection.
	prof MemProfiler
	// trace is the session's scheduling-event sink (nil when disabled),
	// copied from Sim.Trace at Spawn; blockReason carries a BlockFor tag
	// to the one suspension it precedes.
	trace       TraceSink
	blockReason BlockReason

	// Stats.
	Ops   uint64 // executed statements
	Calls uint64
}

// frame is one activation record.
type frame struct {
	fn    *ast.FuncDecl
	slots map[*ast.Symbol]uint32
	saved uint32 // stack pointer to restore
}

// ---------------------------------------------------------------------------
// Time accounting and memory access
// ---------------------------------------------------------------------------

// yieldHorizonPs bounds how far a context's virtual clock may run ahead
// between scheduler handoffs (2.5 us = 2000 cycles at 800 MHz). Memory-
// controller queueing is order-of-issue, so issue order must approximate
// virtual-time order: without this bound, one context executing a large
// compute block (e.g. RCCE_init) and then touching DRAM would push the
// controller's free time into the virtual future and charge every
// lower-clock context a spurious wait.
const yieldHorizonPs = sccsim.Time(2_500_000)

// chargeCycles adds n core cycles of compute time, yielding when the
// clock has run past the skew horizon. The charge is complete before a
// yield propagates, so callers resume after the call without re-running
// it (a "leaf" in the coroutine protocol).
func (p *Proc) chargeCycles(n int) error {
	p.Clock += p.timer.Cycles(n)
	if p.Clock-p.lastYield >= yieldHorizonPs {
		return p.Yield()
	}
	return nil
}

// MemProfiler observes the timed data-memory accesses a context
// performs (the typed load/store accessors and the generic
// loadValue/storeValue). Implementations must be cheap and need no
// locking: the scheduler runs one context of a session at a time.
// Each access is reported exactly once, before any cooperative yield
// propagates (the coroutine leaf convention: the access has completed
// and is never re-issued on resume), so counters are byte-identical
// across the tree-walk and coroutine engines. A nil profiler — the
// default — costs a single pointer check per access.
type MemProfiler interface {
	NoteAccess(core int, addr uint32, write bool)
}

// noteLoad reports a completed timed load to the profiler (if any) and
// runs the memory-op yield cadence; noteStore is its store twin.
func (p *Proc) noteLoad(addr uint32) error {
	if p.prof != nil {
		p.prof.NoteAccess(p.Core, addr, false)
	}
	return p.noteMemOp(addr)
}

func (p *Proc) noteStore(addr uint32) error {
	if p.prof != nil {
		p.prof.NoteAccess(p.Core, addr, true)
	}
	return p.noteMemOp(addr)
}

// noteMemOp implements the cooperative yield cadence. Accesses to shared
// regions (shared DRAM, MPB) yield immediately: those are the points
// where cross-core contention is modelled, and letting one context run a
// burst ahead would serialize whole bursts at the memory controllers
// instead of interleaving requests in virtual-time order. Private
// accesses cannot contend, so they only yield every YieldEvery ops to
// keep scheduling overhead low. The yield itself is outlined so the
// no-yield path inlines into the typed accessors.
func (p *Proc) noteMemOp(addr uint32) error {
	p.memOps++
	if addr >= sccsim.SharedBase || p.memOps >= YieldEvery ||
		p.Clock-p.lastYield >= yieldHorizonPs {
		return p.yieldMemOp()
	}
	return nil
}

// yieldMemOp is noteMemOp's cold half.
func (p *Proc) yieldMemOp() error {
	p.memOps = 0
	return p.Yield()
}

// loadValue reads a typed value from simulated memory, charging latency.
// The access and decode complete before a yield propagates; the real
// value rides alongside errYield for the caller to save.
func (p *Proc) loadValue(addr uint32, t *types.Type) (Value, error) {
	size := t.Size()
	if size <= 0 || size > 8 {
		return Value{}, fmt.Errorf("load of %d-byte type %s", size, t)
	}
	buf := p.buf[:size]
	p.Clock += p.Sim.Machine.Load(p.Core, addr, buf, p.Clock)
	yerr := p.noteLoad(addr)
	v, err := decodeValue(t, buf)
	if err != nil {
		return Value{}, err
	}
	return v, yerr
}

// storeValue writes a typed value to simulated memory, charging latency.
// The store is complete before a yield propagates.
func (p *Proc) storeValue(addr uint32, t *types.Type, v Value) error {
	size := t.Size()
	if size <= 0 || size > 8 {
		return fmt.Errorf("store of %d-byte type %s", size, t)
	}
	buf := p.buf[:size]
	if err := encodeValue(t, Convert(v, t), buf); err != nil {
		return err
	}
	p.Clock += p.Sim.Machine.Store(p.Core, addr, buf, p.Clock)
	return p.noteStore(addr)
}

// ---------------------------------------------------------------------------
// Address resolution
// ---------------------------------------------------------------------------

// addrOfSymbol finds a variable's address: innermost frame slot first,
// then the globals image.
func (p *Proc) addrOfSymbol(sym *ast.Symbol) (uint32, bool) {
	if len(p.frames) > 0 {
		if a, ok := p.frames[len(p.frames)-1].slots[sym]; ok {
			return a, true
		}
	}
	if a, ok := p.Sim.Program.GlobalAddr(sym); ok {
		return a, true
	}
	return 0, false
}

// heapAlloc bump-allocates n bytes from the core's private heap.
func (p *Proc) heapAlloc(n int) uint32 {
	s := p.Sim
	cur := s.heaps[p.Core]
	cur = (cur + 7) &^ 7
	addr := cur
	s.heaps[p.Core] = cur + uint32(n)
	return addr
}

// pushFrame allocates the activation record for fn: one aligned stack
// slot per parameter and per local declaration anywhere in the body
// (slots are assigned once, like a compiled frame).
func (p *Proc) pushFrame(fn *ast.FuncDecl) (*frame, error) {
	if len(p.frames)+len(p.cframes) >= maxCallDepth {
		return nil, fmt.Errorf("call depth exceeds %d in %s", maxCallDepth, fn.Name)
	}
	fr := &frame{fn: fn, slots: make(map[*ast.Symbol]uint32), saved: p.stackPtr}
	sp := p.stackPtr
	alloc := func(sym *ast.Symbol, t *types.Type) {
		size := uint32(t.Size())
		if size == 0 {
			size = 4
		}
		a := uint32(t.Align())
		if a == 0 {
			a = 4
		}
		sp -= size
		sp &^= a - 1
		fr.slots[sym] = sp
	}
	for _, prm := range fn.Params {
		if prm.Sym != nil {
			alloc(prm.Sym, prm.Type)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeclStmt); ok && d.Decl.Sym != nil {
			alloc(d.Decl.Sym, d.Decl.Type)
		}
		return true
	})
	if p.stackTop-sp > StackBytes {
		return nil, fmt.Errorf("stack overflow in %s", fn.Name)
	}
	p.stackPtr = sp
	p.frames = append(p.frames, fr)
	return fr, nil
}

func (p *Proc) popFrame() {
	fr := p.frames[len(p.frames)-1]
	p.frames = p.frames[:len(p.frames)-1]
	p.stackPtr = fr.saved
}

// ---------------------------------------------------------------------------
// Compiled-engine frames and calls
// ---------------------------------------------------------------------------

// slotAddr returns the address of slot idx in the running compiled frame.
func (p *Proc) slotAddr(idx int) uint32 { return p.slotMem[p.cfp+idx] }

// pushCFrame materialises cf's precomputed layout: the same subtract-and-
// align walk pushFrame performs, but over a resolved slot list instead of
// a fresh AST inspection, into a reused arena instead of a fresh map.
func (p *Proc) pushCFrame(cf *compiledFunc) error {
	// Depth counts frames of both engines: a compiled caller can recurse
	// through a fallback (tree-walk) callee and vice versa, and the limit
	// must trip at the same combined depth either way.
	if len(p.cframes)+len(p.frames) >= maxCallDepth {
		return fmt.Errorf("call depth exceeds %d in %s", maxCallDepth, cf.name)
	}
	base := len(p.slotMem)
	sp := p.stackPtr
	for _, sd := range cf.slots {
		sp -= sd.size
		sp &^= sd.amask
		p.slotMem = append(p.slotMem, sp)
	}
	if p.stackTop-sp > StackBytes {
		p.slotMem = p.slotMem[:base]
		return fmt.Errorf("stack overflow in %s", cf.name)
	}
	p.cframes = append(p.cframes, cframe{base: base, saved: p.stackPtr})
	p.stackPtr = sp
	p.cfp = base
	return nil
}

func (p *Proc) popCFrame() {
	fr := p.cframes[len(p.cframes)-1]
	p.cframes = p.cframes[:len(p.cframes)-1]
	p.slotMem = p.slotMem[:fr.base]
	p.stackPtr = fr.saved
	if n := len(p.cframes); n > 0 {
		p.cfp = p.cframes[n-1].base
	} else {
		p.cfp = 0
	}
}

// dispatchCall routes a resolved callee: compiled body, or the tree-walk
// reference for functions the compiler refused (goroutine mode only; a
// coroutine session requires a fully-compiled program).
func (p *Proc) dispatchCall(cf *compiledFunc, args []Value) (Value, error) {
	if cf.fallback {
		return p.callTree(cf.decl, args)
	}
	return p.callCompiled(cf, args)
}

// callCompiled is the compiled twin of callTree: identical cycle charges,
// identical timed parameter stores, no per-call allocation. Resumable at
// every suspension point: after the call charge (1), between parameter
// stores (2), inside the body (3) and after the return charge (4).
func (p *Proc) callCompiled(cf *compiledFunc, args []Value) (Value, error) {
	if cf.body == nil {
		return Value{}, fmt.Errorf("call of undefined function %s", cf.name)
	}
	if p.coResuming {
		// Nearly every resume re-enters a suspended body (step 3, no
		// payload flags, and never a piggyback carrier — the enclosing
		// call combinator's frame sits above it on every unwind, so
		// blocks fuse onto that instead). Decode it by hand and skip the
		// scratch-slot round trip of the general pop.
		n := len(p.kstack) - 1
		if m := &p.kstack[n]; m.step == 3 {
			depth := int(m.n)
			p.kstack = p.kstack[:n]
			if n == 0 {
				p.coResuming = false
			}
			return p.runCompiledBodyAt(cf, depth)
		}
		fr := p.popKRef()
		switch fr.step {
		case 1: // call charge complete, frame not yet pushed
			return p.enterCompiled(cf, args)
		case 2: // parameter store i-1 complete
			if err := p.storeParams(cf, args, int(fr.n)); err != nil {
				return Value{}, err
			}
			return p.runCompiledBody(cf)
		case 3: // suspended inside the body; fr.n carries the call depth
			return p.runCompiledBodyAt(cf, int(fr.n))
		default: // 4: return charge complete, result saved
			return fr.v, nil
		}
	}
	p.Calls++
	if err := p.chargeCycles(costCall); err != nil {
		p.pushK(kframe{step: 1})
		return Value{}, err
	}
	return p.enterCompiled(cf, args)
}

// enterCompiled pushes the activation record, stores the parameters and
// runs the body (everything after the call charge).
func (p *Proc) enterCompiled(cf *compiledFunc, args []Value) (Value, error) {
	if err := p.pushCFrame(cf); err != nil {
		return Value{}, err
	}
	if err := p.storeParams(cf, args, 0); err != nil {
		return Value{}, err
	}
	return p.runCompiledBody(cf)
}

// storeParams performs the timed parameter stores from index `from`; on
// a yield the in-flight store has completed and the frame records the
// next index.
func (p *Proc) storeParams(cf *compiledFunc, args []Value, from int) error {
	for i := from; i < len(cf.paramSlot); i++ {
		si := cf.paramSlot[i]
		if si < 0 {
			continue
		}
		var v Value
		if i < len(args) {
			v = args[i]
		}
		if _, err := cf.paramStore[i](p, p.slotMem[p.cfp+si], v); err != nil {
			if err == errYield {
				p.pushK(kframe{step: 2, n: int64(i + 1)})
				return err
			}
			p.popCFrame()
			return err
		}
	}
	return nil
}

// runCompiledBody starts a fresh body at the current call depth (this
// function's frame is the innermost, so len(cframes) IS its depth).
func (p *Proc) runCompiledBody(cf *compiledFunc) (Value, error) {
	return p.runCompiledBodyAt(cf, len(p.cframes))
}

// runCompiledBodyAt executes (or re-enters) the body, pops the
// activation record and charges the return. The return cell comes from
// the per-depth arena at the function's OWN depth — recorded in the
// suspension frame, because during a resume descent the deeper
// suspended calls are still pushed and len(cframes) would index a
// deeper call's cell. The cell is zeroed on fresh entry exactly like
// the local it replaces (ReturnStmt writes it with no suspension before
// the body completes, so a re-entered body never carries a partial cell
// across a yield, and nothing runs on this context while it is
// suspended).
func (p *Proc) runCompiledBodyAt(cf *compiledFunc, depth int) (Value, error) {
	if p.retSlots == nil {
		p.retSlots = make([]Value, maxCallDepth+1)
	}
	ret := &p.retSlots[depth]
	if !p.coResuming {
		*ret = Value{}
	}
	if _, err := cf.body(p, ret); err != nil {
		if err == errYield {
			p.pushK(kframe{step: 3, n: int64(depth)})
			return Value{}, err
		}
		p.popCFrame()
		return Value{}, err
	}
	rv := *ret
	p.popCFrame()
	if err := p.chargeCycles(costReturn); err != nil {
		p.pushK(kframe{step: 4, v: rv})
		return Value{}, err
	}
	return rv, nil
}

// evalCompiledArgs evaluates call arguments into the Proc's argument
// arena, charging one ALU cycle per argument push as evalArgs does. The
// caller truncates the arena back to base when the call returns; builtins
// receive the arena-backed slice and must not retain it (none do). On a
// yield the arena stays extended — evaluated arguments live there across
// the suspension — and the frame records the next argument to evaluate.
func (p *Proc) evalCompiledArgs(fns []evalFn) ([]Value, int, error) {
	var base, start int
	if p.coResuming {
		fr := p.popKRef()
		base, start = int(fr.a), int(fr.n)
	} else {
		base = len(p.argArena)
		need := base + len(fns)
		if cap(p.argArena) < need {
			grown := make([]Value, need, need*2+8)
			copy(grown, p.argArena)
			p.argArena = grown
		} else {
			p.argArena = p.argArena[:need]
		}
	}
	for i := start; i < len(fns); i++ {
		v, err := fns[i](p)
		if err != nil {
			if err == errYield {
				p.pushK(kframe{a: uint32(base), n: int64(i)})
				return nil, 0, err
			}
			p.argArena = p.argArena[:base]
			return nil, 0, err
		}
		p.argArena[base+i] = v
		if err := p.chargeCycles(costALU); err != nil {
			p.pushK(kframe{a: uint32(base), n: int64(i + 1)})
			return nil, 0, err
		}
	}
	return p.argArena[base : base+len(fns) : base+len(fns)], base, nil
}

// LoadTyped reads a typed value with timing; for runtime packages. The
// coroutine leaf convention applies: on a yield the access has completed
// and the real value is returned alongside the sentinel.
func (p *Proc) LoadTyped(addr uint32, t *types.Type) (Value, error) {
	return p.loadValue(addr, t)
}

// StoreTyped writes a typed value with timing; for runtime packages.
// On a yield the store has completed.
func (p *Proc) StoreTyped(addr uint32, t *types.Type, v Value) error {
	return p.storeValue(addr, t, v)
}

// ChargeCycles adds compute cycles; for runtime packages. On a yield
// the charge has completed.
func (p *Proc) ChargeCycles(n int) error { return p.chargeCycles(n) }

// ProfileAccess reports a timed access a runtime performed directly
// against the Machine (bulk copy loops: RCCE put/get, send/recv
// staging) to the session profiler. Call it once per Machine.Load or
// Machine.Store, immediately after the access, before any yield can
// propagate — mirroring the typed accessors' exactly-once convention.
func (p *Proc) ProfileAccess(addr uint32, write bool) {
	if p.prof != nil {
		p.prof.NoteAccess(p.Core, addr, write)
	}
}

// Printf appends to the session output.
func (p *Proc) Printf(format string, args ...any) {
	fmt.Fprintf(&p.Sim.Out, format, args...)
}

// ReadCString copies a NUL-terminated string out of simulated memory.
func (p *Proc) ReadCString(addr uint32) string {
	var out []byte
	var b [1]byte
	for len(out) < 1<<16 {
		p.Sim.Machine.ReadBytes(p.Core, addr, b[:])
		if b[0] == 0 {
			break
		}
		out = append(out, b[0])
		addr++
	}
	return string(out)
}

// Seconds converts the context clock to seconds.
func (p *Proc) Seconds() float64 { return float64(p.Clock) / sccsim.PsPerSecond }
