package interp

import (
	"os"
	"testing"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/sccsim"
)

// layoutPrograms are the sources the frame-layout properties quantify
// over: the repo's example program plus shapes chosen to stress the
// allocator (nested scopes, loops declaring locals, recursion, every
// scalar width, arrays, shadowing).
func layoutPrograms(t *testing.T) map[string]*Program {
	t.Helper()
	srcs := map[string]string{
		"scopes.c": `
int g;
int mix(int a, double b) {
    int x = 1;
    for (int i = 0; i < 3; i++) { int y = i; x += y; }
    while (x < 10) { double z = 0.5; x += (int)(z + b); }
    if (x) { char c = 'a'; short s = 2; x += c + s; }
    return x + a;
}
int rec(int n) { int local = n; if (n <= 0) return 0; return local + rec(n - 1); }
int main() { int arr[4] = {1,2,3}; return mix(arr[0], 1.5) + rec(5); }`,
		"shadow.c": `
int v = 7;
int main() {
    int v = 1;
    { int w = v + 1; v = w; }
    return v;
}`,
	}
	if b, err := os.ReadFile("../../testdata/example41.c"); err == nil {
		srcs["example41.c"] = string(b)
	}
	out := make(map[string]*Program)
	for name, src := range srcs {
		pr, err := Compile(name, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = pr
	}
	return out
}

// TestFrameLayoutOneSlotPerSymbol: for every function of every program,
// each parameter and local symbol gets exactly one slot, and the slot
// list covers exactly those symbols — the property that makes the dense
// slot array a faithful replacement for the per-call frame map.
func TestFrameLayoutOneSlotPerSymbol(t *testing.T) {
	for name, pr := range layoutPrograms(t) {
		for _, cf := range pr.compiledList {
			if cf.fallback {
				t.Errorf("%s: %s fell back to the tree-walk engine", name, cf.name)
				continue
			}
			seen := map[*ast.Symbol]int{}
			for _, sd := range cf.slots {
				if sd.sym == nil {
					t.Fatalf("%s: %s has a slot with no symbol", name, cf.name)
				}
				seen[sd.sym]++
			}
			for sym, n := range seen {
				if n != 1 {
					t.Errorf("%s: %s: symbol %s has %d slots, want 1", name, cf.name, sym.Name, n)
				}
			}
			// The layout covers the parameters and every declaration the
			// reference frame walk would allocate.
			want := map[*ast.Symbol]bool{}
			for _, prm := range cf.decl.Params {
				if prm.Sym != nil {
					want[prm.Sym] = true
				}
			}
			if cf.decl.Body != nil {
				ast.Inspect(cf.decl.Body, func(nd ast.Node) bool {
					if d, ok := nd.(*ast.DeclStmt); ok && d.Decl.Sym != nil {
						want[d.Decl.Sym] = true
					}
					return true
				})
			}
			if len(want) != len(seen) {
				t.Errorf("%s: %s: layout has %d symbols, function declares %d", name, cf.name, len(seen), len(want))
			}
			for sym := range want {
				if seen[sym] != 1 {
					t.Errorf("%s: %s: declared symbol %s missing from layout", name, cf.name, sym.Name)
				}
			}
		}
	}
}

// TestFrameSlotsDoNotOverlap pushes frames (including the same function
// recursively) and checks that no two live slots' [addr, addr+size)
// ranges intersect: recursion reuses the layout without aliasing.
func TestFrameSlotsDoNotOverlap(t *testing.T) {
	for name, pr := range layoutPrograms(t) {
		sim := NewSim(sccsim.MustNew(sccsim.DefaultConfig()), pr)
		p := &Proc{Sim: sim, stackTop: sccsim.PrivateLimit, stackPtr: sccsim.PrivateLimit}
		type rng struct {
			lo, hi uint32
			fn     string
		}
		var live []rng
		push := func(cf *compiledFunc) {
			if err := p.pushCFrame(cf); err != nil {
				t.Fatalf("%s: push %s: %v", name, cf.name, err)
			}
			for i, sd := range cf.slots {
				lo := p.slotAddr(i)
				hi := lo + sd.size
				for _, r := range live {
					if lo < r.hi && r.lo < hi {
						t.Fatalf("%s: %s slot [%#x,%#x) overlaps %s slot [%#x,%#x)",
							name, cf.name, lo, hi, r.fn, r.lo, r.hi)
					}
				}
				live = append(live, rng{lo, hi, cf.name})
			}
		}
		// Push every function once, then the first twice more (recursion).
		for _, cf := range pr.compiledList {
			if cf.decl.Body == nil || cf.fallback {
				continue
			}
			push(cf)
		}
		for _, cf := range pr.compiledList {
			if cf.decl.Body == nil || cf.fallback {
				continue
			}
			push(cf)
			push(cf)
			break
		}
	}
}

// TestRecursionEngineParity runs a recursion-heavy program under both
// engines: identical output and makespan means recursive frames reuse
// layouts at distinct addresses with identical timing.
func TestRecursionEngineParity(t *testing.T) {
	src := `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int fact(int n) { int acc = 1; if (n > 1) acc = n * fact(n - 1); return acc; }
int main() { printf("%d %d\n", fib(17), fact(10)); return 0; }`
	run := func(e Engine) (*Sim, error) {
		old := DefaultEngine
		DefaultEngine = e
		defer func() { DefaultEngine = old }()
		return tryRunMain(src)
	}
	a, err := run(EngineCompiled)
	if err != nil {
		t.Fatalf("compiled: %v", err)
	}
	b, err := run(EngineTreeWalk)
	if err != nil {
		t.Fatalf("tree-walk: %v", err)
	}
	if a.Output() != b.Output() || a.Makespan() != b.Makespan() {
		t.Fatalf("engines diverge: %q/%d vs %q/%d", a.Output(), a.Makespan(), b.Output(), b.Makespan())
	}
	if a.Output() != "1597 3628800\n" {
		t.Fatalf("wrong answer: %q", a.Output())
	}
}
