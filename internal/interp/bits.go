package interp

import "math"

func floatBits32(f float64) uint32 { return math.Float32bits(float32(f)) }
func floatBits64(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat32(b uint32) float32 { return math.Float32frombits(b) }
func bitsFloat64(b uint64) float64 { return math.Float64frombits(b) }
