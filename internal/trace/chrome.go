package trace

import (
	"encoding/json"
	"io"
	"os"
	"strconv"

	"hsmcc/internal/sccsim"
)

// Chrome trace_event export: the JSON object format understood by
// Perfetto (ui.perfetto.dev) and chrome://tracing. The mapping is one
// process track per core (pid = core) and one thread track per
// execution context (tid = context ID): run slices are "X" complete
// events on the context's track, blocked intervals are "wait:<reason>"
// slices, spawns/unblocks/spin rounds are "i" instants, and the
// cumulative MPB / shared-DRAM access counts per core are "C" counter
// tracks. Timestamps are microseconds (the trace_event unit); the
// simulator's picosecond clocks divide by 1e6.

// ChromeEvent is one trace_event entry. Field names follow the Chrome
// trace-event format spec; unknown fields are rejected by the schema
// round-trip test, so the set here is the full vocabulary the exporter
// emits.
type ChromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s,omitempty"` // instant scope ("t" = thread)
	Args any     `json:"args,omitempty"`
}

// Export bundles the trace events with the summary; it is both the
// trace-file shape (WriteChrome) and the envelope embedded in the
// serving layer's ?trace=1 responses. Perfetto ignores the extra
// "summary" key.
type Export struct {
	TraceEvents []ChromeEvent `json:"traceEvents"`
	Summary     *Summary      `json:"summary"`
}

// usPerPs converts simulator picoseconds to trace microseconds.
const usPerPs = 1e-6

func us(t sccsim.Time) float64 { return float64(t) * usPerPs }

// sliceArgs carries a run slice's memory-system deltas; zero-valued
// counters are omitted to keep traces small.
type sliceArgs struct {
	End       string `json:"end"`
	Loads     uint32 `json:"loads,omitempty"`
	Stores    uint32 `json:"stores,omitempty"`
	Private   uint32 `json:"private,omitempty"`
	Shared    uint32 `json:"shared,omitempty"`
	MPB       uint32 `json:"mpb,omitempty"`
	MPBRemote uint32 `json:"mpb_remote,omitempty"`
	L1Hits    uint32 `json:"l1_hits,omitempty"`
	L1Misses  uint32 `json:"l1_misses,omitempty"`
	L2Hits    uint32 `json:"l2_hits,omitempty"`
	L2Misses  uint32 `json:"l2_misses,omitempty"`
}

type nameArgs struct {
	Name string `json:"name"`
}

type valueArgs struct {
	Value uint64 `json:"value"`
}

type spinArgs struct {
	Backoff int64 `json:"backoff_cycles"`
}

// Export renders everything recorded so far.
func (r *Recorder) Export() *Export {
	events, _ := r.Events()
	out := &Export{Summary: r.Summarize()}

	// Metadata: name the per-core process tracks and the per-context
	// thread tracks that appear in the retained events.
	coreSeen := make(map[int32]bool)
	ctxSeen := make(map[int32]int32) // ctx -> core
	for i := range events {
		e := &events[i]
		if !coreSeen[e.Core] {
			coreSeen[e.Core] = true
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: "process_name", Ph: "M", Pid: int(e.Core),
				Args: nameArgs{Name: coreName(int(e.Core))},
			})
		}
		if _, ok := ctxSeen[e.Ctx]; !ok {
			ctxSeen[e.Ctx] = e.Core
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: "thread_name", Ph: "M", Pid: int(e.Core), Tid: int(e.Ctx),
				Args: nameArgs{Name: ctxName(int(e.Ctx))},
			})
		}
	}

	// The event stream, in recorded (execution) order. Blocked
	// intervals are synthesized from a block-ending slice and the
	// context's next unblock; cumulative per-core counters advance at
	// every slice edge.
	type pending struct {
		at     sccsim.Time
		reason uint8
		valid  bool
	}
	blockAt := make(map[int32]pending)
	mpbTotal := make(map[int32]uint64)
	dramTotal := make(map[int32]uint64)
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case evSliceYield, evSliceBlock, evSliceFinish:
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: "run", Ph: "X", Pid: int(e.Core), Tid: int(e.Ctx),
				Ts: us(e.Start), Dur: us(e.Time - e.Start),
				Args: sliceArgs{
					End:     suspendName(e.Kind, e.Reason),
					Loads:   e.Loads, Stores: e.Stores,
					Private: e.Private, Shared: e.Shared,
					MPB: e.MPB, MPBRemote: e.MPBRemote,
					L1Hits: e.L1Hits, L1Misses: e.L1Misses,
					L2Hits: e.L2Hits, L2Misses: e.L2Misses,
				},
			})
			if e.Kind == evSliceBlock {
				blockAt[e.Ctx] = pending{at: e.Time, reason: e.Reason, valid: true}
			}
			if e.MPB != 0 {
				mpbTotal[e.Core] += uint64(e.MPB)
				out.TraceEvents = append(out.TraceEvents, ChromeEvent{
					Name: "mpb_accesses", Ph: "C", Pid: int(e.Core),
					Ts: us(e.Time), Args: valueArgs{Value: mpbTotal[e.Core]},
				})
			}
			if e.Shared != 0 {
				dramTotal[e.Core] += uint64(e.Shared)
				out.TraceEvents = append(out.TraceEvents, ChromeEvent{
					Name: "dram_accesses", Ph: "C", Pid: int(e.Core),
					Ts: us(e.Time), Args: valueArgs{Value: dramTotal[e.Core]},
				})
			}
		case evSpawn:
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: "spawn", Ph: "i", Pid: int(e.Core), Tid: int(e.Ctx),
				Ts: us(e.Time), S: "t",
			})
		case evUnblock:
			if b := blockAt[e.Ctx]; b.valid {
				delete(blockAt, e.Ctx)
				out.TraceEvents = append(out.TraceEvents, ChromeEvent{
					Name: "wait:" + reasonName(b.reason), Ph: "X",
					Pid: int(e.Core), Tid: int(e.Ctx),
					Ts: us(b.at), Dur: us(e.Time - b.at),
				})
			} else {
				// The matching block event was dropped by the ring.
				out.TraceEvents = append(out.TraceEvents, ChromeEvent{
					Name: "unblock", Ph: "i", Pid: int(e.Core), Tid: int(e.Ctx),
					Ts: us(e.Time), S: "t",
				})
			}
		case evSpin:
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: "spin", Ph: "i", Pid: int(e.Core), Tid: int(e.Ctx),
				Ts: us(e.Time), S: "t", Args: spinArgs{Backoff: e.Arg},
			})
		}
	}
	return out
}

// WriteChrome writes the Chrome trace_event JSON document (with the
// summary riding along under the "summary" key) to w.
func (r *Recorder) WriteChrome(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.Export())
}

// WriteFile writes the Chrome trace_event JSON document to path.
func (r *Recorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func coreName(core int) string { return "core " + strconv.Itoa(core) }
func ctxName(ctx int) string   { return "ctx " + strconv.Itoa(ctx) }
