package trace

import (
	"hsmcc/internal/interp"
)

// Summary is the compact deterministic digest of a recorded run: where
// the time went per core, why contexts stalled, and when the on-chip
// (MPB) and off-chip (shared DRAM) traffic happened. It is computed
// from online accumulators, so it stays exact even when the event ring
// wrapped and dropped old events.
type Summary struct {
	MakespanPs int64  `json:"makespan_ps"`
	Contexts   uint64 `json:"contexts"`
	Finished   uint64 `json:"finished"`
	// Events is how many events the run generated; Dropped of those
	// were overwritten in the ring and are missing from the export.
	Events  uint64 `json:"events"`
	Dropped uint64 `json:"dropped_events,omitempty"`

	SpinRounds uint64 `json:"spin_rounds,omitempty"`

	// Cores lists every core that ran at least one slice.
	Cores []CoreSummary `json:"cores"`

	// Stalls breaks blocked time down by cause, in enum order, omitting
	// causes that never occurred.
	Stalls []StallSummary `json:"stalls,omitempty"`

	// The access timelines count MPB and shared-DRAM accesses per
	// fixed-width time bucket (width in ps; trailing empty buckets are
	// trimmed). Accesses are binned at the end of the run slice that
	// performed them.
	TimelineBucketPs int64    `json:"timeline_bucket_ps"`
	MPBTimeline      []uint64 `json:"mpb_timeline"`
	DRAMTimeline     []uint64 `json:"dram_timeline"`
}

// CoreSummary is one core's occupancy and memory-system totals.
type CoreSummary struct {
	Core   int   `json:"core"`
	BusyPs int64 `json:"busy_ps"`
	// Utilization is busy time over the run makespan.
	Utilization float64 `json:"utilization"`
	Slices      uint64  `json:"slices"`

	Loads           uint64 `json:"loads"`
	Stores          uint64 `json:"stores"`
	PrivateAccesses uint64 `json:"private_accesses"`
	SharedAccesses  uint64 `json:"shared_accesses"`
	MPBAccesses     uint64 `json:"mpb_accesses"`
	MPBRemote       uint64 `json:"mpb_remote"`
	L1Hits          uint64 `json:"l1_hits"`
	L1Misses        uint64 `json:"l1_misses"`
	L2Hits          uint64 `json:"l2_hits"`
	L2Misses        uint64 `json:"l2_misses"`
}

// StallSummary is the blocked-time total for one cause.
type StallSummary struct {
	Reason  string `json:"reason"`
	Count   uint64 `json:"count"`
	TotalPs int64  `json:"total_ps"`
}

// Summarize computes the digest of everything recorded so far.
func (r *Recorder) Summarize() *Summary {
	s := &Summary{
		MakespanPs: int64(r.maxTime),
		Contexts:   r.spawns,
		Finished:   r.finishes,
		Events:     r.count,
		SpinRounds: r.spins,
	}
	if n := uint64(len(r.ring)); r.count > n {
		s.Dropped = r.count - n
	}
	for core := range r.cores {
		co := &r.cores[core]
		if co.slices == 0 {
			continue
		}
		cs := CoreSummary{
			Core:            core,
			BusyPs:          int64(co.busy),
			Slices:          co.slices,
			Loads:           co.total.Loads,
			Stores:          co.total.Stores,
			PrivateAccesses: co.total.PrivateAccesses,
			SharedAccesses:  co.total.SharedAccesses,
			MPBAccesses:     co.total.MPBAccesses,
			MPBRemote:       co.total.MPBRemote,
			L1Hits:          co.total.L1Hits,
			L1Misses:        co.total.L1Misses,
			L2Hits:          co.total.L2Hits,
			L2Misses:        co.total.L2Misses,
		}
		if r.maxTime > 0 {
			cs.Utilization = float64(co.busy) / float64(r.maxTime)
		}
		s.Cores = append(s.Cores, cs)
	}
	for reason := 0; reason < interp.NumBlockReasons; reason++ {
		if r.stallCount[reason] == 0 {
			continue
		}
		s.Stalls = append(s.Stalls, StallSummary{
			Reason:  interp.BlockReason(reason).String(),
			Count:   r.stallCount[reason],
			TotalPs: int64(r.stallTime[reason]),
		})
	}
	// The two timelines fold independently; renormalise to the coarser
	// width so the exported buckets line up.
	mpb, dram := r.mpbTimeline, r.dramTimeline
	for mpb.width < dram.width {
		mpb.fold()
	}
	for dram.width < mpb.width {
		dram.fold()
	}
	s.TimelineBucketPs = int64(mpb.width)
	used := 0
	for i := 0; i < timelineBuckets; i++ {
		if mpb.buckets[i] != 0 || dram.buckets[i] != 0 {
			used = i + 1
		}
	}
	s.MPBTimeline = append([]uint64{}, mpb.buckets[:used]...)
	s.DRAMTimeline = append([]uint64{}, dram.buckets[:used]...)
	return s
}

// reasonName maps a stored reason byte to its stable export name.
func reasonName(reason uint8) string { return interp.BlockReason(reason).String() }

// suspendName maps a slice-ending event kind to its stable export name.
func suspendName(kind, reason uint8) string {
	switch kind {
	case evSliceBlock:
		return "block:" + reasonName(reason)
	case evSliceFinish:
		return "finish"
	default:
		return "yield"
	}
}
