// Package trace is the simulator's event recorder: a low-overhead sink
// for the scheduling hooks of internal/interp (interp.TraceSink) that
// reconstructs per-context run slices, blocked intervals and per-core
// memory-system activity, and exports them as Chrome trace_event JSON
// (loadable in Perfetto, chrome://tracing) plus a compact deterministic
// summary.
//
// The recorder is observation-only: it never charges simulated time and
// never touches scheduling state, so a run produces byte-identical
// output and cycle statistics with tracing on or off. All hooks fire
// from engine-shared code paths, so the recorded event stream — and
// therefore every export — is byte-identical between the tree-walk and
// coroutine engines.
//
// Hot-path discipline (the PR-5 profiler / PR-9 scratch-pool rules):
// the event ring and every per-core accumulator are preallocated at
// construction, events are pointer-free structs, and the only growth
// happens at context spawn (amortised doubling of the per-context
// table). When the ring fills it drops the oldest events and counts
// them; the summary accumulators are maintained online and stay exact
// regardless of ring wrap.
package trace

import (
	"hsmcc/internal/interp"
	"hsmcc/internal/sccsim"
)

// Event kinds stored in the ring.
const (
	evSliceYield  uint8 = iota // run slice ended in a cooperative yield
	evSliceBlock               // run slice ended in a block (Reason says why)
	evSliceFinish              // run slice ended with the context completing
	evSpawn                    // context created
	evUnblock                  // blocked context released
	evSpin                     // one failed test-and-set round (Arg = backoff cycles)
)

// Event is one ring entry: pointer-free and fixed-size so the ring is
// a single allocation the garbage collector never scans.
type Event struct {
	Kind   uint8
	Reason uint8 // interp.BlockReason for evSliceBlock/evUnblock
	Core   int32
	Ctx    int32
	Start  sccsim.Time // slice start (slice kinds only)
	Time   sccsim.Time // event time; slice end for slice kinds
	Arg    int64       // evSpin: backoff cycles

	// Memory-system deltas of the slice (slice kinds only), sampled
	// from the core's counters at the suspension edge.
	Loads, Stores    uint32
	Private, Shared  uint32
	MPB, MPBRemote   uint32
	L1Hits, L1Misses uint32
	L2Hits, L2Misses uint32
}

// ctxInfo is the recorder's per-context state.
type ctxInfo struct {
	core        int32
	sliceStart  sccsim.Time
	blockStart  sccsim.Time
	blockReason uint8
	blocked     bool
	spawned     bool
}

// coreInfo is the per-core accumulator block.
type coreInfo struct {
	prev   sccsim.CoreStats // counter sample at the last slice edge
	busy   sccsim.Time      // sum of run-slice durations
	slices uint64
	total  sccsim.CoreStats // online sum of slice deltas (exact under ring wrap)
}

// DefaultCapacity is the ring size (events) when NewRecorder gets a
// non-positive capacity: 64 Ki events ≈ 4 MB.
const DefaultCapacity = 1 << 16

// timelineBuckets is the fixed resolution of the access-timeline
// histograms; the bucket width doubles whenever the makespan outgrows
// the covered range, which keeps the fill deterministic without
// knowing the final makespan up front.
const timelineBuckets = 64

// timelineStartWidth is the initial bucket width: 2^20 ps ≈ 1.05 µs.
const timelineStartWidth = sccsim.Time(1 << 20)

type timeline struct {
	width   sccsim.Time
	buckets [timelineBuckets]uint64
}

func (t *timeline) add(at sccsim.Time, n uint64) {
	if n == 0 {
		return
	}
	for at >= t.width*timelineBuckets {
		t.fold()
	}
	t.buckets[at/t.width] += n
}

// fold merges bucket pairs and doubles the width.
func (t *timeline) fold() {
	for i := 0; i < timelineBuckets/2; i++ {
		t.buckets[i] = t.buckets[2*i] + t.buckets[2*i+1]
	}
	for i := timelineBuckets / 2; i < timelineBuckets; i++ {
		t.buckets[i] = 0
	}
	t.width *= 2
}

// Recorder implements interp.TraceSink. Attach one to a session before
// Spawn (interp.Sim.Trace, or the Trace field of pthreadrt/rcce
// Options) and export after the run with WriteChrome, Export or
// Summarize. A Recorder belongs to one session at a time and is not
// safe for concurrent use — exactly like the session it observes.
type Recorder struct {
	m     *sccsim.Machine
	ring  []Event
	count uint64 // events ever pushed; > len(ring) means the ring wrapped

	ctxs  []ctxInfo
	cores []coreInfo

	spawns   uint64
	finishes uint64
	spins    uint64
	maxTime  sccsim.Time

	stallCount [interp.NumBlockReasons]uint64
	stallTime  [interp.NumBlockReasons]sccsim.Time

	mpbTimeline  timeline
	dramTimeline timeline
}

var _ interp.TraceSink = (*Recorder)(nil)

// NewRecorder builds a recorder with a ring of capacity events (<= 0
// uses DefaultCapacity). m may be nil when the machine does not exist
// yet (the bench harness constructs it inside the run): the runtime Run
// functions bind it via BindMachine when they attach the sink.
func NewRecorder(m *sccsim.Machine, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := &Recorder{
		ring:         make([]Event, capacity),
		mpbTimeline:  timeline{width: timelineStartWidth},
		dramTimeline: timeline{width: timelineStartWidth},
	}
	if m != nil {
		r.BindMachine(m)
	}
	return r
}

// BindMachine points the recorder at the machine whose per-core
// counters the slice deltas sample (interp.MachineBinder). The runtimes
// call it right before the first spawn; rebinding mid-session is not
// supported — one recorder observes one session.
func (r *Recorder) BindMachine(m *sccsim.Machine) {
	r.m = m
	if len(r.cores) < m.Cores() {
		r.cores = make([]coreInfo, m.Cores())
	}
}

// push appends one event, overwriting the oldest when the ring is full.
func (r *Recorder) push(e Event) {
	r.ring[r.count%uint64(len(r.ring))] = e
	r.count++
}

func (r *Recorder) note(at sccsim.Time) {
	if at > r.maxTime {
		r.maxTime = at
	}
}

// ctx returns the per-context slot, growing the table only when a new
// context appears (spawn — not a hot-path event).
func (r *Recorder) ctx(id int) *ctxInfo {
	if id >= len(r.ctxs) {
		grown := make([]ctxInfo, id+1, (id+1)*2)
		copy(grown, r.ctxs)
		r.ctxs = grown
	}
	return &r.ctxs[id]
}

// TraceSpawn implements interp.TraceSink.
func (r *Recorder) TraceSpawn(ctx, core int, at sccsim.Time) {
	c := r.ctx(ctx)
	c.core = int32(core)
	c.sliceStart = at
	c.spawned = true
	r.spawns++
	r.push(Event{Kind: evSpawn, Core: int32(core), Ctx: int32(ctx), Time: at})
	r.note(at)
}

// TraceResume implements interp.TraceSink: the context was elected and
// its next run slice starts now.
func (r *Recorder) TraceResume(ctx, core int, at sccsim.Time) {
	r.ctx(ctx).sliceStart = at
}

// TraceSuspend implements interp.TraceSink: close the run slice, sample
// the core's memory counters, and remember a block for the stall
// accounting.
func (r *Recorder) TraceSuspend(ctx, core int, at sccsim.Time, kind interp.SuspendKind, reason interp.BlockReason) {
	c := r.ctx(ctx)
	co := &r.cores[core]
	now := r.m.StatsOf(core)
	d := now.Delta(co.prev)
	co.prev = now
	co.busy += at - c.sliceStart
	co.slices++
	co.total.Loads += d.Loads
	co.total.Stores += d.Stores
	co.total.PrivateAccesses += d.PrivateAccesses
	co.total.SharedAccesses += d.SharedAccesses
	co.total.MPBAccesses += d.MPBAccesses
	co.total.MPBRemote += d.MPBRemote
	co.total.L1Hits += d.L1Hits
	co.total.L1Misses += d.L1Misses
	co.total.L2Hits += d.L2Hits
	co.total.L2Misses += d.L2Misses

	e := Event{
		Reason: uint8(reason),
		Core:   int32(core),
		Ctx:    int32(ctx),
		Start:  c.sliceStart,
		Time:   at,
		Loads:  uint32(d.Loads), Stores: uint32(d.Stores),
		Private: uint32(d.PrivateAccesses), Shared: uint32(d.SharedAccesses),
		MPB: uint32(d.MPBAccesses), MPBRemote: uint32(d.MPBRemote),
		L1Hits: uint32(d.L1Hits), L1Misses: uint32(d.L1Misses),
		L2Hits: uint32(d.L2Hits), L2Misses: uint32(d.L2Misses),
	}
	switch kind {
	case interp.SuspendBlock:
		e.Kind = evSliceBlock
		c.blockStart = at
		c.blockReason = uint8(reason)
		c.blocked = true
	case interp.SuspendFinish:
		e.Kind = evSliceFinish
		r.finishes++
	default:
		e.Kind = evSliceYield
	}
	r.push(e)
	r.mpbTimeline.add(at, d.MPBAccesses)
	r.dramTimeline.add(at, d.SharedAccesses)
	r.note(at)
}

// TraceUnblock implements interp.TraceSink: close the blocked interval.
func (r *Recorder) TraceUnblock(ctx, core int, at sccsim.Time) {
	c := r.ctx(ctx)
	reason := c.blockReason
	if c.blocked {
		r.stallCount[reason]++
		r.stallTime[reason] += at - c.blockStart
		c.blocked = false
	}
	r.push(Event{Kind: evUnblock, Reason: reason, Core: int32(core), Ctx: int32(ctx), Time: at})
	r.note(at)
}

// TraceSpin implements interp.TraceSink.
func (r *Recorder) TraceSpin(ctx, core int, at sccsim.Time, backoff int) {
	r.spins++
	r.push(Event{Kind: evSpin, Core: int32(core), Ctx: int32(ctx), Time: at, Arg: int64(backoff)})
	r.note(at)
}

// Events returns the retained events oldest-first, plus how many older
// events the ring dropped.
func (r *Recorder) Events() (events []Event, dropped uint64) {
	n := uint64(len(r.ring))
	if r.count <= n {
		return r.ring[:r.count], 0
	}
	head := r.count % n
	out := make([]Event, 0, n)
	out = append(out, r.ring[head:]...)
	out = append(out, r.ring[:head]...)
	return out, r.count - n
}
