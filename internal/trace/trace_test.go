package trace_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hsmcc/internal/interp"
	"hsmcc/internal/pthreadrt"
	"hsmcc/internal/rcce"
	"hsmcc/internal/sccsim"
	"hsmcc/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

// rcceProgram exercises every RCCE-side event source: lock contention
// (spin rounds + mutex-flavoured waits), a barrier, MPB traffic
// (mpbmalloc + put) and off-chip shared traffic (shmalloc).
const rcceProgram = `
int *counter;
char *stage;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    counter = (int*)RCCE_shmalloc(sizeof(int));
    stage = (char*)RCCE_mpbmalloc(32);
    int me = RCCE_ue();
    int i;
    for (i = 0; i < 8; i++) {
        RCCE_acquire_lock(0);
        *counter = *counter + 1;
        RCCE_release_lock(0);
    }
    if (me == 0) {
        char buf[32];
        for (i = 0; i < 32; i++) buf[i] = (char)i;
        RCCE_put(stage, buf, 32, 0);
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    if (me == 0) printf("count %d stage %d\n", *counter, stage[31]);
    RCCE_finalize();
    return 0;
}`

// pthreadProgram exercises the baseline-side sources: mutex waits,
// joins, and time-shared scheduling on one core.
const pthreadProgram = `
pthread_mutex_t lock;
int counter = 0;
void *worker(void *a) {
    int i;
    for (i = 0; i < 40; i++) {
        pthread_mutex_lock(&lock);
        counter = counter + 1;
        pthread_mutex_unlock(&lock);
    }
    pthread_exit(NULL);
}
int main() {
    pthread_mutex_init(&lock, NULL);
    pthread_t t[3];
    int i;
    for (i = 0; i < 3; i++) pthread_create(&t[i], NULL, worker, NULL);
    for (i = 0; i < 3; i++) pthread_join(t[i], NULL);
    printf("%d\n", counter);
    return 0;
}`

// sendrecvProgram exercises the rendezvous block reasons (send, recv).
const sendrecvProgram = `
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(argc, argv);
    int me = RCCE_ue();
    int payload[8];
    int i;
    if (me == 0) {
        for (i = 0; i < 8; i++) payload[i] = i * 3;
        RCCE_send((char*)payload, 32, 1);
    } else {
        RCCE_recv((char*)payload, 32, 0);
        printf("got %d\n", payload[7]);
    }
    RCCE_finalize();
    return 0;
}`

func compile(t *testing.T, src string) *interp.Program {
	t.Helper()
	pr, err := interp.Compile("trace_test.c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return pr
}

func runRCCE(t *testing.T, src string, ues int, engine interp.Engine, rec *trace.Recorder) *rcce.Result {
	t.Helper()
	opts := rcce.DefaultOptions(ues)
	opts.Engine = engine
	if rec != nil { // a typed-nil sink would defeat the hooks' nil checks
		opts.Trace = rec
	}
	res, err := rcce.Run(compile(t, src), sccsim.MustNew(sccsim.DefaultConfig()), opts)
	if err != nil {
		t.Fatalf("rcce run: %v", err)
	}
	return res
}

func runPthread(t *testing.T, src string, engine interp.Engine, rec *trace.Recorder) *pthreadrt.Result {
	t.Helper()
	opts := pthreadrt.DefaultOptions()
	opts.Engine = engine
	if rec != nil {
		opts.Trace = rec
	}
	res, err := pthreadrt.Run(compile(t, src), sccsim.MustNew(sccsim.DefaultConfig()), opts)
	if err != nil {
		t.Fatalf("pthread run: %v", err)
	}
	return res
}

func exportJSON(t *testing.T, rec *trace.Recorder) []byte {
	t.Helper()
	b, err := json.MarshalIndent(rec.Export(), "", " ")
	if err != nil {
		t.Fatalf("marshal export: %v", err)
	}
	return append(b, '\n')
}

// TestCrossEngineByteIdentity is the tentpole invariant: the tree-walk
// and coroutine engines must produce byte-identical trace exports (and
// identical simulation results) for the same program, because every
// hook sits on an engine-shared code path.
func TestCrossEngineByteIdentity(t *testing.T) {
	t.Run("rcce", func(t *testing.T) {
		recTW := trace.NewRecorder(nil, 0)
		recCO := trace.NewRecorder(nil, 0)
		tw := runRCCE(t, rcceProgram, 4, interp.EngineTreeWalk, recTW)
		co := runRCCE(t, rcceProgram, 4, interp.EngineCompiled, recCO)
		if tw.Output != co.Output || tw.Makespan != co.Makespan {
			t.Fatalf("engines diverge: %q/%d vs %q/%d", tw.Output, tw.Makespan, co.Output, co.Makespan)
		}
		a, b := exportJSON(t, recTW), exportJSON(t, recCO)
		if !bytes.Equal(a, b) {
			t.Fatalf("trace exports differ between engines:\ntreewalk %d bytes, compiled %d bytes", len(a), len(b))
		}
	})
	t.Run("pthread", func(t *testing.T) {
		recTW := trace.NewRecorder(nil, 0)
		recCO := trace.NewRecorder(nil, 0)
		tw := runPthread(t, pthreadProgram, interp.EngineTreeWalk, recTW)
		co := runPthread(t, pthreadProgram, interp.EngineCompiled, recCO)
		if tw.Output != co.Output || tw.Makespan != co.Makespan {
			t.Fatalf("engines diverge: %q/%d vs %q/%d", tw.Output, tw.Makespan, co.Output, co.Makespan)
		}
		if !bytes.Equal(exportJSON(t, recTW), exportJSON(t, recCO)) {
			t.Fatal("trace exports differ between engines")
		}
	})
	t.Run("sendrecv", func(t *testing.T) {
		recTW := trace.NewRecorder(nil, 0)
		recCO := trace.NewRecorder(nil, 0)
		runRCCE(t, sendrecvProgram, 2, interp.EngineTreeWalk, recTW)
		runRCCE(t, sendrecvProgram, 2, interp.EngineCompiled, recCO)
		if !bytes.Equal(exportJSON(t, recTW), exportJSON(t, recCO)) {
			t.Fatal("trace exports differ between engines")
		}
	})
}

// TestTracingDoesNotPerturb: attaching a recorder must not change the
// simulation — identical output, makespan and cycle statistics.
func TestTracingDoesNotPerturb(t *testing.T) {
	for _, eng := range []interp.Engine{interp.EngineTreeWalk, interp.EngineCompiled} {
		plain := runRCCE(t, rcceProgram, 4, eng, nil)
		traced := runRCCE(t, rcceProgram, 4, eng, trace.NewRecorder(nil, 0))
		if plain.Output != traced.Output {
			t.Errorf("%v: output changed under tracing: %q vs %q", eng, plain.Output, traced.Output)
		}
		if plain.Makespan != traced.Makespan {
			t.Errorf("%v: makespan changed under tracing: %d vs %d", eng, plain.Makespan, traced.Makespan)
		}
		if plain.Stats != traced.Stats {
			t.Errorf("%v: cycle stats changed under tracing:\n%+v\nvs\n%+v", eng, plain.Stats, traced.Stats)
		}
	}
}

// TestGoldenTrace pins the committed Chrome trace artifact. Regenerate
// with: go test ./internal/trace -run TestGoldenTrace -update
func TestGoldenTrace(t *testing.T) {
	rec := trace.NewRecorder(nil, 0)
	res := runRCCE(t, rcceProgram, 4, interp.EngineCompiled, rec)
	if res.Output != "count 32 stage 31\n" {
		t.Fatalf("unexpected program output %q", res.Output)
	}
	got := exportJSON(t, rec)
	path := filepath.Join("testdata", "golden", "rcce_lock.trace.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace differs from golden %s (got %d bytes, want %d); rerun with -update if intended",
			path, len(got), len(want))
	}
}

// Strict mirror of the Chrome trace_event vocabulary the exporter may
// emit; DisallowUnknownFields turns any drift into a test failure.
type schemaEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	S    string          `json:"s"`
	Args json.RawMessage `json:"args"`
}

type schemaDoc struct {
	TraceEvents []schemaEvent  `json:"traceEvents"`
	Summary     *trace.Summary `json:"summary"`
}

func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// TestChromeSchemaRoundTrip: the committed golden trace must parse
// under the strict trace_event schema — every event a known phase,
// every args payload the exact shape its event name promises.
func TestChromeSchemaRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden", "rcce_lock.trace.json"))
	if err != nil {
		t.Fatalf("read golden (run TestGoldenTrace with -update to create): %v", err)
	}
	var doc schemaDoc
	if err := strictUnmarshal(data, &doc); err != nil {
		t.Fatalf("golden trace violates schema: %v", err)
	}
	if doc.Summary == nil {
		t.Fatal("golden trace has no summary")
	}
	counts := map[string]int{}
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "M", "X", "i", "C":
		default:
			t.Fatalf("event %d: unknown phase %q", i, e.Ph)
		}
		if e.Name == "" {
			t.Fatalf("event %d: empty name", i)
		}
		if e.Ph == "X" && e.Dur < 0 {
			t.Fatalf("event %d (%s): negative duration %v", i, e.Name, e.Dur)
		}
		counts[e.Ph]++
		// Args payloads, strictly, by event name.
		var argErr error
		switch {
		case e.Ph == "M":
			argErr = strictUnmarshal(e.Args, &struct {
				Name string `json:"name"`
			}{})
		case e.Name == "run":
			argErr = strictUnmarshal(e.Args, &struct {
				End       string `json:"end"`
				Loads     uint32 `json:"loads"`
				Stores    uint32 `json:"stores"`
				Private   uint32 `json:"private"`
				Shared    uint32 `json:"shared"`
				MPB       uint32 `json:"mpb"`
				MPBRemote uint32 `json:"mpb_remote"`
				L1Hits    uint32 `json:"l1_hits"`
				L1Misses  uint32 `json:"l1_misses"`
				L2Hits    uint32 `json:"l2_hits"`
				L2Misses  uint32 `json:"l2_misses"`
			}{})
		case e.Ph == "C":
			argErr = strictUnmarshal(e.Args, &struct {
				Value uint64 `json:"value"`
			}{})
		case e.Name == "spin":
			argErr = strictUnmarshal(e.Args, &struct {
				Backoff int64 `json:"backoff_cycles"`
			}{})
		}
		if argErr != nil {
			t.Fatalf("event %d (%s %q): bad args: %v", i, e.Ph, e.Name, argErr)
		}
	}
	for _, ph := range []string{"M", "X", "i", "C"} {
		if counts[ph] == 0 {
			t.Errorf("golden trace has no %q events", ph)
		}
	}
	if doc.Summary.SpinRounds == 0 {
		t.Error("lock-contention trace recorded no spin rounds")
	}
	var reasons []string
	for _, s := range doc.Summary.Stalls {
		reasons = append(reasons, s.Reason)
	}
	if len(reasons) == 0 {
		t.Error("summary has no stall breakdown")
	}
}

// TestRingDropOldest: a tiny ring drops the oldest events but the
// summary stays exact — its online accumulators never depend on the
// ring contents.
func TestRingDropOldest(t *testing.T) {
	small := trace.NewRecorder(nil, 16)
	big := trace.NewRecorder(nil, 0)
	runRCCE(t, rcceProgram, 4, interp.EngineCompiled, small)
	runRCCE(t, rcceProgram, 4, interp.EngineCompiled, big)

	events, dropped := small.Events()
	if len(events) != 16 {
		t.Fatalf("retained %d events, want ring capacity 16", len(events))
	}
	if dropped == 0 {
		t.Fatal("expected the small ring to drop events")
	}
	ss, bs := small.Summarize(), big.Summarize()
	if ss.Dropped != dropped {
		t.Errorf("summary dropped %d, Events() reported %d", ss.Dropped, dropped)
	}
	if bs.Dropped != 0 {
		t.Errorf("large ring dropped %d events", bs.Dropped)
	}
	ss.Dropped, bs.Dropped = 0, 0
	if !reflect.DeepEqual(ss, bs) {
		t.Errorf("summaries diverge under ring wrap:\nsmall %+v\nbig   %+v", ss, bs)
	}
}

// TestEnabledPathZeroAlloc: with tracing enabled, the steady-state hook
// path (resume, suspend, unblock, spin) allocates nothing — the ring
// and accumulators are preallocated, growth happens only at spawn.
func TestEnabledPathZeroAlloc(t *testing.T) {
	m := sccsim.MustNew(sccsim.DefaultConfig())
	rec := trace.NewRecorder(m, 1024)
	for ctx := 0; ctx < 8; ctx++ {
		rec.TraceSpawn(ctx, ctx%4, 0)
	}
	at := sccsim.Time(1_000_000)
	allocs := testing.AllocsPerRun(1000, func() {
		rec.TraceResume(3, 2, at)
		rec.TraceSuspend(3, 2, at, interp.SuspendYield, interp.ReasonNone)
		rec.TraceSpin(3, 2, at, 120)
		rec.TraceResume(3, 2, at)
		rec.TraceSuspend(3, 2, at, interp.SuspendBlock, interp.ReasonMutex)
		rec.TraceUnblock(3, 2, at)
	})
	if allocs != 0 {
		t.Fatalf("enabled trace hot path allocates: %v allocs/run", allocs)
	}
}
