package serve

// Metrics-surface tests: the two /metrics renderings golden-tested
// from one handcrafted snapshot (the live registry is timing-dependent,
// a fixture is not), plus the microsecond-precision property the
// accumulator fix exists for — a cache-hot request well under a
// millisecond must still move the average.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hsmcc/internal/bench"
)

// fixtureSnapshot is a fully handcrafted MetricsSnapshot: every field
// populated with distinct values so both renderings exercise their
// whole vocabulary deterministically.
func fixtureSnapshot() MetricsSnapshot {
	return MetricsSnapshot{
		UptimeMs:   90500,
		InFlight:   3,
		Goroutines: 42,
		Panics:     2,
		Draining:   false,
		Overload: OverloadSnapshot{
			SlotCapacity: 64,
			SlotsInUse:   5,
			PeakInUse:    61,
			QueueDepth:   1,
			MaxQueue:     256,
			Shed:         7,
		},
		Endpoints: map[string]EndpointSnapshot{
			"simulate": {
				Requests:        120,
				ByStatus:        map[int]int64{200: 115, 400: 3, 504: 2},
				LatencyBucketMs: latencyBucketBoundsMs,
				LatencyCounts:   []int64{40, 30, 20, 10, 8, 6, 3, 2, 1, 0, 0, 0, 0, 0},
				AvgLatencyMs:    4.625,
			},
			"metrics": {
				Requests:        9,
				ByStatus:        map[int]int64{200: 9},
				LatencyBucketMs: latencyBucketBoundsMs,
				LatencyCounts:   []int64{9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
				AvgLatencyMs:    0.125,
			},
		},
		EndpointNames: []string{"metrics", "simulate"},
		Cache: bench.CacheStats{
			ProgramCompiles: 12,
			TranslateRuns:   11,
			BaselineRuns:    10,
			ProfileRuns:     4,
			Hits:            300,
			Misses:          37,
			Entries:         37,
			Evictions:       5,
			CostBytes:       1 << 20,
			MaxCostBytes:    256 << 20,
		},
		CacheHitRate: 300.0 / 337.0,
	}
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestMetricsJSONGolden(t *testing.T) {
	got, err := json.MarshalIndent(fixtureSnapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "metrics_fixture.json.golden", append(got, '\n'))
}

func TestMetricsPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	renderPrometheus(&buf, fixtureSnapshot())
	compareGolden(t, "metrics_fixture.prom.golden", buf.Bytes())

	// Structural sanity independent of the golden: every sample line
	// belongs to the hsmccd_ namespace and every histogram is
	// cumulative-monotonic by construction (spot-check the fixture's
	// +Inf equals the request count).
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "hsmccd_") {
			t.Fatalf("sample outside the hsmccd_ namespace: %q", line)
		}
	}
	if !strings.Contains(buf.String(), `hsmccd_request_duration_seconds_bucket{endpoint="simulate",le="+Inf"} 120`) {
		t.Fatal("simulate +Inf bucket does not equal the finished-request count")
	}
}

// TestLatencyMicrosecondPrecision pins the fix for the truncating
// accumulator: sub-millisecond requests must contribute their actual
// duration (the old int64-milliseconds sum recorded them as zero).
func TestLatencyMicrosecondPrecision(t *testing.T) {
	m := newMetrics()
	m.requestStarted("x")
	m.requestFinished("x", 200, 250*time.Microsecond)
	m.requestStarted("x")
	m.requestFinished("x", 200, 1400*time.Microsecond)
	snap := m.Snapshot(bench.CacheStats{}, OverloadSnapshot{}, false)
	e := snap.Endpoints["x"]
	if want := float64(250+1400) / 1000 / 2; e.AvgLatencyMs != want {
		t.Fatalf("AvgLatencyMs = %v, want %v (sub-ms latency truncated?)", e.AvgLatencyMs, want)
	}
	// Bucketing compares microseconds against the ms bounds: 250µs is
	// ≤1ms (bucket 0), 1400µs is ≤2ms (bucket 1) — under the old
	// truncation 1400µs rounded to 1ms and landed in bucket 0.
	if e.LatencyCounts[0] != 1 || e.LatencyCounts[1] != 1 {
		t.Fatalf("bucket counts = %v, want [1 1 0 ...]", e.LatencyCounts)
	}
}
