package serve

// The request-observability suite: X-Request-Id on every response
// (success, error, stream), the ?spans=1 span tree (decode/admission
// always; compute spans only when the stage actually ran, so a warm
// cache shows the lookup as their absence), and the ?trace=1 embedded
// Chrome trace document — all opt-in, so the default envelopes the
// golden suite pins stay byte-identical.

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"hsmcc/internal/trace"
)

var requestIDRe = regexp.MustCompile(`^[0-9a-f]{8}-[0-9]+$`)

// TestRequestIDOnEveryResponse checks that each response — success,
// validation error, method rejection, metrics — carries a well-formed,
// per-request-unique X-Request-Id header.
func TestRequestIDOnEveryResponse(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		method, path, body string
	}{
		{"POST", "/v1/simulate", `{"workload":"pi","cores":2,"scale":0.01}`},
		{"POST", "/v1/simulate", `{"workload":"nope"}`},
		{"GET", "/v1/simulate", ""},
		{"GET", "/metrics", ""},
		{"GET", "/healthz", ""},
		{"POST", "/v1/batch", `{"items":[{"op":"compile","workload":"pi","cores":2,"scale":0.01}]}`},
	}
	seen := make(map[string]bool)
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		rid := resp.Header.Get("X-Request-Id")
		if !requestIDRe.MatchString(rid) {
			t.Fatalf("%s %s: X-Request-Id %q does not match %s", tc.method, tc.path, rid, requestIDRe)
		}
		if seen[rid] {
			t.Fatalf("%s %s: request ID %q repeated", tc.method, tc.path, rid)
		}
		seen[rid] = true
	}
}

// spanNames flattens a span tree into its set of names.
func spanNames(sp *Span, into map[string]bool) {
	if sp == nil {
		return
	}
	into[sp.Name] = true
	for _, c := range sp.Children {
		spanNames(c, into)
	}
}

func postSimulate(t *testing.T, ts *httptest.Server, query string) (SimulateResponse, string) {
	t.Helper()
	status, body := do(t, ts, "POST", "/v1/simulate"+query, `{"workload":"pi","cores":2,"scale":0.01}`)
	if status != 200 {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp SimulateResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad response body: %v", err)
	}
	return resp, body
}

// TestSpansOptIn checks the span tree: absent by default, and when
// requested the cold run shows the compute stages while the warm run
// shows only decode/admission/simulate — the cache hit is visible as
// the missing compile/translate spans.
func TestSpansOptIn(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Order matters: the cold request must be the server's first, or
	// its compute stages would already be cached.
	cold, _ := postSimulate(t, ts, "?spans=1")
	if cold.Spans == nil {
		t.Fatal("no span tree with ?spans=1")
	}
	names := make(map[string]bool)
	spanNames(cold.Spans, names)
	for _, want := range []string{"request", "decode", "admission", "compile", "translate", "baseline", "simulate"} {
		if !names[want] {
			t.Fatalf("cold span tree missing %q; have %v", want, names)
		}
	}

	warm, _ := postSimulate(t, ts, "?spans=1")
	names = make(map[string]bool)
	spanNames(warm.Spans, names)
	for _, want := range []string{"request", "decode", "admission", "simulate"} {
		if !names[want] {
			t.Fatalf("warm span tree missing %q; have %v", want, names)
		}
	}
	for _, hit := range []string{"compile", "translate", "baseline"} {
		if names[hit] {
			t.Fatalf("warm span tree shows %q — the cache hit should have skipped that stage", hit)
		}
	}
	if warm.Spans.DurUs <= 0 {
		t.Fatalf("root span duration %dµs, want > 0", warm.Spans.DurUs)
	}

	plain, _ := postSimulate(t, ts, "")
	if plain.Spans != nil {
		t.Fatal("spans present without ?spans=1")
	}
}

// TestTraceOptIn checks the embedded Chrome trace: absent by default,
// present and populated with ?trace=1, and orthogonal to the
// simulation results (same cycle counts either way).
func TestTraceOptIn(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	plain, plainBody := postSimulate(t, ts, "")
	if plain.Trace != nil {
		t.Fatal("trace present without ?trace=1")
	}

	traced, _ := postSimulate(t, ts, "?trace=1")
	if traced.Trace == nil {
		t.Fatal("no trace with ?trace=1")
	}
	if len(traced.Trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	if traced.Trace.Summary == nil || traced.Trace.Summary.Contexts == 0 {
		t.Fatalf("trace summary missing or empty: %+v", traced.Trace.Summary)
	}
	if traced.Trace.Summary.Finished != traced.Trace.Summary.Contexts {
		t.Fatalf("summary reports %d/%d contexts finished",
			traced.Trace.Summary.Finished, traced.Trace.Summary.Contexts)
	}
	if traced.BaselinePs != plain.BaselinePs || traced.RCCEPs != plain.RCCEPs {
		t.Fatalf("tracing changed the simulation: %d/%d ps vs %d/%d ps",
			traced.BaselinePs, traced.RCCEPs, plain.BaselinePs, plain.RCCEPs)
	}

	// The traced response minus its opt-in field is the plain response:
	// repeat the plain request and confirm byte identity (the envelope
	// carries no request-scoped noise).
	_, again := postSimulate(t, ts, "")
	if again != plainBody {
		t.Fatal("default simulate responses are not byte-identical across repeats")
	}

	// The embedded document is the trace-file shape: round-trip it
	// through the exporter's own types.
	raw, err := json.Marshal(traced.Trace)
	if err != nil {
		t.Fatal(err)
	}
	var back trace.Export
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("embedded trace does not round-trip: %v", err)
	}
}

// TestSlowRequestLogging checks the slog path: with a zero threshold
// every request is "slow", so the log line must carry the span tree
// and the request's ID at WARN.
func TestSlowRequestLogging(t *testing.T) {
	var buf strings.Builder
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	_, ts := newTestServer(t, Options{Logger: logger, SlowThreshold: time.Nanosecond})
	status, body := do(t, ts, "POST", "/v1/compile", `{"workload":"pi","cores":2,"scale":0.01}`)
	if status != 200 {
		t.Fatalf("status %d: %s", status, body)
	}
	out := buf.String()
	if !strings.Contains(out, "level=WARN") {
		t.Fatalf("slow request not logged at WARN:\n%s", out)
	}
	for _, want := range []string{"request_id=", "endpoint=compile", "status=200", "duration_us=", "slow=true", "spans="} {
		if !strings.Contains(out, want) {
			t.Fatalf("log line missing %q:\n%s", want, out)
		}
	}
}
